// Restart differential suite: the durable-store contract behind
// smoothd's -data-dir. For every shipped spec, a solve session runs to
// half depth, is encoded and pushed through a real disk store — the
// checkpoint blob by content address, the session meta beside it — then
// decoded back as a restarted process would do it. Both the surviving
// in-memory session and its restarted twin deepen to full depth, and
// both must land on the cold full-depth fingerprint exactly: same
// ordered solutions, same node count, same deterministic SearchStats.
// A restart is a pure pause in the approximation chain of §3.3, never a
// different search. Enforced by the CI differential job.
package smoothproc_test

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"smoothproc/internal/eqlang"
	"smoothproc/internal/session"
	"smoothproc/internal/solver"
	"smoothproc/internal/store"
)

func TestRestartParityAcrossSpecs(t *testing.T) {
	matches, err := filepath.Glob(filepath.Join("specs", "*.eq"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("no spec files found")
	}
	sort.Strings(matches)
	ctx := context.Background()

	for _, path := range matches {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := eqlang.CompileSource(string(src))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		spec := filepath.Base(path)
		t.Run(spec, func(t *testing.T) {
			full := prog.Problem()
			if full.MaxDepth < 2 {
				t.Skipf("depth %d leaves no room for a half-depth restart point", full.MaxDepth)
			}
			capDepth := max(1, full.MaxDepth/2)

			// Two references: a bare cold solve pins the paper-visible
			// answer (ordered solutions), and a never-restarted cold
			// session at full depth pins the session-mode fingerprint the
			// deepened legs must reproduce exactly.
			cold := solver.Enumerate(ctx, full)
			coldSess := session.New(spec+"-cold", prog.Problem(), prog.System)
			coldRes, _, err := coldSess.Solve(ctx, session.Options{Depth: full.MaxDepth})
			if err != nil {
				t.Fatalf("cold session solve: %v", err)
			}
			coldFp := fingerprint(spec, coldRes)
			coldStats := coldRes.Stats.Deterministic()
			compareTraceSlices(t, 1, "cold session solutions", coldRes.Solutions, cold.Solutions)

			// First life: a session solves to half depth…
			live := session.New(spec, prog.Problem(), prog.System)
			if _, _, err := live.Solve(ctx, session.Options{Depth: capDepth}); err != nil {
				t.Fatalf("half-depth solve: %v", err)
			}

			// …and is persisted through a real disk store, checkpoint blob
			// first, meta second — the service's crash-safe write order.
			blob, err := live.Encode()
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			disk, err := store.NewDisk(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			if blob.CheckpointRef != "" {
				if err := disk.Put(ctx, store.KindCheckpoint, store.Key(blob.CheckpointRef), blob.Checkpoint); err != nil {
					t.Fatalf("persist checkpoint: %v", err)
				}
			}
			metaKey := store.KeyOf([]byte(spec))
			if err := disk.Put(ctx, store.KindSession, metaKey, blob.Meta); err != nil {
				t.Fatalf("persist meta: %v", err)
			}

			// Second life: read everything back through the store and
			// rebuild the session the way a restarted smoothd does.
			meta, err := disk.Get(ctx, store.KindSession, metaKey)
			if err != nil {
				t.Fatalf("reload meta: %v", err)
			}
			restored, err := session.Decode(meta, prog.Problem(), prog.System, func(ref string) ([]byte, error) {
				return disk.Get(ctx, store.KindCheckpoint, store.Key(ref))
			})
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if err := disk.Close(); err != nil {
				t.Fatal(err)
			}
			if got, want := restored.Depth(), live.Depth(); got != want {
				t.Fatalf("restored depth %d, live %d", got, want)
			}
			if got, want := restored.Nodes(), live.Nodes(); got != want {
				t.Fatalf("restored commit pointer %d, live %d", got, want)
			}

			// Both lives deepen to full depth; both must be the cold search.
			for _, leg := range []struct {
				name string
				s    *session.Session
			}{{"live", live}, {"restored", restored}} {
				res, outcome, err := leg.s.Solve(ctx, session.Options{Depth: full.MaxDepth})
				if err != nil {
					t.Fatalf("%s deepen: %v", leg.name, err)
				}
				if outcome != session.Resumed {
					t.Errorf("%s deepen outcome = %v, want resumed", leg.name, outcome)
				}
				if got := fingerprint(spec, res); got != coldFp {
					t.Errorf("%s fingerprint drifted:\n got %+v\nwant %+v", leg.name, got, coldFp)
				}
				if got := res.Stats.Deterministic(); !reflect.DeepEqual(got, coldStats) {
					t.Errorf("%s SearchStats diverged:\n got %+v\nwant %+v", leg.name, got, coldStats)
				}
				compareTraceSlices(t, 1, leg.name+" solutions", res.Solutions, cold.Solutions)
			}
		})
	}
}
