package smoothproc_test

import (
	"context"
	"fmt"
	"sort"

	"smoothproc"
)

// Example reproduces the Brock-Ackermann resolution through the public
// API: the equations have two solutions, only one of which is smooth.
func Example() {
	eqs := smoothproc.Combine("fig4",
		smoothproc.MustNewDescription("eq1",
			smoothproc.OnChan(smoothproc.Even, "c"),
			smoothproc.ConstTraceFn(smoothproc.SeqOfInts(0, 2))),
		smoothproc.MustNewDescription("eq2",
			smoothproc.OnChan(smoothproc.Odd, "c"),
			smoothproc.OnChan(smoothproc.FBA, "c")),
	)
	for _, perm := range [][]int64{{0, 1, 2}, {0, 2, 1}} {
		tr := smoothproc.EmptyTrace
		for _, n := range perm {
			tr = tr.Append(smoothproc.E("c", smoothproc.Int(n)))
		}
		fmt.Printf("c = %v: solution=%v smooth=%v\n",
			perm, eqs.LimitOK(tr), eqs.IsSmoothFinite(tr) == nil)
	}
	// Output:
	// c = [0 1 2]: solution=true smooth=false
	// c = [0 2 1]: solution=true smooth=true
}

// ExampleEnumerate shows the Section 3.3 tree search on the random-bit
// process of Section 4.3: R(b) ⟵ T̄.
func ExampleEnumerate() {
	d := smoothproc.MustNewDescription("rb",
		smoothproc.OnChan(smoothproc.RMap, "b"),
		smoothproc.ConstTraceFn(smoothproc.SeqOf(smoothproc.T)))
	res := smoothproc.Enumerate(context.Background(), smoothproc.NewProblem(d, map[string][]smoothproc.Value{
		"b": {smoothproc.T, smoothproc.F},
	}, 3))
	keys := res.SolutionKeys()
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k)
	}
	// Output:
	// ⟨(b,F)⟩
	// ⟨(b,T)⟩
}

// ExampleRun drives a two-process network operationally and prints the
// deterministic replay for a seed.
func ExampleRun() {
	spec := smoothproc.Spec{Name: "copy", Procs: []smoothproc.Proc{
		smoothproc.Feeder("feed", "in", smoothproc.Int(7)),
		{Name: "copy", Body: func(c *smoothproc.Ctx) {
			for {
				v, ok := c.Recv("in")
				if !ok {
					return
				}
				if !c.Send("out", v) {
					return
				}
			}
		}},
	}}
	res := smoothproc.Run(spec, smoothproc.NewRandomDecider(1), smoothproc.Limits{})
	fmt.Println(res.Trace, res.Reason)
	// Output:
	// ⟨(in,7)(out,7)⟩ quiescent
}

// ExampleCompileEqlang compiles a description written in the surface
// language and counts its smooth solutions.
func ExampleCompileEqlang() {
	prog, err := smoothproc.CompileEqlang(`
alphabet b = {T, F}
depth 3
desc R(b) <- [T]
expect solutions 2
`)
	if err != nil {
		panic(err)
	}
	res := smoothproc.Enumerate(context.Background(), prog.Problem())
	fmt.Println(len(res.Solutions), prog.CheckExpects(res) == nil)
	// Output:
	// 2 true
}

// ExampleRealize decides whether a trace corresponds to a computation by
// exhaustive schedule search — the operational half of the paper's
// central theorem.
func ExampleRealize() {
	spec := smoothproc.Spec{Name: "copy", Procs: []smoothproc.Proc{
		smoothproc.Feeder("feed", "in", smoothproc.Int(1)),
		{Name: "copy", Body: func(c *smoothproc.Ctx) {
			for {
				v, ok := c.Recv("in")
				if !ok {
					return
				}
				if !c.Send("out", v) {
					return
				}
			}
		}},
	}}
	good := smoothproc.TraceOf(
		smoothproc.E("in", smoothproc.Int(1)), smoothproc.E("out", smoothproc.Int(1)))
	bad := smoothproc.TraceOf(
		smoothproc.E("out", smoothproc.Int(1)), smoothproc.E("in", smoothproc.Int(1)))
	fmt.Println(
		smoothproc.Realize(spec, good, smoothproc.RealizeOpts{}).Found,
		smoothproc.Realize(spec, bad, smoothproc.RealizeOpts{}).Found)
	// Output:
	// true false
}
