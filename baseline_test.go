// Baseline regression gate for the instrumented tree search: every
// shipped spec is compiled and enumerated, and the deterministic search
// counters (nodes, roles, pruning, memo traffic — everything except
// wall-clock) are compared against BENCH_solver.json. A drift means the
// search explored a different tree or evaluated a different number of
// tuples than it used to — exactly the regressions timing benchmarks are
// too noisy to catch. Regenerate deterministically with:
//
//	go test -run TestSolverBaseline -update .
//
// (or, equivalently, SMOOTHPROC_UPDATE_BASELINE=1 go test -run
// TestSolverBaseline . — handy where flags can't be passed through).
package smoothproc_test

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"smoothproc/internal/eqlang"
	"smoothproc/internal/solver"
)

// updateBaseline regenerates BENCH_solver.json instead of comparing
// against it. The enumeration is deterministic, so two regenerations on
// the same tree produce byte-identical files.
var updateBaseline = flag.Bool("update", false, "rewrite BENCH_solver.json from the current search instead of checking it")

const baselineFile = "BENCH_solver.json"

// baselineData is the on-disk shape of BENCH_solver.json: the
// deterministic search fingerprints plus the perf baselines the
// allocation-regression gate (perf_gate_test.go) compares against.
type baselineData struct {
	Search []baselineEntry `json:"search"`
	Perf   []perfEntry     `json:"perf,omitempty"`
}

// loadBaselineData reads BENCH_solver.json; missing file yields a zero
// value (the update paths start from it).
func loadBaselineData() (baselineData, error) {
	var d baselineData
	js, err := os.ReadFile(baselineFile)
	if err != nil {
		if os.IsNotExist(err) {
			return d, nil
		}
		return d, err
	}
	if err := json.Unmarshal(js, &d); err == nil {
		return d, nil
	}
	// Legacy layout: a flat array of search fingerprints.
	err = json.Unmarshal(js, &d.Search)
	return d, err
}

// saveBaselineData writes BENCH_solver.json deterministically.
func saveBaselineData(d baselineData) error {
	js, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(baselineFile, append(js, '\n'), 0o644)
}

// baselineEntry is the deterministic fingerprint of one spec's search.
type baselineEntry struct {
	Spec           string `json:"spec"`
	Nodes          int    `json:"nodes"`
	Solutions      int    `json:"solutions"`
	Frontier       int    `json:"frontier"`
	Dead           int    `json:"dead"`
	Closed         int    `json:"closed"`
	EdgesChecked   int    `json:"edges_checked"`
	EdgesKept      int    `json:"edges_kept"`
	SubtreesPruned int    `json:"subtrees_pruned"`
	LimitChecks    int    `json:"limit_checks"`
	CacheHits      int64  `json:"cache_hits"`
	CacheMisses    int64  `json:"cache_misses"`
}

func fingerprint(spec string, res solver.Result) baselineEntry {
	st := res.Stats
	return baselineEntry{
		Spec:           spec,
		Nodes:          res.Nodes,
		Solutions:      st.Solutions,
		Frontier:       st.Frontier,
		Dead:           st.Dead,
		Closed:         st.Closed,
		EdgesChecked:   st.EdgesChecked,
		EdgesKept:      st.EdgesKept,
		SubtreesPruned: st.SubtreesPruned,
		LimitChecks:    st.LimitChecks,
		CacheHits:      st.Eval.CacheHits(),
		CacheMisses:    st.Eval.CacheMisses(),
	}
}

func currentBaseline(t *testing.T) []baselineEntry {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join("specs", "*.eq"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("no spec files found")
	}
	sort.Strings(matches)
	var out []baselineEntry
	for _, path := range matches {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := eqlang.CompileSource(string(src))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		res := solver.Enumerate(context.Background(), prog.Problem())
		out = append(out, fingerprint(filepath.Base(path), res))
	}
	return out
}

func TestSolverBaseline(t *testing.T) {
	got := currentBaseline(t)
	if *updateBaseline || os.Getenv("SMOOTHPROC_UPDATE_BASELINE") != "" {
		d, err := loadBaselineData()
		if err != nil {
			t.Fatal(err)
		}
		d.Search = got
		if err := saveBaselineData(d); err != nil {
			t.Fatal(err)
		}
		t.Logf("baseline regenerated with %d entries", len(got))
		return
	}
	d, err := loadBaselineData()
	if err != nil {
		t.Fatalf("corrupt %s: %v", baselineFile, err)
	}
	want := d.Search
	if len(want) == 0 {
		t.Fatalf("%s has no search section (run with SMOOTHPROC_UPDATE_BASELINE=1 to create)", baselineFile)
	}
	wantBySpec := map[string]baselineEntry{}
	for _, e := range want {
		wantBySpec[e.Spec] = e
	}
	for _, g := range got {
		w, ok := wantBySpec[g.Spec]
		if !ok {
			t.Errorf("%s: not in baseline — regenerate it", g.Spec)
			continue
		}
		if g != w {
			t.Errorf("%s: search fingerprint drifted:\n got %+v\nwant %+v", g.Spec, g, w)
		}
		delete(wantBySpec, g.Spec)
	}
	for spec := range wantBySpec {
		t.Errorf("%s: in baseline but spec file is gone — regenerate it", spec)
	}
}
