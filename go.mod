module smoothproc

go 1.22
