package value

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestConstructorsAndKinds(t *testing.T) {
	tests := []struct {
		name string
		v    Value
		kind Kind
		str  string
	}{
		{"int", Int(42), KindInt, "42"},
		{"negative int", Int(-7), KindInt, "-7"},
		{"zero", Int(0), KindInt, "0"},
		{"true", T, KindBool, "T"},
		{"false", F, KindBool, "F"},
		{"sym", Sym("tick"), KindSym, "tick"},
		{"pair", Pair(Int(0), Int(5)), KindPair, "(0,5)"},
		{"nested pair", Pair(Int(1), Pair(T, F)), KindPair, "(1,(T,F))"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.v.Kind(); got != tt.kind {
				t.Errorf("Kind() = %v, want %v", got, tt.kind)
			}
			if got := tt.v.String(); got != tt.str {
				t.Errorf("String() = %q, want %q", got, tt.str)
			}
			if tt.v.IsZero() {
				t.Error("IsZero() = true for a constructed value")
			}
		})
	}
}

func TestZeroValueIsInvalid(t *testing.T) {
	var v Value
	if !v.IsZero() {
		t.Error("zero Value should report IsZero")
	}
}

func TestAccessors(t *testing.T) {
	if n, ok := Int(9).AsInt(); !ok || n != 9 {
		t.Errorf("AsInt = (%d, %v)", n, ok)
	}
	if _, ok := T.AsInt(); ok {
		t.Error("AsInt on bool should fail")
	}
	if b, ok := T.AsBool(); !ok || !b {
		t.Errorf("AsBool(T) = (%v, %v)", b, ok)
	}
	if _, ok := Int(1).AsBool(); ok {
		t.Error("AsBool on int should fail")
	}
	if s, ok := Sym("x").AsSym(); !ok || s != "x" {
		t.Errorf("AsSym = (%q, %v)", s, ok)
	}
	p := Pair(Int(1), Sym("a"))
	a, b, ok := p.AsPair()
	if !ok || !a.Equal(Int(1)) || !b.Equal(Sym("a")) {
		t.Errorf("AsPair = (%s, %s, %v)", a, b, ok)
	}
	if !p.First().Equal(Int(1)) || !p.Second().Equal(Sym("a")) {
		t.Error("First/Second mismatch")
	}
	if _, _, ok := Int(1).AsPair(); ok {
		t.Error("AsPair on int should fail")
	}
}

func TestMustIntPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustInt on bool should panic")
		}
	}()
	T.MustInt()
}

func TestFirstPanicsOnNonPair(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("First on int should panic")
		}
	}()
	Int(3).First()
}

func TestParityPredicates(t *testing.T) {
	tests := []struct {
		v         Value
		even, odd bool
	}{
		{Int(0), true, false},
		{Int(2), true, false},
		{Int(1), false, true},
		{Int(-1), false, true}, // the paper's z sequence starts with -1
		{Int(-2), true, false},
		{T, false, false},
		{Sym("x"), false, false},
		{Pair(Int(0), Int(2)), false, false},
	}
	for _, tt := range tests {
		if got := tt.v.IsEvenInt(); got != tt.even {
			t.Errorf("IsEvenInt(%s) = %v, want %v", tt.v, got, tt.even)
		}
		if got := tt.v.IsOddInt(); got != tt.odd {
			t.Errorf("IsOddInt(%s) = %v, want %v", tt.v, got, tt.odd)
		}
	}
}

func TestBoolPredicates(t *testing.T) {
	if !T.IsTrue() || T.IsFalse() {
		t.Error("T predicates wrong")
	}
	if !F.IsFalse() || F.IsTrue() {
		t.Error("F predicates wrong")
	}
	if Int(1).IsTrue() || Int(0).IsFalse() {
		t.Error("ints are neither T nor F")
	}
}

func TestCompareTotalOrder(t *testing.T) {
	// A representative ladder in strictly increasing order.
	ladder := []Value{
		Int(-3), Int(0), Int(5),
		F, T,
		Sym("a"), Sym("b"),
		Pair(Int(0), Int(0)), Pair(Int(0), Int(1)), Pair(Int(1), Int(0)),
	}
	for i := range ladder {
		for j := range ladder {
			got := ladder[i].Compare(ladder[j])
			switch {
			case i < j && got >= 0:
				t.Errorf("Compare(%s, %s) = %d, want < 0", ladder[i], ladder[j], got)
			case i > j && got <= 0:
				t.Errorf("Compare(%s, %s) = %d, want > 0", ladder[i], ladder[j], got)
			case i == j && got != 0:
				t.Errorf("Compare(%s, %s) = %d, want 0", ladder[i], ladder[j], got)
			}
		}
	}
}

func TestEqualStructural(t *testing.T) {
	if !Pair(Int(1), T).Equal(Pair(Int(1), T)) {
		t.Error("structurally equal pairs must be Equal")
	}
	if Pair(Int(1), T).Equal(Pair(Int(1), F)) {
		t.Error("different pairs must not be Equal")
	}
}

// randomValue builds an arbitrary Value of bounded depth for property
// tests.
func randomValue(r *rand.Rand, depth int) Value {
	switch k := r.Intn(4); {
	case k == 0:
		return Int(int64(r.Intn(21) - 10))
	case k == 1:
		return Bool(r.Intn(2) == 0)
	case k == 2:
		return Sym(string(rune('a' + r.Intn(4))))
	case depth <= 0:
		return Int(int64(r.Intn(5)))
	default:
		return Pair(randomValue(r, depth-1), randomValue(r, depth-1))
	}
}

// arb adapts randomValue to testing/quick.
type arb struct{ V Value }

// Generate implements quick.Generator.
func (arb) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(arb{V: randomValue(r, 2)})
}

func TestQuickRoundTripParse(t *testing.T) {
	f := func(a arb) bool {
		v, err := Parse(a.V.String())
		return err == nil && v.Equal(a.V)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickCompareIsTotalOrder(t *testing.T) {
	antisym := func(a, b arb) bool {
		x, y := a.V.Compare(b.V), b.V.Compare(a.V)
		return (x == 0) == (y == 0) && (x < 0) == (y > 0)
	}
	if err := quick.Check(antisym, &quick.Config{MaxCount: 500}); err != nil {
		t.Errorf("antisymmetry: %v", err)
	}
	trans := func(a, b, c arb) bool {
		if a.V.Compare(b.V) <= 0 && b.V.Compare(c.V) <= 0 {
			return a.V.Compare(c.V) <= 0
		}
		return true
	}
	if err := quick.Check(trans, &quick.Config{MaxCount: 500}); err != nil {
		t.Errorf("transitivity: %v", err)
	}
	eqAgrees := func(a, b arb) bool {
		return a.V.Equal(b.V) == (a.V.Compare(b.V) == 0)
	}
	if err := quick.Check(eqAgrees, &quick.Config{MaxCount: 500}); err != nil {
		t.Errorf("Equal/Compare agreement: %v", err)
	}
}

func TestParseValid(t *testing.T) {
	tests := []struct {
		in   string
		want Value
	}{
		{"7", Int(7)},
		{"-12", Int(-12)},
		{"T", T},
		{"F", F},
		{"tick", Sym("tick")},
		{"  42  ", Int(42)},
		{"(0,5)", Pair(Int(0), Int(5))},
		{"( 1 , (T, F) )", Pair(Int(1), Pair(T, F))},
	}
	for _, tt := range tests {
		got, err := Parse(tt.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", tt.in, err)
			continue
		}
		if !got.Equal(tt.want) {
			t.Errorf("Parse(%q) = %s, want %s", tt.in, got, tt.want)
		}
	}
}

func TestParseInvalid(t *testing.T) {
	for _, in := range []string{"", "(", "(1", "(1,", "(1,2", "1 2", "Tq2(", "@", "-", "(,)"} {
		if v, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) = %s, want error", in, v)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse on garbage should panic")
		}
	}()
	MustParse("((")
}

func TestIntsBoolsHelpers(t *testing.T) {
	vs := Ints(1, 2, 3)
	if len(vs) != 3 || !vs[2].Equal(Int(3)) {
		t.Errorf("Ints = %v", vs)
	}
	bs := Bools(true, false)
	if len(bs) != 2 || !bs[0].Equal(T) || !bs[1].Equal(F) {
		t.Errorf("Bools = %v", bs)
	}
}

func TestIntRange(t *testing.T) {
	got := IntRange(-1, 2)
	want := Ints(-1, 0, 1, 2)
	if len(got) != len(want) {
		t.Fatalf("IntRange(-1,2) has %d elements, want %d", len(got), len(want))
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Errorf("IntRange[%d] = %s, want %s", i, got[i], want[i])
		}
	}
	if IntRange(3, 2) != nil {
		t.Error("empty range should be nil")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindInt: "int", KindBool: "bool", KindSym: "sym", KindPair: "pair", Kind(99): "Kind(99)",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func ExampleParse() {
	v, _ := Parse("(0,5)")
	fmt.Println(v.First(), v.Second())
	// Output: 0 5
}
