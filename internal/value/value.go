// Package value defines the universal message datum carried on channels.
//
// The paper ("Equational Reasoning About Nondeterministic Processes",
// Misra 1989) works with several message alphabets: integers (Figures 1-4,
// 7), the booleans T and F (Sections 4.2-4.9), and tagged pairs such as
// (0, n) used by the fair-merge implementation of Section 4.10. Value is a
// small algebraic datatype covering all of them, with a total order so
// that traces can be canonicalised, deduplicated and used as map keys.
package value

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind discriminates the variants of Value.
type Kind int

// The message variants, in the order used by Compare.
const (
	KindInt Kind = iota + 1
	KindBool
	KindSym
	KindPair
)

// String returns the name of the kind.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindBool:
		return "bool"
	case KindSym:
		return "sym"
	case KindPair:
		return "pair"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Value is an immutable message datum. The zero Value is not valid; use
// one of the constructors. Values are compared with Equal/Compare, never
// with ==, because pairs hold pointers.
type Value struct {
	kind     Kind
	i        int64
	b        bool
	s        string
	fst, snd *Value
}

// Int returns an integer message.
func Int(n int64) Value { return Value{kind: KindInt, i: n} }

// Bool returns a boolean message (the paper's T / F).
func Bool(b bool) Value { return Value{kind: KindBool, b: b} }

// T is the paper's "tick" / true bit.
var T = Bool(true)

// F is the paper's false bit.
var F = Bool(false)

// Sym returns a symbolic message, used for uninterpreted alphabets
// (e.g. the CHAOS example of Section 4.1).
func Sym(s string) Value { return Value{kind: KindSym, s: s} }

// Pair returns a pair message, e.g. the tagged values (0, n) and (1, n)
// of the fair-merge network (Section 4.10, Figure 7).
func Pair(a, b Value) Value {
	fst, snd := a, b
	return Value{kind: KindPair, fst: &fst, snd: &snd}
}

// Kind reports the variant of v.
func (v Value) Kind() Kind { return v.kind }

// IsZero reports whether v is the invalid zero Value.
func (v Value) IsZero() bool { return v.kind == 0 }

// AsInt returns the integer payload. It reports false if v is not an int.
func (v Value) AsInt() (int64, bool) {
	if v.kind != KindInt {
		return 0, false
	}
	return v.i, true
}

// MustInt returns the integer payload and panics if v is not an int.
// Use only where the alphabet is known to be integral.
func (v Value) MustInt() int64 {
	n, ok := v.AsInt()
	if !ok {
		panic(fmt.Sprintf("value: MustInt on %s", v))
	}
	return n
}

// AsBool returns the boolean payload. It reports false if v is not a bool.
func (v Value) AsBool() (bool, bool) {
	if v.kind != KindBool {
		return false, false
	}
	return v.b, true
}

// AsSym returns the symbol payload. It reports false if v is not a symbol.
func (v Value) AsSym() (string, bool) {
	if v.kind != KindSym {
		return "", false
	}
	return v.s, true
}

// AsPair returns the components of a pair. It reports false if v is not
// a pair.
func (v Value) AsPair() (Value, Value, bool) {
	if v.kind != KindPair {
		return Value{}, Value{}, false
	}
	return *v.fst, *v.snd, true
}

// First returns the first component of a pair and panics otherwise.
func (v Value) First() Value {
	a, _, ok := v.AsPair()
	if !ok {
		panic(fmt.Sprintf("value: First on %s", v))
	}
	return a
}

// Second returns the second component of a pair and panics otherwise.
func (v Value) Second() Value {
	_, b, ok := v.AsPair()
	if !ok {
		panic(fmt.Sprintf("value: Second on %s", v))
	}
	return b
}

// IsTrue reports whether v is the boolean T.
func (v Value) IsTrue() bool { return v.kind == KindBool && v.b }

// IsFalse reports whether v is the boolean F.
func (v Value) IsFalse() bool { return v.kind == KindBool && !v.b }

// IsEvenInt reports whether v is an even integer (the dfm input alphabet
// on channel b, Section 2.2).
func (v Value) IsEvenInt() bool {
	n, ok := v.AsInt()
	return ok && n%2 == 0
}

// IsOddInt reports whether v is an odd integer (the dfm input alphabet on
// channel c, Section 2.2). Negative odd integers count as odd, matching
// the paper's example sequence z whose first element is -1.
func (v Value) IsOddInt() bool {
	n, ok := v.AsInt()
	return ok && n%2 != 0
}

// Equal reports structural equality.
func (v Value) Equal(w Value) bool { return v.Compare(w) == 0 }

// Compare imposes a total order: by kind first, then by payload. Pairs
// compare lexicographically. The order has no semantic meaning in the
// paper; it exists so enumerations are deterministic.
func (v Value) Compare(w Value) int {
	if v.kind != w.kind {
		return int(v.kind) - int(w.kind)
	}
	switch v.kind {
	case KindInt:
		switch {
		case v.i < w.i:
			return -1
		case v.i > w.i:
			return 1
		default:
			return 0
		}
	case KindBool:
		switch {
		case v.b == w.b:
			return 0
		case !v.b:
			return -1
		default:
			return 1
		}
	case KindSym:
		return strings.Compare(v.s, w.s)
	case KindPair:
		if c := v.fst.Compare(*w.fst); c != 0 {
			return c
		}
		return v.snd.Compare(*w.snd)
	default:
		return 0
	}
}

// String renders v in the concrete syntax accepted by Parse:
// integers as decimal, booleans as T / F, symbols bare, pairs as (a,b).
func (v Value) String() string {
	switch v.kind {
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindBool:
		if v.b {
			return "T"
		}
		return "F"
	case KindSym:
		return v.s
	case KindPair:
		return "(" + v.fst.String() + "," + v.snd.String() + ")"
	default:
		return "<invalid>"
	}
}

// AppendTo appends String's rendering of v to b and returns the extended
// slice. Hot paths (trace keys in the solver's memoized evaluator) use
// this to render values without intermediate string allocations.
func (v Value) AppendTo(b []byte) []byte {
	switch v.kind {
	case KindInt:
		return strconv.AppendInt(b, v.i, 10)
	case KindBool:
		if v.b {
			return append(b, 'T')
		}
		return append(b, 'F')
	case KindSym:
		return append(b, v.s...)
	case KindPair:
		b = append(b, '(')
		b = v.fst.AppendTo(b)
		b = append(b, ',')
		b = v.snd.AppendTo(b)
		return append(b, ')')
	default:
		return append(b, "<invalid>"...)
	}
}

// hashMix is a splitmix64-style finalizer step combining an accumulator
// with one 64-bit word. It is order-sensitive (hashMix(hashMix(s,a),b) ≠
// hashMix(hashMix(s,b),a) in general), which is what sequence and trace
// hashing need.
func hashMix(h, x uint64) uint64 {
	z := h + 0x9e3779b97f4a7c15 + x
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// HashMix exposes the mixing step for the other hashing hooks (trace
// events, sequences) so every structural hash in the repository chains
// the same way.
func HashMix(h, x uint64) uint64 { return hashMix(h, x) }

// HashString folds a string into an accumulator, FNV-1a style, then
// mixes in the length so "ab"+"c" and "a"+"bc" land apart when chained.
func HashString(h uint64, s string) uint64 {
	const prime = 1099511628211
	f := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		f ^= uint64(s[i])
		f *= prime
	}
	return hashMix(h, hashMix(f, uint64(len(s))))
}

// Hash64 returns a 64-bit structural hash of v: equal values hash equal,
// and the hash is computed from the structure directly (no rendering).
// It backs the O(1) (hash, length) memo keys of package trace.
func (v Value) Hash64() uint64 {
	switch v.kind {
	case KindInt:
		return hashMix(uint64(v.kind), uint64(v.i))
	case KindBool:
		var b uint64
		if v.b {
			b = 1
		}
		return hashMix(uint64(v.kind), b)
	case KindSym:
		return HashString(uint64(v.kind), v.s)
	case KindPair:
		return hashMix(uint64(v.kind), hashMix(v.fst.Hash64(), v.snd.Hash64()))
	default:
		return hashMix(0, 0)
	}
}

// Parse reads a Value from its String form. Symbols must start with a
// lowercase letter to avoid colliding with T and F.
func Parse(s string) (Value, error) {
	v, rest, err := parseValue(strings.TrimSpace(s))
	if err != nil {
		return Value{}, err
	}
	if strings.TrimSpace(rest) != "" {
		return Value{}, fmt.Errorf("value: trailing input %q after %s", rest, v)
	}
	return v, nil
}

// MustParse is Parse that panics on error; for tests and literals.
func MustParse(s string) Value {
	v, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return v
}

func parseValue(s string) (Value, string, error) {
	if s == "" {
		return Value{}, "", fmt.Errorf("value: empty input")
	}
	switch {
	case s[0] == '(':
		a, rest, err := parseValue(strings.TrimSpace(s[1:]))
		if err != nil {
			return Value{}, "", fmt.Errorf("value: pair first: %w", err)
		}
		rest = strings.TrimSpace(rest)
		if rest == "" || rest[0] != ',' {
			return Value{}, "", fmt.Errorf("value: expected ',' in pair at %q", rest)
		}
		b, rest, err := parseValue(strings.TrimSpace(rest[1:]))
		if err != nil {
			return Value{}, "", fmt.Errorf("value: pair second: %w", err)
		}
		rest = strings.TrimSpace(rest)
		if rest == "" || rest[0] != ')' {
			return Value{}, "", fmt.Errorf("value: expected ')' in pair at %q", rest)
		}
		return Pair(a, b), rest[1:], nil
	case s[0] == 'T' && (len(s) == 1 || !isWordByte(s[1])):
		return T, s[1:], nil
	case s[0] == 'F' && (len(s) == 1 || !isWordByte(s[1])):
		return F, s[1:], nil
	case s[0] == '-' || (s[0] >= '0' && s[0] <= '9'):
		i := 1
		for i < len(s) && s[i] >= '0' && s[i] <= '9' {
			i++
		}
		n, err := strconv.ParseInt(s[:i], 10, 64)
		if err != nil {
			return Value{}, "", fmt.Errorf("value: bad integer %q: %w", s[:i], err)
		}
		return Int(n), s[i:], nil
	case s[0] >= 'a' && s[0] <= 'z':
		i := 1
		for i < len(s) && isWordByte(s[i]) {
			i++
		}
		return Sym(s[:i]), s[i:], nil
	default:
		return Value{}, "", fmt.Errorf("value: cannot parse %q", s)
	}
}

func isWordByte(b byte) bool {
	return b == '_' || (b >= '0' && b <= '9') || (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z')
}

// Ints converts a slice of machine integers into message values.
func Ints(ns ...int64) []Value {
	vs := make([]Value, len(ns))
	for i, n := range ns {
		vs[i] = Int(n)
	}
	return vs
}

// Bools converts a slice of machine booleans into message values.
func Bools(bs ...bool) []Value {
	vs := make([]Value, len(bs))
	for i, b := range bs {
		vs[i] = Bool(b)
	}
	return vs
}

// IntRange returns the integer alphabet lo..hi inclusive, used to give the
// Section 3.3 solver a finite branching alphabet.
func IntRange(lo, hi int64) []Value {
	if hi < lo {
		return nil
	}
	vs := make([]Value, 0, hi-lo+1)
	for n := lo; n <= hi; n++ {
		vs = append(vs, Int(n))
	}
	return vs
}
