package seq

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"smoothproc/internal/value"
)

func TestConstructorsAndBasics(t *testing.T) {
	s := OfInts(1, 2, 3)
	if s.Len() != 3 || s.IsEmpty() {
		t.Fatalf("OfInts(1,2,3) = %s", s)
	}
	if !s.At(1).Equal(value.Int(2)) {
		t.Errorf("At(1) = %s", s.At(1))
	}
	if !Empty.IsEmpty() || Empty.Len() != 0 {
		t.Error("Empty is not empty")
	}
	b := OfBools(true, false)
	if !b.At(0).IsTrue() || !b.At(1).IsFalse() {
		t.Errorf("OfBools = %s", b)
	}
}

func TestOfCopiesInput(t *testing.T) {
	vals := value.Ints(1, 2)
	s := Of(vals...)
	vals[0] = value.Int(99)
	if !s.At(0).Equal(value.Int(1)) {
		t.Error("Of aliased its input slice")
	}
}

func TestPrefixOrder(t *testing.T) {
	tests := []struct {
		a, b Seq
		leq  bool
	}{
		{Empty, Empty, true},
		{Empty, OfInts(1), true},
		{OfInts(1), Empty, false},
		{OfInts(1), OfInts(1), true},
		{OfInts(1), OfInts(1, 2), true},
		{OfInts(1, 2), OfInts(1), false},
		{OfInts(2), OfInts(1, 2), false},
		{OfInts(1, 3), OfInts(1, 2, 3), false},
	}
	for _, tt := range tests {
		if got := tt.a.Leq(tt.b); got != tt.leq {
			t.Errorf("%s ⊑ %s = %v, want %v", tt.a, tt.b, got, tt.leq)
		}
	}
}

func TestCompatible(t *testing.T) {
	if !OfInts(1).Compatible(OfInts(1, 2)) {
		t.Error("prefix pairs are compatible")
	}
	if OfInts(1).Compatible(OfInts(2)) {
		t.Error("diverging sequences are not compatible")
	}
	if !Empty.Compatible(OfInts(5)) {
		t.Error("⊥ is compatible with everything")
	}
}

func TestCommonPrefixLen(t *testing.T) {
	tests := []struct {
		a, b Seq
		n    int
	}{
		{Empty, Empty, 0},
		{OfInts(1, 2, 3), OfInts(1, 2, 4), 2},
		{OfInts(1, 2), OfInts(1, 2, 3), 2},
		{OfInts(9), OfInts(1), 0},
	}
	for _, tt := range tests {
		if got := tt.a.CommonPrefixLen(tt.b); got != tt.n {
			t.Errorf("CommonPrefixLen(%s, %s) = %d, want %d", tt.a, tt.b, got, tt.n)
		}
	}
}

func TestTakeDrop(t *testing.T) {
	s := OfInts(1, 2, 3)
	if !s.Take(2).Equal(OfInts(1, 2)) {
		t.Errorf("Take(2) = %s", s.Take(2))
	}
	if !s.Take(99).Equal(s) || !s.Take(-1).Equal(Empty) {
		t.Error("Take clamping wrong")
	}
	if !s.Drop(1).Equal(OfInts(2, 3)) {
		t.Errorf("Drop(1) = %s", s.Drop(1))
	}
	if !s.Drop(99).Equal(Empty) || !s.Drop(-1).Equal(s) {
		t.Error("Drop clamping wrong")
	}
}

func TestConcatAppend(t *testing.T) {
	if got := OfInts(1).Concat(OfInts(2, 3)); !got.Equal(OfInts(1, 2, 3)) {
		t.Errorf("Concat = %s", got)
	}
	if got := Empty.Concat(Empty); !got.IsEmpty() {
		t.Errorf("ε;ε = %s", got)
	}
	if got := OfInts(1).Append(value.Int(2)); !got.Equal(OfInts(1, 2)) {
		t.Errorf("Append = %s", got)
	}
}

func TestAppendDoesNotAliasPrefix(t *testing.T) {
	base := OfInts(1)
	a := base.Append(value.Int(2))
	b := base.Append(value.Int(3))
	if !a.Equal(OfInts(1, 2)) || !b.Equal(OfInts(1, 3)) {
		t.Errorf("Append aliased: a=%s b=%s", a, b)
	}
}

func TestFilterMapTakeWhile(t *testing.T) {
	s := OfInts(0, 1, 2, 3, 4)
	if got := s.Filter(value.Value.IsEvenInt); !got.Equal(OfInts(0, 2, 4)) {
		t.Errorf("even filter = %s", got)
	}
	double := func(v value.Value) value.Value { return value.Int(2 * v.MustInt()) }
	if got := s.Map(double); !got.Equal(OfInts(0, 2, 4, 6, 8)) {
		t.Errorf("map = %s", got)
	}
	bits := OfBools(true, true, false, true)
	if got := bits.TakeWhile(func(v value.Value) bool { return !v.IsFalse() }); !got.Equal(OfBools(true, true)) {
		t.Errorf("takewhile = %s", got)
	}
}

func TestCountIndexContains(t *testing.T) {
	s := OfBools(true, false, true)
	if got := s.Count(value.Value.IsTrue); got != 2 {
		t.Errorf("Count = %d", got)
	}
	if got := s.Index(value.Value.IsFalse); got != 1 {
		t.Errorf("Index = %d", got)
	}
	if got := Empty.Index(value.Value.IsFalse); got != -1 {
		t.Errorf("Index on ε = %d", got)
	}
	if !s.Contains(value.F) || s.Contains(value.Int(1)) {
		t.Error("Contains wrong")
	}
}

func TestIsSubsequenceOf(t *testing.T) {
	tests := []struct {
		sub, whole Seq
		want       bool
	}{
		{Empty, Empty, true},
		{Empty, OfInts(1), true},
		{OfInts(1, 3), OfInts(1, 2, 3), true},
		{OfInts(3, 1), OfInts(1, 2, 3), false},
		{OfInts(1, 1), OfInts(1), false},
		{OfInts(0, 2), OfInts(0, 1, 2, 3), true},
	}
	for _, tt := range tests {
		if got := tt.sub.IsSubsequenceOf(tt.whole); got != tt.want {
			t.Errorf("%s subseq of %s = %v, want %v", tt.sub, tt.whole, got, tt.want)
		}
	}
}

func TestZipCutsAtShorter(t *testing.T) {
	and := func(a, b value.Value) value.Value { return value.Bool(a.IsTrue() && b.IsTrue()) }
	got := Zip(OfBools(true, true, true), OfBools(true, false), and)
	if !got.Equal(OfBools(true, false)) {
		t.Errorf("Zip = %s", got)
	}
	if !Zip(Empty, OfBools(true), and).IsEmpty() {
		t.Error("Zip with ε should be ε")
	}
}

func TestSelect(t *testing.T) {
	c := OfInts(10, 20, 30)
	oracle := OfBools(true, false, true)
	if got := Select(c, oracle, true); !got.Equal(OfInts(10, 30)) {
		t.Errorf("Select true = %s", got)
	}
	if got := Select(c, oracle, false); !got.Equal(OfInts(20)) {
		t.Errorf("Select false = %s", got)
	}
	// Elements beyond the oracle's length are not selected (continuity).
	if got := Select(c, OfBools(true), true); !got.Equal(OfInts(10)) {
		t.Errorf("Select with short oracle = %s", got)
	}
}

func TestRepeat(t *testing.T) {
	if got := Repeat(OfBools(true), 3); !got.Equal(OfBools(true, true, true)) {
		t.Errorf("Repeat T = %s", got)
	}
	if got := Repeat(OfInts(1, 2), 5); !got.Equal(OfInts(1, 2, 1, 2, 1)) {
		t.Errorf("Repeat 12 = %s", got)
	}
	if !Repeat(Empty, 5).IsEmpty() || !Repeat(OfInts(1), 0).IsEmpty() {
		t.Error("Repeat edge cases wrong")
	}
}

func TestLubAndIsChain(t *testing.T) {
	chain := []Seq{Empty, OfInts(1), OfInts(1, 2)}
	if !IsChain(chain) {
		t.Error("prefix chain not recognised")
	}
	lub, ok := Lub(chain)
	if !ok || !lub.Equal(OfInts(1, 2)) {
		t.Errorf("Lub = %s, %v", lub, ok)
	}
	notChain := []Seq{OfInts(1), OfInts(2)}
	if IsChain(notChain) {
		t.Error("diverging set recognised as chain")
	}
	if _, ok := Lub(notChain); ok {
		t.Error("Lub of a non-chain should fail")
	}
}

func TestString(t *testing.T) {
	if got := OfInts(0, 1).String(); got != "⟨0 1⟩" {
		t.Errorf("String = %q", got)
	}
	if got := Empty.String(); got != "⟨⟩" {
		t.Errorf("ε String = %q", got)
	}
}

// genSeq builds an arbitrary short integer sequence.
type genSeq struct{ S Seq }

// Generate implements quick.Generator.
func (genSeq) Generate(r *rand.Rand, _ int) reflect.Value {
	n := r.Intn(6)
	s := make(Seq, n)
	for i := range s {
		s[i] = value.Int(int64(r.Intn(4)))
	}
	return reflect.ValueOf(genSeq{S: s})
}

func TestQuickLeqIsPartialOrder(t *testing.T) {
	refl := func(a genSeq) bool { return a.S.Leq(a.S) }
	if err := quick.Check(refl, nil); err != nil {
		t.Errorf("reflexivity: %v", err)
	}
	antisym := func(a, b genSeq) bool {
		if a.S.Leq(b.S) && b.S.Leq(a.S) {
			return a.S.Equal(b.S)
		}
		return true
	}
	if err := quick.Check(antisym, nil); err != nil {
		t.Errorf("antisymmetry: %v", err)
	}
	trans := func(a, b, c genSeq) bool {
		if a.S.Leq(b.S) && b.S.Leq(c.S) {
			return a.S.Leq(c.S)
		}
		return true
	}
	if err := quick.Check(trans, nil); err != nil {
		t.Errorf("transitivity: %v", err)
	}
}

func TestQuickBottomIsLeast(t *testing.T) {
	f := func(a genSeq) bool { return Empty.Leq(a.S) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickTakeIsPrefix(t *testing.T) {
	f := func(a genSeq, n int) bool {
		p := a.S.Take(n % 8)
		return p.Leq(a.S)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickConcatMonotoneInSecondArg(t *testing.T) {
	// The paper's ";" with constant first argument is continuous: check
	// monotonicity in the second argument.
	f := func(a, b genSeq, n int) bool {
		prefix := b.S.Take(n % 8)
		return a.S.Concat(prefix).Leq(a.S.Concat(b.S))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickFilterMonotone(t *testing.T) {
	f := func(a genSeq, n int) bool {
		p := a.S.Take(n % 8)
		return p.Filter(value.Value.IsEvenInt).Leq(a.S.Filter(value.Value.IsEvenInt))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickFilterOfPrefixChainHasLub(t *testing.T) {
	// Continuity of filters over the full prefix chain: the image is a
	// chain and its lub is the image of the lub (Fact F2/F3 pattern).
	f := func(a genSeq) bool {
		var image []Seq
		for n := 0; n <= a.S.Len(); n++ {
			image = append(image, a.S.Take(n).Filter(value.Value.IsOddInt))
		}
		lub, ok := Lub(image)
		return ok && lub.Equal(a.S.Filter(value.Value.IsOddInt))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSubsequenceClosedUnderPrefix(t *testing.T) {
	// The fair-merge property quantifies over prefixes; check that a
	// subsequence's prefixes remain subsequences.
	f := func(a genSeq, n int) bool {
		whole := a.S
		sub := whole.Filter(value.Value.IsEvenInt)
		return sub.Take(n % 8).IsSubsequenceOf(whole)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
