package seq

import (
	"testing"

	"smoothproc/internal/value"
)

func benchSeq(n int) Seq {
	s := make(Seq, n)
	for i := range s {
		s[i] = value.Int(int64(i % 7))
	}
	return s
}

func BenchmarkLeq(b *testing.B) {
	long := benchSeq(256)
	prefix := long.Take(255)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !prefix.Leq(long) {
			b.Fatal("prefix not ⊑ whole")
		}
	}
}

func BenchmarkFilterEven(b *testing.B) {
	s := benchSeq(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Filter(value.Value.IsEvenInt)
	}
}

func BenchmarkMap(b *testing.B) {
	s := benchSeq(256)
	double := func(v value.Value) value.Value { return value.Int(2 * v.MustInt()) }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Map(double)
	}
}

func BenchmarkCommonPrefixLen(b *testing.B) {
	x := benchSeq(256)
	y := x.Take(200).Append(value.Int(99))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if x.CommonPrefixLen(y) != 200 {
			b.Fatal("wrong common prefix")
		}
	}
}

func BenchmarkIsSubsequenceOf(b *testing.B) {
	whole := benchSeq(256)
	sub := whole.Filter(value.Value.IsOddInt)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !sub.IsSubsequenceOf(whole) {
			b.Fatal("subsequence check failed")
		}
	}
}
