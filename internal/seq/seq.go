// Package seq implements the cpo of finite message sequences under prefix
// ordering.
//
// In the paper, a channel variable such as b denotes "the sequence of all
// data sent along the correspondingly named channel"; these sequences,
// ordered by the prefix relation ⊑ with the empty sequence as bottom, form
// the cpo over which Kahn's equations and Misra's descriptions are
// interpreted (Section 3). This package provides the finite elements of
// that cpo; ω-sequences are handled by finite approximation everywhere in
// this repository (every check the paper states quantifies over finite
// prefixes — see DESIGN.md).
package seq

import (
	"strings"

	"smoothproc/internal/value"
)

// Seq is a finite sequence of message values. The nil and empty slices
// both represent ⊥ (the paper's ε). Seq values are treated as immutable:
// operations return fresh slices and never alias their inputs' backing
// arrays in a way a caller could observe.
type Seq []value.Value

// Empty is the bottom element ⊥ (the paper also writes ε).
var Empty = Seq{}

// Of builds a sequence from the given values.
func Of(vs ...value.Value) Seq {
	s := make(Seq, len(vs))
	copy(s, vs)
	return s
}

// OfInts builds an integer sequence; convenient for the paper's examples.
func OfInts(ns ...int64) Seq { return Seq(value.Ints(ns...)) }

// OfBools builds a boolean (T/F) sequence.
func OfBools(bs ...bool) Seq { return Seq(value.Bools(bs...)) }

// Len returns the number of elements.
func (s Seq) Len() int { return len(s) }

// IsEmpty reports whether s is ⊥.
func (s Seq) IsEmpty() bool { return len(s) == 0 }

// At returns the i-th element (0-based).
func (s Seq) At(i int) value.Value { return s[i] }

// Equal reports element-wise equality.
func (s Seq) Equal(t Seq) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if !s[i].Equal(t[i]) {
			return false
		}
	}
	return true
}

// Leq reports the prefix order s ⊑ t.
func (s Seq) Leq(t Seq) bool {
	if len(s) > len(t) {
		return false
	}
	for i := range s {
		if !s[i].Equal(t[i]) {
			return false
		}
	}
	return true
}

// Compatible reports whether s and t are comparable, i.e. one is a prefix
// of the other. In a chain any two elements are compatible; two
// incompatible sequences can never share an upper bound, which is how the
// depth-bounded limit-condition check refutes candidate ω-solutions (see
// package desc).
func (s Seq) Compatible(t Seq) bool { return s.Leq(t) || t.Leq(s) }

// CommonPrefixLen returns the length of the longest common prefix.
func (s Seq) CommonPrefixLen(t Seq) int {
	n := min(len(s), len(t))
	for i := 0; i < n; i++ {
		if !s[i].Equal(t[i]) {
			return i
		}
	}
	return n
}

// Take returns the prefix of length at most n.
func (s Seq) Take(n int) Seq {
	if n < 0 {
		n = 0
	}
	if n > len(s) {
		n = len(s)
	}
	out := make(Seq, n)
	copy(out, s[:n])
	return out
}

// Drop returns the suffix after removing min(n, len) elements.
func (s Seq) Drop(n int) Seq {
	if n < 0 {
		n = 0
	}
	if n > len(s) {
		n = len(s)
	}
	out := make(Seq, len(s)-n)
	copy(out, s[n:])
	return out
}

// Concat returns s followed by t — the paper's ";" operator (Section 2.1,
// "b = 0; c"). Note that over ω-sequences ";" is continuous only in its
// second argument; we use it with constant first arguments, as the paper
// does.
func (s Seq) Concat(t Seq) Seq {
	out := make(Seq, 0, len(s)+len(t))
	out = append(out, s...)
	out = append(out, t...)
	return out
}

// Append returns s extended by one element.
func (s Seq) Append(v value.Value) Seq {
	out := make(Seq, 0, len(s)+1)
	out = append(out, s...)
	out = append(out, v)
	return out
}

// Filter returns the subsequence of elements satisfying keep. Filters such
// as even/odd/TRUE/FALSE/ZERO/ONE in the paper are all instances; all are
// continuous.
func (s Seq) Filter(keep func(value.Value) bool) Seq {
	out := make(Seq, 0, len(s))
	for _, v := range s {
		if keep(v) {
			out = append(out, v)
		}
	}
	return out
}

// Map applies f pointwise — the paper's 2×d, 2×d+1 and R(b) are pointwise
// maps; all pointwise maps of total functions are continuous.
func (s Seq) Map(f func(value.Value) value.Value) Seq {
	out := make(Seq, len(s))
	for i, v := range s {
		out[i] = f(v)
	}
	return out
}

// TakeWhile returns the longest prefix whose elements satisfy keep — the
// paper's g in Section 4.8 ("longest prefix of s that contains no F") is
// TakeWhile(not F). Continuous.
func (s Seq) TakeWhile(keep func(value.Value) bool) Seq {
	n := 0
	for n < len(s) && keep(s[n]) {
		n++
	}
	return s.Take(n)
}

// Count returns the number of elements satisfying pred.
func (s Seq) Count(pred func(value.Value) bool) int {
	n := 0
	for _, v := range s {
		if pred(v) {
			n++
		}
	}
	return n
}

// Index returns the index of the first element satisfying pred, or -1.
func (s Seq) Index(pred func(value.Value) bool) int {
	for i, v := range s {
		if pred(v) {
			return i
		}
	}
	return -1
}

// Contains reports whether v occurs in s.
func (s Seq) Contains(v value.Value) bool {
	return s.Index(v.Equal) >= 0
}

// IsSubsequenceOf reports whether s embeds into t preserving order — the
// fair-merge property of Section 4.10 is stated with subsequences.
func (s Seq) IsSubsequenceOf(t Seq) bool {
	i := 0
	for _, v := range t {
		if i < len(s) && s[i].Equal(v) {
			i++
		}
	}
	return i == len(s)
}

// Zip applies f pointwise to corresponding elements of s and t, up to the
// shorter length. This is the sequence lifting of a strict binary function
// such as the paper's AND (Section 4.5): the result is ⊥-cut at the first
// missing operand. Continuous in both arguments.
func Zip(s, t Seq, f func(a, b value.Value) value.Value) Seq {
	n := min(len(s), len(t))
	out := make(Seq, n)
	for i := 0; i < n; i++ {
		out[i] = f(s[i], t[i])
	}
	return out
}

// Select returns the subsequence of s at the positions where oracle holds
// bit — the functions g(c,b) and h(c,b) of the fork process (Section 4.6,
// Figure 6). Elements of s beyond the oracle's length are not selected
// (the choice for them has not been made yet), which keeps Select
// continuous in both arguments.
func Select(s, oracle Seq, bit bool) Seq {
	n := min(len(s), len(oracle))
	out := make(Seq, 0, n)
	for i := 0; i < n; i++ {
		if b, ok := oracle[i].AsBool(); ok && b == bit {
			out = append(out, s[i])
		}
	}
	return out
}

// Repeat returns period repeated whole-and-partially until the result has
// length n — the length-n prefix of the ω-sequence period^ω. It is the
// finite approximation used for the paper's infinite constants trues,
// falses (Section 4.7) and the 0^ω limit of Section 2.1.
func Repeat(period Seq, n int) Seq {
	if len(period) == 0 || n <= 0 {
		return Empty
	}
	out := make(Seq, n)
	for i := 0; i < n; i++ {
		out[i] = period[i%len(period)]
	}
	return out
}

// Lub returns the least upper bound of a finite chain given as a slice.
// It reports false if the elements do not form a chain. For finite chains
// of sequences the lub is just the longest element (Fact F2 restricted to
// finite sets).
func Lub(chain []Seq) (Seq, bool) {
	best := Empty
	for _, s := range chain {
		if len(s) > len(best) {
			best = s
		}
	}
	for _, s := range chain {
		if !s.Leq(best) {
			return Empty, false
		}
	}
	return best, true
}

// IsChain reports whether every pair of elements is comparable.
func IsChain(elems []Seq) bool {
	for i := range elems {
		for j := i + 1; j < len(elems); j++ {
			if !elems[i].Compatible(elems[j]) {
				return false
			}
		}
	}
	return true
}

// Hash64 returns a 64-bit structural hash of s: equal sequences hash
// equal. The hash chains value.Value.Hash64 in order with the same mixer
// package trace uses for events, and starts from a seed distinct from
// the empty-trace seed so a sequence never aliases a trace hash.
func (s Seq) Hash64() uint64 {
	h := uint64(0x9b4e_03f1_7c23_d5a7)
	for _, v := range s {
		h = value.HashMix(h, v.Hash64())
	}
	return value.HashMix(h, uint64(len(s)))
}

// String renders the sequence as space-separated values inside ⟨⟩,
// e.g. ⟨0 1 2⟩; ⊥ renders as ⟨⟩.
func (s Seq) String() string {
	var b strings.Builder
	b.WriteString("⟨")
	for i, v := range s {
		if i > 0 {
			b.WriteString(" ")
		}
		b.WriteString(v.String())
	}
	b.WriteString("⟩")
	return b.String()
}
