package fn

import (
	"smoothproc/internal/seq"
	"smoothproc/internal/value"
)

// This file defines the lowering layer between the combinator
// constructors and the bytecode backend (package descvm). Every
// description in the paper is a *denotational object* — a continuous
// function built from a small combinator vocabulary — and the hot path
// of the Section 3.3 tree search evaluates that object at every node.
// Interpreting the combinator tree per evaluation pays a closure call,
// a Tuple allocation and a trace walk per layer; lowering records the
// tree's structure as data so a compiler can turn it into a flat
// program instead. The semantics is unchanged: a lowered function and
// its Apply closure denote the same continuous function, and the
// differential suites (descvm tests, eqlang fuzz, the root parity
// suite) hold the two implementations equal on every input.
//
// Lowering is best-effort by design: combinators wrapping opaque Go
// closures over whole traces (OnChans, ProjectArg, SubstChan) leave IR
// nil, and consumers fall back to the interpreted Apply. Everything the
// eqlang surface language can express is lowerable.

// IRKind discriminates TraceIR nodes. Each kind mirrors exactly one
// combinator constructor of this package.
type IRKind int

const (
	// IRChan is ChanFn: the history of one channel.
	IRChan IRKind = iota + 1
	// IRConst is ConstTraceFn: a finite constant sequence.
	IRConst
	// IROmega is OmegaConstFn: the finite approximation of period^ω,
	// cut at |t| + OmegaPad.
	IROmega
	// IRSeqApply is ApplySeq (and OnChan): a SeqFn post-composed with a
	// width-1 node.
	IRSeqApply
	// IRBiApply is ApplyBi (and OnTwoChans): a BiSeqFn over two width-1
	// nodes.
	IRBiApply
	// IRPair is Pair: concatenation of nodes into a wider tuple.
	IRPair
)

// TraceIR is the structure of a TraceFn as data: the combinator tree
// the constructors built, recorded alongside the Apply closure so a
// backend can lower it. A nil IR means "interpret only".
type TraceIR struct {
	Kind IRKind
	// Chan is the channel name of an IRChan node.
	Chan string
	// Const is the constant of an IRConst node or the period of an
	// IROmega node.
	Const seq.Seq
	// Sf is the sequence function of an IRSeqApply node.
	Sf SeqFn
	// Bi is the binary sequence function of an IRBiApply node.
	Bi BiSeqFn
	// Args are the operand nodes: one for IRSeqApply, two for
	// IRBiApply, any number for IRPair.
	Args []*TraceIR
}

// SeqLowerKind discriminates the specializable sequence primitives.
type SeqLowerKind int

const (
	// LowerFilter is FilterFn: keep the elements satisfying Pred.
	LowerFilter SeqLowerKind = iota + 1
	// LowerMap is MapFn: apply Map pointwise.
	LowerMap
	// LowerPrepend is PrependFn: Const followed by the input.
	LowerPrepend
	// LowerTakeWhile is TakeWhileFn: the longest prefix satisfying Pred.
	LowerTakeWhile
	// LowerConst is ConstFn: ignore the input, return Const.
	LowerConst
)

// SeqLower describes a SeqFn as a specializable primitive. Exactly one
// payload field is meaningful per Kind. Each constructor allocates one
// SeqLower, so pointer identity of the SeqLower is identity of the
// constructed function — the backend keys its common-subexpression
// numbering on it (two MulAdd(2,0) calls are distinct; two copies of
// the package-level Even are the same). A SeqFn with a nil Lower is
// still compilable through its Apply closure, just not specializable.
type SeqLower struct {
	Kind  SeqLowerKind
	Pred  func(v value.Value) bool
	Map   func(v value.Value) value.Value
	Const seq.Seq
}

// BiLower describes a BiSeqFn as a specializable primitive; today the
// only specializable shape is the strict pointwise Zip lifting.
type BiLower struct {
	Zip func(a, b value.Value) value.Value
}
