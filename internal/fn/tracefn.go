package fn

import (
	"fmt"

	"smoothproc/internal/seq"
	"smoothproc/internal/trace"
)

// OmegaPad is how far beyond the input trace's length the finite
// approximation of an ω-constant extends. Soundness of depth-bounded
// comparisons against ω-constants requires every non-ω TraceFn to satisfy
// |component| ≤ |input trace| + Growth with Growth < OmegaPad; the widest
// Growth in the paper's vocabulary is 2 (the prepend "0 2" of the
// Brock-Ackermann process A), so 16 is comfortably conservative. The
// invariant is enforced by CheckTraceFnGrowth in the package tests.
const OmegaPad = 16

// TraceFn is a named continuous function from traces to Tuple (Seq^k).
// Out is k. Support is the set of channels the function reads: for every
// trace t, Apply(t) = Apply(t.Project(Support)). Support is what makes
// Theorem 1's independence, Theorem 2's description constraint (dc), and
// Section 7's "independent of b" conditions checkable syntactically.
//
// Growth bounds component length: every component of Apply(t) has length
// at most |t| + Growth. ω-constants declare Growth = OmegaPad.
type TraceFn struct {
	Name    string
	Out     int
	Support trace.ChanSet
	Growth  int
	Apply   func(trace.Trace) Tuple
	// Omega marks finite ω-approximations (OmegaConstFn and anything
	// built from one): their output grows with the raw input length, so
	// Apply(t) = Apply(t.Project(Support)) holds only up to ⊑, not
	// equality. Support still records the ω-limit's true (empty)
	// dependency — the one Theorem 1 and Section 7 are about — but
	// consumers that need the approximation itself to be determined by
	// its support, such as the solver's Theorem 1 fast path, must check
	// !Omega (see desc.Description.Thm1Eligible).
	Omega bool
	// IR records the combinator tree that built this function so the
	// bytecode backend (package descvm) can lower it; nil means the
	// function is opaque and only Apply is available. See lower.go.
	IR *TraceIR
}

// ChanFn is the paper's convention of using a channel name as a function:
// it maps a trace to the message sequence sent on channel c.
func ChanFn(c string) TraceFn {
	return TraceFn{
		Name:    c,
		Out:     1,
		Support: trace.NewChanSet(c),
		Apply:   func(t trace.Trace) Tuple { return Tuple{t.Channel(c)} },
		IR:      &TraceIR{Kind: IRChan, Chan: c},
	}
}

// OnChan applies a SeqFn to the history of one channel, e.g. even(d).
func OnChan(sf SeqFn, c string) TraceFn {
	return TraceFn{
		Name:    sf.Name + "(" + c + ")",
		Out:     1,
		Support: trace.NewChanSet(c),
		Growth:  sf.Growth,
		Apply:   func(t trace.Trace) Tuple { return Tuple{sf.Apply(t.Channel(c))} },
		IR:      &TraceIR{Kind: IRSeqApply, Sf: sf, Args: []*TraceIR{{Kind: IRChan, Chan: c}}},
	}
}

// OnChans applies a continuous k-ary sequence function to the histories
// of the named channels.
func OnChans(name string, chans []string, growth int, f func([]seq.Seq) seq.Seq) TraceFn {
	cs := append([]string(nil), chans...)
	return TraceFn{
		Name:    name,
		Out:     1,
		Support: trace.NewChanSet(cs...),
		Growth:  growth,
		Apply: func(t trace.Trace) Tuple {
			args := make([]seq.Seq, len(cs))
			for i, c := range cs {
				args[i] = t.Channel(c)
			}
			return Tuple{f(args)}
		},
	}
}

// OnTwoChans applies a BiSeqFn to two channel histories, e.g.
// "b AND c" (Section 4.5) or g(c,b) of the fork (Section 4.6).
func OnTwoChans(bi BiSeqFn, c1, c2 string) TraceFn {
	return TraceFn{
		Name:    bi.Name + "(" + c1 + "," + c2 + ")",
		Out:     1,
		Support: trace.NewChanSet(c1, c2),
		Growth:  bi.Growth,
		Apply:   func(t trace.Trace) Tuple { return Tuple{bi.Apply(t.Channel(c1), t.Channel(c2))} },
		IR: &TraceIR{Kind: IRBiApply, Bi: bi, Args: []*TraceIR{
			{Kind: IRChan, Chan: c1}, {Kind: IRChan, Chan: c2},
		}},
	}
}

// ConstTraceFn ignores its input and returns the constant sequence k —
// the paper's finite constants such as T̄ and "0 2".
func ConstTraceFn(k seq.Seq) TraceFn {
	return TraceFn{
		Name:    k.String(),
		Out:     1,
		Support: trace.ChanSet{},
		Growth:  k.Len(),
		Apply:   func(trace.Trace) Tuple { return Tuple{k} },
		IR:      &TraceIR{Kind: IRConst, Const: k},
	}
}

// OmegaConstFn is the finite approximation of an infinite constant with
// the given period — trues, falses (Section 4.7) and similar. Applied to
// a trace of length n it yields the period repeated to length n +
// OmegaPad, which is a constant function at every fixed depth and
// approximates the ω-constant from below as n grows.
func OmegaConstFn(name string, period seq.Seq) TraceFn {
	return TraceFn{
		Name:    name,
		Out:     1,
		Support: trace.ChanSet{}, // depends only on |t|, not content; see note below
		Growth:  OmegaPad,
		Omega:   true,
		Apply: func(t trace.Trace) Tuple {
			return Tuple{seq.Repeat(period, t.Len()+OmegaPad)}
		},
		IR: &TraceIR{Kind: IROmega, Const: period},
	}
}

// Note on OmegaConstFn's Support: the approximation's value depends on the
// input length but its ω-limit is a true constant; Support records the
// limit's (empty) dependency, which is what Theorem 1 independence and
// Section 7 elimination conditions are about. The approximation is still
// monotone in the trace order, which is all the checkers rely on. The
// Omega flag records the discrepancy so consumers needing the
// approximation itself to be support-determined can opt out.

// ApplySeq post-composes a sequence function with a width-1 trace
// function: t ↦ sf(inner(t)). This is how compound right-hand sides such
// as "0; 2×d" are built: ApplySeq(Prepend0, ApplySeq(Double, ChanFn(d))).
func ApplySeq(sf SeqFn, inner TraceFn) TraceFn {
	if inner.Out != 1 {
		panic("fn: ApplySeq requires a width-1 inner function")
	}
	var ir *TraceIR
	if inner.IR != nil {
		ir = &TraceIR{Kind: IRSeqApply, Sf: sf, Args: []*TraceIR{inner.IR}}
	}
	return TraceFn{
		Name:    sf.Name + "(" + inner.Name + ")",
		Out:     1,
		Support: inner.Support,
		Growth:  sf.Growth + inner.Growth,
		Omega:   inner.Omega,
		Apply:   func(t trace.Trace) Tuple { return Tuple{sf.Apply(inner.Apply(t)[0])} },
		IR:      ir,
	}
}

// ApplyBi combines two width-1 trace functions with a binary sequence
// function: t ↦ bi(a(t), b(t)) — e.g. "b AND c" with arbitrary operand
// expressions.
func ApplyBi(bi BiSeqFn, a, b TraceFn) TraceFn {
	if a.Out != 1 || b.Out != 1 {
		panic("fn: ApplyBi requires width-1 operands")
	}
	var ir *TraceIR
	if a.IR != nil && b.IR != nil {
		ir = &TraceIR{Kind: IRBiApply, Bi: bi, Args: []*TraceIR{a.IR, b.IR}}
	}
	return TraceFn{
		Name:    bi.Name + "(" + a.Name + "," + b.Name + ")",
		Out:     1,
		Support: a.Support.Union(b.Support),
		Growth:  bi.Growth + a.Growth + b.Growth,
		Omega:   a.Omega || b.Omega,
		Apply: func(t trace.Trace) Tuple {
			return Tuple{bi.Apply(a.Apply(t)[0], b.Apply(t)[0])}
		},
		IR: ir,
	}
}

// Pair concatenates trace functions into one of width sum(Out) — the
// paper's mechanism for combining multiple descriptions into one.
func Pair(fns ...TraceFn) TraceFn {
	width := 0
	support := trace.ChanSet{}
	growth := 0
	omega := false
	name := ""
	for i, f := range fns {
		width += f.Out
		support = support.Union(f.Support)
		if f.Growth > growth {
			growth = f.Growth
		}
		omega = omega || f.Omega
		if i > 0 {
			name += ", "
		}
		name += f.Name
	}
	if len(fns) == 1 {
		// Single part: keep the decorated name but delegate Apply
		// directly — no wrapper Tuple is built per application.
		f := fns[0]
		f.Name = "(" + name + ")"
		return f
	}
	local := append([]TraceFn(nil), fns...)
	ir := &TraceIR{Kind: IRPair, Args: make([]*TraceIR, 0, len(local))}
	for _, f := range local {
		if f.IR == nil {
			ir = nil
			break
		}
		ir.Args = append(ir.Args, f.IR)
	}
	return TraceFn{
		Name:    "(" + name + ")",
		Out:     width,
		Support: support,
		Growth:  growth,
		Omega:   omega,
		Apply: func(t trace.Trace) Tuple {
			out := make(Tuple, 0, width)
			for _, f := range local {
				out = append(out, f.Apply(t)...)
			}
			return out
		},
		IR: ir,
	}
}

// ProjectArg precomposes f with projection onto l: t ↦ f(t.Project(l)).
// Because every TraceFn reads only channel histories, precomposing with a
// projection that contains f's support leaves it unchanged; this is used
// to enforce the dc constraint of Theorem 2.
func ProjectArg(f TraceFn, l trace.ChanSet) TraceFn {
	return TraceFn{
		Name:    f.Name + "∘π",
		Out:     f.Out,
		Support: l,
		Growth:  f.Growth,
		Apply:   func(t trace.Trace) Tuple { return f.Apply(t.Project(l)) },
	}
}

// IndependentOf reports whether f's declared support avoids all the given
// channels — the paper's "f is independent of b" (Section 7) and the
// disjoint-support hypothesis of Theorem 1.
func (f TraceFn) IndependentOf(chans ...string) bool {
	for _, c := range chans {
		if f.Support.Has(c) {
			return false
		}
	}
	return true
}

// CheckTraceFnMonotone verifies f(u) ⊑ f(v) along the prefix chain of
// every sample trace (u ranging over all prefixes of v). Prefix chains
// are the only ascending chains that matter in the trace cpo.
func CheckTraceFnMonotone(f TraceFn, samples []trace.Trace) error {
	for _, t := range samples {
		whole := f.Apply(t)
		prev := f.Apply(trace.Empty)
		if len(prev) != f.Out {
			return fmt.Errorf("fn: %s declares Out=%d but returned width %d", f.Name, f.Out, len(prev))
		}
		for n := 1; n <= t.Len(); n++ {
			cur := f.Apply(t.Take(n))
			if !prev.Leq(cur) {
				return fmt.Errorf("fn: %s not monotone on prefixes of %s at length %d", f.Name, t, n)
			}
			prev = cur
		}
		if !prev.Equal(whole) {
			return fmt.Errorf("fn: %s: chain lub mismatch on %s", f.Name, t)
		}
	}
	return nil
}

// CheckTraceFnSupport verifies the declared support: f(t) must equal
// f(t.Project(Support)) on every sample. For ω-approximations (Omega
// set) the projection legitimately shortens the approximation, so only
// compatibility f(t↾Support) ⊑ f(t) is required.
func CheckTraceFnSupport(f TraceFn, samples []trace.Trace) error {
	for _, t := range samples {
		whole, onSupport := f.Apply(t), f.Apply(t.Project(f.Support))
		if f.Omega {
			if !onSupport.Leq(whole) {
				return fmt.Errorf("fn: %s (ω) output on support projection of %s is not an approximation of the full output", f.Name, t)
			}
			continue
		}
		if !whole.Equal(onSupport) {
			return fmt.Errorf("fn: %s reads outside its declared support %v on %s", f.Name, f.Support.Names(), t)
		}
	}
	return nil
}

// CheckTraceFnGrowth verifies the declared growth bound on the samples.
func CheckTraceFnGrowth(f TraceFn, samples []trace.Trace) error {
	for _, t := range samples {
		for i, s := range f.Apply(t) {
			if s.Len() > t.Len()+f.Growth {
				return fmt.Errorf("fn: %s component %d exceeds growth bound %d on %s", f.Name, i, f.Growth, t)
			}
		}
	}
	return nil
}
