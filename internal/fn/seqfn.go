package fn

import (
	"fmt"

	"smoothproc/internal/seq"
	"smoothproc/internal/value"
)

// SeqFn is a named function on message sequences. Every SeqFn constructed
// by this package is continuous (monotone and lub-preserving) in the
// prefix cpo; the package tests verify monotonicity and chain-continuity
// by property testing, since the paper's theorems assume continuity of
// every function appearing in a description.
//
// Growth bounds how much longer the output can be than the input:
// |Apply(s)| ≤ |s| + Growth. Filters and pointwise maps have Growth 0;
// Prepend(k values) has Growth k. The bound is what makes depth-bounded
// checking against ω-constants sound (see OmegaPad in tracefn.go).
type SeqFn struct {
	Name   string
	Growth int
	Apply  func(seq.Seq) seq.Seq
	// Lower records the function as a specializable primitive for the
	// bytecode backend (see lower.go); nil means only Apply is
	// available and the backend falls back to a generic call.
	Lower *SeqLower
}

// Identity is the identity on sequences.
var Identity = SeqFn{Name: "id", Apply: func(s seq.Seq) seq.Seq { return s }}

// FilterFn builds the continuous filter keeping elements satisfying keep.
func FilterFn(name string, keep func(value.Value) bool) SeqFn {
	return SeqFn{
		Name:  name,
		Apply: func(s seq.Seq) seq.Seq { return s.Filter(keep) },
		Lower: &SeqLower{Kind: LowerFilter, Pred: keep},
	}
}

// MapFn builds the continuous pointwise map of a total function.
func MapFn(name string, f func(value.Value) value.Value) SeqFn {
	return SeqFn{
		Name:  name,
		Apply: func(s seq.Seq) seq.Seq { return s.Map(f) },
		Lower: &SeqLower{Kind: LowerMap, Map: f},
	}
}

// PrependFn builds s ↦ vals ; s — the paper's "0; c" (Section 2.1) and
// "T; b" (Section 4.2). Continuous because the prepended part is constant.
func PrependFn(vals ...value.Value) SeqFn {
	prefix := seq.Of(vals...)
	return SeqFn{
		Name:   fmt.Sprintf("prepend%s", prefix),
		Growth: len(vals),
		Apply:  func(s seq.Seq) seq.Seq { return prefix.Concat(s) },
		Lower:  &SeqLower{Kind: LowerPrepend, Const: prefix},
	}
}

// TakeWhileFn builds the longest-prefix-satisfying function.
func TakeWhileFn(name string, keep func(value.Value) bool) SeqFn {
	return SeqFn{
		Name:  name,
		Apply: func(s seq.Seq) seq.Seq { return s.TakeWhile(keep) },
		Lower: &SeqLower{Kind: LowerTakeWhile, Pred: keep},
	}
}

// ComposeSeq builds g ∘ f (apply f first).
func ComposeSeq(g, f SeqFn) SeqFn {
	return SeqFn{
		Name:   g.Name + "∘" + f.Name,
		Growth: g.Growth + f.Growth,
		Apply:  func(s seq.Seq) seq.Seq { return g.Apply(f.Apply(s)) },
	}
}

// ConstFn ignores its input and returns k. Constant functions are
// trivially continuous; the paper's T̄ (Section 4.3) and "0 2" (Section
// 2.4) are constants.
func ConstFn(k seq.Seq) SeqFn {
	return SeqFn{
		Name:   "const" + k.String(),
		Growth: k.Len(),
		Apply:  func(seq.Seq) seq.Seq { return k },
		Lower:  &SeqLower{Kind: LowerConst, Const: k},
	}
}

// BiSeqFn is a named continuous function of two sequences, such as the
// paper's AND (Section 4.5) and the oracle selections g(c,b), h(c,b) of
// the fork process (Section 4.6).
type BiSeqFn struct {
	Name   string
	Growth int
	Apply  func(a, b seq.Seq) seq.Seq
	// Lower records the function as a specializable primitive for the
	// bytecode backend; nil falls back to a generic Apply call.
	Lower *BiLower
}

// ZipFn lifts a total binary function pointwise, cutting at the shorter
// argument (the strict lifting: output element i exists only when both
// operands do).
func ZipFn(name string, f func(a, b value.Value) value.Value) BiSeqFn {
	return BiSeqFn{
		Name:  name,
		Apply: func(a, b seq.Seq) seq.Seq { return seq.Zip(a, b, f) },
		Lower: &BiLower{Zip: f},
	}
}

// CheckSeqFnMonotone verifies f(x) ⊑ f(y) on every ordered pair of
// samples, and additionally on every (prefix, whole) pair drawn from the
// samples themselves.
func CheckSeqFnMonotone(f SeqFn, samples []seq.Seq) error {
	all := make([]seq.Seq, 0, len(samples)*3)
	for _, s := range samples {
		all = append(all, s)
		all = append(all, s.Take(s.Len()/2))
	}
	for i, x := range all {
		for j, y := range all {
			if !x.Leq(y) {
				continue
			}
			if !f.Apply(x).Leq(f.Apply(y)) {
				return fmt.Errorf("fn: %s not monotone: f(%s) ⋢ f(%s) (samples %d,%d)", f.Name, x, y, i, j)
			}
		}
	}
	return nil
}

// CheckSeqFnChain verifies that f maps the full prefix chain of s to a
// chain whose lub is f(s) — the finitary continuity check of Fact F2/F3
// style. Monotonicity makes this automatic for finite inputs, so a
// failure indicates a genuinely broken function.
func CheckSeqFnChain(f SeqFn, s seq.Seq) error {
	var prev seq.Seq
	for n := 0; n <= s.Len(); n++ {
		cur := f.Apply(s.Take(n))
		if n > 0 && !prev.Leq(cur) {
			return fmt.Errorf("fn: %s image of prefix chain of %s not a chain at %d", f.Name, s, n)
		}
		prev = cur
	}
	if !prev.Equal(f.Apply(s)) {
		return fmt.Errorf("fn: %s: lub of image ≠ image of lub for %s", f.Name, s)
	}
	return nil
}

// CheckSeqFnGrowth verifies the declared Growth bound on the samples.
func CheckSeqFnGrowth(f SeqFn, samples []seq.Seq) error {
	for _, s := range samples {
		if out := f.Apply(s); out.Len() > s.Len()+f.Growth {
			return fmt.Errorf("fn: %s growth bound %d violated: |f(%s)| = %d", f.Name, f.Growth, s, out.Len())
		}
	}
	return nil
}

// CheckBiSeqFnMonotone verifies monotonicity of a BiSeqFn in both
// arguments over the sample cross product.
func CheckBiSeqFnMonotone(f BiSeqFn, samples []seq.Seq) error {
	for _, a := range samples {
		for _, b := range samples {
			whole := f.Apply(a, b)
			for n := 0; n <= a.Len(); n++ {
				if !f.Apply(a.Take(n), b).Leq(whole) {
					return fmt.Errorf("fn: %s not monotone in arg 1 at (%s, %s)", f.Name, a, b)
				}
			}
			for n := 0; n <= b.Len(); n++ {
				if !f.Apply(a, b.Take(n)).Leq(whole) {
					return fmt.Errorf("fn: %s not monotone in arg 2 at (%s, %s)", f.Name, a, b)
				}
			}
		}
	}
	return nil
}
