// Package fn implements the continuous functions of the paper as
// first-class values: functions on message sequences (SeqFn, BiSeqFn),
// functions from traces into tuples of sequences (TraceFn), and the
// concrete vocabulary used by the paper's examples — even, odd, TRUE,
// FALSE, ZERO, ONE, pointwise arithmetic (2×d, 2×d+1), R, AND, the
// prefix-until-F function g, the counting function h, tagging, untagging,
// and oracle-driven selection.
//
// The codomain of every description in the paper is (isomorphic to) a
// finite tuple of message sequences ordered componentwise by prefix —
// the paper's own note on combining multiple equations into one uses
// exactly this product. Tuple is that codomain.
package fn

import (
	"strings"

	"smoothproc/internal/seq"
)

// Tuple is an element of the codomain cpo Seq^k, ordered componentwise by
// prefix. Width-1 tuples stand in for plain sequences.
type Tuple []seq.Seq

// BottomTuple returns the k-wide bottom (ε, ..., ε).
func BottomTuple(k int) Tuple {
	t := make(Tuple, k)
	for i := range t {
		t[i] = seq.Empty
	}
	return t
}

// TupleOf builds a tuple from sequences.
func TupleOf(ss ...seq.Seq) Tuple {
	t := make(Tuple, len(ss))
	copy(t, ss)
	return t
}

// Width returns the number of components.
func (t Tuple) Width() int { return len(t) }

// Leq reports the componentwise prefix order t ⊑ u. Tuples of different
// widths are never comparable.
func (t Tuple) Leq(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if !t[i].Leq(u[i]) {
			return false
		}
	}
	return true
}

// Equal reports componentwise equality.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if !t[i].Equal(u[i]) {
			return false
		}
	}
	return true
}

// Compatible reports whether t and u have a common upper bound, i.e.
// every component pair is prefix-comparable. Incompatibility between
// f(tₙ) and g(tₙ) at any depth n definitively refutes the limit condition
// f(t) = g(t) for the ω-trace t they approximate (see desc.CheckOmega).
func (t Tuple) Compatible(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if !t[i].Compatible(u[i]) {
			return false
		}
	}
	return true
}

// Join returns the componentwise lub of two compatible tuples.
func (t Tuple) Join(u Tuple) (Tuple, bool) {
	if !t.Compatible(u) {
		return nil, false
	}
	out := make(Tuple, len(t))
	for i := range t {
		if t[i].Leq(u[i]) {
			out[i] = u[i]
		} else {
			out[i] = t[i]
		}
	}
	return out, true
}

// AgreedLen returns, per component, the length of the common prefix of t
// and u — the "settled agreement" used to certify limit conditions of
// ω-solutions at increasing depths.
func (t Tuple) AgreedLen(u Tuple) []int {
	n := len(t)
	if len(u) < n {
		n = len(u)
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = t[i].CommonPrefixLen(u[i])
	}
	return out
}

// MinLen returns the length of the shortest component.
func (t Tuple) MinLen() int {
	if len(t) == 0 {
		return 0
	}
	m := t[0].Len()
	for _, s := range t[1:] {
		if s.Len() < m {
			m = s.Len()
		}
	}
	return m
}

// String renders the tuple as (⟨..⟩, ⟨..⟩, ...); width-1 tuples render as
// the bare sequence.
func (t Tuple) String() string {
	if len(t) == 1 {
		return t[0].String()
	}
	var b strings.Builder
	b.WriteString("(")
	for i, s := range t {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(s.String())
	}
	b.WriteString(")")
	return b.String()
}
