package fn

import (
	"smoothproc/internal/seq"
	"smoothproc/internal/trace"
	"smoothproc/internal/value"
)

// The concrete function vocabulary of the paper's examples. Each value
// here is continuous; the package tests property-check monotonicity,
// chain continuity, support and growth for all of them.
var (
	// Even keeps the even integers of a sequence — the paper's even()
	// (Section 2.2).
	Even = FilterFn("even", value.Value.IsEvenInt)

	// Odd keeps the odd integers — the paper's odd().
	Odd = FilterFn("odd", value.Value.IsOddInt)

	// TrueBits keeps the T's — the paper's TRUE (Section 4.7).
	TrueBits = FilterFn("TRUE", value.Value.IsTrue)

	// FalseBits keeps the F's — the paper's FALSE (Section 4.7).
	FalseBits = FilterFn("FALSE", value.Value.IsFalse)

	// ZeroTag keeps pairs tagged 0 — the paper's ZERO (Section 4.10).
	ZeroTag = FilterFn("ZERO", hasTag(0))

	// OneTag keeps pairs tagged 1 — the paper's ONE (Section 4.10).
	OneTag = FilterFn("ONE", hasTag(1))

	// Double is the pointwise 2×d of Section 2.3.
	Double = MulAdd(2, 0)

	// DoublePlus1 is the pointwise 2×d+1 of Section 2.3.
	DoublePlus1 = MulAdd(2, 1)

	// RMap is the pointwise lifting of the paper's R (Section 4.3):
	// R(T) = R(F) = T, R(⊥) = ⊥. The lifting of the flat-domain function
	// to sequences maps every defined element to T.
	RMap = MapFn("R", func(value.Value) value.Value { return value.T })

	// UntilF is the paper's g of Section 4.8: the longest prefix
	// containing no F.
	UntilF = TakeWhileFn("untilF", func(v value.Value) bool { return !v.IsFalse() })

	// CountTs is the paper's h of Section 4.9: ⊥ until the first F
	// arrives, then the singleton sequence holding the number of T's
	// received before it.
	CountTs = SeqFn{Name: "countT", Growth: 1, Apply: func(s seq.Seq) seq.Seq {
		i := s.Index(value.Value.IsFalse)
		if i < 0 {
			return seq.Empty
		}
		return seq.Of(value.Int(int64(s.Take(i).Count(value.Value.IsTrue))))
	}}

	// Tag0 and Tag1 are the tagging maps t0, t1 of the fair-merge network
	// (Section 4.10): n ↦ (0, n) and n ↦ (1, n).
	Tag0 = TagWith(0)
	Tag1 = TagWith(1)

	// Untag is the paper's r of Section 4.10: (k, n) ↦ n.
	Untag = MapFn("untag", func(v value.Value) value.Value {
		if _, snd, ok := v.AsPair(); ok {
			return snd
		}
		return v
	})

	// And is the strict AND of Section 4.5 lifted pointwise: the result
	// element is ⊥ (absent) unless both operands are present; T iff both
	// are T, F otherwise.
	And = ZipFn("AND", func(a, b value.Value) value.Value {
		return value.Bool(a.IsTrue() && b.IsTrue())
	})

	// NonStrictAnd is the reader-exercise variant of Section 4.5: the
	// result is F as soon as either operand is F, even if the other is
	// still ⊥; T only when both are T. Still continuous — the exercise's
	// point is about the description, not continuity.
	NonStrictAnd = BiSeqFn{Name: "nsAND", Apply: func(a, b seq.Seq) seq.Seq {
		out := seq.Empty
		for i := 0; ; i++ {
			aDef, bDef := i < a.Len(), i < b.Len()
			switch {
			case aDef && bDef:
				out = out.Append(value.Bool(a.At(i).IsTrue() && b.At(i).IsTrue()))
			case aDef && a.At(i).IsFalse(), bDef && b.At(i).IsFalse():
				out = out.Append(value.F)
			default:
				return out
			}
		}
	}}

	// SelectTrue is the fork's g(c,b) (Section 4.6): elements of the
	// first argument at positions where the oracle (second argument) is T.
	SelectTrue = BiSeqFn{Name: "selT", Apply: func(c, b seq.Seq) seq.Seq {
		return seq.Select(c, b, true)
	}}

	// SelectFalse is the fork's h(c,b): positions where the oracle is F.
	SelectFalse = BiSeqFn{Name: "selF", Apply: func(c, b seq.Seq) seq.Seq {
		return seq.Select(c, b, false)
	}}
)

// FBA is the Brock-Ackermann function f of Section 2.4: f(ε) = f(⟨n⟩) =
// ε and f(n; m; x) = ⟨n+1⟩. Continuous — constant ε below length 2 and
// constant ⟨s₀+1⟩ from length 2 on.
var FBA = SeqFn{Name: "fBA", Growth: 1, Apply: func(s seq.Seq) seq.Seq {
	if s.Len() < 2 {
		return seq.Empty
	}
	if n, ok := s.At(0).AsInt(); ok {
		return seq.Of(value.Int(n + 1))
	}
	return seq.Empty
}}

// MulAdd builds the pointwise map n ↦ a×n + b on integer elements;
// non-integers pass through unchanged (the paper only applies it to
// integer channels).
func MulAdd(a, b int64) SeqFn {
	name := "linear"
	switch {
	case a == 2 && b == 0:
		name = "2×·"
	case a == 2 && b == 1:
		name = "2×·+1"
	}
	return MapFn(name, func(v value.Value) value.Value {
		if n, ok := v.AsInt(); ok {
			return value.Int(a*n + b)
		}
		return v
	})
}

// TagWith builds the map n ↦ (tag, n).
func TagWith(tag int64) SeqFn {
	return MapFn("tag"+value.Int(tag).String(), func(v value.Value) value.Value {
		return value.Pair(value.Int(tag), v)
	})
}

func hasTag(tag int64) func(value.Value) bool {
	return func(v value.Value) bool {
		fst, _, ok := v.AsPair()
		if !ok {
			return false
		}
		n, ok := fst.AsInt()
		return ok && n == tag
	}
}

// SubstChan returns g′ with channel b's history replaced by h — the
// substitution step of variable elimination (Section 7): g′(t) =
// r(h(t), t_c) where g(t) = r(t_b, t_c). Because every TraceFn reads only
// per-channel histories, g′ is realised by rewriting the argument trace:
// drop b's events and append (b, v) events carrying h(t) instead. h must
// have Out = 1 and, per the elimination side conditions, must be
// independent of b (the caller — desc.Eliminate — checks this).
func SubstChan(g TraceFn, b string, h TraceFn) TraceFn {
	if h.Out != 1 {
		panic("fn: SubstChan requires a width-1 replacement function")
	}
	support := g.Support.Without(b).Union(h.Support)
	return TraceFn{
		Name:    g.Name + "[" + b + ":=" + h.Name + "]",
		Out:     g.Out,
		Support: support,
		Growth:  g.Growth + h.Growth,
		Omega:   g.Omega || h.Omega,
		Apply: func(t trace.Trace) Tuple {
			rewritten := make([]trace.Event, 0, t.Len())
			for _, e := range t.Events() {
				if e.Ch != b {
					rewritten = append(rewritten, e)
				}
			}
			for _, v := range h.Apply(t)[0] {
				rewritten = append(rewritten, trace.E(b, v))
			}
			return g.Apply(trace.FromEvents(rewritten))
		},
	}
}
