package fn

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"smoothproc/internal/seq"
	"smoothproc/internal/trace"
	"smoothproc/internal/value"
)

// seqSamples exercises every element kind the vocabulary touches.
func seqSamples() []seq.Seq {
	return []seq.Seq{
		seq.Empty,
		seq.OfInts(0),
		seq.OfInts(0, 1, 2, 3, 4),
		seq.OfInts(-1, 0, -2),
		seq.OfBools(true, true, false, true),
		seq.OfBools(false),
		seq.Of(value.Pair(value.Int(0), value.Int(7)), value.Pair(value.Int(1), value.Int(8))),
	}
}

// vocabulary lists every SeqFn the paper uses.
func vocabulary() []SeqFn {
	return []SeqFn{
		Identity,
		Even, Odd,
		TrueBits, FalseBits,
		ZeroTag, OneTag,
		Double, DoublePlus1, MulAdd(3, -1),
		RMap,
		UntilF,
		CountTs,
		Tag0, Tag1, Untag,
		PrependFn(value.Int(0)),
		PrependFn(value.T, value.F),
		ConstFn(seq.OfInts(9)),
		ComposeSeq(PrependFn(value.Int(0)), Double),
		TakeWhileFn("untilNeg", func(v value.Value) bool { return !v.IsOddInt() }),
		FilterFn("evens", value.Value.IsEvenInt),
		MapFn("neg", func(v value.Value) value.Value {
			if n, ok := v.AsInt(); ok {
				return value.Int(-n)
			}
			return v
		}),
	}
}

func TestVocabularyMonotoneContinuousBounded(t *testing.T) {
	samples := seqSamples()
	for _, f := range vocabulary() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			if err := CheckSeqFnMonotone(f, samples); err != nil {
				t.Error(err)
			}
			for _, s := range samples {
				if err := CheckSeqFnChain(f, s); err != nil {
					t.Error(err)
				}
			}
			if err := CheckSeqFnGrowth(f, samples); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestBiVocabularyMonotone(t *testing.T) {
	samples := seqSamples()
	for _, f := range []BiSeqFn{And, NonStrictAnd, SelectTrue, SelectFalse} {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			if err := CheckBiSeqFnMonotone(f, samples); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestEvenOddBehaviour(t *testing.T) {
	s := seq.OfInts(0, 1, 2, 3, -1, -2)
	if got := Even.Apply(s); !got.Equal(seq.OfInts(0, 2, -2)) {
		t.Errorf("even = %s", got)
	}
	if got := Odd.Apply(s); !got.Equal(seq.OfInts(1, 3, -1)) {
		t.Errorf("odd = %s", got)
	}
}

func TestPointwiseArithmetic(t *testing.T) {
	s := seq.OfInts(0, 1, 2)
	if got := Double.Apply(s); !got.Equal(seq.OfInts(0, 2, 4)) {
		t.Errorf("2×d = %s", got)
	}
	if got := DoublePlus1.Apply(s); !got.Equal(seq.OfInts(1, 3, 5)) {
		t.Errorf("2×d+1 = %s", got)
	}
	// The Section 2.3 block identity: even(B_{i+1}) = 2×B_i and
	// odd(B_{i+1}) = 2×B_i + 1.
	b2 := seq.OfInts(0, 1, 2, 3)
	b1 := seq.OfInts(0, 1)
	if !Even.Apply(b2).Equal(Double.Apply(b1)) {
		t.Error("even(B_2) ≠ 2×B_1")
	}
	if !Odd.Apply(b2).Equal(DoublePlus1.Apply(b1)) {
		t.Error("odd(B_2) ≠ 2×B_1 + 1")
	}
}

func TestRMap(t *testing.T) {
	got := RMap.Apply(seq.OfBools(true, false, true))
	if !got.Equal(seq.OfBools(true, true, true)) {
		t.Errorf("R = %s", got)
	}
	if !RMap.Apply(seq.Empty).IsEmpty() {
		t.Error("R(ε) ≠ ε")
	}
}

func TestUntilFAndCountTs(t *testing.T) {
	s := seq.OfBools(true, true, false, true)
	if got := UntilF.Apply(s); !got.Equal(seq.OfBools(true, true)) {
		t.Errorf("untilF = %s", got)
	}
	if got := UntilF.Apply(seq.OfBools(true, true)); !got.Equal(seq.OfBools(true, true)) {
		t.Errorf("untilF without F = %s", got)
	}
	if got := CountTs.Apply(s); !got.Equal(seq.OfInts(2)) {
		t.Errorf("countT = %s", got)
	}
	if got := CountTs.Apply(seq.OfBools(true, true)); !got.IsEmpty() {
		t.Errorf("countT without F should be ⊥, got %s", got)
	}
	if got := CountTs.Apply(seq.OfBools(false)); !got.Equal(seq.OfInts(0)) {
		t.Errorf("countT(F) = %s, want ⟨0⟩", got)
	}
}

func TestTagUntag(t *testing.T) {
	s := seq.OfInts(5, 6)
	tagged := Tag0.Apply(s)
	want := seq.Of(value.Pair(value.Int(0), value.Int(5)), value.Pair(value.Int(0), value.Int(6)))
	if !tagged.Equal(want) {
		t.Errorf("tag0 = %s", tagged)
	}
	if got := Untag.Apply(tagged); !got.Equal(s) {
		t.Errorf("untag∘tag0 = %s", got)
	}
	mixed := seq.Of(
		value.Pair(value.Int(0), value.Int(1)),
		value.Pair(value.Int(1), value.Int(2)),
		value.Pair(value.Int(0), value.Int(3)),
	)
	if got := ZeroTag.Apply(mixed); got.Len() != 2 {
		t.Errorf("ZERO = %s", got)
	}
	if got := OneTag.Apply(mixed); got.Len() != 1 {
		t.Errorf("ONE = %s", got)
	}
}

func TestAndVariants(t *testing.T) {
	tt := seq.OfBools(true)
	ff := seq.OfBools(false)
	if got := And.Apply(tt, tt); !got.Equal(seq.OfBools(true)) {
		t.Errorf("T AND T = %s", got)
	}
	if got := And.Apply(tt, ff); !got.Equal(seq.OfBools(false)) {
		t.Errorf("T AND F = %s", got)
	}
	// Strict: one missing operand gives ⊥.
	if got := And.Apply(tt, seq.Empty); !got.IsEmpty() {
		t.Errorf("T AND ⊥ = %s, want ⊥ (strict)", got)
	}
	// Non-strict: F dominates a missing operand.
	if got := NonStrictAnd.Apply(ff, seq.Empty); !got.Equal(seq.OfBools(false)) {
		t.Errorf("nsAND(F, ⊥) = %s, want ⟨F⟩", got)
	}
	if got := NonStrictAnd.Apply(tt, seq.Empty); !got.IsEmpty() {
		t.Errorf("nsAND(T, ⊥) = %s, want ⊥", got)
	}
	if got := NonStrictAnd.Apply(seq.OfBools(true, false), seq.OfBools(true)); !got.Equal(seq.OfBools(true, false)) {
		t.Errorf("nsAND(⟨T F⟩, ⟨T⟩) = %s", got)
	}
}

func TestSelectFns(t *testing.T) {
	c := seq.OfInts(10, 20, 30)
	b := seq.OfBools(true, false, true)
	if got := SelectTrue.Apply(c, b); !got.Equal(seq.OfInts(10, 30)) {
		t.Errorf("selT = %s", got)
	}
	if got := SelectFalse.Apply(c, b); !got.Equal(seq.OfInts(20)) {
		t.Errorf("selF = %s", got)
	}
}

func TestTupleOrder(t *testing.T) {
	a := TupleOf(seq.OfInts(1), seq.Empty)
	b := TupleOf(seq.OfInts(1, 2), seq.OfInts(3))
	if !a.Leq(b) || b.Leq(a) {
		t.Error("componentwise order wrong")
	}
	if a.Leq(TupleOf(seq.OfInts(1))) {
		t.Error("different widths must be incomparable")
	}
	if !a.Compatible(b) {
		t.Error("ordered tuples are compatible")
	}
	c := TupleOf(seq.OfInts(9), seq.Empty)
	if a.Compatible(c) {
		t.Error("diverging tuples are incompatible")
	}
	j, ok := a.Join(b)
	if !ok || !j.Equal(b) {
		t.Errorf("join = %s, %v", j, ok)
	}
	if _, ok := a.Join(c); ok {
		t.Error("join of incompatible tuples must fail")
	}
	if got := a.AgreedLen(TupleOf(seq.OfInts(1, 5), seq.OfInts(7))); got[0] != 1 || got[1] != 0 {
		t.Errorf("AgreedLen = %v", got)
	}
	if BottomTuple(2).MinLen() != 0 || b.MinLen() != 1 {
		t.Error("MinLen wrong")
	}
	if got := TupleOf(seq.OfInts(1)).String(); got != "⟨1⟩" {
		t.Errorf("width-1 String = %q", got)
	}
	if got := a.String(); got != "(⟨1⟩, ⟨⟩)" {
		t.Errorf("String = %q", got)
	}
}

// traceSamples for TraceFn checks.
func traceSamples() []trace.Trace {
	return []trace.Trace{
		trace.Empty,
		trace.Of(trace.E("b", value.Int(0))),
		trace.Of(trace.E("b", value.Int(0)), trace.E("c", value.Int(1)), trace.E("d", value.Int(0))),
		trace.Of(trace.E("c", value.T), trace.E("d", value.F), trace.E("b", value.T)),
	}
}

func traceVocabulary() []TraceFn {
	return []TraceFn{
		ChanFn("b"),
		OnChan(Even, "d"),
		OnChan(PrependFn(value.Int(0)), "c"),
		OnChans("sum-style", []string{"b", "c"}, 0, func(args []seq.Seq) seq.Seq {
			return seq.Zip(args[0], args[1], func(a, b value.Value) value.Value { return a })
		}),
		OnTwoChans(And, "b", "c"),
		ConstTraceFn(seq.OfInts(0, 2)),
		OmegaConstFn("trues", seq.Of(value.T)),
		Pair(ChanFn("b"), OnChan(Odd, "d")),
		ProjectArg(ChanFn("b"), trace.NewChanSet("b")),
	}
}

func TestTraceVocabularyChecks(t *testing.T) {
	samples := traceSamples()
	for _, f := range traceVocabulary() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			if err := CheckTraceFnMonotone(f, samples); err != nil {
				t.Error(err)
			}
			if err := CheckTraceFnGrowth(f, samples); err != nil {
				t.Error(err)
			}
			if f.Name != "trues" { // ω-constants depend on |t|; see package doc
				if err := CheckTraceFnSupport(f, samples); err != nil {
					t.Error(err)
				}
			}
		})
	}
}

func TestGrowthInvariantForOmegaPad(t *testing.T) {
	// The OmegaPad soundness argument requires every non-ω function's
	// growth to stay strictly below OmegaPad.
	for _, f := range vocabulary() {
		if f.Growth >= OmegaPad {
			t.Errorf("%s has Growth %d ≥ OmegaPad %d", f.Name, f.Growth, OmegaPad)
		}
	}
	for _, f := range traceVocabulary() {
		if f.Name == "trues" {
			continue
		}
		if f.Growth >= OmegaPad {
			t.Errorf("%s has Growth %d ≥ OmegaPad %d", f.Name, f.Growth, OmegaPad)
		}
	}
}

func TestChanFnAndPair(t *testing.T) {
	tr := trace.Of(trace.E("b", value.Int(1)), trace.E("c", value.Int(2)), trace.E("b", value.Int(3)))
	if got := ChanFn("b").Apply(tr); !got[0].Equal(seq.OfInts(1, 3)) {
		t.Errorf("b(t) = %s", got)
	}
	p := Pair(ChanFn("b"), ChanFn("c"), ChanFn("b"))
	if p.Out != 3 {
		t.Errorf("Pair width = %d", p.Out)
	}
	got := p.Apply(tr)
	if !got[0].Equal(seq.OfInts(1, 3)) || !got[1].Equal(seq.OfInts(2)) || !got[2].Equal(seq.OfInts(1, 3)) {
		t.Errorf("Pair apply = %s", got)
	}
	if !p.Support.Has("b") || !p.Support.Has("c") {
		t.Error("Pair support not unioned")
	}
}

func TestIndependentOf(t *testing.T) {
	f := OnTwoChans(And, "b", "c")
	if f.IndependentOf("b") || !f.IndependentOf("d") {
		t.Error("IndependentOf wrong")
	}
}

func TestSubstChan(t *testing.T) {
	// g = b(t) (the history of b); h = ⟨7⟩ constant. g[b := h] must be
	// the constant ⟨7⟩ regardless of actual b events.
	g := ChanFn("b")
	h := ConstTraceFn(seq.OfInts(7))
	sub := SubstChan(g, "b", h)
	tr := trace.Of(trace.E("b", value.Int(1)), trace.E("c", value.Int(2)))
	if got := sub.Apply(tr); !got[0].Equal(seq.OfInts(7)) {
		t.Errorf("substituted = %s", got)
	}
	if sub.Support.Has("b") {
		t.Error("substituted function must not depend on b")
	}
	// Substitution into a function of other channels is the identity.
	g2 := ChanFn("c")
	sub2 := SubstChan(g2, "b", h)
	if got := sub2.Apply(tr); !got[0].Equal(seq.OfInts(2)) {
		t.Errorf("unrelated substitution = %s", got)
	}
}

func TestSubstChanPanicsOnWideReplacement(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for width-2 replacement")
		}
	}()
	SubstChan(ChanFn("b"), "b", Pair(ChanFn("c"), ChanFn("d")))
}

func TestOmegaConstFn(t *testing.T) {
	f := OmegaConstFn("trues", seq.Of(value.T))
	short := f.Apply(trace.Empty)[0]
	long := f.Apply(trace.Of(trace.E("c", value.T), trace.E("c", value.T)))[0]
	if short.Len() != OmegaPad || long.Len() != 2+OmegaPad {
		t.Errorf("lengths %d, %d", short.Len(), long.Len())
	}
	if !short.Leq(long) {
		t.Error("ω-approximations must ascend with input length")
	}
}

// quick generator over boolean sequences.
type genBits struct{ S seq.Seq }

// Generate implements quick.Generator.
func (genBits) Generate(r *rand.Rand, _ int) reflect.Value {
	n := r.Intn(8)
	s := make(seq.Seq, n)
	for i := range s {
		s[i] = value.Bool(r.Intn(2) == 0)
	}
	return reflect.ValueOf(genBits{S: s})
}

func TestQuickUntilFCountTsCoherent(t *testing.T) {
	// h outputs the length of g's prefix when an F exists.
	f := func(a genBits) bool {
		g := UntilF.Apply(a.S)
		h := CountTs.Apply(a.S)
		if a.S.Index(value.Value.IsFalse) < 0 {
			return h.IsEmpty()
		}
		return h.Len() == 1 && h.At(0).Equal(value.Int(int64(g.Len())))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickFilterPartition(t *testing.T) {
	// TRUE(s) and FALSE(s) partition a boolean sequence.
	f := func(a genBits) bool {
		return TrueBits.Apply(a.S).Len()+FalseBits.Apply(a.S).Len() == a.S.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSelectPartition(t *testing.T) {
	// g(c,b) and h(c,b) partition the oracle-covered prefix of c — the
	// fork property (Section 4.6).
	f := func(a, b genBits) bool {
		n := SelectTrue.Apply(a.S, b.S).Len() + SelectFalse.Apply(a.S, b.S).Len()
		m := a.S.Len()
		if b.S.Len() < m {
			m = b.S.Len()
		}
		return n == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
