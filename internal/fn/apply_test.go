package fn

import (
	"testing"

	"smoothproc/internal/seq"
	"smoothproc/internal/trace"
	"smoothproc/internal/value"
)

func TestApplySeqComposesOverChannel(t *testing.T) {
	// even(2×d + prepend): the compound right-hand-side shape eqlang
	// compiles to.
	f := ApplySeq(Even, ApplySeq(PrependFn(value.Int(0)), ApplySeq(Double, ChanFn("d"))))
	tr := trace.Of(trace.E("d", value.Int(1)), trace.E("d", value.Int(2)))
	// 2×⟨1 2⟩ = ⟨2 4⟩; prepend 0 → ⟨0 2 4⟩; even → ⟨0 2 4⟩.
	if got := f.Apply(tr)[0]; !got.Equal(seq.OfInts(0, 2, 4)) {
		t.Errorf("compound = %s", got)
	}
	if !f.Support.Has("d") || f.Support.Has("b") {
		t.Error("support not propagated")
	}
	if f.Out != 1 {
		t.Errorf("width = %d", f.Out)
	}
	if err := CheckTraceFnMonotone(f, []trace.Trace{tr}); err != nil {
		t.Error(err)
	}
}

func TestApplySeqPanicsOnWideInner(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on width-2 inner")
		}
	}()
	ApplySeq(Even, Pair(ChanFn("a"), ChanFn("b")))
}

func TestApplyBiCombinesOperands(t *testing.T) {
	f := ApplyBi(And, ChanFn("b"), ApplySeq(RMap, ChanFn("c")))
	tr := trace.Of(
		trace.E("b", value.T), trace.E("c", value.F),
		trace.E("b", value.F), trace.E("c", value.T),
	)
	// b = ⟨T F⟩, R(c) = ⟨T T⟩, AND = ⟨T F⟩.
	if got := f.Apply(tr)[0]; !got.Equal(seq.OfBools(true, false)) {
		t.Errorf("AND = %s", got)
	}
	if !f.Support.Has("b") || !f.Support.Has("c") {
		t.Error("support not unioned")
	}
	if err := CheckTraceFnMonotone(f, []trace.Trace{tr}); err != nil {
		t.Error(err)
	}
}

func TestApplyBiPanicsOnWideOperand(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on width-2 operand")
		}
	}()
	ApplyBi(And, Pair(ChanFn("a"), ChanFn("b")), ChanFn("c"))
}

func TestTupleWidth(t *testing.T) {
	if TupleOf(seq.Empty, seq.OfInts(1)).Width() != 2 {
		t.Error("Width wrong")
	}
}

func TestCheckersCatchBrokenFunctions(t *testing.T) {
	// A non-monotone "function": reverses its input.
	rev := SeqFn{Name: "rev", Apply: func(s seq.Seq) seq.Seq {
		out := make(seq.Seq, s.Len())
		for i := 0; i < s.Len(); i++ {
			out[i] = s.At(s.Len() - 1 - i)
		}
		return out
	}}
	samples := []seq.Seq{seq.OfInts(1, 2, 3)}
	if err := CheckSeqFnMonotone(rev, samples); err == nil {
		t.Error("reverse accepted as monotone")
	}
	if err := CheckSeqFnChain(rev, seq.OfInts(1, 2, 3)); err == nil {
		t.Error("reverse accepted as chain-continuous")
	}
	// A growth liar: claims 0 but prepends.
	liar := SeqFn{Name: "liar", Growth: 0, Apply: PrependFn(value.Int(9)).Apply}
	if err := CheckSeqFnGrowth(liar, samples); err == nil {
		t.Error("growth lie accepted")
	}
	// A trace function lying about its support.
	supLiar := TraceFn{
		Name:    "supliar",
		Out:     1,
		Support: trace.NewChanSet("a"),
		Apply:   func(tr trace.Trace) Tuple { return Tuple{tr.Channel("b")} },
	}
	tr := trace.Of(trace.E("b", value.Int(1)))
	if err := CheckTraceFnSupport(supLiar, []trace.Trace{tr}); err == nil {
		t.Error("support lie accepted")
	}
	// A trace function violating monotonicity.
	nonMono := TraceFn{
		Name:    "nonmono",
		Out:     1,
		Support: trace.NewChanSet("b"),
		Apply: func(tr trace.Trace) Tuple {
			if tr.Len()%2 == 1 {
				return Tuple{seq.OfInts(9)}
			}
			return Tuple{seq.Empty}
		},
	}
	long := trace.Of(trace.E("b", value.Int(1)), trace.E("b", value.Int(2)))
	if err := CheckTraceFnMonotone(nonMono, []trace.Trace{long}); err == nil {
		t.Error("non-monotone trace fn accepted")
	}
	// A trace function exceeding its growth bound.
	growLiar := TraceFn{
		Name:    "growliar",
		Out:     1,
		Support: trace.ChanSet{},
		Growth:  0,
		Apply:   func(tr trace.Trace) Tuple { return Tuple{seq.OfInts(1, 2, 3)} },
	}
	if err := CheckTraceFnGrowth(growLiar, []trace.Trace{trace.Empty}); err == nil {
		t.Error("growth-bound violation accepted")
	}
	// A width liar: declares Out=2 but returns width 1.
	widthLiar := TraceFn{
		Name:    "widthliar",
		Out:     2,
		Support: trace.ChanSet{},
		Apply:   func(tr trace.Trace) Tuple { return Tuple{seq.Empty} },
	}
	if err := CheckTraceFnMonotone(widthLiar, []trace.Trace{trace.Empty}); err == nil {
		t.Error("width lie accepted")
	}
}
