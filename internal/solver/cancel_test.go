package solver

import (
	"context"
	"testing"
	"time"

	"smoothproc/internal/trace"
)

// A context cancelled before the search starts must stop every mode
// after at most one node, with the cancellation visible in the result.
func TestEnumerateCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := Enumerate(ctx, dfmProblem(6))
	if !res.Canceled || !res.Truncated {
		t.Fatalf("cancelled search: Canceled=%v Truncated=%v, want both true", res.Canceled, res.Truncated)
	}
	if res.Nodes != 1 {
		t.Errorf("cancelled search visited %d nodes, want 1 (the root)", res.Nodes)
	}
	if err := res.Stats.CheckInvariants(res.Truncated); err != nil {
		t.Error(err)
	}
}

func TestEnumerateParallelCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := EnumerateParallel(ctx, dfmProblem(6), 4)
	if !res.Canceled || !res.Truncated {
		t.Fatalf("cancelled search: Canceled=%v Truncated=%v, want both true", res.Canceled, res.Truncated)
	}
	// Same accounting as sequential: the root is visited, observed
	// cancelled, and skipped — the old barrier implementation stopped at
	// a level boundary with zero nodes, which diverged from Enumerate.
	if res.Nodes != 1 {
		t.Errorf("cancelled parallel search visited %d nodes, want 1 (the root, skipped)", res.Nodes)
	}
	if err := res.Stats.CheckInvariants(res.Truncated); err != nil {
		t.Error(err)
	}
}

func TestSampleCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := Sample(ctx, dfmProblem(6), SampleOpts{Seed: 1, Walks: 64})
	if !s.Canceled {
		t.Fatal("cancelled sampling did not report Canceled")
	}
	if s.Steps != 0 {
		t.Errorf("cancelled sampling took %d steps, want 0", s.Steps)
	}
}

func TestCheckInductionCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := CheckInduction(ctx, dfmProblem(4), func(trace.Trace) bool { return true })
	if err == nil {
		t.Fatal("cancelled induction check returned nil error")
	}
}

// A deadline must bound a search that the depth alone would let run far
// longer; the partial result still satisfies the stats invariants, and
// solutions found before the deadline are genuine.
func TestEnumerateDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	// Depth 64 on the dfm problem is far beyond what a millisecond allows.
	res := Enumerate(ctx, dfmProblem(64))
	if !res.Canceled {
		t.Skip("search finished before the deadline; nothing to assert")
	}
	if !res.Truncated {
		t.Error("Canceled without Truncated")
	}
	if err := res.Stats.CheckInvariants(res.Truncated); err != nil {
		t.Error(err)
	}
	full := Enumerate(context.Background(), dfmProblem(6))
	for _, s := range res.Solutions {
		if !full.Contains(s) && s.Len() > 6 {
			continue // beyond the comparison depth
		}
		if s.Len() <= 6 && !full.Contains(s) {
			t.Errorf("pre-deadline solution %s is not a real solution", s)
		}
	}
}

// An uncancelled context must leave results bit-identical to before the
// context plumbing existed: Canceled stays false everywhere.
func TestBackgroundContextIsNeutral(t *testing.T) {
	p := dfmProblem(4)
	seq := Enumerate(context.Background(), p)
	par := EnumerateParallel(context.Background(), p, 4)
	if seq.Canceled || par.Canceled {
		t.Fatal("background context produced Canceled results")
	}
	if got, want := par.SolutionKeys(), seq.SolutionKeys(); len(got) != len(want) {
		t.Fatalf("parallel found %d solutions, sequential %d", len(got), len(want))
	}
}
