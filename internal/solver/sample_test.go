package solver

import (
	"context"
	"testing"

	"smoothproc/internal/desc"
	"smoothproc/internal/fn"
	"smoothproc/internal/seq"
	"smoothproc/internal/value"
)

func TestSampleFindsOnlySolutions(t *testing.T) {
	p := dfmProblem(4)
	s := Sample(context.Background(), p, SampleOpts{Seed: 1, Walks: 64})
	if len(s.Solutions) == 0 {
		t.Fatal("sampler found nothing")
	}
	for _, tr := range s.Solutions {
		if err := p.D.IsSmoothFinite(tr); err != nil {
			t.Errorf("sampled non-solution %s: %v", tr, err)
		}
	}
	// Soundness against the exhaustive set.
	full := Enumerate(context.Background(), p)
	for k := range s.Solutions {
		found := false
		for _, sol := range full.Solutions {
			if sol.String() == k {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("sampled solution %s not in the exhaustive set", k)
		}
	}
}

func TestSampleIsDeterministicPerSeed(t *testing.T) {
	p := dfmProblem(4)
	a := Sample(context.Background(), p, SampleOpts{Seed: 9})
	b := Sample(context.Background(), p, SampleOpts{Seed: 9})
	if len(a.Solutions) != len(b.Solutions) || a.Steps != b.Steps {
		t.Error("same seed, different samples")
	}
}

func TestSampleWalksDeepOnInfinitePaths(t *testing.T) {
	// Ticks: the single infinite path; walks must follow it to the bound.
	d := desc.MustNew("ticks", fn.ChanFn("b"), fn.OnChan(fn.PrependFn(value.T), "b"))
	p := NewProblem(d, map[string][]value.Value{"b": {value.T, value.F}}, 64)
	s := Sample(context.Background(), p, SampleOpts{Seed: 3, Walks: 2})
	if s.Deepest.Len() != 64 {
		t.Errorf("deepest = %d, want 64", s.Deepest.Len())
	}
	if len(s.Solutions) != 0 {
		t.Errorf("ticks has no finite solutions, sampler found %d", len(s.Solutions))
	}
}

func TestSampleCoversMostOfSmallSpace(t *testing.T) {
	// With enough walks on a small problem the sampler should see a
	// large fraction of the solution set.
	p := dfmProblem(4)
	full := Enumerate(context.Background(), p)
	s := Sample(context.Background(), p, SampleOpts{Seed: 5, Walks: 512})
	if len(s.Solutions)*2 < len(full.Solutions) {
		t.Errorf("sampler hit %d of %d solutions", len(s.Solutions), len(full.Solutions))
	}
}

func TestSampleRespectsDepthOverride(t *testing.T) {
	d := desc.MustNew("const", fn.ChanFn("b"), fn.ConstTraceFn(seq.OfInts(7, 7, 7, 7)))
	p := NewProblem(d, map[string][]value.Value{"b": value.Ints(7)}, 16)
	s := Sample(context.Background(), p, SampleOpts{Seed: 1, Walks: 4, MaxDepth: 2})
	if s.Deepest.Len() > 2 {
		t.Errorf("walk exceeded depth override: %d", s.Deepest.Len())
	}
}
