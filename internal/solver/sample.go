package solver

import (
	"context"
	"math/rand"
	"time"

	"smoothproc/internal/trace"
)

// SampleOpts configures the random-walk sampler.
type SampleOpts struct {
	// Seed drives the walk; equal seeds give equal samples.
	Seed int64
	// Walks is the number of random walks (default 32).
	Walks int
	// MaxDepth bounds each walk (default: the problem's MaxDepth).
	MaxDepth int
}

func (o SampleOpts) withDefaults(p Problem) SampleOpts {
	if o.Walks == 0 {
		o.Walks = 32
	}
	if o.MaxDepth == 0 {
		o.MaxDepth = p.MaxDepth
	}
	return o
}

// SampleResult reports what the walks found.
type SampleResult struct {
	// Solutions are the distinct smooth solutions hit, keyed canonically.
	Solutions map[string]trace.Trace
	// Deepest is the longest tree node reached.
	Deepest trace.Trace
	// Steps is the total number of edges taken.
	Steps int
	// Stats instruments the walks. Walks revisit shared prefixes
	// constantly, so the memo hit rate here is the highest of the three
	// search modes; node-role counters stay zero (walks classify no
	// nodes), while edge and evaluation counters are live.
	Stats SearchStats
	// Canceled reports that the context stopped the walks early; the
	// solutions gathered so far are still sound.
	Canceled bool
}

// Sample explores the Section 3.3 tree by random walks instead of
// exhaustive BFS — the tool for problems whose full tree is too wide to
// enumerate (wide alphabets, long probes). Each walk starts at ⊥,
// repeatedly picks a uniformly random smooth son, records every node
// that satisfies the limit condition, and stops at a leaf or the depth
// bound. Sampling is sound (everything returned is a smooth solution)
// but deliberately incomplete; use Enumerate when the bounds allow. The
// context is checked at every step of every walk; cancellation sets
// Canceled and returns what the walks found so far.
func Sample(ctx context.Context, p Problem, opts SampleOpts) SampleResult {
	opts = opts.withDefaults(p)
	s := newSearch(p, true)
	rng := rand.New(rand.NewSource(opts.Seed))
	res := SampleResult{Solutions: map[string]trace.Trace{}}
	st := &res.Stats
	start := time.Now()
walks:
	for w := 0; w < opts.Walks; w++ {
		cur := root
		for depth := 0; ; depth++ {
			if ctx.Err() != nil {
				res.Canceled = true
				break walks
			}
			st.LimitChecks++
			if s.e.LimitOK(cur) {
				res.Solutions[cur.String()] = cur
			}
			if depth >= opts.MaxDepth {
				break
			}
			sons := s.expand(cur, st, s.sonBuf[:0])
			if len(sons) == 0 {
				break
			}
			cur = sons[rng.Intn(len(sons))]
			res.Steps++
			if cur.Len() > res.Deepest.Len() {
				res.Deepest = cur
			}
		}
	}
	st.Elapsed = time.Since(start)
	st.Eval = s.e.Snapshot()
	return res
}
