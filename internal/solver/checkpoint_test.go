package solver

import (
	"context"
	"reflect"
	"testing"

	"smoothproc/internal/trace"
)

// expectResultsEqual compares the complete observable result — slices,
// counters, deterministic stats — between a resumed and a cold search.
func expectResultsEqual(t *testing.T, what string, got, want Result) {
	t.Helper()
	if got.Nodes != want.Nodes || got.Truncated != want.Truncated || got.Canceled != want.Canceled {
		t.Errorf("%s: nodes/flags: got (%d,%v,%v), want (%d,%v,%v)",
			what, got.Nodes, got.Truncated, got.Canceled, want.Nodes, want.Truncated, want.Canceled)
	}
	for _, s := range []struct {
		name      string
		got, want []trace.Trace
	}{
		{"solutions", got.Solutions, want.Solutions},
		{"frontier", got.Frontier, want.Frontier},
		{"dead leaves", got.DeadLeaves, want.DeadLeaves},
		{"visited", got.Visited, want.Visited},
	} {
		if len(s.got) != len(s.want) {
			t.Errorf("%s: %s: %d traces, want %d", what, s.name, len(s.got), len(s.want))
			continue
		}
		for i := range s.got {
			if !s.got[i].Equal(s.want[i]) {
				t.Errorf("%s: %s[%d] = %s, want %s", what, s.name, i, s.got[i], s.want[i])
				break
			}
		}
	}
	if g, w := got.Stats.Deterministic(), want.Stats.Deterministic(); !reflect.DeepEqual(g, w) {
		t.Errorf("%s: deterministic stats diverged:\n got %+v\nwant %+v", what, g, w)
	}
}

// TestCaptureResumeFinalMatchesCold is the core deepening contract: a
// capture at depth d resumed in Final mode to depth D is byte-identical
// to a cold plain solve at D — result slices, fingerprint counters and
// evaluator hit/apply counts — across sequential and parallel legs in
// every combination.
func TestCaptureResumeFinalMatchesCold(t *testing.T) {
	ctx := context.Background()
	const capDepth, fullDepth = 2, 5
	cold := Enumerate(ctx, dfmProblem(fullDepth))
	if err := cold.Stats.CheckInvariants(false); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name                      string
		capWorkers, resumeWorkers int
	}{
		{"seq-seq", 1, 1},
		{"seq-par", 1, 3},
		{"par-seq", 3, 1},
		{"par-par", 2, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var capRes Result
			var cp *Checkpoint
			if tc.capWorkers > 1 {
				capRes, cp = EnumerateParallelCapture(ctx, dfmProblem(capDepth), tc.capWorkers)
			} else {
				capRes, cp = EnumerateCapture(ctx, dfmProblem(capDepth))
			}
			if err := capRes.Stats.CheckInvariants(false); err != nil {
				t.Fatal(err)
			}
			if capRes.Nodes >= cold.Nodes {
				t.Fatalf("capture at depth %d classified %d nodes, not fewer than the %d at depth %d",
					capDepth, capRes.Nodes, cold.Nodes, fullDepth)
			}
			res, err := cp.Resume(ctx, ResumeOpts{MaxDepth: fullDepth, Workers: tc.resumeWorkers, Final: true})
			if err != nil {
				t.Fatal(err)
			}
			expectResultsEqual(t, tc.name, res, cold)
			if cp.Resumable() {
				t.Error("checkpoint still resumable after a Final resume")
			}
			if _, err := cp.Resume(ctx, ResumeOpts{MaxDepth: fullDepth + 1}); err == nil {
				t.Error("resume after Final should fail")
			}
		})
	}
}

// TestCaptureResumeChain deepens one checkpoint across several capture
// legs; each leg's Solutions and classifications must match a cold solve
// at that leg's depth, and the final leg resumed Final must match cold
// byte for byte.
func TestCaptureResumeChain(t *testing.T) {
	ctx := context.Background()
	_, cp := EnumerateCapture(ctx, dfmProblem(1))
	for depth := 2; depth <= 4; depth++ {
		res, err := cp.Resume(ctx, ResumeOpts{MaxDepth: depth, Workers: depth % 3})
		if err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		cold := Enumerate(ctx, dfmProblem(depth))
		// Capture-mode legs classify identically to cold; only bound-level
		// edge accounting differs (see the package comment in checkpoint.go).
		if got, want := res.SolutionKeys(), cold.SolutionKeys(); !reflect.DeepEqual(got, want) {
			t.Errorf("depth %d: solutions %v, want %v", depth, got, want)
		}
		if res.Nodes != cold.Nodes || len(res.Frontier) != len(cold.Frontier) || len(res.DeadLeaves) != len(cold.DeadLeaves) {
			t.Errorf("depth %d: classification counts (%d,%d,%d), want (%d,%d,%d)",
				depth, res.Nodes, len(res.Frontier), len(res.DeadLeaves),
				cold.Nodes, len(cold.Frontier), len(cold.DeadLeaves))
		}
		if err := res.Stats.CheckInvariants(false); err != nil {
			t.Errorf("depth %d: %v", depth, err)
		}
	}
	res, err := cp.Resume(ctx, ResumeOpts{MaxDepth: 5, Final: true})
	if err != nil {
		t.Fatal(err)
	}
	expectResultsEqual(t, "chained final", res, Enumerate(ctx, dfmProblem(5)))
}

// TestCaptureBudgetResume truncates a capture with MaxNodes below the
// first depth-bound level and resumes it unbounded: the pending queue
// must carry the cut exactly, and the final result must match cold.
func TestCaptureBudgetResume(t *testing.T) {
	ctx := context.Background()
	const depth = 4
	cold := Enumerate(ctx, dfmProblem(depth))
	if cold.Nodes < 12 {
		t.Fatalf("test wants a tree bigger than 12 nodes, got %d", cold.Nodes)
	}
	for _, workers := range []int{1, 3} {
		p := dfmProblem(depth)
		p.MaxNodes = 7
		var capRes Result
		var cp *Checkpoint
		if workers > 1 {
			capRes, cp = EnumerateParallelCapture(ctx, p, workers)
		} else {
			capRes, cp = EnumerateCapture(ctx, p)
		}
		if !capRes.Truncated {
			t.Fatalf("w%d: capture with MaxNodes=7 not truncated", workers)
		}
		if cp.PendingSize() == 0 {
			t.Fatalf("w%d: truncated capture retained no pending nodes", workers)
		}
		res, err := cp.Resume(ctx, ResumeOpts{MaxDepth: depth, Workers: workers, Final: true})
		if err != nil {
			t.Fatal(err)
		}
		// A parallel truncated capture may have evaluated uncommitted
		// nodes, so evaluator counters are compared only for the
		// sequential leg; classifications must match either way.
		if workers == 1 {
			expectResultsEqual(t, "budget-resume-w1", res, cold)
		} else {
			if got, want := res.SolutionKeys(), cold.SolutionKeys(); !reflect.DeepEqual(got, want) {
				t.Errorf("w%d: solutions %v, want %v", workers, got, want)
			}
			if res.Nodes != cold.Nodes {
				t.Errorf("w%d: %d nodes, want %d", workers, res.Nodes, cold.Nodes)
			}
		}
	}
}

// TestResumeValidation pins the guard rails: shrinking depth, exhausted
// budgets and same-depth Final resumes over a live frontier all fail.
func TestResumeValidation(t *testing.T) {
	ctx := context.Background()
	_, cp := EnumerateCapture(ctx, dfmProblem(2))
	if _, err := cp.Resume(ctx, ResumeOpts{MaxDepth: 1}); err == nil {
		t.Error("resume below the captured depth should fail")
	}
	if _, err := cp.Resume(ctx, ResumeOpts{MaxDepth: 4, MaxNodes: cp.Nodes()}); err == nil {
		t.Error("resume with an already-spent budget should fail")
	}
	if cp.FrontierSize() > 0 {
		if _, err := cp.Resume(ctx, ResumeOpts{Final: true}); err == nil {
			t.Error("same-depth Final resume over a live frontier should fail")
		}
	}
}

// TestOnSolutionStreamsCanonically checks the streaming hook: sequential
// and parallel searches emit the same solutions, in the same canonical
// order as Result.Solutions, and a resume emits exactly the new ones.
func TestOnSolutionStreamsCanonically(t *testing.T) {
	ctx := context.Background()
	p := dfmProblem(4)
	var seq []string
	p.OnSolution = func(tr trace.Trace) { seq = append(seq, tr.String()) }
	res := Enumerate(ctx, p)
	if len(seq) != len(res.Solutions) {
		t.Fatalf("sequential emitted %d, result has %d", len(seq), len(res.Solutions))
	}
	for i, tr := range res.Solutions {
		if seq[i] != tr.String() {
			t.Fatalf("sequential emission[%d] = %s, want %s", i, seq[i], tr)
		}
	}

	var par []string
	pp := dfmProblem(4)
	pp.OnSolution = func(tr trace.Trace) { par = append(par, tr.String()) }
	EnumerateParallel(ctx, pp, 4)
	if !reflect.DeepEqual(par, seq) {
		t.Errorf("parallel emission order %v, want %v", par, seq)
	}

	// Resume emits only the new solutions.
	capP := dfmProblem(2)
	capRes, cp := EnumerateCapture(ctx, capP)
	var resumed []string
	full, err := cp.Resume(ctx, ResumeOpts{MaxDepth: 4, OnSolution: func(tr trace.Trace) {
		resumed = append(resumed, tr.String())
	}})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(full.Solutions) - len(capRes.Solutions); len(resumed) != want {
		t.Errorf("resume emitted %d solutions, want the %d new ones", len(resumed), want)
	}
}
