// Checkpointed (resumable) search. A capture-mode solve retains exactly
// the state the §3.3 chain view says a deeper solve needs: the canonical
// BFS order's classified prefix (the Result), the depth-bound nodes'
// admitted sons (the retained frontier, in commit order), any
// unclassified queue remainder of a truncated run (the pending nodes),
// and the evaluator memo handle. Resuming re-enters the BFS from that
// frontier, so the already-classified prefix is never re-expanded — and
// because every per-node contribution to the result and the memo is
// independent of when the node was processed, a resumed search's Result
// is byte-identical to a cold solve at the target bounds.
//
// Capture mode differs from a plain solve in one accounted respect: a
// depth-bound node is fully expanded (its sons are the resume frontier)
// where the plain search probes hasSon and stops at the first witness.
// Classifications are identical — a bound node is Frontier iff it has a
// son — but the bound level's edge counters differ (every candidate
// checked, FrontierWitnesses never counted). That expansion is exactly
// the work a deeper cold solve does at those nodes, which is why a
// capture at depth d resumed in Final mode to depth D > d reproduces the
// cold depth-D fingerprint byte for byte, evaluator counters included
// (the root resume differential suite enforces this across all shipped
// specs, sequentially and in parallel).
package solver

import (
	"context"
	"errors"
	"fmt"

	"smoothproc/internal/trace"
)

// frontierEntry is one retained depth-bound node together with its
// admitted sons, in canonical order — the unit of the resume frontier.
type frontierEntry struct {
	node trace.Trace
	sons []trace.Trace
}

// Checkpoint is the retained state of a capture-mode search: the problem
// (whose bounds track the latest leg), the shared search machinery — the
// evaluator memo handle and interned candidates — the last leg's Result,
// the resume frontier, and the pending queue of a truncated run.
//
// A Checkpoint is not safe for concurrent use; callers that share one
// (the session subsystem) serialize resumes. The evaluator inside is
// always built in its locked (concurrency-safe) mode, so a sequential
// capture may be resumed in parallel and vice versa — the memo's
// hit/apply counters are byte-identical either way (the evaluator's
// single-threaded/locked parity contract).
type Checkpoint struct {
	s        *search
	done     Result
	frontier []frontierEntry
	pending  []trace.Trace
	resumes  int
	finaled  bool
}

// EnumerateCapture is Enumerate in capture mode: the same classified
// Result (see the package comment for the bound-level stats caveat),
// plus a Checkpoint that can resume the search at larger bounds.
func EnumerateCapture(ctx context.Context, p Problem) (Result, *Checkpoint) {
	// The locked evaluator keeps the checkpoint resumable in parallel.
	s := newSearch(p, false)
	cp := &Checkpoint{s: s}
	var res Result
	res.Stats.Thm1FastPath = s.thm1
	seqLoop(ctx, s, &res, []trace.Trace{root}, cp)
	res.Stats.Eval = s.e.Snapshot()
	res.Stats.CompiledEval = s.e.Compiled()
	cp.done = res
	return res, cp
}

// EnumerateParallelCapture is EnumerateParallel in capture mode; see
// EnumerateCapture.
func EnumerateParallelCapture(ctx context.Context, p Problem, workers int) (Result, *Checkpoint) {
	s := newSearch(p, false)
	cp := &Checkpoint{s: s}
	var res Result
	res.Stats.Thm1FastPath = s.thm1
	parLoop(ctx, s, &res, []trace.Trace{root}, workers, cp)
	res.Stats.Eval = s.e.Snapshot()
	res.Stats.CompiledEval = s.e.Compiled()
	cp.done = res
	return res, cp
}

// ResumeOpts are the bounds and mode of one resume leg.
type ResumeOpts struct {
	// MaxDepth is the new depth bound; 0 keeps the captured depth. It may
	// never shrink.
	MaxDepth int
	// MaxNodes is the new total node budget (counting the captured
	// prefix); 0 means unbounded. A positive budget must exceed the nodes
	// already classified.
	MaxNodes int
	// Workers selects the parallel search when > 1 (< 0 uses GOMAXPROCS,
	// as EnumerateParallel); 0 or 1 resumes sequentially. Legs may switch
	// freely between sequential and parallel.
	Workers int
	// Final ends the checkpoint's lineage: the resumed leg treats the new
	// depth bound with the plain hasSon probe, so its Result is
	// byte-identical to a cold plain solve at the target bounds. The
	// checkpoint is no longer resumable afterwards. Without Final the leg
	// stays in capture mode and the checkpoint tracks the deeper state.
	Final bool
	// OnSolution streams this leg's new solutions (the captured prefix's
	// solutions are not re-emitted); see Problem.OnSolution.
	OnSolution func(trace.Trace)
}

// Resume re-enters the BFS from the retained frontier at larger bounds.
// The returned Result covers the whole search from the root — prefix and
// new work — exactly as a cold solve at the new bounds would report it.
// On success the checkpoint (unless Final) describes the deeper search
// and can be resumed again.
//
// A Final resume requires a strictly larger depth while frontier nodes
// are retained: the capture already expanded those nodes in full, so
// re-probing them with hasSon at the same depth would double-count
// bound-level work. (Budget-only Final resumes are fine on captures that
// never reached the depth bound.)
func (cp *Checkpoint) Resume(ctx context.Context, o ResumeOpts) (Result, error) {
	if cp == nil || cp.s == nil {
		return Result{}, errors.New("solver: resume on an empty checkpoint")
	}
	if cp.finaled {
		return Result{}, errors.New("solver: checkpoint was finalized by a Final resume and cannot resume again")
	}
	oldDepth := cp.s.p.MaxDepth
	if o.MaxDepth == 0 {
		o.MaxDepth = oldDepth
	}
	if o.MaxDepth < oldDepth {
		return Result{}, fmt.Errorf("solver: resume depth %d below the captured depth %d (the classified prefix cannot shrink)", o.MaxDepth, oldDepth)
	}
	deepen := o.MaxDepth > oldDepth
	if o.Final && !deepen && len(cp.frontier) > 0 {
		return Result{}, fmt.Errorf("solver: final resume at the captured depth %d would re-probe %d expanded frontier nodes; raise MaxDepth or resume in capture mode", oldDepth, len(cp.frontier))
	}

	// The stored result in continuation accounting: without the skipped
	// node of a truncated capture (it heads the pending queue and will be
	// classified now), and with bound nodes re-filed as interior when the
	// depth bound moves past them.
	base := cloneResult(cp.done)
	st := &base.Stats
	if base.Truncated {
		base.Nodes--
		st.Visited--
		st.Skipped--
		if cp.s.p.CollectVisited && len(base.Visited) > 0 {
			base.Visited = base.Visited[:len(base.Visited)-1]
		}
		base.Truncated = false
		base.Canceled = false
	}
	if o.MaxNodes > 0 && o.MaxNodes <= base.Nodes {
		return Result{}, fmt.Errorf("solver: resume budget %d is already exhausted by the %d captured nodes", o.MaxNodes, base.Nodes)
	}

	// Seed queue, in the order a cold solve at the new depth would hold
	// at this point: the pending remainder first (BFS level order puts
	// every pending node before any frontier son), then the retained
	// frontier's sons in commit order.
	queue := append([]trace.Trace(nil), cp.pending...)
	if deepen {
		st.Interior += st.Frontier
		st.Frontier = 0
		st.RetainedSons = 0
		base.Frontier = base.Frontier[:0]
		for _, fe := range cp.frontier {
			queue = append(queue, fe.sons...)
		}
		cp.frontier = cp.frontier[:0]
	}
	cp.pending = nil
	cp.s.p.MaxDepth = o.MaxDepth
	cp.s.p.MaxNodes = o.MaxNodes
	cp.s.p.OnSolution = o.OnSolution

	capCp := cp
	if o.Final {
		capCp = nil
	}
	res := base
	if o.Workers == 0 || o.Workers == 1 {
		seqLoop(ctx, cp.s, &res, queue, capCp)
	} else {
		parLoop(ctx, cp.s, &res, queue, o.Workers, capCp)
	}
	res.Stats.Eval = cp.s.e.Snapshot()
	res.Stats.CompiledEval = cp.s.e.Compiled()
	cp.resumes++
	if o.Final {
		cp.finaled = true
	} else {
		cp.done = res
	}
	cp.s.p.OnSolution = nil
	return res, nil
}

// cloneResult deep-copies the slices and per-level stats a resume leg
// appends to, so the stored checkpoint result and the returned one never
// share mutable backing arrays.
func cloneResult(r Result) Result {
	out := r
	out.Solutions = append([]trace.Trace(nil), r.Solutions...)
	out.Frontier = append([]trace.Trace(nil), r.Frontier...)
	out.DeadLeaves = append([]trace.Trace(nil), r.DeadLeaves...)
	out.Visited = append([]trace.Trace(nil), r.Visited...)
	out.Stats.Levels = append([]LevelStats(nil), r.Stats.Levels...)
	return out
}

// Result returns the checkpoint's stored result — the latest leg's view
// of the whole search. The caller must treat the slices as read-only.
func (cp *Checkpoint) Result() Result { return cp.done }

// Nodes is the commit pointer: how many canonical-order nodes the
// captured search has classified (plus the one skipped node of a
// truncated capture, matching Result.Nodes).
func (cp *Checkpoint) Nodes() int { return cp.done.Nodes }

// MaxDepth returns the depth bound of the latest captured leg.
func (cp *Checkpoint) MaxDepth() int { return cp.s.p.MaxDepth }

// FrontierSize returns the number of retained depth-bound nodes whose
// sons seed a deepening resume.
func (cp *Checkpoint) FrontierSize() int { return len(cp.frontier) }

// PendingSize returns the number of unclassified nodes a truncated
// capture left in its queue.
func (cp *Checkpoint) PendingSize() int { return len(cp.pending) }

// Resumes returns how many resume legs the checkpoint has run.
func (cp *Checkpoint) Resumes() int { return cp.resumes }

// Resumable reports whether another Resume may run (false after Final).
func (cp *Checkpoint) Resumable() bool { return !cp.finaled }

// MemoEntries returns the number of retained evaluator memo entries —
// the footprint the checkpoint keeps alive between legs.
func (cp *Checkpoint) MemoEntries() int { return cp.s.e.MemoEntries() }
