// Checkpoint serialization. A checkpoint is exactly the state the §3.3
// chain view calls a chain element — the classified BFS prefix, the
// retained frontier, the pending queue — plus the evaluator memo, so a
// decoded checkpoint resumes to a solve byte-identical to one that never
// left memory, deterministic fingerprint (evaluator hit/miss counters
// included) and all. The blob rides on the trace codec: every retained
// trace is a reference into one shared node pool, so the prefix sharing
// between solutions, frontier sons, visited lists and memo keys costs
// one spine on disk, exactly as in memory.
//
// What is NOT serialized: the Problem's function values (the description
// sides and callbacks). DecodeCheckpoint takes a caller-supplied Problem
// — rebuilt from the stored spec source — and verifies the stored search
// flags against it, overriding only the bounds the blob carries. The
// evaluator is reconstructed by re-running newSearch (the Theorem 1
// induction base check re-evaluates both sides at ⊥, as a live capture's
// constructor did) and then seeded with the exported memo entries and
// exact counter baselines.
package solver

import (
	"fmt"

	"time"

	"smoothproc/internal/desc"
	"smoothproc/internal/fn"
	"smoothproc/internal/seq"
	"smoothproc/internal/trace"
)

// checkpointVersion guards the body layout; bump on any change.
const checkpointVersion = 1

// Encode serializes the checkpoint into one self-verifying blob (see the
// trace codec for the integrity story). The checkpoint is not locked:
// callers serialize Encode against Resume exactly as they serialize
// resumes against each other.
func (cp *Checkpoint) Encode() ([]byte, error) {
	if cp == nil || cp.s == nil {
		return nil, fmt.Errorf("solver: encode of an empty checkpoint")
	}
	e := trace.NewEncoder()
	e.Uvarint(checkpointVersion)

	// Search configuration: bounds are restored from the blob, flags are
	// verified against the decoder's Problem.
	p := cp.s.p
	e.Varint(int64(p.MaxDepth))
	e.Varint(int64(p.MaxNodes))
	e.Bool(p.Prune)
	e.Bool(p.Memoize)
	e.Bool(p.CollectVisited)
	e.Bool(p.Thm1)
	e.Bool(p.Compiled)

	encodeResult(e, cp.done)

	e.Uvarint(uint64(len(cp.frontier)))
	for _, fe := range cp.frontier {
		e.Trace(fe.node)
		encodeTraces(e, fe.sons)
	}
	encodeTraces(e, cp.pending)
	e.Varint(int64(cp.resumes))
	e.Bool(cp.finaled)

	fm, gm := cp.s.e.ExportMemo()
	encodeMemo(e, fm)
	encodeMemo(e, gm)
	return e.Bytes(), nil
}

// DecodeCheckpoint rebuilds a checkpoint from Encode's blob. p must be
// the same problem the capture ran (sides rebuilt from the same spec,
// same Prune/Memoize/Thm1/Compiled/CollectVisited configuration — the
// stored flags are verified); the blob's captured bounds override
// p.MaxDepth/p.MaxNodes. All corruption failures wrap trace.ErrCorrupt.
func DecodeCheckpoint(data []byte, p Problem) (*Checkpoint, error) {
	d, err := trace.NewDecoder(data)
	if err != nil {
		return nil, err
	}
	cp, err := decodeCheckpoint(d, p)
	if err != nil {
		return nil, fmt.Errorf("solver: decode checkpoint: %w", err)
	}
	return cp, nil
}

func decodeCheckpoint(d *trace.Decoder, p Problem) (*Checkpoint, error) {
	v, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	if v != checkpointVersion {
		return nil, fmt.Errorf("checkpoint version %d, this build reads %d: %w", v, checkpointVersion, trace.ErrCorrupt)
	}
	maxDepth, err := d.Varint()
	if err != nil {
		return nil, err
	}
	maxNodes, err := d.Varint()
	if err != nil {
		return nil, err
	}
	var flags [5]bool
	for i := range flags {
		if flags[i], err = d.Bool(); err != nil {
			return nil, err
		}
	}
	if flags[0] != p.Prune || flags[1] != p.Memoize || flags[2] != p.CollectVisited || flags[3] != p.Thm1 || flags[4] != p.Compiled {
		return nil, fmt.Errorf("checkpoint was captured with prune=%t memoize=%t visited=%t thm1=%t compiled=%t, caller passed prune=%t memoize=%t visited=%t thm1=%t compiled=%t",
			flags[0], flags[1], flags[2], flags[3], flags[4],
			p.Prune, p.Memoize, p.CollectVisited, p.Thm1, p.Compiled)
	}
	p.MaxDepth = int(maxDepth)
	p.MaxNodes = int(maxNodes)
	p.OnSolution = nil

	res, err := decodeResult(d)
	if err != nil {
		return nil, err
	}

	nf, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	if nf > uint64(d.Remaining())+1 {
		return nil, fmt.Errorf("frontier claims %d entries: %w", nf, trace.ErrCorrupt)
	}
	frontier := make([]frontierEntry, 0, nf)
	for i := uint64(0); i < nf; i++ {
		node, err := d.Trace()
		if err != nil {
			return nil, err
		}
		sons, err := decodeTraces(d)
		if err != nil {
			return nil, err
		}
		frontier = append(frontier, frontierEntry{node: node, sons: sons})
	}
	pending, err := decodeTraces(d)
	if err != nil {
		return nil, err
	}
	resumes, err := d.Varint()
	if err != nil {
		return nil, err
	}
	finaled, err := d.Bool()
	if err != nil {
		return nil, err
	}

	fm, err := decodeMemo(d)
	if err != nil {
		return nil, err
	}
	gm, err := decodeMemo(d)
	if err != nil {
		return nil, err
	}
	if err := d.Done(); err != nil {
		return nil, err
	}

	// Rebuild the search machinery. The constructor may run the Theorem 1
	// induction base check, evaluating both sides at ⊥ — SeedMemo skips
	// entries that insert already cached (sides are pure, so the fresh ⊥
	// tuples equal the exported ones) and SeedSnapshot then pins the
	// apply/hit counters to exactly the captured values.
	s := newSearch(p, false)
	s.e.SeedMemo(fm, gm)
	s.e.SeedSnapshot(res.Stats.Eval)

	return &Checkpoint{
		s:        s,
		done:     res,
		frontier: frontier,
		pending:  pending,
		resumes:  int(resumes),
		finaled:  finaled,
	}, nil
}

func encodeTraces(e *trace.Encoder, ts []trace.Trace) {
	e.Uvarint(uint64(len(ts)))
	for _, t := range ts {
		e.Trace(t)
	}
}

func decodeTraces(d *trace.Decoder) ([]trace.Trace, error) {
	n, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	// Each encoded trace costs ≥ 9 bytes (ref + fixed64 key).
	if n > uint64(d.Remaining()/9)+1 {
		return nil, fmt.Errorf("trace list claims %d entries in %d bytes: %w", n, d.Remaining(), trace.ErrCorrupt)
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]trace.Trace, 0, n)
	for i := uint64(0); i < n; i++ {
		t, err := d.Trace()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

func encodeResult(e *trace.Encoder, r Result) {
	encodeTraces(e, r.Solutions)
	encodeTraces(e, r.Frontier)
	encodeTraces(e, r.DeadLeaves)
	encodeTraces(e, r.Visited)
	e.Varint(int64(r.Nodes))
	e.Bool(r.Truncated)
	e.Bool(r.Canceled)
	encodeStats(e, r.Stats)
}

func decodeResult(d *trace.Decoder) (Result, error) {
	var r Result
	var err error
	if r.Solutions, err = decodeTraces(d); err != nil {
		return r, err
	}
	if r.Frontier, err = decodeTraces(d); err != nil {
		return r, err
	}
	if r.DeadLeaves, err = decodeTraces(d); err != nil {
		return r, err
	}
	if r.Visited, err = decodeTraces(d); err != nil {
		return r, err
	}
	nodes, err := d.Varint()
	if err != nil {
		return r, err
	}
	r.Nodes = int(nodes)
	if r.Truncated, err = d.Bool(); err != nil {
		return r, err
	}
	if r.Canceled, err = d.Bool(); err != nil {
		return r, err
	}
	if r.Stats, err = decodeStats(d); err != nil {
		return r, err
	}
	return r, nil
}

func encodeStats(e *trace.Encoder, s SearchStats) {
	for _, n := range []int{
		s.Visited, s.Interior, s.Frontier, s.Dead, s.Closed, s.Skipped,
		s.Solutions, s.LimitChecks,
		s.EdgesChecked, s.EdgesKept, s.SubtreesPruned, s.FrontierWitnesses,
		s.RetainedSons, s.Thm1AutoEdges, s.Workers,
	} {
		e.Varint(int64(n))
	}
	e.Bool(s.Thm1FastPath)
	e.Bool(s.CompiledEval)
	e.Varint(s.Steals)
	e.Varint(s.IdleWaits)
	e.Varint(int64(s.Elapsed))
	e.Uvarint(uint64(len(s.Levels)))
	for _, l := range s.Levels {
		e.Varint(int64(l.Depth))
		e.Varint(int64(l.Nodes))
		e.Varint(int64(l.Solutions))
		e.Varint(int64(l.Pruned))
	}
	for _, n := range []int64{
		s.Eval.FApplies, s.Eval.GApplies, s.Eval.FHits, s.Eval.GHits,
		s.Eval.InflightWaits, s.Eval.FNanos, s.Eval.GNanos,
	} {
		e.Varint(n)
	}
}

func decodeStats(d *trace.Decoder) (SearchStats, error) {
	var s SearchStats
	ints := []*int{
		&s.Visited, &s.Interior, &s.Frontier, &s.Dead, &s.Closed, &s.Skipped,
		&s.Solutions, &s.LimitChecks,
		&s.EdgesChecked, &s.EdgesKept, &s.SubtreesPruned, &s.FrontierWitnesses,
		&s.RetainedSons, &s.Thm1AutoEdges, &s.Workers,
	}
	for _, p := range ints {
		n, err := d.Varint()
		if err != nil {
			return s, err
		}
		*p = int(n)
	}
	var err error
	if s.Thm1FastPath, err = d.Bool(); err != nil {
		return s, err
	}
	if s.CompiledEval, err = d.Bool(); err != nil {
		return s, err
	}
	if s.Steals, err = d.Varint(); err != nil {
		return s, err
	}
	if s.IdleWaits, err = d.Varint(); err != nil {
		return s, err
	}
	el, err := d.Varint()
	if err != nil {
		return s, err
	}
	s.Elapsed = time.Duration(el)
	nl, err := d.Uvarint()
	if err != nil {
		return s, err
	}
	if nl > uint64(d.Remaining())+1 {
		return s, fmt.Errorf("levels claim %d entries: %w", nl, trace.ErrCorrupt)
	}
	s.Levels = make([]LevelStats, 0, nl)
	for i := uint64(0); i < nl; i++ {
		var l LevelStats
		for _, p := range []*int{&l.Depth, &l.Nodes, &l.Solutions, &l.Pruned} {
			n, err := d.Varint()
			if err != nil {
				return s, err
			}
			*p = int(n)
		}
		s.Levels = append(s.Levels, l)
	}
	evals := []*int64{
		&s.Eval.FApplies, &s.Eval.GApplies, &s.Eval.FHits, &s.Eval.GHits,
		&s.Eval.InflightWaits, &s.Eval.FNanos, &s.Eval.GNanos,
	}
	for _, p := range evals {
		if *p, err = d.Varint(); err != nil {
			return s, err
		}
	}
	return s, nil
}

func encodeMemo(e *trace.Encoder, es []desc.MemoEntry) {
	e.Uvarint(uint64(len(es)))
	for _, en := range es {
		e.Trace(en.T)
		encodeTuple(e, en.V)
	}
}

func decodeMemo(d *trace.Decoder) ([]desc.MemoEntry, error) {
	n, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(d.Remaining()/9)+1 {
		return nil, fmt.Errorf("memo claims %d entries in %d bytes: %w", n, d.Remaining(), trace.ErrCorrupt)
	}
	out := make([]desc.MemoEntry, 0, n)
	for i := uint64(0); i < n; i++ {
		t, err := d.Trace()
		if err != nil {
			return nil, err
		}
		v, err := decodeTuple(d)
		if err != nil {
			return nil, err
		}
		out = append(out, desc.MemoEntry{T: t, V: v})
	}
	return out, nil
}

func encodeTuple(e *trace.Encoder, tu fn.Tuple) {
	e.Uvarint(uint64(len(tu)))
	for _, sq := range tu {
		e.Uvarint(uint64(len(sq)))
		for _, v := range sq {
			e.Value(v)
		}
	}
}

func decodeTuple(d *trace.Decoder) (fn.Tuple, error) {
	n, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(d.Remaining())+1 {
		return nil, fmt.Errorf("tuple claims %d seqs: %w", n, trace.ErrCorrupt)
	}
	tu := make(fn.Tuple, 0, n)
	for i := uint64(0); i < n; i++ {
		m, err := d.Uvarint()
		if err != nil {
			return nil, err
		}
		if m > uint64(d.Remaining())+1 {
			return nil, fmt.Errorf("seq claims %d values: %w", m, trace.ErrCorrupt)
		}
		sq := make(seq.Seq, 0, m)
		for j := uint64(0); j < m; j++ {
			v, err := d.Value()
			if err != nil {
				return nil, err
			}
			sq = append(sq, v)
		}
		tu = append(tu, sq)
	}
	return tu, nil
}
