// Package solver implements the operational view of smooth solutions in
// Section 3.3 of the paper: a tree rooted at ⊥ in which a node labelled u
// has a son labelled v iff u pre v and f(v) ⊑ g(u). Smooth solutions are
// the nodes that also satisfy the limit condition f = g; infinite paths
// approximate ω smooth solutions. The construction generalises Kleene's
// fixpoint chain — for a description id ⟵ h the tree degenerates to the
// chain ⊥, h(⊥), h²(⊥), ... (Theorem 4, checked in package kahn).
//
// The paper's tree branches over all one-step extensions of u; to make
// that finite the Problem supplies a candidate alphabet per channel (see
// DESIGN.md on this substitution).
package solver

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"smoothproc/internal/desc"
	"smoothproc/internal/fn"
	"smoothproc/internal/trace"
	"smoothproc/internal/value"
)

// Problem is a description together with the finite branching data the
// tree search needs.
type Problem struct {
	// D is the (usually combined) description whose smooth solutions are
	// sought.
	D desc.Description
	// Channels lists the channels over which traces are built, in a
	// deterministic exploration order.
	Channels []string
	// Alphabet gives the candidate messages per channel.
	Alphabet map[string][]value.Value
	// MaxDepth bounds the trace length explored.
	MaxDepth int
	// MaxNodes bounds the total number of tree nodes expanded; 0 means
	// no bound beyond MaxDepth.
	MaxNodes int
	// Prune disables the f(v) ⊑ g(u) edge filter when false — only used
	// by the pruning ablation (experiment E21); real searches always
	// prune. With pruning off, every one-step extension is a son and
	// smoothness is re-checked from scratch on candidate solutions.
	Prune bool
	// Memoize caches f and g evaluations across the whole search (one
	// desc.Evaluator per Enumerate/EnumerateParallel/Sample call), so
	// shared trace prefixes are evaluated once. Transparent to results;
	// false is the memoization ablation.
	Memoize bool
	// CollectVisited controls whether Result.Visited is populated.
	// NewProblem turns it on (the compatible default); large
	// service-driven searches turn it off so the result stops pinning
	// every node of the explored tree. All counters (Result.Nodes,
	// Stats.Visited) are maintained either way.
	CollectVisited bool
	// Thm1 enables the Theorem 1 fast path for independent descriptions
	// (supp(f) ∩ supp(g) = ∅, the theorem's hypothesis). For a candidate
	// edge u → u·e with e outside supp(f), f(u·e) = f(u) ⊑ g(u) already
	// holds — every admitted node satisfies f ⊑ g by induction along its
	// admitting edge and monotonicity of g — so the son is admitted with
	// zero evaluations. The admitted tree is identical; only the work
	// changes. NewProblem sets this from desc.Description.Thm1Eligible
	// (independent sides, and a left side whose finite approximation is
	// support-determined); the search additionally verifies the
	// induction base f(⊥) ⊑ g(⊥) before trusting the shortcut (see
	// newSearch).
	Thm1 bool
	// Compiled lowers the description's sides to descvm bytecode for the
	// search's evaluations (see desc.EvalOptions). Observably transparent:
	// the evaluator memo, all counters and every result are byte-identical
	// to interpreted evaluation — the root differential suite enforces
	// this across all shipped specs — so the flag only trades evaluation
	// mechanics for speed. Sides that cannot lower (opaque combinators)
	// silently keep the interpreter.
	Compiled bool
	// OnSolution, when non-nil, is invoked for each smooth solution as it
	// is classified, always in canonical BFS order — sequentially at
	// classification time, in the parallel search as the commit pointer
	// passes the node (so emission order is independent of worker
	// scheduling). The callback runs on the search's critical path (in
	// the parallel search it briefly holds the pool lock) and must not
	// block; buffer and hand off instead. The streaming service endpoint
	// is the intended consumer.
	OnSolution func(trace.Trace)
}

// NewProblem builds a pruned problem with sane defaults.
func NewProblem(d desc.Description, alphabet map[string][]value.Value, maxDepth int) Problem {
	chans := make([]string, 0, len(alphabet))
	for c := range alphabet {
		chans = append(chans, c)
	}
	sort.Strings(chans)
	return Problem{D: d, Channels: chans, Alphabet: alphabet, MaxDepth: maxDepth, Prune: true, Memoize: true, CollectVisited: true, Thm1: d.Thm1Eligible()}
}

// Result reports a bounded exploration of the smooth-solution tree.
type Result struct {
	// Solutions are the tree nodes satisfying the limit condition —
	// exactly the finite smooth solutions within the depth bound.
	Solutions []trace.Trace
	// Frontier are the depth-bound nodes that still have sons (or are at
	// MaxDepth); every ω smooth solution within the alphabet passes
	// through the frontier.
	Frontier []trace.Trace
	// DeadLeaves are nodes with no sons that fail the limit condition:
	// communication histories after which the process is stuck yet its
	// equations do not hold. (For a well-formed process description these
	// are nonquiescent histories whose extensions all left the alphabet.)
	DeadLeaves []trace.Trace
	// Visited lists every tree node reached, in BFS order; the root ⊥ is
	// always first. Every communication history of the described process
	// is a visited node (within the bounds). Empty when the problem opts
	// out via CollectVisited = false; Nodes and Stats.Visited still count.
	Visited []trace.Trace
	// Nodes is the number of tree nodes visited.
	Nodes int
	// Truncated reports that the search stopped early — either MaxNodes
	// ran out or the context was cancelled (see Canceled).
	Truncated bool
	// Canceled reports that the context's cancellation or deadline — not
	// the node budget — stopped the search. Canceled implies Truncated.
	Canceled bool
	// Stats instruments the search: node roles, per-level fan-out,
	// pruning effectiveness and evaluation cost. See SearchStats.
	Stats SearchStats
}

// ErrBudget is returned via Result.Truncated semantics; kept for callers
// that prefer errors.
var ErrBudget = errors.New("solver: node budget exhausted")

// root is the tree's bottom element ⊥. Tree nodes are plain traces: the
// persistent representation extends in O(1) with full prefix sharing,
// and Trace.Key gives the evaluator its (hash, length) memo key in O(1),
// so no per-node key string is maintained any more.
var root = trace.Empty

// search carries the machinery shared by one tree exploration: the
// problem, the memoized evaluator, and the interned candidate events —
// one Event per (channel, message) built up front, so expansion never
// re-constructs them.
type search struct {
	p Problem
	e *desc.Evaluator
	// cands holds the per-channel candidate events in Channels order —
	// the same data as ev, but expansion iterates it as a slice so the
	// per-node inner loop never touches a map. Each event's Hash64 is
	// precomputed: expansion appends the same few events to thousands of
	// nodes, so each is hashed once per search (trace.AppendPrehashed).
	cands []candSet
	// thm1 is true when the Theorem 1 fast path is active: the problem
	// requested it (independent supports) and the induction base
	// f(⊥) ⊑ g(⊥) holds. Candidates on channels outside fsupp are then
	// admitted without evaluation (see Problem.Thm1).
	thm1 bool
	// fanout is the total alphabet size across channels — the exact
	// capacity an expanding node's son list can need.
	fanout int
	fsupp  trace.ChanSet
	// sonBuf is the reusable son-slot buffer of the sequential walks
	// (enumerate, CheckInduction): capacity fanout, so expand never
	// reallocates, and the consumer copies the sons into its queue
	// before the next expand reuses the slots. The parallel search must
	// not use it — its nodeOuts retain son slices until commit.
	sonBuf []trace.Trace
}

// candSet is one channel's interned candidate events and their hashes.
type candSet struct {
	ch string
	es []trace.Event
	hs []uint64
	// auto caches the Theorem 1 membership test ch ∉ supp(f); expand
	// reads it per node instead of re-testing the ChanSet. False until
	// newSearch verifies the fast path's induction base.
	auto bool
}

// newSearch builds the shared search state. single promises the caller
// drives the search from one goroutine (Enumerate, Sample,
// CheckInduction), letting the evaluator memo skip its locks;
// EnumerateParallel must pass false.
func newSearch(p Problem, single bool) *search {
	s := &search{
		p: p,
		e: desc.NewEvaluatorOpts(p.D, desc.EvalOptions{
			Memoize:        p.Memoize,
			Compiled:       p.Compiled,
			SingleThreaded: single,
		}),
		cands: make([]candSet, 0, len(p.Channels)),
	}
	for _, c := range p.Channels {
		es := make([]trace.Event, len(p.Alphabet[c]))
		hs := make([]uint64, len(es))
		for i, m := range p.Alphabet[c] {
			es[i] = trace.E(c, m)
			hs[i] = es[i].Hash64()
		}
		s.cands = append(s.cands, candSet{ch: c, es: es, hs: hs})
		s.fanout += len(es)
	}
	s.sonBuf = make([]trace.Trace, 0, s.fanout)
	if p.Thm1 && p.Prune && !p.D.F.Omega {
		// Induction base for the fast path's invariant. If it fails, the
		// root has no sons at all (f(⊥) ⊑ f(v) ⊑ g(⊥) for any admitted
		// v), so falling back to the full edge check costs nothing. The
		// F.Omega re-check guards callers that set Thm1 by hand on an
		// ω-approximation left side, for which auto-admit is unsound.
		s.thm1 = s.e.F(trace.Empty).Leq(s.e.G(trace.Empty))
		s.fsupp = p.D.F.Support
		if s.thm1 {
			for i := range s.cands {
				s.cands[i].auto = !s.fsupp.Has(s.cands[i].ch)
			}
		}
	}
	return s
}

// Enumerate explores the Section 3.3 tree breadth-first to the problem's
// bounds and classifies every visited node. One memoized evaluator backs
// the whole search (see Problem.Memoize), so f and g are applied at most
// once per distinct trace; Result.Stats accounts for every node and edge.
//
// The context is checked once per visited node: cancellation or an
// expired deadline stops the search with Truncated and Canceled set, so
// adversarial problems (wide alphabets, deep probes) cannot run
// unbounded when the caller holds a deadline.
func Enumerate(ctx context.Context, p Problem) Result {
	s := newSearch(p, true)
	res := enumerate(ctx, s)
	res.Stats.Eval = s.e.Snapshot()
	res.Stats.CompiledEval = s.e.Compiled()
	return res
}

func enumerate(ctx context.Context, s *search) Result {
	var res Result
	res.Stats.Thm1FastPath = s.thm1
	seqLoop(ctx, s, &res, []trace.Trace{root}, nil)
	return res
}

// seqLoop is the sequential BFS core, shared by Enumerate and the
// checkpoint capture/resume paths. It folds classifications into res,
// which may arrive pre-loaded with an already-classified prefix (a
// resumed search); queue seeds the work list in canonical BFS order.
//
// A nil cp selects the plain semantics above. A non-nil cp selects
// capture semantics: depth-bound nodes are fully expanded (instead of
// probed with hasSon) and their admitted sons retained in cp as the
// resume frontier, and a truncated run records its unclassified queue
// remainder as cp.pending. Classification of every node is identical in
// both modes — a bound node is Frontier iff it has at least one son —
// only the bound-level edge accounting differs (expand visits every
// candidate where hasSon stops at the first witness, and never counts
// FrontierWitnesses). See Checkpoint for how that difference is reported.
func seqLoop(ctx context.Context, s *search, res *Result, queue []trace.Trace, cp *Checkpoint) {
	p := s.p
	st := &res.Stats
	start := time.Now()
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		res.Nodes++
		if p.CollectVisited {
			res.Visited = append(res.Visited, cur)
		}
		st.Visited++
		if ctx.Err() != nil {
			res.Truncated = true
			res.Canceled = true
			st.Skipped++
			if cp != nil {
				cp.pending = append([]trace.Trace{cur}, queue...)
			}
			break
		}
		if p.MaxNodes > 0 && res.Nodes > p.MaxNodes {
			res.Truncated = true
			st.Skipped++
			if cp != nil {
				cp.pending = append([]trace.Trace{cur}, queue...)
			}
			break
		}
		lvl := st.level(cur.Len())
		lvl.Nodes++
		isSolution := s.classify(cur, st)
		if isSolution {
			res.Solutions = append(res.Solutions, cur)
			st.Solutions++
			lvl.Solutions++
			if p.OnSolution != nil {
				p.OnSolution(cur)
			}
		}
		if cur.Len() >= p.MaxDepth {
			switch {
			case cp != nil:
				// Capture mode: expand the bound node in full so the sons
				// survive as the resume frontier. The role verdict is the
				// same as hasSon's (a son exists iff expand admits one);
				// retained sons must not live in sonBuf.
				sons := s.expand(cur, st, nil)
				if len(sons) > 0 {
					res.Frontier = append(res.Frontier, cur)
					st.Frontier++
					cp.frontier = append(cp.frontier, frontierEntry{node: cur, sons: sons})
					st.RetainedSons += len(sons)
				} else if !isSolution {
					res.DeadLeaves = append(res.DeadLeaves, cur)
					st.Dead++
				} else {
					st.Closed++
				}
			case s.hasSon(cur, st):
				res.Frontier = append(res.Frontier, cur)
				st.Frontier++
			case !isSolution:
				res.DeadLeaves = append(res.DeadLeaves, cur)
				st.Dead++
			default:
				st.Closed++
			}
			continue
		}
		sons := s.expand(cur, st, s.sonBuf[:0])
		switch {
		case len(sons) > 0:
			st.Interior++
		case isSolution:
			st.Closed++
		default:
			res.DeadLeaves = append(res.DeadLeaves, cur)
			st.Dead++
		}
		queue = append(queue, sons...)
	}
	st.Elapsed += time.Since(start)
}

// classify decides the limit condition at a node, with the full
// smoothness re-check the unpruned ablation requires.
func (s *search) classify(t trace.Trace, st *SearchStats) bool {
	st.LimitChecks++
	isSolution := s.e.LimitOK(t)
	if s.p.Prune {
		// With pruning, every node is reachable only through smooth
		// edges, so the limit condition alone decides.
		return isSolution
	}
	if isSolution {
		// Without pruning, re-check the full smoothness condition.
		isSolution = s.p.D.IsSmoothFinite(t) == nil
	}
	return isSolution
}

// expand generates the smooth sons of u. g(u) is evaluated at most once
// per node — not once per candidate, and not at all when the Theorem 1
// fast path admits every candidate — and each rejected candidate is a
// whole subtree of the unpruned tree cut before any of it is expanded.
// Each son is an O(1) persistent extension sharing u's spine.
//
// dst, when non-nil, supplies the son slots (the sequential walks pass
// the search's reusable buffer); callers that retain the returned slice
// past the next expand — the parallel search — must pass nil.
func (s *search) expand(u trace.Trace, st *SearchStats, dst []trace.Trace) []trace.Trace {
	sons := dst
	lvl := st.level(u.Len() + 1)
	var gu fn.Tuple
	guReady := false
	for ci := range s.cands {
		// Fast path (Theorem 1): a channel outside supp(f) means
		// f(u·e) = f(u), and f(u) ⊑ g(u) holds at every admitted node, so
		// the edge condition f(v) ⊑ g(u) is guaranteed — admit without
		// evaluating.
		c := &s.cands[ci]
		auto := c.auto
		for i, e := range c.es {
			v := u.AppendPrehashed(e, c.hs[i])
			st.EdgesChecked++
			if s.p.Prune {
				if auto {
					st.Thm1AutoEdges++
				} else {
					if !guReady {
						gu = s.e.G(u)
						guReady = true
					}
					if !s.e.F(v).Leq(gu) {
						st.SubtreesPruned++
						lvl.Pruned++
						continue
					}
				}
			}
			st.EdgesKept++
			if sons == nil {
				sons = make([]trace.Trace, 0, s.fanout)
			}
			sons = append(sons, v)
		}
	}
	return sons
}

// hasSon reports whether a depth-bound node has a smooth son, stopping at
// the first witness. Failed candidates are pruned subtrees like expand's;
// the witness is counted separately since it is never enqueued. A
// Theorem-1 auto-admitted candidate is an immediate witness.
func (s *search) hasSon(u trace.Trace, st *SearchStats) bool {
	lvl := st.level(u.Len() + 1)
	var gu fn.Tuple
	guReady := false
	for ci := range s.cands {
		c := &s.cands[ci]
		auto := c.auto
		for i, e := range c.es {
			v := u.AppendPrehashed(e, c.hs[i])
			st.EdgesChecked++
			if auto {
				st.Thm1AutoEdges++
				st.FrontierWitnesses++
				return true
			}
			if !guReady {
				gu = s.e.G(u)
				guReady = true
			}
			if s.e.F(v).Leq(gu) {
				st.FrontierWitnesses++
				return true
			}
			st.SubtreesPruned++
			lvl.Pruned++
		}
	}
	return false
}

// Contains reports whether the result's solutions include t.
func (r Result) Contains(t trace.Trace) bool {
	for _, s := range r.Solutions {
		if s.Equal(t) {
			return true
		}
	}
	return false
}

// SolutionKeys returns the canonical strings of all solutions, sorted —
// convenient for table-driven tests. These are the human-readable
// renderings (Trace.String), not the (hash, length) memo keys.
func (r Result) SolutionKeys() []string {
	keys := make([]string, len(r.Solutions))
	for i, s := range r.Solutions {
		keys[i] = s.String()
	}
	sort.Strings(keys)
	return keys
}

// IsTreeNode reports whether t is a node of the Section 3.3 tree, i.e.
// every consecutive prefix pair is a smooth edge. Every communication
// history of a process — every prefix of a run trace, quiescent or not —
// must be a tree node; the conformance harness (package check) relies on
// this.
func IsTreeNode(d desc.Description, t trace.Trace) bool {
	ok := true
	t.PrePairs(func(u, v trace.Trace) bool {
		ok = d.EdgeOK(u, v)
		return ok
	})
	return ok
}

// CheckInduction discharges the Section 8.4 smooth-solution induction
// rule over the bounded tree: it verifies φ(⊥), then checks the inductive
// step along every explored edge, and — soundness of the rule — confirms
// φ on every smooth solution. It returns an error describing the first
// failed premise; if the premises hold but some solution violates φ, the
// returned error says so (and would indicate a bug, since the rule is
// sound).
//
// The tree is explored exactly once: each dequeued node is classified by
// the limit condition during the same walk that checks the inductive
// step along its out-edges, sharing one memoized evaluator — there is no
// second Enumerate pass.
func CheckInduction(ctx context.Context, p Problem, phi func(trace.Trace) bool) error {
	if !phi(trace.Empty) {
		return errors.New("solver: induction base φ(⊥) fails")
	}
	s := newSearch(p, true)
	var st SearchStats
	queue := []trace.Trace{root}
	nodes := 0
	var unsound error
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		nodes++
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("solver: induction check stopped: %w", err)
		}
		if p.MaxNodes > 0 && nodes > p.MaxNodes {
			return ErrBudget
		}
		// Soundness check, folded into the single walk: a node that
		// satisfies the limit condition is a smooth solution, and φ must
		// hold there. The verdict is deferred — premise failures found
		// anywhere in the walk take precedence, matching the rule's
		// reading (an unsound conclusion only matters once the premises
		// are discharged).
		if unsound == nil && s.classify(u, &st) && !phi(u) {
			unsound = fmt.Errorf("solver: induction rule unsound?! φ fails on smooth solution %s", u)
		}
		if u.Len() >= p.MaxDepth {
			continue
		}
		for _, v := range s.expand(u, &st, s.sonBuf[:0]) {
			if err := p.D.InductionPremise(phi, u, v); err != nil {
				return err
			}
			queue = append(queue, v)
		}
	}
	return unsound
}
