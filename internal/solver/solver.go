// Package solver implements the operational view of smooth solutions in
// Section 3.3 of the paper: a tree rooted at ⊥ in which a node labelled u
// has a son labelled v iff u pre v and f(v) ⊑ g(u). Smooth solutions are
// the nodes that also satisfy the limit condition f = g; infinite paths
// approximate ω smooth solutions. The construction generalises Kleene's
// fixpoint chain — for a description id ⟵ h the tree degenerates to the
// chain ⊥, h(⊥), h²(⊥), ... (Theorem 4, checked in package kahn).
//
// The paper's tree branches over all one-step extensions of u; to make
// that finite the Problem supplies a candidate alphabet per channel (see
// DESIGN.md on this substitution).
package solver

import (
	"errors"
	"fmt"
	"sort"

	"smoothproc/internal/desc"
	"smoothproc/internal/trace"
	"smoothproc/internal/value"
)

// Problem is a description together with the finite branching data the
// tree search needs.
type Problem struct {
	// D is the (usually combined) description whose smooth solutions are
	// sought.
	D desc.Description
	// Channels lists the channels over which traces are built, in a
	// deterministic exploration order.
	Channels []string
	// Alphabet gives the candidate messages per channel.
	Alphabet map[string][]value.Value
	// MaxDepth bounds the trace length explored.
	MaxDepth int
	// MaxNodes bounds the total number of tree nodes expanded; 0 means
	// no bound beyond MaxDepth.
	MaxNodes int
	// Prune disables the f(v) ⊑ g(u) edge filter when false — only used
	// by the pruning ablation (experiment E21); real searches always
	// prune. With pruning off, every one-step extension is a son and
	// smoothness is re-checked from scratch on candidate solutions.
	Prune bool
}

// NewProblem builds a pruned problem with sane defaults.
func NewProblem(d desc.Description, alphabet map[string][]value.Value, maxDepth int) Problem {
	chans := make([]string, 0, len(alphabet))
	for c := range alphabet {
		chans = append(chans, c)
	}
	sort.Strings(chans)
	return Problem{D: d, Channels: chans, Alphabet: alphabet, MaxDepth: maxDepth, Prune: true}
}

// Result reports a bounded exploration of the smooth-solution tree.
type Result struct {
	// Solutions are the tree nodes satisfying the limit condition —
	// exactly the finite smooth solutions within the depth bound.
	Solutions []trace.Trace
	// Frontier are the depth-bound nodes that still have sons (or are at
	// MaxDepth); every ω smooth solution within the alphabet passes
	// through the frontier.
	Frontier []trace.Trace
	// DeadLeaves are nodes with no sons that fail the limit condition:
	// communication histories after which the process is stuck yet its
	// equations do not hold. (For a well-formed process description these
	// are nonquiescent histories whose extensions all left the alphabet.)
	DeadLeaves []trace.Trace
	// Visited lists every tree node reached, in BFS order; the root ⊥ is
	// always first. Every communication history of the described process
	// is a visited node (within the bounds).
	Visited []trace.Trace
	// Nodes is the number of tree nodes visited.
	Nodes int
	// Truncated reports that MaxNodes stopped the search early.
	Truncated bool
}

// ErrBudget is returned via Result.Truncated semantics; kept for callers
// that prefer errors.
var ErrBudget = errors.New("solver: node budget exhausted")

// Enumerate explores the Section 3.3 tree breadth-first to the problem's
// bounds and classifies every visited node.
func Enumerate(p Problem) Result {
	var res Result
	type node struct{ t trace.Trace }
	queue := []node{{trace.Empty}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		res.Nodes++
		res.Visited = append(res.Visited, cur.t)
		if p.MaxNodes > 0 && res.Nodes > p.MaxNodes {
			res.Truncated = true
			return res
		}
		isSolution := p.D.LimitOK(cur.t)
		if p.Prune {
			// With pruning, every node is reachable only through smooth
			// edges, so the limit condition alone decides.
		} else if isSolution {
			// Without pruning, re-check the full smoothness condition.
			isSolution = p.D.IsSmoothFinite(cur.t) == nil
		}
		if isSolution {
			res.Solutions = append(res.Solutions, cur.t)
		}
		if cur.t.Len() >= p.MaxDepth {
			if hasSon(p, cur.t) {
				res.Frontier = append(res.Frontier, cur.t)
			} else if !isSolution {
				res.DeadLeaves = append(res.DeadLeaves, cur.t)
			}
			continue
		}
		sons := expand(p, cur.t)
		if len(sons) == 0 && !isSolution {
			res.DeadLeaves = append(res.DeadLeaves, cur.t)
		}
		for _, s := range sons {
			queue = append(queue, node{s})
		}
	}
	return res
}

func expand(p Problem, u trace.Trace) []trace.Trace {
	var sons []trace.Trace
	for _, c := range p.Channels {
		for _, m := range p.Alphabet[c] {
			v := u.Append(trace.E(c, m))
			if !p.Prune || p.D.EdgeOK(u, v) {
				sons = append(sons, v)
			}
		}
	}
	return sons
}

func hasSon(p Problem, u trace.Trace) bool {
	for _, c := range p.Channels {
		for _, m := range p.Alphabet[c] {
			if p.D.EdgeOK(u, u.Append(trace.E(c, m))) {
				return true
			}
		}
	}
	return false
}

// Contains reports whether the result's solutions include t.
func (r Result) Contains(t trace.Trace) bool {
	for _, s := range r.Solutions {
		if s.Equal(t) {
			return true
		}
	}
	return false
}

// SolutionKeys returns the canonical strings of all solutions, sorted —
// convenient for table-driven tests.
func (r Result) SolutionKeys() []string {
	keys := make([]string, len(r.Solutions))
	for i, s := range r.Solutions {
		keys[i] = s.Key()
	}
	sort.Strings(keys)
	return keys
}

// IsTreeNode reports whether t is a node of the Section 3.3 tree, i.e.
// every consecutive prefix pair is a smooth edge. Every communication
// history of a process — every prefix of a run trace, quiescent or not —
// must be a tree node; the conformance harness (package check) relies on
// this.
func IsTreeNode(d desc.Description, t trace.Trace) bool {
	ok := true
	t.PrePairs(func(u, v trace.Trace) bool {
		ok = d.EdgeOK(u, v)
		return ok
	})
	return ok
}

// CheckInduction discharges the Section 8.4 smooth-solution induction
// rule over the bounded tree: it verifies φ(⊥), then checks the inductive
// step along every explored edge, and finally — soundness of the rule —
// confirms φ on every enumerated solution. It returns an error describing
// the first failed premise; if the premises hold but some solution
// violates φ, the returned error says so (and would indicate a bug, since
// the rule is sound).
func CheckInduction(p Problem, phi func(trace.Trace) bool) error {
	if !phi(trace.Empty) {
		return errors.New("solver: induction base φ(⊥) fails")
	}
	var queue []trace.Trace
	queue = append(queue, trace.Empty)
	nodes := 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		nodes++
		if p.MaxNodes > 0 && nodes > p.MaxNodes {
			return ErrBudget
		}
		if u.Len() >= p.MaxDepth {
			continue
		}
		for _, v := range expand(p, u) {
			if err := p.D.InductionPremise(phi, u, v); err != nil {
				return err
			}
			queue = append(queue, v)
		}
	}
	for _, s := range Enumerate(p).Solutions {
		if !phi(s) {
			return fmt.Errorf("solver: induction rule unsound?! φ fails on smooth solution %s", s)
		}
	}
	return nil
}
