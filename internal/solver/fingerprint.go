package solver

import (
	"hash/fnv"

	"smoothproc/internal/trace"
)

// Fingerprint condenses a search result into one uint64 covering every
// deterministic observable: the solution, frontier and dead-leaf traces
// (in result order) and the node/edge/pruning/memo counters. Two runs of
// the same problem — at any worker count, interpreted or compiled — must
// produce equal fingerprints; that is the determinism contract the
// parity suites assert field by field, packed into a value cheap enough
// to log per corpus instance and compare across machines and Go
// versions. Run-configuration flags (Thm1FastPath, CompiledEval,
// Workers) are deliberately excluded.
func (r Result) Fingerprint() uint64 {
	h := fnv.New64a()
	writeInt := func(n int) {
		var buf [8]byte
		u := uint64(n)
		for i := range buf {
			buf[i] = byte(u >> (8 * i))
		}
		h.Write(buf[:])
	}
	writeTraces := func(label string, ts []trace.Trace) {
		h.Write([]byte(label))
		writeInt(len(ts))
		for _, t := range ts {
			h.Write([]byte(t.String()))
			h.Write([]byte{0})
		}
	}
	writeTraces("solutions", r.Solutions)
	writeTraces("frontier", r.Frontier)
	writeTraces("dead", r.DeadLeaves)
	writeInt(r.Nodes)
	writeInt(boolInt(r.Truncated))
	writeInt(boolInt(r.Canceled))
	st := r.Stats
	for _, n := range []int{
		st.Visited, st.Interior, st.Frontier, st.Dead, st.Closed,
		st.Skipped, st.Solutions, st.LimitChecks, st.EdgesChecked,
		st.EdgesKept, st.SubtreesPruned, st.FrontierWitnesses,
		st.Thm1AutoEdges, int(st.Eval.CacheHits()), int(st.Eval.CacheMisses()),
	} {
		writeInt(n)
	}
	return h.Sum64()
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
