package solver

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"testing"
)

// raceFingerprint renders everything a search promises to keep
// deterministic: result slices in order, role counts, edge fates and
// the evaluator's apply/hit counters — the in-memory analogue of the
// repo-level BENCH_solver.json fingerprint.
func raceFingerprint(res Result) string {
	var b strings.Builder
	for _, t := range res.Visited {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	st := res.Stats.Deterministic()
	fmt.Fprintf(&b, "nodes=%d sol=%s frontier=%d dead=%d closed=%d interior=%d skipped=%d\n",
		res.Nodes, strings.Join(res.SolutionKeys(), "|"), st.Frontier, st.Dead, st.Closed, st.Interior, st.Skipped)
	fmt.Fprintf(&b, "checked=%d kept=%d pruned=%d witnesses=%d limit=%d\n",
		st.EdgesChecked, st.EdgesKept, st.SubtreesPruned, st.FrontierWitnesses, st.LimitChecks)
	fmt.Fprintf(&b, "fapplies=%d gapplies=%d fhits=%d ghits=%d\n",
		st.Eval.FApplies, st.Eval.GApplies, st.Eval.FHits, st.Eval.GHits)
	return b.String()
}

// TestParallelFingerprintUnderRace runs the work-stealing search under
// the race detector at several worker counts and asserts the full
// deterministic fingerprint — including the evaluator's apply counts,
// which the pre-singleflight implementation could not keep stable —
// equals sequential Enumerate's. The CI invariants job runs this with
// -race; it backs the concurrency claims in EnumerateParallel's and
// Evaluator's doc comments.
func TestParallelFingerprintUnderRace(t *testing.T) {
	problems := map[string]Problem{
		"dfm-6": dfmProblem(6),
		"dfm-7": dfmProblem(7),
	}
	for name, p := range problems {
		p := p
		t.Run(name, func(t *testing.T) {
			want := raceFingerprint(Enumerate(context.Background(), p))
			for _, workers := range []int{1, 2, 7, runtime.GOMAXPROCS(0)} {
				for rep := 0; rep < 3; rep++ {
					got := raceFingerprint(EnumerateParallel(context.Background(), p, workers))
					if got != want {
						t.Fatalf("w%d rep %d: fingerprint diverged from sequential:\n--- got ---\n%s--- want ---\n%s",
							workers, rep, got, want)
					}
				}
			}
		})
	}
}

// TestParallelTruncationFingerprintUnderRace: same contract with the
// node budget biting — truncation must cut the identical prefix under
// any schedule.
func TestParallelTruncationFingerprintUnderRace(t *testing.T) {
	p := dfmProblem(7)
	p.MaxNodes = 23
	want := raceFingerprint(Enumerate(context.Background(), p))
	for _, workers := range []int{2, 4, runtime.GOMAXPROCS(0)} {
		for rep := 0; rep < 3; rep++ {
			got := raceFingerprint(EnumerateParallel(context.Background(), p, workers))
			if got != want {
				t.Fatalf("w%d rep %d: truncated fingerprint diverged:\n--- got ---\n%s--- want ---\n%s",
					workers, rep, got, want)
			}
		}
	}
}
