package solver

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"smoothproc/internal/desc"
	"smoothproc/internal/fn"
	"smoothproc/internal/value"
)

func TestParallelMatchesSequential(t *testing.T) {
	problems := map[string]Problem{
		"dfm-4": dfmProblem(4),
		"dfm-6": dfmProblem(6),
		"ticks": NewProblem(
			desc.MustNew("ticks", fn.ChanFn("b"), fn.OnChan(fn.PrependFn(value.T), "b")),
			map[string][]value.Value{"b": {value.T, value.F}}, 6),
	}
	for name, p := range problems {
		p := p
		for _, workers := range []int{1, 2, 8} {
			t.Run(fmt.Sprintf("%s-w%d", name, workers), func(t *testing.T) {
				seq := Enumerate(context.Background(), p)
				par := EnumerateParallel(context.Background(), p, workers)
				if par.Nodes != seq.Nodes {
					t.Errorf("nodes: parallel %d vs sequential %d", par.Nodes, seq.Nodes)
				}
				a := strings.Join(seq.SolutionKeys(), "|")
				b := strings.Join(par.SolutionKeys(), "|")
				if a != b {
					t.Errorf("solutions differ:\nseq: %s\npar: %s", a, b)
				}
				if len(par.Frontier) != len(seq.Frontier) {
					t.Errorf("frontier: %d vs %d", len(par.Frontier), len(seq.Frontier))
				}
				if len(par.DeadLeaves) != len(seq.DeadLeaves) {
					t.Errorf("dead leaves: %d vs %d", len(par.DeadLeaves), len(seq.DeadLeaves))
				}
			})
		}
	}
}

func TestParallelIsDeterministic(t *testing.T) {
	p := dfmProblem(5)
	a := EnumerateParallel(context.Background(), p, 4)
	b := EnumerateParallel(context.Background(), p, 4)
	if strings.Join(a.SolutionKeys(), "|") != strings.Join(b.SolutionKeys(), "|") {
		t.Error("parallel runs disagree")
	}
	// And the per-level sort makes Visited deterministic too.
	for i := range a.Visited {
		if !a.Visited[i].Equal(b.Visited[i]) {
			t.Fatalf("visited order differs at %d", i)
		}
	}
}

func TestParallelUnprunedAblation(t *testing.T) {
	p := dfmProblem(4)
	p.Prune = false
	seq := Enumerate(context.Background(), p)
	par := EnumerateParallel(context.Background(), p, 4)
	if strings.Join(seq.SolutionKeys(), "|") != strings.Join(par.SolutionKeys(), "|") {
		t.Error("unpruned parallel disagrees with sequential")
	}
}

func TestParallelNodeBudget(t *testing.T) {
	p := dfmProblem(6)
	p.MaxNodes = 5
	res := EnumerateParallel(context.Background(), p, 4)
	if !res.Truncated {
		t.Error("budget not enforced")
	}
}

func BenchmarkEnumerateParallel(b *testing.B) {
	p := dfmProblem(8)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				EnumerateParallel(context.Background(), p, workers)
			}
		})
	}
	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Enumerate(context.Background(), p)
		}
	})
}
