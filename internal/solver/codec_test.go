package solver

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"testing"

	"smoothproc/internal/trace"
)

// TestCheckpointCodecRoundTrip is the persistence contract: a decoded
// checkpoint is indistinguishable from the live one — stored result,
// frontier/pending shape, memo footprint — and a Final resume from it
// is byte-identical to a cold solve at the target depth, evaluator
// hit/apply counters included.
func TestCheckpointCodecRoundTrip(t *testing.T) {
	ctx := context.Background()
	const capDepth, fullDepth = 2, 5

	capRes, cp := EnumerateCapture(ctx, dfmProblem(capDepth))
	blob, err := cp.Encode()
	if err != nil {
		t.Fatal(err)
	}

	dec, err := DecodeCheckpoint(blob, dfmProblem(capDepth))
	if err != nil {
		t.Fatal(err)
	}
	expectResultsEqual(t, "decoded stored result", dec.Result(), capRes)
	if dec.FrontierSize() != cp.FrontierSize() || dec.PendingSize() != cp.PendingSize() ||
		dec.Resumes() != cp.Resumes() || dec.Resumable() != cp.Resumable() ||
		dec.MaxDepth() != cp.MaxDepth() {
		t.Fatalf("decoded shape (%d,%d,%d,%v,%d) != live (%d,%d,%d,%v,%d)",
			dec.FrontierSize(), dec.PendingSize(), dec.Resumes(), dec.Resumable(), dec.MaxDepth(),
			cp.FrontierSize(), cp.PendingSize(), cp.Resumes(), cp.Resumable(), cp.MaxDepth())
	}
	if dec.MemoEntries() != cp.MemoEntries() {
		t.Fatalf("decoded memo holds %d entries, live %d", dec.MemoEntries(), cp.MemoEntries())
	}

	cold := Enumerate(ctx, dfmProblem(fullDepth))
	res, err := dec.Resume(ctx, ResumeOpts{MaxDepth: fullDepth, Final: true})
	if err != nil {
		t.Fatal(err)
	}
	expectResultsEqual(t, "resume from decoded checkpoint vs cold", res, cold)
}

// TestCheckpointCodecDeterministic: encoding the same checkpoint twice,
// or encoding its own decode, yields byte-identical blobs — what makes
// checkpoint blobs content-addressable.
func TestCheckpointCodecDeterministic(t *testing.T) {
	ctx := context.Background()
	_, cp := EnumerateParallelCapture(ctx, dfmProblem(3), 3)
	b1, err := cp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := cp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("re-encoding the live checkpoint changed the blob")
	}
	dec, err := DecodeCheckpoint(b1, dfmProblem(3))
	if err != nil {
		t.Fatal(err)
	}
	b3, err := dec.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b3) {
		t.Fatal("encode∘decode∘encode changed the blob")
	}
}

// TestCheckpointCodecTruncated covers the pending-queue path: a budget-
// truncated capture decodes and resumes to the cold full solve.
func TestCheckpointCodecTruncated(t *testing.T) {
	ctx := context.Background()
	p := dfmProblem(4)
	p.MaxNodes = 9
	capRes, cp := EnumerateCapture(ctx, p)
	if !capRes.Truncated || cp.PendingSize() == 0 {
		t.Fatalf("capture not truncated as intended (truncated=%v pending=%d)", capRes.Truncated, cp.PendingSize())
	}
	blob, err := cp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	p2 := dfmProblem(4)
	p2.MaxNodes = 9
	dec, err := DecodeCheckpoint(blob, p2)
	if err != nil {
		t.Fatal(err)
	}
	cold := Enumerate(ctx, dfmProblem(4))
	res, err := dec.Resume(ctx, ResumeOpts{MaxDepth: 4, Final: true})
	if err != nil {
		t.Fatal(err)
	}
	expectResultsEqual(t, "truncated decode + final resume vs cold", res, cold)
}

// TestCheckpointCodecFlagMismatch: decoding under a differently
// configured problem must fail loudly, not produce drifting results.
func TestCheckpointCodecFlagMismatch(t *testing.T) {
	_, cp := EnumerateCapture(context.Background(), dfmProblem(2))
	blob, err := cp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	p := dfmProblem(2)
	p.Memoize = false
	if _, err := DecodeCheckpoint(blob, p); err == nil {
		t.Fatal("decode under mismatched Memoize succeeded")
	}
	p = dfmProblem(2)
	p.Prune = false
	if _, err := DecodeCheckpoint(blob, p); err == nil {
		t.Fatal("decode under mismatched Prune succeeded")
	}
}

// TestCheckpointCodecCorrupt flips bytes across the blob: decode must
// fail closed with an error wrapping trace.ErrCorrupt or — where the
// flip is semantically inert — produce a checkpoint whose resume still
// matches the cold solve. Never a panic.
func TestCheckpointCodecCorrupt(t *testing.T) {
	ctx := context.Background()
	_, cp := EnumerateCapture(ctx, dfmProblem(2))
	blob, err := cp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(blob); i++ {
		mut := bytes.Clone(blob)
		mut[i] ^= 0xff
		dec, err := DecodeCheckpoint(mut, dfmProblem(2))
		if err != nil {
			continue // fail-closed is the expected outcome
		}
		// The flip decoded: the checkpoint must still be usable (flag
		// bytes and similar can only flip to other valid states that the
		// flag-mismatch check rejects, so reaching here means structure
		// survived). A resume must not panic.
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("byte %d: resume of corrupt-decoded checkpoint panicked: %v", i, r)
				}
			}()
			_, _ = dec.Resume(ctx, ResumeOpts{MaxDepth: 3, Final: true})
		}()
	}
	// Truncations fail closed too.
	for _, n := range []int{0, 1, 4, len(blob) / 2, len(blob) - 1} {
		if _, err := DecodeCheckpoint(blob[:n], dfmProblem(2)); err == nil {
			t.Fatalf("decoding %d/%d bytes succeeded", n, len(blob))
		} else if !errors.Is(err, trace.ErrCorrupt) {
			t.Fatalf("truncation at %d: %v does not wrap trace.ErrCorrupt", n, err)
		}
	}
}

// FuzzCheckpointDecode throws raw bytes at the decoder: any outcome but
// a panic is acceptable, and a successful decode must hold a result
// whose invariants still balance.
func FuzzCheckpointDecode(f *testing.F) {
	_, cp := EnumerateCapture(context.Background(), dfmProblem(2))
	if blob, err := cp.Encode(); err == nil {
		f.Add(blob)
		f.Add(blob[:len(blob)/2])
	}
	f.Add([]byte("SPT1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := DecodeCheckpoint(data, dfmProblem(2))
		if err != nil {
			// Fail-closed: corrupt-sentinel or config-mismatch errors,
			// never a panic (a panic fails the fuzz run on its own).
			return
		}
		res := dec.Result()
		_ = res.Stats.CheckInvariants(res.Truncated)
	})
}

// TestCheckpointCodecResumeParity mirrors the live resume matrix over a
// serialize/deserialize boundary: capture (seq or par), round-trip the
// blob, resume (seq or par), compare against cold.
func TestCheckpointCodecResumeParity(t *testing.T) {
	ctx := context.Background()
	const capDepth, fullDepth = 2, 5
	cold := Enumerate(ctx, dfmProblem(fullDepth))
	for _, tc := range []struct {
		name                      string
		capWorkers, resumeWorkers int
	}{
		{"seq-seq", 1, 1},
		{"seq-par", 1, 3},
		{"par-seq", 3, 1},
		{"par-par", 2, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var cp *Checkpoint
			if tc.capWorkers > 1 {
				_, cp = EnumerateParallelCapture(ctx, dfmProblem(capDepth), tc.capWorkers)
			} else {
				_, cp = EnumerateCapture(ctx, dfmProblem(capDepth))
			}
			blob, err := cp.Encode()
			if err != nil {
				t.Fatal(err)
			}
			dec, err := DecodeCheckpoint(blob, dfmProblem(capDepth))
			if err != nil {
				t.Fatal(err)
			}
			res, err := dec.Resume(ctx, ResumeOpts{MaxDepth: fullDepth, Workers: tc.resumeWorkers, Final: true})
			if err != nil {
				t.Fatal(err)
			}
			expectResultsEqual(t, tc.name, res, cold)
		})
	}
}

func TestCheckpointCodecEqualStats(t *testing.T) {
	// The decoded checkpoint's full (non-Deterministic) counter set for
	// the deterministic fields must equal the live one; spot-check the
	// eval snapshot directly since fingerprints hang off it.
	_, cp := EnumerateCapture(context.Background(), dfmProblem(3))
	blob, err := cp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeCheckpoint(blob, dfmProblem(3))
	if err != nil {
		t.Fatal(err)
	}
	live := cp.s.e.Snapshot()
	got := dec.s.e.Snapshot()
	live.FNanos, live.GNanos, got.FNanos, got.GNanos = 0, 0, 0, 0
	if !reflect.DeepEqual(got, live) {
		t.Fatalf("decoded evaluator snapshot %+v, live %+v", got, live)
	}
}
