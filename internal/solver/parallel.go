package solver

import (
	"runtime"
	"sort"
	"sync"

	"smoothproc/internal/trace"
)

// EnumerateParallel is Enumerate with the tree expanded level by level
// across a worker pool. Results are identical to Enumerate up to
// ordering; this implementation sorts each level canonically, so the
// output is deterministic (and equal to Enumerate's after sorting).
// Workers ≤ 0 uses GOMAXPROCS. The node budget is enforced per level
// boundary, so a parallel run may visit up to one level beyond the
// budget before stopping — still reported via Truncated.
func EnumerateParallel(p Problem, workers int) Result {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var res Result
	level := []trace.Trace{trace.Empty}
	for len(level) > 0 {
		// Classify and expand this level in parallel.
		type nodeOut struct {
			solution bool
			frontier bool
			dead     bool
			sons     []trace.Trace
		}
		outs := make([]nodeOut, len(level))
		var wg sync.WaitGroup
		chunk := (len(level) + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := min(lo+chunk, len(level))
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					cur := level[i]
					o := &outs[i]
					o.solution = p.D.LimitOK(cur)
					if !p.Prune && o.solution {
						o.solution = p.D.IsSmoothFinite(cur) == nil
					}
					if cur.Len() >= p.MaxDepth {
						if hasSon(p, cur) {
							o.frontier = true
						} else if !o.solution {
							o.dead = true
						}
						continue
					}
					o.sons = expand(p, cur)
					if len(o.sons) == 0 && !o.solution {
						o.dead = true
					}
				}
			}(lo, hi)
		}
		wg.Wait()

		var next []trace.Trace
		for i, o := range outs {
			res.Nodes++
			res.Visited = append(res.Visited, level[i])
			if o.solution {
				res.Solutions = append(res.Solutions, level[i])
			}
			if o.frontier {
				res.Frontier = append(res.Frontier, level[i])
			}
			if o.dead {
				res.DeadLeaves = append(res.DeadLeaves, level[i])
			}
			next = append(next, o.sons...)
		}
		if p.MaxNodes > 0 && res.Nodes+len(next) > p.MaxNodes {
			res.Truncated = true
			return res
		}
		sort.Slice(next, func(i, j int) bool { return next[i].Key() < next[j].Key() })
		level = next
	}
	return res
}
