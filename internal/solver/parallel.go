package solver

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"time"

	"smoothproc/internal/trace"
)

// EnumerateParallel is Enumerate with the tree expanded level by level
// across a worker pool. Results are identical to Enumerate up to
// ordering; this implementation sorts each level canonically, so the
// output is deterministic (and equal to Enumerate's after sorting).
// Workers ≤ 0 uses GOMAXPROCS. All workers share one memoized evaluator,
// so shared prefixes are evaluated once across the whole pool.
//
// The node budget is enforced inside level expansion: when a level would
// cross MaxNodes, only the first MaxNodes−visited nodes of the level (in
// canonical order) are visited, so a truncated search visits exactly
// MaxNodes nodes — never a whole level more.
//
// Cancellation is checked at level boundaries — the coarsest granularity
// that keeps results deterministic: a cancelled search stops before the
// next level with Truncated and Canceled set, never mid-level.
func EnumerateParallel(ctx context.Context, p Problem, workers int) Result {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := newSearch(p)
	var res Result
	st := &res.Stats
	st.Thm1FastPath = s.thm1
	start := time.Now()
	level := []trace.Trace{root}
	for len(level) > 0 {
		if ctx.Err() != nil {
			res.Truncated = true
			res.Canceled = true
			break
		}
		if p.MaxNodes > 0 && res.Nodes+len(level) > p.MaxNodes {
			res.Truncated = true
			level = level[:p.MaxNodes-res.Nodes]
			if len(level) == 0 {
				break
			}
		}
		// Classify and expand this level in parallel. Each worker keeps
		// its counters in its slice of outs; aggregation is sequential.
		type nodeOut struct {
			solution bool
			frontier bool
			dead     bool
			closed   bool
			sons     []trace.Trace
			stats    SearchStats
		}
		outs := make([]nodeOut, len(level))
		var wg sync.WaitGroup
		chunk := (len(level) + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := min(lo+chunk, len(level))
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					cur := level[i]
					o := &outs[i]
					o.solution = s.classify(cur, &o.stats)
					if cur.Len() >= p.MaxDepth {
						if s.hasSon(cur, &o.stats) {
							o.frontier = true
						} else if !o.solution {
							o.dead = true
						} else {
							o.closed = true
						}
						continue
					}
					o.sons = s.expand(cur, &o.stats)
					if len(o.sons) == 0 {
						if o.solution {
							o.closed = true
						} else {
							o.dead = true
						}
					}
				}
			}(lo, hi)
		}
		wg.Wait()

		var next []trace.Trace
		for i, o := range outs {
			cur := level[i]
			res.Nodes++
			if p.CollectVisited {
				res.Visited = append(res.Visited, cur)
			}
			st.Visited++
			lvl := st.level(cur.Len())
			lvl.Nodes++
			if o.solution {
				res.Solutions = append(res.Solutions, cur)
				st.Solutions++
				lvl.Solutions++
			}
			switch {
			case o.frontier:
				res.Frontier = append(res.Frontier, cur)
				st.Frontier++
			case o.dead:
				res.DeadLeaves = append(res.DeadLeaves, cur)
				st.Dead++
			case o.closed:
				st.Closed++
			default:
				st.Interior++
			}
			st.merge(o.stats)
			next = append(next, o.sons...)
		}
		if res.Truncated {
			break
		}
		sortLevel(next)
		level = next
	}
	st.Elapsed = time.Since(start)
	st.Eval = s.e.Snapshot()
	return res
}

// sortLevel orders one tree level canonically — by the rendered event
// key, the same order the old string-keyed implementation produced — so
// the parallel search stays deterministic (including which nodes a
// MaxNodes truncation cuts). The renderings are derived once per node,
// not once per comparison.
func sortLevel(level []trace.Trace) {
	keys := make([]string, len(level))
	for i, t := range level {
		keys[i] = string(t.AppendKey(nil))
	}
	sort.Sort(&levelSorter{level: level, keys: keys})
}

type levelSorter struct {
	level []trace.Trace
	keys  []string
}

func (s *levelSorter) Len() int           { return len(s.level) }
func (s *levelSorter) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *levelSorter) Swap(i, j int) {
	s.level[i], s.level[j] = s.level[j], s.level[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}

// merge folds one node's edge/level counters into the aggregate. Node
// roles and per-level node counts are accounted by the sequential
// aggregation loop; workers only produce edge fates and per-level prunes.
func (s *SearchStats) merge(o SearchStats) {
	s.LimitChecks += o.LimitChecks
	s.EdgesChecked += o.EdgesChecked
	s.EdgesKept += o.EdgesKept
	s.SubtreesPruned += o.SubtreesPruned
	s.FrontierWitnesses += o.FrontierWitnesses
	s.Thm1AutoEdges += o.Thm1AutoEdges
	for _, l := range o.Levels {
		dst := s.level(l.Depth)
		dst.Pruned += l.Pruned
	}
}
