package solver

import (
	"context"
	"math"
	"runtime"
	"sync"
	"time"

	"smoothproc/internal/trace"
)

// maxChunk caps how many frontier nodes one claim takes from the shared
// pool. Small enough that a worker never hoards a level, large enough
// that wide levels amortize the pool lock.
const maxChunk = 64

// nodeOut is one node's classification, keyed by its canonical BFS
// index. Outputs are index-addressed, which is what makes the merged
// result independent of which worker processed the node and when.
type nodeOut struct {
	done     bool
	solution bool
	frontier bool
	dead     bool
	closed   bool
	// bound marks a depth-bound node visited in capture mode: its sons
	// were fully expanded for the resume frontier but must never enter
	// the canonical order (the commit loop skips them; the capture
	// collection reads them instead).
	bound bool
	sons  []trace.Trace
}

// span is a claimed range of canonical BFS indices [pos, hi). The owner
// takes nodes from the front; a thief takes the back half.
type span struct {
	pos, hi int
}

// wsState is the shared state of one work-stealing search. One mutex
// guards all of it: the search's unit of work (classify + expand one
// node, typically several f/g evaluations) is orders of magnitude
// heavier than a pool operation, so striping here would buy nothing.
//
// order is the canonical BFS order of the tree, identical to the visit
// order of sequential Enumerate: commit appends the sons of node i
// (already in channel/alphabet order from expand) before those of node
// i+1, regardless of which worker finished first. outs is parallel to
// order. committed is the length of the contiguous prefix of outs that
// is done — the only nodes whose sons exist in order, and exactly the
// nodes the final merge classifies.
type wsState struct {
	mu   sync.Mutex
	cond sync.Cond

	order     []trace.Trace
	outs      []nodeOut
	committed int
	next      int // first unclaimed index; next ≤ min(len(order), limit)
	doneCnt   int // nodes completed (in or out of order)
	limit     int // MaxNodes, or math.MaxInt when unbounded

	spans    []span
	steals   int64
	idles    int64
	stopped  bool // no more work will ever be claimable
	canceled bool

	// capture selects the checkpoint semantics for depth-bound nodes
	// (full expansion, sons retained, never committed into order).
	capture bool
	// emit, when non-nil, receives each solution as the commit pointer
	// passes it — canonical order by construction, independent of which
	// worker classified the node. Called with mu held (commits advance
	// monotonically under it), so it must not block; see
	// Problem.OnSolution.
	emit func(trace.Trace)
}

// claimable returns how far next may advance right now.
func (ws *wsState) claimable() int {
	if len(ws.order) < ws.limit {
		return len(ws.order)
	}
	return ws.limit
}

// takeOne hands the calling worker its next node, blocking while other
// workers may still commit sons. It returns ok=false when the search is
// over: every claimable node is done, or the context was cancelled.
// Cancellation is checked here — once per node, the same granularity as
// sequential Enumerate — so a cancelled search abandons whole spans but
// never a node mid-classification.
func (ws *wsState) takeOne(ctx context.Context, w int) (int, trace.Trace, bool) {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	for {
		if ws.stopped {
			return 0, trace.Trace{}, false
		}
		if ctx.Err() != nil {
			ws.canceled = true
			ws.stopped = true
			ws.cond.Broadcast()
			return 0, trace.Trace{}, false
		}
		if sp := &ws.spans[w]; sp.pos < sp.hi {
			i := sp.pos
			sp.pos++
			return i, ws.order[i], true
		}
		if avail := ws.claimable(); ws.next < avail {
			// Refill from the unclaimed pool: an even split of what's
			// there, capped so late-arriving sons still spread out.
			chunk := (avail - ws.next) / len(ws.spans)
			if chunk < 1 {
				chunk = 1
			}
			if chunk > maxChunk {
				chunk = maxChunk
			}
			ws.spans[w] = span{pos: ws.next, hi: ws.next + chunk}
			ws.next += chunk
			continue
		}
		// Pool dry: steal the back half of the largest remaining span.
		// (A remainder of 1 is left alone — migrating a single node just
		// moves the work without sharing it.)
		victim, best := -1, 1
		for v := range ws.spans {
			if rem := ws.spans[v].hi - ws.spans[v].pos; rem > best {
				victim, best = v, rem
			}
		}
		if victim >= 0 {
			vs := &ws.spans[victim]
			mid := vs.pos + (best+1)/2
			ws.spans[w] = span{pos: mid, hi: vs.hi}
			vs.hi = mid
			ws.steals++
			continue
		}
		if ws.doneCnt == ws.next {
			// Nothing claimable, nothing stealable, nothing in flight:
			// commit has caught up and order can never grow again.
			ws.stopped = true
			ws.cond.Broadcast()
			return 0, trace.Trace{}, false
		}
		// Other workers are mid-node; their sons may refill the pool.
		ws.idles++
		ws.cond.Wait()
	}
}

// complete records node i's output and advances the commit pointer,
// appending newly admitted sons — in canonical order — to the shared
// frontier. Every completion wakes parked workers: either the frontier
// grew, a span became stealable earlier, or the search just finished.
func (ws *wsState) complete(i int, o nodeOut) {
	o.done = true
	ws.mu.Lock()
	ws.outs[i] = o
	ws.doneCnt++
	for ws.committed < len(ws.outs) && ws.outs[ws.committed].done {
		out := ws.outs[ws.committed]
		if !out.bound {
			sons := out.sons
			ws.order = append(ws.order, sons...)
			ws.outs = append(ws.outs, make([]nodeOut, len(sons))...)
		}
		if out.solution && ws.emit != nil {
			ws.emit(ws.order[ws.committed])
		}
		ws.committed++
	}
	ws.cond.Broadcast()
	ws.mu.Unlock()
}

// EnumerateParallel is Enumerate with the tree explored by a
// work-stealing worker pool instead of one goroutine. There is no
// per-level barrier: workers claim chunks of the shared frontier, steal
// from each other when their chunk runs dry, and each finished node
// feeds its sons back the moment the commit pointer reaches it. Results
// are byte-identical to Enumerate at any worker count — Solutions,
// Frontier, DeadLeaves and Visited in the same order, and every
// deterministic SearchStats counter equal (see DESIGN.md on why
// determinism survives stealing; Steals and IdleWaits are the
// scheduling-dependent residue, reported separately). Workers ≤ 0 uses
// GOMAXPROCS. All workers share one sharded memoized evaluator, so f
// and g are applied at most once per distinct trace across the pool.
//
// The node budget matches sequential accounting exactly: claims stop at
// MaxNodes, so a truncated search classifies exactly MaxNodes nodes and
// then observes one more as Skipped — never a whole level more, and
// never silently dropping the cut nodes.
//
// Cancellation is checked once per claimed node, like Enumerate. A
// cancelled run keeps the contiguous committed prefix of the canonical
// order (everything in it is genuine) plus one Skipped node.
func EnumerateParallel(ctx context.Context, p Problem, workers int) Result {
	s := newSearch(p, false)
	var res Result
	res.Stats.Thm1FastPath = s.thm1
	parLoop(ctx, s, &res, []trace.Trace{root}, workers, nil)
	res.Stats.Eval = s.e.Snapshot()
	res.Stats.CompiledEval = s.e.Compiled()
	return res
}

// parLoop runs the work-stealing pool over a seed queue (canonical BFS
// order), folding classifications into res — which, as in seqLoop, may
// arrive pre-loaded with a resumed search's classified prefix. A non-nil
// cp selects capture semantics for depth-bound nodes and records the
// resume frontier and any truncation remainder, exactly mirroring the
// sequential capture path (see seqLoop).
func parLoop(ctx context.Context, s *search, res *Result, seed []trace.Trace, workers int, cp *Checkpoint) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := s.p
	st := &res.Stats
	st.Workers = workers
	start := time.Now()

	ws := &wsState{
		order:   seed,
		outs:    make([]nodeOut, len(seed)),
		limit:   math.MaxInt,
		spans:   make([]span, workers),
		capture: cp != nil,
		emit:    p.OnSolution,
	}
	ws.cond.L = &ws.mu
	if p.MaxNodes > 0 {
		// res.Nodes already counts the resumed prefix; the budget for this
		// leg is whatever the prefix left over (callers validate it is
		// positive). Claims stop at the limit index, matching sequential
		// accounting: exactly MaxNodes nodes classified in total.
		ws.limit = p.MaxNodes - res.Nodes
	}

	// Per-worker stats shards: classify/expand write edge counters into
	// their worker's shard with no sharing; the totals are sums over the
	// deterministic node set, so the merged counters are deterministic
	// even though the partition into shards is not.
	shards := make([]SearchStats, workers)
	work := func(w int) {
		shard := &shards[w]
		for {
			i, cur, ok := ws.takeOne(ctx, w)
			if !ok {
				return
			}
			ws.complete(i, s.visit(cur, shard, ws.capture))
		}
	}
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			work(w)
		}(w)
	}
	work(0) // the caller is worker 0; workers == 1 spawns nothing
	wg.Wait()

	// Merge. Only the contiguous committed prefix is classified — those
	// are exactly the nodes whose sons made it into the canonical order,
	// i.e. the nodes sequential Enumerate would have classified.
	for i := 0; i < ws.committed; i++ {
		cur := ws.order[i]
		o := ws.outs[i]
		res.Nodes++
		if p.CollectVisited {
			res.Visited = append(res.Visited, cur)
		}
		st.Visited++
		lvl := st.level(cur.Len())
		lvl.Nodes++
		if o.solution {
			res.Solutions = append(res.Solutions, cur)
			st.Solutions++
			lvl.Solutions++
		}
		switch {
		case o.frontier:
			res.Frontier = append(res.Frontier, cur)
			st.Frontier++
		case o.dead:
			res.DeadLeaves = append(res.DeadLeaves, cur)
			st.Dead++
		case o.closed:
			st.Closed++
		default:
			st.Interior++
		}
	}
	for w := range shards {
		st.merge(shards[w])
	}
	st.Steals += ws.steals
	st.IdleWaits += ws.idles

	// Capture collection, in committed (canonical) order: bound nodes
	// with sons form the resume frontier; an uncommitted remainder of the
	// order is the pending queue a truncated capture resumes from.
	if cp != nil {
		for i := 0; i < ws.committed; i++ {
			if o := &ws.outs[i]; o.bound && o.frontier {
				cp.frontier = append(cp.frontier, frontierEntry{node: ws.order[i], sons: o.sons})
				st.RetainedSons += len(o.sons)
			}
		}
		if ws.committed < len(ws.order) {
			cp.pending = append([]trace.Trace(nil), ws.order[ws.committed:]...)
		}
	}

	// Truncation accounting, identical to sequential: the first node
	// past the stopping point is visited but skipped — counted in Nodes
	// and Visited, never classified, no level entry.
	if ws.committed < len(ws.order) {
		res.Truncated = true
		res.Canceled = ws.canceled
		cur := ws.order[ws.committed]
		res.Nodes++
		if p.CollectVisited {
			res.Visited = append(res.Visited, cur)
		}
		st.Visited++
		st.Skipped++
	}

	st.Elapsed += time.Since(start)
}

// visit classifies one node: limit condition, role, and — below the
// depth bound — its admitted sons. Pure with respect to the shared
// search state; all counters go to the caller's shard. capture selects
// the checkpoint semantics at the depth bound (full expansion retained
// for the resume frontier; see seqLoop).
func (s *search) visit(cur trace.Trace, shard *SearchStats, capture bool) nodeOut {
	var o nodeOut
	o.solution = s.classify(cur, shard)
	if cur.Len() >= s.p.MaxDepth {
		if capture {
			o.bound = true
			o.sons = s.expand(cur, shard, nil)
			if len(o.sons) > 0 {
				o.frontier = true
			} else if !o.solution {
				o.dead = true
			} else {
				o.closed = true
			}
			return o
		}
		if s.hasSon(cur, shard) {
			o.frontier = true
		} else if !o.solution {
			o.dead = true
		} else {
			o.closed = true
		}
		return o
	}
	o.sons = s.expand(cur, shard, nil)
	if len(o.sons) == 0 {
		if o.solution {
			o.closed = true
		} else {
			o.dead = true
		}
	}
	return o
}

// merge folds one worker shard's edge/level counters into the
// aggregate. Node roles and per-level node counts are accounted by the
// canonical merge loop; shards only carry edge fates and per-level
// prunes.
func (s *SearchStats) merge(o SearchStats) {
	s.LimitChecks += o.LimitChecks
	s.EdgesChecked += o.EdgesChecked
	s.EdgesKept += o.EdgesKept
	s.SubtreesPruned += o.SubtreesPruned
	s.FrontierWitnesses += o.FrontierWitnesses
	s.Thm1AutoEdges += o.Thm1AutoEdges
	for _, l := range o.Levels {
		dst := s.level(l.Depth)
		dst.Pruned += l.Pruned
	}
}
