package solver

import (
	"fmt"
	"time"

	"smoothproc/internal/desc"
	"smoothproc/internal/report"
)

// SearchStats instruments one Section 3.3 tree search. Each visited node
// is classified into exactly one role:
//
//   - Interior: below the depth bound with at least one smooth son —
//     the node was expanded.
//   - Frontier: at the depth bound with at least one smooth son — a
//     path toward ω solutions (Result.Frontier).
//   - Dead: no smooth son and the limit condition fails — a stuck
//     history (Result.DeadLeaves).
//   - Closed: no smooth son and the limit condition holds — a sonless
//     smooth solution, the search's true leaves.
//   - Skipped: visited when the node budget ran out, left unclassified.
//
// Solutions counts limit-condition holders and cuts across roles: a
// solution may be Closed (no sons) or Interior/Frontier (the process can
// quiesce here or go on — nondeterminism the paper's Section 3.1.1
// examples rely on).
//
// Edge accounting: EdgesChecked counts candidate one-step extensions
// examined; each is kept (EdgesKept — the son is enqueued), pruned
// (SubtreesPruned — the f(v) ⊑ g(u) filter cut the entire subtree below
// the candidate before it was ever expanded), or a frontier witness
// (FrontierWitnesses — a smooth son of a depth-bound node, proving
// frontier membership without being enqueued).
type SearchStats struct {
	Visited  int `json:"visited"`
	Interior int `json:"interior"`
	Frontier int `json:"frontier"`
	Dead     int `json:"dead"`
	Closed   int `json:"closed"`
	Skipped  int `json:"skipped"`

	Solutions   int `json:"solutions"`
	LimitChecks int `json:"limit_checks"`

	EdgesChecked      int `json:"edges_checked"`
	EdgesKept         int `json:"edges_kept"`
	SubtreesPruned    int `json:"subtrees_pruned"`
	FrontierWitnesses int `json:"frontier_witnesses"`

	// RetainedSons counts kept edges whose son is held in a checkpoint's
	// resume frontier instead of being visited: a capture-mode search
	// expands depth-bound nodes in full and retains the sons for a later
	// resume. Always zero for plain solves and for Final resume legs (the
	// frontier has been consumed), so cold-vs-resumed fingerprints still
	// compare byte for byte.
	RetainedSons int `json:"retained_sons,omitempty"`

	// Thm1FastPath records that the search ran with the Theorem 1 fast
	// path active: the description's supports are independent and the
	// induction base f(⊥) ⊑ g(⊥) held (see Problem.Thm1).
	Thm1FastPath bool `json:"thm1_fast_path,omitempty"`
	// Thm1AutoEdges counts candidates the fast path admitted without any
	// evaluation; each is also counted in EdgesChecked and in EdgesKept
	// (or FrontierWitnesses at the depth bound), so the edge-fate books
	// balance with or without the shortcut.
	Thm1AutoEdges int `json:"thm1_auto_edges,omitempty"`

	// CompiledEval records that both description sides ran on descvm
	// bytecode (Problem.Compiled requested and both sides lowered). Run
	// configuration, like Workers, not a search observable: every other
	// deterministic counter is equal with the flag on or off, which is
	// what the compiled-vs-interpreted differential suite asserts.
	CompiledEval bool `json:"compiled_eval,omitempty"`

	// Workers is the pool size of a parallel search (zero for
	// sequential). Steals counts work-stealing events — one worker taking
	// the back half of another's claimed span — and IdleWaits counts
	// parks of a worker that found the frontier momentarily dry. Both are
	// scheduling-dependent (reported with the "sched" unit, dropped from
	// deterministic views); every other counter in this struct is equal
	// across worker counts, including sequential.
	Workers   int   `json:"workers,omitempty"`
	Steals    int64 `json:"steals,omitempty"`
	IdleWaits int64 `json:"idle_waits,omitempty"`

	// Levels holds per-depth stats, indexed by trace length.
	Levels []LevelStats `json:"levels,omitempty"`

	// Eval is the description evaluator's account: f/g applications,
	// memo hits, and where evaluation time went.
	Eval desc.EvalSnapshot `json:"eval"`

	// Elapsed is the wall-clock duration of the search.
	Elapsed time.Duration `json:"elapsed_ns"`
}

// LevelStats is the per-depth view of the search: how wide the tree was
// at each level and how much of it the smoothness filter cut.
type LevelStats struct {
	Depth     int `json:"depth"`
	Nodes     int `json:"nodes"`
	Solutions int `json:"solutions"`
	// Pruned counts subtrees cut at this depth: candidates of length
	// Depth rejected by the edge filter.
	Pruned int `json:"pruned"`
}

// level returns the stats slot for the given depth, growing as needed.
func (s *SearchStats) level(depth int) *LevelStats {
	for len(s.Levels) <= depth {
		s.Levels = append(s.Levels, LevelStats{Depth: len(s.Levels)})
	}
	return &s.Levels[depth]
}

// CheckInvariants verifies the books balance. Beyond arithmetic, these
// encode the search's contract: every visited node has exactly one role,
// every examined edge has exactly one fate, and (absent truncation)
// every kept edge leads to exactly one visited node — the tree property.
func (s SearchStats) CheckInvariants(truncated bool) error {
	if got := s.Interior + s.Frontier + s.Dead + s.Closed + s.Skipped; got != s.Visited {
		return fmt.Errorf("solver: stats: roles %d ≠ visited %d (interior %d + frontier %d + dead %d + closed %d + skipped %d)",
			got, s.Visited, s.Interior, s.Frontier, s.Dead, s.Closed, s.Skipped)
	}
	if got := s.EdgesKept + s.SubtreesPruned + s.FrontierWitnesses; got != s.EdgesChecked {
		return fmt.Errorf("solver: stats: edge fates %d ≠ edges checked %d", got, s.EdgesChecked)
	}
	if !truncated {
		if s.Skipped != 0 {
			return fmt.Errorf("solver: stats: %d skipped nodes without truncation", s.Skipped)
		}
		if s.Visited != s.EdgesKept-s.RetainedSons+1 {
			return fmt.Errorf("solver: stats: visited %d ≠ kept edges %d − retained sons %d + root",
				s.Visited, s.EdgesKept, s.RetainedSons)
		}
	}
	var lvlNodes, lvlSols, lvlPruned int
	for _, l := range s.Levels {
		lvlNodes += l.Nodes
		lvlSols += l.Solutions
		lvlPruned += l.Pruned
	}
	if lvlNodes != s.Visited-s.Skipped {
		return fmt.Errorf("solver: stats: level nodes %d ≠ classified nodes %d", lvlNodes, s.Visited-s.Skipped)
	}
	if lvlSols != s.Solutions {
		return fmt.Errorf("solver: stats: level solutions %d ≠ solutions %d", lvlSols, s.Solutions)
	}
	if lvlPruned != s.SubtreesPruned {
		return fmt.Errorf("solver: stats: level pruned %d ≠ pruned %d", lvlPruned, s.SubtreesPruned)
	}
	return nil
}

// Report renders the stats in the repository's stable stats format (see
// package report). Deterministic counters come first; the timing section
// is wall-clock and varies run to run.
func (s SearchStats) Report() report.Stats {
	search := report.Section{Name: "search"}
	search.AddInt("nodes visited", s.Visited)
	search.AddInt("interior nodes", s.Interior)
	search.AddInt("frontier nodes", s.Frontier)
	search.AddInt("dead leaves", s.Dead)
	search.AddInt("closed solutions", s.Closed)
	search.AddInt("skipped (budget)", s.Skipped)
	search.AddInt("smooth solutions", s.Solutions)
	search.AddInt("limit checks", s.LimitChecks)

	pruning := report.Section{Name: "pruning"}
	pruning.AddInt("edges checked", s.EdgesChecked)
	pruning.AddInt("edges kept", s.EdgesKept)
	pruning.AddInt("subtrees pruned", s.SubtreesPruned)
	pruning.AddInt("frontier witnesses", s.FrontierWitnesses)
	pruning.AddInt("thm1 auto edges", s.Thm1AutoEdges)
	if s.RetainedSons > 0 {
		// Only capture-mode (resumable) searches retain sons, so plain
		// solve goldens are unchanged.
		pruning.AddInt("retained sons", s.RetainedSons)
	}

	memo := report.Section{Name: "memo"}
	memo.Add("cache hits", s.Eval.CacheHits(), "")
	memo.Add("cache misses", s.Eval.CacheMisses(), "")
	memo.Add("f applications", s.Eval.FApplies, "")
	memo.Add("g applications", s.Eval.GApplies, "")
	memo.Add("inflight waits", s.Eval.InflightWaits, "sched")
	if s.CompiledEval {
		// Only rendered when on, so interpreted-run goldens are unchanged.
		memo.AddInt("compiled eval", 1)
	}

	parallel := report.Section{Name: "parallel"}
	parallel.AddInt("workers", s.Workers)
	parallel.Add("steals", s.Steals, "sched")
	parallel.Add("idle waits", s.IdleWaits, "sched")

	levels := report.Section{Name: "levels"}
	for _, l := range s.Levels {
		levels.AddInt(fmt.Sprintf("level %d nodes", l.Depth), l.Nodes)
		levels.AddInt(fmt.Sprintf("level %d solutions", l.Depth), l.Solutions)
		levels.AddInt(fmt.Sprintf("level %d pruned", l.Depth), l.Pruned)
	}

	timing := report.Section{Name: "timing"}
	timing.Add("search elapsed", int64(s.Elapsed), "ns")
	timing.Add("f evaluation", s.Eval.FNanos, "ns")
	timing.Add("g evaluation", s.Eval.GNanos, "ns")

	sections := []report.Section{search, pruning, memo}
	if s.Workers > 0 {
		sections = append(sections, parallel)
	}
	sections = append(sections, levels, timing)
	return report.Stats{Sections: sections}
}

// Deterministic returns a copy with every scheduling-, timing- and
// configuration-dependent field zeroed: Workers and CompiledEval (run
// configuration), Steals, IdleWaits, Elapsed, and the evaluator's
// wall-clock and in-flight-wait readings. Two searches of the same
// problem — sequential or parallel, at any worker count, compiled or
// interpreted — produce equal Deterministic views; the parity suite,
// the differential suite and the CI smoke assertion compare exactly
// this.
func (s SearchStats) Deterministic() SearchStats {
	s.Workers = 0
	s.CompiledEval = false
	s.Steals = 0
	s.IdleWaits = 0
	s.Elapsed = 0
	s.Eval.InflightWaits = 0
	s.Eval.FNanos = 0
	s.Eval.GNanos = 0
	return s
}
