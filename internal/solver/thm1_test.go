package solver

import (
	"context"
	"testing"

	"smoothproc/internal/desc"
	"smoothproc/internal/fn"
	"smoothproc/internal/seq"
	"smoothproc/internal/value"
)

// bufferProblem is Kahn's unbounded buffer e ⟵ a: supp(f) = {e} and
// supp(g) = {a} are disjoint, so Theorem 1's hypothesis holds and every
// input event (channel a) is auto-admitted by the fast path.
func bufferProblem(depth int) Problem {
	d := desc.MustNew("buffer", fn.ChanFn("e"), fn.ChanFn("a"))
	return NewProblem(d, map[string][]value.Value{
		"a": value.Ints(0, 1),
		"e": value.Ints(0, 1),
	}, depth)
}

func TestNewProblemSetsThm1(t *testing.T) {
	if p := bufferProblem(3); !p.Thm1 {
		t.Error("independent description did not enable Thm1")
	}
	if p := dfmProblem(3); p.Thm1 {
		t.Error("dependent description enabled Thm1")
	}
}

// TestThm1FastPathEquivalence pins the fast path's soundness argument
// operationally: the admitted tree — and with it every result field —
// is identical with the shortcut on and off; only the work differs.
func TestThm1FastPathEquivalence(t *testing.T) {
	ctx := context.Background()
	fast := bufferProblem(4)
	slow := fast
	slow.Thm1 = false

	rf := Enumerate(ctx, fast)
	rs := Enumerate(ctx, slow)

	if !rf.Stats.Thm1FastPath {
		t.Fatal("fast run did not take the Theorem 1 path")
	}
	if rs.Stats.Thm1FastPath || rs.Stats.Thm1AutoEdges != 0 {
		t.Fatalf("slow run took the fast path: %+v", rs.Stats)
	}
	if rf.Stats.Thm1AutoEdges == 0 {
		t.Fatal("fast run admitted no edges via Theorem 1")
	}
	if err := rf.Stats.CheckInvariants(rf.Truncated); err != nil {
		t.Fatalf("fast-path stats unbalanced: %v", err)
	}

	// Identical trees: same nodes in the same BFS order, same classes.
	for name, pair := range map[string][2]int{
		"solutions": {len(rf.Solutions), len(rs.Solutions)},
		"frontier":  {len(rf.Frontier), len(rs.Frontier)},
		"dead":      {len(rf.DeadLeaves), len(rs.DeadLeaves)},
		"nodes":     {rf.Nodes, rs.Nodes},
		"edges":     {rf.Stats.EdgesChecked, rs.Stats.EdgesChecked},
		"kept":      {rf.Stats.EdgesKept, rs.Stats.EdgesKept},
		"pruned":    {rf.Stats.SubtreesPruned, rs.Stats.SubtreesPruned},
	} {
		if pair[0] != pair[1] {
			t.Errorf("%s differ: fast %d, slow %d", name, pair[0], pair[1])
		}
	}
	for i := range rf.Visited {
		if !rf.Visited[i].Equal(rs.Visited[i]) {
			t.Fatalf("visit order diverges at %d: %s vs %s", i, rf.Visited[i], rs.Visited[i])
		}
	}

	// The point of the shortcut: strictly fewer side applications.
	if rf.Stats.Eval.CacheMisses() >= rs.Stats.Eval.CacheMisses() {
		t.Errorf("fast path did not save evaluations: fast %d misses, slow %d",
			rf.Stats.Eval.CacheMisses(), rs.Stats.Eval.CacheMisses())
	}
}

// TestThm1ParallelMatches checks the work-stealing parallel search reports the
// same fast-path accounting as the sequential one.
func TestThm1ParallelMatches(t *testing.T) {
	ctx := context.Background()
	p := bufferProblem(4)
	seq := Enumerate(ctx, p)
	par := EnumerateParallel(ctx, p, 4)
	if !par.Stats.Thm1FastPath {
		t.Error("parallel run did not take the Theorem 1 path")
	}
	if par.Stats.Thm1AutoEdges != seq.Stats.Thm1AutoEdges {
		t.Errorf("auto edges: parallel %d, sequential %d", par.Stats.Thm1AutoEdges, seq.Stats.Thm1AutoEdges)
	}
	if len(par.Solutions) != len(seq.Solutions) {
		t.Errorf("solutions: parallel %d, sequential %d", len(par.Solutions), len(seq.Solutions))
	}
}

// TestThm1OmegaIneligible: an ω-approximation left side declares an
// empty support but grows with raw trace length, so f(u·e) = f(u) fails
// and auto-admit would be unsound — NewProblem must not enable the fast
// path, and a caller forcing it is overruled by the search.
func TestThm1OmegaIneligible(t *testing.T) {
	d := desc.MustNew("omega-lhs",
		fn.OmegaConstFn("trues", seq.Of(value.T)),
		fn.ChanFn("b"))
	if !d.Independent() {
		t.Fatal("setup: sides should be independent")
	}
	if d.Thm1Eligible() {
		t.Fatal("ω left side reported Thm1-eligible")
	}
	p := NewProblem(d, map[string][]value.Value{"b": {value.T}}, 3)
	if p.Thm1 {
		t.Error("NewProblem enabled Thm1 for an ω left side")
	}
	p.Thm1 = true // hostile caller
	res := Enumerate(context.Background(), p)
	if res.Stats.Thm1FastPath || res.Stats.Thm1AutoEdges != 0 {
		t.Errorf("search took the fast path on an ω left side: %+v", res.Stats)
	}
}

// TestThm1BaseFailure: an independent description whose induction base
// f(⊥) ⊑ g(⊥) fails must fall back to the full edge check (and the root
// then has no sons at all, so nothing is lost).
func TestThm1BaseFailure(t *testing.T) {
	d := desc.MustNew("owe", fn.ConstTraceFn(seq.OfInts(0)), fn.ChanFn("b"))
	p := NewProblem(d, map[string][]value.Value{"b": value.Ints(0)}, 3)
	if !p.Thm1 {
		t.Fatal("independent description did not request Thm1")
	}
	res := Enumerate(context.Background(), p)
	if res.Stats.Thm1FastPath {
		t.Error("fast path active despite failed induction base")
	}
	if res.Nodes != 1 || len(res.DeadLeaves) != 1 {
		t.Errorf("root should be a lone dead leaf, got %d nodes, %d dead", res.Nodes, len(res.DeadLeaves))
	}
}

// The ablation benchmark: the Theorem 1 shortcut versus the full edge
// check on the same independent system (delta recorded in DESIGN.md).
func benchmarkBuffer(b *testing.B, thm1 bool) {
	p := bufferProblem(5)
	p.Thm1 = thm1
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := Enumerate(ctx, p)
		if len(res.Solutions) == 0 {
			b.Fatal("no solutions")
		}
	}
}

func BenchmarkThm1FastPath(b *testing.B) { benchmarkBuffer(b, true) }
func BenchmarkThm1Off(b *testing.B)      { benchmarkBuffer(b, false) }
