package solver

import (
	"context"
	"fmt"
	"testing"

	"smoothproc/internal/desc"
	"smoothproc/internal/fn"
	"smoothproc/internal/seq"
	"smoothproc/internal/value"
)

// statsProblems is the invariant-test corpus: a branching merge network,
// a single-path frontier, and a dead-leaf case.
func statsProblems() map[string]Problem {
	return map[string]Problem{
		"dfm-4": dfmProblem(4),
		"dfm-6": dfmProblem(6),
		"ticks": NewProblem(
			desc.MustNew("ticks", fn.ChanFn("b"), fn.OnChan(fn.PrependFn(value.T), "b")),
			map[string][]value.Value{"b": {value.T, value.F}}, 5),
		"dead": NewProblem(
			desc.MustNew("lead", fn.ChanFn("b"), fn.ConstTraceFn(seq.OfInts(0, 2))),
			map[string][]value.Value{"b": value.Ints(0)}, 4),
	}
}

// TestSearchStatsInvariants: on every corpus problem, sequential and
// parallel searches produce stats whose books balance and that agree
// with the classified result slices.
func TestSearchStatsInvariants(t *testing.T) {
	for name, p := range statsProblems() {
		p := p
		t.Run(name, func(t *testing.T) {
			for mode, res := range map[string]Result{
				"enumerate": Enumerate(context.Background(), p),
				"parallel":  EnumerateParallel(context.Background(), p, 4),
			} {
				st := res.Stats
				if err := st.CheckInvariants(res.Truncated); err != nil {
					t.Errorf("%s: %v", mode, err)
				}
				if st.Visited != res.Nodes {
					t.Errorf("%s: stats visited %d ≠ nodes %d", mode, st.Visited, res.Nodes)
				}
				if st.Solutions != len(res.Solutions) {
					t.Errorf("%s: stats solutions %d ≠ %d", mode, st.Solutions, len(res.Solutions))
				}
				if st.Frontier != len(res.Frontier) {
					t.Errorf("%s: stats frontier %d ≠ %d", mode, st.Frontier, len(res.Frontier))
				}
				if st.Dead != len(res.DeadLeaves) {
					t.Errorf("%s: stats dead %d ≠ %d", mode, st.Dead, len(res.DeadLeaves))
				}
			}
		})
	}
}

// TestStatsSequentialMatchesParallel: the deterministic counters agree
// between the two search implementations.
func TestStatsSequentialMatchesParallel(t *testing.T) {
	p := dfmProblem(5)
	a, b := Enumerate(context.Background(), p).Stats, EnumerateParallel(context.Background(), p, 4).Stats
	type det struct {
		visited, interior, frontier, dead, closed   int
		solutions, checked, kept, pruned, witnesses int
	}
	da := det{a.Visited, a.Interior, a.Frontier, a.Dead, a.Closed,
		a.Solutions, a.EdgesChecked, a.EdgesKept, a.SubtreesPruned, a.FrontierWitnesses}
	db := det{b.Visited, b.Interior, b.Frontier, b.Dead, b.Closed,
		b.Solutions, b.EdgesChecked, b.EdgesKept, b.SubtreesPruned, b.FrontierWitnesses}
	if da != db {
		t.Errorf("stats diverge:\nseq: %+v\npar: %+v", da, db)
	}
}

// TestStatsPrunedNonzero: the merge problem prunes real subtrees and the
// counter sees them — the measurable face of the Section 3.3 edge filter.
func TestStatsPrunedNonzero(t *testing.T) {
	res := Enumerate(context.Background(), dfmProblem(4))
	if res.Stats.SubtreesPruned == 0 {
		t.Error("no pruned subtrees on a branching problem")
	}
	if res.Stats.Eval.CacheHits() == 0 {
		t.Error("no cache hits despite shared prefixes")
	}
	var lvlPruned int
	for _, l := range res.Stats.Levels {
		lvlPruned += l.Pruned
	}
	if lvlPruned != res.Stats.SubtreesPruned {
		t.Errorf("level pruned %d ≠ total %d", lvlPruned, res.Stats.SubtreesPruned)
	}
}

// TestMemoizationTransparent: the memo ablation — identical results with
// the cache on and off, and the expected stats signature (hits only with
// the cache, more applications without).
func TestMemoizationTransparent(t *testing.T) {
	on := dfmProblem(5)
	off := dfmProblem(5)
	off.Memoize = false
	ron, roff := Enumerate(context.Background(), on), Enumerate(context.Background(), off)
	if ron.Nodes != roff.Nodes {
		t.Errorf("nodes: memo %d vs direct %d", ron.Nodes, roff.Nodes)
	}
	for i := range ron.Visited {
		if !ron.Visited[i].Equal(roff.Visited[i]) {
			t.Fatalf("visited order diverges at %d", i)
		}
	}
	a, b := ron.SolutionKeys(), roff.SolutionKeys()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Errorf("solutions diverge: %v vs %v", a, b)
	}
	if ron.Stats.Eval.CacheHits() == 0 {
		t.Error("memoized run recorded no hits")
	}
	if roff.Stats.Eval.CacheHits() != 0 {
		t.Error("unmemoized run recorded hits")
	}
	if roff.Stats.Eval.CacheMisses() <= ron.Stats.Eval.CacheMisses() {
		t.Errorf("memoization saved no applications: %d vs %d",
			ron.Stats.Eval.CacheMisses(), roff.Stats.Eval.CacheMisses())
	}
}

// TestParallelBudgetExact: truncation follows sequential Enumerate's
// accounting exactly — MaxNodes nodes classified, then one more node
// visited as Skipped (budget+1 observed, like TestMaxNodesTruncates).
// The old barrier implementation cut the level to exactly MaxNodes and
// silently dropped the cut nodes, diverging from Enumerate.
func TestParallelBudgetExact(t *testing.T) {
	for _, budget := range []int{1, 2, 5, 9} {
		p := dfmProblem(6)
		p.MaxNodes = budget
		res := EnumerateParallel(context.Background(), p, 4)
		if !res.Truncated {
			t.Errorf("budget %d: not truncated", budget)
		}
		if res.Nodes != budget+1 {
			t.Errorf("budget %d: visited %d nodes, want %d", budget, res.Nodes, budget+1)
		}
		if len(res.Visited) != budget+1 {
			t.Errorf("budget %d: |Visited| = %d, want %d", budget, len(res.Visited), budget+1)
		}
		if res.Stats.Skipped != 1 {
			t.Errorf("budget %d: skipped %d, want 1", budget, res.Stats.Skipped)
		}
		if err := res.Stats.CheckInvariants(true); err != nil {
			t.Errorf("budget %d: %v", budget, err)
		}
	}
}

// TestParallelBudgetPrefix: the nodes a truncated parallel search visits
// are a prefix of the untruncated search's canonical BFS order — the
// classified ones and the final skipped one alike.
func TestParallelBudgetPrefix(t *testing.T) {
	p := dfmProblem(4)
	full := EnumerateParallel(context.Background(), p, 4)
	p.MaxNodes = 6
	cut := EnumerateParallel(context.Background(), p, 4)
	if cut.Nodes != 7 {
		t.Fatalf("visited %d, want 7 (6 classified + 1 skipped)", cut.Nodes)
	}
	for i, v := range cut.Visited {
		if !v.Equal(full.Visited[i]) {
			t.Errorf("visited[%d] = %s, want %s", i, v, full.Visited[i])
		}
	}
}

// TestParallelBudgetMatchesSequential is the satellite parity test: with
// MaxNodes landing exactly mid-level and one off on each side, the
// parallel search's truncation accounting — Nodes, Truncated, Skipped,
// role counts and the Visited prefix — is byte-identical to Enumerate's.
func TestParallelBudgetMatchesSequential(t *testing.T) {
	// dfm-6's levels are 1, 2, 3, 5, ... nodes wide; budget 8 stops
	// mid-level-4, and 7/9 sit one node to each side of that cut.
	for _, budget := range []int{7, 8, 9} {
		p := dfmProblem(6)
		p.MaxNodes = budget
		seq := Enumerate(context.Background(), p)
		for _, workers := range []int{1, 3, 4} {
			par := EnumerateParallel(context.Background(), p, workers)
			if par.Nodes != seq.Nodes || par.Truncated != seq.Truncated {
				t.Errorf("budget %d w%d: nodes/truncated %d/%v, sequential %d/%v",
					budget, workers, par.Nodes, par.Truncated, seq.Nodes, seq.Truncated)
			}
			if len(par.Visited) != len(seq.Visited) {
				t.Fatalf("budget %d w%d: |Visited| %d vs %d", budget, workers, len(par.Visited), len(seq.Visited))
			}
			for i := range seq.Visited {
				if !par.Visited[i].Equal(seq.Visited[i]) {
					t.Errorf("budget %d w%d: visited[%d] = %s, want %s",
						budget, workers, i, par.Visited[i], seq.Visited[i])
				}
			}
			ds, dp := seq.Stats.Deterministic(), par.Stats.Deterministic()
			if dp.Visited != ds.Visited || dp.Skipped != ds.Skipped ||
				dp.Frontier != ds.Frontier || dp.Interior != ds.Interior ||
				dp.Dead != ds.Dead || dp.Closed != ds.Closed {
				t.Errorf("budget %d w%d: roles diverge:\nseq %+v\npar %+v", budget, workers, ds, dp)
			}
		}
	}
}

// TestSampleStats: the walk sampler shares prefixes across walks, so the
// memo hit rate is high and edge counters are live.
func TestSampleStats(t *testing.T) {
	res := Sample(context.Background(), dfmProblem(4), SampleOpts{Seed: 7, Walks: 16})
	if res.Stats.EdgesChecked == 0 {
		t.Error("no edges checked")
	}
	if res.Stats.Eval.CacheHits() == 0 {
		t.Error("no cache hits across walks")
	}
	if res.Stats.LimitChecks == 0 {
		t.Error("no limit checks")
	}
}

// TestStatsReportRendering: the report view exposes the acceptance
// counters under their documented names.
func TestStatsReportRendering(t *testing.T) {
	res := Enumerate(context.Background(), dfmProblem(4))
	rep := res.Stats.Report()
	pruned, ok := rep.Get("pruning", "subtrees pruned")
	if !ok || pruned != int64(res.Stats.SubtreesPruned) {
		t.Errorf("subtrees pruned: %d ok=%v", pruned, ok)
	}
	hits, ok := rep.Get("memo", "cache hits")
	if !ok || hits != res.Stats.Eval.CacheHits() {
		t.Errorf("cache hits: %d ok=%v", hits, ok)
	}
	det := rep.Deterministic()
	for _, sec := range det.Sections {
		if sec.Name == "timing" {
			t.Error("timing survived Deterministic()")
		}
	}
}

func BenchmarkMemoization(b *testing.B) {
	for _, depth := range []int{6, 8} {
		on := dfmProblem(depth)
		off := dfmProblem(depth)
		off.Memoize = false
		b.Run(fmt.Sprintf("memo-depth-%d", depth), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Enumerate(context.Background(), on)
			}
		})
		b.Run(fmt.Sprintf("direct-depth-%d", depth), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Enumerate(context.Background(), off)
			}
		})
	}
}
