package solver

import (
	"context"
	"errors"
	"testing"

	"smoothproc/internal/desc"
	"smoothproc/internal/fn"
	"smoothproc/internal/seq"
	"smoothproc/internal/trace"
	"smoothproc/internal/value"
)

func ev(ch string, n int64) trace.Event { return trace.E(ch, value.Int(n)) }

// dfmProblem builds the Figure 2 network (dfm with constant feeds b=⟨0⟩,
// c=⟨1⟩) as a solver problem.
func dfmProblem(depth int) Problem {
	d := desc.Combine("dfm-net",
		desc.MustNew("even", fn.OnChan(fn.Even, "d"), fn.ChanFn("b")),
		desc.MustNew("odd", fn.OnChan(fn.Odd, "d"), fn.ChanFn("c")),
		desc.MustNew("feedB", fn.ChanFn("b"), fn.ConstTraceFn(seq.OfInts(0))),
		desc.MustNew("feedC", fn.ChanFn("c"), fn.ConstTraceFn(seq.OfInts(1))),
	)
	return NewProblem(d, map[string][]value.Value{
		"b": value.Ints(0),
		"c": value.Ints(1),
		"d": value.Ints(0, 1),
	}, depth)
}

func TestEnumerateDFM(t *testing.T) {
	res := Enumerate(context.Background(), dfmProblem(4))
	// The complete merges: b, c and both d orders, in all interleavings
	// consistent with causality. Exactly the traces with b=⟨0⟩, c=⟨1⟩,
	// d a permutation of {0,1}, with each d-event after its input.
	if len(res.Solutions) == 0 {
		t.Fatal("no solutions found")
	}
	for _, s := range res.Solutions {
		if !s.Channel("b").Equal(seq.OfInts(0)) || !s.Channel("c").Equal(seq.OfInts(1)) {
			t.Errorf("solution %s has wrong inputs", s)
		}
		dHist := s.Channel("d")
		if dHist.Len() != 2 || !dHist.Contains(value.Int(0)) || !dHist.Contains(value.Int(1)) {
			t.Errorf("solution %s does not merge completely", s)
		}
	}
	// Both merge orders are present.
	orders := map[string]bool{}
	for _, s := range res.Solutions {
		orders[s.Channel("d").String()] = true
	}
	if len(orders) != 2 {
		t.Errorf("merge orders found: %v, want both", orders)
	}
	// A specific known solution.
	want := trace.Of(ev("b", 0), ev("d", 0), ev("c", 1), ev("d", 1))
	if !res.Contains(want) {
		t.Errorf("expected solution %s missing; got %v", want, res.SolutionKeys())
	}
	// ⊥ is not a solution here (feeders owe output).
	if res.Contains(trace.Empty) {
		t.Error("⊥ accepted despite owed feeder output")
	}
}

func TestEnumerateRandomBit(t *testing.T) {
	// Section 4.3: R(b) ⟵ T̄. Smooth solutions: exactly (b,T) and (b,F).
	d := desc.MustNew("rb", fn.OnChan(fn.RMap, "b"), fn.ConstTraceFn(seq.Of(value.T)))
	p := NewProblem(d, map[string][]value.Value{"b": {value.T, value.F}}, 3)
	res := Enumerate(context.Background(), p)
	if len(res.Solutions) != 2 {
		t.Fatalf("random bit has %d solutions, want 2: %v", len(res.Solutions), res.SolutionKeys())
	}
	for _, s := range res.Solutions {
		if s.Len() != 1 {
			t.Errorf("solution %s should be a single output", s)
		}
	}
	// All length-2+ nodes were pruned: the tree is tiny.
	if res.Nodes != 3 {
		t.Errorf("visited %d nodes, want 3 (⊥, (b,T), (b,F))", res.Nodes)
	}
}

func TestEnumerateTicksFrontier(t *testing.T) {
	// Section 4.2: b ⟵ T; b — no finite solutions; a single growing path.
	d := desc.MustNew("ticks", fn.ChanFn("b"), fn.OnChan(fn.PrependFn(value.T), "b"))
	p := NewProblem(d, map[string][]value.Value{"b": {value.T, value.F}}, 5)
	res := Enumerate(context.Background(), p)
	if len(res.Solutions) != 0 {
		t.Errorf("ticks has finite solutions: %v", res.SolutionKeys())
	}
	if len(res.Frontier) != 1 {
		t.Fatalf("frontier size %d, want 1", len(res.Frontier))
	}
	wantFrontier := trace.CycleGen("t", trace.Of(trace.E("b", value.T))).Prefix(5)
	if !res.Frontier[0].Equal(wantFrontier) {
		t.Errorf("frontier %s, want %s", res.Frontier[0], wantFrontier)
	}
	if res.Nodes != 6 {
		t.Errorf("visited %d nodes, want 6 (the single path)", res.Nodes)
	}
}

func TestDeadLeaves(t *testing.T) {
	// b ⟵ ⟨0 2⟩ over alphabet {0} only: after (b,0) the only extension
	// (b,0)(b,0) is pruned (f would be ⟨0 0⟩ ⋢ ⟨0 2⟩), and (b,0) fails
	// the limit condition — a dead leaf (quiescent per the tree but not
	// a solution; 2 is outside the alphabet).
	d := desc.MustNew("lead", fn.ChanFn("b"), fn.ConstTraceFn(seq.OfInts(0, 2)))
	p := NewProblem(d, map[string][]value.Value{"b": value.Ints(0)}, 4)
	res := Enumerate(context.Background(), p)
	if len(res.Solutions) != 0 {
		t.Errorf("solutions: %v", res.SolutionKeys())
	}
	if len(res.DeadLeaves) != 1 || !res.DeadLeaves[0].Equal(trace.Of(ev("b", 0))) {
		t.Errorf("dead leaves: %v", res.DeadLeaves)
	}
}

func TestMaxNodesTruncates(t *testing.T) {
	p := dfmProblem(6)
	p.MaxNodes = 3
	res := Enumerate(context.Background(), p)
	if !res.Truncated {
		t.Error("expected truncation")
	}
	if res.Nodes != 4 { // budget+1 observed then stop
		t.Errorf("nodes = %d", res.Nodes)
	}
}

// TestPruningAblation (experiment E21) compares the pruned and unpruned
// searches: identical solution sets, with the unpruned tree visiting far
// more nodes.
func TestPruningAblation(t *testing.T) {
	pruned := dfmProblem(4)
	unpruned := dfmProblem(4)
	unpruned.Prune = false
	rp, ru := Enumerate(context.Background(), pruned), Enumerate(context.Background(), unpruned)
	pk, uk := rp.SolutionKeys(), ru.SolutionKeys()
	if len(pk) != len(uk) {
		t.Fatalf("pruned %d vs unpruned %d solutions", len(pk), len(uk))
	}
	for i := range pk {
		if pk[i] != uk[i] {
			t.Errorf("solution sets differ at %d: %s vs %s", i, pk[i], uk[i])
		}
	}
	if ru.Nodes <= rp.Nodes {
		t.Errorf("pruning should shrink the tree: pruned %d, unpruned %d", rp.Nodes, ru.Nodes)
	}
}

func TestIsTreeNode(t *testing.T) {
	d := dfmProblem(4).D
	if !IsTreeNode(d, trace.Of(ev("b", 0))) {
		t.Error("(b,0) is a valid history")
	}
	if IsTreeNode(d, trace.Of(ev("d", 0))) {
		t.Error("uncaused output accepted as history")
	}
	if !IsTreeNode(d, trace.Empty) {
		t.Error("⊥ must always be a node")
	}
}

func TestCheckInduction(t *testing.T) {
	p := dfmProblem(4)
	// Invariant: d never carries more items than b and c supplied.
	phi := func(tr trace.Trace) bool {
		return tr.Channel("d").Len() <= tr.Channel("b").Len()+tr.Channel("c").Len()
	}
	if err := CheckInduction(context.Background(), p, phi); err != nil {
		t.Errorf("valid invariant rejected: %v", err)
	}
	// A property that fails at the base.
	if err := CheckInduction(context.Background(), p, func(tr trace.Trace) bool { return tr.Len() > 0 }); err == nil {
		t.Error("false base accepted")
	}
	// A property broken by some edge.
	broken := func(tr trace.Trace) bool { return tr.Channel("d").IsEmpty() }
	if err := CheckInduction(context.Background(), p, broken); err == nil {
		t.Error("broken inductive step accepted")
	}
}

func TestCheckInductionBudget(t *testing.T) {
	p := dfmProblem(6)
	p.MaxNodes = 2
	err := CheckInduction(context.Background(), p, func(trace.Trace) bool { return true })
	if !errors.Is(err, ErrBudget) {
		t.Errorf("expected ErrBudget, got %v", err)
	}
}

func TestNewProblemSortsChannels(t *testing.T) {
	p := NewProblem(dfmProblem(2).D, map[string][]value.Value{
		"z": nil, "a": nil, "m": nil,
	}, 2)
	if p.Channels[0] != "a" || p.Channels[1] != "m" || p.Channels[2] != "z" {
		t.Errorf("channels not sorted: %v", p.Channels)
	}
	if !p.Prune {
		t.Error("NewProblem should default to pruning")
	}
}

// TestTheorem4Degeneration checks the Section 3.3 remark that the tree
// for id ⟵ h degenerates to Kleene's chain: for the deterministic
// description b ⟵ ⟨7 8⟩ the visited nodes form a single path.
func TestTheorem4Degeneration(t *testing.T) {
	d := desc.MustNew("det", fn.ChanFn("b"), fn.ConstTraceFn(seq.OfInts(7, 8)))
	p := NewProblem(d, map[string][]value.Value{"b": value.Ints(0, 7, 8, 9)}, 4)
	res := Enumerate(context.Background(), p)
	if len(res.Solutions) != 1 {
		t.Fatalf("%d solutions, want 1", len(res.Solutions))
	}
	if !res.Solutions[0].Channel("b").Equal(seq.OfInts(7, 8)) {
		t.Errorf("solution %s", res.Solutions[0])
	}
	if res.Nodes != 3 {
		t.Errorf("visited %d nodes, want the 3-node chain ⊥ → ⟨7⟩ → ⟨7 8⟩", res.Nodes)
	}
	// Visited nodes are exactly the Kleene iterates.
	for i, n := range res.Visited {
		if n.Len() != i {
			t.Errorf("node %d has length %d", i, n.Len())
		}
	}
}

// TestCollectVisitedOptOut checks that turning CollectVisited off drops
// only the Visited list — every other field of the result, including
// the deterministic counters, is unchanged.
func TestCollectVisitedOptOut(t *testing.T) {
	ctx := context.Background()
	for _, workers := range []int{1, 4} {
		on := dfmProblem(4)
		off := dfmProblem(4)
		off.CollectVisited = false
		var resOn, resOff Result
		if workers == 1 {
			resOn, resOff = Enumerate(ctx, on), Enumerate(ctx, off)
		} else {
			resOn, resOff = EnumerateParallel(ctx, on, workers), EnumerateParallel(ctx, off, workers)
		}
		if len(resOff.Visited) != 0 {
			t.Fatalf("workers=%d: opt-out still collected %d visited nodes", workers, len(resOff.Visited))
		}
		if len(resOn.Visited) != resOn.Nodes || resOn.Nodes == 0 {
			t.Fatalf("workers=%d: default should collect all %d nodes, got %d", workers, resOn.Nodes, len(resOn.Visited))
		}
		if resOff.Nodes != resOn.Nodes || resOff.Stats.Visited != resOn.Stats.Visited ||
			resOff.Stats.EdgesChecked != resOn.Stats.EdgesChecked ||
			resOff.Stats.EdgesKept != resOn.Stats.EdgesKept {
			t.Errorf("workers=%d: counters changed under opt-out", workers)
		}
		kOn, kOff := resOn.SolutionKeys(), resOff.SolutionKeys()
		if len(kOn) != len(kOff) {
			t.Fatalf("workers=%d: solutions changed under opt-out", workers)
		}
		for i := range kOn {
			if kOn[i] != kOff[i] {
				t.Errorf("workers=%d: solution %d differs: %s vs %s", workers, i, kOn[i], kOff[i])
			}
		}
	}
}
