package descgen

import (
	"context"
	"strings"
	"testing"

	"smoothproc/internal/desc"
	"smoothproc/internal/solver"
)

const sweepSeeds = 100

// TestLemma2OnRandomDescriptions checks Lemma 2 — every finite prefix v
// of a smooth solution satisfies f(v) ⊑ g(v) — across the enumerated
// solutions of random descriptions.
func TestLemma2OnRandomDescriptions(t *testing.T) {
	for seed := int64(0); seed < sweepSeeds; seed++ {
		g := Generate(seed, Config{})
		g.Problem.MaxNodes = 20000
		res := solver.Enumerate(context.Background(), g.Problem)
		if res.Truncated {
			continue // too wide for exhaustive treatment; other seeds cover
		}
		for _, s := range res.Solutions {
			if err := g.D.CheckLemma2(s); err != nil {
				t.Errorf("seed %d (%s): %v", seed, g.Shape, err)
			}
		}
	}
}

// TestTheorem1OnRandomIndependents compares the full smoothness check
// with Theorem 1's prefix condition on every random description whose
// generated sides happen to be independent.
func TestTheorem1OnRandomIndependents(t *testing.T) {
	independents := 0
	for seed := int64(0); seed < sweepSeeds*2; seed++ {
		g := Generate(seed, Config{})
		if !g.D.Independent() {
			continue
		}
		independents++
		for tseed := int64(0); tseed < 8; tseed++ {
			tr := g.RandomTrace(tseed, 4)
			full := g.D.IsSmoothFinite(tr) == nil
			thm1 := g.D.IsSmoothFiniteThm1(tr) == nil
			if full != thm1 {
				t.Errorf("seed %d (%s): Theorem 1 disagreement on %s: full=%v thm1=%v",
					seed, g.Shape, tr, full, thm1)
			}
		}
	}
	if independents < 10 {
		t.Errorf("only %d independent descriptions generated — generator too narrow", independents)
	}
}

// TestMonitorOnRandomDescriptions cross-checks the incremental monitor
// against the batch edge sweep on random traces.
func TestMonitorOnRandomDescriptions(t *testing.T) {
	for seed := int64(0); seed < sweepSeeds; seed++ {
		g := Generate(seed, Config{})
		for tseed := int64(0); tseed < 6; tseed++ {
			tr := g.RandomTrace(tseed, 5)
			m := desc.NewMonitor(g.D)
			stepErr := m.StepAll(tr)
			batchOK := solver.IsTreeNode(g.D, tr)
			if (stepErr == nil) != batchOK {
				t.Errorf("seed %d (%s): monitor=%v batch=%v on %s",
					seed, g.Shape, stepErr, batchOK, tr)
			}
			if stepErr == nil && m.Quiescent() != (g.D.IsSmoothFinite(tr) == nil) {
				t.Errorf("seed %d (%s): quiescence disagreement on %s", seed, g.Shape, tr)
			}
		}
	}
}

// TestParallelSolverOnRandomDescriptions compares the sequential and
// parallel enumerations on random instances.
func TestParallelSolverOnRandomDescriptions(t *testing.T) {
	for seed := int64(0); seed < sweepSeeds/2; seed++ {
		g := Generate(seed, Config{Depth: 3})
		g.Problem.MaxNodes = 20000
		a := solver.Enumerate(context.Background(), g.Problem)
		if a.Truncated {
			continue
		}
		b := solver.EnumerateParallel(context.Background(), g.Problem, 4)
		if strings.Join(a.SolutionKeys(), "|") != strings.Join(b.SolutionKeys(), "|") {
			t.Errorf("seed %d (%s): parallel/sequential disagree", seed, g.Shape)
		}
		if a.Nodes != b.Nodes {
			t.Errorf("seed %d (%s): node counts %d vs %d", seed, g.Shape, a.Nodes, b.Nodes)
		}
	}
}

// TestSamplerSoundOnRandomDescriptions: everything the random-walk
// sampler returns must be a genuine smooth solution.
func TestSamplerSoundOnRandomDescriptions(t *testing.T) {
	for seed := int64(0); seed < sweepSeeds; seed++ {
		g := Generate(seed, Config{})
		s := solver.Sample(context.Background(), g.Problem, solver.SampleOpts{Seed: seed, Walks: 8})
		for _, tr := range s.Solutions {
			if err := g.D.IsSmoothFinite(tr); err != nil {
				t.Errorf("seed %d (%s): sampled non-solution %s: %v", seed, g.Shape, tr, err)
			}
		}
	}
}

// TestGeneratorDeterminismAndVariety sanity-checks the generator itself.
func TestGeneratorDeterminismAndVariety(t *testing.T) {
	if Generate(5, Config{}).Shape != Generate(5, Config{}).Shape {
		t.Error("generator not deterministic")
	}
	shapes := map[string]bool{}
	for seed := int64(0); seed < 40; seed++ {
		shapes[Generate(seed, Config{}).Shape] = true
	}
	if len(shapes) < 30 {
		t.Errorf("only %d distinct shapes in 40 seeds", len(shapes))
	}
}
