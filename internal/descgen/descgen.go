// Package descgen generates random descriptions by composing the
// repository's continuous-function vocabulary over small channel sets —
// the denotational mirror of package netgen. The cross-validation tests
// drive every structural fact that should hold for ANY description built
// from continuous functions through these random instances:
//
//   - Lemma 2 on every enumerated smooth solution;
//   - Theorem 1 agreement (full definition vs prefix condition) whenever
//     the generated sides happen to be independent;
//   - monitor/batch checker agreement on random traces;
//   - sequential/parallel solver agreement;
//   - sampler soundness (sampled solutions are solutions).
//
// A failure on any seed is a bug in the engines, not in the generator:
// the generator only composes functions that are continuous by
// construction (property-checked in package fn).
package descgen

import (
	"fmt"
	"math/rand"

	"smoothproc/internal/desc"
	"smoothproc/internal/fn"
	"smoothproc/internal/seq"
	"smoothproc/internal/solver"
	"smoothproc/internal/trace"
	"smoothproc/internal/value"
)

// Config bounds generation.
type Config struct {
	// Channels to draw from (default: b, c, d).
	Channels []string
	// MaxEquations bounds the system size (default 2).
	MaxEquations int
	// Depth is the probe depth for the generated problem (default 4).
	Depth int
}

func (c Config) withDefaults() Config {
	if len(c.Channels) == 0 {
		c.Channels = []string{"b", "c", "d"}
	}
	if c.MaxEquations == 0 {
		c.MaxEquations = 2
	}
	if c.Depth == 0 {
		c.Depth = 4
	}
	return c
}

// Generated is one random description with solver branching data.
type Generated struct {
	D        desc.Description
	Problem  solver.Problem
	Shape    string
	Channels []string
}

// integer alphabet the expression generators stay within.
var alphabet = value.IntRange(0, 3)

// Generate builds a random description system for the seed: each
// equation pairs two random width-1 expressions (a left side and a right
// side) over the channel set.
func Generate(seed int64, cfg Config) Generated {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	n := 1 + rng.Intn(cfg.MaxEquations)
	var descs []desc.Description
	shape := ""
	for i := 0; i < n; i++ {
		lhs := randomExpr(rng, cfg.Channels, 1)
		rhs := randomExpr(rng, cfg.Channels, 2)
		descs = append(descs, desc.MustNew(fmt.Sprintf("eq%d", i+1), lhs, rhs))
		if i > 0 {
			shape += ", "
		}
		shape += lhs.Name + " ⟵ " + rhs.Name
	}
	d := desc.Combine(fmt.Sprintf("gen-%d", seed), descs...)
	alpha := map[string][]value.Value{}
	for _, ch := range cfg.Channels {
		alpha[ch] = alphabet
	}
	return Generated{
		D:        d,
		Problem:  solver.NewProblem(d, alpha, cfg.Depth),
		Shape:    shape,
		Channels: append([]string(nil), cfg.Channels...),
	}
}

// randomExpr builds a random width-1 continuous TraceFn of bounded
// structural depth.
func randomExpr(rng *rand.Rand, channels []string, depth int) fn.TraceFn {
	if depth <= 0 {
		return leafExpr(rng, channels)
	}
	switch rng.Intn(6) {
	case 0:
		return leafExpr(rng, channels)
	case 1: // unary vocabulary application
		sfs := []fn.SeqFn{fn.Even, fn.Odd, fn.Double, fn.DoublePlus1, fn.Identity, fn.FBA}
		return fn.ApplySeq(sfs[rng.Intn(len(sfs))], randomExpr(rng, channels, depth-1))
	case 2: // prepend a constant
		return fn.ApplySeq(fn.PrependFn(randomValue(rng)), randomExpr(rng, channels, depth-1))
	case 3: // linear map
		return fn.ApplySeq(fn.MulAdd(int64(rng.Intn(2)+1), int64(rng.Intn(3))), randomExpr(rng, channels, depth-1))
	case 4: // binary zip (first-projection zip keeps values in alphabet)
		first := fn.ZipFn("zipFst", func(a, b value.Value) value.Value { return a })
		return fn.ApplyBi(first, randomExpr(rng, channels, depth-1), randomExpr(rng, channels, depth-1))
	default:
		return leafExpr(rng, channels)
	}
}

func leafExpr(rng *rand.Rand, channels []string) fn.TraceFn {
	switch rng.Intn(3) {
	case 0: // constant
		n := rng.Intn(3)
		vals := make([]value.Value, n)
		for i := range vals {
			vals[i] = randomValue(rng)
		}
		return fn.ConstTraceFn(seq.Of(vals...))
	default: // channel history
		return fn.ChanFn(channels[rng.Intn(len(channels))])
	}
}

func randomValue(rng *rand.Rand) value.Value {
	return alphabet[rng.Intn(len(alphabet))]
}

// RandomTrace builds an arbitrary trace over the generated channels for
// monitor cross-checks (not necessarily smooth).
func (g Generated) RandomTrace(seed int64, n int) trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	t := trace.Empty
	for i := 0; i < n; i++ {
		ch := g.Channels[rng.Intn(len(g.Channels))]
		t = t.Append(trace.E(ch, randomValue(rng)))
	}
	return t
}
