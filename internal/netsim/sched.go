package netsim

import (
	"context"
	"fmt"

	"smoothproc/internal/metrics"
	"smoothproc/internal/trace"
	"smoothproc/internal/value"
)

// runner holds one run's mutable state. A fresh runner (with fresh
// goroutines) is built per Run call; nothing is shared between runs.
//
// Channels are append-only logs with a per-(process, channel) read
// cursor: a channel read by several processes delivers its whole stream
// to each of them. This is Kahn-style fan-out, which the paper's
// networks use — in Figure 3 the dfm output d is consumed by both P
// and Q.
type runner struct {
	spec    Spec
	procs   []*procState
	logs    map[string][]value.Value
	events  trace.Trace
	stats   RunStats
	backlog metrics.Histogram
}

type procState struct {
	name    string
	req     chan request
	resp    chan response
	pending *request
	done    bool
	crash   *Crash
	cursor  map[string]int
}

// avail returns the unread portion of ch's log for this process.
func (r *runner) avail(ps *procState, ch string) int {
	return len(r.logs[ch]) - ps.cursor[ch]
}

// action is one enabled step: grant option opt of proc p's pending request.
type action struct {
	proc int
	opt  int
}

// Run executes the network until quiescence, budget exhaustion, or the
// decider stops. It always joins every process goroutine before
// returning.
func Run(spec Spec, d Decider, limits Limits) Result {
	// Convenience wrapper in the database/sql style: Run is the bounded
	// entry point for callers with no cancellation needs; everything with
	// a deadline goes through RunContext.
	return RunContext(context.Background(), spec, d, limits) //smoothlint:allow ctxflow documented no-cancellation convenience wrapper
}

// RunContext is Run with a context checked before every scheduler
// decision: cancellation or an expired deadline stops the run with
// StopCanceled, the recorded prefix intact, and every process goroutine
// joined — the bound Run itself cannot provide on networks that never
// quiesce.
func RunContext(ctx context.Context, spec Spec, d Decider, limits Limits) Result {
	limits = limits.withDefaults()
	r := &runner{
		spec: spec,
		logs: map[string][]value.Value{},
	}
	r.stats.SendsPerChan = map[string]int{}
	for _, p := range spec.Procs {
		ps := &procState{
			name:   p.Name,
			req:    make(chan request),
			resp:   make(chan response),
			cursor: map[string]int{},
		}
		r.procs = append(r.procs, ps)
		body := p.Body
		go func(ps *procState) {
			defer func() {
				if rec := recover(); rec != nil {
					ps.req <- request{kind: opPanic, panicVal: fmt.Sprint(rec)}
					return
				}
				ps.req <- request{kind: opDone}
			}()
			body(&Ctx{name: ps.name, req: ps.req, resp: ps.resp})
		}(ps)
	}

	res := Result{}
	// Wait for every process to post its first request.
	for i := range r.procs {
		r.await(i)
	}
	for {
		acts, err := r.enabled()
		if err != nil {
			res.Err = err
			break
		}
		if len(acts) == 0 {
			res.Reason = StopQuiescent
			break
		}
		if ctx.Err() != nil {
			res.Reason = StopCanceled
			res.EnabledAtStop = len(acts)
			break
		}
		if res.Decisions >= limits.MaxDecisions {
			res.Reason = StopDecisionBudget
			res.EnabledAtStop = len(acts)
			break
		}
		choice, ok := d.Pick(len(acts))
		if !ok {
			res.Reason = StopScript
			res.EnabledAtStop = len(acts)
			break
		}
		res.Decisions++
		r.stats.EnabledSum += len(acts)
		r.stats.EnabledMax = max(r.stats.EnabledMax, len(acts))
		r.fire(acts[choice])
		if r.events.Len() >= limits.MaxEvents {
			res.Reason = StopEventBudget
			break
		}
	}
	res.Blocked, res.Halted = r.status()
	r.abort()
	for _, ps := range r.procs {
		if ps.crash != nil {
			res.Crashed = append(res.Crashed, *ps.crash)
		}
	}
	res.Trace = r.events
	r.stats.Steps = res.Decisions
	r.stats.Backlog = r.backlog.Snapshot()
	res.Stats = r.stats
	return res
}

// status reports, at the moment the run stopped, which processes had
// halted and which were blocked waiting for input (with the channels
// they were prepared to receive from).
func (r *runner) status() (blocked []BlockedProc, halted []string) {
	for _, ps := range r.procs {
		switch {
		case ps.done && ps.crash != nil:
			// Reported via Result.Crashed.
		case ps.done:
			halted = append(halted, ps.name)
		case ps.pending == nil:
			// Unreachable between decisions; defensive.
		case ps.pending.kind == opRecv:
			blocked = append(blocked, BlockedProc{Name: ps.name, WaitingOn: []string{ps.pending.ch}})
		case ps.pending.kind == opRecvAny:
			blocked = append(blocked, BlockedProc{
				Name:      ps.name,
				WaitingOn: append([]string(nil), ps.pending.chans...),
			})
		case ps.pending.kind == opSelect && len(ps.pending.sends) == 0:
			blocked = append(blocked, BlockedProc{
				Name:      ps.name,
				WaitingOn: append([]string(nil), ps.pending.chans...),
			})
		}
	}
	return blocked, halted
}

// await blocks until proc i posts a request; opDone marks it finished,
// opPanic marks it finished and records the crash.
func (r *runner) await(i int) {
	ps := r.procs[i]
	req := <-ps.req
	switch req.kind {
	case opDone:
		ps.done = true
		ps.pending = nil
	case opPanic:
		ps.done = true
		ps.pending = nil
		ps.crash = &Crash{Proc: ps.name, Panic: req.panicVal}
	default:
		ps.pending = &req
	}
}

// enabled enumerates the grantable actions in deterministic order.
func (r *runner) enabled() ([]action, error) {
	var acts []action
	for i, ps := range r.procs {
		if ps.done || ps.pending == nil {
			continue
		}
		switch req := ps.pending; req.kind {
		case opSend:
			acts = append(acts, action{proc: i, opt: 0})
		case opRecv:
			if r.avail(ps, req.ch) > 0 {
				acts = append(acts, action{proc: i, opt: 0})
			}
		case opRecvAny:
			for oi, ch := range req.chans {
				if r.avail(ps, ch) > 0 {
					acts = append(acts, action{proc: i, opt: oi})
				}
			}
		case opChoose:
			for oi := 0; oi < req.n; oi++ {
				acts = append(acts, action{proc: i, opt: oi})
			}
		case opSelect:
			for oi := range req.sends {
				acts = append(acts, action{proc: i, opt: oi})
			}
			for ri, ch := range req.chans {
				if r.avail(ps, ch) > 0 {
					acts = append(acts, action{proc: i, opt: len(req.sends) + ri})
				}
			}
		default:
			return nil, fmt.Errorf("netsim: process %s posted invalid request kind %d", ps.name, req.kind)
		}
	}
	return acts, nil
}

// fire grants one action, then waits for that process's next request.
func (r *runner) fire(a action) {
	ps := r.procs[a.proc]
	req := *ps.pending
	ps.pending = nil
	switch req.kind {
	case opSend:
		r.stats.Sends++
		r.emit(req.ch, req.val)
		ps.resp <- response{ok: true}
	case opRecv:
		r.stats.Recvs++
		v := r.read(ps, req.ch)
		ps.resp <- response{ok: true, val: v}
	case opRecvAny:
		r.stats.Recvs++
		ch := req.chans[a.opt]
		v := r.read(ps, ch)
		ps.resp <- response{ok: true, val: v, ch: ch}
	case opChoose:
		r.stats.Choices++
		ps.resp <- response{ok: true, choice: a.opt}
	case opSelect:
		r.stats.Selects++
		if a.opt < len(req.sends) {
			alt := req.sends[a.opt]
			r.emit(alt.Ch, alt.Val)
			ps.resp <- response{ok: true, choice: 1, ch: alt.Ch, val: alt.Val}
		} else {
			ch := req.chans[a.opt-len(req.sends)]
			v := r.read(ps, ch)
			ps.resp <- response{ok: true, choice: 0, ch: ch, val: v}
		}
	}
	r.await(a.proc)
}

func (r *runner) emit(ch string, v value.Value) {
	r.stats.SendsPerChan[ch]++
	r.logs[ch] = append(r.logs[ch], v)
	r.events = r.events.Append(trace.E(ch, v))
}

func (r *runner) read(ps *procState, ch string) value.Value {
	// The backlog at a read is the unread occupancy the consumer saw —
	// always ≥ 1, since reads are granted only when data is available.
	r.backlog.Observe(int64(len(r.logs[ch]) - ps.cursor[ch]))
	v := r.logs[ch][ps.cursor[ch]]
	ps.cursor[ch]++
	return v
}

// abort unblocks every live process with ok=false responses and drains
// its requests until it reports done, so no goroutine outlives the run.
func (r *runner) abort() {
	for i, ps := range r.procs {
		if ps.done {
			continue
		}
		if ps.pending != nil {
			ps.pending = nil
			ps.resp <- response{ok: false}
			r.await(i)
		}
		for !ps.done {
			ps.resp <- response{ok: false}
			r.await(i)
		}
	}
}

// Feeder is a process that sends the given values on ch and halts — the
// environment side of an open network (e.g. the inputs of dfm in the
// paper's examples are supplied this way).
func Feeder(name, ch string, vals ...value.Value) Proc {
	supply := append([]value.Value(nil), vals...)
	return Proc{Name: name, Body: func(c *Ctx) {
		for _, v := range supply {
			if !c.Send(ch, v) {
				return
			}
		}
	}}
}
