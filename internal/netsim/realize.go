package netsim

import (
	"smoothproc/internal/trace"
)

// RealizeOpts bounds the exhaustive search over decision scripts.
type RealizeOpts struct {
	// MaxRuns bounds the number of replays; 0 means 200000.
	MaxRuns int
	// Limits bounds each individual replay.
	Limits Limits
	// History accepts the target as a reachable communication history
	// (any run whose trace extends or equals the target); when false the
	// target must be reached as a quiescent trace exactly.
	History bool
}

func (o RealizeOpts) withDefaults() RealizeOpts {
	if o.MaxRuns == 0 {
		o.MaxRuns = 200000
	}
	return o
}

// RealizeResult reports the outcome of a realization search.
type RealizeResult struct {
	// Found reports whether some schedule realises the target.
	Found bool
	// Script is a witnessing decision script when Found.
	Script []int
	// Runs is the number of replays performed.
	Runs int
	// Exhausted reports that MaxRuns stopped the search before the
	// script space within the event bound was covered; Found=false is
	// then inconclusive.
	Exhausted bool
}

// Realize searches exhaustively (depth-first over decision scripts,
// replaying the network from scratch per script, pruning on trace
// mismatch) for a schedule whose run produces the target trace. With
// opts.History false it decides — within its budgets — whether target is
// a quiescent trace of the network, i.e. whether the trace "corresponds
// to a computation" in the paper's sense; with opts.History true it
// decides reachability as a communication history.
//
// All nondeterminism, including internal Choose/Flip outcomes, is part of
// the searched script, so oracle-driven processes (Sections 4.3-4.9) are
// covered.
func Realize(spec Spec, target trace.Trace, opts RealizeOpts) RealizeResult {
	opts = opts.withDefaults()
	res := RealizeResult{}
	// The event budget never needs to exceed the target (plus one event
	// to witness an overrun, pruned below).
	limits := opts.Limits.withDefaults()
	if limits.MaxEvents > target.Len()+1 {
		limits.MaxEvents = target.Len() + 1
	}

	var dfs func(script []int) bool
	dfs = func(script []int) bool {
		if res.Runs >= opts.MaxRuns {
			res.Exhausted = true
			return false
		}
		res.Runs++
		run := Run(spec, NewScriptDecider(script), limits)
		if run.Err != nil {
			return false
		}
		switch {
		case !run.Trace.Leq(target) && !target.Leq(run.Trace):
			return false // diverged from target: prune
		case opts.History && target.Leq(run.Trace):
			res.Found = true
			res.Script = append([]int(nil), script...)
			return true
		case !opts.History && run.Reason == StopQuiescent && run.Trace.Equal(target):
			res.Found = true
			res.Script = append([]int(nil), script...)
			return true
		case run.Reason != StopScript:
			// The run ended (quiescent or budget) without matching and
			// without wanting another decision: dead branch.
			return false
		case !run.Trace.Leq(target):
			return false // overran the target
		}
		for opt := 0; opt < run.EnabledAtStop; opt++ {
			if dfs(append(append([]int(nil), script...), opt)) {
				return true
			}
		}
		return false
	}
	dfs(nil)
	return res
}

// QuiescentTraces runs the network under every decision script up to the
// given decision depth (breadth-bounded by MaxRuns) and returns the set
// of distinct quiescent traces found, keyed canonically. It is the
// operational enumeration matched against the solver's smooth solutions
// by the conformance harness.
func QuiescentTraces(spec Spec, maxDecisions int, opts RealizeOpts) map[string]trace.Trace {
	opts = opts.withDefaults()
	limits := opts.Limits.withDefaults()
	found := map[string]trace.Trace{}
	runs := 0
	var dfs func(script []int)
	dfs = func(script []int) {
		if runs >= opts.MaxRuns || len(script) > maxDecisions {
			return
		}
		runs++
		run := Run(spec, NewScriptDecider(script), limits)
		if run.Err != nil {
			return
		}
		if run.Reason == StopQuiescent {
			found[run.Trace.String()] = run.Trace
			return
		}
		if run.Reason != StopScript {
			return
		}
		for opt := 0; opt < run.EnabledAtStop; opt++ {
			dfs(append(append([]int(nil), script...), opt))
		}
	}
	dfs(nil)
	return found
}

// Histories collects the distinct communication histories (all run-trace
// prefixes) reachable within the decision depth.
func Histories(spec Spec, maxDecisions int, opts RealizeOpts) map[string]trace.Trace {
	opts = opts.withDefaults()
	limits := opts.Limits.withDefaults()
	found := map[string]trace.Trace{trace.Empty.String(): trace.Empty}
	runs := 0
	var dfs func(script []int)
	dfs = func(script []int) {
		if runs >= opts.MaxRuns || len(script) > maxDecisions {
			return
		}
		runs++
		run := Run(spec, NewScriptDecider(script), limits)
		if run.Err != nil {
			return
		}
		for _, p := range run.Trace.Prefixes() {
			found[p.String()] = p
		}
		if run.Reason != StopScript {
			return
		}
		for opt := 0; opt < run.EnabledAtStop; opt++ {
			dfs(append(append([]int(nil), script...), opt))
		}
	}
	dfs(nil)
	return found
}
