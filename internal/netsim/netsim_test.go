package netsim

import (
	"testing"

	"smoothproc/internal/seq"
	"smoothproc/internal/trace"
	"smoothproc/internal/value"
)

func ev(ch string, n int64) trace.Event { return trace.E(ch, value.Int(n)) }

// copySpec is a feeder sending vals on "in" plus a copy process to "out".
func copySpec(vals ...value.Value) Spec {
	return Spec{Name: "copy", Procs: []Proc{
		Feeder("feed", "in", vals...),
		{Name: "copy", Body: func(c *Ctx) {
			for {
				v, ok := c.Recv("in")
				if !ok {
					return
				}
				if !c.Send("out", v) {
					return
				}
			}
		}},
	}}
}

func TestRunCopyQuiesces(t *testing.T) {
	res := Run(copySpec(value.Int(1), value.Int(2)), NewRandomDecider(1), Limits{})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Reason != StopQuiescent {
		t.Fatalf("reason = %v", res.Reason)
	}
	if !res.Trace.Channel("in").Equal(res.Trace.Channel("out")) {
		t.Errorf("copy mangled data: %s", res.Trace)
	}
	if res.Trace.Channel("out").Len() != 2 {
		t.Errorf("trace = %s", res.Trace)
	}
}

func TestRunIsDeterministicPerSeed(t *testing.T) {
	spec := copySpec(value.Ints(1, 2, 3)...)
	a := Run(spec, NewRandomDecider(42), Limits{})
	b := Run(spec, NewRandomDecider(42), Limits{})
	if !a.Trace.Equal(b.Trace) || a.Decisions != b.Decisions {
		t.Error("same seed produced different runs")
	}
}

func TestSeedsExploreInterleavings(t *testing.T) {
	// Two independent feeders: different seeds should produce different
	// event orders eventually.
	spec := Spec{Name: "2feed", Procs: []Proc{
		Feeder("f1", "a", value.Int(1)),
		Feeder("f2", "b", value.Int(2)),
	}}
	seen := map[string]bool{}
	for seed := int64(0); seed < 16; seed++ {
		seen[Run(spec, NewRandomDecider(seed), Limits{}).Trace.String()] = true
	}
	if len(seen) != 2 {
		t.Errorf("interleavings seen: %d, want 2", len(seen))
	}
}

func TestEventBudget(t *testing.T) {
	ticker := Spec{Name: "ticks", Procs: []Proc{{
		Name: "tick",
		Body: func(c *Ctx) {
			for c.Send("b", value.T) {
			}
		},
	}}}
	res := Run(ticker, NewRandomDecider(1), Limits{MaxEvents: 5})
	if res.Reason != StopEventBudget {
		t.Fatalf("reason = %v", res.Reason)
	}
	if res.Trace.Len() != 5 {
		t.Errorf("trace length %d", res.Trace.Len())
	}
}

func TestDecisionBudget(t *testing.T) {
	// A process that chooses forever without sending.
	chooser := Spec{Name: "chooser", Procs: []Proc{{
		Name: "c",
		Body: func(c *Ctx) {
			for {
				if _, ok := c.Choose(3); !ok {
					return
				}
			}
		},
	}}}
	res := Run(chooser, NewRandomDecider(1), Limits{MaxDecisions: 7})
	if res.Reason != StopDecisionBudget {
		t.Fatalf("reason = %v", res.Reason)
	}
	if res.Decisions != 7 {
		t.Errorf("decisions = %d", res.Decisions)
	}
	if res.EnabledAtStop != 3 {
		t.Errorf("enabled at stop = %d", res.EnabledAtStop)
	}
}

func TestScriptDeciderStops(t *testing.T) {
	spec := copySpec(value.Int(1))
	res := Run(spec, NewScriptDecider([]int{0}), Limits{})
	if res.Reason != StopScript {
		t.Fatalf("reason = %v", res.Reason)
	}
	if res.Decisions != 1 {
		t.Errorf("decisions = %d", res.Decisions)
	}
	if res.EnabledAtStop == 0 {
		t.Error("should report the open alternatives at the stall")
	}
}

func TestFanOutDelivery(t *testing.T) {
	// One feeder, two independent readers of the same channel: both must
	// see the whole stream (Kahn fan-out, as in Figure 3's d).
	reader := func(name, out string) Proc {
		return Proc{Name: name, Body: func(c *Ctx) {
			for {
				v, ok := c.Recv("src")
				if !ok {
					return
				}
				if !c.Send(out, v) {
					return
				}
			}
		}}
	}
	spec := Spec{Name: "fan", Procs: []Proc{
		Feeder("feed", "src", value.Ints(1, 2)...),
		reader("r1", "o1"),
		reader("r2", "o2"),
	}}
	res := Run(spec, NewRandomDecider(3), Limits{})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Reason != StopQuiescent {
		t.Fatalf("reason = %v", res.Reason)
	}
	for _, out := range []string{"o1", "o2"} {
		if got := res.Trace.Channel(out); !got.Equal(res.Trace.Channel("src")) {
			t.Errorf("%s = %s, want full stream", out, got)
		}
	}
}

func TestRecvAny(t *testing.T) {
	spec := Spec{Name: "merge", Procs: []Proc{
		Feeder("fa", "a", value.Int(1)),
		Feeder("fb", "b", value.Int(2)),
		{Name: "m", Body: func(c *Ctx) {
			for {
				_, v, ok := c.RecvAny("a", "b")
				if !ok {
					return
				}
				if !c.Send("out", v) {
					return
				}
			}
		}},
	}}
	outs := map[string]bool{}
	for seed := int64(0); seed < 32; seed++ {
		res := Run(spec, NewRandomDecider(seed), Limits{})
		if res.Reason != StopQuiescent {
			t.Fatalf("seed %d: %v", seed, res.Reason)
		}
		outs[res.Trace.Channel("out").String()] = true
	}
	if len(outs) != 2 {
		t.Errorf("merge orders: %v, want both", outs)
	}
}

func TestSelectPrefersNothing(t *testing.T) {
	// A process with a pending mandatory output offered via Select is
	// never quiescent until it fires.
	spec := Spec{Name: "sel", Procs: []Proc{{
		Name: "s",
		Body: func(c *Ctx) {
			alt, ok := c.Select([]SendAlt{{Ch: "out", Val: value.Int(7)}}, []string{"in"})
			if !ok {
				return
			}
			if !alt.IsSend {
				c.Send("echo", alt.Val)
			}
		},
	}}}
	res := Run(spec, NewRandomDecider(1), Limits{})
	if res.Reason != StopQuiescent {
		t.Fatalf("reason = %v", res.Reason)
	}
	if !res.Trace.Equal(trace.Of(ev("out", 7))) {
		t.Errorf("trace = %s", res.Trace)
	}
}

func TestSelectReceive(t *testing.T) {
	spec := Spec{Name: "sel2", Procs: []Proc{
		Feeder("feed", "in", value.Int(9)),
		{Name: "s", Body: func(c *Ctx) {
			for {
				alt, ok := c.Select(nil, []string{"in"})
				if !ok {
					return
				}
				if !c.Send("echo", alt.Val) {
					return
				}
			}
		}},
	}}
	res := Run(spec, NewRandomDecider(1), Limits{})
	if res.Reason != StopQuiescent {
		t.Fatalf("reason = %v", res.Reason)
	}
	if !res.Trace.Channel("echo").Equal(seq.OfInts(9)) {
		t.Errorf("trace = %s", res.Trace)
	}
}

func TestChooseAndFlip(t *testing.T) {
	seen := map[int64]bool{}
	spec := Spec{Name: "flip", Procs: []Proc{{
		Name: "f",
		Body: func(c *Ctx) {
			bit, ok := c.Flip()
			if !ok {
				return
			}
			n := int64(0)
			if bit {
				n = 1
			}
			c.Send("out", value.Int(n))
		},
	}}}
	for seed := int64(0); seed < 16; seed++ {
		res := Run(spec, NewRandomDecider(seed), Limits{})
		v, _ := res.Trace.At(0).Val.AsInt()
		seen[v] = true
	}
	if !seen[0] || !seen[1] {
		t.Errorf("flip outcomes: %v", seen)
	}
}

func TestAbortJoinsProcesses(t *testing.T) {
	// A run stopped by budget must still terminate all bodies (the test
	// itself would hang or leak otherwise; -race and goroutine counts in
	// CI would flag it). Run many budget-limited runs back to back.
	spec := copySpec(value.Ints(1, 2, 3, 4, 5)...)
	for i := 0; i < 50; i++ {
		res := Run(spec, NewRandomDecider(int64(i)), Limits{MaxEvents: 2})
		if res.Reason != StopEventBudget {
			t.Fatalf("run %d: %v", i, res.Reason)
		}
	}
}

func TestBlockedAndHaltedDiagnostics(t *testing.T) {
	res := Run(copySpec(value.Int(1)), NewRandomDecider(1), Limits{})
	if res.Reason != StopQuiescent {
		t.Fatalf("reason = %v", res.Reason)
	}
	// The feeder halted; the copy process is blocked on "in".
	if len(res.Halted) != 1 || res.Halted[0] != "feed" {
		t.Errorf("halted = %v", res.Halted)
	}
	if len(res.Blocked) != 1 || res.Blocked[0].Name != "copy" {
		t.Fatalf("blocked = %+v", res.Blocked)
	}
	if len(res.Blocked[0].WaitingOn) != 1 || res.Blocked[0].WaitingOn[0] != "in" {
		t.Errorf("waiting on %v", res.Blocked[0].WaitingOn)
	}
}

func TestBlockedReportsRecvAnyChannels(t *testing.T) {
	spec := Spec{Name: "alt", Procs: []Proc{{
		Name: "m",
		Body: func(c *Ctx) { c.RecvAny("x", "y") },
	}}}
	res := Run(spec, NewRandomDecider(1), Limits{})
	if len(res.Blocked) != 1 || len(res.Blocked[0].WaitingOn) != 2 {
		t.Fatalf("blocked = %+v", res.Blocked)
	}
}

func TestPanickingProcessIsContained(t *testing.T) {
	spec := Spec{Name: "crashy", Procs: []Proc{
		Feeder("feed", "in", value.Ints(1, 2)...),
		{Name: "boom", Body: func(c *Ctx) {
			if _, ok := c.Recv("in"); !ok {
				return
			}
			panic("injected failure")
		}},
		{Name: "bystander", Body: func(c *Ctx) {
			for {
				v, ok := c.Recv("in")
				if !ok {
					return
				}
				if !c.Send("echo", v) {
					return
				}
			}
		}},
	}}
	res := Run(spec, NewRandomDecider(1), Limits{})
	if len(res.Crashed) != 1 || res.Crashed[0].Proc != "boom" {
		t.Fatalf("crashed = %+v", res.Crashed)
	}
	if res.Crashed[0].Panic != "injected failure" {
		t.Errorf("panic value = %q", res.Crashed[0].Panic)
	}
	// The rest of the network kept running: the bystander echoed both
	// items (fan-out delivery is unaffected by the crash).
	if got := res.Trace.Channel("echo"); got.Len() != 2 {
		t.Errorf("bystander output %s", got)
	}
	if res.Reason != StopQuiescent {
		t.Errorf("reason = %v", res.Reason)
	}
	// Crashed processes are not listed as cleanly halted.
	for _, h := range res.Halted {
		if h == "boom" {
			t.Error("crashed process listed as halted")
		}
	}
}

func TestPanicDuringManyRunsDoesNotLeak(t *testing.T) {
	spec := Spec{Name: "crashy", Procs: []Proc{{
		Name: "boom",
		Body: func(c *Ctx) { panic("always") },
	}}}
	for i := 0; i < 100; i++ {
		res := Run(spec, NewRandomDecider(int64(i)), Limits{})
		if len(res.Crashed) != 1 {
			t.Fatalf("run %d: crashed = %+v", i, res.Crashed)
		}
	}
}

func TestStopReasonString(t *testing.T) {
	for r, want := range map[StopReason]string{
		StopQuiescent:      "quiescent",
		StopEventBudget:    "event-budget",
		StopDecisionBudget: "decision-budget",
		StopScript:         "script-exhausted",
		StopCanceled:       "canceled",
		StopReason(99):     "StopReason(99)",
	} {
		if got := r.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(r), got, want)
		}
	}
}

func TestRealizeQuiescentTarget(t *testing.T) {
	spec := copySpec(value.Ints(1, 2)...)
	target := trace.Of(ev("in", 1), ev("out", 1), ev("in", 2), ev("out", 2))
	r := Realize(spec, target, RealizeOpts{})
	if !r.Found {
		t.Fatalf("quiescent trace not realized (runs=%d)", r.Runs)
	}
	// Replaying the witness script reproduces the target.
	res := Run(spec, NewScriptDecider(r.Script), Limits{})
	if !res.Trace.Equal(target) || res.Reason != StopQuiescent {
		t.Errorf("witness replay = %s (%v)", res.Trace, res.Reason)
	}
}

func TestRealizeRejectsImpossible(t *testing.T) {
	spec := copySpec(value.Ints(1)...)
	// Output before input is impossible.
	bad := trace.Of(ev("out", 1), ev("in", 1))
	if r := Realize(spec, bad, RealizeOpts{}); r.Found {
		t.Error("impossible order realized")
	}
	// Wrong value.
	bad2 := trace.Of(ev("in", 1), ev("out", 9))
	if r := Realize(spec, bad2, RealizeOpts{}); r.Found {
		t.Error("wrong value realized")
	}
	// Non-quiescent prefix rejected in exact mode...
	prefix := trace.Of(ev("in", 1))
	if r := Realize(spec, prefix, RealizeOpts{}); r.Found {
		t.Error("nonquiescent trace accepted as quiescent")
	}
	// ...but accepted as a history.
	if r := Realize(spec, prefix, RealizeOpts{History: true}); !r.Found {
		t.Error("reachable history rejected")
	}
}

func TestQuiescentTracesEnumeration(t *testing.T) {
	spec := Spec{Name: "2feed", Procs: []Proc{
		Feeder("f1", "a", value.Int(1)),
		Feeder("f2", "b", value.Int(2)),
	}}
	got := QuiescentTraces(spec, 10, RealizeOpts{})
	if len(got) != 2 {
		t.Fatalf("quiescent traces: %d, want 2 interleavings", len(got))
	}
}

func TestHistoriesEnumeration(t *testing.T) {
	spec := copySpec(value.Int(1))
	got := Histories(spec, 10, RealizeOpts{})
	// ⊥, (in,1), (in,1)(out,1).
	if len(got) != 3 {
		keys := make([]string, 0, len(got))
		for k := range got {
			keys = append(keys, k)
		}
		t.Fatalf("histories: %v", keys)
	}
	if _, ok := got[trace.Empty.String()]; !ok {
		t.Error("⊥ missing from histories")
	}
}

func TestTwoReadersAllowed(t *testing.T) {
	// Fan-out means two readers are legal; ensure no error is reported.
	spec := Spec{Name: "fan2", Procs: []Proc{
		Feeder("feed", "x", value.Int(1)),
		{Name: "r1", Body: func(c *Ctx) { c.Recv("x") }},
		{Name: "r2", Body: func(c *Ctx) { c.Recv("x") }},
	}}
	res := Run(spec, NewRandomDecider(1), Limits{})
	if res.Err != nil {
		t.Fatalf("unexpected error: %v", res.Err)
	}
	if res.Reason != StopQuiescent {
		t.Errorf("reason = %v", res.Reason)
	}
}
