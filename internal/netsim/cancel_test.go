package netsim

import (
	"context"
	"testing"
	"time"

	"smoothproc/internal/value"
)

// forever is a process that sends on ch until the scheduler aborts it —
// a network that never quiesces, the case RunContext exists for.
func forever(ch string) Spec {
	return Spec{Name: "forever", Procs: []Proc{{Name: "tick", Body: func(c *Ctx) {
		for c.Send(ch, value.Int(0)) {
		}
	}}}}
}

func TestRunContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := RunContext(ctx, forever("b"), NewRandomDecider(1), Limits{})
	if res.Reason != StopCanceled {
		t.Fatalf("reason = %v, want %v", res.Reason, StopCanceled)
	}
	if res.Decisions != 0 {
		t.Errorf("cancelled run made %d decisions, want 0", res.Decisions)
	}
}

func TestRunContextDeadlineStopsForeverNetwork(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	// Without the context this run would only stop at the decision budget;
	// give it one large enough that the deadline must fire first.
	res := RunContext(ctx, forever("b"), NewRandomDecider(1), Limits{MaxEvents: 1 << 30, MaxDecisions: 1 << 30})
	if res.Reason != StopCanceled {
		t.Fatalf("reason = %v, want %v", res.Reason, StopCanceled)
	}
	if res.Trace.IsEmpty() {
		t.Error("deadline run recorded no events before stopping")
	}
}

func TestRunIsRunContextBackground(t *testing.T) {
	res := Run(forever("b"), NewRandomDecider(1), Limits{MaxEvents: 4})
	if res.Reason != StopEventBudget {
		t.Fatalf("reason = %v, want %v", res.Reason, StopEventBudget)
	}
}
