package netsim

import (
	"testing"

	"smoothproc/internal/value"
)

func BenchmarkRunPipeline(b *testing.B) {
	feed := make([]value.Value, 32)
	for i := range feed {
		feed[i] = value.Int(int64(i))
	}
	stage := func(name, in, out string) Proc {
		return Proc{Name: name, Body: func(c *Ctx) {
			for {
				v, ok := c.Recv(in)
				if !ok {
					return
				}
				if !c.Send(out, v) {
					return
				}
			}
		}}
	}
	spec := Spec{Name: "pipe", Procs: []Proc{
		Feeder("feed", "a", feed...),
		stage("s1", "a", "b"),
		stage("s2", "b", "c"),
	}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if res := Run(spec, NewRandomDecider(int64(i)), Limits{}); res.Reason != StopQuiescent {
			b.Fatal(res.Reason)
		}
	}
}

func BenchmarkQuiescentTracesEnumeration(b *testing.B) {
	spec := Spec{Name: "2feed", Procs: []Proc{
		Feeder("f1", "a", value.Ints(1, 2)...),
		Feeder("f2", "b", value.Ints(3)...),
	}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := QuiescentTraces(spec, 10, RealizeOpts{}); len(got) != 3 {
			b.Fatalf("interleavings: %d", len(got))
		}
	}
}

func BenchmarkRealize(b *testing.B) {
	spec := copySpec(value.Ints(1, 2)...)
	target := Run(spec, NewRandomDecider(1), Limits{}).Trace
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !Realize(spec, target, RealizeOpts{}).Found {
			b.Fatal("not realized")
		}
	}
}
