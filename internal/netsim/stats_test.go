package netsim

import (
	"testing"

	"smoothproc/internal/value"
)

// TestRunStatsInvariants: on a deterministic copy run, the stats books
// balance — steps partition into action kinds, per-channel sends sum to
// the trace length, and every granted read observed a positive backlog.
func TestRunStatsInvariants(t *testing.T) {
	res := Run(copySpec(value.Ints(1, 2, 3)...), NewRandomDecider(7), Limits{})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	st := res.Stats
	if st.Steps != res.Decisions {
		t.Errorf("steps %d ≠ decisions %d", st.Steps, res.Decisions)
	}
	if got := st.Sends + st.Recvs + st.Choices + st.Selects; got != st.Steps {
		t.Errorf("action kinds sum to %d, want %d", got, st.Steps)
	}
	// The copy network fires only sends and receives: 6 sends (3 in, 3
	// out) and 3 receives.
	if st.Sends != 6 || st.Recvs != 3 || st.Choices != 0 || st.Selects != 0 {
		t.Errorf("kinds = %d/%d/%d/%d", st.Sends, st.Recvs, st.Choices, st.Selects)
	}
	var perChan int
	for _, n := range st.SendsPerChan {
		perChan += n
	}
	if perChan != res.Trace.Len() {
		t.Errorf("per-channel sends %d ≠ trace length %d", perChan, res.Trace.Len())
	}
	if st.SendsPerChan["in"] != 3 || st.SendsPerChan["out"] != 3 {
		t.Errorf("SendsPerChan = %v", st.SendsPerChan)
	}
	if st.Backlog.Count != int64(st.Recvs) {
		t.Errorf("backlog observations %d ≠ receives %d", st.Backlog.Count, st.Recvs)
	}
	if st.Backlog.Sum < st.Backlog.Count || st.Backlog.Max < 1 {
		t.Errorf("backlog sum %d max %d with %d reads",
			st.Backlog.Sum, st.Backlog.Max, st.Backlog.Count)
	}
	if st.EnabledMax < 1 || st.EnabledSum < st.Steps {
		t.Errorf("enabled sum %d max %d over %d steps", st.EnabledSum, st.EnabledMax, st.Steps)
	}
}

// TestRunStatsDeterministicPerSeed: equal seeds give equal stats.
func TestRunStatsDeterministicPerSeed(t *testing.T) {
	spec := copySpec(value.Ints(4, 5, 6)...)
	a := Run(spec, NewRandomDecider(11), Limits{})
	b := Run(spec, NewRandomDecider(11), Limits{})
	if a.Stats.Report().Text() != b.Stats.Report().Text() {
		t.Error("same seed produced different stats")
	}
}

// TestRunStatsBacklogSeesBuffering: a script that lets the feeder run
// far ahead of the copier forces a backlog > 1 at some read.
func TestRunStatsBacklogSeesBuffering(t *testing.T) {
	spec := copySpec(value.Ints(1, 2, 3, 4)...)
	// Always pick the first enabled action: the feeder (process 0) sends
	// all four values before the copier ever reads.
	res := Run(spec, NewScriptDecider(make([]int, 64)), Limits{})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Stats.Backlog.Max < 2 {
		t.Errorf("backlog max = %d; producer run-ahead not observed", res.Stats.Backlog.Max)
	}
}

// TestRunStatsChoicesCounted: internal choices fire through Choose and
// are counted as such.
func TestRunStatsChoicesCounted(t *testing.T) {
	spec := Spec{Name: "chooser", Procs: []Proc{{Name: "p", Body: func(c *Ctx) {
		for i := 0; i < 3; i++ {
			n, ok := c.Choose(2)
			if !ok {
				return
			}
			if !c.Send("out", value.Int(int64(n))) {
				return
			}
		}
	}}}}
	res := Run(spec, NewRandomDecider(3), Limits{})
	if res.Stats.Choices != 3 || res.Stats.Sends != 3 {
		t.Errorf("choices %d sends %d", res.Stats.Choices, res.Stats.Sends)
	}
	if res.Stats.EnabledMax != 2 {
		t.Errorf("enabled max %d, want 2 (the two Choose branches)", res.Stats.EnabledMax)
	}
}

// TestRunStatsReport: the report exposes the documented names and the
// deterministic view carries everything (run stats have no timers).
func TestRunStatsReport(t *testing.T) {
	res := Run(copySpec(value.Ints(1, 2)...), NewRandomDecider(5), Limits{})
	rep := res.Stats.Report()
	steps, ok := rep.Get("run", "scheduler steps")
	if !ok || steps != int64(res.Decisions) {
		t.Errorf("scheduler steps: %d ok=%v", steps, ok)
	}
	if _, ok := rep.Get("channels", "sends on out"); !ok {
		t.Error("missing per-channel sends")
	}
	if reads, ok := rep.Get("backlog", "reads"); !ok || reads != res.Stats.Backlog.Count {
		t.Errorf("backlog reads: %d ok=%v", reads, ok)
	}
	det := rep.Deterministic()
	if det.Text() != rep.Text() {
		t.Error("run stats should be fully deterministic")
	}
}
