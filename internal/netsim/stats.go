package netsim

import (
	"sort"
	"strconv"

	"smoothproc/internal/metrics"
	"smoothproc/internal/report"
)

// RunStats instruments one scheduler run: how many actions of each kind
// fired, how wide the enabled set was at each decision point, where the
// sends went, and how much unread data sat in a channel whenever a
// process read from it. All fields are plain values — a Result (and its
// stats) can be copied and compared freely.
type RunStats struct {
	// Steps counts fired scheduler actions; it always equals
	// Result.Decisions and is repeated here so the stats are
	// self-contained.
	Steps int
	// Sends, Recvs, Choices and Selects partition the fired actions by
	// the kind of the request they granted. A Select that resolved to a
	// send still counts as a Select here; its emission shows up in
	// SendsPerChan and the trace.
	Sends   int
	Recvs   int
	Choices int
	Selects int
	// EnabledSum and EnabledMax summarise the size of the enabled set
	// over all decision points: their quotient is the mean branching the
	// Decider faced, the max its widest choice.
	EnabledSum int
	EnabledMax int
	// SendsPerChan counts emissions per channel (Select-sends included);
	// the values sum to the trace length.
	SendsPerChan map[string]int
	// Backlog is the distribution of channel occupancy observed at reads:
	// for each granted receive, the number of unread values in the channel
	// just before the read (always ≥ 1). A large max means a producer ran
	// far ahead of its consumer — unbounded buffering at work.
	Backlog metrics.HistSnapshot
}

// Report renders the stats as ordered sections for text/JSON output.
func (s RunStats) Report() report.Stats {
	var out report.Stats

	run := report.Section{Name: "run"}
	run.AddInt("scheduler steps", s.Steps)
	run.AddInt("sends fired", s.Sends)
	run.AddInt("receives fired", s.Recvs)
	run.AddInt("choices fired", s.Choices)
	run.AddInt("selects fired", s.Selects)
	run.AddInt("enabled sum", s.EnabledSum)
	run.AddInt("enabled max", s.EnabledMax)
	out.Sections = append(out.Sections, run)

	if len(s.SendsPerChan) > 0 {
		chans := make([]string, 0, len(s.SendsPerChan))
		for c := range s.SendsPerChan {
			chans = append(chans, c)
		}
		sort.Strings(chans)
		sec := report.Section{Name: "channels"}
		for _, c := range chans {
			sec.AddInt("sends on "+c, s.SendsPerChan[c])
		}
		out.Sections = append(out.Sections, sec)
	}

	if s.Backlog.Count > 0 {
		sec := report.Section{Name: "backlog"}
		sec.Add("reads", s.Backlog.Count, "")
		sec.Add("backlog sum", s.Backlog.Sum, "")
		sec.Add("backlog max", s.Backlog.Max, "")
		for _, b := range s.Backlog.Buckets {
			sec.Add("reads with backlog ≤ "+strconv.FormatInt(b.Le, 10), b.N, "")
		}
		out.Sections = append(out.Sections, sec)
	}
	return out
}
