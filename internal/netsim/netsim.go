// Package netsim is the operational substrate of the reproduction: a
// runtime for networks of message-communicating processes in the style
// the paper assumes operationally (Section 3.1) — asynchronous channels
// with unbounded buffering, outputs after arbitrary finite delay, and a
// global communication history recording each send as a (channel,
// message) pair.
//
// Processes run as goroutines, but every step is granted by a single
// cooperative scheduler: a process blocks whenever it asks to send,
// receive, or make a nondeterministic choice, and the scheduler fires
// exactly one enabled action at a time. All nondeterminism — interleaving
// and internal choice alike — flows through a Decider, so a run is
// exactly reproducible from a seed, and exhaustive search over short
// decision scripts (package-level Realize) can decide whether a given
// trace corresponds to a computation. That is the operational half of the
// paper's "smooth solutions correspond to computations and vice versa".
package netsim

import (
	"fmt"
	"math/rand"

	"smoothproc/internal/trace"
	"smoothproc/internal/value"
)

// Proc is a process body. The body communicates only through the Ctx and
// must return promptly when any operation reports false (run aborted).
type Proc struct {
	Name string
	Body func(*Ctx)
}

// Spec describes a network: a named set of processes. Channels need no
// declaration; they come into being when first used. Each channel should
// have at most one receiving process (point-to-point dataflow, as in
// Kahn's and the paper's networks); Run reports a channel with two
// receivers as an error in the result.
type Spec struct {
	Name  string
	Procs []Proc
}

// StopReason says why a run ended.
type StopReason int

// Stop reasons.
const (
	// StopQuiescent: every process has halted or is blocked on a receive
	// from an empty channel — the paper's "nothing more to do". The
	// recorded trace is a quiescent trace of the network.
	StopQuiescent StopReason = iota + 1
	// StopEventBudget: the bound on emitted events was reached; the trace
	// is a (nonquiescent, in general) communication history.
	StopEventBudget
	// StopDecisionBudget: the bound on scheduler decisions was reached.
	StopDecisionBudget
	// StopScript: a ScriptDecider ran out of script.
	StopScript
	// StopCanceled: the run's context was cancelled or its deadline
	// expired between scheduler decisions (see RunContext).
	StopCanceled
)

// String names the stop reason.
func (r StopReason) String() string {
	switch r {
	case StopQuiescent:
		return "quiescent"
	case StopEventBudget:
		return "event-budget"
	case StopDecisionBudget:
		return "decision-budget"
	case StopScript:
		return "script-exhausted"
	case StopCanceled:
		return "canceled"
	default:
		return fmt.Sprintf("StopReason(%d)", int(r))
	}
}

// Limits bounds a run.
type Limits struct {
	// MaxEvents bounds the number of sends recorded; 0 means 4096.
	MaxEvents int
	// MaxDecisions bounds scheduler decisions; 0 means 16384.
	MaxDecisions int
}

func (l Limits) withDefaults() Limits {
	if l.MaxEvents == 0 {
		l.MaxEvents = 4096
	}
	if l.MaxDecisions == 0 {
		l.MaxDecisions = 16384
	}
	return l
}

// Result reports a completed run.
type Result struct {
	// Trace is the recorded communication history (sends only, in order).
	Trace trace.Trace
	// Reason says how the run ended; the trace is a quiescent trace of
	// the network exactly when Reason == StopQuiescent.
	Reason StopReason
	// Decisions is the number of scheduler decisions taken.
	Decisions int
	// EnabledAtStop is the number of enabled actions at the moment the
	// run stopped — used by the exhaustive search to expand script nodes.
	EnabledAtStop int
	// Blocked names the processes waiting on empty channels when the run
	// stopped, with the channels they wait on — the quiescence witness
	// (and a deadlock diagnostic when the programmer expected progress).
	Blocked []BlockedProc
	// Halted names the processes whose bodies returned.
	Halted []string
	// Crashed records processes whose bodies panicked, with the panic
	// values. A crashed process counts as halted for quiescence; the run
	// continues (failure isolation), and the crashes are surfaced here
	// so tests and tools can fail loudly.
	Crashed []Crash
	// Err reports a malformed network (e.g. two receivers on a channel).
	Err error
	// Stats instruments the run: fired-action kinds, enabled-set widths,
	// per-channel sends and the backlog distribution seen at reads.
	Stats RunStats
}

// Crash records one process panic.
type Crash struct {
	// Proc is the process name.
	Proc string
	// Panic is the recovered panic value, stringified.
	Panic string
}

// BlockedProc describes one waiting process.
type BlockedProc struct {
	// Name is the process name.
	Name string
	// WaitingOn lists the channels the process is prepared to receive
	// from (all currently empty for it).
	WaitingOn []string
}

// Decider resolves every nondeterministic step: given n ≥ 1 enabled
// actions it picks one, or reports false to stop the run.
type Decider interface {
	Pick(n int) (int, bool)
}

// RandomDecider picks uniformly with a seeded PRNG; runs replay exactly
// per seed.
type RandomDecider struct{ rng *rand.Rand }

// NewRandomDecider builds a seeded random decider.
func NewRandomDecider(seed int64) *RandomDecider {
	return &RandomDecider{rng: rand.New(rand.NewSource(seed))}
}

// Pick implements Decider.
func (d *RandomDecider) Pick(n int) (int, bool) { return d.rng.Intn(n), true }

// ScriptDecider replays a fixed decision list and stops when it runs out.
type ScriptDecider struct {
	script []int
	pos    int
}

// NewScriptDecider builds a decider that replays script.
func NewScriptDecider(script []int) *ScriptDecider {
	return &ScriptDecider{script: script}
}

// Pick implements Decider. Out-of-range entries are taken modulo n.
func (d *ScriptDecider) Pick(n int) (int, bool) {
	if d.pos >= len(d.script) {
		return 0, false
	}
	c := d.script[d.pos] % n
	d.pos++
	return c, true
}

// opKind discriminates process requests.
type opKind int

const (
	opSend opKind = iota + 1
	opRecv
	opRecvAny
	opChoose
	opSelect
	opDone
	opPanic
)

type request struct {
	kind     opKind
	ch       string
	chans    []string
	val      value.Value
	n        int
	sends    []SendAlt
	panicVal string
}

type response struct {
	ok     bool
	val    value.Value
	ch     string
	choice int
}

// Ctx is a process's handle on the runtime. All methods block until the
// scheduler grants the operation; a false result means the run is over
// and the body must return.
type Ctx struct {
	name string
	req  chan request
	resp chan response
}

// Send emits v on channel ch.
func (c *Ctx) Send(ch string, v value.Value) bool {
	c.req <- request{kind: opSend, ch: ch, val: v}
	return (<-c.resp).ok
}

// Recv receives the next message on ch, waiting as long as none is
// available (the paper's receiving discipline).
func (c *Ctx) Recv(ch string) (value.Value, bool) {
	c.req <- request{kind: opRecv, ch: ch}
	r := <-c.resp
	return r.val, r.ok
}

// RecvAny receives from whichever of the listed channels the scheduler
// picks among those with data — the ALT primitive merge processes need.
func (c *Ctx) RecvAny(chans ...string) (string, value.Value, bool) {
	c.req <- request{kind: opRecvAny, chans: chans}
	r := <-c.resp
	return r.ch, r.val, r.ok
}

// Choose makes an internal nondeterministic choice among n alternatives.
func (c *Ctx) Choose(n int) (int, bool) {
	c.req <- request{kind: opChoose, n: n}
	r := <-c.resp
	return r.choice, r.ok
}

// Flip is a two-way Choose returning a boolean — the catalogue's random
// bits (Sections 4.3-4.7) are Flips, so that exhaustive search covers
// oracle outcomes as well as interleavings.
func (c *Ctx) Flip() (bool, bool) {
	i, ok := c.Choose(2)
	return i == 1, ok
}

// SendAlt is one send alternative of a Select.
type SendAlt struct {
	Ch  string
	Val value.Value
}

// Alt reports which alternative of a Select fired.
type Alt struct {
	// IsSend distinguishes a fired send from a fired receive.
	IsSend bool
	// Ch is the channel involved.
	Ch string
	// Val is the value sent or received.
	Val value.Value
}

// Select offers a set of alternatives: any of the sends (always enabled)
// and a receive from any of the recv channels that has data. The
// scheduler fires exactly one. A process that still has mandatory output
// should offer it as a send alternative rather than block on a bare Recv,
// so that it is never counted quiescent while output remains — e.g. the
// Brock-Ackermann process A must be able to emit its internal 0 and 2
// without waiting for input (Section 2.4).
func (c *Ctx) Select(sends []SendAlt, recvs []string) (Alt, bool) {
	c.req <- request{kind: opSelect, sends: sends, chans: recvs}
	r := <-c.resp
	if !r.ok {
		return Alt{}, false
	}
	return Alt{IsSend: r.choice == 1, Ch: r.ch, Val: r.val}, true
}
