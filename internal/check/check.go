// Package check is the conformance harness tying the two halves of the
// reproduction together: it verifies, per process or network, the paper's
// central claim that smooth solutions correspond to computations and vice
// versa (Section 3.2.2), including the auxiliary-channel refinement of
// Section 8.2 (smooth solutions are projected onto the non-auxiliary
// incident channels before comparison).
package check

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"smoothproc/internal/desc"
	"smoothproc/internal/netsim"
	"smoothproc/internal/solver"
	"smoothproc/internal/trace"
)

// Conformance describes one process/network comparison.
type Conformance struct {
	// Name labels failures.
	Name string
	// Spec is the operational network.
	Spec netsim.Spec
	// Problem carries the description and the solver's branching data
	// over all channels, including auxiliaries.
	Problem solver.Problem
	// Visible is the non-auxiliary channel set; both sides are projected
	// onto it before comparison. Leave nil to compare unprojected.
	Visible trace.ChanSet
	// LenCap compares only traces whose visible length is ≤ LenCap, so
	// both sides' exploration bounds cover the compared region. The
	// caller must pick Problem.MaxDepth and MaxDecisions generously
	// relative to LenCap.
	LenCap int
	// MaxDecisions bounds the operational script depth.
	MaxDecisions int
	// Opts bounds the operational searches.
	Opts netsim.RealizeOpts
}

// Mode selects which conformance comparison applies to a network. The
// generated corpus tags every instance with the mode its family is
// checkable under, so one driver (Conformance.Check) can sweep a
// heterogeneous corpus.
type Mode int

const (
	// ModeQuiescent is CheckQuiescent: set equality of quiescent traces
	// and smooth solutions. Right for networks whose every maximal run
	// terminates (finite feeders).
	ModeQuiescent Mode = iota
	// ModeHistories is CheckHistories: reachable histories equal tree
	// nodes. Right for ω-processes with no finite quiescent trace
	// (clocks, repeat-feeders).
	ModeHistories
	// ModeRefines is CheckRefines: one-sided containment, for
	// deterministic implementations of nondeterministic specifications.
	ModeRefines
)

// String names the mode for shape strings and failure messages.
func (m Mode) String() string {
	switch m {
	case ModeQuiescent:
		return "quiescent"
	case ModeHistories:
		return "histories"
	case ModeRefines:
		return "refines"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Check dispatches to the comparison the mode selects.
func (c Conformance) Check(ctx context.Context, m Mode) error {
	switch m {
	case ModeQuiescent:
		return c.CheckQuiescent(ctx)
	case ModeHistories:
		return c.CheckHistories(ctx)
	case ModeRefines:
		return c.CheckRefines(ctx)
	default:
		return fmt.Errorf("check: %s: unknown mode %d", c.Name, int(m))
	}
}

func (c Conformance) project(t trace.Trace) trace.Trace {
	if c.Visible == nil {
		return t
	}
	return t.Project(c.Visible)
}

func (c Conformance) capped(set map[string]trace.Trace) map[string]trace.Trace {
	out := map[string]trace.Trace{}
	for _, t := range set {
		p := c.project(t)
		if p.Len() <= c.LenCap {
			out[p.String()] = p
		}
	}
	return out
}

// OperationalQuiescent returns the visible projections of the network's
// quiescent traces, up to the caps.
func (c Conformance) OperationalQuiescent() map[string]trace.Trace {
	return c.capped(netsim.QuiescentTraces(c.Spec, c.MaxDecisions, c.Opts))
}

// DenotationalSolutions returns the visible projections of the
// description's finite smooth solutions, up to the caps.
func (c Conformance) DenotationalSolutions(ctx context.Context) map[string]trace.Trace {
	res := solver.Enumerate(ctx, c.Problem)
	set := map[string]trace.Trace{}
	for _, s := range res.Solutions {
		set[s.String()] = s
	}
	return c.capped(set)
}

// CheckQuiescent verifies set equality of the two sides — the paper's
// "the set of smooth solutions ... is the set of process traces", for
// the finite traces within the caps.
func (c Conformance) CheckQuiescent(ctx context.Context) error {
	op := c.OperationalQuiescent()
	den := c.DenotationalSolutions(ctx)
	var missingDen, missingOp []string
	for k := range op {
		if _, ok := den[k]; !ok {
			missingDen = append(missingDen, k)
		}
	}
	for k := range den {
		if _, ok := op[k]; !ok {
			missingOp = append(missingOp, k)
		}
	}
	sort.Strings(missingDen)
	sort.Strings(missingOp)
	if len(missingDen)+len(missingOp) > 0 {
		return fmt.Errorf("check: %s: quiescent mismatch:\n  operational but not smooth: %s\n  smooth but not operational: %s",
			c.Name, strings.Join(missingDen, " "), strings.Join(missingOp, " "))
	}
	return nil
}

// CheckHistories verifies the prefix-level correspondence: every
// operationally reachable communication history (visible, within caps)
// is the projection of some node of the Section 3.3 tree, and every tree
// node's visible projection is operationally reachable. This is the
// right comparison for processes with no finite quiescent trace (Ticks,
// FairRandomSeq, the seeded Figure 1 loop).
func (c Conformance) CheckHistories(ctx context.Context) error {
	op := c.capped(netsim.Histories(c.Spec, c.MaxDecisions, c.Opts))
	res := solver.Enumerate(ctx, c.Problem)
	den := map[string]trace.Trace{}
	for _, n := range res.Visited {
		p := c.project(n)
		if p.Len() <= c.LenCap {
			den[p.String()] = p
		}
	}
	var missingDen, missingOp []string
	for k := range op {
		if _, ok := den[k]; !ok {
			missingDen = append(missingDen, k)
		}
	}
	for k := range den {
		if _, ok := op[k]; !ok {
			missingOp = append(missingOp, k)
		}
	}
	sort.Strings(missingDen)
	sort.Strings(missingOp)
	if len(missingDen)+len(missingOp) > 0 {
		return fmt.Errorf("check: %s: history mismatch:\n  operational but not a tree node: %s\n  tree node but unreachable: %s",
			c.Name, strings.Join(missingDen, " "), strings.Join(missingOp, " "))
	}
	return nil
}

// RandomRunsAreSmooth runs the network under the given seeds and checks
// that every run trace's prefixes are tree nodes of the description and
// that quiescent runs end on smooth solutions (after projection, the run
// trace must appear among the denotational solutions when auxiliaries are
// involved; without auxiliaries the direct smoothness check applies).
// This is the cheap, high-volume direction of the conformance argument,
// usable where exhaustive search is too wide.
func RandomRunsAreSmooth(ctx context.Context, c Conformance, seeds []int64, limits netsim.Limits) error {
	denOnce := map[string]trace.Trace(nil)
	for _, seed := range seeds {
		run := netsim.RunContext(ctx, c.Spec, netsim.NewRandomDecider(seed), limits)
		if run.Err != nil {
			return fmt.Errorf("check: %s: seed %d: %w", c.Name, seed, run.Err)
		}
		if c.Visible == nil {
			// Direct: feed the run through the incremental monitor —
			// every step must be a smooth edge, and a quiescent stop
			// must land on a smooth solution.
			m := desc.NewMonitor(c.Problem.D)
			if err := m.StepAll(run.Trace); err != nil {
				return fmt.Errorf("check: %s: seed %d: %w", c.Name, seed, err)
			}
			if run.Reason == netsim.StopQuiescent && !m.Quiescent() {
				return fmt.Errorf("check: %s: seed %d: quiescent run %s fails the limit condition", c.Name, seed, run.Trace)
			}
			continue
		}
		// With auxiliaries: the projected quiescent trace must be among
		// the projected smooth solutions.
		if run.Reason != netsim.StopQuiescent {
			continue
		}
		p := c.project(run.Trace)
		if p.Len() > c.LenCap {
			continue
		}
		if denOnce == nil {
			denOnce = c.DenotationalSolutions(ctx)
		}
		if _, ok := denOnce[p.String()]; !ok {
			return fmt.Errorf("check: %s: seed %d: quiescent run %s matches no projected smooth solution", c.Name, seed, p)
		}
	}
	return nil
}

// CheckRefines verifies the one-sided use of a description as a
// SPECIFICATION (Section 8.3: "we recommend using descriptions as
// specifications"): every operational behaviour must be admitted by the
// description — quiescent traces must be smooth solutions and histories
// must be tree nodes — but the converse is not required, so a
// deterministic implementation may refine a nondeterministic spec.
func (c Conformance) CheckRefines(ctx context.Context) error {
	den := c.DenotationalSolutions(ctx)
	for _, tr := range c.capped(netsim.QuiescentTraces(c.Spec, c.MaxDecisions, c.Opts)) {
		if _, ok := den[tr.String()]; !ok {
			return fmt.Errorf("check: %s: quiescent behaviour %s outside the specification", c.Name, tr)
		}
	}
	res := solver.Enumerate(ctx, c.Problem)
	nodes := map[string]bool{}
	for _, n := range res.Visited {
		p := c.project(n)
		if p.Len() <= c.LenCap {
			nodes[p.String()] = true
		}
	}
	for _, h := range c.capped(netsim.Histories(c.Spec, c.MaxDecisions, c.Opts)) {
		if !nodes[h.String()] {
			return fmt.Errorf("check: %s: history %s outside the specification's tree", c.Name, h)
		}
	}
	return nil
}

// SolutionsAreRealizable verifies the constructive direction one trace at
// a time: every denotational solution (projected, capped) must be
// realisable as a quiescent trace by some schedule.
func SolutionsAreRealizable(ctx context.Context, c Conformance) error {
	for _, target := range sortedTraces(c.DenotationalSolutions(ctx)) {
		r := netsim.Realize(c.Spec, target, c.Opts)
		if !r.Found {
			suffix := ""
			if r.Exhausted {
				suffix = " (search budget exhausted — inconclusive)"
			}
			return fmt.Errorf("check: %s: smooth solution %s not realisable%s", c.Name, target, suffix)
		}
	}
	return nil
}

func sortedTraces(set map[string]trace.Trace) []trace.Trace {
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]trace.Trace, len(keys))
	for i, k := range keys {
		out[i] = set[k]
	}
	return out
}
