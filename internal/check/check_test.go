package check

import (
	"context"
	"strings"
	"testing"

	"smoothproc/internal/desc"
	"smoothproc/internal/fn"
	"smoothproc/internal/netsim"
	"smoothproc/internal/seq"
	"smoothproc/internal/solver"
	"smoothproc/internal/trace"
	"smoothproc/internal/value"
)

// copyConformance is a feeder ⟨1⟩ on "in" plus a copy process, with the
// matching description system.
func copyConformance() Conformance {
	spec := netsim.Spec{Name: "copy", Procs: []netsim.Proc{
		netsim.Feeder("feed", "in", value.Int(1)),
		{Name: "copy", Body: func(c *netsim.Ctx) {
			for {
				v, ok := c.Recv("in")
				if !ok {
					return
				}
				if !c.Send("out", v) {
					return
				}
			}
		}},
	}}
	d := desc.Combine("copy",
		desc.MustNew("feed", fn.ChanFn("in"), fn.ConstTraceFn(seq.OfInts(1))),
		desc.MustNew("copy", fn.ChanFn("out"), fn.ChanFn("in")),
	)
	return Conformance{
		Name: "copy",
		Spec: spec,
		Problem: solver.NewProblem(d, map[string][]value.Value{
			"in": value.Ints(1), "out": value.Ints(1),
		}, 4),
		LenCap:       4,
		MaxDecisions: 10,
	}
}

func TestCheckQuiescentAgrees(t *testing.T) {
	c := copyConformance()
	if err := c.CheckQuiescent(context.Background()); err != nil {
		t.Error(err)
	}
}

func TestCheckHistoriesAgrees(t *testing.T) {
	c := copyConformance()
	if err := c.CheckHistories(context.Background()); err != nil {
		t.Error(err)
	}
}

func TestRandomRunsAreSmooth(t *testing.T) {
	c := copyConformance()
	if err := RandomRunsAreSmooth(context.Background(), c, []int64{1, 2, 3}, netsim.Limits{}); err != nil {
		t.Error(err)
	}
}

func TestSolutionsAreRealizable(t *testing.T) {
	c := copyConformance()
	if err := SolutionsAreRealizable(context.Background(), c); err != nil {
		t.Error(err)
	}
}

func TestCheckQuiescentDetectsMismatch(t *testing.T) {
	c := copyConformance()
	// Sabotage the description: demand the copy doubles its input. The
	// operational side still copies verbatim, so the sets diverge.
	c.Problem.D = desc.Combine("bad",
		desc.MustNew("feed", fn.ChanFn("in"), fn.ConstTraceFn(seq.OfInts(1))),
		desc.MustNew("copy", fn.ChanFn("out"), fn.OnChan(fn.Double, "in")),
	)
	c.Problem.Alphabet["out"] = value.Ints(1, 2)
	err := c.CheckQuiescent(context.Background())
	if err == nil {
		t.Fatal("mismatch not detected")
	}
	if !strings.Contains(err.Error(), "operational but not smooth") {
		t.Errorf("unhelpful error: %v", err)
	}
}

func TestRandomRunsDetectNonSmoothImplementation(t *testing.T) {
	// Operational process violates its description: sends 9 instead of
	// copying.
	spec := netsim.Spec{Name: "liar", Procs: []netsim.Proc{
		netsim.Feeder("feed", "in", value.Int(1)),
		{Name: "liar", Body: func(c *netsim.Ctx) {
			if _, ok := c.Recv("in"); !ok {
				return
			}
			c.Send("out", value.Int(9))
		}},
	}}
	d := desc.Combine("copy",
		desc.MustNew("feed", fn.ChanFn("in"), fn.ConstTraceFn(seq.OfInts(1))),
		desc.MustNew("copy", fn.ChanFn("out"), fn.ChanFn("in")),
	)
	c := Conformance{
		Name: "liar",
		Spec: spec,
		Problem: solver.NewProblem(d, map[string][]value.Value{
			"in": value.Ints(1), "out": value.Ints(1, 9),
		}, 4),
		LenCap:       4,
		MaxDecisions: 10,
	}
	if err := RandomRunsAreSmooth(context.Background(), c, []int64{1}, netsim.Limits{}); err == nil {
		t.Error("lying implementation not caught")
	}
}

// TestCheckRefines exercises the §8.3 specification reading: a
// deterministic left-biased merge refines the dfm description (all its
// behaviours are admitted) without exhausting it (CheckQuiescent fails).
func TestCheckRefines(t *testing.T) {
	biased := netsim.Spec{Name: "biased", Procs: []netsim.Proc{
		netsim.Feeder("envB", "b", value.Int(0)),
		netsim.Feeder("envC", "c", value.Int(1)),
		{Name: "merge", Body: func(ctx *netsim.Ctx) {
			// Drain b completely before touching c: one fixed merge order.
			if v, ok := ctx.Recv("b"); ok {
				if !ctx.Send("d", v) {
					return
				}
			}
			for {
				v, ok := ctx.Recv("c")
				if !ok {
					return
				}
				if !ctx.Send("d", v) {
					return
				}
			}
		}},
	}}
	d := desc.Combine("dfm-spec",
		desc.MustNew("even", fn.OnChan(fn.Even, "d"), fn.ChanFn("b")),
		desc.MustNew("odd", fn.OnChan(fn.Odd, "d"), fn.ChanFn("c")),
		desc.MustNew("envB", fn.ChanFn("b"), fn.ConstTraceFn(seq.OfInts(0))),
		desc.MustNew("envC", fn.ChanFn("c"), fn.ConstTraceFn(seq.OfInts(1))),
	)
	c := Conformance{
		Name: "biased",
		Spec: biased,
		Problem: solver.NewProblem(d, map[string][]value.Value{
			"b": value.Ints(0), "c": value.Ints(1), "d": value.Ints(0, 1),
		}, 4),
		LenCap:       4,
		MaxDecisions: 16,
	}
	if err := c.CheckRefines(context.Background()); err != nil {
		t.Errorf("biased merge should refine the dfm spec: %v", err)
	}
	if err := c.CheckQuiescent(context.Background()); err == nil {
		t.Error("biased merge should NOT exhaust the dfm spec (it drops merge orders)")
	}

	// A wrong implementation (emits 9) does not refine.
	liar := netsim.Spec{Name: "liar", Procs: []netsim.Proc{
		netsim.Feeder("envB", "b", value.Int(0)),
		netsim.Feeder("envC", "c", value.Int(1)),
		{Name: "merge", Body: func(ctx *netsim.Ctx) {
			ctx.Send("d", value.Int(9))
		}},
	}}
	c2 := c
	c2.Spec = liar
	c2.Problem.Alphabet = map[string][]value.Value{
		"b": value.Ints(0), "c": value.Ints(1), "d": value.Ints(0, 1, 9),
	}
	if err := c2.CheckRefines(context.Background()); err == nil {
		t.Error("lying implementation accepted as refinement")
	}
}

func TestConformanceWithAuxChannels(t *testing.T) {
	// An operational random bit against its auxiliary-free projection:
	// description R(b) ⟵ T̄ has no auxiliaries, but exercise the Visible
	// machinery by projecting onto {b} anyway.
	spec := netsim.Spec{Name: "rb", Procs: []netsim.Proc{{
		Name: "rb",
		Body: func(c *netsim.Ctx) {
			bit, ok := c.Flip()
			if !ok {
				return
			}
			c.Send("b", value.Bool(bit))
		},
	}}}
	d := desc.MustNew("rb", fn.OnChan(fn.RMap, "b"), fn.ConstTraceFn(seq.Of(value.T)))
	c := Conformance{
		Name:         "rb",
		Spec:         spec,
		Problem:      solver.NewProblem(d, map[string][]value.Value{"b": {value.T, value.F}}, 3),
		Visible:      trace.NewChanSet("b"),
		LenCap:       3,
		MaxDecisions: 8,
	}
	if err := c.CheckQuiescent(context.Background()); err != nil {
		t.Error(err)
	}
	if err := RandomRunsAreSmooth(context.Background(), c, []int64{1, 2, 3, 4}, netsim.Limits{}); err != nil {
		t.Error(err)
	}
	if err := SolutionsAreRealizable(context.Background(), c); err != nil {
		t.Error(err)
	}
}
