// Package specvet statically analyzes eqlang programs against the
// paper's theorems before they reach the solver. The headline results
// are *static* facts about descriptions — Theorem 1's hypothesis is a
// disjoint-support check, Theorems 5/6 give syntactic preconditions for
// variable elimination — so a spec can be classified at compile time:
// which descriptions admit the prefix-only smoothness check, which
// channels are eliminable, and which constructions are vacuous or
// unsound. Each finding carries a rule ID, a severity, a source
// position and (where a repair is mechanical) a fix hint.
//
// The rule set (see DESIGN.md for the theorem mapping):
//
//	parse-error, compile-error  (error)   the program does not compile
//	undefined-channel           (error)   channel read without an alphabet
//	support-mismatch            (error)   a side reads outside its declared support
//	growth-bound                (error)   a side exceeds its declared growth bound
//	unused-alphabet             (warning) alphabet channel no description reads
//	duplicate-desc              (warning) two descriptions share a left side
//	divergent-desc              (warning) pointwise v = A·v+B has no alphabet fixpoint
//	thm1-independent            (info)    Theorem 1 applies (prefix-only check)
//	eliminable                  (info)    channel eliminable by Theorems 5/6
//	not-eliminable              (info)    defining-shaped desc fails the Thm 5/6 side conditions
package specvet

import (
	"fmt"
	"sort"
	"strings"

	"smoothproc/internal/desc"
	"smoothproc/internal/eqlang"
	"smoothproc/internal/fn"
	"smoothproc/internal/specplan"
	"smoothproc/internal/trace"
	"smoothproc/internal/value"
)

// Severity grades a finding. Errors make a spec unusable (the service
// rejects it with 400); warnings flag likely mistakes the solver will
// happily search anyway; infos are theorem classifications.
type Severity string

// The severities, ordered error > warning > info.
const (
	SevError   Severity = "error"
	SevWarning Severity = "warning"
	SevInfo    Severity = "info"
)

// rank orders severities for sorting (most severe first).
func (s Severity) rank() int {
	switch s {
	case SevError:
		return 0
	case SevWarning:
		return 1
	default:
		return 2
	}
}

// Diagnostic is one positioned finding.
type Diagnostic struct {
	Rule     string   `json:"rule"`
	Severity Severity `json:"severity"`
	Line     int      `json:"line"`
	Col      int      `json:"col"`
	Message  string   `json:"message"`
	Hint     string   `json:"hint,omitempty"`
}

func (d Diagnostic) String() string {
	s := fmt.Sprintf("%d:%d: %s [%s] %s", d.Line, d.Col, d.Severity, d.Rule, d.Message)
	if d.Hint != "" {
		s += fmt.Sprintf(" (hint: %s)", d.Hint)
	}
	return s
}

// ElimVerdict is the machine-readable Theorems 5/6 verdict for one
// defining-shaped description b ⟵ h: whether channel b can be
// eliminated through it, and if not, which side condition blocks it.
// Unlike the info diagnostics (whose messages are prose), the verdict
// carries the system index desc.Eliminate needs, so tools — the
// service's delta-solve endpoint — can act on it without parsing text.
type ElimVerdict struct {
	Channel    string `json:"channel"`
	Desc       string `json:"desc"`
	Index      int    `json:"index"`
	Eliminable bool   `json:"eliminable"`
	Reason     string `json:"reason,omitempty"`
}

// Result is the analysis of one spec.
type Result struct {
	Findings []Diagnostic `json:"findings"`
	// Eliminations lists the Theorems 5/6 verdicts, one per
	// defining-shaped description, in system order.
	Eliminations []ElimVerdict `json:"eliminations,omitempty"`
	// Plan is the static search-cost analysis at the spec's declared
	// depth, nil when compilation failed. The service reuses it for
	// admission control; the Nodes/MinNodes methods answer any depth.
	Plan *specplan.Plan `json:"plan,omitempty"`
	// Program is the compiled program, nil when compilation failed (in
	// which case Findings holds exactly one error diagnostic).
	Program *eqlang.Program `json:"-"`
}

// Eliminable returns the positive verdict for the given channel, if any
// defining description admits its elimination.
func (r Result) Eliminable(channel string) (ElimVerdict, bool) {
	for _, v := range r.Eliminations {
		if v.Channel == channel && v.Eliminable {
			return v, true
		}
	}
	return ElimVerdict{}, false
}

// HasErrors reports whether any finding is an error.
func (r Result) HasErrors() bool {
	for _, d := range r.Findings {
		if d.Severity == SevError {
			return true
		}
	}
	return false
}

// Counts returns the number of errors, warnings and infos.
func (r Result) Counts() (errs, warns, infos int) {
	for _, d := range r.Findings {
		switch d.Severity {
		case SevError:
			errs++
		case SevWarning:
			warns++
		default:
			infos++
		}
	}
	return
}

// Text renders the findings one per line, prefixed with name (usually
// the file path), in the stable order Vet produced them.
func (r Result) Text(name string) string {
	var b strings.Builder
	for _, d := range r.Findings {
		fmt.Fprintf(&b, "%s:%s\n", name, d)
	}
	if len(r.Findings) == 0 {
		fmt.Fprintf(&b, "%s: clean\n", name)
	}
	if r.Plan != nil {
		fmt.Fprintf(&b, "%s: plan: %s\n", name, r.Plan.Summary())
	}
	return b.String()
}

// maxProbeTraces bounds the sample set used for support/growth probing.
const maxProbeTraces = 256

// probeDepth is how deep the probe traces go.
const probeDepth = 3

// Vet parses, compiles and analyzes one eqlang source.
func Vet(src string) Result {
	var r Result
	f, err := eqlang.Parse(src)
	if err != nil {
		r.Findings = append(r.Findings, errDiag("parse-error", err))
		return r
	}

	alpha := map[string]eqlang.AlphabetStmt{}
	for _, a := range f.Alphabets {
		if _, dup := alpha[a.Channel]; !dup {
			alpha[a.Channel] = a
		}
	}
	refs := channelRefs(f)

	// undefined-channel: a referenced channel with no alphabet cannot be
	// branched on; this is also a compile error, but the AST gives the
	// exact use position rather than the enclosing description.
	undefined := false
	for _, ch := range sortedKeys(refs) {
		if _, ok := alpha[ch]; ok {
			continue
		}
		undefined = true
		use := refs[ch][0]
		r.Findings = append(r.Findings, Diagnostic{
			Rule: "undefined-channel", Severity: SevError,
			Line: use.Line, Col: use.Col,
			Message: fmt.Sprintf("channel %s is read but has no alphabet statement", ch),
			Hint:    fmt.Sprintf("add `alphabet %s = {...}` (the solver needs finite branching data)", ch),
		})
	}
	if undefined {
		sortFindings(r.Findings)
		return r
	}

	p, err := eqlang.Compile(f)
	if err != nil {
		r.Findings = append(r.Findings, errDiag("compile-error", err))
		return r
	}
	r.Program = p
	r.Plan = specplan.Analyze(p.System, p.Alphabet, p.Depth)

	r.Findings = append(r.Findings, vetUnusedAlphabets(f, refs)...)
	r.Findings = append(r.Findings, vetDuplicateDescs(f)...)
	r.Findings = append(r.Findings, vetDivergentDescs(f, p)...)
	samples := probeTraces(p.Alphabet, probeDepth, maxProbeTraces)
	r.Findings = append(r.Findings, vetDeclaredContracts(f, p, samples)...)
	r.Findings = append(r.Findings, vetTheorem1(f, p)...)
	elimDiags, verdicts := vetElimination(f, p)
	r.Findings = append(r.Findings, elimDiags...)
	r.Eliminations = verdicts
	sortFindings(r.Findings)
	return r
}

// errDiag turns a compile/parse error into a positioned diagnostic.
func errDiag(rule string, err error) Diagnostic {
	d := Diagnostic{Rule: rule, Severity: SevError, Line: 1, Col: 1, Message: err.Error()}
	if e, ok := err.(*eqlang.Error); ok {
		d.Line, d.Message = e.Line, e.Msg
		if e.Col > 0 {
			d.Col = e.Col
		}
	}
	return d
}

// channelRefs walks every description expression and records where each
// channel is read.
func channelRefs(f *eqlang.File) map[string][]*eqlang.ChanExpr {
	refs := map[string][]*eqlang.ChanExpr{}
	for _, d := range f.Descs {
		for _, side := range []eqlang.Expr{d.Lhs, d.Rhs} {
			walkExpr(side, func(e eqlang.Expr) {
				if c, ok := e.(*eqlang.ChanExpr); ok {
					refs[c.Name] = append(refs[c.Name], c)
				}
			})
		}
	}
	return refs
}

// walkExpr visits e and its subexpressions in source order.
func walkExpr(e eqlang.Expr, visit func(eqlang.Expr)) {
	visit(e)
	switch n := e.(type) {
	case *eqlang.CallExpr:
		for _, a := range n.Args {
			walkExpr(a, visit)
		}
	case *eqlang.LinearExpr:
		walkExpr(n.Inner, visit)
	case *eqlang.ConcatExpr:
		walkExpr(n.Rest, visit)
	}
}

// vetUnusedAlphabets flags alphabets no description reads: the solver
// still branches over their events, so every junk channel multiplies the
// tree's fan-out without constraining anything.
func vetUnusedAlphabets(f *eqlang.File, refs map[string][]*eqlang.ChanExpr) []Diagnostic {
	var ds []Diagnostic
	for _, a := range f.Alphabets {
		if len(refs[a.Channel]) > 0 {
			continue
		}
		ds = append(ds, Diagnostic{
			Rule: "unused-alphabet", Severity: SevWarning,
			Line: a.Line, Col: a.Col,
			Message: fmt.Sprintf("alphabet %s is declared but no description reads the channel", a.Channel),
			Hint:    "remove it, or reference the channel: unconstrained channels still branch the search",
		})
	}
	return ds
}

// vetDuplicateDescs flags descriptions whose left sides render
// identically: the later one shadows nothing — both constrain the same
// history, which is almost always a copy-paste slip.
func vetDuplicateDescs(f *eqlang.File) []Diagnostic {
	var ds []Diagnostic
	seen := map[string]eqlang.DescStmt{}
	for _, d := range f.Descs {
		key := exprString(d.Lhs)
		if first, dup := seen[key]; dup {
			ds = append(ds, Diagnostic{
				Rule: "duplicate-desc", Severity: SevWarning,
				Line: d.Line, Col: d.Col,
				Message: fmt.Sprintf("%s has the same left side %q as %s (line %d)", d.Name, key, first.Name, first.Line),
				Hint:    "both equations constrain the same history; merge them or fix the left side",
			})
			continue
		}
		seen[key] = d
	}
	return ds
}

// vetDivergentDescs flags c ⟵ A·c + B when no alphabet value is a
// fixpoint of v = A·v + B: the first element of any nonempty history on
// c would need to be one, so the description forces hist(c) = ⊥ and the
// equation is vacuous over its declared alphabet.
func vetDivergentDescs(f *eqlang.File, p *eqlang.Program) []Diagnostic {
	var ds []Diagnostic
	for _, d := range f.Descs {
		lhs, ok := d.Lhs.(*eqlang.ChanExpr)
		if !ok {
			continue
		}
		lin, ok := d.Rhs.(*eqlang.LinearExpr)
		if !ok {
			continue
		}
		inner, ok := lin.Inner.(*eqlang.ChanExpr)
		if !ok || inner.Name != lhs.Name {
			continue
		}
		if lin.A == 1 && lin.B == 0 {
			continue
		}
		if hasLinearFixpoint(p.Alphabet[lhs.Name], lin.A, lin.B) {
			continue
		}
		ds = append(ds, Diagnostic{
			Rule: "divergent-desc", Severity: SevWarning,
			Line: d.Line, Col: d.Col,
			Message: fmt.Sprintf("%s: no value in alphabet %s satisfies v = %d*v%+d; only hist(%s) = ⊥ solves it",
				d.Name, lhs.Name, lin.A, lin.B, lhs.Name),
			Hint: "widen the alphabet to include a fixpoint, or drop the vacuous equation",
		})
	}
	return ds
}

func hasLinearFixpoint(vals []value.Value, a, b int64) bool {
	for _, v := range vals {
		n, ok := v.AsInt()
		if ok && n == a*n+b {
			return true
		}
	}
	return false
}

// vetDeclaredContracts probes each compiled side against its declared
// support and growth bound — the metadata Theorem 1 classification and
// the elimination conditions rely on, so a lie here would silently
// unsound the info-level rules (and the solver's fast path).
//
// The support probe is compatibility-based, not equality-based: it
// requires f(t↾supp f) ⊑ f(t). An ω-constant like `repeat [x]` declares
// an empty support yet legitimately grows with the probe length of its
// argument, so equality would false-positive; a side actually reading a
// channel outside its support disagrees in content, which ⊑ catches.
func vetDeclaredContracts(f *eqlang.File, p *eqlang.Program, samples []trace.Trace) []Diagnostic {
	var ds []Diagnostic
	for i, d := range p.System.Descs {
		stmt := f.Descs[i]
		for side, tf := range map[string]fn.TraceFn{"left": d.F, "right": d.G} {
			if msg := probeSupport(tf, samples); msg != "" {
				ds = append(ds, Diagnostic{
					Rule: "support-mismatch", Severity: SevError,
					Line: stmt.Line, Col: stmt.Col,
					Message: fmt.Sprintf("%s: %s side: %s", d.Name, side, msg),
					Hint:    "the declared support feeds Theorem 1 and elimination checks; fix the combinator's Support",
				})
			}
			if err := fn.CheckTraceFnGrowth(tf, samples); err != nil {
				ds = append(ds, Diagnostic{
					Rule: "growth-bound", Severity: SevError,
					Line: stmt.Line, Col: stmt.Col,
					Message: fmt.Sprintf("%s: %s side: %v", d.Name, side, err),
				})
			}
		}
	}
	return ds
}

// probeSupport returns a description of the first support violation, or
// "" if the side honors its declaration on all samples. Exact functions
// must be invariant under projection to their support; ω-approximations
// (fn.TraceFn.Omega) legitimately shorten under projection, so only
// compatibility is required of them.
func probeSupport(tf fn.TraceFn, samples []trace.Trace) string {
	for _, t := range samples {
		proj := t.Project(tf.Support)
		whole, onSupp := tf.Apply(t), tf.Apply(proj)
		if tf.Omega {
			if !onSupp.Leq(whole) {
				return fmt.Sprintf("ω-approximation on support projection %s does not approximate the output on %s", proj, t)
			}
			continue
		}
		if !whole.Equal(onSupp) {
			return fmt.Sprintf("output on %s differs from the output on its support projection %s (declared support %v)",
				t, proj, tf.Support.Names())
		}
	}
	return ""
}

// vetTheorem1 classifies each description — and the combined system the
// solver actually searches — by Theorem 1's hypothesis supp(f) ∩
// supp(g) = ∅. Independent descriptions admit the prefix-only
// smoothness characterization, which the solver exploits (see
// solver.Problem.Thm1).
func vetTheorem1(f *eqlang.File, p *eqlang.Program) []Diagnostic {
	var ds []Diagnostic
	for i, d := range p.System.Descs {
		if !d.Independent() {
			continue
		}
		stmt := f.Descs[i]
		ds = append(ds, Diagnostic{
			Rule: "thm1-independent", Severity: SevInfo,
			Line: stmt.Line, Col: stmt.Col,
			Message: fmt.Sprintf("%s: supports %v and %v are disjoint — eligible for the prefix-only smoothness check (Theorem 1)",
				d.Name, d.F.Support.Names(), d.G.Support.Names()),
		})
	}
	if combined := p.System.Combined(); combined.Independent() {
		first := f.Descs[0]
		msg := "combined system: supports are disjoint — the solver takes the Theorem 1 fast path"
		if !combined.Thm1Eligible() {
			msg = "combined system: supports are disjoint, but the left side is an ω-approximation — the solver keeps the full edge check"
		}
		ds = append(ds, Diagnostic{
			Rule: "thm1-independent", Severity: SevInfo,
			Line: first.Line, Col: first.Col,
			Message: msg,
		})
	}
	return ds
}

// vetElimination reports, for every defining-shaped description b ⟵ h
// (left side exactly the history of one channel), whether channel b can
// be eliminated by Theorems 5/6 — and if not, which side condition
// blocks it. Besides the prose diagnostics it returns the structured
// verdicts consumers act on (Result.Eliminations).
func vetElimination(f *eqlang.File, p *eqlang.Program) ([]Diagnostic, []ElimVerdict) {
	var ds []Diagnostic
	var vs []ElimVerdict
	if len(p.System.Descs) < 2 {
		return ds, vs
	}
	for i, d := range p.System.Descs {
		lhs, ok := f.Descs[i].Lhs.(*eqlang.ChanExpr)
		if !ok {
			continue
		}
		b := lhs.Name
		stmt := f.Descs[i]
		if _, err := desc.Eliminate(p.System, i, b); err != nil {
			ds = append(ds, Diagnostic{
				Rule: "not-eliminable", Severity: SevInfo,
				Line: stmt.Line, Col: stmt.Col,
				Message: fmt.Sprintf("channel %s is not eliminable via %s: %v", b, d.Name, err),
			})
			vs = append(vs, ElimVerdict{Channel: b, Desc: d.Name, Index: i, Reason: err.Error()})
			continue
		}
		ds = append(ds, Diagnostic{
			Rule: "eliminable", Severity: SevInfo,
			Line: stmt.Line, Col: stmt.Col,
			Message: fmt.Sprintf("channel %s can be eliminated using %s (Theorems 5/6); the reduced system has the same solutions on the remaining channels", b, d.Name),
		})
		vs = append(vs, ElimVerdict{Channel: b, Desc: d.Name, Index: i, Eliminable: true})
	}
	return ds, vs
}

// probeTraces enumerates traces over the alphabet breadth-first up to
// the given depth, capped at max traces. Channels are visited in sorted
// order so the sample set is deterministic.
func probeTraces(alphabet map[string][]value.Value, depth, max int) []trace.Trace {
	chans := sortedKeys(alphabet)
	var events []trace.Event
	for _, c := range chans {
		for _, v := range alphabet[c] {
			events = append(events, trace.E(c, v))
		}
	}
	samples := []trace.Trace{trace.Empty}
	level := []trace.Trace{trace.Empty}
	for d := 0; d < depth && len(samples) < max; d++ {
		var next []trace.Trace
		for _, t := range level {
			for _, e := range events {
				if len(samples) >= max {
					return samples
				}
				ext := t.Append(e)
				samples = append(samples, ext)
				next = append(next, ext)
			}
		}
		level = next
	}
	return samples
}

// exprString renders an expression for duplicate detection and
// diagnostics, mirroring the surface syntax.
func exprString(e eqlang.Expr) string {
	switch n := e.(type) {
	case *eqlang.ChanExpr:
		return n.Name
	case *eqlang.CallExpr:
		args := make([]string, len(n.Args))
		for i, a := range n.Args {
			args[i] = exprString(a)
		}
		return fmt.Sprintf("%s(%s)", n.Fn, strings.Join(args, ", "))
	case *eqlang.ConstExpr:
		return valsString(n.Vals)
	case *eqlang.RepeatExpr:
		return "repeat " + valsString(n.Period)
	case *eqlang.LinearExpr:
		s := exprString(n.Inner)
		if n.A != 1 {
			s = fmt.Sprintf("%d*%s", n.A, s)
		}
		if n.B != 0 {
			s = fmt.Sprintf("%s%+d", s, n.B)
		}
		return s
	case *eqlang.ConcatExpr:
		return fmt.Sprintf("%s ; %s", valsString(n.Prefix), exprString(n.Rest))
	default:
		return fmt.Sprintf("%T", e)
	}
}

func valsString(vals []value.Value) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = v.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// sortFindings orders diagnostics by position, then severity, then rule
// — a stable order for goldens and the service response.
func sortFindings(ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Severity != b.Severity {
			return a.Severity.rank() < b.Severity.rank()
		}
		return a.Rule < b.Rule
	})
}

func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
