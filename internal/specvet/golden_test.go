package specvet

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"smoothproc/internal/specplan"
)

// specReport is the JSON golden entry for one spec file — the same
// shape cmd/specvet -json emits.
type specReport struct {
	File         string         `json:"file"`
	Findings     []Diagnostic   `json:"findings"`
	Eliminations []ElimVerdict  `json:"eliminations,omitempty"`
	Plan         *specplan.Plan `json:"plan,omitempty"`
}

// vetAllSpecs runs the analyzer over every file in specs/.
func vetAllSpecs(t *testing.T) []specReport {
	t.Helper()
	files, err := filepath.Glob(filepath.Join("..", "..", "specs", "*.eq"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no specs found: %v", err)
	}
	sort.Strings(files)
	var reports []specReport
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		r := Vet(string(src))
		if r.HasErrors() {
			t.Errorf("%s: shipped spec has vet errors: %v", f, r.Findings)
		}
		if r.Program == nil {
			t.Errorf("%s: shipped spec failed to compile", f)
		}
		if r.Plan == nil {
			t.Errorf("%s: shipped spec has no static plan", f)
		} else if r.Plan.VerifyError != "" {
			t.Errorf("%s: bytecode verifier rejected a compiled side: %s", f, r.Plan.VerifyError)
		}
		reports = append(reports, specReport{File: filepath.Base(f), Findings: r.Findings, Eliminations: r.Eliminations, Plan: r.Plan})
	}
	return reports
}

// TestSpecsGolden pins the analyzer's classification of every shipped
// spec. Regenerate with SMOOTHPROC_UPDATE_GOLDEN=1.
func TestSpecsGolden(t *testing.T) {
	reports := vetAllSpecs(t)

	var text strings.Builder
	for _, rep := range reports {
		r := Result{Findings: rep.Findings, Plan: rep.Plan}
		text.WriteString(r.Text(rep.File))
	}
	jsonBytes, err := json.MarshalIndent(reports, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	jsonBytes = append(jsonBytes, '\n')

	for _, g := range []struct {
		path string
		got  string
	}{
		{filepath.Join("testdata", "specs_vet.txt"), text.String()},
		{filepath.Join("testdata", "specs_vet.json"), string(jsonBytes)},
	} {
		if os.Getenv("SMOOTHPROC_UPDATE_GOLDEN") != "" {
			if err := os.WriteFile(g.path, []byte(g.got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(g.path)
		if err != nil {
			t.Fatalf("missing golden %s (set SMOOTHPROC_UPDATE_GOLDEN=1 to create): %v", g.path, err)
		}
		if string(want) != g.got {
			t.Errorf("%s drifted:\n--- want ---\n%s\n--- got ---\n%s", g.path, want, g.got)
		}
	}
}

// TestSpecsClassified asserts the acceptance-level facts the goldens
// encode: every spec is classified, and at least one is flagged
// Theorem-1 independent at the system level (kahn-buffer.eq, whose
// solve takes the fast path — asserted in the solver and root tests).
func TestSpecsClassified(t *testing.T) {
	reports := vetAllSpecs(t)
	indep := map[string]bool{}
	for _, rep := range reports {
		for _, d := range rep.Findings {
			if d.Rule == "thm1-independent" {
				indep[rep.File] = true
			}
		}
	}
	if !indep["kahn-buffer.eq"] {
		t.Errorf("kahn-buffer.eq not flagged thm1-independent; flagged: %v", indep)
	}
}
