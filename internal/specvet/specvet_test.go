package specvet

import (
	"strings"
	"testing"

	"smoothproc/internal/eqlang"
	"smoothproc/internal/fn"
	"smoothproc/internal/seq"
	"smoothproc/internal/trace"
	"smoothproc/internal/value"
)

func corpusSources(t *testing.T) []string {
	t.Helper()
	srcs := eqlang.Corpus()
	if len(srcs) == 0 {
		t.Fatal("empty corpus")
	}
	return srcs
}

// has reports whether the result contains a finding with the rule whose
// message contains frag.
func has(r Result, rule, frag string) bool {
	for _, d := range r.Findings {
		if d.Rule == rule && strings.Contains(d.Message, frag) {
			return true
		}
	}
	return false
}

func TestRuleFindings(t *testing.T) {
	cases := []struct {
		name string
		src  string
		rule string
		sev  Severity
		frag string
	}{
		{
			"parse error",
			"desc d <- <-\n",
			"parse-error", SevError, "expected an expression",
		},
		{
			"compile error",
			"alphabet c = ints 0 .. 1\ndesc c <- mystery(c)\n",
			"compile-error", SevError, "unknown function",
		},
		{
			"undefined channel",
			"alphabet c = ints 0 .. 1\ndesc c <- even(d)\n",
			"undefined-channel", SevError, "channel d",
		},
		{
			"unused alphabet",
			"alphabet c = ints 0 .. 1\nalphabet junk = ints 0 .. 9\ndesc c <- c\n",
			"unused-alphabet", SevWarning, "alphabet junk",
		},
		{
			"duplicate desc",
			"alphabet c = ints 0 .. 1\ndesc c <- [0]\ndesc c <- [1]\n",
			"duplicate-desc", SevWarning, `left side "c"`,
		},
		{
			"divergent desc",
			"alphabet d = ints 0 .. 3\ndesc d <- 2*d + 1\n",
			"divergent-desc", SevWarning, "v = 2*v+1",
		},
		{
			"thm1 independent",
			"alphabet a = ints 0 .. 1\nalphabet e = ints 0 .. 1\ndesc e <- a\n",
			"thm1-independent", SevInfo, "disjoint",
		},
		{
			"eliminable",
			"alphabet b = {0}\nalphabet c = {0}\ndesc b <- [0]\ndesc c <- b\n",
			"eliminable", SevInfo, "channel b",
		},
		{
			// Condition (1) of Theorems 5/6: the remaining left side
			// even(b) reads b, so b cannot be eliminated.
			"not eliminable",
			"alphabet b = {0}\nalphabet c = {0}\ndesc b <- [0]\ndesc even(b) <- c\n",
			"not-eliminable", SevInfo, "channel b",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := Vet(tc.src)
			if !has(r, tc.rule, tc.frag) {
				t.Fatalf("Vet(%q): rule %s with %q not found in %v", tc.src, tc.rule, tc.frag, r.Findings)
			}
			for _, d := range r.Findings {
				if d.Rule == tc.rule && d.Severity != tc.sev {
					t.Errorf("rule %s severity = %s, want %s", tc.rule, d.Severity, tc.sev)
				}
				if d.Rule == tc.rule && (d.Line <= 0 || d.Col <= 0) {
					t.Errorf("rule %s finding lacks a position: %+v", tc.rule, d)
				}
			}
		})
	}
}

// TestDivergentFixpointSilent: 2*d over an alphabet containing 0 has
// the fixpoint 0 = 2·0, so the rule must stay quiet.
func TestDivergentFixpointSilent(t *testing.T) {
	r := Vet("alphabet d = ints 0 .. 3\ndesc d <- 2*d\n")
	if has(r, "divergent-desc", "") {
		t.Errorf("fixpoint-bearing description flagged divergent: %v", r.Findings)
	}
}

// TestSupportProbeCompat: an ω-constant (`repeat`) declares an empty
// support yet legitimately grows with its argument's length; the
// compatibility-based probe must not flag it.
func TestSupportProbeCompat(t *testing.T) {
	r := Vet("alphabet b = {T}\ndesc true(b) <- repeat [T]\n")
	if has(r, "support-mismatch", "") {
		t.Errorf("repeat falsely flagged: %v", r.Findings)
	}
	if r.HasErrors() {
		t.Errorf("unexpected errors: %v", r.Findings)
	}
}

// TestProbeSupportCatchesLie: a function that reads channel x while
// declaring an empty support must be caught by the probe.
func TestProbeSupportCatchesLie(t *testing.T) {
	liar := fn.TraceFn{
		Name:    "liar",
		Out:     1,
		Support: trace.NewChanSet(), // claims to read nothing
		Apply: func(t trace.Trace) fn.Tuple {
			return fn.Tuple{t.Channel("x")} // reads x anyway
		},
	}
	samples := probeTraces(map[string][]value.Value{"x": value.Ints(0, 1)}, 2, 64)
	if msg := probeSupport(liar, samples); msg == "" {
		t.Fatal("support probe missed a function reading outside its declared support")
	}
	honest := fn.ChanFn("x")
	if msg := probeSupport(honest, samples); msg != "" {
		t.Fatalf("honest function flagged: %s", msg)
	}
}

// TestVetCorpus: the analyzer must never panic and must classify every
// corpus entry (the same property fuzzing leans on), and the corpus
// collectively triggers every rule a spec author can hit from source.
// support-mismatch and growth-bound guard the function library's
// declared contracts, so an honest library makes them unreachable from
// spec text — the corpus still stresses their probe path.
func TestVetCorpus(t *testing.T) {
	seen := map[string]int{}
	for i, src := range corpusSources(t) {
		r := Vet(src)
		if r.Program == nil && !r.HasErrors() {
			t.Errorf("corpus[%d]: no program and no errors: %q", i, src)
		}
		for _, d := range r.Findings {
			seen[d.Rule]++
			if d.Line <= 0 || d.Col <= 0 {
				t.Errorf("corpus[%d]: rule %s finding lacks a position: %+v", i, d.Rule, d)
			}
		}
	}
	sourceTriggerable := []string{
		"parse-error", "compile-error", "undefined-channel",
		"unused-alphabet", "duplicate-desc", "divergent-desc",
		"thm1-independent", "eliminable", "not-eliminable",
	}
	for _, rule := range sourceTriggerable {
		if seen[rule] == 0 {
			t.Errorf("corpus never triggers rule %s", rule)
		}
	}
	for rule := range seen {
		switch rule {
		case "support-mismatch", "growth-bound":
			t.Errorf("corpus triggered %s: the shipped library violates a declared contract", rule)
		}
	}
}

func TestResultHelpers(t *testing.T) {
	r := Vet("alphabet c = ints 0 .. 1\nalphabet junk = {9}\ndesc c <- even(d)\n")
	if !r.HasErrors() {
		t.Fatal("expected errors")
	}
	errs, _, _ := r.Counts()
	if errs == 0 {
		t.Error("Counts reported no errors")
	}
	if !strings.Contains(r.Text("x.eq"), "x.eq:") {
		t.Error("Text lacks the file prefix")
	}
	clean := Vet("alphabet c = {0}\ndesc c <- c\n")
	if got := clean.Text("y.eq"); !strings.HasPrefix(got, "y.eq: clean\n") || !strings.Contains(got, "y.eq: plan: nodes(") {
		t.Errorf("clean render = %q, want a clean line followed by a plan line", got)
	}
}

func TestSupportMismatchDoc(t *testing.T) {
	// seq import keeps the example below honest: a width-1 constant fn
	// has growth len(vals); the compiled combinators respect it, so no
	// shipped spec triggers growth-bound (asserted by the goldens).
	f := fn.ConstTraceFn(seq.OfInts(1, 2))
	samples := probeTraces(map[string][]value.Value{"c": value.Ints(0)}, 1, 8)
	if err := fn.CheckTraceFnGrowth(f, samples); err != nil {
		t.Errorf("constant fn violates its growth bound: %v", err)
	}
}

func TestElimVerdicts(t *testing.T) {
	src := `
alphabet b = {0}
alphabet c = {1}
alphabet d = {0, 1}
desc even(d) <- b
desc odd(d)  <- c
desc b <- [0]
desc c <- [1]
`
	r := Vet(src)
	if r.HasErrors() {
		t.Fatalf("vet errors: %v", r.Findings)
	}
	v, ok := r.Eliminable("b")
	if !ok || v.Index != 2 || v.Desc == "" || v.Reason != "" {
		t.Fatalf("verdict for b: %+v (ok %v)", v, ok)
	}
	if _, ok := r.Eliminable("d"); ok {
		t.Fatal("d has no defining description yet reports eliminable")
	}
	// Every defining-shaped description gets a verdict, eliminable or not.
	if len(r.Eliminations) != 2 {
		t.Fatalf("eliminations %+v, want verdicts for b and c", r.Eliminations)
	}
	for _, v := range r.Eliminations {
		if !v.Eliminable {
			t.Errorf("%s via %s unexpectedly blocked: %s", v.Channel, v.Desc, v.Reason)
		}
	}
}
