package specvet

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunCLIText(t *testing.T) {
	spec := filepath.Join("..", "..", "specs", "kahn-buffer.eq")
	var out, errOut bytes.Buffer
	if code := RunCLI("specvet", []string{spec}, nil, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "thm1-independent") {
		t.Errorf("output lacks the independence classification:\n%s", out.String())
	}
}

func TestRunCLIJSON(t *testing.T) {
	spec := filepath.Join("..", "..", "specs", "kahn-buffer.eq")
	var out bytes.Buffer
	if code := RunCLI("specvet", []string{"-json", spec}, nil, &out, &out); code != 0 {
		t.Fatalf("exit = %d: %s", code, out.String())
	}
	var reports []FileReport
	if err := json.Unmarshal(out.Bytes(), &reports); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if len(reports) != 1 || len(reports[0].Findings) == 0 {
		t.Errorf("unexpected reports: %+v", reports)
	}
}

func TestRunCLIErrors(t *testing.T) {
	in := strings.NewReader("desc d <- ?\n")
	var out, errOut bytes.Buffer
	if code := RunCLI("specvet", []string{"-"}, in, &out, &errOut); code != 1 {
		t.Errorf("error findings should exit 1, got %d", code)
	}
	if !strings.Contains(out.String(), "parse-error") {
		t.Errorf("output lacks the parse error:\n%s", out.String())
	}
	if code := RunCLI("specvet", nil, nil, &out, &errOut); code != 2 {
		t.Errorf("no-args should exit 2, got %d", code)
	}
	if code := RunCLI("specvet", []string{"no-such-file.eq"}, nil, &out, &errOut); code != 1 {
		t.Errorf("unreadable file should exit 1, got %d", code)
	}
}
