package specvet

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"smoothproc/internal/specplan"
)

// FileReport pairs a file name with its findings — the JSON output
// shape of cmd/specvet and `smoothsolve vet`.
type FileReport struct {
	File         string         `json:"file"`
	Findings     []Diagnostic   `json:"findings"`
	Eliminations []ElimVerdict  `json:"eliminations,omitempty"`
	Plan         *specplan.Plan `json:"plan,omitempty"`
}

// RunCLI implements the vet command line shared by cmd/specvet and
// `smoothsolve vet`: analyze each named spec (or stdin as "-") and
// render the findings as text or JSON. The exit status is 1 when any
// file has error findings, 2 on usage errors, 0 otherwise.
func RunCLI(prog string, args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet(prog, flag.ContinueOnError)
	fs.SetOutput(stderr)
	asJSON := fs.Bool("json", false, "emit findings as JSON")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintf(stderr, "usage: %s [-json] file.eq...  (use - for stdin)\n", prog)
		return 2
	}

	failed := false
	var reports []FileReport
	for _, path := range fs.Args() {
		var src []byte
		var err error
		if path == "-" {
			src, err = io.ReadAll(stdin)
		} else {
			src, err = os.ReadFile(path)
		}
		if err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", prog, err)
			return 1
		}
		r := Vet(string(src))
		if r.HasErrors() {
			failed = true
		}
		if *asJSON {
			reports = append(reports, FileReport{File: path, Findings: r.Findings, Eliminations: r.Eliminations, Plan: r.Plan})
			continue
		}
		fmt.Fprint(stdout, r.Text(path))
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", prog, err)
			return 1
		}
	}
	if failed {
		return 1
	}
	return 0
}
