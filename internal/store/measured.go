package store

import (
	"context"
	"errors"

	"smoothproc/internal/metrics"
)

// Measured wraps a Store with per-kind counters for /metrics: puts,
// gets, hits (found), misses (not found), corrupt reads, and payload
// bytes in each direction. Stat/List/Close pass through uncounted —
// they are introspection, not traffic.
type Measured struct {
	inner Store
	kinds map[Kind]*kindCounters
}

type kindCounters struct {
	puts, gets, hits, misses, corrupt, deletes metrics.Counter
	bytesIn, bytesOut                          metrics.Counter
}

// KindStats is a point-in-time view of one kind's counters.
type KindStats struct {
	Puts     int64 `json:"puts"`
	Gets     int64 `json:"gets"`
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
	Corrupt  int64 `json:"corrupt"`
	Deletes  int64 `json:"deletes"`
	BytesIn  int64 `json:"bytes_in"`
	BytesOut int64 `json:"bytes_out"`
}

// NewMeasured wraps s. The counter set is fixed over the closed kinds.
func NewMeasured(s Store) *Measured {
	m := &Measured{inner: s, kinds: make(map[Kind]*kindCounters, len(Kinds()))}
	for _, k := range Kinds() {
		m.kinds[k] = &kindCounters{}
	}
	return m
}

// Unwrap returns the underlying store (GC and backup tooling want the
// raw backend).
func (m *Measured) Unwrap() Store { return m.inner }

// KindStats reads one kind's counters.
func (m *Measured) KindStats(k Kind) KindStats {
	c, ok := m.kinds[k]
	if !ok {
		return KindStats{}
	}
	return KindStats{
		Puts:     c.puts.Load(),
		Gets:     c.gets.Load(),
		Hits:     c.hits.Load(),
		Misses:   c.misses.Load(),
		Corrupt:  c.corrupt.Load(),
		Deletes:  c.deletes.Load(),
		BytesIn:  c.bytesIn.Load(),
		BytesOut: c.bytesOut.Load(),
	}
}

// Put implements Store.
func (m *Measured) Put(ctx context.Context, kind Kind, key Key, data []byte) error {
	err := m.inner.Put(ctx, kind, key, data)
	if c, ok := m.kinds[kind]; ok && err == nil {
		c.puts.Inc()
		c.bytesIn.Add(int64(len(data)))
	}
	return err
}

// Get implements Store.
func (m *Measured) Get(ctx context.Context, kind Kind, key Key) ([]byte, error) {
	data, err := m.inner.Get(ctx, kind, key)
	if c, ok := m.kinds[kind]; ok {
		c.gets.Inc()
		var ce *CorruptError
		switch {
		case err == nil:
			c.hits.Inc()
			c.bytesOut.Add(int64(len(data)))
		case errors.Is(err, ErrNotFound):
			c.misses.Inc()
		case errors.As(err, &ce):
			c.corrupt.Inc()
		}
	}
	return data, err
}

// Stat implements Store.
func (m *Measured) Stat(ctx context.Context, kind Kind, key Key) (Info, error) {
	return m.inner.Stat(ctx, kind, key)
}

// List implements Store.
func (m *Measured) List(ctx context.Context, kind Kind) ([]Info, error) {
	return m.inner.List(ctx, kind)
}

// Delete implements Store.
func (m *Measured) Delete(ctx context.Context, kind Kind, key Key) error {
	err := m.inner.Delete(ctx, kind, key)
	if c, ok := m.kinds[kind]; ok && err == nil {
		c.deletes.Inc()
	}
	return err
}

// Close implements Store.
func (m *Measured) Close() error { return m.inner.Close() }
