package store

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// hammer backs the package's safe-for-concurrent-use claim on one
// backend: writers, readers, listers and deleters overlap on a shared
// key range, and every observed value must be intact — a Get either
// misses cleanly or returns exactly the bytes some Put wrote for that
// content address. Run with -race in the CI invariants job.
func hammer(t *testing.T, s Store) {
	t.Helper()
	ctx := context.Background()
	const goroutines = 8
	const perG = 60

	blobs := make([][]byte, 16)
	keys := make([]Key, 16)
	for i := range blobs {
		blobs[i] = []byte(fmt.Sprintf("blob-%d-payload", i))
		keys[i] = KeyOf(blobs[i])
	}
	kinds := Kinds()

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				n := (g + i) % len(blobs)
				kind := kinds[(g+i)%len(kinds)]
				switch i % 4 {
				case 0:
					if err := s.Put(ctx, kind, keys[n], blobs[n]); err != nil {
						t.Errorf("Put: %v", err)
						return
					}
				case 1:
					data, err := s.Get(ctx, kind, keys[n])
					if errors.Is(err, ErrNotFound) {
						continue
					}
					if err != nil {
						t.Errorf("Get: %v", err)
						return
					}
					if string(data) != string(blobs[n]) {
						t.Errorf("Get(%s) = %q, want %q", keys[n], data, blobs[n])
						return
					}
				case 2:
					if _, err := s.List(ctx, kind); err != nil {
						t.Errorf("List: %v", err)
						return
					}
				case 3:
					if err := s.Delete(ctx, kind, keys[n]); err != nil && !errors.Is(err, ErrNotFound) {
						t.Errorf("Delete: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	// The books must balance after the storm: everything still listed is
	// retrievable and content-addressed correctly.
	for _, kind := range kinds {
		infos, err := s.List(ctx, kind)
		if err != nil {
			t.Fatalf("final List(%s): %v", kind, err)
		}
		for _, in := range infos {
			data, err := s.Get(ctx, kind, in.Key)
			if err != nil {
				t.Fatalf("listed blob %s/%s unreadable: %v", kind, in.Key, err)
			}
			if KeyOf(data) != in.Key {
				t.Fatalf("blob %s/%s fails its own content address", kind, in.Key)
			}
		}
	}
}

func TestMemoryUnderRace(t *testing.T) {
	s := NewMemory()
	defer s.Close()
	hammer(t, s)
}

func TestDiskUnderRace(t *testing.T) {
	s, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	hammer(t, s)
}

func TestMeasuredUnderRace(t *testing.T) {
	s := NewMeasured(NewMemory())
	defer s.Close()
	hammer(t, s)
	// Counters must be coherent: every hit and miss was some Get.
	var gets, hits, misses int64
	for _, k := range Kinds() {
		st := s.KindStats(k)
		gets += st.Gets
		hits += st.Hits
		misses += st.Misses
	}
	if hits+misses != gets {
		t.Errorf("hits %d + misses %d ≠ gets %d", hits, misses, gets)
	}
}
