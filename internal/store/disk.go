package store

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Disk is the durable Store behind smoothd's -data-dir. Layout:
//
//	<dir>/<kind>/<key[:2]>/<key>
//
// — one file per object, fanned out over 256 prefix directories so no
// directory grows unbounded. Every file opens with a fixed header
// (magic, kind, payload SHA-256) that Get verifies before returning a
// byte; a blob that fails verification is reported as *CorruptError and
// never served. Writes go through a temp file in the same directory and
// an atomic rename, so a crash mid-Put leaves either the old object or
// none — never a torn one.
//
// Safe for concurrent use within one process (an RWMutex serializes
// writers; the rename makes cross-process readers safe too).
type Disk struct {
	dir string
	mu  sync.RWMutex
}

// diskMagic opens every object file: format name and version.
var diskMagic = []byte("SPOB1")

// NewDisk opens (creating if needed) a disk store rooted at dir.
func NewDisk(dir string) (*Disk, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty data dir")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create data dir: %w", err)
	}
	return &Disk{dir: dir}, nil
}

// Dir returns the store's root directory.
func (d *Disk) Dir() string { return d.dir }

func (d *Disk) path(kind Kind, key Key) string {
	return filepath.Join(d.dir, string(kind), string(key[:2]), string(key))
}

// frame wraps payload in the integrity header.
func frame(kind Kind, data []byte) []byte {
	sum := sha256.Sum256(data)
	out := make([]byte, 0, len(diskMagic)+1+len(kind)+len(sum)+8+len(data))
	out = append(out, diskMagic...)
	out = append(out, byte(len(kind)))
	out = append(out, kind...)
	out = append(out, sum[:]...)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(data)))
	return append(out, data...)
}

// unframe verifies the header and returns the payload.
func unframe(kind Kind, key Key, b []byte) ([]byte, error) {
	corrupt := func(reason string) ([]byte, error) {
		return nil, &CorruptError{Kind: kind, Key: key, Reason: reason}
	}
	if len(b) < len(diskMagic)+1 || !bytes.Equal(b[:len(diskMagic)], diskMagic) {
		return corrupt("bad magic")
	}
	b = b[len(diskMagic):]
	kl := int(b[0])
	b = b[1:]
	if len(b) < kl {
		return corrupt("truncated kind")
	}
	if Kind(b[:kl]) != kind {
		return corrupt(fmt.Sprintf("object is of kind %q", b[:kl]))
	}
	b = b[kl:]
	if len(b) < sha256.Size+8 {
		return corrupt("truncated header")
	}
	var want [sha256.Size]byte
	copy(want[:], b)
	b = b[sha256.Size:]
	n := binary.LittleEndian.Uint64(b)
	b = b[8:]
	if uint64(len(b)) != n {
		return corrupt(fmt.Sprintf("payload is %d bytes, header says %d", len(b), n))
	}
	if sha256.Sum256(b) != want {
		return corrupt("payload hash mismatch")
	}
	return b, nil
}

// headerSize is the framing overhead of every object file.
func headerSize(kind Kind) int64 {
	return int64(len(diskMagic) + 1 + len(kind) + sha256.Size + 8)
}

// Put implements Store.
func (d *Disk) Put(ctx context.Context, kind Kind, key Key, data []byte) error {
	if err := check(ctx, kind, key); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	path := d.path(kind, key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("store: put %s/%s: %w", kind, key, err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".put-*")
	if err != nil {
		return fmt.Errorf("store: put %s/%s: %w", kind, key, err)
	}
	defer os.Remove(tmp.Name()) // no-op after the rename
	if _, err := tmp.Write(frame(kind, data)); err != nil {
		tmp.Close()
		return fmt.Errorf("store: put %s/%s: %w", kind, key, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: put %s/%s: %w", kind, key, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: put %s/%s: %w", kind, key, err)
	}
	return nil
}

// Get implements Store.
func (d *Disk) Get(ctx context.Context, kind Kind, key Key) ([]byte, error) {
	if err := check(ctx, kind, key); err != nil {
		return nil, err
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	b, err := os.ReadFile(d.path(kind, key))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, ErrNotFound
		}
		return nil, fmt.Errorf("store: get %s/%s: %w", kind, key, err)
	}
	return unframe(kind, key, b)
}

// Stat implements Store.
func (d *Disk) Stat(ctx context.Context, kind Kind, key Key) (Info, error) {
	if err := check(ctx, kind, key); err != nil {
		return Info{}, err
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	fi, err := os.Stat(d.path(kind, key))
	if err != nil {
		if os.IsNotExist(err) {
			return Info{}, ErrNotFound
		}
		return Info{}, fmt.Errorf("store: stat %s/%s: %w", kind, key, err)
	}
	return Info{Kind: kind, Key: key, Size: fi.Size() - headerSize(kind), ModTime: fi.ModTime()}, nil
}

// List implements Store.
func (d *Disk) List(ctx context.Context, kind Kind) ([]Info, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	root := filepath.Join(d.dir, string(kind))
	prefixes, err := os.ReadDir(root)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("store: list %s: %w", kind, err)
	}
	var out []Info
	for _, p := range prefixes {
		if !p.IsDir() {
			continue
		}
		files, err := os.ReadDir(filepath.Join(root, p.Name()))
		if err != nil {
			return nil, fmt.Errorf("store: list %s: %w", kind, err)
		}
		for _, f := range files {
			key := Key(f.Name())
			if !key.Valid() || strings.HasPrefix(f.Name(), ".put-") {
				continue // temp files and strays are not objects
			}
			fi, err := f.Info()
			if err != nil {
				continue // raced with a delete
			}
			out = append(out, Info{Kind: kind, Key: key, Size: fi.Size() - headerSize(kind), ModTime: fi.ModTime()})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// Delete implements Store.
func (d *Disk) Delete(ctx context.Context, kind Kind, key Key) error {
	if err := check(ctx, kind, key); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	err := os.Remove(d.path(kind, key))
	if os.IsNotExist(err) {
		return ErrNotFound
	}
	return err
}

// Close implements Store.
func (d *Disk) Close() error { return nil }
