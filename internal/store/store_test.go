package store

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// backends runs a subtest against Memory and Disk, so both satisfy the
// same contract.
func backends(t *testing.T, run func(t *testing.T, s Store)) {
	t.Helper()
	t.Run("memory", func(t *testing.T) { run(t, NewMemory()) })
	t.Run("disk", func(t *testing.T) {
		d, err := NewDisk(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		run(t, d)
	})
}

func TestStoreRoundTrip(t *testing.T) {
	backends(t, func(t *testing.T, s Store) {
		ctx := context.Background()
		data := []byte("alphabet a = {0}\ndepth 2\ndesc a <- [0]\n")
		key := KeyOf(data)

		if _, err := s.Get(ctx, KindSpec, key); !errors.Is(err, ErrNotFound) {
			t.Fatalf("get before put: %v, want ErrNotFound", err)
		}
		if err := s.Put(ctx, KindSpec, key, data); err != nil {
			t.Fatal(err)
		}
		got, err := s.Get(ctx, KindSpec, key)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("got %q, want %q", got, data)
		}
		// Kinds are namespaces: the same key under another kind is absent.
		if _, err := s.Get(ctx, KindResult, key); !errors.Is(err, ErrNotFound) {
			t.Fatalf("cross-kind get: %v, want ErrNotFound", err)
		}

		in, err := s.Stat(ctx, KindSpec, key)
		if err != nil {
			t.Fatal(err)
		}
		if in.Size != int64(len(data)) || in.Kind != KindSpec || in.Key != key {
			t.Fatalf("stat %+v", in)
		}
		infos, err := s.List(ctx, KindSpec)
		if err != nil {
			t.Fatal(err)
		}
		if len(infos) != 1 || infos[0].Key != key {
			t.Fatalf("list %+v", infos)
		}

		if err := s.Delete(ctx, KindSpec, key); err != nil {
			t.Fatal(err)
		}
		if err := s.Delete(ctx, KindSpec, key); !errors.Is(err, ErrNotFound) {
			t.Fatalf("double delete: %v, want ErrNotFound", err)
		}
		if _, err := s.Get(ctx, KindSpec, key); !errors.Is(err, ErrNotFound) {
			t.Fatalf("get after delete: %v, want ErrNotFound", err)
		}
	})
}

func TestStoreArgValidation(t *testing.T) {
	backends(t, func(t *testing.T, s Store) {
		ctx := context.Background()
		good := KeyOf([]byte("x"))
		if err := s.Put(ctx, Kind("nope"), good, nil); err == nil {
			t.Fatal("invalid kind accepted")
		}
		for _, bad := range []Key{"", "short", Key("ZZ" + good[2:]), good + "00"} {
			if err := s.Put(ctx, KindSpec, bad, nil); err == nil {
				t.Fatalf("invalid key %q accepted", bad)
			}
		}
		canceled, cancel := context.WithCancel(ctx)
		cancel()
		if err := s.Put(canceled, KindSpec, good, nil); !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled put: %v", err)
		}
	})
}

// TestStoreAliasing: mutating a slice after Put, or the slice returned
// by Get, must not corrupt the stored object.
func TestStoreAliasing(t *testing.T) {
	backends(t, func(t *testing.T, s Store) {
		ctx := context.Background()
		data := []byte("payload-one")
		key := KeyOf(data)
		if err := s.Put(ctx, KindResult, key, data); err != nil {
			t.Fatal(err)
		}
		data[0] = 'X'
		got, err := s.Get(ctx, KindResult, key)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != "payload-one" {
			t.Fatalf("put aliased its input: %q", got)
		}
		got[0] = 'Y'
		again, err := s.Get(ctx, KindResult, key)
		if err != nil {
			t.Fatal(err)
		}
		if string(again) != "payload-one" {
			t.Fatalf("get aliased store internals: %q", again)
		}
	})
}

// TestDiskDurability: a second Disk over the same directory sees the
// first one's objects — the restart story.
func TestDiskDurability(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	d1, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("survives restarts")
	key := KeyOf(data)
	if err := d1.Put(ctx, KindCheckpoint, key, data); err != nil {
		t.Fatal(err)
	}
	if err := d1.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d2.Get(ctx, KindCheckpoint, key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q after reopen", got)
	}
}

// TestDiskCorrupt: a blob whose bytes rot on disk is reported as
// *CorruptError — never served, never a panic.
func TestDiskCorrupt(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	d, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("to be rotted")
	key := KeyOf(data)
	if err := d.Put(ctx, KindSpec, key, data); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "spec", string(key[:2]), string(key))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 6, len(raw) - 3, len(raw) - len(data) + 2} {
		mut := bytes.Clone(raw)
		mut[i] ^= 0xff
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := d.Get(ctx, KindSpec, key)
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("flip at %d: got %v, want *CorruptError", i, err)
		}
		if ce.Kind != KindSpec || ce.Key != key || ce.Reason == "" {
			t.Fatalf("flip at %d: unstructured corrupt error %+v", i, ce)
		}
	}
	// Truncation fails closed too.
	if err := os.WriteFile(path, raw[:3], 0o644); err != nil {
		t.Fatal(err)
	}
	var ce *CorruptError
	if _, err := d.Get(ctx, KindSpec, key); !errors.As(err, &ce) {
		t.Fatalf("truncated object: got %v, want *CorruptError", err)
	}
	// A wrong-kind read of a valid object is also refused.
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "result", string(key[:2]), string(key))
	if err := os.MkdirAll(filepath.Dir(bad), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(path, bad); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Get(ctx, KindResult, key); !errors.As(err, &ce) {
		t.Fatalf("cross-kind object: got %v, want *CorruptError", err)
	}
}

func TestGC(t *testing.T) {
	backends(t, func(t *testing.T, s Store) {
		ctx := context.Background()
		var keys []Key
		for i := 0; i < 5; i++ {
			data := bytes.Repeat([]byte{byte('a' + i)}, 100)
			k := KeyOf(data)
			keys = append(keys, k)
			if err := s.Put(ctx, KindResult, k, data); err != nil {
				t.Fatal(err)
			}
			time.Sleep(5 * time.Millisecond) // distinct mtimes, oldest-first order
		}
		deleted, err := GC(ctx, s, 250)
		if err != nil {
			t.Fatal(err)
		}
		if len(deleted) != 3 {
			t.Fatalf("GC deleted %d objects, want 3 (%+v)", len(deleted), deleted)
		}
		for _, in := range deleted[:2] {
			if in.Key != keys[0] && in.Key != keys[1] {
				t.Fatalf("GC deleted %s before older objects", in.Key)
			}
		}
		left, err := s.List(ctx, KindResult)
		if err != nil {
			t.Fatal(err)
		}
		if len(left) != 2 {
			t.Fatalf("%d objects left, want 2", len(left))
		}
		// Idempotent under the same bound.
		again, err := GC(ctx, s, 250)
		if err != nil || len(again) != 0 {
			t.Fatalf("second GC: %v deleted %d", err, len(again))
		}
	})
}

func TestMeasured(t *testing.T) {
	ctx := context.Background()
	m := NewMeasured(NewMemory())
	data := []byte("counted")
	key := KeyOf(data)

	if _, err := m.Get(ctx, KindSpec, key); !errors.Is(err, ErrNotFound) {
		t.Fatal(err)
	}
	if err := m.Put(ctx, KindSpec, key, data); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Get(ctx, KindSpec, key); err != nil {
		t.Fatal(err)
	}
	st := m.KindStats(KindSpec)
	want := KindStats{Puts: 1, Gets: 2, Hits: 1, Misses: 1, BytesIn: int64(len(data)), BytesOut: int64(len(data))}
	if st != want {
		t.Fatalf("stats %+v, want %+v", st, want)
	}
	if other := m.KindStats(KindResult); other != (KindStats{}) {
		t.Fatalf("uninvolved kind has counts %+v", other)
	}
	if err := m.Delete(ctx, KindSpec, key); err != nil {
		t.Fatal(err)
	}
	if got := m.KindStats(KindSpec).Deletes; got != 1 {
		t.Fatalf("deletes %d, want 1", got)
	}
}

// TestMeasuredCorrupt: the corrupt counter ticks when the backend
// refuses a rotted blob.
func TestMeasuredCorrupt(t *testing.T) {
	dir := t.TempDir()
	d, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMeasured(d)
	ctx := context.Background()
	data := []byte("rot me")
	key := KeyOf(data)
	if err := m.Put(ctx, KindCheckpoint, key, data); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "checkpoint", string(key[:2]), string(key))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	var ce *CorruptError
	if _, err := m.Get(ctx, KindCheckpoint, key); !errors.As(err, &ce) {
		t.Fatalf("got %v", err)
	}
	if st := m.KindStats(KindCheckpoint); st.Corrupt != 1 || st.Hits != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestDiskListIgnoresStrays(t *testing.T) {
	dir := t.TempDir()
	d, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	data := []byte("real object")
	key := KeyOf(data)
	if err := d.Put(ctx, KindSpec, key, data); err != nil {
		t.Fatal(err)
	}
	// A leftover temp file from a crashed Put and a stray note.
	pdir := filepath.Join(dir, "spec", string(key[:2]))
	for _, name := range []string{".put-12345", "README"} {
		if err := os.WriteFile(filepath.Join(pdir, name), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	infos, err := d.List(ctx, KindSpec)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Key != key {
		t.Fatalf("list picked up strays: %+v", infos)
	}
}

func TestKeyOf(t *testing.T) {
	k := KeyOf([]byte("abc"))
	if want := Key(fmt.Sprintf("%x", [32]byte{0xba, 0x78, 0x16, 0xbf, 0x8f, 0x01, 0xcf, 0xea, 0x41, 0x41, 0x40, 0xde, 0x5d, 0xae, 0x22, 0x23, 0xb0, 0x03, 0x61, 0xa3, 0x96, 0x17, 0x7a, 0x9c, 0xb4, 0x10, 0xff, 0x61, 0xf2, 0x00, 0x15, 0xad})); k != want {
		t.Fatalf("KeyOf = %s, want %s", k, want)
	}
	if !k.Valid() {
		t.Fatal("well-formed key reported invalid")
	}
}
