package store

import (
	"bytes"
	"context"
	"sort"
	"sync"
	"time"
)

// Memory is the in-process Store: the default backend when smoothd runs
// without -data-dir, and the test double everywhere. Contents die with
// the process — durability is the Disk backend's job — but the caching,
// metrics and GC layers behave identically over both.
//
// Safe for concurrent use: one RWMutex over a per-kind map. Payloads
// are copied on Put and Get so callers can never alias store internals.
type Memory struct {
	mu    sync.RWMutex
	kinds map[Kind]map[Key]memObj
}

type memObj struct {
	data []byte
	mod  time.Time
}

// NewMemory returns an empty in-memory store.
func NewMemory() *Memory {
	return &Memory{kinds: make(map[Kind]map[Key]memObj)}
}

// Put implements Store.
func (m *Memory) Put(ctx context.Context, kind Kind, key Key, data []byte) error {
	if err := check(ctx, kind, key); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	km := m.kinds[kind]
	if km == nil {
		km = make(map[Key]memObj)
		m.kinds[kind] = km
	}
	km[key] = memObj{data: bytes.Clone(data), mod: time.Now()}
	return nil
}

// Get implements Store.
func (m *Memory) Get(ctx context.Context, kind Kind, key Key) ([]byte, error) {
	if err := check(ctx, kind, key); err != nil {
		return nil, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	o, ok := m.kinds[kind][key]
	if !ok {
		return nil, ErrNotFound
	}
	return bytes.Clone(o.data), nil
}

// Stat implements Store.
func (m *Memory) Stat(ctx context.Context, kind Kind, key Key) (Info, error) {
	if err := check(ctx, kind, key); err != nil {
		return Info{}, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	o, ok := m.kinds[kind][key]
	if !ok {
		return Info{}, ErrNotFound
	}
	return Info{Kind: kind, Key: key, Size: int64(len(o.data)), ModTime: o.mod}, nil
}

// List implements Store.
func (m *Memory) List(ctx context.Context, kind Kind) ([]Info, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	km := m.kinds[kind]
	out := make([]Info, 0, len(km))
	for k, o := range km {
		out = append(out, Info{Kind: kind, Key: k, Size: int64(len(o.data)), ModTime: o.mod})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// Delete implements Store.
func (m *Memory) Delete(ctx context.Context, kind Kind, key Key) error {
	if err := check(ctx, kind, key); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.kinds[kind][key]; !ok {
		return ErrNotFound
	}
	delete(m.kinds[kind], key)
	return nil
}

// Close implements Store.
func (m *Memory) Close() error { return nil }
