// Package store is smoothd's durable state layer: a content-addressed
// blob store keyed by SHA-256 and namespaced by kind (spec, result,
// checkpoint, session). The §3.3 reading: a spec is an equation system,
// a checkpoint is a persisted chain element of its solution's
// approximation chain, and a result is the chain's value at a bound —
// all immutable values once computed, which is exactly what content
// addressing wants. The service's LRUs become read-through caches in
// front of one Store, so uploads and finished solves survive restarts.
//
// Two backends ship: Memory (tests, and the default when smoothd runs
// without -data-dir) and Disk. Both are safe for concurrent use. Disk
// blobs carry an integrity header and are verified on every Get; a blob
// that does not hash to its key fails closed with *CorruptError.
package store

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"time"
)

// Kind namespaces the store. Kinds are flat and closed: the service's
// four object families.
type Kind string

const (
	// KindSpec holds uploaded spec sources, keyed by their own hash (the
	// service's existing SHA-256 spec identity).
	KindSpec Kind = "spec"
	// KindResult holds finished solve results (JSON wire form), keyed by
	// hash(spec hash + canonical solve params).
	KindResult Kind = "result"
	// KindCheckpoint holds encoded solver checkpoints, content-addressed.
	KindCheckpoint Kind = "checkpoint"
	// KindSession holds session meta blobs, keyed by the spec hash.
	KindSession Kind = "session"
)

// Kinds lists every namespace, in stable order.
func Kinds() []Kind { return []Kind{KindSpec, KindResult, KindCheckpoint, KindSession} }

// ValidKind reports whether k is one of the closed set.
func ValidKind(k Kind) bool {
	switch k {
	case KindSpec, KindResult, KindCheckpoint, KindSession:
		return true
	}
	return false
}

// Key is a lowercase 64-hex SHA-256 digest. Keys under KindCheckpoint
// are the digest of the blob itself (true content addressing); other
// kinds key by the identity the service derives (spec hash, spec
// hash+params) so lookups precede content.
type Key string

// KeyOf returns the content key of data.
func KeyOf(data []byte) Key {
	sum := sha256.Sum256(data)
	return Key(hex.EncodeToString(sum[:]))
}

// Valid reports whether k is a well-formed key.
func (k Key) Valid() bool {
	if len(k) != 64 {
		return false
	}
	for _, c := range k {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// ErrNotFound is returned by Get/Stat/Delete for absent objects.
var ErrNotFound = errors.New("store: object not found")

// CorruptError reports a blob that failed integrity verification on
// read. The store returns it instead of the payload — corrupt objects
// are never served.
type CorruptError struct {
	Kind   Kind
	Key    Key
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("store: corrupt %s/%s: %s", e.Kind, e.Key, e.Reason)
}

// Info describes one stored object.
type Info struct {
	Kind    Kind      `json:"kind"`
	Key     Key       `json:"key"`
	Size    int64     `json:"size"`
	ModTime time.Time `json:"mod_time"`
}

// Store is the content-addressed blob interface. Implementations must
// be safe for concurrent use. Put is atomic: readers see the whole blob
// or nothing. Writes to an existing (kind, key) are idempotent
// overwrites — under content addressing the bytes are equal anyway.
type Store interface {
	// Put stores data under (kind, key). The key must be Valid; callers
	// that content-address pass KeyOf(data).
	Put(ctx context.Context, kind Kind, key Key, data []byte) error
	// Get returns the blob, ErrNotFound, or *CorruptError.
	Get(ctx context.Context, kind Kind, key Key) ([]byte, error)
	// Stat returns the object's metadata without reading the payload.
	Stat(ctx context.Context, kind Kind, key Key) (Info, error)
	// List returns every object of the kind, sorted by key.
	List(ctx context.Context, kind Kind) ([]Info, error)
	// Delete removes the object; ErrNotFound if absent.
	Delete(ctx context.Context, kind Kind, key Key) error
	// Close releases backend resources. The store is unusable after.
	Close() error
}

// check validates the common argument contract once, for both backends.
func check(ctx context.Context, kind Kind, key Key) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if !ValidKind(kind) {
		return fmt.Errorf("store: invalid kind %q", kind)
	}
	if !key.Valid() {
		return fmt.Errorf("store: invalid key %q (want 64 lowercase hex)", key)
	}
	return nil
}

// GC deletes oldest-first (by ModTime, key as tiebreak) across all
// kinds until the store's total payload size is at most maxBytes.
// It returns the deleted objects. A maxBytes < 0 deletes nothing.
func GC(ctx context.Context, s Store, maxBytes int64) ([]Info, error) {
	if maxBytes < 0 {
		return nil, nil
	}
	var all []Info
	var total int64
	for _, k := range Kinds() {
		infos, err := s.List(ctx, k)
		if err != nil {
			return nil, err
		}
		for _, in := range infos {
			all = append(all, in)
			total += in.Size
		}
	}
	sortInfosOldest(all)
	var deleted []Info
	for _, in := range all {
		if total <= maxBytes {
			break
		}
		if err := s.Delete(ctx, in.Kind, in.Key); err != nil && !errors.Is(err, ErrNotFound) {
			return deleted, err
		}
		total -= in.Size
		deleted = append(deleted, in)
	}
	return deleted, nil
}

// sortInfosOldest orders by ModTime then (kind, key) so GC is
// deterministic when timestamps tie (common on coarse filesystems).
func sortInfosOldest(infos []Info) {
	sort.Slice(infos, func(i, j int) bool { return infoLess(infos[i], infos[j]) })
}

func infoLess(a, b Info) bool {
	if !a.ModTime.Equal(b.ModTime) {
		return a.ModTime.Before(b.ModTime)
	}
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	return a.Key < b.Key
}
