// Package specplan statically derives the shape and cost of a Section
// 3.3 tree search from a description system, without running the
// search. The paper makes this possible: the tree's branching at an
// admitted node u is governed by the smoothness condition f(u·e) ⊑ g(u)
// per candidate event e, and for the combinator vocabulary the *change*
// f(u·e) − f(u) is statically classifiable per (channel, message) pair.
// An abstract interpretation of that delta over fn.TraceIR yields, per
// channel, a sound upper bound on the admitted extensions of any tree
// node — hence per-depth level-width bounds and a sound upper bound
// Nodes(d) on the whole tree. Theorem 1's independence structure gives
// the converse: events on channels outside supp(f) are always admitted,
// so the auto-admitted subtree is a sound *lower* bound, which is what
// admission control needs (a search whose guaranteed floor exceeds the
// node budget cannot finish and should be rejected up front).
//
// The delta domain, per width-1 output component and candidate event:
//
//	same       the component's output is provably unchanged — the
//	           smoothness unit holds at every admitted node (Lemma 2
//	           invariant f(u) ⊑ g(u) plus monotonicity), so the
//	           component never blocks the edge;
//	pinned(V)  the output grows by exactly one element, drawn from V;
//	           admission forces that element to equal g's next element,
//	           so among singleton-pinned messages at most max-multiplicity
//	           many can be admitted at any one node;
//	maybe(V)   the output grows by zero or one element (filters,
//	           takewhiles); counted as admissible;
//	unknown    an opaque function saw its argument change; counted as
//	           admissible.
//
// Everything here is an over-approximation of the *pruned* search — the
// semantics Enumerate/EnumerateParallel implement; the Prune=false
// ablation visits every extension and is deliberately out of scope. The
// root plan-soundness suite holds Plan.Nodes(d) ≥ the solver's actual
// node count (and MinNodes(d) ≤ it) on every shipped spec, sequential
// and parallel crossed.
package specplan

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"smoothproc/internal/desc"
	"smoothproc/internal/descvm"
	"smoothproc/internal/fn"
	"smoothproc/internal/trace"
	"smoothproc/internal/value"
)

// Sat is the saturation ceiling of the node arithmetic: bounds that
// overflow uint64 park here and render as "inf".
const Sat = math.MaxUint64

// Interval is a per-level branching interval [Lo, Hi]: at least Lo and
// at most Hi extensions on the channel are admitted at any tree node
// expanding into that level.
type Interval struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// ChannelPlan is the static branching analysis of one channel.
type ChannelPlan struct {
	Channel string `json:"channel"`
	// Alphabet is the candidate message count — the naive branching.
	Alphabet int `json:"alphabet"`
	// Bound is the sound per-node admission bound: at most this many
	// extensions on the channel are admitted at any tree node.
	Bound int `json:"bound"`
	// Auto reports Theorem 1 auto-admission: the channel is outside
	// supp(f), so (when the fast path is active) every candidate is
	// admitted without evaluation — branching is exactly Alphabet.
	Auto bool `json:"auto"`
	// Dead reports that no event on the channel is ever admitted: the
	// channel's history is pinned at ⊥ by its description (divergent
	// equations, self-definitions, empty right sides).
	Dead bool `json:"dead"`
	// Cap bounds the events on this channel along any tree path (-1:
	// unbounded). Derived from constant-length right sides.
	Cap int `json:"cap"`
	// Branch holds the per-depth intervals for levels 1..Depth.
	Branch []Interval `json:"branch"`
}

// Group is one component of the Theorem 1 channel-independence
// partition: the channels transitively linked by sharing a description,
// and the descriptions living on them. Distinct groups never constrain
// each other, which is what makes the partition width a natural worker
// count for the parallel search.
type Group struct {
	Channels []string `json:"channels"`
	Descs    []string `json:"descs,omitempty"`
}

// Plan is the machine-readable static analysis of one spec's search.
type Plan struct {
	// Depth is the analysis depth: Branch tables and the headline
	// NodesBound/MinNodesBound are reported at this depth. Nodes and
	// MinNodes answer any depth.
	Depth int `json:"depth"`
	// Fanout is the total candidate events per node (the naive branching).
	Fanout int `json:"fanout"`
	// BranchBound is the sound admitted-sons bound B = Σ_c Bound(c).
	BranchBound int `json:"branch_bound"`
	// AutoBranch is the Theorem 1 floor A = Σ_{c auto} Alphabet(c): when
	// the fast path is active every node within depth has at least A sons.
	AutoBranch int `json:"auto_branch"`
	// BaseHolds is the statically evaluated induction base f(⊥) ⊑ g(⊥).
	// When it fails, the tree is exactly {⊥}.
	BaseHolds bool `json:"base_holds"`
	// Thm1FastPath mirrors the solver's fast-path activation: combined
	// supports disjoint, non-ω left side, and the base holds.
	Thm1FastPath bool `json:"thm1_fast_path"`
	// OmegaDescs names the descriptions whose sides contain ω-constant
	// approximations — the components whose outputs grow with raw trace
	// length (divergence-style unbounded behavior is reachable there).
	OmegaDescs []string `json:"omega_descs,omitempty"`
	// DeadChannels lists channels no admitted node ever extends.
	DeadChannels []string `json:"dead_channels,omitempty"`
	// MaxPathLen bounds tree depth when every live channel carries a
	// constant-length cap (-1: unbounded). Levels beyond it are empty.
	MaxPathLen int `json:"max_path_len"`
	// Channels holds the per-channel analyses, sorted by name.
	Channels []ChannelPlan `json:"channels"`
	// Partition is the channel-independence partition; PartitionWidth is
	// its group count — the natural parallel worker count.
	Partition      []Group `json:"partition"`
	PartitionWidth int     `json:"partition_width"`
	// NodesBound and MinNodesBound are Nodes(Depth) and MinNodes(Depth).
	NodesBound    uint64 `json:"nodes_bound"`
	MinNodesBound uint64 `json:"min_nodes_bound"`
	// Shareability estimates the fraction of candidate evaluations the
	// search's prefix memoization avoids — an estimate from prefix
	// structure, not a sound bound.
	Shareability float64 `json:"shareability"`
	// LoweredSides counts description sides that lowered to descvm
	// bytecode (and passed the static verifier); VerifyError reports a
	// verifier rejection, which indicates a compiler bug, never a spec
	// property.
	LoweredSides int    `json:"lowered_sides"`
	VerifyError  string `json:"verify_error,omitempty"`
}

// Analyze derives the plan for a description system over the given
// candidate alphabet. depth controls the reported tables and headline
// bounds; the Nodes/MinNodes methods answer any depth. The analysis
// evaluates the sides only at the empty trace (the induction base) —
// it never runs the search.
func Analyze(sys desc.System, alphabet map[string][]value.Value, depth int) *Plan {
	if depth < 0 {
		depth = 0
	}
	combined := sys.Combined()
	p := &Plan{Depth: depth, MaxPathLen: -1}
	p.BaseHolds = combined.F.Apply(trace.Empty).Leq(combined.G.Apply(trace.Empty))
	p.Thm1FastPath = combined.Thm1Eligible() && p.BaseHolds

	chans := make([]string, 0, len(alphabet))
	for c := range alphabet {
		chans = append(chans, c)
	}
	sort.Strings(chans)

	comps := components(sys, &p.LoweredSides, &p.VerifyError)
	for _, d := range sys.Descs {
		if d.F.Omega || d.G.Omega {
			p.OmegaDescs = append(p.OmegaDescs, d.Name)
		}
	}

	capped := true
	for _, c := range chans {
		alpha := alphabet[c]
		cp := ChannelPlan{
			Channel:  c,
			Alphabet: len(alpha),
			Bound:    len(alpha),
			Auto:     p.Thm1FastPath && !combined.F.Support.Has(c),
			Cap:      -1,
		}
		for _, comp := range comps {
			if b := comp.admitBound(c, alpha); b < cp.Bound {
				cp.Bound = b
			}
			if capLen, ok := comp.eventCap(c); ok && (cp.Cap < 0 || capLen < cp.Cap) {
				cp.Cap = capLen
			}
		}
		if cp.Cap == 0 {
			cp.Bound = 0
		}
		cp.Dead = cp.Bound == 0
		if cp.Dead {
			cp.Cap = 0
			p.DeadChannels = append(p.DeadChannels, c)
		} else if cp.Cap < 0 {
			capped = false
		}
		p.Fanout += cp.Alphabet
		p.BranchBound += cp.Bound
		if cp.Auto {
			p.AutoBranch += cp.Alphabet
		}
		p.Channels = append(p.Channels, cp)
	}
	if capped {
		p.MaxPathLen = 0
		for _, cp := range p.Channels {
			p.MaxPathLen += cp.Cap
		}
	}

	for i := range p.Channels {
		cp := &p.Channels[i]
		cp.Branch = make([]Interval, depth)
		for lvl := 1; lvl <= depth; lvl++ {
			iv := Interval{Hi: cp.Bound}
			if p.MaxPathLen >= 0 && lvl > p.MaxPathLen {
				iv.Hi = 0
			}
			if cp.Auto && iv.Hi > 0 {
				iv.Lo = cp.Alphabet
			}
			if iv.Lo > iv.Hi {
				// The caps proved the auto channel saturates before this
				// level; the floor no longer applies there.
				iv.Lo = iv.Hi
			}
			cp.Branch[lvl-1] = iv
		}
	}

	p.Partition = partition(sys, chans)
	p.PartitionWidth = len(p.Partition)
	p.NodesBound = p.Nodes(depth)
	p.MinNodesBound = p.MinNodes(depth)
	p.Shareability = p.shareability(depth)
	return p
}

// Nodes returns a sound upper bound on the number of tree nodes the
// pruned search visits to depth d (inclusive), saturating at Sat. Level
// widths obey W(0)=1, W(i+1) ≤ W(i)·B, cut to zero beyond the proved
// maximum path length; a failed induction base pins the tree at {⊥}.
func (p *Plan) Nodes(d int) uint64 {
	if !p.BaseHolds {
		return 1
	}
	if p.MaxPathLen >= 0 && d > p.MaxPathLen {
		d = p.MaxPathLen
	}
	return geomSum(uint64(p.BranchBound), d)
}

// MinNodes returns a sound lower bound on the nodes the search visits
// to depth d when it is not truncated: under the Theorem 1 fast path
// every node has at least AutoBranch auto-admitted sons, so the full
// AutoBranch-ary tree is visited. Without the fast path the floor is
// the root alone. A solve whose MinNodes exceeds its node budget is
// guaranteed to truncate — the admission-control signal.
func (p *Plan) MinNodes(d int) uint64 {
	if !p.Thm1FastPath {
		return 1
	}
	return geomSum(uint64(p.AutoBranch), d)
}

// geomSum returns Σ_{i=0..d} b^i with saturating arithmetic.
func geomSum(b uint64, d int) uint64 {
	total, width := uint64(0), uint64(1)
	for i := 0; i <= d; i++ {
		total = addSat(total, width)
		width = mulSat(width, b)
		if width == 0 {
			break
		}
	}
	return total
}

// shareability estimates the fraction of side evaluations the search's
// prefix memoization avoids at depth d. Unmemoized, every candidate
// edge evaluates f at the son and g at the parent (2E for E candidate
// edges); memoized, each distinct son evaluates f once (E) and each
// node evaluates g once (N). The estimate is 1 − (E+N)/2E.
func (p *Plan) shareability(d int) float64 {
	if !p.BaseHolds {
		return 0
	}
	levels := d
	if p.MaxPathLen >= 0 && levels > p.MaxPathLen {
		levels = p.MaxPathLen
	}
	edges := float64(0)
	width := float64(1)
	for i := 0; i < levels; i++ {
		edges += width * float64(p.Fanout)
		width *= float64(p.BranchBound)
		if width == 0 {
			break
		}
	}
	if edges == 0 {
		return 0
	}
	nodes := float64(p.Nodes(d))
	share := 1 - (edges+nodes)/(2*edges)
	return math.Max(0, math.Min(1, share))
}

// Summary renders the headline plan facts on one line.
func (p *Plan) Summary() string {
	return fmt.Sprintf("nodes(%d) <= %s, branch <= %d/%d, partition %d",
		p.Depth, FormatBound(p.NodesBound), p.BranchBound, p.Fanout, p.PartitionWidth)
}

// FormatBound renders a saturating node bound ("inf" at the ceiling).
func FormatBound(n uint64) string {
	if n == Sat {
		return "inf"
	}
	return fmt.Sprintf("%d", n)
}

func addSat(a, b uint64) uint64 {
	if a > Sat-b {
		return Sat
	}
	return a + b
}

func mulSat(a, b uint64) uint64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > Sat/b {
		return Sat
	}
	return a * b
}

// component is one aligned width-1 slice of a description: the f-side
// IR that must stay ⊑ the g-side's previous value along every edge.
// gcomp may be nil (opaque g): the f-delta analysis stands alone; only
// the length refinements need g.
type component struct {
	fcomp, gcomp *fn.TraceIR
}

// components flattens every description's sides into aligned width-1
// component pairs, compiling and statically verifying each lowerable
// side along the way (the debug/CI invariant this package's consumers
// rely on: everything the surface language expresses must verify).
func components(sys desc.System, lowered *int, verifyErr *string) []component {
	var comps []component
	for _, d := range sys.Descs {
		for _, side := range []fn.TraceFn{d.F, d.G} {
			if prog, ok := descvm.Compile(side); ok {
				*lowered++
				if err := descvm.Verify(prog); err != nil && *verifyErr == "" {
					*verifyErr = fmt.Sprintf("%s: %v", d.Name, err)
				}
			}
		}
		if d.F.IR == nil {
			continue // opaque left side: no static constraint to mine
		}
		fs := flatten(d.F.IR)
		if len(fs) != d.F.Out {
			continue
		}
		var gs []*fn.TraceIR
		if d.G.IR != nil {
			if cand := flatten(d.G.IR); len(cand) == len(fs) {
				gs = cand
			}
		}
		for k, f := range fs {
			c := component{fcomp: f}
			if gs != nil {
				c.gcomp = gs[k]
			}
			comps = append(comps, c)
		}
	}
	return comps
}

// flatten expands top-level IRPair nodes into the width-1 components.
func flatten(ir *fn.TraceIR) []*fn.TraceIR {
	if ir.Kind != fn.IRPair {
		return []*fn.TraceIR{ir}
	}
	var out []*fn.TraceIR
	for _, a := range ir.Args {
		out = append(out, flatten(a)...)
	}
	return out
}

// admitBound returns an upper bound on how many of channel c's
// candidate messages this component admits at any tree node.
func (comp component) admitBound(c string, alpha []value.Value) int {
	admitted := 0
	var pinnedSingles []value.Value // nil entry: value set not a known singleton
	for _, m := range alpha {
		switch d := deltaOf(comp.fcomp, c, m); d.kind {
		case dSame, dMaybe, dUnknown:
			admitted++
		case dPinned:
			if len(d.vals) == 1 {
				pinnedSingles = append(pinnedSingles, d.vals[0])
			} else {
				pinnedSingles = append(pinnedSingles, value.Value{})
			}
		}
	}
	if len(pinnedSingles) == 0 {
		return admitted
	}
	// Pinned refinement 1: if g provably never out-runs f in length,
	// f's forced growth can never fit under g — the pinned messages are
	// all inadmissible.
	if comp.gcomp != nil && lenLeq(comp.gcomp, comp.fcomp) {
		return admitted
	}
	// Pinned refinement 2: all admitted pinned messages must append the
	// single element g forces at this node, so when every pinned value
	// is known exactly, at most the max multiplicity can pass.
	exact := true
	counts := map[string]int{}
	for _, v := range pinnedSingles {
		if v.IsZero() {
			exact = false
			break
		}
		counts[v.String()]++
	}
	if !exact {
		return admitted + len(pinnedSingles)
	}
	maxMult := 0
	for _, n := range counts {
		if n > maxMult {
			maxMult = n
		}
	}
	return admitted + maxMult
}

// eventCap derives a per-path cap on channel c's events from this
// component: when f's length dominates hist(c) (projections don't — a
// filter may shrink) and g's length is constant-bounded by L, every
// admitted node satisfies |hist_c| ≤ |f| ≤ |g| ≤ L.
func (comp component) eventCap(c string) (int, bool) {
	if comp.gcomp == nil || !lenGeqChan(comp.fcomp, c) {
		return 0, false
	}
	return constLenUB(comp.gcomp)
}

// deltaKind is the abstract change of one component's output under one
// candidate event.
type deltaKind int

const (
	dSame deltaKind = iota
	dPinned
	dMaybe
	dUnknown
)

// delta pairs the kind with the possible appended values (nil: unknown).
type delta struct {
	kind deltaKind
	vals []value.Value
}

// deltaOf abstractly interprets appending event (c, m) through ir.
func deltaOf(ir *fn.TraceIR, c string, m value.Value) delta {
	switch ir.Kind {
	case fn.IRChan:
		if ir.Chan == c {
			return delta{kind: dPinned, vals: []value.Value{m}}
		}
		return delta{kind: dSame}

	case fn.IRConst:
		return delta{kind: dSame}

	case fn.IROmega:
		// The finite approximation grows by exactly one period element on
		// every event, on every channel (it tracks raw trace length).
		if ir.Const.Len() == 0 {
			return delta{kind: dSame}
		}
		vals := make([]value.Value, ir.Const.Len())
		for i := range vals {
			vals[i] = ir.Const.At(i)
		}
		return delta{kind: dPinned, vals: vals}

	case fn.IRSeqApply:
		l := ir.Sf.Lower
		if l != nil && l.Kind == fn.LowerConst {
			return delta{kind: dSame}
		}
		arg := deltaOf(ir.Args[0], c, m)
		if l == nil {
			// Opaque but deterministic: an unchanged argument maps to an
			// unchanged result; any change is unanalyzable.
			if arg.kind == dSame {
				return delta{kind: dSame}
			}
			return delta{kind: dUnknown}
		}
		switch l.Kind {
		case fn.LowerPrepend:
			return arg // a constant prefix shifts positions, not deltas
		case fn.LowerMap:
			return mapDelta(arg, l.Map)
		case fn.LowerFilter:
			return filterDelta(arg, l.Pred, true)
		case fn.LowerTakeWhile:
			// Like filter, except a kept element only lands when the
			// takewhile had consumed the whole argument — never "exactly
			// one" statically, so pinned weakens to maybe.
			return filterDelta(arg, l.Pred, false)
		}
		return delta{kind: dUnknown}

	case fn.IRBiApply:
		a := deltaOf(ir.Args[0], c, m)
		b := deltaOf(ir.Args[1], c, m)
		if a.kind == dSame && b.kind == dSame {
			return delta{kind: dSame}
		}
		if ir.Bi.Lower != nil && a.kind != dUnknown && b.kind != dUnknown {
			// Pointwise zip cut at the shorter side: each operand grows by
			// at most one, so the output grows by at most one, value
			// unknown (it pairs with an element of the other side).
			return delta{kind: dMaybe}
		}
		return delta{kind: dUnknown}
	}
	return delta{kind: dUnknown}
}

// mapDelta lifts a pointwise map over a delta.
func mapDelta(arg delta, f func(value.Value) value.Value) delta {
	switch arg.kind {
	case dSame, dUnknown:
		return arg
	}
	if arg.vals == nil {
		return delta{kind: arg.kind}
	}
	vals := make([]value.Value, len(arg.vals))
	for i, v := range arg.vals {
		vals[i] = f(v)
	}
	return delta{kind: arg.kind, vals: vals}
}

// filterDelta lifts a filter (or takewhile, with keepPinned=false) over
// a delta: the appended element survives iff the predicate keeps it.
func filterDelta(arg delta, pred func(value.Value) bool, keepPinned bool) delta {
	switch arg.kind {
	case dSame, dUnknown:
		return arg
	}
	if arg.vals == nil {
		return delta{kind: dMaybe}
	}
	var kept []value.Value
	for _, v := range arg.vals {
		if pred(v) {
			kept = append(kept, v)
		}
	}
	if len(kept) == 0 {
		return delta{kind: dSame}
	}
	if keepPinned && arg.kind == dPinned && len(kept) == len(arg.vals) {
		return delta{kind: dPinned, vals: kept}
	}
	return delta{kind: dMaybe, vals: kept}
}

// lenLeq proves |g(t)| ≤ |f(t)| for every trace t — the condition under
// which f's forced growth can never be admitted against g.
func lenLeq(g, f *fn.TraceIR) bool {
	if f.Kind == fn.IRChan {
		return lenLeqChan(g, f.Chan)
	}
	if ub, ok := constLenUB(g); ok && ub == 0 {
		return true
	}
	return false
}

// lenLeqChan proves |g(t)| ≤ |hist_c(t)| for every trace t.
func lenLeqChan(g *fn.TraceIR, c string) bool {
	switch g.Kind {
	case fn.IRChan:
		return g.Chan == c
	case fn.IRConst:
		return g.Const.Len() == 0
	case fn.IRSeqApply:
		l := g.Sf.Lower
		if l == nil {
			return false
		}
		switch l.Kind {
		case fn.LowerConst:
			return l.Const.Len() == 0
		case fn.LowerFilter, fn.LowerTakeWhile, fn.LowerMap:
			return lenLeqChan(g.Args[0], c)
		case fn.LowerPrepend:
			return l.Const.Len() == 0 && lenLeqChan(g.Args[0], c)
		}
		return false
	case fn.IRBiApply:
		if g.Bi.Lower == nil {
			return false
		}
		// Zip is cut at the shorter operand.
		return lenLeqChan(g.Args[0], c) || lenLeqChan(g.Args[1], c)
	}
	return false
}

// lenGeqChan proves |f(t)| ≥ |hist_c(t)| for every trace t.
func lenGeqChan(f *fn.TraceIR, c string) bool {
	switch f.Kind {
	case fn.IRChan:
		return f.Chan == c
	case fn.IRSeqApply:
		l := f.Sf.Lower
		if l == nil {
			return false
		}
		switch l.Kind {
		case fn.LowerMap:
			return lenGeqChan(f.Args[0], c)
		case fn.LowerPrepend:
			return lenGeqChan(f.Args[0], c)
		}
		return false
	}
	return false
}

// constLenUB proves |g(t)| ≤ L for every trace t, for constant-bounded
// right-hand sides.
func constLenUB(g *fn.TraceIR) (int, bool) {
	switch g.Kind {
	case fn.IRConst:
		return g.Const.Len(), true
	case fn.IRSeqApply:
		l := g.Sf.Lower
		if l == nil {
			return 0, false
		}
		switch l.Kind {
		case fn.LowerConst:
			return l.Const.Len(), true
		case fn.LowerFilter, fn.LowerTakeWhile, fn.LowerMap:
			return constLenUB(g.Args[0])
		case fn.LowerPrepend:
			if ub, ok := constLenUB(g.Args[0]); ok {
				return l.Const.Len() + ub, true
			}
		}
		return 0, false
	case fn.IRBiApply:
		if g.Bi.Lower == nil {
			return 0, false
		}
		a, aok := constLenUB(g.Args[0])
		b, bok := constLenUB(g.Args[1])
		switch {
		case aok && bok:
			return min(a, b), true
		case aok:
			return a, true
		case bok:
			return b, true
		}
		return 0, false
	}
	return 0, false
}

// partition computes the channel-independence partition: channels are
// linked when a description's combined support touches both. Channels
// no description reads are singleton groups; descriptions reading no
// channel at all form their own group.
func partition(sys desc.System, chans []string) []Group {
	parent := map[string]string{}
	for _, c := range chans {
		parent[c] = c
	}
	var find func(string) string
	find = func(x string) string {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	union := func(a, b string) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	descChans := make([][]string, len(sys.Descs))
	for i, d := range sys.Descs {
		supp := d.F.Support.Union(d.G.Support).Names()
		var present []string
		for _, c := range supp {
			if _, ok := parent[c]; ok {
				present = append(present, c)
			}
		}
		descChans[i] = present
		for j := 1; j < len(present); j++ {
			union(present[0], present[j])
		}
	}
	groups := map[string]*Group{}
	for _, c := range chans {
		r := find(c)
		if groups[r] == nil {
			groups[r] = &Group{}
		}
		groups[r].Channels = append(groups[r].Channels, c)
	}
	var floating []Group // descriptions with no channels
	for i, d := range sys.Descs {
		if len(descChans[i]) == 0 {
			floating = append(floating, Group{Descs: []string{d.Name}})
			continue
		}
		groups[find(descChans[i][0])].Descs = append(groups[find(descChans[i][0])].Descs, d.Name)
	}
	out := make([]Group, 0, len(groups)+len(floating))
	for _, g := range groups {
		out = append(out, *g)
	}
	sort.Slice(out, func(i, j int) bool {
		return strings.Join(out[i].Channels, ",") < strings.Join(out[j].Channels, ",")
	})
	return append(out, floating...)
}
