package specplan_test

import (
	"context"
	"testing"

	"smoothproc/internal/eqlang"
	"smoothproc/internal/solver"
	"smoothproc/internal/specplan"
)

// plan compiles an eqlang source and analyzes it at the given depth.
func plan(t *testing.T, src string, depth int) (*specplan.Plan, *eqlang.Program) {
	t.Helper()
	prog, err := eqlang.CompileSource(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return specplan.Analyze(prog.System, prog.Alphabet, depth), prog
}

// actualNodes runs the real search and reports its node count.
func actualNodes(t *testing.T, prog *eqlang.Program, depth int) uint64 {
	t.Helper()
	p := prog.Problem()
	p.MaxDepth = depth
	res := solver.Enumerate(context.Background(), p)
	if res.Truncated {
		t.Fatalf("reference search truncated")
	}
	return uint64(res.Nodes)
}

// channelPlan fetches one channel's analysis.
func channelPlan(t *testing.T, p *specplan.Plan, c string) specplan.ChannelPlan {
	t.Helper()
	for _, cp := range p.Channels {
		if cp.Channel == c {
			return cp
		}
	}
	t.Fatalf("no plan for channel %s", c)
	return specplan.ChannelPlan{}
}

// A channel defined by a constant caps its own history: every admitted
// node has |hist_c| ≤ |f(c)| ≤ 2, and the forced-value refinement
// pins branching to 1. The bound is exact here: the tree is the chain
// ⊥, (c,0), (c,0)(c,2).
func TestConstCapIsExact(t *testing.T) {
	src := "alphabet c = ints 0 .. 4\ndesc c <- [0, 2]\n"
	p, prog := plan(t, src, 6)
	cp := channelPlan(t, p, "c")
	if cp.Bound != 1 {
		t.Errorf("Bound = %d, want 1 (forced-value refinement)", cp.Bound)
	}
	if cp.Cap != 2 {
		t.Errorf("Cap = %d, want 2 (constant right side)", cp.Cap)
	}
	if p.MaxPathLen != 2 {
		t.Errorf("MaxPathLen = %d, want 2", p.MaxPathLen)
	}
	if got := p.Nodes(6); got != 3 {
		t.Errorf("Nodes(6) = %d, want 3", got)
	}
	if actual := actualNodes(t, prog, 6); actual != 3 {
		t.Errorf("search visited %d nodes, the bound claims exactness at 3", actual)
	}
}

// A self-defining channel never grows: f = hist_c forces one new
// element while g = hist_c stays put, so |g| ≤ |f| kills every pinned
// extension. Same for the divergent affine map 2*c+1.
func TestSelfAndDivergentChannelsAreDead(t *testing.T) {
	for _, src := range []string{
		"alphabet c = ints 0 .. 3\ndesc c <- c\n",
		"alphabet c = ints 0 .. 3\ndesc c <- 2*c + 1\n",
	} {
		p, prog := plan(t, src, 8)
		cp := channelPlan(t, p, "c")
		if !cp.Dead || cp.Bound != 0 {
			t.Errorf("%q: channel c not proved dead (bound %d)", src, cp.Bound)
		}
		if got := p.Nodes(8); got != 1 {
			t.Errorf("%q: Nodes(8) = %d, want 1", src, got)
		}
		if actual := actualNodes(t, prog, 8); actual != 1 {
			t.Errorf("%q: search visited %d nodes", src, actual)
		}
	}
}

// The Kahn buffer e <- a is the Theorem 1 poster child: supp(f) = {e}
// and supp(g) = {a} are disjoint, so channel a is auto-admitted —
// branching exactly |alpha(a)| = 2 — while e's forced value pins its
// branching to 1. The plan brackets the real search from both sides.
func TestKahnBufferBrackets(t *testing.T) {
	src := "alphabet a = {0, 1}\nalphabet e = {0, 1}\ndesc e <- a\n"
	p, prog := plan(t, src, 4)
	if !p.Thm1FastPath {
		t.Fatal("Theorem 1 fast path not detected")
	}
	if a := channelPlan(t, p, "a"); !a.Auto || a.Bound != 2 {
		t.Errorf("channel a: auto=%v bound=%d, want auto with bound 2", a.Auto, a.Bound)
	}
	if e := channelPlan(t, p, "e"); e.Auto || e.Bound != 1 {
		t.Errorf("channel e: auto=%v bound=%d, want pinned bound 1", e.Auto, e.Bound)
	}
	if p.AutoBranch != 2 || p.BranchBound != 3 {
		t.Errorf("A=%d B=%d, want A=2 B=3", p.AutoBranch, p.BranchBound)
	}
	lo, hi := p.MinNodes(4), p.Nodes(4)
	if lo != 31 || hi != 121 {
		t.Errorf("MinNodes(4)=%d Nodes(4)=%d, want 31 and 121", lo, hi)
	}
	actual := actualNodes(t, prog, 4)
	if actual < lo || actual > hi {
		t.Errorf("search visited %d nodes, outside [%d, %d]", actual, lo, hi)
	}
}

// Figure 4's Brock-Ackermann network: even(c)'s filter admits the two
// even messages, the forced-value refinement keeps only one of them,
// and the same argument bounds b. Not independent, so no Theorem 1
// floor.
func TestFig4BranchBounds(t *testing.T) {
	src := "alphabet b = {1}\nalphabet c = ints 0 .. 2\n" +
		"desc even(c) <- [0, 2]\ndesc odd(c) <- b\ndesc b <- fBA(c)\n"
	p, prog := plan(t, src, 4)
	if c := channelPlan(t, p, "c"); c.Bound != 2 {
		t.Errorf("channel c bound = %d, want 2", c.Bound)
	}
	if b := channelPlan(t, p, "b"); b.Bound != 1 {
		t.Errorf("channel b bound = %d, want 1", b.Bound)
	}
	if p.Thm1FastPath {
		t.Error("fast path claimed on a dependent system")
	}
	if p.MinNodes(4) != 1 {
		t.Errorf("MinNodes(4) = %d, want the trivial floor 1", p.MinNodes(4))
	}
	if actual, bound := actualNodes(t, prog, 4), p.Nodes(4); actual > bound {
		t.Errorf("search visited %d nodes, bound is %d", actual, bound)
	}
}

// A failed induction base f(⊥) ⊑ g(⊥) pins the tree at {⊥} exactly
// (admitting any node would chain f(⊥) ⊑ f(v) ⊑ g(⊥) by monotonicity).
func TestFailedBasePinsTreeAtRoot(t *testing.T) {
	src := "alphabet c = {0}\ndesc repeat [1] <- [0]\ndesc c <- c\n"
	p, prog := plan(t, src, 6)
	if p.BaseHolds {
		t.Fatal("base claimed to hold")
	}
	if got := p.Nodes(6); got != 1 {
		t.Errorf("Nodes(6) = %d, want exactly 1", got)
	}
	if actual := actualNodes(t, prog, 6); actual != 1 {
		t.Errorf("search visited %d nodes", actual)
	}
	if len(p.OmegaDescs) == 0 {
		t.Error("ω-constant left side not reported in OmegaDescs")
	}
}

// Two descriptions on disjoint channel sets partition into two groups;
// the width is the natural parallel worker count.
func TestPartitionWidth(t *testing.T) {
	src := "alphabet a = {0}\nalphabet e = {0}\nalphabet x = {0}\nalphabet y = {0}\n" +
		"desc e <- a\ndesc y <- x\n"
	p, _ := plan(t, src, 4)
	if p.PartitionWidth != 2 {
		t.Fatalf("partition width = %d, want 2 (groups: %v)", p.PartitionWidth, p.Partition)
	}
	for _, g := range p.Partition {
		if len(g.Channels) != 2 || len(g.Descs) != 1 {
			t.Errorf("group %v: want 2 channels and 1 desc", g)
		}
	}
}

// Node bounds saturate rather than wrap: the Kahn buffer's 3-ary bound
// at depth 200 parks at the ceiling and formats as "inf".
func TestBoundsSaturate(t *testing.T) {
	src := "alphabet a = {0, 1}\nalphabet e = {0, 1}\ndesc e <- a\n"
	p, _ := plan(t, src, 4)
	if got := p.Nodes(200); got != specplan.Sat {
		t.Errorf("Nodes(200) = %d, want saturation", got)
	}
	if s := specplan.FormatBound(specplan.Sat); s != "inf" {
		t.Errorf("FormatBound(Sat) = %q", s)
	}
}

// Every lowerable side of every plan passes the bytecode verifier, and
// the shareability estimate stays a ratio.
func TestPlanHousekeeping(t *testing.T) {
	src := "alphabet b = {1}\nalphabet c = ints 0 .. 2\n" +
		"desc even(c) <- [0, 2]\ndesc odd(c) <- b\ndesc b <- fBA(c)\n"
	p, _ := plan(t, src, 6)
	if p.VerifyError != "" {
		t.Errorf("bytecode verifier rejected a compiled side: %s", p.VerifyError)
	}
	if p.LoweredSides == 0 {
		t.Error("no side lowered to bytecode")
	}
	if p.Shareability < 0 || p.Shareability > 1 {
		t.Errorf("shareability %v outside [0,1]", p.Shareability)
	}
	if p.Summary() == "" {
		t.Error("empty summary")
	}
}
