package descvm

import (
	"math/rand"
	"strings"
	"testing"

	"smoothproc/internal/fn"
	"smoothproc/internal/seq"
	"smoothproc/internal/trace"
	"smoothproc/internal/value"
)

// checkAgainstInterpreter compiles f and compares Eval against Apply on
// every given trace, in order — the order matters, because it drives the
// frame's base cache through its hit and miss paths.
func checkAgainstInterpreter(t *testing.T, f fn.TraceFn, traces []trace.Trace) {
	t.Helper()
	p, ok := Compile(f)
	if !ok {
		t.Fatalf("%s: did not compile", f.Name)
	}
	for i, tr := range traces {
		got, want := p.Eval(tr), f.Apply(tr)
		if !got.Equal(want) {
			t.Fatalf("%s: trace %d %s:\ncompiled    %v\ninterpreted %v\n%s",
				f.Name, i, tr, got, want, p.Disasm())
		}
	}
}

// sampleTraces builds a trace set covering ⊥, single events, shared
// parents with many sons (the BFS pattern the frame cache is built
// for), and events on channels the function does not read.
func sampleTraces() []trace.Trace {
	base := trace.Of(
		trace.E("a", value.Int(1)), trace.E("b", value.T),
		trace.E("a", value.Int(2)), trace.E("x", value.Int(9)),
	)
	out := []trace.Trace{trace.Empty}
	for _, p := range base.Prefixes() {
		out = append(out, p)
		for _, e := range []trace.Event{
			trace.E("a", value.Int(3)), trace.E("b", value.F),
			trace.E("x", value.Int(0)), trace.E("a", value.T),
		} {
			out = append(out, p.Append(e))
		}
	}
	return out
}

func TestOpcodes(t *testing.T) {
	cases := []struct {
		name string
		f    fn.TraceFn
		op   string // expected mnemonic in the disassembly
	}{
		{"chan", fn.ChanFn("a"), "chan"},
		{"const", fn.ConstTraceFn(seq.OfInts(7, 8)), "const"},
		{"omega", fn.OmegaConstFn("trues", seq.OfBools(true)), "omega"},
		{"filter", fn.OnChan(fn.Even, "a"), "filter"},
		{"map", fn.ApplySeq(fn.Double, fn.ChanFn("a")), "map"},
		{"takewhile", fn.OnChan(fn.UntilF, "b"), "takewhile"},
		{"prepend", fn.ApplySeq(fn.PrependFn(value.Int(0)), fn.ChanFn("a")), "prepend"},
		{"zip", fn.OnTwoChans(fn.And, "a", "b"), "zip"},
		{"call", fn.ApplySeq(fn.CountTs, fn.ChanFn("b")), "call"},
		{"call2", fn.ApplyBi(fn.NonStrictAnd, fn.ChanFn("a"), fn.ChanFn("b")), "call2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, ok := Compile(tc.f)
			if !ok {
				t.Fatalf("%s did not compile", tc.f.Name)
			}
			if dis := p.Disasm(); !strings.Contains(dis, tc.op) {
				t.Errorf("disassembly lacks %q:\n%s", tc.op, dis)
			}
			checkAgainstInterpreter(t, tc.f, sampleTraces())
		})
	}
}

// TestConstFnOperandDead: a LowerConst in ApplySeq position ignores its
// operand, and the compiler must not emit the dead operand chain.
func TestConstFnOperandDead(t *testing.T) {
	f := fn.ApplySeq(fn.ConstFn(seq.OfInts(5)), fn.ChanFn("a"))
	p, ok := Compile(f)
	if !ok {
		t.Fatal("did not compile")
	}
	if p.NumInstrs() != 1 {
		t.Errorf("want 1 instruction (dead chan operand elided), got:\n%s", p.Disasm())
	}
	checkAgainstInterpreter(t, f, sampleTraces())
}

// TestCSE: reusing the same constructed SeqFn value twice must compute
// it once — constructor identity, via the shared Lower pointer, names
// the function.
func TestCSE(t *testing.T) {
	shared := fn.Pair(fn.ChanFn("a"), fn.OnChan(fn.Even, "a"), fn.OnChan(fn.Even, "a"))
	p, ok := Compile(shared)
	if !ok {
		t.Fatal("did not compile")
	}
	// chan a + one filter: the second even(a) is the same register.
	if p.NumInstrs() != 2 || p.Out() != 3 {
		t.Errorf("want 2 instrs / 3 outs, got %d/%d:\n%s", p.NumInstrs(), p.Out(), p.Disasm())
	}
	checkAgainstInterpreter(t, shared, sampleTraces())

	// Two separate constructor calls are distinct functions even when
	// the closures happen to share a code pointer (hasTag-style): no CSE.
	distinct := fn.Pair(
		fn.ApplySeq(fn.MulAdd(2, 0), fn.ChanFn("a")),
		fn.ApplySeq(fn.MulAdd(3, 1), fn.ChanFn("a")),
	)
	p2, ok := Compile(distinct)
	if !ok {
		t.Fatal("did not compile")
	}
	if p2.NumInstrs() != 3 { // chan a + two maps
		t.Errorf("distinct constructors must not fuse, got:\n%s", p2.Disasm())
	}
	checkAgainstInterpreter(t, distinct, sampleTraces())
}

// TestCompileRefusesOpaque: combinators wrapping whole-trace closures
// carry no IR and must be refused, including transitively.
func TestCompileRefusesOpaque(t *testing.T) {
	opaque := fn.OnChans("sum", []string{"a", "b"}, 0, func(args []seq.Seq) seq.Seq {
		return args[0]
	})
	for _, f := range []fn.TraceFn{
		opaque,
		fn.ProjectArg(fn.ChanFn("a"), trace.NewChanSet("a")),
		fn.Pair(fn.ChanFn("a"), opaque),
		fn.ApplySeq(fn.Even, opaque),
	} {
		if _, ok := Compile(f); ok {
			t.Errorf("%s: compiled an opaque function", f.Name)
		}
	}
}

// buildComposite is a deep function exercising every opcode at once,
// with sharing across a Pair — the shape desc.Combine produces for a
// multi-equation system.
func buildComposite() fn.TraceFn {
	evenA := fn.OnChan(fn.Even, "a")
	return fn.Pair(
		fn.ApplySeq(fn.Double, evenA),
		fn.ApplySeq(fn.PrependFn(value.Int(0)), evenA),
		fn.ApplyBi(fn.And, fn.OnChan(fn.RMap, "b"), fn.OmegaConstFn("trues", seq.OfBools(true))),
		fn.ApplySeq(fn.CountTs, fn.ChanFn("b")),
		fn.ConstTraceFn(seq.OfInts(1, 2, 3)),
		fn.OnChan(fn.UntilF, "b"),
	)
}

func TestEvalMatchesInterpreterRandom(t *testing.T) {
	f := buildComposite()
	p, ok := Compile(f)
	if !ok {
		t.Fatal("composite did not compile")
	}
	rng := rand.New(rand.NewSource(1))
	chans := []string{"a", "b", "x"}
	vals := []value.Value{value.Int(0), value.Int(1), value.Int(2), value.T, value.F}
	for iter := 0; iter < 200; iter++ {
		u := trace.Empty
		for n := rng.Intn(8); n > 0; n-- {
			u = u.Append(trace.E(chans[rng.Intn(len(chans))], vals[rng.Intn(len(vals))]))
		}
		// Evaluate the parent then a burst of sons, mimicking expand:
		// the first eval misses the frame cache, the rest hit it.
		evals := []trace.Trace{u}
		for k := 0; k < 3; k++ {
			evals = append(evals, u.Append(trace.E(chans[rng.Intn(len(chans))], vals[rng.Intn(len(vals))])))
		}
		for _, tr := range evals {
			if got, want := p.Eval(tr), f.Apply(tr); !got.Equal(want) {
				t.Fatalf("iter %d, trace %s:\ncompiled    %v\ninterpreted %v", iter, tr, got, want)
			}
		}
	}
}

// TestOutputsAreFresh: the Tuple returned by one Eval must survive any
// number of later Evals unchanged — the evaluator memo retains results
// indefinitely, so aliasing frame scratch would corrupt the memo.
func TestOutputsAreFresh(t *testing.T) {
	f := buildComposite()
	p, _ := Compile(f)
	t1 := trace.Of(trace.E("a", value.Int(2)), trace.E("b", value.T), trace.E("a", value.Int(4)))
	first := p.Eval(t1)
	want := f.Apply(t1)
	// Hammer the same pooled frame with different inputs.
	for i := 0; i < 50; i++ {
		p.Eval(trace.Of(trace.E("a", value.Int(int64(i))), trace.E("b", value.F)))
	}
	if !first.Equal(want) {
		t.Fatalf("earlier result mutated by later evaluations:\n got %v\nwant %v", first, want)
	}
}

// TestOmegaTracksRawLength: the ω-approximation depth follows the raw
// input length, including events on channels the function never reads —
// fn.OmegaConstFn semantics, which Thm1Eligible relies on being exact.
func TestOmegaTracksRawLength(t *testing.T) {
	f := fn.OmegaConstFn("zeros", seq.OfInts(0))
	p, _ := Compile(f)
	u := trace.Empty
	for i := 0; i < 5; i++ {
		if got, want := p.Eval(u), f.Apply(u); !got.Equal(want) {
			t.Fatalf("len %d: %v != %v", i, got, want)
		}
		if got := p.Eval(u)[0].Len(); got != u.Len()+fn.OmegaPad {
			t.Fatalf("len %d: approximation depth %d, want %d", i, got, u.Len()+fn.OmegaPad)
		}
		u = u.Append(trace.E("unread", value.Int(int64(i))))
	}
}
