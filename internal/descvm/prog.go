// Package descvm compiles description functions to bytecode.
//
// The paper's Section 3.3 search evaluates the description's continuous
// functions f and g at every tree node; after the trace and scheduler
// work of earlier iterations, interpreting the fn combinator tree is the
// dominant remaining cost — each evaluation pays a closure call, a fresh
// Tuple and a full trace walk per combinator layer. This package lowers
// the combinator tree recorded in fn.TraceIR to a flat register program
// executed by a small VM, with three structural wins the interpreter
// cannot have:
//
//   - one spine walk per parent group: the VM frame caches the channel
//     histories of a base trace and extends them in O(1) for each
//     sibling or son evaluated next — exactly the access pattern of the
//     breadth-first search, where one g(u) application feeds every son
//     u·e — instead of re-walking the trace per channel per evaluation;
//   - common-subexpression elimination: a channel history or a lowered
//     sub-function used by several equations of a system is computed
//     once per evaluation, keyed on constructor identity (see fn.SeqLower);
//   - pooled intermediates: every instruction writes through a reusable
//     per-register scratch buffer, so an evaluation allocates only its
//     returned Tuple (one backing array plus the Tuple header).
//
// Compiled and interpreted evaluation are observably identical — the
// differential suites (this package's tests, the eqlang corpus fuzz and
// the root parity suite) hold them equal on every input, and the solver
// keeps the interpreter as the oracle.
package descvm

import (
	"fmt"
	"strings"
	"sync"

	"smoothproc/internal/fn"
	"smoothproc/internal/seq"
	"smoothproc/internal/value"
)

// op is a VM opcode. Each specialized opcode inlines one fn.SeqLower
// primitive; opSeqCall/opBiCall are the generic fallback for lowerable
// combinator nodes whose sequence function is an opaque closure.
type op uint8

const (
	opInvalid op = iota
	// opChan: dst = history of channel chans[a] in the input trace.
	opChan
	// opConst: dst = consts[a] (shared, never copied on output).
	opConst
	// opOmega: dst = consts[a] repeated to length rawLen + fn.OmegaPad.
	opOmega
	// opFilter: dst = elements of regs[b] satisfying preds[a].
	opFilter
	// opMap: dst = maps[a] applied pointwise to regs[b].
	opMap
	// opTakeWhile: dst = longest prefix of regs[b] satisfying preds[a].
	opTakeWhile
	// opPrepend: dst = consts[a] followed by regs[b].
	opPrepend
	// opZip: dst = zips[a] applied pointwise to regs[b], regs[c].
	opZip
	// opSeqCall: dst = seqfns[a].Apply(regs[b]) — generic unary call.
	opSeqCall
	// opBiCall: dst = bifns[a].Apply(regs[b], regs[c]) — generic binary.
	opBiCall
)

var opNames = map[op]string{
	opChan: "chan", opConst: "const", opOmega: "omega",
	opFilter: "filter", opMap: "map", opTakeWhile: "takewhile",
	opPrepend: "prepend", opZip: "zip", opSeqCall: "call", opBiCall: "call2",
}

// instr is one register instruction: dst receives the result; a selects
// the operand table entry; b and c name source registers.
type instr struct {
	op           op
	dst, a, b, c uint16
}

// Prog is a compiled description function: a flat instruction sequence
// over virtual registers, with operand tables for channels, constants
// and the Go closures of the lowered primitives. A Prog is immutable
// after Compile and safe for concurrent Eval: mutable evaluation state
// lives in pooled frames (eval.go), never in the Prog.
type Prog struct {
	code   []instr
	nregs  int
	outs   []uint16 // registers forming the output Tuple, in order
	stable []bool   // per-register: result is an immutable table constant

	// soloChan is the channel-table index when the whole program is a
	// single channel projection (one opChan, output width 1) — the shape
	// of a plain `desc e <- a` description — and -1 otherwise. execAt
	// then copies the cached history straight into the output, skipping
	// the push/execute/pop cycle.
	soloChan int

	chans  []string
	consts []seq.Seq
	preds  []func(value.Value) bool
	maps   []func(value.Value) value.Value
	zips   []func(a, b value.Value) value.Value
	seqfns []fn.SeqFn
	bifns  []fn.BiSeqFn

	names []string // per-instruction label for Disasm

	frames sync.Pool
}

// NumRegs returns the register count — exposed for the opcode tests.
func (p *Prog) NumRegs() int { return p.nregs }

// NumInstrs returns the instruction count — exposed for the CSE tests.
func (p *Prog) NumInstrs() int { return len(p.code) }

// Out returns the width of the output Tuple.
func (p *Prog) Out() int { return len(p.outs) }

// chanIdx returns the channel-table index of ch, or -1. Linear scan: the
// paper's networks have a handful of channels, and a scan beats a map
// lookup at that size on the per-event hot path.
func (p *Prog) chanIdx(ch string) int {
	for i, c := range p.chans {
		if c == ch {
			return i
		}
	}
	return -1
}

// Disasm renders the program one instruction per line, e.g.
//
//	r0 = chan a
//	r1 = filter even r0
//	out r1
//
// The rendering is for tests and debugging; it is not a stable format.
func (p *Prog) Disasm() string {
	var b strings.Builder
	for i, ins := range p.code {
		fmt.Fprintf(&b, "r%d = %s", ins.dst, opNames[ins.op])
		if p.names[i] != "" {
			fmt.Fprintf(&b, " %s", p.names[i])
		}
		switch ins.op {
		case opChan, opConst, opOmega:
		case opFilter, opMap, opTakeWhile, opPrepend, opSeqCall:
			fmt.Fprintf(&b, " r%d", ins.b)
		case opZip, opBiCall:
			fmt.Fprintf(&b, " r%d r%d", ins.b, ins.c)
		}
		b.WriteString("\n")
	}
	for _, r := range p.outs {
		fmt.Fprintf(&b, "out r%d\n", r)
	}
	return b.String()
}
