package descvm

import (
	"sync"
	"testing"

	"smoothproc/internal/fn"
)

// TestEvalConcurrent exercises concurrent Eval on one Prog — the
// safe-for-concurrent-use property Prog.Eval claims: all mutable state
// lives in pooled frames, never in the Prog. CI runs this under -race.
func TestEvalConcurrent(t *testing.T) {
	f := buildComposite()
	p, _ := Compile(f)
	traces := sampleTraces()
	want := make([]fn.Tuple, len(traces))
	for i, tr := range traces {
		want[i] = f.Apply(tr)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				for i, tr := range traces {
					if got := p.Eval(tr); !got.Equal(want[i]) {
						t.Errorf("worker %d: trace %s: %v != %v", w, tr, got, want[i])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}
