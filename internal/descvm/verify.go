package descvm

import (
	"fmt"
	"os"
	"sync"
)

// Verify statically checks a compiled program's well-formedness: every
// opcode is known, every operand-table index is in bounds for its
// opcode, every source register is defined before it is read, every
// register is written exactly once, every output register is written
// and in range, constant-stability marks sit only on constant loads,
// and the soloChan fast-path claim matches the program shape.
//
// The compiler only emits programs that pass (the package fuzz target
// FuzzVerifyNeverRejectsCompiled holds that invariant), so a Verify
// failure means a compiler bug or a corrupted Prog — never a property
// of the spec being compiled. Verify reads only immutable Prog state
// and is safe to call concurrently.
func Verify(p *Prog) error {
	if p == nil {
		return fmt.Errorf("descvm: verify: nil program")
	}
	if p.nregs != len(p.code) {
		// The compiler allocates exactly one fresh register per emitted
		// instruction; a mismatch means registers that are never written
		// (reads of them would see stale pool contents) or double writes.
		return fmt.Errorf("descvm: verify: %d registers for %d instructions", p.nregs, len(p.code))
	}
	if len(p.stable) != len(p.code) {
		return fmt.Errorf("descvm: verify: stable marks cover %d of %d instructions", len(p.stable), len(p.code))
	}
	if len(p.names) != len(p.code) {
		return fmt.Errorf("descvm: verify: disasm names cover %d of %d instructions", len(p.names), len(p.code))
	}
	written := make([]bool, p.nregs)
	for i, ins := range p.code {
		if int(ins.dst) >= p.nregs {
			return fmt.Errorf("descvm: verify: instr %d writes r%d, register file has %d", i, ins.dst, p.nregs)
		}
		if written[ins.dst] {
			return fmt.Errorf("descvm: verify: instr %d rewrites r%d", i, ins.dst)
		}
		readsB, readsC := false, false
		var table string
		var tableLen int
		switch ins.op {
		case opChan:
			table, tableLen = "chan", len(p.chans)
		case opConst, opOmega:
			table, tableLen = "const", len(p.consts)
		case opFilter, opTakeWhile:
			table, tableLen, readsB = "pred", len(p.preds), true
		case opMap:
			table, tableLen, readsB = "map", len(p.maps), true
		case opPrepend:
			table, tableLen, readsB = "const", len(p.consts), true
		case opZip:
			table, tableLen, readsB, readsC = "zip", len(p.zips), true, true
		case opSeqCall:
			table, tableLen, readsB = "seqfn", len(p.seqfns), true
		case opBiCall:
			table, tableLen, readsB, readsC = "bifn", len(p.bifns), true, true
		default:
			return fmt.Errorf("descvm: verify: instr %d has unknown opcode %d", i, ins.op)
		}
		if int(ins.a) >= tableLen {
			return fmt.Errorf("descvm: verify: instr %d (%s) indexes %s table at %d, table has %d",
				i, opNames[ins.op], table, ins.a, tableLen)
		}
		if readsB && !written[ins.b] {
			return fmt.Errorf("descvm: verify: instr %d (%s) reads r%d before it is written", i, opNames[ins.op], ins.b)
		}
		if readsC && !written[ins.c] {
			return fmt.Errorf("descvm: verify: instr %d (%s) reads r%d before it is written", i, opNames[ins.op], ins.c)
		}
		if !readsB && ins.b != 0 {
			return fmt.Errorf("descvm: verify: instr %d (%s) carries a stray b operand r%d", i, opNames[ins.op], ins.b)
		}
		if !readsC && ins.c != 0 {
			return fmt.Errorf("descvm: verify: instr %d (%s) carries a stray c operand r%d", i, opNames[ins.op], ins.c)
		}
		if p.stable[i] && ins.op != opConst {
			// eval.go skips the output copy for stable registers on the
			// grounds that they alias an immutable table constant; any
			// other opcode writes through the scratch buffer, which the
			// next evaluation reuses.
			return fmt.Errorf("descvm: verify: instr %d (%s) is marked stable but is not a const load", i, opNames[ins.op])
		}
		written[ins.dst] = true
	}
	if len(p.outs) == 0 {
		return fmt.Errorf("descvm: verify: no output registers")
	}
	for i, r := range p.outs {
		if int(r) >= p.nregs {
			return fmt.Errorf("descvm: verify: output %d names r%d, register file has %d", i, r, p.nregs)
		}
		if !written[r] {
			return fmt.Errorf("descvm: verify: output %d names r%d, which no instruction writes", i, r)
		}
	}
	for i, f := range p.preds {
		if f == nil {
			return fmt.Errorf("descvm: verify: pred table entry %d is nil", i)
		}
	}
	for i, f := range p.maps {
		if f == nil {
			return fmt.Errorf("descvm: verify: map table entry %d is nil", i)
		}
	}
	for i, f := range p.zips {
		if f == nil {
			return fmt.Errorf("descvm: verify: zip table entry %d is nil", i)
		}
	}
	if p.soloChan >= 0 {
		switch {
		case len(p.code) != 1 || p.code[0].op != opChan:
			return fmt.Errorf("descvm: verify: soloChan claimed on a %d-instruction program", len(p.code))
		case int(p.code[0].a) != p.soloChan:
			return fmt.Errorf("descvm: verify: soloChan %d disagrees with the chan load of %d", p.soloChan, p.code[0].a)
		case len(p.outs) != 1 || p.outs[0] != p.code[0].dst:
			return fmt.Errorf("descvm: verify: soloChan program does not output its single register")
		}
	}
	return nil
}

// verifyOnCompile reports whether every Compile should run the verifier
// on its result and panic on failure — the debug/CI mode, enabled with
// SMOOTHPROC_VERIFY=1. Off by default: Verify is O(program) and Compile
// sits on cached hot paths.
var verifyOnCompile = sync.OnceValue(func() bool {
	return os.Getenv("SMOOTHPROC_VERIFY") != ""
})
