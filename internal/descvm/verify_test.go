package descvm

import (
	"strings"
	"testing"

	"smoothproc/internal/fn"
	"smoothproc/internal/seq"
	"smoothproc/internal/value"
)

// mustCompile compiles a function the tests know to be lowerable.
func mustCompile(t *testing.T, tf fn.TraceFn) *Prog {
	t.Helper()
	p, ok := Compile(tf)
	if !ok {
		t.Fatalf("%s: not lowerable", tf.Name)
	}
	return p
}

// TestVerifyAcceptsCompiled holds Verify on a spread of compiler
// outputs: the solo-channel fast path, CSE'd reuse, generic calls,
// ω-constants and a wide Pair.
func TestVerifyAcceptsCompiled(t *testing.T) {
	shared := fn.ApplySeq(fn.Even, fn.ChanFn("a"))
	funcs := []fn.TraceFn{
		fn.ChanFn("a"),
		fn.ConstTraceFn(seq.OfInts(1, 2)),
		fn.OmegaConstFn("trues", seq.OfBools(true)),
		fn.ApplySeq(fn.PrependFn(value.Int(0)), fn.ApplySeq(fn.Double, fn.ChanFn("d"))),
		fn.ApplySeq(fn.CountTs, fn.ChanFn("b")), // opaque SeqFn → generic call
		fn.ApplyBi(fn.And, fn.ChanFn("b"), fn.ChanFn("c")),
		fn.ApplyBi(fn.NonStrictAnd, fn.ChanFn("b"), fn.ChanFn("c")), // opaque BiSeqFn
		fn.Pair(shared, shared, fn.ChanFn("b"), fn.ConstTraceFn(seq.OfInts(7))),
	}
	for _, tf := range funcs {
		if err := Verify(mustCompile(t, tf)); err != nil {
			t.Errorf("%s: %v", tf.Name, err)
		}
	}
}

// corrupt deep-copies a compiled program so a test can break one
// invariant without poisoning the prog cache's shared instance.
func corrupt(p *Prog, mutate func(*Prog)) *Prog {
	q := &Prog{
		code:     append([]instr(nil), p.code...),
		nregs:    p.nregs,
		outs:     append([]uint16(nil), p.outs...),
		stable:   append([]bool(nil), p.stable...),
		soloChan: p.soloChan,
		chans:    append([]string(nil), p.chans...),
		consts:   append([]seq.Seq(nil), p.consts...),
		preds:    append([]func(value.Value) bool(nil), p.preds...),
		maps:     append([]func(value.Value) value.Value(nil), p.maps...),
		zips:     append([]func(a, b value.Value) value.Value(nil), p.zips...),
		seqfns:   append([]fn.SeqFn(nil), p.seqfns...),
		bifns:    append([]fn.BiSeqFn(nil), p.bifns...),
		names:    append([]string(nil), p.names...),
	}
	mutate(q)
	return q
}

// TestVerifyRejectsCorrupted checks every class of invariant the
// verifier guards, by corrupting a known-good program one way at a time.
func TestVerifyRejectsCorrupted(t *testing.T) {
	base := mustCompile(t, fn.Pair(
		fn.ApplySeq(fn.Even, fn.ChanFn("a")),
		fn.ApplyBi(fn.And, fn.ChanFn("b"), fn.ChanFn("c")),
	))
	if err := Verify(base); err != nil {
		t.Fatalf("baseline: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Prog)
		want   string
	}{
		{"nil program is rejected", nil, "nil program"},
		{"unknown opcode", func(p *Prog) { p.code[0].op = opInvalid }, "unknown opcode"},
		{"chan table index out of bounds", func(p *Prog) { p.code[0].a = 99 }, "indexes chan table"},
		{"read before write", func(p *Prog) { p.code[1].b = p.code[len(p.code)-1].dst }, "before it is written"},
		{"double write", func(p *Prog) { p.code[1].dst = p.code[0].dst }, "rewrites"},
		{"register out of range", func(p *Prog) { p.code[0].dst = uint16(p.nregs) }, "register file has"},
		{"register never written", func(p *Prog) { p.nregs++ }, "registers for"},
		{"no outputs", func(p *Prog) { p.outs = nil }, "no output registers"},
		{"output out of range", func(p *Prog) { p.outs[0] = uint16(p.nregs) }, "register file has"},
		{"stray operand on a leaf", func(p *Prog) { p.code[0].b = 1 }, "stray b operand"},
		{"stable mark off a const", func(p *Prog) { p.stable[0] = true }, "marked stable"},
		{"stable marks truncated", func(p *Prog) { p.stable = p.stable[:1] }, "stable marks cover"},
		{"names truncated", func(p *Prog) { p.names = p.names[:1] }, "names cover"},
		{"nil pred", func(p *Prog) { p.preds[0] = nil }, "pred table entry"},
		{"bogus soloChan", func(p *Prog) { p.soloChan = 0 }, "soloChan"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var q *Prog
			if tc.mutate != nil {
				q = corrupt(base, tc.mutate)
			}
			err := Verify(q)
			if err == nil {
				t.Fatalf("corruption went undetected")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("got %q, want it to mention %q", err, tc.want)
			}
		})
	}
}

// TestVerifySoloChanShape pins the fast-path consistency check on the
// genuine solo program.
func TestVerifySoloChanShape(t *testing.T) {
	p := mustCompile(t, fn.ChanFn("e"))
	if p.soloChan < 0 {
		t.Fatalf("single channel projection did not take the solo fast path")
	}
	if err := Verify(p); err != nil {
		t.Fatalf("solo program rejected: %v", err)
	}
	bad := corrupt(p, func(q *Prog) { q.soloChan = 1 })
	if err := Verify(bad); err == nil {
		t.Fatal("mismatched soloChan index went undetected")
	}
}
