package descvm

import (
	"fmt"
	"sync"
	"sync/atomic"

	"smoothproc/internal/fn"
	"smoothproc/internal/seq"
	"smoothproc/internal/value"
)

// progCache memoizes Compile per IR identity. A TraceFn's IR pointer is
// allocated once by its constructor and shared by every copy of the
// function value, so it names the function the way fn.SeqLower names a
// sequence primitive. Caching keeps repeated searches of one
// description — the service's steady state, benchmark loops — from
// re-lowering per search, and shares the compiled program's warm frame
// pool across searches. Sound because Progs are immutable and safe for
// concurrent Eval.
var progCache sync.Map // *fn.TraceIR → *Prog

// progCacheLimit bounds progCache. Long-lived processes hold a handful
// of programs, but fuzzers and property tests construct thousands of
// throwaway descriptions whose IR pointers die immediately; past the
// limit Compile stops inserting and hands back uncached programs, so
// the cache cannot anchor unbounded garbage.
const progCacheLimit = 1024

var progCacheSize atomic.Int64

// Compile lowers f to a bytecode program. ok is false when the function
// carries no IR — it was built from an opaque combinator (fn.OnChans,
// fn.ProjectArg, fn.SubstChan) and can only be interpreted. Everything
// the eqlang surface language expresses compiles. Results are cached by
// IR identity, so compiling the same description again is a map lookup.
func Compile(f fn.TraceFn) (*Prog, bool) {
	if f.IR == nil {
		return nil, false
	}
	if p, ok := progCache.Load(f.IR); ok {
		return p.(*Prog), true
	}
	p, ok := compile(f)
	if !ok {
		return nil, false
	}
	if verifyOnCompile() {
		// Debug/CI mode (SMOOTHPROC_VERIFY=1): a program that fails the
		// static verifier is a compiler bug, never an input condition, so
		// it must not escape into an evaluator.
		if err := Verify(p); err != nil {
			panic(err)
		}
	}
	if progCacheSize.Load() >= progCacheLimit {
		return p, true
	}
	// Concurrent compiles of the same IR may race here; either Prog is
	// correct, and LoadOrStore makes every caller agree on one.
	got, loaded := progCache.LoadOrStore(f.IR, p)
	if !loaded {
		progCacheSize.Add(1)
	}
	return got.(*Prog), true
}

func compile(f fn.TraceFn) (*Prog, bool) {
	c := &compiler{p: &Prog{}, vn: map[string]uint16{}}
	outs, err := c.emit(f.IR)
	if err != nil {
		return nil, false
	}
	p := c.p
	p.outs = outs
	p.names = c.names
	if len(p.outs) != f.Out {
		// The IR disagrees with the declared width — a constructor bug,
		// not an input condition; refuse to compile rather than ship a
		// program of the wrong shape.
		return nil, false
	}
	p.soloChan = -1
	if len(p.code) == 1 && p.code[0].op == opChan &&
		len(p.outs) == 1 && p.outs[0] == p.code[0].dst {
		p.soloChan = int(p.code[0].a)
	}
	p.frames.New = func() any { return newFrame(p) }
	return p, true
}

// compiler carries the value-numbering state of one Compile call.
type compiler struct {
	p     *Prog
	vn    map[string]uint16 // structural key → register holding it
	names []string          // per-instruction Disasm label
	uniq  int               // counter for non-CSE-able keys
}

// emit lowers one IR node and returns the registers holding its
// components (one for every node kind except IRPair).
func (c *compiler) emit(ir *fn.TraceIR) ([]uint16, error) {
	switch ir.Kind {
	case fn.IRPair:
		outs := make([]uint16, 0, len(ir.Args))
		for _, a := range ir.Args {
			rs, err := c.emit(a)
			if err != nil {
				return nil, err
			}
			outs = append(outs, rs...)
		}
		return outs, nil

	case fn.IRChan:
		return c.cse("c:"+ir.Chan, func() instr {
			return instr{op: opChan, a: c.addChan(ir.Chan)}
		}, ir.Chan, false)

	case fn.IRConst:
		return c.cse("k:"+ir.Const.String(), func() instr {
			return instr{op: opConst, a: c.addConst(ir.Const)}
		}, ir.Const.String(), true)

	case fn.IROmega:
		return c.cse("w:"+ir.Const.String(), func() instr {
			return instr{op: opOmega, a: c.addConst(ir.Const)}
		}, ir.Const.String()+"^ω", false)

	case fn.IRSeqApply:
		return c.emitSeqApply(ir)

	case fn.IRBiApply:
		return c.emitBiApply(ir)
	}
	return nil, fmt.Errorf("descvm: unknown IR kind %d", ir.Kind)
}

func (c *compiler) emitSeqApply(ir *fn.TraceIR) ([]uint16, error) {
	l := ir.Sf.Lower
	if l != nil && l.Kind == fn.LowerConst {
		// Constant function: the operand is dead, never emit it.
		return c.cse("k:"+l.Const.String(), func() instr {
			return instr{op: opConst, a: c.addConst(l.Const)}
		}, l.Const.String(), true)
	}
	src, err := c.emitArg(ir.Args[0])
	if err != nil {
		return nil, err
	}
	if l == nil {
		// Opaque closure: generic call, no sound identity to CSE on
		// (distinct closures share code pointers), so every use gets its
		// own register.
		c.uniq++
		return c.cse(fmt.Sprintf("u:%d", c.uniq), func() instr {
			return instr{op: opSeqCall, a: c.addSeqFn(ir.Sf), b: src}
		}, ir.Sf.Name, false)
	}
	// Constructor identity: each FilterFn/MapFn/... call allocates one
	// SeqLower, so its pointer names the constructed function (see
	// fn.SeqLower) and two IR nodes with the same Lower and operand
	// compute the same value.
	key := fmt.Sprintf("s:%p:%d", l, src)
	switch l.Kind {
	case fn.LowerFilter:
		return c.cse(key, func() instr {
			return instr{op: opFilter, a: c.addPred(l.Pred), b: src}
		}, ir.Sf.Name, false)
	case fn.LowerMap:
		return c.cse(key, func() instr {
			return instr{op: opMap, a: c.addMap(l.Map), b: src}
		}, ir.Sf.Name, false)
	case fn.LowerTakeWhile:
		return c.cse(key, func() instr {
			return instr{op: opTakeWhile, a: c.addPred(l.Pred), b: src}
		}, ir.Sf.Name, false)
	case fn.LowerPrepend:
		return c.cse(key, func() instr {
			return instr{op: opPrepend, a: c.addConst(l.Const), b: src}
		}, ir.Sf.Name, false)
	}
	return nil, fmt.Errorf("descvm: unknown SeqLower kind %d", l.Kind)
}

func (c *compiler) emitBiApply(ir *fn.TraceIR) ([]uint16, error) {
	a, err := c.emitArg(ir.Args[0])
	if err != nil {
		return nil, err
	}
	b, err := c.emitArg(ir.Args[1])
	if err != nil {
		return nil, err
	}
	if l := ir.Bi.Lower; l != nil {
		key := fmt.Sprintf("z:%p:%d:%d", l, a, b)
		return c.cse(key, func() instr {
			return instr{op: opZip, a: c.addZip(l.Zip), b: a, c: b}
		}, ir.Bi.Name, false)
	}
	c.uniq++
	return c.cse(fmt.Sprintf("u:%d", c.uniq), func() instr {
		return instr{op: opBiCall, a: c.addBiFn(ir.Bi), b: a, c: b}
	}, ir.Bi.Name, false)
}

// emitArg lowers a width-1 operand node.
func (c *compiler) emitArg(ir *fn.TraceIR) (uint16, error) {
	rs, err := c.emit(ir)
	if err != nil {
		return 0, err
	}
	if len(rs) != 1 {
		return 0, fmt.Errorf("descvm: operand of width %d, want 1", len(rs))
	}
	return rs[0], nil
}

// cse returns the register already holding key, or allocates one, emits
// build() targeting it and records it under key. stable marks registers
// whose value is an immutable table constant (skipped by the output
// copy in eval.go).
func (c *compiler) cse(key string, build func() instr, name string, stable bool) ([]uint16, error) {
	if r, ok := c.vn[key]; ok {
		return []uint16{r}, nil
	}
	if c.p.nregs > 0xffff {
		return nil, fmt.Errorf("descvm: register file overflow")
	}
	r := uint16(c.p.nregs)
	c.p.nregs++
	ins := build()
	ins.dst = r
	c.p.code = append(c.p.code, ins)
	c.p.stable = append(c.p.stable, stable)
	c.names = append(c.names, name)
	c.vn[key] = r
	return []uint16{r}, nil
}

func (c *compiler) addChan(ch string) uint16 {
	for i, have := range c.p.chans {
		if have == ch {
			return uint16(i)
		}
	}
	c.p.chans = append(c.p.chans, ch)
	return uint16(len(c.p.chans) - 1)
}

func (c *compiler) addConst(k seq.Seq) uint16 {
	c.p.consts = append(c.p.consts, k)
	return uint16(len(c.p.consts) - 1)
}

func (c *compiler) addPred(f func(v value.Value) bool) uint16 {
	c.p.preds = append(c.p.preds, f)
	return uint16(len(c.p.preds) - 1)
}

func (c *compiler) addMap(f func(v value.Value) value.Value) uint16 {
	c.p.maps = append(c.p.maps, f)
	return uint16(len(c.p.maps) - 1)
}

func (c *compiler) addZip(f func(a, b value.Value) value.Value) uint16 {
	c.p.zips = append(c.p.zips, f)
	return uint16(len(c.p.zips) - 1)
}

func (c *compiler) addSeqFn(f fn.SeqFn) uint16 {
	c.p.seqfns = append(c.p.seqfns, f)
	return uint16(len(c.p.seqfns) - 1)
}

func (c *compiler) addBiFn(f fn.BiSeqFn) uint16 {
	c.p.bifns = append(c.p.bifns, f)
	return uint16(len(c.p.bifns) - 1)
}
