package descvm

import (
	"testing"

	"smoothproc/internal/fn"
	"smoothproc/internal/seq"
	"smoothproc/internal/trace"
	"smoothproc/internal/value"
)

// fuzzBuild interprets raw bytes as a tiny stack program over the
// lowerable combinator language: each opcode byte pushes a leaf or
// combines stack entries, and the leftover stack becomes one Pair. This
// gives the fuzzer structural control over the function under test —
// depth, sharing, dead operands — without ever producing an input the
// compiler must refuse.
func fuzzBuild(ops []byte) fn.TraceFn {
	var stack []fn.TraceFn
	pop := func() fn.TraceFn {
		if len(stack) == 0 {
			return fn.ChanFn("a")
		}
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return f
	}
	for _, op := range ops {
		switch op % 12 {
		case 0:
			stack = append(stack, fn.ChanFn("a"))
		case 1:
			stack = append(stack, fn.ChanFn("b"))
		case 2:
			stack = append(stack, fn.ConstTraceFn(seq.OfInts(1, 2, 3)))
		case 3:
			stack = append(stack, fn.OmegaConstFn("trues", seq.OfBools(true)))
		case 4:
			stack = append(stack, fn.ApplySeq(fn.Even, pop()))
		case 5:
			stack = append(stack, fn.ApplySeq(fn.Double, pop()))
		case 6:
			stack = append(stack, fn.ApplySeq(fn.PrependFn(value.Int(0)), pop()))
		case 7:
			stack = append(stack, fn.ApplySeq(fn.UntilF, pop()))
		case 8:
			stack = append(stack, fn.ApplySeq(fn.CountTs, pop()))
		case 9:
			stack = append(stack, fn.ApplyBi(fn.And, pop(), pop()))
		case 10:
			stack = append(stack, fn.ApplyBi(fn.NonStrictAnd, pop(), pop()))
		case 11:
			// Deliberate sharing: duplicate the top so CSE paths run.
			top := pop()
			stack = append(stack, top, top)
		}
	}
	if len(stack) == 0 {
		return fn.ChanFn("a")
	}
	if len(stack) == 1 {
		return stack[0]
	}
	return fn.Pair(stack...)
}

// fuzzTrace decodes the remaining bytes as (channel, value) pairs,
// including events on a channel no combinator reads.
func fuzzTrace(bs []byte) trace.Trace {
	chans := []string{"a", "b", "x"}
	vals := []value.Value{value.Int(0), value.Int(1), value.Int(2), value.T, value.F}
	u := trace.Empty
	for i := 0; i+1 < len(bs) && u.Len() < 12; i += 2 {
		u = u.Append(trace.E(chans[int(bs[i])%len(chans)], vals[int(bs[i+1])%len(vals)]))
	}
	return u
}

// FuzzEvalMatchesInterpreter holds the VM equal to the direct IR walk:
// for any bytecode-lowerable function and any trace, Eval must return
// exactly fn.TraceFn.Apply. Every prefix is evaluated root-to-leaf, then
// the full trace twice more — the session-frame hit, adopt and reload
// paths all fire, the same access pattern the solver's expand produces.
func FuzzEvalMatchesInterpreter(f *testing.F) {
	f.Add([]byte{0, 4}, []byte{0, 0, 1, 3})
	f.Add([]byte{1, 7, 3, 9}, []byte{1, 3, 1, 4, 2, 0})
	f.Add([]byte{0, 11, 5, 6}, []byte{0, 1, 0, 2})
	f.Add([]byte{2}, []byte{})
	f.Fuzz(func(t *testing.T, ops, events []byte) {
		if len(ops) > 32 {
			t.Skip("function too deep for the differential budget")
		}
		tf := fuzzBuild(ops)
		p, ok := Compile(tf)
		if !ok {
			t.Fatalf("%s: fuzz grammar produced a non-lowerable function", tf.Name)
		}
		u := fuzzTrace(events)
		evals := u.Prefixes()
		evals = append(evals, u, u)
		for i, tr := range evals {
			got, want := p.Eval(tr), tf.Apply(tr)
			if !got.Equal(want) {
				t.Fatalf("%s: eval %d of %s:\ncompiled    %v\ninterpreted %v\n%s",
					tf.Name, i, tr, got, want, p.Disasm())
			}
		}
	})
}

// FuzzVerifyNeverRejectsCompiled holds the static verifier sound with
// respect to the compiler: any program Compile produces — any program
// Eval would accept work from — must pass Verify. A rejection here is a
// verifier that drifted stricter than the compiler (or a compiler
// emitting genuinely malformed code, which the differential fuzz above
// would also catch).
func FuzzVerifyNeverRejectsCompiled(f *testing.F) {
	f.Add([]byte{0, 4})
	f.Add([]byte{1, 7, 3, 9})
	f.Add([]byte{0, 11, 5, 6, 2, 9, 10})
	f.Add([]byte{3, 8})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 64 {
			t.Skip("function too deep for the budget")
		}
		tf := fuzzBuild(ops)
		p, ok := Compile(tf)
		if !ok {
			t.Fatalf("%s: fuzz grammar produced a non-lowerable function", tf.Name)
		}
		if err := Verify(p); err != nil {
			t.Fatalf("%s: verifier rejects a compiled program: %v\n%s", tf.Name, err, p.Disasm())
		}
		// The program must also actually evaluate: Verify accepting a
		// prog Eval would crash on would be vacuous.
		if got := p.Eval(fuzzTrace(ops)); got.Width() != tf.Out {
			t.Fatalf("%s: eval width %d, want %d", tf.Name, got.Width(), tf.Out)
		}
	})
}
