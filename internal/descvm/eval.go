package descvm

import (
	"smoothproc/internal/fn"
	"smoothproc/internal/seq"
	"smoothproc/internal/trace"
	"smoothproc/internal/value"
)

// frame is the mutable state of one evaluation: the register file, the
// per-register scratch buffers the specialized opcodes write through,
// and the incrementally maintained channel histories of a cached base
// trace. Frames live in the Prog's sync.Pool: Eval takes one, runs, and
// returns it, so a goroutine repeatedly evaluating neighbours of the
// same parent — the breadth-first search's access pattern — keeps
// getting its own warm frame back and extends the histories in O(1)
// instead of re-walking the trace spine.
type frame struct {
	regs     []seq.Seq
	scratch  [][]value.Value
	chanVals [][]value.Value // per channel-table index, history of base(+push)
	events   []trace.Event   // reusable buffer for full spine loads

	base      trace.Trace // the trace whose histories chanVals holds
	baseValid bool
}

func newFrame(p *Prog) *frame {
	return &frame{
		regs:     make([]seq.Seq, p.nregs),
		scratch:  make([][]value.Value, p.nregs),
		chanVals: make([][]value.Value, len(p.chans)),
	}
}

// load rebuilds the frame's channel histories for base: one walk of the
// spine, distributing events to per-channel buffers.
func (p *Prog) load(fr *frame, base trace.Trace) {
	for i := range fr.chanVals {
		fr.chanVals[i] = fr.chanVals[i][:0]
	}
	fr.events = base.AppendEvents(fr.events[:0])
	for _, e := range fr.events {
		if ci := p.chanIdx(e.Ch); ci >= 0 {
			fr.chanVals[ci] = append(fr.chanVals[ci], e.Val)
		}
	}
	fr.base = base
	fr.baseValid = true
}

// Eval applies the compiled function to t, returning a Tuple the caller
// owns (components never alias frame state). It is safe for concurrent
// use; see TestEvalConcurrent for the race check.
//
// The frame cache keys on parent(t): a full spine walk happens only
// when the parent changes, so evaluating all sons u·e of one node, or
// sibling nodes u1, u2 of one parent in BFS order, costs one walk per
// parent group plus an O(1) push/pop per evaluation.
func (p *Prog) Eval(t trace.Trace) fn.Tuple {
	fr := p.frames.Get().(*frame)
	out := p.evalFrame(fr, t)
	p.frames.Put(fr)
	return out
}

// Session is a single-goroutine evaluation handle owning two dedicated
// frames. A sequential search evaluating one side thousands of times
// skips the pool round-trip per call, and — unlike pooled frames, which
// the GC clears between cycles — its base caches survive the whole
// search. Two frames because the breadth-first search alternates
// between two bases per node: the limit check evaluates at the node
// (base = its parent's level) and the expansion evaluates the node's
// sons (base = the node); with a single frame each alternation would
// re-walk a spine, with two both bases stay warm. Not safe for
// concurrent use; concurrent callers use Prog.Eval.
type Session struct {
	p        *Prog
	fr, prev *frame // most- and second-most-recently used
}

// NewSession returns a fresh single-goroutine handle for p.
func (p *Prog) NewSession() *Session {
	return &Session{p: p, fr: newFrame(p), prev: newFrame(p)}
}

// Eval is Prog.Eval through the session's dedicated frames.
//
// The search's bases drift by O(1) edits — a node's expansion base
// extends its limit-check base by one event, and consecutive nodes of
// one level are spine siblings — so before paying a full load the
// session tries to adopt the new base by an O(1) push/pop on a frame it
// already has. prev is tried first for adoption: in the steady BFS
// rhythm fr holds the parent-level base the very next evaluation needs
// again, and morphing prev instead keeps it parked there.
func (s *Session) Eval(t trace.Trace) fn.Tuple {
	n := t.Len()
	parent := trace.Empty
	if n > 0 {
		parent = t.Take(n - 1)
	}
	switch {
	case s.fr.matches(parent, n-1):
	case s.prev.matches(parent, n-1), s.prev.adopt(s.p, parent, n-1):
		s.fr, s.prev = s.prev, s.fr
	case s.fr.adopt(s.p, parent, n-1):
	default:
		s.fr, s.prev = s.prev, s.fr
		s.p.load(s.fr, parent)
	}
	return s.p.execAt(s.fr, t, n)
}

// matches reports whether the frame's cached base is parent (whose
// length the caller supplies as n; n < 0 means parent is ⊥).
func (fr *frame) matches(parent trace.Trace, n int) bool {
	if n < 0 {
		n = 0
	}
	return fr.baseValid && fr.base.Len() == n && parent.Equal(fr.base)
}

// adopt rebases the frame onto parent when an O(1) edit gets it there:
// parent extends the base by one event, or is its spine sibling (same
// parent, different last event). The prefix comparisons are pointer
// hits on shared spines, so a failed adopt is cheap too. n is parent's
// length as in matches.
func (fr *frame) adopt(p *Prog, parent trace.Trace, n int) bool {
	if !fr.baseValid || n <= 0 {
		return false
	}
	bn := fr.base.Len()
	switch bn {
	case n - 1:
		if !parent.Take(n - 1).Equal(fr.base) {
			return false
		}
	case n:
		if !parent.Take(n - 1).Equal(fr.base.Take(n - 1)) {
			return false
		}
		old := fr.base.Last()
		if ci := p.chanIdx(old.Ch); ci >= 0 {
			vs := fr.chanVals[ci]
			fr.chanVals[ci] = vs[:len(vs)-1]
		}
	default:
		return false
	}
	e := parent.Last()
	if ci := p.chanIdx(e.Ch); ci >= 0 {
		fr.chanVals[ci] = append(fr.chanVals[ci], e.Val)
	}
	fr.base = parent
	return true
}

func (p *Prog) evalFrame(fr *frame, t trace.Trace) fn.Tuple {
	n := t.Len()
	parent := trace.Empty
	if n > 0 {
		parent = t.Take(n - 1)
	}
	if !fr.matches(parent, n-1) {
		p.load(fr, parent)
	}
	return p.execAt(fr, t, n)
}

// execAt runs the program for t on a frame whose base is parent(t):
// push t's last event, execute, pop.
func (p *Prog) execAt(fr *frame, t trace.Trace, n int) fn.Tuple {
	if p.soloChan >= 0 {
		// Single channel projection: the answer is the cached history
		// (plus t's own last event when it lands on the channel), read
		// out directly — no push/pop, no instruction dispatch.
		hist := fr.chanVals[p.soloChan]
		extra := 0
		var lastVal value.Value
		if n > 0 {
			if last := t.Last(); last.Ch == p.chans[p.soloChan] {
				lastVal = last.Val
				extra = 1
			}
		}
		backing := make([]value.Value, len(hist)+extra)
		copy(backing, hist)
		if extra == 1 {
			backing[len(hist)] = lastVal
		}
		return fn.Tuple{seq.Seq(backing)}
	}
	if n == 0 {
		return p.exec(fr, 0)
	}
	last := t.Last()
	ci := p.chanIdx(last.Ch)
	if ci >= 0 {
		fr.chanVals[ci] = append(fr.chanVals[ci], last.Val)
	}
	out := p.exec(fr, n)
	if ci >= 0 {
		fr.chanVals[ci] = fr.chanVals[ci][:len(fr.chanVals[ci])-1]
	}
	return out
}

// exec runs the instruction sequence against the frame's loaded
// histories and copies the output registers into a fresh Tuple. rawLen
// is the unprojected input length |t|, which opOmega's approximation
// depth depends on (fn.OmegaConstFn semantics).
func (p *Prog) exec(fr *frame, rawLen int) fn.Tuple {
	regs := fr.regs
	for _, ins := range p.code {
		switch ins.op {
		case opChan:
			regs[ins.dst] = seq.Seq(fr.chanVals[ins.a])
		case opConst:
			regs[ins.dst] = p.consts[ins.a]
		case opOmega:
			period := p.consts[ins.a]
			if len(period) == 0 {
				regs[ins.dst] = seq.Empty
				continue
			}
			n := rawLen + fn.OmegaPad
			buf := fr.scratch[ins.dst]
			if cap(buf) < n {
				buf = make([]value.Value, n)
			}
			buf = buf[:n]
			for i := range buf {
				buf[i] = period[i%len(period)]
			}
			fr.scratch[ins.dst] = buf
			regs[ins.dst] = seq.Seq(buf)
		case opFilter:
			pred := p.preds[ins.a]
			buf := fr.scratch[ins.dst][:0]
			for _, v := range regs[ins.b] {
				if pred(v) {
					buf = append(buf, v)
				}
			}
			fr.scratch[ins.dst] = buf
			regs[ins.dst] = seq.Seq(buf)
		case opMap:
			f := p.maps[ins.a]
			buf := fr.scratch[ins.dst][:0]
			for _, v := range regs[ins.b] {
				buf = append(buf, f(v))
			}
			fr.scratch[ins.dst] = buf
			regs[ins.dst] = seq.Seq(buf)
		case opTakeWhile:
			pred := p.preds[ins.a]
			src := regs[ins.b]
			n := 0
			for n < len(src) && pred(src[n]) {
				n++
			}
			// Aliases src within this run; the output copy below keeps
			// the alias from escaping.
			regs[ins.dst] = src[:n]
		case opPrepend:
			buf := fr.scratch[ins.dst][:0]
			buf = append(buf, p.consts[ins.a]...)
			buf = append(buf, regs[ins.b]...)
			fr.scratch[ins.dst] = buf
			regs[ins.dst] = seq.Seq(buf)
		case opZip:
			f := p.zips[ins.a]
			a, b := regs[ins.b], regs[ins.c]
			n := min(len(a), len(b))
			buf := fr.scratch[ins.dst][:0]
			for i := 0; i < n; i++ {
				buf = append(buf, f(a[i], b[i]))
			}
			fr.scratch[ins.dst] = buf
			regs[ins.dst] = seq.Seq(buf)
		case opSeqCall:
			regs[ins.dst] = p.seqfns[ins.a].Apply(regs[ins.b])
		case opBiCall:
			regs[ins.dst] = p.bifns[ins.a].Apply(regs[ins.b], regs[ins.c])
		}
	}

	// Copy the outputs into one fresh backing array: callers (the
	// evaluator memo in particular) retain the Tuple indefinitely, while
	// every non-stable register aliases frame state that the next Eval
	// overwrites. Table constants (stable registers) are immutable and
	// shared, exactly as the interpreter's ConstTraceFn shares its k.
	total := 0
	for _, r := range p.outs {
		if !p.stable[r] {
			total += len(regs[r])
		}
	}
	out := make(fn.Tuple, len(p.outs))
	backing := make([]value.Value, total)
	o := 0
	for i, r := range p.outs {
		v := regs[r]
		if p.stable[r] {
			out[i] = v
			continue
		}
		dst := backing[o : o+len(v) : o+len(v)]
		copy(dst, v)
		out[i] = seq.Seq(dst)
		o += len(v)
	}
	return out
}
