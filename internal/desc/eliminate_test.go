package desc

import (
	"strings"
	"testing"

	"smoothproc/internal/fn"
	"smoothproc/internal/seq"
	"smoothproc/internal/trace"
	"smoothproc/internal/value"
)

// pipelineSystem is a little three-channel pipeline used to exercise
// elimination: a ⟵ ⟨1 2⟩ (source), b ⟵ 2×a (the variable to eliminate),
// e ⟵ b (sink).
func pipelineSystem() System {
	return System{
		Name: "pipe",
		Descs: []Description{
			MustNew("src", fn.ChanFn("a"), fn.ConstTraceFn(seq.OfInts(1, 2))),
			MustNew("mid", fn.ChanFn("b"), fn.OnChan(fn.Double, "a")),
			MustNew("snk", fn.ChanFn("e"), fn.ChanFn("b")),
		},
	}
}

func TestEliminateBasic(t *testing.T) {
	elim, err := Eliminate(pipelineSystem(), 1, "b")
	if err != nil {
		t.Fatal(err)
	}
	if len(elim.Descs) != 2 {
		t.Fatalf("eliminated system has %d descriptions", len(elim.Descs))
	}
	// The sink's right side must now compute 2×a directly.
	tr := trace.Of(trace.E("a", value.Int(1)), trace.E("a", value.Int(2)))
	got := elim.Descs[1].G.Apply(tr)
	if !got[0].Equal(seq.OfInts(2, 4)) {
		t.Errorf("substituted rhs = %s, want ⟨2 4⟩", got)
	}
	if !elim.Descs[1].G.IndependentOf("b") {
		t.Error("substituted rhs still depends on b")
	}
}

func TestEliminateConditionViolations(t *testing.T) {
	// h mentions b: b ⟵ 0; b.
	selfRef := System{Name: "self", Descs: []Description{
		MustNew("loop", fn.ChanFn("b"), fn.OnChan(fn.PrependFn(value.Int(0)), "b")),
		MustNew("snk", fn.ChanFn("e"), fn.ChanFn("b")),
	}}
	if _, err := Eliminate(selfRef, 0, "b"); err == nil {
		t.Error("condition (1) violation (h mentions b) not caught")
	}

	// Another left side mentions b.
	lhsDep := System{Name: "lhs", Descs: []Description{
		MustNew("def", fn.ChanFn("b"), fn.ConstTraceFn(seq.OfInts(1))),
		MustNew("other", fn.OnChan(fn.Even, "b"), fn.ChanFn("e")),
	}}
	if _, err := Eliminate(lhsDep, 0, "b"); err == nil {
		t.Error("condition (1) violation (f mentions b) not caught")
	}

	// Condition (3): f(⊥) ≠ ⊥.
	fNotStrict := System{Name: "f⊥", Descs: []Description{
		MustNew("def", fn.ChanFn("b"), fn.ConstTraceFn(seq.OfInts(1))),
		MustNew("other", fn.ConstTraceFn(seq.OfInts(5)), fn.ChanFn("b")),
	}}
	if _, err := Eliminate(fNotStrict, 0, "b"); err == nil {
		t.Error("condition (3) violation not caught")
	}

	// Defining left side must be exactly the channel function.
	badLhs := System{Name: "lhs2", Descs: []Description{
		MustNew("def", fn.OnChan(fn.Even, "b"), fn.ConstTraceFn(seq.OfInts(2))),
		MustNew("snk", fn.ChanFn("e"), fn.ChanFn("b")),
	}}
	if _, err := Eliminate(badLhs, 0, "b"); err == nil {
		t.Error("non-channel defining left side accepted")
	}

	// Index out of range.
	if _, err := Eliminate(pipelineSystem(), 7, "b"); err == nil {
		t.Error("bad index accepted")
	}
}

// TestEliminateErrorMessages pins each refusal to its own side
// condition: the error text must name the condition that failed, since
// specvet forwards it verbatim in not-eliminable findings.
func TestEliminateErrorMessages(t *testing.T) {
	wantErr := func(t *testing.T, sys System, idx int, b, frag string) {
		t.Helper()
		_, err := Eliminate(sys, idx, b)
		if err == nil {
			t.Fatalf("Eliminate(%s, %d, %s) accepted", sys.Name, idx, b)
		}
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error %q does not mention %q", err, frag)
		}
	}

	// The named channel does not match the defining description.
	wantErr(t, pipelineSystem(), 1, "zz", "must be exactly the channel function zz")

	// Negative index.
	wantErr(t, pipelineSystem(), -1, "b", "out of range")

	// Defining description of width 2: pairing two descriptions gives a
	// left side that is not a single channel history.
	paired := System{Name: "wide", Descs: []Description{
		Combine("pair",
			MustNew("d1", fn.ChanFn("b"), fn.ConstTraceFn(seq.OfInts(1))),
			MustNew("d2", fn.ChanFn("c"), fn.ConstTraceFn(seq.OfInts(2))),
		),
		MustNew("snk", fn.ChanFn("e"), fn.ChanFn("b")),
	}}
	wantErr(t, paired, 0, "b", "single-channel")

	// Condition (1), h side: the error names h.
	selfRef := System{Name: "self", Descs: []Description{
		MustNew("loop", fn.ChanFn("b"), fn.OnChan(fn.PrependFn(value.Int(0)), "b")),
		MustNew("snk", fn.ChanFn("e"), fn.ChanFn("b")),
	}}
	wantErr(t, selfRef, 0, "b", "condition (1)")

	// Condition (3): the error names the offending left side.
	fNotStrict := System{Name: "f⊥", Descs: []Description{
		MustNew("def", fn.ChanFn("b"), fn.ConstTraceFn(seq.OfInts(1))),
		MustNew("other", fn.ConstTraceFn(seq.OfInts(5)), fn.ChanFn("b")),
	}}
	wantErr(t, fNotStrict, 0, "b", "condition (3)")
}

// TestTheoremCheckersPropagateElimErrors: the theorem checkers must
// refuse — not misreport — when the elimination itself is ill-posed.
func TestTheoremCheckersPropagateElimErrors(t *testing.T) {
	sys := pipelineSystem()
	good := trace.Of(
		trace.E("a", value.Int(1)), trace.E("b", value.Int(2)), trace.E("e", value.Int(2)),
	)
	if err := CheckTheorem5(sys, 1, "zz", good); err == nil {
		t.Error("CheckTheorem5 accepted an ill-posed elimination")
	}
	if _, err := Theorem6Witness(sys, 1, "zz", trace.Empty); err == nil {
		t.Error("Theorem6Witness accepted an ill-posed elimination")
	}

	// Hypothesis failure: the trace is not a smooth solution of the
	// original system, so Theorem 5 does not apply.
	notSolution := trace.Of(trace.E("e", value.Int(9)))
	err := CheckTheorem5(sys, 1, "b", notSolution)
	if err == nil {
		t.Fatal("CheckTheorem5 accepted a non-solution")
	}
	if !strings.Contains(err.Error(), "hypothesis") {
		t.Errorf("error %q does not blame the hypothesis", err)
	}
}

func TestTheorem5OnPipeline(t *testing.T) {
	sys := pipelineSystem()
	// A smooth solution of the full pipeline: a, then b, then e, stepwise.
	full := trace.Of(
		trace.E("a", value.Int(1)), trace.E("b", value.Int(2)), trace.E("e", value.Int(2)),
		trace.E("a", value.Int(2)), trace.E("b", value.Int(4)), trace.E("e", value.Int(4)),
	)
	if err := sys.Combined().IsSmoothFinite(full); err != nil {
		t.Fatalf("pipeline solution rejected: %v", err)
	}
	if err := CheckTheorem5(sys, 1, "b", full); err != nil {
		t.Error(err)
	}
}

func TestTheorem6WitnessOnPipeline(t *testing.T) {
	sys := pipelineSystem()
	elim, err := Eliminate(sys, 1, "b")
	if err != nil {
		t.Fatal(err)
	}
	// A smooth solution of the eliminated system, without b.
	s := trace.Of(
		trace.E("a", value.Int(1)), trace.E("e", value.Int(2)),
		trace.E("a", value.Int(2)), trace.E("e", value.Int(4)),
	)
	if err := elim.Combined().IsSmoothFinite(s); err != nil {
		t.Fatalf("eliminated solution rejected: %v", err)
	}
	witness, err := Theorem6Witness(sys, 1, "b", s)
	if err != nil {
		t.Fatal(err)
	}
	keep := trace.NewChanSet("a", "e")
	if !witness.Project(keep).Equal(s) {
		t.Errorf("witness %s does not project back to %s", witness, s)
	}
	if witness.Channel("b").IsEmpty() {
		t.Error("witness carries no b events")
	}
}

func TestTheorem6RejectsBadInputs(t *testing.T) {
	sys := pipelineSystem()
	// Input mentioning the eliminated channel.
	withB := trace.Of(trace.E("b", value.Int(2)))
	if _, err := Theorem6Witness(sys, 1, "b", withB); err == nil {
		t.Error("input with b events accepted")
	}
	// Input that is not a smooth solution of the eliminated system.
	bogus := trace.Of(trace.E("e", value.Int(9)))
	if _, err := Theorem6Witness(sys, 1, "b", bogus); err == nil {
		t.Error("non-solution accepted")
	}
}

// TestEliminationCounterexampleF0 reproduces the paper's note after
// Theorem 6: for D1 = (b ⟵ f, f ⟵ b) with f(⊥) ≠ ⊥, D2 = (f ⟵ f) has a
// smooth solution (⊥) while D1 has none — which is exactly why condition
// (3) exists. We model f as the constant ⟨5⟩ on channel e.
func TestEliminationCounterexampleF0(t *testing.T) {
	f := fn.ConstTraceFn(seq.OfInts(5)) // f(⊥) = ⟨5⟩ ≠ ⊥
	d1 := System{Name: "D1", Descs: []Description{
		MustNew("def", fn.ChanFn("b"), f),
		MustNew("back", f, fn.ChanFn("b")),
	}}
	// Eliminate must refuse: condition (3) fails.
	if _, err := Eliminate(d1, 0, "b"); err == nil {
		t.Fatal("condition (3) not enforced on the paper's counterexample")
	}
	// D2 = f ⟵ f has ⊥ as a smooth solution.
	d2 := MustNew("D2", f, f)
	if err := d2.IsSmoothFinite(trace.Empty); err != nil {
		t.Errorf("⊥ should solve f ⟵ f: %v", err)
	}
	// But D1 has no smooth solution: ⊥ fails the limit condition of
	// "back" (f(⊥) = ⟨5⟩ ≠ b(⊥) = ε)...
	comb := d1.Combined()
	if err := comb.IsSmoothFinite(trace.Empty); err == nil {
		t.Error("⊥ should not solve D1")
	}
	// ...and any nonempty trace violates the smoothness condition of
	// "def" (b ⟵ f: the first b-event needs f's output as cause, but
	// "back"'s smoothness blocks it — check a representative).
	for _, tr := range []trace.Trace{
		trace.Of(trace.E("b", value.Int(5))),
		trace.Of(trace.E("b", value.Int(5)), trace.E("b", value.Int(5))),
	} {
		if err := comb.IsSmoothFinite(tr); err == nil {
			t.Errorf("%s should not solve D1", tr)
		}
	}
}

// TestSubstitutionNotEquivalenceNote reproduces the paper's final note in
// Section 7: D1 = (v ⟵ w, u ⟵ v) and D2 = (v ⟵ w, u ⟵ w) do NOT have
// the same smooth solutions — (w,0)(u,0)(v,0) solves D2 but not D1.
func TestSubstitutionNotEquivalenceNote(t *testing.T) {
	d1 := Combine("D1",
		MustNew("v", fn.ChanFn("v"), fn.ChanFn("w")),
		MustNew("u", fn.ChanFn("u"), fn.ChanFn("v")),
	)
	d2 := Combine("D2",
		MustNew("v", fn.ChanFn("v"), fn.ChanFn("w")),
		MustNew("u", fn.ChanFn("u"), fn.ChanFn("w")),
	)
	witness := trace.Of(
		trace.E("w", value.Int(0)), trace.E("u", value.Int(0)), trace.E("v", value.Int(0)),
	)
	if err := d2.IsSmoothFinite(witness); err != nil {
		t.Errorf("witness should solve D2: %v", err)
	}
	if err := d1.IsSmoothFinite(witness); err == nil {
		t.Error("witness should NOT solve D1 — u's 0 has no cause on v yet")
	}
}

func TestEliminateFairMergeSystem(t *testing.T) {
	// Section 4.10's worked elimination: removing c′ and d′ from the
	// full system yields a system whose combined description accepts
	// exactly the same smooth solutions (over the remaining channels) as
	// the paper's eliminated system.
	full := System{
		Name: "fm",
		Descs: []Description{
			MustNew("tag0", fn.ChanFn("c'"), fn.OnChan(fn.Tag0, "c")),
			MustNew("tag1", fn.ChanFn("d'"), fn.OnChan(fn.Tag1, "d")),
			MustNew("zero", fn.OnChan(fn.ZeroTag, "b"), fn.ChanFn("c'")),
			MustNew("one", fn.OnChan(fn.OneTag, "b"), fn.ChanFn("d'")),
			MustNew("out", fn.ChanFn("e"), fn.OnChan(fn.Untag, "b")),
		},
	}
	step1, err := Eliminate(full, 0, "c'")
	if err != nil {
		t.Fatal(err)
	}
	step2, err := Eliminate(step1, 0, "d'")
	if err != nil {
		t.Fatal(err)
	}
	want := System{
		Name: "fm-direct",
		Descs: []Description{
			MustNew("zero", fn.OnChan(fn.ZeroTag, "b"), fn.OnChan(fn.Tag0, "c")),
			MustNew("one", fn.OnChan(fn.OneTag, "b"), fn.OnChan(fn.Tag1, "d")),
			MustNew("out", fn.ChanFn("e"), fn.OnChan(fn.Untag, "b")),
		},
	}
	// Compare smooth-solution verdicts on a sample of traces.
	p01 := value.Pair(value.Int(0), value.Int(10))
	p11 := value.Pair(value.Int(1), value.Int(20))
	samples := []trace.Trace{
		trace.Empty,
		trace.Of(trace.E("c", value.Int(10))),
		trace.Of(trace.E("c", value.Int(10)), trace.E("b", p01), trace.E("e", value.Int(10))),
		trace.Of(trace.E("d", value.Int(20)), trace.E("b", p11), trace.E("e", value.Int(20))),
		trace.Of(trace.E("b", p01)),
		trace.Of(
			trace.E("c", value.Int(10)), trace.E("d", value.Int(20)),
			trace.E("b", p01), trace.E("e", value.Int(10)),
			trace.E("b", p11), trace.E("e", value.Int(20)),
		),
	}
	got, wantD := step2.Combined(), want.Combined()
	for _, tr := range samples {
		a := got.IsSmoothFinite(tr) == nil
		b := wantD.IsSmoothFinite(tr) == nil
		if a != b {
			t.Errorf("eliminated (%v) and direct (%v) disagree on %s", a, b, tr)
		}
	}
}
