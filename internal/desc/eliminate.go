package desc

import (
	"fmt"

	"smoothproc/internal/fn"
	"smoothproc/internal/trace"
)

// System is a finite set of descriptions understood conjunctively — the
// usual presentation of a network before variables are eliminated
// (Sections 2.3, 4.10, 7).
type System struct {
	Name  string
	Descs []Description
}

// Combined merges the system into a single description by pairing.
func (s System) Combined() Description {
	return Combine(s.Name, s.Descs...)
}

// ElimConditions are the side conditions of Theorems 5 and 6 for
// eliminating channel b using its defining description b ⟵ h:
//
//	(1) h and every remaining left side f are independent of b,
//	(2) every remaining right side g factors through (t_b, t_c) — true by
//	    construction for all TraceFns in this repository, which read only
//	    per-channel histories,
//	(3) f(⊥) = ⊥ for every remaining left side.
//
// Condition (3) is the one the paper reports discovering during the
// construction in Theorem 6's proof; the counterexample requiring it
// (b ⟵ f, f ⟵ b) is reproduced in the package tests.
func checkElimConditions(defining Description, b string, rest []Description) error {
	if defining.F.Out != 1 {
		return fmt.Errorf("desc: defining description for %s must be single-channel, got width %d", b, defining.F.Out)
	}
	fSup := defining.F.Support.Names()
	if len(fSup) != 1 || fSup[0] != b || defining.F.Name != b {
		return fmt.Errorf("desc: left side %q of the defining description must be exactly the channel function %s", defining.F.Name, b)
	}
	if !defining.G.IndependentOf(b) {
		return fmt.Errorf("desc: condition (1) fails: h = %s mentions %s", defining.G.Name, b)
	}
	for _, d := range rest {
		if !d.F.IndependentOf(b) {
			return fmt.Errorf("desc: condition (1) fails: left side %s mentions %s", d.F.Name, b)
		}
		if !d.F.Apply(trace.Empty).Equal(fn.BottomTuple(d.F.Out)) {
			return fmt.Errorf("desc: condition (3) fails: %s(⊥) ≠ ⊥", d.F.Name)
		}
	}
	return nil
}

// Eliminate removes channel b from the system. The description at index
// idx must be the defining one, b ⟵ h, with left side exactly the channel
// function b (the paper's surjectivity note admits more general left
// sides; we implement the b ⟵ h case the paper's theorems state). Every
// other description f ⟵ g becomes f ⟵ g[b := h].
//
// By Theorems 5 and 6, the transformation preserves smooth solutions up
// to projection: t solves the original iff t_c solves the result, for
// t ranging over traces with some b-history (Theorem 5) and conversely
// every solution of the result extends to one of the original
// (Theorem 6). The conformance tests check both directions by enumeration.
func Eliminate(s System, idx int, b string) (System, error) {
	if idx < 0 || idx >= len(s.Descs) {
		return System{}, fmt.Errorf("desc: index %d out of range for system %s", idx, s.Name)
	}
	defining := s.Descs[idx]
	rest := make([]Description, 0, len(s.Descs)-1)
	for i, d := range s.Descs {
		if i != idx {
			rest = append(rest, d)
		}
	}
	if err := checkElimConditions(defining, b, rest); err != nil {
		return System{}, err
	}
	out := System{Name: s.Name + " \\ " + b}
	for _, d := range rest {
		nd := d
		if !d.G.IndependentOf(b) {
			nd = Description{
				Name: d.Name,
				F:    d.F,
				G:    fn.SubstChan(d.G, b, defining.G),
			}
		}
		out.Descs = append(out.Descs, nd)
	}
	return out, nil
}

// CheckTheorem5 verifies Theorem 5 on a concrete trace: if t is a smooth
// solution of the original system then t projected away from b is a
// smooth solution of the eliminated system. A failure indicates a bug.
func CheckTheorem5(orig System, idx int, b string, t trace.Trace) error {
	elim, err := Eliminate(orig, idx, b)
	if err != nil {
		return err
	}
	if err := orig.Combined().IsSmoothFinite(t); err != nil {
		return fmt.Errorf("desc: Theorem 5 hypothesis fails: %w", err)
	}
	keep := trace.NewChanSet(t.Channels()...).Without(b)
	tc := t.Project(keep)
	if err := elim.Combined().IsSmoothFinite(tc); err != nil {
		return fmt.Errorf("desc: Theorem 5 conclusion fails on %s: %w", tc, err)
	}
	return nil
}

// Theorem6Witness performs the explicit construction in Theorem 6's
// proof: from a smooth solution s of the eliminated system (with no
// b-events), build the alternating chain
//
//	t_b^{2i+1} = h(s^i), t_c^{2i+1} = s^i
//	t_b^{2i+2} = h(s^i), t_c^{2i+2} = s^{i+1}
//
// and return its lub t, a smooth solution of the original system with
// t_c = s. The returned trace interleaves b-events and c-events exactly
// as the construction dictates.
func Theorem6Witness(orig System, idx int, b string, s trace.Trace) (trace.Trace, error) {
	defining := orig.Descs[idx]
	elim, err := Eliminate(orig, idx, b)
	if err != nil {
		return trace.Empty, err
	}
	for _, e := range s.Events() {
		if e.Ch == b {
			return trace.Empty, fmt.Errorf("desc: Theorem 6 input mentions eliminated channel %s", b)
		}
	}
	if err := elim.Combined().IsSmoothFinite(s); err != nil {
		return trace.Empty, fmt.Errorf("desc: Theorem 6 hypothesis fails: %w", err)
	}
	h := defining.G
	t := trace.Empty
	bLen := 0 // number of b-events already in t
	for i := 0; i <= s.Len(); i++ {
		// Step 2i+1: extend with b-events so that t_b = h(s^i).
		hv := h.Apply(s.Take(i))[0]
		for ; bLen < hv.Len(); bLen++ {
			t = t.Append(trace.E(b, hv.At(bLen)))
		}
		// Step 2i+2: extend with the next c-event so that t_c = s^{i+1}.
		if i < s.Len() {
			t = t.Append(s.At(i))
		}
	}
	if err := orig.Combined().IsSmoothFinite(t); err != nil {
		return trace.Empty, fmt.Errorf("desc: Theorem 6 construction yielded a non-smooth trace %s: %w", t, err)
	}
	return t, nil
}
