package desc

import (
	"errors"
	"testing"

	"smoothproc/internal/fn"
	"smoothproc/internal/seq"
	"smoothproc/internal/trace"
	"smoothproc/internal/value"
)

func ev(ch string, n int64) trace.Event { return trace.E(ch, value.Int(n)) }

// dfmDesc is the Section 2.2 description: even(d) ⟵ b, odd(d) ⟵ c.
func dfmDesc() Description {
	return Combine("dfm",
		MustNew("even", fn.OnChan(fn.Even, "d"), fn.ChanFn("b")),
		MustNew("odd", fn.OnChan(fn.Odd, "d"), fn.ChanFn("c")),
	)
}

func TestNewValidatesWidths(t *testing.T) {
	_, err := New("bad", fn.Pair(fn.ChanFn("a"), fn.ChanFn("b")), fn.ChanFn("c"))
	if err == nil {
		t.Fatal("width mismatch accepted")
	}
	d, err := New("ok", fn.ChanFn("a"), fn.ChanFn("b"))
	if err != nil {
		t.Fatal(err)
	}
	if d.String() != "a ⟵ b" {
		t.Errorf("String = %q", d.String())
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic on width mismatch")
		}
	}()
	MustNew("bad", fn.Pair(fn.ChanFn("a"), fn.ChanFn("b")), fn.ChanFn("c"))
}

func TestDFMSmoothSolutions(t *testing.T) {
	d := dfmDesc()
	smooth := []trace.Trace{
		trace.Empty,
		trace.Of(ev("b", 0), ev("d", 0)),
		trace.Of(ev("b", 0), ev("c", 1), ev("c", 3), ev("d", 1), ev("d", 3), ev("d", 0)),
		trace.Of(ev("c", 1), ev("d", 1), ev("b", 0), ev("d", 0)),
	}
	for _, tr := range smooth {
		if err := d.IsSmoothFinite(tr); err != nil {
			t.Errorf("%s rejected: %v", tr, err)
		}
	}
	notSmooth := []trace.Trace{
		trace.Of(ev("b", 0)),                         // output owed: limit fails
		trace.Of(ev("d", 0)),                         // output before input: smoothness fails
		trace.Of(ev("b", 0), ev("d", 0), ev("c", 1)), // input pending
		trace.Of(ev("b", 0), ev("d", 2)),             // wrong value forwarded
	}
	for _, tr := range notSmooth {
		if err := d.IsSmoothFinite(tr); err == nil {
			t.Errorf("%s accepted", tr)
		} else if !errors.Is(err, ErrNotSmooth) {
			t.Errorf("%s: error does not wrap ErrNotSmooth: %v", tr, err)
		}
	}
}

func TestEdgeAndLimit(t *testing.T) {
	d := dfmDesc()
	u := trace.Of(ev("b", 0))
	v := u.Append(ev("d", 0))
	if !d.EdgeOK(u, v) {
		t.Error("forwarding edge rejected")
	}
	if d.EdgeOK(trace.Empty, trace.Of(ev("d", 0))) {
		t.Error("uncaused output accepted")
	}
	if !d.LimitOK(v) || d.LimitOK(u) {
		t.Error("limit condition wrong")
	}
}

func TestCheckLemma2(t *testing.T) {
	d := dfmDesc()
	good := trace.Of(ev("b", 0), ev("c", 1), ev("d", 0), ev("d", 1))
	if err := d.CheckLemma2(good); err != nil {
		t.Errorf("Lemma 2 failed on a smooth solution: %v", err)
	}
	if err := d.CheckLemma2(trace.Of(ev("d", 0))); err == nil {
		t.Error("Lemma 2 hypothesis violation not reported")
	}
}

func TestTheorem1AgreesWithDefinition(t *testing.T) {
	d := dfmDesc() // independent: {d} vs {b,c}
	if !d.Independent() {
		t.Fatal("dfm should be independent")
	}
	// Sweep all traces up to length 3 over a small alphabet and compare
	// the two characterisations — the content of Theorem 1.
	alphabet := []trace.Event{ev("b", 0), ev("c", 1), ev("d", 0), ev("d", 1)}
	var sweep func(tr trace.Trace, depth int)
	count := 0
	sweep = func(tr trace.Trace, depth int) {
		full := d.IsSmoothFinite(tr) == nil
		thm1 := d.IsSmoothFiniteThm1(tr) == nil
		if full != thm1 {
			t.Errorf("Theorem 1 disagreement on %s: full=%v thm1=%v", tr, full, thm1)
		}
		count++
		if depth == 0 {
			return
		}
		for _, e := range alphabet {
			sweep(tr.Append(e), depth-1)
		}
	}
	sweep(trace.Empty, 3)
	if count != 1+4+16+64 {
		t.Fatalf("sweep covered %d traces", count)
	}
}

func TestTheorem1RejectsDependent(t *testing.T) {
	// even(d) ⟵ 0; 2×d names d on both sides (Section 2.3's equations).
	dep := MustNew("eq1",
		fn.OnChan(fn.Even, "d"),
		fn.OnChan(fn.ComposeSeq(fn.PrependFn(value.Int(0)), fn.Double), "d"))
	if dep.Independent() {
		t.Fatal("eq1 should be dependent")
	}
	if err := dep.IsSmoothFiniteThm1(trace.Empty); err == nil {
		t.Error("Thm1 checker must refuse dependent descriptions")
	}
}

func TestChaosSynthesis(t *testing.T) {
	// Section 4.1: K ⟵ K describes CHAOS — every trace over b is smooth.
	k := fn.ConstTraceFn(seq.OfInts(9))
	chaos := MustNew("chaos", k, k)
	for _, tr := range []trace.Trace{
		trace.Empty,
		trace.Of(ev("b", 1)),
		trace.Of(ev("b", 1), ev("b", 2), ev("b", 1)),
	} {
		if err := chaos.IsSmoothFinite(tr); err != nil {
			t.Errorf("CHAOS rejected %s: %v", tr, err)
		}
	}
	// And the converse direction of the synthesis argument: if f ⟵ g
	// accepts every trace then f must be constant on the probe set.
	// A non-constant f (the channel function) must reject something.
	notChaos := MustNew("b⟵b?", fn.ChanFn("b"), fn.ConstTraceFn(seq.OfInts(9)))
	if err := notChaos.IsSmoothFinite(trace.Of(ev("b", 1))); err == nil {
		t.Error("non-constant left side accepted a non-matching trace")
	}
}

func TestTicksOmega(t *testing.T) {
	// Section 4.2: b ⟵ T; b. No finite smooth solution; (b,T)^ω is one.
	ticks := MustNew("ticks", fn.ChanFn("b"), fn.OnChan(fn.PrependFn(value.T), "b"))
	for n := 0; n < 5; n++ {
		fin := trace.CycleGen("t", trace.Of(trace.E("b", value.T))).Prefix(n)
		if err := ticks.IsSmoothFinite(fin); err == nil {
			t.Errorf("finite tick trace %s accepted", fin)
		}
	}
	v := ticks.CheckOmega(trace.CycleGen("ticks", trace.Of(trace.E("b", value.T))), 20)
	if !v.OmegaSolution() {
		t.Errorf("(b,T)^ω not certified: %+v", v)
	}
	// A stream of F's is not even edge-smooth.
	bad := ticks.CheckOmega(trace.CycleGen("falses", trace.Of(trace.E("b", value.F))), 20)
	if bad.Smooth {
		t.Error("F^ω passed the smoothness condition")
	}
}

func TestCheckOmegaRefutesLimit(t *testing.T) {
	// d ⟵ even(d): the all-odds stream is smooth (edges hold vacuously:
	// f(v) = v's d-history? no — f = d itself). Use a description where
	// edges hold but the limit diverges: b ⟵ ⟨9⟩ against a stream of 1s
	// on... simpler: even(d) ⟵ ⟨2⟩ with d = 1^ω: even stays ε ⊑ ⟨2⟩ and
	// agreement never grows.
	d := MustNew("stall", fn.OnChan(fn.Even, "d"), fn.ConstTraceFn(seq.OfInts(2)))
	ones := trace.CycleGen("ones", trace.Of(ev("d", 1)))
	v := d.CheckOmega(ones, 20)
	if !v.Smooth {
		t.Error("edges should hold (even stays ε)")
	}
	if v.Converging {
		t.Error("agreement should not grow — 1^ω is not a solution")
	}
	if v.OmegaSolution() {
		t.Error("1^ω certified as solution")
	}
	// And a hard refutation: d = 4^ω makes even(d) = 4... ≠ ⟨2⟩ — the
	// sides become incompatible.
	fours := trace.CycleGen("fours", trace.Of(ev("d", 4)))
	v2 := d.CheckOmega(fours, 20)
	if !v2.LimitRefuted {
		t.Error("4^ω should refute the limit condition outright")
	}
}

func TestCombineWidths(t *testing.T) {
	d := Combine("both", dfmDesc(), MustNew("x", fn.ChanFn("e"), fn.ChanFn("e")))
	if d.F.Out != 3 || d.G.Out != 3 {
		t.Errorf("combined widths %d, %d", d.F.Out, d.G.Out)
	}
}

func TestInductionPremise(t *testing.T) {
	d := dfmDesc()
	phi := func(tr trace.Trace) bool { return tr.Channel("d").Len() <= tr.Len() }
	u := trace.Of(ev("b", 0))
	v := u.Append(ev("d", 0))
	if err := d.InductionPremise(phi, u, v); err != nil {
		t.Errorf("true premise reported: %v", err)
	}
	// φ that the step genuinely breaks.
	bad := func(tr trace.Trace) bool { return tr.Channel("d").IsEmpty() }
	if err := d.InductionPremise(bad, u, v); err == nil {
		t.Error("broken premise not reported")
	}
	// Antecedent false (non-edge): nothing to prove.
	if err := d.InductionPremise(bad, trace.Empty, trace.Of(ev("d", 0))); err != nil {
		t.Errorf("vacuous premise reported: %v", err)
	}
}
