package desc

import (
	"testing"

	"smoothproc/internal/fn"
	"smoothproc/internal/trace"
	"smoothproc/internal/value"
)

func benchSolution(n int) trace.Trace {
	// A long smooth solution of the dfm description: forward each input
	// immediately.
	t := trace.Empty
	for i := 0; i < n; i++ {
		t = t.Append(trace.E("b", value.Int(int64(2*i))))
		t = t.Append(trace.E("d", value.Int(int64(2*i))))
	}
	return t
}

func BenchmarkIsSmoothFinite(b *testing.B) {
	d := dfmDesc()
	for _, n := range []int{8, 32, 128} {
		t := benchSolution(n)
		b.Run(sizeName(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := d.IsSmoothFinite(t); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkEdgeOK(b *testing.B) {
	d := dfmDesc()
	u := benchSolution(32)
	v := u.Append(trace.E("b", value.Int(999*2)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !d.EdgeOK(u, v) {
			b.Fatal("edge rejected")
		}
	}
}

func BenchmarkCheckOmega(b *testing.B) {
	d := MustNew("ticks", fn.ChanFn("b"), fn.OnChan(fn.PrependFn(value.T), "b"))
	gen := trace.CycleGen("ticks", trace.Of(trace.E("b", value.T)))
	for _, depth := range []int{16, 64} {
		b.Run(sizeName(depth), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if !d.CheckOmega(gen, depth).OmegaSolution() {
					b.Fatal("rejected")
				}
			}
		})
	}
}

func BenchmarkCompose(b *testing.B) {
	n := copyNetwork()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Compose(n); err != nil {
			b.Fatal(err)
		}
	}
}

func sizeName(n int) string {
	switch {
	case n < 10:
		return "small"
	case n < 64:
		return "medium"
	default:
		return "large"
	}
}
