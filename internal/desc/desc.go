// Package desc is the core of the reproduction: Misra's descriptions
// f ⟵ g and their smooth solutions (Sections 3.2, 5, 7 and 8.4 of the
// paper).
//
// A description is an ordered pair of continuous functions from traces to
// a common cpo (here: tuples of sequences, see package fn). A trace t is
// a smooth solution iff
//
//	f(t) = g(t)                                  (limit condition)
//	∀ u,v : u pre v in t : f(v) ⊑ g(u)           (smoothness condition)
//
// The smoothness condition captures causality — no output may depend on
// itself as input — and is what excludes the spurious solutions of the
// Brock-Ackermann anomaly (Section 2.4).
package desc

import (
	"errors"
	"fmt"

	"smoothproc/internal/fn"
	"smoothproc/internal/trace"
)

// Description is the pair f ⟵ g. The two sides do not commute: f is what
// is being defined (the left side), g its definition (the right side).
type Description struct {
	Name string
	F, G fn.TraceFn
}

// New builds a description, validating that the two sides land in the
// same tuple width (otherwise no trace could ever satisfy the limit
// condition and comparisons would be vacuous).
func New(name string, f, g fn.TraceFn) (Description, error) {
	if f.Out != g.Out {
		return Description{}, fmt.Errorf("desc: %s: width mismatch: f is %d-wide, g is %d-wide", name, f.Out, g.Out)
	}
	return Description{Name: name, F: f, G: g}, nil
}

// MustNew is New that panics on error, for statically-known descriptions.
func MustNew(name string, f, g fn.TraceFn) Description {
	d, err := New(name, f, g)
	if err != nil {
		panic(err)
	}
	return d
}

// String renders the description as "f ⟵ g".
func (d Description) String() string {
	return d.F.Name + " ⟵ " + d.G.Name
}

// EdgeOK reports the smoothness unit f(v) ⊑ g(u). In the Section 3.3 tree
// this is exactly the condition for v to be a son of u.
func (d Description) EdgeOK(u, v trace.Trace) bool {
	return d.F.Apply(v).Leq(d.G.Apply(u))
}

// LimitOK reports the limit condition f(t) = g(t) for a finite trace.
func (d Description) LimitOK(t trace.Trace) bool {
	return d.F.Apply(t).Equal(d.G.Apply(t))
}

// ErrNotSmooth wraps all smoothness-check failures.
var ErrNotSmooth = errors.New("not a smooth solution")

// IsSmoothFinite checks whether the finite trace t is a smooth solution
// of d, returning nil if so and an error explaining the first violated
// condition otherwise.
func (d Description) IsSmoothFinite(t trace.Trace) error {
	var fail error
	t.PrePairs(func(u, v trace.Trace) bool {
		if !d.EdgeOK(u, v) {
			fail = fmt.Errorf("%w: %s: smoothness fails at u=%s, v=%s: f(v)=%s ⋢ g(u)=%s",
				ErrNotSmooth, d.Name, u, v, d.F.Apply(v), d.G.Apply(u))
			return false
		}
		return true
	})
	if fail != nil {
		return fail
	}
	if !d.LimitOK(t) {
		return fmt.Errorf("%w: %s: limit condition fails at t=%s: f(t)=%s ≠ g(t)=%s",
			ErrNotSmooth, d.Name, t, d.F.Apply(t), d.G.Apply(t))
	}
	return nil
}

// CheckLemma2 verifies Lemma 2 on a concrete smooth solution: every
// finite prefix v of t satisfies f(v) ⊑ g(v). The lemma is a theorem, so
// a failure on a trace that IsSmoothFinite accepts indicates a bug.
func (d Description) CheckLemma2(t trace.Trace) error {
	if err := d.IsSmoothFinite(t); err != nil {
		return fmt.Errorf("desc: Lemma 2 hypothesis fails: %w", err)
	}
	for _, v := range t.Prefixes() {
		if !d.F.Apply(v).Leq(d.G.Apply(v)) {
			return fmt.Errorf("desc: Lemma 2 conclusion fails at prefix %s of %s", v, t)
		}
	}
	return nil
}

// Independent reports Theorem 1's hypothesis: the declared supports of f
// and g are disjoint. (In syntactic terms, no channel is named on both
// sides.)
func (d Description) Independent() bool {
	return !d.F.Support.Intersects(d.G.Support)
}

// Thm1Eligible reports whether the solver may take the Theorem 1 fast
// path on this description: the sides are independent AND the left
// side's finite approximation is genuinely determined by its support
// (not an ω-approximation, whose output grows with raw trace length —
// for those, f(u·e) = f(u) fails on events outside supp f even though
// the ω-limit is independent, so auto-admitting would be unsound).
func (d Description) Thm1Eligible() bool {
	return d.Independent() && !d.F.Omega
}

// IsSmoothFiniteThm1 checks smoothness using Theorem 1's simpler
// characterisation, valid only for independent descriptions:
//
//	t is smooth  ≡  f(t) = g(t)  ∧  ∀ finite prefix s of t : f(s) ⊑ g(s)
//
// It returns an error if d is not independent. The package tests verify
// agreement with IsSmoothFinite, which is the content of Theorem 1.
func (d Description) IsSmoothFiniteThm1(t trace.Trace) error {
	if !d.Independent() {
		return fmt.Errorf("desc: %s: Theorem 1 requires independent sides (supports %v and %v intersect)",
			d.Name, d.F.Support.Names(), d.G.Support.Names())
	}
	for _, s := range t.Prefixes() {
		if !d.F.Apply(s).Leq(d.G.Apply(s)) {
			return fmt.Errorf("%w: %s: Thm1 prefix condition fails at %s", ErrNotSmooth, d.Name, s)
		}
	}
	if !d.LimitOK(t) {
		return fmt.Errorf("%w: %s: limit condition fails at %s", ErrNotSmooth, d.Name, t)
	}
	return nil
}

// Combine merges several descriptions into one by pairing the sides —
// the paper's note in Sections 2.2 and 4: (f′,f″) ⟵ (g′,g″), with
// componentwise order on the product codomain.
func Combine(name string, ds ...Description) Description {
	fs := make([]fn.TraceFn, len(ds))
	gs := make([]fn.TraceFn, len(ds))
	for i, d := range ds {
		fs[i] = d.F
		gs[i] = d.G
	}
	return Description{Name: name, F: fn.Pair(fs...), G: fn.Pair(gs...)}
}

// OmegaVerdict is the depth-bounded evidence that a trace generator is
// (or is not) an ω smooth solution. See DESIGN.md: since f and g are
// continuous and prefixes ascend, f(tₙ) ⊑ f(t) and g(tₙ) ⊑ g(t); hence an
// incompatibility between f(tₙ) and g(tₙ) at any n refutes the limit
// condition outright, while compatibility plus unboundedly growing
// agreement is evidence (exact in every example we reproduce) that the
// ω-limit satisfies it.
type OmegaVerdict struct {
	// Depth is the probe depth used.
	Depth int
	// Smooth reports that every edge u pre v within depth satisfies
	// f(v) ⊑ g(u). This part of the verdict is exact, not approximate.
	Smooth bool
	// SmoothFailAt is the index of the first violated edge, or -1.
	SmoothFailAt int
	// LimitRefuted reports that some f(tₙ), g(tₙ) were incompatible —
	// an exact refutation of the limit condition.
	LimitRefuted bool
	// AgreedHalf and AgreedFull are the summed common-prefix lengths of
	// f(tₙ) and g(tₙ) at n = depth/2 and n = depth.
	AgreedHalf, AgreedFull int
	// Converging reports the per-component limit certificate: every
	// component of the codomain either has strictly growing agreement
	// between depth/2 and depth (both sides heading to the same
	// ω-sequence) or has exactly equal sides at depth (stabilised
	// equality of finite components). A component whose agreement stalls
	// while its sides differ — e.g. FALSE(c) against falses when c
	// carries no F — refutes convergence.
	Converging bool
	// StalledComponent is the index of the first non-converging
	// component, or -1.
	StalledComponent int
}

// OmegaSolution reports whether the verdict certifies an ω smooth
// solution at its probe depth.
func (v OmegaVerdict) OmegaSolution() bool {
	return v.Smooth && !v.LimitRefuted && v.Converging
}

// CheckOmega probes a trace generator as a candidate ω smooth solution of
// d, to the given depth.
func (d Description) CheckOmega(g trace.Gen, depth int) OmegaVerdict {
	verdict := OmegaVerdict{Depth: depth, Smooth: true, SmoothFailAt: -1}
	full := g.Prefix(depth)
	// Edges are checked on the actual prefix chain of the generated trace.
	full.PrePairs(func(u, v trace.Trace) bool {
		if !d.EdgeOK(u, v) {
			verdict.Smooth = false
			verdict.SmoothFailAt = u.Len()
			return false
		}
		return true
	})
	for n := 0; n <= full.Len(); n++ {
		fv, gv := d.F.Apply(full.Take(n)), d.G.Apply(full.Take(n))
		if !fv.Compatible(gv) {
			verdict.LimitRefuted = true
			break
		}
	}
	half := full.Take(full.Len() / 2)
	fHalf, gHalf := d.F.Apply(half), d.G.Apply(half)
	fFull, gFull := d.F.Apply(full), d.G.Apply(full)
	agreedHalf, agreedFull := fHalf.AgreedLen(gHalf), fFull.AgreedLen(gFull)
	verdict.Converging = true
	verdict.StalledComponent = -1
	for i := range agreedFull {
		verdict.AgreedHalf += agreedHalf[i]
		verdict.AgreedFull += agreedFull[i]
		grows := agreedFull[i] > agreedHalf[i]
		stable := fFull[i].Equal(gFull[i])
		if !grows && !stable {
			verdict.Converging = false
			if verdict.StalledComponent < 0 {
				verdict.StalledComponent = i
			}
		}
	}
	return verdict
}

// InductionPremise checks the inductive step of the Section 8.4 rule at
// one edge: [u ⊑ v ∧ f(v) ⊑ g(u) ∧ φ(u)] ⇒ φ(v). The tree walker in
// package solver discharges the premise over all reachable edges; this
// helper reports a single violation.
func (d Description) InductionPremise(phi func(trace.Trace) bool, u, v trace.Trace) error {
	if !u.Leq(v) || !d.EdgeOK(u, v) || !phi(u) {
		return nil // premise antecedent false: nothing to prove
	}
	if !phi(v) {
		return fmt.Errorf("desc: induction premise fails: φ(%s) holds, edge to %s is smooth, but φ(%s) fails", u, v, v)
	}
	return nil
}
