package desc

import (
	"sync"
	"testing"

	"smoothproc/internal/fn"
	"smoothproc/internal/seq"
	"smoothproc/internal/trace"
	"smoothproc/internal/value"
)

func evalTestDesc() Description {
	return Combine("dfm",
		MustNew("even", fn.OnChan(fn.Even, "d"), fn.ChanFn("b")),
		MustNew("odd", fn.OnChan(fn.Odd, "d"), fn.ChanFn("c")),
	)
}

func evalTestTraces() []trace.Trace {
	base := trace.Of(
		trace.E("b", value.Int(0)), trace.E("d", value.Int(0)),
		trace.E("c", value.Int(1)), trace.E("d", value.Int(1)),
	)
	return base.Prefixes()
}

// TestEvaluatorTransparent: memoized evaluation agrees with direct
// application of both sides on every prefix, in any query order.
func TestEvaluatorTransparent(t *testing.T) {
	d := evalTestDesc()
	e := NewEvaluator(d, true)
	traces := evalTestTraces()
	// Query twice, second pass entirely from cache.
	for pass := 0; pass < 2; pass++ {
		for _, tr := range traces {
			if !e.F(tr).Equal(d.F.Apply(tr)) {
				t.Errorf("pass %d: F(%s) mismatch", pass, tr)
			}
			if !e.G(tr).Equal(d.G.Apply(tr)) {
				t.Errorf("pass %d: G(%s) mismatch", pass, tr)
			}
			if e.LimitOK(tr) != d.LimitOK(tr) {
				t.Errorf("pass %d: LimitOK(%s) mismatch", pass, tr)
			}
		}
	}
	for _, tr := range traces[1:] {
		u := tr.Take(tr.Len() - 1)
		if e.EdgeOK(u, tr) != d.EdgeOK(u, tr) {
			t.Errorf("EdgeOK(%s, %s) mismatch", u, tr)
		}
	}
	s := e.Snapshot()
	if s.FApplies != int64(len(traces)) || s.GApplies != int64(len(traces)) {
		t.Errorf("applies = %d/%d, want %d each (one per distinct trace)",
			s.FApplies, s.GApplies, len(traces))
	}
	if s.CacheHits() == 0 {
		t.Error("no cache hits on repeated queries")
	}
	if s.FNanos <= 0 || s.GNanos <= 0 {
		t.Errorf("timers not running: f=%dns g=%dns", s.FNanos, s.GNanos)
	}
}

// TestEvaluatorUnmemoized: with the cache off every query applies the
// underlying function and no hit is ever recorded.
func TestEvaluatorUnmemoized(t *testing.T) {
	d := evalTestDesc()
	e := NewEvaluator(d, false)
	tr := evalTestTraces()[2]
	for i := 0; i < 3; i++ {
		e.F(tr)
		e.G(tr)
	}
	s := e.Snapshot()
	if s.FApplies != 3 || s.GApplies != 3 {
		t.Errorf("applies = %d/%d, want 3 each", s.FApplies, s.GApplies)
	}
	if s.CacheHits() != 0 {
		t.Errorf("hits = %d, want 0", s.CacheHits())
	}
	if s.CacheMisses() != 6 {
		t.Errorf("misses = %d, want 6", s.CacheMisses())
	}
}

// TestEvaluatorConcurrent hammers one evaluator from several goroutines —
// the EnumerateParallel sharing pattern — and checks the results stay
// correct and the books balance.
func TestEvaluatorConcurrent(t *testing.T) {
	d := evalTestDesc()
	e := NewEvaluator(d, true)
	traces := evalTestTraces()
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr := traces[i%len(traces)]
				if !e.F(tr).Equal(d.F.Apply(tr)) {
					select {
					case errs <- "F mismatch on " + tr.String():
					default:
					}
				}
				if !e.G(tr).Equal(d.G.Apply(tr)) {
					select {
					case errs <- "G mismatch on " + tr.String():
					default:
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
	s := e.Snapshot()
	total := s.CacheHits() + s.CacheMisses()
	if total != 2*8*200 {
		t.Errorf("hits+misses = %d, want %d", total, 2*8*200)
	}
}

// TestEvaluatorOmegaConst: OmegaConstFn's approximation depends on the
// trace length, which the memo key determines — caching stays exact.
func TestEvaluatorOmegaConst(t *testing.T) {
	d := MustNew("ticks", fn.ChanFn("b"), fn.OmegaConstFn("trues", seq.Of(value.T)))
	e := NewEvaluator(d, true)
	for n := 0; n <= 4; n++ {
		tr := trace.CycleGen("t", trace.Of(trace.E("b", value.T))).Prefix(n)
		for i := 0; i < 2; i++ {
			if !e.G(tr).Equal(d.G.Apply(tr)) {
				t.Errorf("G mismatch at depth %d", n)
			}
		}
	}
}

// TestEvaluatorCollisionFallback forges two distinct traces onto the
// same (hash, length) memo key and checks the evaluator's equality
// fallback: the collision costs a second application (a miss), never a
// wrong cached tuple.
func TestEvaluatorCollisionFallback(t *testing.T) {
	d := evalTestDesc()
	a := trace.Of(trace.E("b", value.Int(0)), trace.E("d", value.Int(0)))
	b := trace.Of(trace.E("c", value.Int(1)), trace.E("d", value.Int(1)))
	fa, fb := trace.WithKeyHash(a, 0x42), trace.WithKeyHash(b, 0x42)
	if fa.Key() != fb.Key() {
		t.Fatal("forged keys should collide")
	}
	e := NewEvaluator(d, true)
	va, vb := e.F(fa), e.F(fb)
	if !va.Equal(d.F.Apply(a)) || !vb.Equal(d.F.Apply(b)) {
		t.Fatal("collision produced a wrong tuple")
	}
	if va.Equal(vb) {
		t.Fatal("test needs traces with distinct images")
	}
	s := e.Snapshot()
	if s.FApplies != 2 || s.FHits != 0 {
		t.Errorf("collision accounting: applies=%d hits=%d, want 2 misses", s.FApplies, s.FHits)
	}
	// Both entries live in one bucket; each is now served as a hit.
	if got := e.F(fa); !got.Equal(va) {
		t.Error("first colliding entry lost")
	}
	if got := e.F(fb); !got.Equal(vb) {
		t.Error("second colliding entry lost")
	}
	s = e.Snapshot()
	if s.FApplies != 2 || s.FHits != 2 {
		t.Errorf("post-collision accounting: applies=%d hits=%d, want 2 and 2", s.FApplies, s.FHits)
	}
}
