package desc

import (
	"testing"

	"smoothproc/internal/fn"
	"smoothproc/internal/trace"
)

// copyNetwork is the Figure 1 loop as a two-component network: copy1 has
// incident channels {b, c} with c ⟵ b, copy2 has {b, c} with b ⟵ c.
func copyNetwork() Network {
	return Network{
		Name: "fig1",
		Components: []Component{
			{
				Name:     "copy1",
				Incident: trace.NewChanSet("b", "c"),
				D:        MustNew("copy1", fn.ChanFn("c"), fn.ChanFn("b")),
			},
			{
				Name:     "copy2",
				Incident: trace.NewChanSet("b", "c"),
				D:        MustNew("copy2", fn.ChanFn("b"), fn.ChanFn("c")),
			},
		},
	}
}

// splitNetwork has components with distinct incident sets, so the dc
// projection matters: a producer on {a, m} and a consumer on {m, z}.
func splitNetwork() Network {
	return Network{
		Name: "split",
		Components: []Component{
			{
				Name:     "producer",
				Incident: trace.NewChanSet("a", "m"),
				D:        MustNew("producer", fn.ChanFn("m"), fn.ChanFn("a")),
			},
			{
				Name:     "consumer",
				Incident: trace.NewChanSet("m", "z"),
				D:        MustNew("consumer", fn.ChanFn("z"), fn.OnChan(fn.Double, "m")),
			},
		},
	}
}

func TestCheckDC(t *testing.T) {
	good := Component{
		Name:     "ok",
		Incident: trace.NewChanSet("b", "c"),
		D:        MustNew("ok", fn.ChanFn("c"), fn.ChanFn("b")),
	}
	if err := good.CheckDC(); err != nil {
		t.Errorf("dc violated unexpectedly: %v", err)
	}
	bad := Component{
		Name:     "bad",
		Incident: trace.NewChanSet("c"),
		D:        MustNew("bad", fn.ChanFn("c"), fn.ChanFn("b")), // reads b outside incident set
	}
	if err := bad.CheckDC(); err == nil {
		t.Error("dc violation not reported")
	}
}

func TestComposeRejectsDCViolation(t *testing.T) {
	n := copyNetwork()
	n.Components[0].Incident = trace.NewChanSet("c") // strip b
	if _, err := Compose(n); err == nil {
		t.Error("Compose accepted a dc-violating component")
	}
}

func TestNetworkIncident(t *testing.T) {
	inc := splitNetwork().Incident()
	for _, ch := range []string{"a", "m", "z"} {
		if !inc.Has(ch) {
			t.Errorf("incident set missing %s", ch)
		}
	}
}

func TestComposeFig1(t *testing.T) {
	d, err := Compose(copyNetwork())
	if err != nil {
		t.Fatal(err)
	}
	// ⊥ is the network's only finite smooth solution (Section 2.1).
	if err := d.IsSmoothFinite(trace.Empty); err != nil {
		t.Errorf("⊥ rejected: %v", err)
	}
	// b = c = ⟨3⟩ solves the equations but is not smooth — the loop
	// cannot bootstrap a 3 out of nothing.
	three := trace.Of(ev("b", 3), ev("c", 3))
	if !d.LimitOK(three) {
		t.Error("⟨3⟩ loop should satisfy the equations")
	}
	if err := d.IsSmoothFinite(three); err == nil {
		t.Error("⟨3⟩ loop accepted as smooth — causality hole")
	}
}

// TestSublemmaSweep checks Theorem 2's sublemma — network-smooth iff all
// component projections smooth — over every trace up to length 3 on two
// different networks.
func TestSublemmaSweep(t *testing.T) {
	cases := []struct {
		net      Network
		alphabet []trace.Event
	}{
		{copyNetwork(), []trace.Event{ev("b", 0), ev("c", 0), ev("b", 1)}},
		{splitNetwork(), []trace.Event{ev("a", 1), ev("m", 1), ev("z", 2)}},
	}
	for _, tc := range cases {
		var sweep func(tr trace.Trace, depth int)
		sweep = func(tr trace.Trace, depth int) {
			if err := CheckSublemma(tc.net, tr); err != nil {
				t.Error(err)
			}
			if depth == 0 {
				return
			}
			for _, e := range tc.alphabet {
				sweep(tr.Append(e), depth-1)
			}
		}
		sweep(trace.Empty, 3)
	}
}

func TestComposeSplitPipeline(t *testing.T) {
	d, err := Compose(splitNetwork())
	if err != nil {
		t.Fatal(err)
	}
	good := trace.Of(ev("a", 1), ev("m", 1), ev("z", 2))
	if err := d.IsSmoothFinite(good); err != nil {
		t.Errorf("pipeline trace rejected: %v", err)
	}
	// z before its cause on m: smooth fails.
	bad := trace.Of(ev("a", 1), ev("z", 2), ev("m", 1))
	if err := d.IsSmoothFinite(bad); err == nil {
		t.Error("uncaused z output accepted")
	}
}
