package desc

import (
	"errors"
	"testing"

	"smoothproc/internal/trace"
)

func TestMonitorAgreesWithBatchChecker(t *testing.T) {
	d := dfmDesc()
	events := []trace.Event{ev("b", 0), ev("c", 1), ev("d", 0), ev("d", 1)}
	// Sweep all traces up to length 4: the monitor must accept exactly
	// the histories whose every prefix pair is a smooth edge, and report
	// quiescence exactly when the limit condition holds.
	var sweep func(tr trace.Trace, depth int)
	sweep = func(tr trace.Trace, depth int) {
		m := NewMonitor(d)
		stepErr := m.StepAll(tr)
		batchOK := true
		tr.PrePairs(func(u, v trace.Trace) bool {
			batchOK = d.EdgeOK(u, v)
			return batchOK
		})
		if (stepErr == nil) != batchOK {
			t.Errorf("monitor/batch disagree on %s: step=%v batch=%v", tr, stepErr, batchOK)
		}
		if stepErr == nil {
			wantQuiescent := d.IsSmoothFinite(tr) == nil
			if m.Quiescent() != wantQuiescent {
				t.Errorf("quiescence disagree on %s", tr)
			}
			if !m.History().Equal(tr) {
				t.Errorf("history mismatch on %s", tr)
			}
		}
		if depth == 0 {
			return
		}
		for _, e := range events {
			sweep(tr.Append(e), depth-1)
		}
	}
	sweep(trace.Empty, 4)
}

func TestMonitorStickyError(t *testing.T) {
	d := dfmDesc()
	m := NewMonitor(d)
	if err := m.Step(ev("d", 0)); !errors.Is(err, ErrNotSmooth) {
		t.Fatalf("uncaused output accepted: %v", err)
	}
	// Further steps keep returning the same violation and the history
	// stays at the last good prefix.
	if err := m.Step(ev("b", 0)); err == nil {
		t.Error("sticky error cleared")
	}
	if m.History().Len() != 0 {
		t.Errorf("history advanced past the violation: %s", m.History())
	}
	if m.Quiescent() {
		t.Error("violated monitor reports quiescent")
	}
}

func TestMonitorQuiescenceTransitions(t *testing.T) {
	d := dfmDesc()
	m := NewMonitor(d)
	if !m.Quiescent() {
		t.Error("⊥ should be quiescent for dfm")
	}
	if err := m.Step(ev("b", 0)); err != nil {
		t.Fatal(err)
	}
	if m.Quiescent() {
		t.Error("output owed: not quiescent")
	}
	if err := m.Step(ev("d", 0)); err != nil {
		t.Fatal(err)
	}
	if !m.Quiescent() {
		t.Error("caught up: quiescent again")
	}
}

func BenchmarkMonitorVsBatch(b *testing.B) {
	d := dfmDesc()
	long := benchSolution(64)
	b.Run("monitor", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := NewMonitor(d)
			if err := m.StepAll(long); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := d.IsSmoothFinite(long); err != nil {
				b.Fatal(err)
			}
		}
	})
}
