package desc

import (
	"sort"

	"smoothproc/internal/fn"
	"smoothproc/internal/trace"
)

// MemoEntry is one exported cached application: the trace and the tuple
// its side evaluated to. The solver's checkpoint codec persists these so
// a decoded checkpoint's evaluator serves the same hits — and therefore
// reports the same deterministic hit/miss counters — as the live one it
// was captured from.
type MemoEntry struct {
	T trace.Trace
	V fn.Tuple
}

// ExportMemo snapshots both sides' memo entries in a deterministic
// order (by trace length, then rendered trace). Safe for concurrent
// use: shards are locked one at a time, so the export is per-shard
// consistent — callers that need a globally quiescent snapshot (the
// checkpoint codec) hold the search stopped anyway.
func (e *Evaluator) ExportMemo() (f, g []MemoEntry) {
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		f = exportSide(&sh.f, f)
		g = exportSide(&sh.g, g)
		sh.mu.Unlock()
	}
	sortMemo(f)
	sortMemo(g)
	return f, g
}

func exportSide(m *memoSide, dst []MemoEntry) []MemoEntry {
	for _, e := range m.primary {
		dst = append(dst, MemoEntry{T: e.t, V: e.v})
	}
	for _, os := range m.overflow {
		for _, o := range os {
			dst = append(dst, MemoEntry{T: o.t, V: o.v})
		}
	}
	return dst
}

func sortMemo(es []MemoEntry) {
	sort.Slice(es, func(i, j int) bool {
		if li, lj := es[i].T.Len(), es[j].T.Len(); li != lj {
			return li < lj
		}
		return es[i].T.String() < es[j].T.String()
	})
}

// SeedMemo inserts exported entries into the memo, skipping traces that
// are already cached — the evaluator may have run (the Theorem 1
// induction-base check evaluates both sides at ⊥ during construction),
// and a fresh application equals the exported tuple because sides are
// pure, so first-in wins either way.
func (e *Evaluator) SeedMemo(f, g []MemoEntry) {
	e.seedSide(f, false)
	e.seedSide(g, true)
}

func (e *Evaluator) seedSide(es []MemoEntry, g bool) {
	for _, en := range es {
		key := en.T.Key()
		sh := e.shardFor(key)
		side := &sh.f
		if g {
			side = &sh.g
		}
		sh.mu.Lock()
		if _, ok, present := side.lookup(en.T, key); !ok {
			side.insertKnown(en.T, key, en.V, present)
		}
		sh.mu.Unlock()
	}
}

// SeedSnapshot forces the apply/hit counters to exactly s, compensating
// for whatever the evaluator already counted (again: the induction-base
// check). Wall-clock nanos are not restorable (timers have no setter)
// and are excluded from deterministic fingerprints anyway.
func (e *Evaluator) SeedSnapshot(s EvalSnapshot) {
	cur := e.Snapshot()
	e.stats.FApplies.Add(s.FApplies - cur.FApplies)
	e.stats.GApplies.Add(s.GApplies - cur.GApplies)
	e.stats.FHits.Add(s.FHits - cur.FHits)
	e.stats.GHits.Add(s.GHits - cur.GHits)
	e.stats.InflightWaits.Add(s.InflightWaits - cur.InflightWaits)
}
