package desc

import (
	"sync"
	"time"

	"smoothproc/internal/descvm"
	"smoothproc/internal/fn"
	"smoothproc/internal/metrics"
	"smoothproc/internal/trace"
)

// evalCacheLimit caps the number of memoized tuples per side. The tree
// search visits every node (and candidate son) once per distinct trace,
// so the cache grows with the explored tree; past the cap the evaluator
// keeps serving hits from what it has and stops inserting, degrading to
// direct evaluation rather than growing without bound.
const evalCacheLimit = 1 << 18

// evalShardBits selects the number of lock stripes in the memo. Sixteen
// shards keep the worst case — every worker of a wide parallel search
// missing at once — spread across independent mutexes, while costing a
// sequential search nothing but a mask on the hash it already has.
const evalShardBits = 4

// evalShards is the number of lock-striped memo buckets.
const evalShards = 1 << evalShardBits

// evalShardLimit is each shard's per-side entry budget, so the whole
// evaluator still tops out at evalCacheLimit entries per side.
const evalShardLimit = evalCacheLimit / evalShards

// EvalStats counts what a description's two sides cost through an
// Evaluator: underlying TraceFn applications, memo hits, in-flight
// deduplication waits, and the time spent inside f and g. Safe for
// concurrent use; read it via Snapshot.
type EvalStats struct {
	FApplies metrics.Counter
	GApplies metrics.Counter
	FHits    metrics.Counter
	GHits    metrics.Counter
	// InflightWaits counts lookups that found another goroutine already
	// applying the side to the same trace and waited for its result
	// instead of re-applying. Scheduling-dependent, hence excluded from
	// deterministic fingerprints.
	InflightWaits metrics.Counter
	FTime         metrics.Timer
	GTime         metrics.Timer
}

// Snapshot reads the stats into a plain value.
func (s *EvalStats) Snapshot() EvalSnapshot {
	return EvalSnapshot{
		FApplies:      s.FApplies.Load(),
		GApplies:      s.GApplies.Load(),
		FHits:         s.FHits.Load(),
		GHits:         s.GHits.Load(),
		InflightWaits: s.InflightWaits.Load(),
		FNanos:        s.FTime.TotalNanos(),
		GNanos:        s.GTime.TotalNanos(),
	}
}

// EvalSnapshot is a copyable point-in-time view of EvalStats.
type EvalSnapshot struct {
	// FApplies and GApplies count underlying applications of the two
	// sides — with memoization on, these are the cache misses.
	FApplies int64 `json:"f_applies"`
	GApplies int64 `json:"g_applies"`
	// FHits and GHits count lookups served from the memo. A lookup that
	// waited for an in-flight application of the same trace counts as a
	// hit (it never applied the side itself), so hits + applies always
	// equals total lookups.
	FHits int64 `json:"f_hits"`
	GHits int64 `json:"g_hits"`
	// InflightWaits counts the lookups that waited out a concurrent
	// application of the same trace — the work the singleflight dedup
	// saved. Scheduling-dependent: zero in sequential searches,
	// timing-dependent in parallel ones (not part of any fingerprint).
	InflightWaits int64 `json:"inflight_waits,omitempty"`
	// FNanos and GNanos are the wall-clock nanoseconds spent inside the
	// underlying applications.
	FNanos int64 `json:"f_nanos"`
	GNanos int64 `json:"g_nanos"`
}

// CacheHits returns the total memo hits across both sides.
func (s EvalSnapshot) CacheHits() int64 { return s.FHits + s.GHits }

// CacheMisses returns the total underlying applications across both
// sides (every miss is an application, and vice versa).
func (s EvalSnapshot) CacheMisses() int64 { return s.FApplies + s.GApplies }

// memoEntry is one cached application: the trace it was computed for and
// the resulting tuple. Entries in the same bucket share a (hash, length)
// Key; the trace is kept so lookups can confirm real equality.
type memoEntry struct {
	t trace.Trace
	v fn.Tuple
}

// memoSide is one shard's slice of one side's memo, keyed by the O(1)
// trace.Key. The primary map holds one entry per key — the
// overwhelmingly common case — and overflow (allocated lazily) holds the
// extras that appear only on a 64-bit hash collision between distinct
// traces. Every lookup confirms Trace.Equal before trusting a hit, so
// collisions cost a miss, never a wrong answer (the equality fallback).
// Retained traces are persistent spines that share prefixes across
// entries, so the memo's footprint is O(distinct traces), not O(Σ len).
type memoSide struct {
	primary  map[trace.Key]memoEntry
	overflow map[trace.Key][]memoEntry
	entries  int
	// inflight marks traces whose application is currently running on
	// some goroutine, matched by key with the same equality fallback as
	// the memo. A second goroutine asking for an in-flight trace waits on
	// the shard's cond instead of re-applying — this is what makes
	// "applied at most once per distinct trace" true under races. A
	// plain slice, not a map: it holds at most one entry per concurrent
	// applier, and its capacity is reused across claims, so the miss
	// path stays allocation-free in steady state.
	inflight []inflightClaim
}

// inflightClaim is one in-flight application: the trace being applied
// and its precomputed key.
type inflightClaim struct {
	k trace.Key
	t trace.Trace
}

// lookup finds t's entry. present reports whether the key itself is
// taken (by t's entry or a colliding trace's) — callers that go on to
// insert under the same lock, or on the same goroutine, can reuse it to
// skip insert's probe.
func (m *memoSide) lookup(t trace.Trace, k trace.Key) (v fn.Tuple, ok, present bool) {
	e, taken := m.primary[k]
	if !taken {
		return nil, false, false
	}
	if e.t.Equal(t) {
		return e.v, true, true
	}
	for _, o := range m.overflow[k] {
		if o.t.Equal(t) {
			return o.v, true, true
		}
	}
	return nil, false, true
}

func (m *memoSide) insert(t trace.Trace, k trace.Key, v fn.Tuple) {
	_, taken := m.primary[k]
	m.insertKnown(t, k, v, taken)
}

// insertKnown is insert with the key probe already done: present is
// lookup's report of whether k was taken, which must still hold.
func (m *memoSide) insertKnown(t trace.Trace, k trace.Key, v fn.Tuple, present bool) {
	if m.entries >= evalShardLimit {
		return
	}
	if m.primary == nil {
		m.primary = make(map[trace.Key]memoEntry)
	}
	if !present {
		m.primary[k] = memoEntry{t: t, v: v}
	} else {
		if m.overflow == nil {
			m.overflow = make(map[trace.Key][]memoEntry)
		}
		m.overflow[k] = append(m.overflow[k], memoEntry{t: t, v: v})
	}
	m.entries++
}

// claimed reports whether an application of t is already in flight.
func (m *memoSide) claimed(t trace.Trace, k trace.Key) bool {
	for _, c := range m.inflight {
		if c.k == k && c.t.Equal(t) {
			return true
		}
	}
	return false
}

// claim marks t in flight; the caller owns the application.
func (m *memoSide) claim(t trace.Trace, k trace.Key) {
	m.inflight = append(m.inflight, inflightClaim{k: k, t: t})
}

// unclaim removes t's in-flight mark.
func (m *memoSide) unclaim(t trace.Trace, k trace.Key) {
	for i, c := range m.inflight {
		if c.k == k && c.t.Equal(t) {
			last := len(m.inflight) - 1
			m.inflight[i] = m.inflight[last]
			m.inflight[last] = inflightClaim{}
			m.inflight = m.inflight[:last]
			return
		}
	}
}

// evalShard is one lock stripe of the memo: both sides' entries for the
// keys that hash into it, one mutex, and one cond for in-flight waiters.
type evalShard struct {
	mu   sync.Mutex
	cond sync.Cond
	f    memoSide
	g    memoSide
}

// Evaluator applies a description's two sides with memoization over
// (hash, length) trace keys, counting applications, hits and evaluation
// time. The memo is sharded into lock-striped buckets selected by the
// trace key's hash, and each shard deduplicates in-flight applications:
// a goroutine that asks for a trace another goroutine is currently
// evaluating waits for that result instead of re-applying. The tree
// search shares one evaluator per search, so f and g are applied at most
// once per distinct trace — even when several workers race on the same
// trace — and the apply/hit counters are deterministic under any worker
// count (see the solver's parity suite and this package's race tests).
//
// Memoization is transparent: TraceFns are pure functions of the trace
// (OmegaConstFn depends only on the trace's length, which the key also
// determines), a cached tuple equals a fresh application, and hash
// collisions are disarmed by the equality fallback in memoSide. The
// at-most-once guarantee holds while the cache accepts inserts; past
// evalCacheLimit entries the evaluator degrades to direct evaluation
// (re-applying rather than growing without bound).
type Evaluator struct {
	d       Description
	memoize bool
	single  bool
	stats   EvalStats
	// sc holds the single-threaded path's counter increments as plain
	// ints (one goroutine, no need for the atomics); Snapshot folds them
	// into the totals.
	sc singleCounts

	// fprog and gprog are the bytecode programs of the two sides when
	// compiled evaluation was requested and the side lowers (descvm).
	// They sit strictly below the memo: everything above — keys, claims,
	// counters, insert/lookup — is byte-identical between compiled and
	// interpreted evaluation, which is what keeps search fingerprints
	// equal across the two modes (the differential suite's contract).
	// A side that does not lower falls back to its interpreted Apply.
	fprog *descvm.Prog
	gprog *descvm.Prog
	// fsess and gsess are dedicated single-goroutine VM frames, set only
	// with SingleThreaded: the frame's base cache then survives the whole
	// search instead of cycling through the Prog's pool.
	fsess *descvm.Session
	gsess *descvm.Session

	shards [evalShards]evalShard
}

// EvalOptions configures NewEvaluatorOpts.
type EvalOptions struct {
	// Memoize enables the memo and in-flight dedup; false is the
	// ablation mode (counters and timers still run).
	Memoize bool
	// Compiled lowers each side to descvm bytecode where possible; the
	// interpreter remains the oracle and the fallback.
	Compiled bool
	// SingleThreaded promises that F/G/EdgeOK/LimitOK are called from
	// one goroutine only, letting the memo skip its locks and in-flight
	// claims. Counters and lookup/insert logic are unchanged — hits and
	// misses are byte-identical to the concurrent evaluator, which the
	// parity suite checks across sequential and parallel searches. The
	// default (false) is always safe.
	SingleThreaded bool
}

// NewEvaluator builds an evaluator for d; memoize false disables the
// cache and the in-flight dedup (counters and timers still run), which
// is the ablation mode.
func NewEvaluator(d Description, memoize bool) *Evaluator {
	return NewEvaluatorOpts(d, EvalOptions{Memoize: memoize})
}

// NewEvaluatorOpts builds an evaluator for d with explicit options.
func NewEvaluatorOpts(d Description, opts EvalOptions) *Evaluator {
	e := &Evaluator{d: d, memoize: opts.Memoize, single: opts.SingleThreaded}
	if opts.Compiled {
		// Memoized sessions retain every output for the evaluator's
		// lifetime, which lets them arena-allocate result tuples.
		if p, ok := descvm.Compile(d.F); ok {
			e.fprog = p
			if e.single {
				e.fsess = p.NewSession()
			}
		}
		if p, ok := descvm.Compile(d.G); ok {
			e.gprog = p
			if e.single {
				e.gsess = p.NewSession()
			}
		}
	}
	for i := range e.shards {
		e.shards[i].cond.L = &e.shards[i].mu
	}
	return e
}

// Compiled reports whether both sides run on descvm bytecode.
func (e *Evaluator) Compiled() bool { return e.fprog != nil && e.gprog != nil }

// timedRun applies one side to t through the compiled program when there
// is one, the interpreter otherwise. Only interpreted runs are timed:
// at the paper's spec sizes two time.Now calls cost as much as a whole
// compiled evaluation, so the compiled path reports FNanos/GNanos of
// zero. That asymmetry is parity-safe — the wall-clock fields are
// excluded from fingerprints and zeroed by SearchStats.Deterministic.
func (e *Evaluator) timedRun(t trace.Trace, side fn.TraceFn, g bool, timer *metrics.Timer) fn.Tuple {
	p, sess := e.fprog, e.fsess
	if g {
		p, sess = e.gprog, e.gsess
	}
	if sess != nil {
		return sess.Eval(t)
	}
	if p != nil {
		return p.Eval(t)
	}
	start := time.Now()
	v := side.Apply(t)
	timer.ObserveSince(start)
	return v
}

// Description returns the description being evaluated.
func (e *Evaluator) Description() Description { return e.d }

// singleCounts are the lookup-outcome counters of the single-threaded
// fast path; see Evaluator.sc.
type singleCounts struct {
	fApplies, gApplies, fHits, gHits int64
}

// Stats returns the live atomic stats. With SingleThreaded these miss
// the fast path's increments — use Snapshot, which folds both in.
func (e *Evaluator) Stats() *EvalStats { return &e.stats }

// Snapshot reads the evaluator's stats into a plain value.
func (e *Evaluator) Snapshot() EvalSnapshot {
	s := e.stats.Snapshot()
	s.FApplies += e.sc.fApplies
	s.GApplies += e.sc.gApplies
	s.FHits += e.sc.fHits
	s.GHits += e.sc.gHits
	return s
}

// MemoEntries returns the number of cached applications currently
// retained across both sides — the memory a caller that keeps the
// evaluator alive between searches (a resumable solve session) is
// holding onto. Safe for concurrent use: each shard's lock is taken
// briefly, so the count is a consistent per-shard snapshot.
func (e *Evaluator) MemoEntries() int {
	n := 0
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		n += sh.f.entries + sh.g.entries
		sh.mu.Unlock()
	}
	return n
}

// shardFor returns the lock stripe owning k.
func (e *Evaluator) shardFor(k trace.Key) *evalShard {
	return &e.shards[uint64(k)&(evalShards-1)]
}

func (e *Evaluator) apply(t trace.Trace, side fn.TraceFn, g bool,
	hits *metrics.Counter, applies *metrics.Counter, timer *metrics.Timer) fn.Tuple {
	if !e.memoize {
		applies.Inc()
		return e.timedRun(t, side, g, timer)
	}
	key := t.Key()
	sh := e.shardFor(key)
	cache := &sh.f
	if g {
		cache = &sh.g
	}
	if e.single {
		// One-goroutine promise: the same lookup → count → apply → insert
		// sequence as below with the locks and in-flight claims elided.
		// Hit/apply counts are decided by the same code, so sequential
		// searches produce the exact fingerprints the locked path would.
		v, ok, present := cache.lookup(t, key)
		if ok {
			if g {
				e.sc.gHits++
			} else {
				e.sc.fHits++
			}
			return v
		}
		if g {
			e.sc.gApplies++
		} else {
			e.sc.fApplies++
		}
		v = e.timedRun(t, side, g, timer)
		cache.insertKnown(t, key, v, present)
		return v
	}
	sh.mu.Lock()
	for {
		if v, ok, _ := cache.lookup(t, key); ok {
			sh.mu.Unlock()
			hits.Inc()
			return v
		}
		if !cache.claimed(t, key) {
			break
		}
		// Another goroutine is applying this side to this exact trace;
		// wait for its insert rather than double-applying.
		e.stats.InflightWaits.Inc()
		sh.cond.Wait()
	}
	cache.claim(t, key)
	sh.mu.Unlock()

	applies.Inc()
	inserted := false
	var v fn.Tuple
	defer func() {
		// Runs on success and on a panicking side alike: the claim must
		// be released either way or waiters would sleep forever.
		sh.mu.Lock()
		cache.unclaim(t, key)
		if inserted {
			cache.insert(t, key, v)
		}
		sh.cond.Broadcast()
		sh.mu.Unlock()
	}()
	v = e.timedRun(t, side, g, timer)
	inserted = true
	return v
}

// F applies the description's left side to t.
func (e *Evaluator) F(t trace.Trace) fn.Tuple {
	return e.apply(t, e.d.F, false, &e.stats.FHits, &e.stats.FApplies, &e.stats.FTime)
}

// G applies the description's right side to t.
func (e *Evaluator) G(t trace.Trace) fn.Tuple {
	return e.apply(t, e.d.G, true, &e.stats.GHits, &e.stats.GApplies, &e.stats.GTime)
}

// EdgeOK is Description.EdgeOK through the memo: f(v) ⊑ g(u).
func (e *Evaluator) EdgeOK(u, v trace.Trace) bool {
	return e.F(v).Leq(e.G(u))
}

// LimitOK is Description.LimitOK through the memo: f(t) = g(t).
func (e *Evaluator) LimitOK(t trace.Trace) bool {
	return e.F(t).Equal(e.G(t))
}
