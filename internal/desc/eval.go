package desc

import (
	"sync"
	"time"

	"smoothproc/internal/fn"
	"smoothproc/internal/metrics"
	"smoothproc/internal/trace"
)

// evalCacheLimit caps the number of memoized tuples per side. The tree
// search visits every node (and candidate son) once per distinct trace,
// so the cache grows with the explored tree; past the cap the evaluator
// keeps serving hits from what it has and stops inserting, degrading to
// direct evaluation rather than growing without bound.
const evalCacheLimit = 1 << 18

// EvalStats counts what a description's two sides cost through an
// Evaluator: underlying TraceFn applications, memo hits, and the time
// spent inside f and g. Safe for concurrent use; read it via Snapshot.
type EvalStats struct {
	FApplies metrics.Counter
	GApplies metrics.Counter
	FHits    metrics.Counter
	GHits    metrics.Counter
	FTime    metrics.Timer
	GTime    metrics.Timer
}

// Snapshot reads the stats into a plain value.
func (s *EvalStats) Snapshot() EvalSnapshot {
	return EvalSnapshot{
		FApplies: s.FApplies.Load(),
		GApplies: s.GApplies.Load(),
		FHits:    s.FHits.Load(),
		GHits:    s.GHits.Load(),
		FNanos:   s.FTime.TotalNanos(),
		GNanos:   s.GTime.TotalNanos(),
	}
}

// EvalSnapshot is a copyable point-in-time view of EvalStats.
type EvalSnapshot struct {
	// FApplies and GApplies count underlying applications of the two
	// sides — with memoization on, these are the cache misses.
	FApplies int64 `json:"f_applies"`
	GApplies int64 `json:"g_applies"`
	// FHits and GHits count lookups served from the memo.
	FHits int64 `json:"f_hits"`
	GHits int64 `json:"g_hits"`
	// FNanos and GNanos are the wall-clock nanoseconds spent inside the
	// underlying applications.
	FNanos int64 `json:"f_nanos"`
	GNanos int64 `json:"g_nanos"`
}

// CacheHits returns the total memo hits across both sides.
func (s EvalSnapshot) CacheHits() int64 { return s.FHits + s.GHits }

// CacheMisses returns the total underlying applications across both
// sides (every miss is an application, and vice versa).
func (s EvalSnapshot) CacheMisses() int64 { return s.FApplies + s.GApplies }

// Evaluator applies a description's two sides with optional memoization
// over trace keys, counting applications, hits and evaluation time. The
// tree search shares one evaluator per search, so f and g are applied at
// most once per distinct trace even when nodes share long prefixes or
// several workers race over the same level (the memo is safe for
// concurrent use).
//
// Memoization is transparent: TraceFns are pure functions of the trace
// (OmegaConstFn depends only on the trace's length, which the key also
// determines), so a cached tuple equals a fresh application.
type Evaluator struct {
	d       Description
	memoize bool
	stats   EvalStats

	mu sync.RWMutex
	f  map[string]fn.Tuple
	g  map[string]fn.Tuple
}

// NewEvaluator builds an evaluator for d; memoize false disables the
// cache (counters and timers still run), which is the ablation mode.
func NewEvaluator(d Description, memoize bool) *Evaluator {
	e := &Evaluator{d: d, memoize: memoize}
	if memoize {
		e.f = make(map[string]fn.Tuple)
		e.g = make(map[string]fn.Tuple)
	}
	return e
}

// Description returns the description being evaluated.
func (e *Evaluator) Description() Description { return e.d }

// Stats returns the live stats; read them via Snapshot.
func (e *Evaluator) Stats() *EvalStats { return &e.stats }

// Snapshot reads the evaluator's stats into a plain value.
func (e *Evaluator) Snapshot() EvalSnapshot { return e.stats.Snapshot() }

// Key returns the evaluator's cache key for t: the bracketless event
// rendering of trace.Trace.AppendKey. The Keyed lookup variants accept a
// caller-maintained key so incremental trace construction (the solver's
// tree search) pays one small concatenation per node instead of an
// O(len) re-derivation per lookup.
func Key(t trace.Trace) string { return string(t.AppendKey(nil)) }

func (e *Evaluator) apply(t trace.Trace, key string, haveKey bool, cache map[string]fn.Tuple,
	side fn.TraceFn, hits *metrics.Counter, applies *metrics.Counter, timer *metrics.Timer) fn.Tuple {
	if e.memoize {
		if !haveKey {
			key = Key(t)
		}
		e.mu.RLock()
		v, ok := cache[key]
		e.mu.RUnlock()
		if ok {
			hits.Inc()
			return v
		}
	}
	applies.Inc()
	start := time.Now()
	v := side.Apply(t)
	timer.ObserveSince(start)
	if e.memoize {
		e.mu.Lock()
		if len(cache) < evalCacheLimit {
			cache[key] = v
		}
		e.mu.Unlock()
	}
	return v
}

// F applies the description's left side to t.
func (e *Evaluator) F(t trace.Trace) fn.Tuple {
	return e.apply(t, "", false, e.f, e.d.F, &e.stats.FHits, &e.stats.FApplies, &e.stats.FTime)
}

// G applies the description's right side to t.
func (e *Evaluator) G(t trace.Trace) fn.Tuple {
	return e.apply(t, "", false, e.g, e.d.G, &e.stats.GHits, &e.stats.GApplies, &e.stats.GTime)
}

// FKeyed is F with a caller-supplied cache key (key must equal Key(t)).
func (e *Evaluator) FKeyed(t trace.Trace, key string) fn.Tuple {
	return e.apply(t, key, true, e.f, e.d.F, &e.stats.FHits, &e.stats.FApplies, &e.stats.FTime)
}

// GKeyed is G with a caller-supplied cache key (key must equal Key(t)).
func (e *Evaluator) GKeyed(t trace.Trace, key string) fn.Tuple {
	return e.apply(t, key, true, e.g, e.d.G, &e.stats.GHits, &e.stats.GApplies, &e.stats.GTime)
}

// EdgeOK is Description.EdgeOK through the memo: f(v) ⊑ g(u).
func (e *Evaluator) EdgeOK(u, v trace.Trace) bool {
	return e.F(v).Leq(e.G(u))
}

// LimitOK is Description.LimitOK through the memo: f(t) = g(t).
func (e *Evaluator) LimitOK(t trace.Trace) bool {
	return e.F(t).Equal(e.G(t))
}

// LimitOKKeyed is LimitOK with a caller-supplied cache key.
func (e *Evaluator) LimitOKKeyed(t trace.Trace, key string) bool {
	return e.FKeyed(t, key).Equal(e.GKeyed(t, key))
}
