package desc

import (
	"sync"
	"time"

	"smoothproc/internal/fn"
	"smoothproc/internal/metrics"
	"smoothproc/internal/trace"
)

// evalCacheLimit caps the number of memoized tuples per side. The tree
// search visits every node (and candidate son) once per distinct trace,
// so the cache grows with the explored tree; past the cap the evaluator
// keeps serving hits from what it has and stops inserting, degrading to
// direct evaluation rather than growing without bound.
const evalCacheLimit = 1 << 18

// EvalStats counts what a description's two sides cost through an
// Evaluator: underlying TraceFn applications, memo hits, and the time
// spent inside f and g. Safe for concurrent use; read it via Snapshot.
type EvalStats struct {
	FApplies metrics.Counter
	GApplies metrics.Counter
	FHits    metrics.Counter
	GHits    metrics.Counter
	FTime    metrics.Timer
	GTime    metrics.Timer
}

// Snapshot reads the stats into a plain value.
func (s *EvalStats) Snapshot() EvalSnapshot {
	return EvalSnapshot{
		FApplies: s.FApplies.Load(),
		GApplies: s.GApplies.Load(),
		FHits:    s.FHits.Load(),
		GHits:    s.GHits.Load(),
		FNanos:   s.FTime.TotalNanos(),
		GNanos:   s.GTime.TotalNanos(),
	}
}

// EvalSnapshot is a copyable point-in-time view of EvalStats.
type EvalSnapshot struct {
	// FApplies and GApplies count underlying applications of the two
	// sides — with memoization on, these are the cache misses.
	FApplies int64 `json:"f_applies"`
	GApplies int64 `json:"g_applies"`
	// FHits and GHits count lookups served from the memo.
	FHits int64 `json:"f_hits"`
	GHits int64 `json:"g_hits"`
	// FNanos and GNanos are the wall-clock nanoseconds spent inside the
	// underlying applications.
	FNanos int64 `json:"f_nanos"`
	GNanos int64 `json:"g_nanos"`
}

// CacheHits returns the total memo hits across both sides.
func (s EvalSnapshot) CacheHits() int64 { return s.FHits + s.GHits }

// CacheMisses returns the total underlying applications across both
// sides (every miss is an application, and vice versa).
func (s EvalSnapshot) CacheMisses() int64 { return s.FApplies + s.GApplies }

// memoEntry is one cached application: the trace it was computed for and
// the resulting tuple. Entries in the same bucket share a (hash, length)
// Key; the trace is kept so lookups can confirm real equality.
type memoEntry struct {
	t trace.Trace
	v fn.Tuple
}

// memoSide is one side's memo, keyed by the O(1) trace.Key. The primary
// map holds one entry per key — the overwhelmingly common case — and
// overflow (allocated lazily) holds the extras that appear only on a
// 64-bit hash collision between distinct traces. Every lookup confirms
// Trace.Equal before trusting a hit, so collisions cost a miss, never a
// wrong answer (the equality fallback). Retained traces are persistent
// spines that share prefixes across entries, so the memo's footprint is
// O(distinct traces), not O(Σ len).
type memoSide struct {
	primary  map[trace.Key]memoEntry
	overflow map[trace.Key][]memoEntry
	entries  int
}

func (m *memoSide) lookup(t trace.Trace, k trace.Key) (fn.Tuple, bool) {
	e, ok := m.primary[k]
	if !ok {
		return nil, false
	}
	if e.t.Equal(t) {
		return e.v, true
	}
	for _, o := range m.overflow[k] {
		if o.t.Equal(t) {
			return o.v, true
		}
	}
	return nil, false
}

func (m *memoSide) insert(t trace.Trace, k trace.Key, v fn.Tuple) {
	if m.entries >= evalCacheLimit {
		return
	}
	if _, taken := m.primary[k]; !taken {
		m.primary[k] = memoEntry{t: t, v: v}
	} else {
		if m.overflow == nil {
			m.overflow = make(map[trace.Key][]memoEntry)
		}
		m.overflow[k] = append(m.overflow[k], memoEntry{t: t, v: v})
	}
	m.entries++
}

// Evaluator applies a description's two sides with optional memoization
// over (hash, length) trace keys, counting applications, hits and
// evaluation time. The tree search shares one evaluator per search, so f
// and g are applied at most once per distinct trace even when nodes
// share long prefixes or several workers race over the same level (the
// memo is safe for concurrent use).
//
// Memoization is transparent: TraceFns are pure functions of the trace
// (OmegaConstFn depends only on the trace's length, which the key also
// determines), a cached tuple equals a fresh application, and hash
// collisions are disarmed by the equality fallback in memoSide.
type Evaluator struct {
	d       Description
	memoize bool
	stats   EvalStats

	mu sync.RWMutex
	f  memoSide
	g  memoSide
}

// NewEvaluator builds an evaluator for d; memoize false disables the
// cache (counters and timers still run), which is the ablation mode.
func NewEvaluator(d Description, memoize bool) *Evaluator {
	e := &Evaluator{d: d, memoize: memoize}
	if memoize {
		e.f.primary = make(map[trace.Key]memoEntry)
		e.g.primary = make(map[trace.Key]memoEntry)
	}
	return e
}

// Description returns the description being evaluated.
func (e *Evaluator) Description() Description { return e.d }

// Stats returns the live stats; read them via Snapshot.
func (e *Evaluator) Stats() *EvalStats { return &e.stats }

// Snapshot reads the evaluator's stats into a plain value.
func (e *Evaluator) Snapshot() EvalSnapshot { return e.stats.Snapshot() }

func (e *Evaluator) apply(t trace.Trace, cache *memoSide,
	side fn.TraceFn, hits *metrics.Counter, applies *metrics.Counter, timer *metrics.Timer) fn.Tuple {
	var key trace.Key
	if e.memoize {
		key = t.Key()
		e.mu.RLock()
		v, ok := cache.lookup(t, key)
		e.mu.RUnlock()
		if ok {
			hits.Inc()
			return v
		}
	}
	applies.Inc()
	start := time.Now()
	v := side.Apply(t)
	timer.ObserveSince(start)
	if e.memoize {
		e.mu.Lock()
		if _, ok := cache.lookup(t, key); !ok {
			cache.insert(t, key, v)
		}
		e.mu.Unlock()
	}
	return v
}

// F applies the description's left side to t.
func (e *Evaluator) F(t trace.Trace) fn.Tuple {
	return e.apply(t, &e.f, e.d.F, &e.stats.FHits, &e.stats.FApplies, &e.stats.FTime)
}

// G applies the description's right side to t.
func (e *Evaluator) G(t trace.Trace) fn.Tuple {
	return e.apply(t, &e.g, e.d.G, &e.stats.GHits, &e.stats.GApplies, &e.stats.GTime)
}

// EdgeOK is Description.EdgeOK through the memo: f(v) ⊑ g(u).
func (e *Evaluator) EdgeOK(u, v trace.Trace) bool {
	return e.F(v).Leq(e.G(u))
}

// LimitOK is Description.LimitOK through the memo: f(t) = g(t).
func (e *Evaluator) LimitOK(t trace.Trace) bool {
	return e.F(t).Equal(e.G(t))
}
