package desc

import (
	"fmt"

	"smoothproc/internal/fn"
	"smoothproc/internal/trace"
)

// Component is one process of a network: its incident channels and its
// description. Theorem 2's description constraint (dc) requires the
// description's functions to depend only on the component's incident
// channels: fᵢ(t) = fᵢ(tᵢ) and gᵢ(t) = gᵢ(tᵢ).
type Component struct {
	Name     string
	Incident trace.ChanSet
	D        Description
}

// CheckDC verifies the description constraint syntactically: both sides'
// declared supports must lie within the incident channels. (Support
// declarations themselves are property-checked in package fn.)
func (c Component) CheckDC() error {
	for _, side := range []fn.TraceFn{c.D.F, c.D.G} {
		for _, ch := range side.Support.Names() {
			if !c.Incident.Has(ch) {
				return fmt.Errorf("desc: component %s violates dc: %s reads channel %s outside incident set %v",
					c.Name, side.Name, ch, c.Incident.Names())
			}
		}
	}
	return nil
}

// Network is a finite set of components viewed as a process
// (Section 3.1.2): its incident channels are the union of the components'.
type Network struct {
	Name       string
	Components []Component
}

// Incident returns the network's incident channel set.
func (n Network) Incident() trace.ChanSet {
	all := trace.ChanSet{}
	for _, c := range n.Components {
		all = all.Union(c.Incident)
	}
	return all
}

// Compose builds the network description of Theorem 2: f is the tuple of
// the fᵢ and g the tuple of the gᵢ. Each side is precomposed with
// projection onto its component's incident channels, which realises the
// dc constraint exactly (fᵢ(t) = fᵢ(tᵢ) by construction). It returns an
// error if any component's declared support already escapes its incident
// set, because then the component description was wrong, not just
// unprojected.
func Compose(n Network) (Description, error) {
	fs := make([]fn.TraceFn, len(n.Components))
	gs := make([]fn.TraceFn, len(n.Components))
	for i, c := range n.Components {
		if err := c.CheckDC(); err != nil {
			return Description{}, err
		}
		fs[i] = fn.ProjectArg(c.D.F, c.Incident)
		gs[i] = fn.ProjectArg(c.D.G, c.Incident)
	}
	return Description{Name: n.Name, F: fn.Pair(fs...), G: fn.Pair(gs...)}, nil
}

// CheckSublemma verifies Theorem 2's sublemma on a concrete trace: t is a
// smooth solution of the composed description iff every projection tᵢ is
// a smooth solution of component i's description. A failure indicates a
// bug, since the sublemma is a theorem; the tests sweep it across the
// catalogue's networks and both smooth and non-smooth traces.
func CheckSublemma(n Network, t trace.Trace) error {
	whole, err := Compose(n)
	if err != nil {
		return err
	}
	wholeSmooth := whole.IsSmoothFinite(t) == nil
	allParts := true
	for _, c := range n.Components {
		if c.D.IsSmoothFinite(t.Project(c.Incident)) != nil {
			allParts = false
			break
		}
	}
	if wholeSmooth != allParts {
		return fmt.Errorf("desc: sublemma fails on %s for %s: network-smooth=%v, all-components-smooth=%v",
			n.Name, t, wholeSmooth, allParts)
	}
	return nil
}
