package desc

import (
	"sync"
	"testing"

	"smoothproc/internal/trace"
	"smoothproc/internal/value"
)

// TestEvaluatorAtMostOnceUnderRace is the regression test for the
// double-application race: the old apply released its read lock before
// calling side.Apply and re-locked to insert, so two goroutines racing
// on the same cold trace both applied the side and FApplies drifted
// past the number of distinct traces. The sharded memo's in-flight
// dedup closes that window; this test makes the race as likely as
// possible — every goroutine starts on the same cold traces — and
// asserts the applied-at-most-once doc contract exactly. Run it with
// -race (the CI invariants job does): the old implementation also trips
// the race detector on the counter-vs-insert interleaving.
func TestEvaluatorAtMostOnceUnderRace(t *testing.T) {
	const goroutines = 16
	const rounds = 50
	for round := 0; round < rounds; round++ {
		d := evalTestDesc()
		e := NewEvaluator(d, true)
		traces := evalTestTraces()
		var start, wg sync.WaitGroup
		start.Add(1)
		for w := 0; w < goroutines; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				start.Wait() // maximise the simultaneous cold misses
				for i := 0; i < len(traces); i++ {
					// Half the goroutines walk the prefixes backwards so
					// collisions happen at both ends of the spine.
					tr := traces[i]
					if w%2 == 1 {
						tr = traces[len(traces)-1-i]
					}
					e.F(tr)
					e.G(tr)
				}
			}(w)
		}
		start.Done()
		wg.Wait()
		s := e.Snapshot()
		distinct := int64(len(traces))
		if s.FApplies != distinct || s.GApplies != distinct {
			t.Fatalf("round %d: applies f=%d g=%d, want exactly %d each (one per distinct trace)",
				round, s.FApplies, s.GApplies, distinct)
		}
		lookups := int64(2 * goroutines * len(traces))
		if got := s.CacheHits() + s.CacheMisses(); got != lookups {
			t.Fatalf("round %d: hits+misses = %d, want %d", round, got, lookups)
		}
	}
}

// TestEvaluatorAtMostOncePerCollidingKey: the in-flight dedup matches
// claims by trace equality, not just by memo key, so two distinct
// traces forged onto one (hash, length) key are each applied exactly
// once — concurrently if the schedule allows — and neither blocks or
// absorbs the other.
func TestEvaluatorAtMostOncePerCollidingKey(t *testing.T) {
	d := evalTestDesc()
	a := trace.Of(trace.E("b", value.Int(0)), trace.E("d", value.Int(0)))
	b := trace.Of(trace.E("c", value.Int(1)), trace.E("d", value.Int(1)))
	fa, fb := trace.WithKeyHash(a, 0x7), trace.WithKeyHash(b, 0x7)
	if fa.Key() != fb.Key() {
		t.Fatal("forged keys should collide")
	}
	e := NewEvaluator(d, true)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tr := fa
			if w%2 == 1 {
				tr = fb
			}
			for i := 0; i < 100; i++ {
				e.F(tr)
			}
		}(w)
	}
	wg.Wait()
	s := e.Snapshot()
	if s.FApplies != 2 {
		t.Fatalf("FApplies = %d, want 2 (one per distinct colliding trace)", s.FApplies)
	}
	if got := s.FHits + s.FApplies; got != 8*100 {
		t.Fatalf("lookups = %d, want %d", got, 8*100)
	}
}
