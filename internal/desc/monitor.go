package desc

import (
	"fmt"

	"smoothproc/internal/fn"
	"smoothproc/internal/trace"
)

// Monitor checks smoothness incrementally: feed a communication history
// one event at a time and the monitor reports the first violated edge as
// it happens. Where IsSmoothFinite recomputes both sides for every
// prefix pair (O(n) applications of each side over the run), the monitor
// applies each side once per event and caches the previous right side —
// the natural shape for online checking of a running network, and the
// form used by check.RandomRunsAreSmooth on long runs.
//
// The zero Monitor is not valid; use NewMonitor.
type Monitor struct {
	d       Description
	current trace.Trace
	lastG   fn.Tuple
	lastF   fn.Tuple
	err     error
}

// NewMonitor starts a monitor at the empty history.
func NewMonitor(d Description) *Monitor {
	return &Monitor{
		d:       d,
		current: trace.Empty,
		lastG:   d.G.Apply(trace.Empty),
		lastF:   d.F.Apply(trace.Empty),
	}
}

// Step extends the history by one event. It returns an error — sticky
// from then on — if the new event violates the smoothness condition
// (f(v) ⋢ g(u) for the edge just taken).
func (m *Monitor) Step(e trace.Event) error {
	if m.err != nil {
		return m.err
	}
	next := m.current.Append(e)
	fv := m.d.F.Apply(next)
	if !fv.Leq(m.lastG) {
		m.err = fmt.Errorf("%w: %s: event %s: f(v)=%s ⋢ g(u)=%s",
			ErrNotSmooth, m.d.Name, e, fv, m.lastG)
		return m.err
	}
	m.current = next
	m.lastF = fv
	m.lastG = m.d.G.Apply(next)
	return nil
}

// StepAll feeds a whole trace, stopping at the first violation.
func (m *Monitor) StepAll(t trace.Trace) error {
	for _, e := range t.Events() {
		if err := m.Step(e); err != nil {
			return err
		}
	}
	return nil
}

// Quiescent reports whether the history seen so far satisfies the limit
// condition — i.e. whether stopping here would make it a smooth
// solution.
func (m *Monitor) Quiescent() bool {
	return m.err == nil && m.lastF.Equal(m.lastG)
}

// History returns the events accepted so far.
func (m *Monitor) History() trace.Trace { return m.current }

// Err returns the sticky violation, if any.
func (m *Monitor) Err() error { return m.err }
