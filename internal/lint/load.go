package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked (non-test) package.
type Package struct {
	// Path is the import path, Dir the directory it was loaded from.
	Path string
	Dir  string

	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Load parses and type-checks the packages matched by patterns, rooted
// at the module directory root (the directory holding go.mod). The only
// patterns supported are "./..." (every package under root) and
// explicit directories like "./internal/solver". Test files are not
// loaded: the invariants are about library code, and _test.go files may
// use detached contexts freely.
//
// Type information comes from the standard library's source importer,
// so loading works offline with nothing but the Go distribution — the
// trade-off is that dependencies are re-checked from source on every
// run, which for a repository this size is well under a second.
func Load(root string, patterns ...string) ([]*Package, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	var dirs []string
	seen := map[string]bool{}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			walked, err := goDirs(root)
			if err != nil {
				return nil, err
			}
			for _, d := range walked {
				if !seen[d] {
					seen[d] = true
					dirs = append(dirs, d)
				}
			}
		default:
			d := filepath.Join(root, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
			if !seen[d] {
				seen[d] = true
				dirs = append(dirs, d)
			}
		}
	}
	sort.Strings(dirs)

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := loadDir(fset, imp, root, modPath, dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// goDirs lists every directory under root containing at least one
// non-test .go file, skipping hidden directories and testdata.
func goDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if isSourceFile(e.Name()) {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	return dirs, err
}

func isSourceFile(name string) bool {
	return strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go")
}

// loadDir parses and type-checks the package in dir, or returns nil if
// the directory has no non-test Go files.
func loadDir(fset *token.FileSet, imp types.Importer, root, modPath, dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		if e.IsDir() || !isSourceFile(e.Name()) {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}

	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	path := modPath
	if rel != "." {
		path = modPath + "/" + filepath.ToSlash(rel)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// modulePath reads the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}

// FindModuleRoot walks up from dir to the directory containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		dir = parent
	}
}
