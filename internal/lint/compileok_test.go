package lint

import (
	"strings"
	"testing"
)

const compileokSrc = `package fake

import (
	"smoothproc/internal/descvm"
	"smoothproc/internal/fn"
)

func blankOK(f fn.TraceFn) *descvm.Prog {
	p, _ := descvm.Compile(f) // want: ok blanked
	return p
}

func droppedCall(f fn.TraceFn) {
	descvm.Compile(f) // want: results dropped
}

func blankVerify(p *descvm.Prog) {
	_ = descvm.Verify(p) // want: error blanked
}

func droppedVerify(p *descvm.Prog) {
	descvm.Verify(p) // want: result dropped
}

func consumed(f fn.TraceFn) error {
	p, ok := descvm.Compile(f)
	if !ok {
		return nil
	}
	return descvm.Verify(p)
}

func probeOnly(f fn.TraceFn) bool {
	// Probing lowerability with the program blanked is legitimate: the
	// final result is consumed.
	_, ok := descvm.Compile(f)
	return ok
}

func suppressed(f fn.TraceFn) {
	//smoothlint:allow compileok exercising the suppression path
	descvm.Compile(f)
}
`

func TestCompileOK(t *testing.T) {
	diags := checkSrc(t, "smoothproc/internal/fake", compileokSrc, CompileOK)
	if len(diags) != 4 {
		t.Fatalf("got %d findings, want 4: %v", len(diags), diags)
	}
	wants := []string{
		"descvm.Compile's ok result blanked",
		"result of descvm.Compile dropped",
		"descvm.Verify's error blanked",
		"result of descvm.Verify dropped",
	}
	for i, want := range wants {
		if !strings.Contains(diags[i].Message, want) {
			t.Errorf("finding %d = %q, want it to mention %q", i, diags[i].Message, want)
		}
	}
}
