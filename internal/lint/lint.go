// Package lint is a small go/analysis-style framework plus the custom
// analyzers behind cmd/smoothlint. It enforces repository invariants the
// compiler cannot: contexts must be threaded (no detached roots in
// library code), search/metrics counters must go through their atomic
// accessors, and shared trace values must never be mutated or aliased in
// place.
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis —
// an Analyzer with a Run(*Pass) hook reporting positioned diagnostics —
// but is self-contained on the standard library (go/ast, go/types and
// the source importer), so the linter builds with no dependencies
// outside the Go distribution.
//
// A finding can be suppressed with an annotation on the offending line
// or the line above it:
//
//	//smoothlint:allow ctxflow <reason>
//
// The reason is required by convention: every detached context root and
// every in-place trace edit must say why it is safe.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in output and in
	// //smoothlint:allow annotations.
	Name string
	// Doc is a one-paragraph description of the invariant.
	Doc string
	// Run inspects one package and reports findings via pass.Reportf.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one positioned finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// All returns the repository's analyzer set in stable order.
func All() []*Analyzer {
	return []*Analyzer{CtxFlow, AtomicCount, TraceAlias, ConcDoc, CompileOK, StoreCheck}
}

// Run applies the analyzers to every package and returns the surviving
// findings sorted by position. Findings on a line carrying (or directly
// below) a matching //smoothlint:allow annotation are dropped.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		allowed := allowLines(pkg)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				report: func(d Diagnostic) {
					if allowed[allowKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}] ||
						allowed[allowKey{d.Pos.Filename, d.Pos.Line - 1, d.Analyzer}] {
						return
					}
					diags = append(diags, d)
				},
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// allowKey addresses one (file, line, analyzer) suppression.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

// allowLines collects //smoothlint:allow annotations per source line.
func allowLines(pkg *Package) map[allowKey]bool {
	allowed := map[allowKey]bool{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//smoothlint:allow")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) == 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, name := range strings.Split(fields[0], ",") {
					allowed[allowKey{pos.Filename, pos.Line, name}] = true
				}
			}
		}
	}
	return allowed
}

// namedType reports whether t (after stripping pointers) is the named
// type pkgPath.name.
func namedType(t types.Type, pkgPath, name string) bool {
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// fromPackage reports whether t (after stripping pointers and arrays) is
// a named type declared in pkgPath.
func fromPackage(t types.Type, pkgPath string) bool {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		default:
			n, ok := t.(*types.Named)
			if !ok {
				return false
			}
			obj := n.Obj()
			return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
		}
	}
}
