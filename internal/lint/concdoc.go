package lint

import (
	"go/ast"
	"os"
	"path/filepath"
	"strings"
)

// ConcDoc polices concurrency claims in documentation. A doc comment
// that promises a concurrency invariant — "safe for concurrent use",
// "applied at most once per distinct …", determinism "at any worker
// count" — is an API contract that only the race detector can audit:
// the desc.Evaluator carried exactly such a comment through a release
// in which racing workers double-applied f and g. This analyzer flags
// any package-level or exported-declaration doc comment making such a
// claim when the package directory contains no *race*_test.go file, so
// every advertised invariant has a -race regression test living next to
// it (the CI invariants job runs those packages with -race).
//
// Suppress with //smoothlint:allow concdoc <reason> when the claim is
// discharged elsewhere (say, a cross-package suite).
var ConcDoc = &Analyzer{ //smoothlint:allow concdoc the doc quotes the phrases it polices; no concurrency claim is being made
	Name: "concdoc",
	Doc:  "doc comments claiming concurrency invariants (safe for concurrent use, at-most-once, worker-count determinism) require a *race*_test.go file in the same package",
	Run:  runConcDoc,
}

// concPhrases are the documented claims that demand a race test. They
// are matched case-insensitively against doc text with line breaks
// folded, so a phrase split across comment lines still counts.
var concPhrases = []string{
	"safe for concurrent use",
	"at most once per distinct",
	"any worker count",
	"concurrency-safe",
	"goroutine-safe",
}

func runConcDoc(pass *Pass) error {
	raceTested := map[string]bool{}
	hasRaceTest := func(pos ast.Node) bool {
		dir := filepath.Dir(pass.Fset.Position(pos.Pos()).Filename)
		if v, ok := raceTested[dir]; ok {
			return v
		}
		matches, err := filepath.Glob(filepath.Join(dir, "*race*_test.go"))
		v := err == nil && anyFile(matches)
		raceTested[dir] = v
		return v
	}
	for _, f := range pass.Files {
		if phrase := claimIn(f.Doc); phrase != "" && !hasRaceTest(f) {
			pass.Reportf(f.Doc.Pos(), "package doc claims %q but the package has no *race*_test.go regression test", phrase)
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() {
					continue
				}
				if phrase := claimIn(d.Doc); phrase != "" && !hasRaceTest(d) {
					pass.Reportf(d.Pos(), "doc of exported %s claims %q but the package has no *race*_test.go regression test", d.Name.Name, phrase)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					name, doc := specNameDoc(spec)
					if name == nil || !name.IsExported() {
						continue
					}
					// A doc comment on the grouping decl covers a sole spec.
					if doc == nil && len(d.Specs) == 1 {
						doc = d.Doc
					}
					if phrase := claimIn(doc); phrase != "" && !hasRaceTest(spec) {
						pass.Reportf(spec.Pos(), "doc of exported %s claims %q but the package has no *race*_test.go regression test", name.Name, phrase)
					}
				}
			}
		}
	}
	return nil
}

// specNameDoc extracts the declared name and attached doc from a type,
// value or constant spec.
func specNameDoc(spec ast.Spec) (*ast.Ident, *ast.CommentGroup) {
	switch s := spec.(type) {
	case *ast.TypeSpec:
		return s.Name, s.Doc
	case *ast.ValueSpec:
		if len(s.Names) > 0 {
			return s.Names[0], s.Doc
		}
	}
	return nil, nil
}

// claimIn returns the first concurrency phrase found in the comment
// group, or "".
func claimIn(doc *ast.CommentGroup) string {
	if doc == nil {
		return ""
	}
	text := strings.ToLower(strings.ReplaceAll(doc.Text(), "\n", " "))
	for _, phrase := range concPhrases {
		if strings.Contains(text, phrase) {
			return phrase
		}
	}
	return ""
}

// anyFile reports whether any of the paths is a regular file.
func anyFile(paths []string) bool {
	for _, p := range paths {
		if fi, err := os.Stat(p); err == nil && fi.Mode().IsRegular() {
			return true
		}
	}
	return false
}
