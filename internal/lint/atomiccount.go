package lint

import (
	"go/ast"
	"go/types"
)

// AtomicCount enforces the counter discipline from the metrics and
// solver instrumentation work: measurement state is touched only
// through its accessors.
//
// Two concrete rules:
//
//  1. sync/atomic struct fields (metrics.Counter.v, Histogram.buckets,
//     …) may be accessed only inside methods of the struct that declares
//     them — everything else must go through Inc/Add/Load/Observe. A
//     stray direct Store can silently un-monotonic a counter.
//
//  2. solver.SearchStats and solver.LevelStats fields may be written
//     only by package solver itself. The stats are exported so reports
//     and baselines can read them; a write from outside the search
//     would cook the books the baseline gate audits.
var AtomicCount = &Analyzer{
	Name: "atomiccount",
	Doc:  "search/metrics counters are touched only via their accessors: no atomic field access outside owner methods, no SearchStats writes outside the solver",
	Run:  runAtomicCount,
}

const solverPath = "smoothproc/internal/solver"

func runAtomicCount(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			recv := receiverNamed(pass, decl)
			ast.Inspect(decl, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.SelectorExpr:
					checkAtomicField(pass, n, recv)
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						checkStatsWrite(pass, lhs)
					}
				case *ast.IncDecStmt:
					checkStatsWrite(pass, n.X)
				}
				return true
			})
		}
	}
	return nil
}

// receiverNamed returns the named type a method declaration belongs to,
// or nil for functions and non-func declarations.
func receiverNamed(pass *Pass, decl ast.Decl) *types.Named {
	fd, ok := decl.(*ast.FuncDecl)
	if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 {
		return nil
	}
	tv, ok := pass.TypesInfo.Types[fd.Recv.List[0].Type]
	if !ok {
		return nil
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// checkAtomicField flags selections of sync/atomic-typed fields outside
// methods of the declaring struct's named type.
func checkAtomicField(pass *Pass, sel *ast.SelectorExpr, recv *types.Named) {
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	field, ok := selection.Obj().(*types.Var)
	if !ok || !fromPackage(field.Type(), "sync/atomic") {
		return
	}
	owner := selection.Recv()
	if ptr, ok := owner.(*types.Pointer); ok {
		owner = ptr.Elem()
	}
	ownerNamed, _ := owner.(*types.Named)
	if ownerNamed != nil && recv != nil && ownerNamed.Obj() == recv.Obj() {
		return
	}
	ownerName := "struct"
	if ownerNamed != nil {
		ownerName = ownerNamed.Obj().Name()
	}
	pass.Reportf(sel.Sel.Pos(),
		"atomic field %s.%s accessed outside %s's methods; use the accessor methods",
		ownerName, field.Name(), ownerName)
}

// checkStatsWrite flags assignments and ++/-- on SearchStats/LevelStats
// fields from outside the solver package.
func checkStatsWrite(pass *Pass, lhs ast.Expr) {
	if pass.Pkg.Path() == solverPath {
		return
	}
	sel, ok := lhs.(*ast.SelectorExpr)
	if !ok {
		return
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok {
		return
	}
	for _, name := range []string{"SearchStats", "LevelStats"} {
		if namedType(tv.Type, solverPath, name) {
			pass.Reportf(sel.Sel.Pos(),
				"write to solver.%s.%s outside the solver; search statistics are read-only to consumers",
				name, sel.Sel.Name)
			return
		}
	}
}
