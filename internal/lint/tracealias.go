package lint

import (
	"go/ast"
	"go/types"
)

// TraceAlias enforces the trace-immutability convention: a trace.Trace
// is a value shared freely across solver nodes, memo keys and netsim
// histories, which is only sound because nobody mutates one in place.
// The safe extension operators are the copying methods Trace.Append and
// Trace.Concat.
//
// Flagged shapes (t of type trace.Trace):
//
//	t[i] = e            in-place mutation of a shared value
//	u = append(t, …)    aliasing append: u shares t's backing array and
//	                    a later self-append through either name writes
//	                    into the other's storage
//	t = append(t, …)    allowed for locals (the builder idiom over a
//	                    fresh make), flagged when t is a parameter or
//	                    receiver — that writes into the caller's array
var TraceAlias = &Analyzer{
	Name: "tracealias",
	Doc:  "forbid in-place mutation and aliasing append on shared trace.Trace values; build fresh traces or use the copying Append/Concat",
	Run:  runTraceAlias,
}

const tracePath = "smoothproc/internal/trace"

func runTraceAlias(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			params := paramObjects(pass, fd)
			// consumed tracks append calls handled by an allowed
			// self-append assignment, so the general sweep skips them.
			consumed := map[*ast.CallExpr]bool{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					checkAssign(pass, n, params, consumed)
				case *ast.CallExpr:
					if isTraceAppend(pass, n) && !consumed[n] {
						pass.Reportf(n.Pos(),
							"append on a trace.Trace aliases its backing array; use the copying Trace.Append/Concat")
					}
				}
				return true
			})
		}
	}
	return nil
}

// paramObjects collects the parameter and receiver objects of fd — the
// variables whose backing arrays belong to the caller.
func paramObjects(pass *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	objs := map[types.Object]bool{}
	fields := []*ast.FieldList{fd.Type.Params}
	if fd.Recv != nil {
		fields = append(fields, fd.Recv)
	}
	for _, fl := range fields {
		if fl == nil {
			continue
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil {
					objs[obj] = true
				}
			}
		}
	}
	return objs
}

func checkAssign(pass *Pass, n *ast.AssignStmt, params map[types.Object]bool, consumed map[*ast.CallExpr]bool) {
	for _, lhs := range n.Lhs {
		if idx, isIdx := lhs.(*ast.IndexExpr); isIdx {
			if tv, has := pass.TypesInfo.Types[idx.X]; has && namedType(tv.Type, tracePath, "Trace") {
				pass.Reportf(lhs.Pos(), "in-place write to a trace.Trace element; traces are shared immutable values")
			}
		}
	}
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i, rhs := range n.Rhs {
		call, isCall := rhs.(*ast.CallExpr)
		if !isCall || !isTraceAppend(pass, call) {
			continue
		}
		dst, dstOk := n.Lhs[i].(*ast.Ident)
		src, srcOk := call.Args[0].(*ast.Ident)
		if !dstOk || !srcOk {
			continue // flagged by the general sweep
		}
		dstObj := pass.TypesInfo.Uses[dst]
		if dstObj == nil {
			dstObj = pass.TypesInfo.Defs[dst]
		}
		srcObj := pass.TypesInfo.Uses[src]
		if dstObj == nil || srcObj == nil || dstObj != srcObj {
			continue
		}
		if params[srcObj] {
			pass.Reportf(call.Pos(),
				"self-append to parameter %s writes into the caller's backing array; copy with Trace.Append/Concat or build a fresh trace",
				src.Name)
		}
		consumed[call] = true
	}
}

// isTraceAppend reports whether call is builtin append applied to a
// trace.Trace first argument.
func isTraceAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) == 0 {
		return false
	}
	if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	return ok && namedType(tv.Type, tracePath, "Trace")
}
