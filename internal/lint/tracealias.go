package lint

import (
	"go/ast"
	"go/token"
)

// TraceAlias enforces the trace-identity convention: a trace.Trace is a
// persistent, structurally-shared value (an immutable parent-pointer
// spine). The struct is comparable, so `==` compiles — but it compares
// spine pointers, not events: two traces holding the same events built
// along different paths are `!=` under identity while Equal under the
// trace cpo. The same trap applies to maps keyed by trace.Trace.
//
// Flagged shapes (t, u of type trace.Trace):
//
//	t == u, t != u      identity comparison; use Trace.Equal (or
//	                    IsEmpty for the ⊥ test)
//	map[trace.Trace]V   identity-keyed map; key by Trace.Key() (the
//	                    hashed memo key) or Trace.String()
var TraceAlias = &Analyzer{
	Name: "tracealias",
	Doc:  "forbid identity comparison and identity map keys on trace.Trace; use Trace.Equal/IsEmpty or key by Trace.Key()/String()",
	Run:  runTraceAlias,
}

const tracePath = "smoothproc/internal/trace"

func runTraceAlias(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if isTraceExpr(pass, n.X) || isTraceExpr(pass, n.Y) {
					pass.Reportf(n.Pos(),
						"%s on trace.Trace compares spine identity, not events; use Trace.Equal (or IsEmpty)", n.Op)
				}
			case *ast.MapType:
				if tv, ok := pass.TypesInfo.Types[n.Key]; ok && namedType(tv.Type, tracePath, "Trace") {
					pass.Reportf(n.Key.Pos(),
						"map keyed by trace.Trace uses spine identity; key by Trace.Key() or Trace.String()")
				}
			}
			return true
		})
	}
	return nil
}

// isTraceExpr reports whether e has type trace.Trace.
func isTraceExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && namedType(tv.Type, tracePath, "Trace")
}
