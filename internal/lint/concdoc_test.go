package lint

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"testing"
)

// checkSrcInDir is checkSrc with the synthetic file named into an
// explicit directory, so ConcDoc's race-test-file probe sees that
// directory's contents rather than this package's.
func checkSrcInDir(t *testing.T, dir, src string, analyzers ...*Analyzer) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filepath.Join(dir, "synthetic_test_src.go"), src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check("smoothproc/internal/fake", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type-check: %v", err)
	}
	pkg := &Package{Path: "smoothproc/internal/fake", Dir: dir, Fset: fset, Files: []*ast.File{f}, Types: tpkg, Info: info}
	diags, err := Run([]*Package{pkg}, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

const concdocSrc = `package fake

import "sync"

// Registry is a name table, safe for concurrent use.
type Registry struct{ mu sync.Mutex }

// Reset is idempotent: applied at most once per distinct generation.
func (r *Registry) Reset() {}

// internalTable is also safe for concurrent use — but unexported, so
// the contract is the package's own business.
type internalTable struct{}

// Lookup has no concurrency story at all.
func (r *Registry) Lookup() {}
`

// TestConcDocFlagsUntestedClaims: concurrency-claiming docs on exported
// declarations are flagged when the package directory has no
// *race*_test.go, and only those.
func TestConcDocFlagsUntestedClaims(t *testing.T) {
	dir := t.TempDir()
	diags := checkSrcInDir(t, dir, concdocSrc, ConcDoc)
	if len(diags) != 2 {
		t.Fatalf("got %d findings, want 2 (Registry and Reset): %v", len(diags), messages(diags))
	}
	for _, d := range diags {
		if d.Analyzer != "concdoc" {
			t.Errorf("finding from %s, want concdoc", d.Analyzer)
		}
	}
}

// TestConcDocSatisfiedByRaceTest: the same source is clean once a race
// test file sits next to it.
func TestConcDocSatisfiedByRaceTest(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "registry_race_test.go"), []byte("package fake\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if diags := checkSrcInDir(t, dir, concdocSrc, ConcDoc); len(diags) != 0 {
		t.Fatalf("got findings despite race test file: %v", messages(diags))
	}
}

// TestConcDocPackageDoc: a package-level claim counts too.
func TestConcDocPackageDoc(t *testing.T) {
	src := `// Package fake is entirely goroutine-safe.
package fake
`
	dir := t.TempDir()
	diags := checkSrcInDir(t, dir, src, ConcDoc)
	if len(diags) != 1 {
		t.Fatalf("got %d findings, want 1 (package doc): %v", len(diags), messages(diags))
	}
}

// TestConcDocSplitPhrase: a phrase broken across comment lines is still
// a claim — doc text is matched with line breaks folded.
func TestConcDocSplitPhrase(t *testing.T) {
	src := `package fake

// Table is safe for
// concurrent use.
type Table struct{}
`
	dir := t.TempDir()
	if diags := checkSrcInDir(t, dir, src, ConcDoc); len(diags) != 1 {
		t.Fatalf("got %d findings, want 1 (split phrase): %v", len(diags), messages(diags))
	}
}

// TestConcDocAllow: the standard suppression annotation applies.
func TestConcDocAllow(t *testing.T) {
	src := `package fake

// Table is safe for concurrent use.
type Table struct{} //smoothlint:allow concdoc covered by the cross-package suite
`
	dir := t.TempDir()
	if diags := checkSrcInDir(t, dir, src, ConcDoc); len(diags) != 0 {
		t.Fatalf("suppressed finding survived: %v", messages(diags))
	}
}
