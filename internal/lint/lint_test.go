package lint

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// checkSrc type-checks one synthetic file as the package importPath and
// runs the given analyzers over it. The file is named into this package's
// real directory so the source importer resolves smoothproc imports.
func checkSrc(t *testing.T, importPath, src string, analyzers ...*Analyzer) []Diagnostic {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filepath.Join(wd, "synthetic_test_src.go"), src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check(importPath, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type-check: %v", err)
	}
	pkg := &Package{Path: importPath, Fset: fset, Files: []*ast.File{f}, Types: tpkg, Info: info}
	diags, err := Run([]*Package{pkg}, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

func messages(diags []Diagnostic) []string {
	var out []string
	for _, d := range diags {
		out = append(out, d.Analyzer+": "+d.Message)
	}
	return out
}

func TestCtxFlow(t *testing.T) {
	src := `package fake

import "context"

func bad() error {
	ctx := context.Background()
	_ = ctx
	todo := context.TODO()
	_ = todo
	return nil
}

func good(ctx context.Context) context.Context {
	sub, cancel := context.WithCancel(ctx)
	defer cancel()
	return sub
}

func annotated() context.Context {
	return context.Background() //smoothlint:allow ctxflow test fixture root
}
`
	diags := checkSrc(t, "smoothproc/internal/fake", src, CtxFlow)
	if len(diags) != 2 {
		t.Fatalf("got %d findings, want 2 (Background, TODO): %v", len(diags), messages(diags))
	}
	for _, d := range diags {
		if d.Analyzer != "ctxflow" {
			t.Errorf("analyzer = %s", d.Analyzer)
		}
	}
	if diags[0].Pos.Line != 6 || diags[1].Pos.Line != 8 {
		t.Errorf("positions %d,%d, want lines 6,8", diags[0].Pos.Line, diags[1].Pos.Line)
	}
}

// TestCtxFlowSkipsNonInternal: entry-point packages may mint roots.
func TestCtxFlowSkipsNonInternal(t *testing.T) {
	src := `package main

import "context"

func main() { _ = context.Background() }
`
	if diags := checkSrc(t, "smoothproc/cmd/fake", src, CtxFlow); len(diags) != 0 {
		t.Errorf("cmd package flagged: %v", messages(diags))
	}
}

func TestAtomicCountFields(t *testing.T) {
	src := `package fake

import "sync/atomic"

type counter struct {
	v atomic.Int64
}

// Accessors: the only legal touchpoints.
func (c *counter) Inc()        { c.v.Add(1) }
func (c *counter) Load() int64 { return c.v.Load() }

type other struct{}

// A foreign method reaching into counter's atomic is a finding.
func (o *other) steal(c *counter) int64 { return c.v.Load() }

// So is a free function.
func free(c *counter) { c.v.Store(0) }
`
	diags := checkSrc(t, "smoothproc/internal/fake", src, AtomicCount)
	if len(diags) != 2 {
		t.Fatalf("got %d findings, want 2: %v", len(diags), messages(diags))
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "counter.v") {
			t.Errorf("message %q does not name the field", d.Message)
		}
	}
}

func TestAtomicCountStatsWrites(t *testing.T) {
	src := `package fake

import "smoothproc/internal/solver"

func cook(st *solver.SearchStats) {
	st.EdgesChecked++
	st.Visited = 7
	lvl := st.Levels[0]
	lvl.Pruned = 0
}

func read(st solver.SearchStats) int {
	return st.EdgesChecked + st.EdgesKept
}
`
	diags := checkSrc(t, "smoothproc/internal/fake", src, AtomicCount)
	if len(diags) != 3 {
		t.Fatalf("got %d findings, want 3 writes flagged: %v", len(diags), messages(diags))
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "read-only") {
			t.Errorf("unexpected message %q", d.Message)
		}
	}
}

func TestTraceAlias(t *testing.T) {
	src := `package fake

import (
	"smoothproc/internal/trace"
	"smoothproc/internal/value"
)

func e() trace.Event { return trace.E("c", value.Value{}) }

// Identity comparisons and identity-keyed maps are findings.
func bad(t, u trace.Trace) bool {
	seen := map[trace.Trace]bool{}
	seen[t] = t == u
	if t != trace.Empty {
		return seen[u]
	}
	return t == u
}

// Structural equality, the ⊥ test and hashed/string keys are fine.
func good(t, u trace.Trace) bool {
	byKey := map[trace.Key]trace.Trace{t.Key(): t}
	byStr := map[string]trace.Trace{u.String(): u}
	_, _ = byKey, byStr
	return t.Equal(u) || t.IsEmpty()
}

// Comparable Keys and Events are out of scope.
func unrelated(a, b trace.Key, x, y trace.Event) bool {
	return a == b && x.Equal(y)
}
`
	diags := checkSrc(t, "smoothproc/internal/fake", src, TraceAlias)
	if len(diags) != 4 {
		t.Fatalf("got %d findings, want 4: %v", len(diags), messages(diags))
	}
	wantLines := []int{12, 13, 14, 17}
	for i, d := range diags {
		if d.Pos.Line != wantLines[i] {
			t.Errorf("finding %d at line %d, want %d (%s)", i, d.Pos.Line, wantLines[i], d.Message)
		}
	}
}

func TestSuppressionRequiresAnalyzerName(t *testing.T) {
	src := `package fake

import "context"

func a() { _ = context.Background() //smoothlint:allow ctxflow reason
}

func b() {
	//smoothlint:allow ctxflow reason on the line above
	_ = context.Background()
}

func c() { _ = context.Background() //smoothlint:allow tracealias wrong analyzer
}
`
	diags := checkSrc(t, "smoothproc/internal/fake", src, CtxFlow)
	if len(diags) != 1 {
		t.Fatalf("got %d findings, want 1 (mismatched allow name): %v", len(diags), messages(diags))
	}
	if diags[0].Pos.Line != 13 {
		t.Errorf("surviving finding at line %d, want 13", diags[0].Pos.Line)
	}
}

// TestLoadRepo loads the whole module through the production path and
// asserts the shipped tree is clean — the same gate CI runs via
// cmd/smoothlint.
func TestLoadRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages", len(pkgs))
	}
	diags, err := Run(pkgs, All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
