package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxFlow enforces the context-threading convention the solver and
// service layers established: library code under internal/ must accept
// a context from its caller, never mint a detached root. A
// context.Background() (or TODO()) deep in a library silently severs
// the cancellation chain — the solver keeps searching after the HTTP
// client has gone away, the simulator outlives its deadline. Entry
// points (package main, tests) are exempt: roots belong where the
// program starts, not where the work happens.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "forbid context.Background()/context.TODO() in internal/ library code; contexts must be threaded from callers",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	if !strings.Contains(pass.Pkg.Path(), "/internal/") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fun, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok {
				return true
			}
			switch fun.FullName() {
			case "context.Background", "context.TODO":
				pass.Reportf(call.Pos(),
					"%s in library code severs the cancellation chain; thread a context from the caller (or annotate a deliberate root)",
					fun.FullName())
			}
			return true
		})
	}
	return nil
}
