package lint

import (
	"go/ast"
	"go/types"
)

// StoreCheck enforces the durable-store discipline the -data-dir layer
// depends on. Two failure shapes have already bitten similar systems:
//
//  1. A store call whose error is silently dropped — Put in statement
//     position turns "durable" into "probably durable"; a crash between
//     the dropped error and the next read loses state with no trace.
//     Every store error must be handled or deliberately assigned away.
//
//  2. A Store implementation that ignores its context — backends are
//     called on request paths, and an impl that never consults ctx
//     keeps reading disk for clients that hung up. Every interface
//     method must reference its context (the standard backends funnel
//     it through check/ctx.Err()).
var StoreCheck = &Analyzer{
	Name: "storecheck",
	Doc:  "store calls must not drop errors; Store implementations must not ignore their context",
	Run:  runStoreCheck,
}

const storePkgPath = "smoothproc/internal/store"

// storeMethods is the Store interface surface (Close handled too: it
// also returns an error worth keeping).
var storeMethods = map[string]bool{
	"Put": true, "Get": true, "Stat": true, "List": true, "Delete": true, "Close": true,
}

func runStoreCheck(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				checkDroppedError(pass, n)
			case *ast.FuncDecl:
				checkIgnoredCtx(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkDroppedError flags a statement-position call to a method on a
// store-package type whose results (error included) vanish.
func checkDroppedError(pass *Pass, stmt *ast.ExprStmt) {
	call, ok := stmt.X.(*ast.CallExpr)
	if !ok {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !storeMethods[sel.Sel.Name] {
		return
	}
	recv, ok := pass.TypesInfo.Types[sel.X]
	if !ok || !fromPackage(recv.Type, storePkgPath) {
		return
	}
	fun, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	if !returnsError(fun) {
		return
	}
	pass.Reportf(call.Pos(),
		"error from %s.%s dropped; a swallowed store failure silently loses durable state — handle it or assign it away deliberately",
		recv.Type.String(), sel.Sel.Name)
}

// returnsError reports whether fun's last result is the error type.
func returnsError(fun *types.Func) bool {
	sig, ok := fun.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	return types.Identical(last, types.Universe.Lookup("error").Type())
}

// checkIgnoredCtx flags a Store interface method implementation whose
// context parameter is blank or never referenced in the body.
func checkIgnoredCtx(pass *Pass, fn *ast.FuncDecl) {
	if fn.Recv == nil || fn.Body == nil || !storeMethods[fn.Name.Name] {
		return
	}
	params := fn.Type.Params
	if params == nil || len(params.List) == 0 {
		return
	}
	first := params.List[0]
	if len(first.Names) != 1 || !isContextType(pass, first.Type) {
		return
	}
	// Only methods that are actually part of the store surface: they must
	// mention a store-package type elsewhere in their signature, so an
	// unrelated cache's Get(ctx, string) stays out of scope.
	if !signatureTouchesStore(pass, fn) {
		return
	}
	ctxName := first.Names[0]
	if ctxName.Name == "_" {
		pass.Reportf(ctxName.Pos(),
			"store %s discards its context; backends run on request paths and must observe cancellation",
			fn.Name.Name)
		return
	}
	ctxObj := pass.TypesInfo.Defs[ctxName]
	if ctxObj == nil {
		return
	}
	used := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == ctxObj {
			used = true
			return false
		}
		return !used
	})
	if !used {
		pass.Reportf(ctxName.Pos(),
			"store %s never consults ctx %s; backends run on request paths and must observe cancellation (check ctx.Err() or pass it on)",
			fn.Name.Name, ctxName.Name)
	}
}

// isContextType reports whether the expression's type is context.Context.
func isContextType(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && namedType(tv.Type, "context", "Context")
}

// signatureTouchesStore reports whether any non-context parameter or any
// result of fn is typed from the store package, or the receiver is.
func signatureTouchesStore(pass *Pass, fn *ast.FuncDecl) bool {
	if recv := fn.Recv; recv != nil && len(recv.List) == 1 {
		if tv, ok := pass.TypesInfo.Types[recv.List[0].Type]; ok && fromPackage(tv.Type, storePkgPath) {
			return true
		}
	}
	touches := func(fields *ast.FieldList) bool {
		if fields == nil {
			return false
		}
		for _, f := range fields.List {
			if tv, ok := pass.TypesInfo.Types[f.Type]; ok && fromPackage(tv.Type, storePkgPath) {
				return true
			}
		}
		return false
	}
	return touches(fn.Type.Params) || touches(fn.Type.Results)
}
