package lint

import (
	"strings"
	"testing"
)

func TestStoreCheckDroppedErrors(t *testing.T) {
	src := `package fake

import (
	"context"

	"smoothproc/internal/store"
)

func bad(ctx context.Context, s *store.Memory, m *store.Measured) {
	s.Put(ctx, store.KindSpec, store.KeyOf(nil), nil)
	m.Delete(ctx, store.KindSpec, store.KeyOf(nil))
	s.Close()
}

func good(ctx context.Context, s *store.Memory) error {
	if err := s.Put(ctx, store.KindSpec, store.KeyOf(nil), nil); err != nil {
		return err
	}
	_ = s.Close() // deliberate: assigned away, not dropped
	data, err := s.Get(ctx, store.KindSpec, store.KeyOf(nil))
	_ = data
	return err
}
`
	diags := checkSrc(t, "smoothproc/internal/fake", src, StoreCheck)
	if len(diags) != 3 {
		t.Fatalf("diagnostics = %v, want 3", messages(diags))
	}
	for i, want := range []string{"Put dropped", "Delete dropped", "Close dropped"} {
		if !strings.Contains(diags[i].Message, strings.Fields(want)[0]) {
			t.Errorf("diag %d = %q, want mention of %q", i, diags[i].Message, want)
		}
	}
}

func TestStoreCheckIgnoredContext(t *testing.T) {
	src := `package fake

import (
	"context"

	"smoothproc/internal/store"
)

// null is a Store-shaped backend that ignores cancellation two ways.
type null struct{}

func (null) Put(_ context.Context, kind store.Kind, key store.Key, data []byte) error {
	return nil
}

func (null) Get(ctx context.Context, kind store.Kind, key store.Key) ([]byte, error) {
	return nil, store.ErrNotFound
}

// threaded consults its context, as backends must.
type threaded struct{}

func (threaded) Put(ctx context.Context, kind store.Kind, key store.Key, data []byte) error {
	return ctx.Err()
}

// unrelated caches are out of scope even with a Get(ctx, ...) method.
type cache struct{}

func (cache) Get(ctx context.Context, key string) (string, bool) {
	return "", false
}
`
	diags := checkSrc(t, "smoothproc/internal/fake", src, StoreCheck)
	if len(diags) != 2 {
		t.Fatalf("diagnostics = %v, want 2 (blank ctx on Put, unused ctx on Get)", messages(diags))
	}
	if !strings.Contains(diags[0].Message, "Put discards its context") {
		t.Errorf("diag 0 = %q", diags[0].Message)
	}
	if !strings.Contains(diags[1].Message, "Get never consults ctx") {
		t.Errorf("diag 1 = %q", diags[1].Message)
	}
}

func TestStoreCheckAllowAnnotation(t *testing.T) {
	src := `package fake

import (
	"context"

	"smoothproc/internal/store"
)

func fireAndForget(ctx context.Context, s *store.Memory) {
	s.Delete(ctx, store.KindResult, store.KeyOf(nil)) //smoothlint:allow storecheck best-effort cache invalidation
}
`
	diags := checkSrc(t, "smoothproc/internal/fake", src, StoreCheck)
	if len(diags) != 0 {
		t.Fatalf("annotated drop still reported: %v", messages(diags))
	}
}
