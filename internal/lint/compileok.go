package lint

import (
	"go/ast"
	"go/types"
)

// CompileOK enforces the bytecode-pipeline discipline introduced with
// descvm.Verify: the compiler's fallibility and the verifier's verdict
// are load-bearing, never decorative.
//
// Two concrete rules:
//
//  1. descvm.Compile's ok result must be consumed. A blank `_` for ok —
//     or dropping both results — turns "this side is opaque, interpret
//     it" into a nil *Prog dereference or a silently skipped fast path.
//
//  2. descvm.Verify's error must be consumed. Verify exists to catch
//     compiler bugs before a malformed program reaches an evaluator;
//     `_ = Verify(p)` runs the check and ignores the alarm.
var CompileOK = &Analyzer{
	Name: "compileok",
	Doc:  "descvm.Compile's ok and descvm.Verify's error are consumed, never blanked or dropped",
	Run:  runCompileOK,
}

const descvmPath = "smoothproc/internal/descvm"

func runCompileOK(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				// A bare call statement drops every result.
				if call, ok := n.X.(*ast.CallExpr); ok {
					if name := descvmCallee(pass, call); name != "" {
						pass.Reportf(call.Pos(), "result of descvm.%s dropped: consume the %s", name, resultName(name))
					}
				}
			case *ast.AssignStmt:
				checkBlankedResult(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkBlankedResult flags `p, _ := descvm.Compile(f)` (ok blanked) and
// `_ = descvm.Verify(p)` (error blanked). Only the *final* result is
// the verdict; `_, ok := Compile(f)` legitimately probes lowerability.
func checkBlankedResult(pass *Pass, assign *ast.AssignStmt) {
	if len(assign.Rhs) != 1 {
		return
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	name := descvmCallee(pass, call)
	if name == "" {
		return
	}
	last, ok := assign.Lhs[len(assign.Lhs)-1].(*ast.Ident)
	if !ok || last.Name != "_" {
		return
	}
	pass.Reportf(call.Pos(), "descvm.%s's %s blanked: check it (the final result is the verdict)", name, resultName(name))
}

// descvmCallee returns "Compile" or "Verify" when the call resolves to
// that descvm function, "" otherwise. Both qualified uses
// (descvm.Compile) and in-package calls are matched through the type
// info, so aliased imports don't hide a drop.
func descvmCallee(pass *Pass, call *ast.CallExpr) string {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return ""
	}
	obj, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != descvmPath {
		return ""
	}
	if name := obj.Name(); name == "Compile" || name == "Verify" {
		return name
	}
	return ""
}

func resultName(callee string) string {
	if callee == "Verify" {
		return "error"
	}
	return "ok result"
}
