// Package kahn implements the deterministic special case the paper builds
// on: Kahn's equational semantics for networks of deterministic processes
// (Section 2.1), the Kleene least-fixpoint evaluator over tuples of
// message sequences, and the bridge of Section 6 — the least fixpoint of
// a continuous h is the unique smooth solution of the description id ⟵ h
// (Theorem 4).
package kahn

import (
	"context"
	"fmt"

	"smoothproc/internal/cpo"
	"smoothproc/internal/desc"
	"smoothproc/internal/fn"
	"smoothproc/internal/seq"
	"smoothproc/internal/solver"
	"smoothproc/internal/trace"
	"smoothproc/internal/value"
)

// Equations is a Kahn system x = h(x) over named channels: for each
// channel, a continuous function of the whole channel environment giving
// that channel's sequence. Deterministic processes contribute one
// equation per output channel (Section 2.1); input-only channels are
// given as constants.
type Equations struct {
	Name string
	// Channels fixes the tuple order.
	Channels []string
	// Rhs[i] computes channel Channels[i] from the environment.
	Rhs []func(env Env) seq.Seq
}

// Env is a channel environment: one sequence per channel.
type Env map[string]seq.Seq

// apply computes h(x) as a fresh environment.
func (eq Equations) apply(env Env) Env {
	out := make(Env, len(eq.Channels))
	for i, c := range eq.Channels {
		out[c] = eq.Rhs[i](env)
	}
	return out
}

// FixResult reports a bounded Kleene iteration over the equations.
type FixResult struct {
	// Env is the final iterate.
	Env Env
	// Steps is the number of applications performed.
	Steps int
	// Converged reports exact convergence: the iterate is the least
	// fixpoint, not just a lower approximation. Networks with infinite
	// behaviour (e.g. Figure 1's 0^ω variant) never converge; use LenCap
	// to study their growing approximations.
	Converged bool
}

// Solve runs Kleene iteration from the ⊥ environment. lenCap truncates
// every sequence after each step — the finite window onto ω-behaviour;
// pass lenCap <= 0 for no truncation. maxSteps bounds the iteration.
// It returns an error if an iterate fails to ascend, refuting the
// continuity assumption on the right-hand sides.
func (eq Equations) Solve(maxSteps, lenCap int) (FixResult, error) {
	cur := make(Env, len(eq.Channels))
	for _, c := range eq.Channels {
		cur[c] = seq.Empty
	}
	res := FixResult{}
	for i := 0; i < maxSteps; i++ {
		next := eq.apply(cur)
		if lenCap > 0 {
			for c, s := range next {
				next[c] = s.Take(lenCap)
			}
		}
		stable := true
		for _, c := range eq.Channels {
			if !cur[c].Leq(next[c]) {
				return res, fmt.Errorf("kahn: %s: channel %s not ascending at step %d: %s ⋢ %s",
					eq.Name, c, i, cur[c], next[c])
			}
			if !cur[c].Equal(next[c]) {
				stable = false
			}
		}
		res.Steps = i + 1
		if stable {
			res.Env = cur
			res.Converged = true
			return res, nil
		}
		cur = next
	}
	res.Env = cur
	return res, nil
}

// Domain builds the cpo.Domain of environments for these equations, so
// the generic Section 6 machinery applies to them directly.
func (eq Equations) Domain() cpo.Domain[Env] {
	leq := func(a, b Env) bool {
		for _, c := range eq.Channels {
			if !a[c].Leq(b[c]) {
				return false
			}
		}
		return true
	}
	bottom := make(Env, len(eq.Channels))
	for _, c := range eq.Channels {
		bottom[c] = seq.Empty
	}
	return cpo.Domain[Env]{
		Name:   "Env(" + eq.Name + ")",
		Leq:    leq,
		Eq:     cpo.EqFromLeq(leq),
		Bottom: bottom,
		Join:   cpo.ChainJoin(leq),
	}
}

// Fn wraps the equations as a cpo endofunction.
func (eq Equations) Fn() cpo.Fn[Env] {
	return cpo.Fn[Env]{Name: eq.Name, Apply: func(e Env) Env { return eq.apply(e) }}
}

// IdentityDescription builds the trace-level description id ⟵ h of
// Theorem 4 for a single-channel equation c = h(c): the left side is the
// channel function c, the right side h applied to c's history.
func IdentityDescription(c string, h fn.SeqFn) desc.Description {
	return desc.MustNew("id ⟵ "+h.Name, fn.ChanFn(c), fn.OnChan(h, c))
}

// CheckTheorem4Trace verifies Theorem 4 in the trace cpo for a
// single-channel equation c = h(c) whose least fixpoint is reached within
// maxSteps: the Section 3.3 tree search over the given alphabet must find
// exactly one smooth solution, and it must equal the Kleene least
// fixpoint. depth must be at least the fixpoint's length.
func CheckTheorem4Trace(ctx context.Context, c string, h fn.SeqFn, alphabet []value.Value, maxSteps, depth int) error {
	eq := Equations{
		Name:     "x=" + h.Name + "(x)",
		Channels: []string{c},
		Rhs:      []func(Env) seq.Seq{func(env Env) seq.Seq { return h.Apply(env[c]) }},
	}
	fix, err := eq.Solve(maxSteps, 0)
	if err != nil {
		return err
	}
	if !fix.Converged {
		return fmt.Errorf("kahn: %s did not converge in %d steps", eq.Name, maxSteps)
	}
	lfp := fix.Env[c]
	if lfp.Len() > depth {
		return fmt.Errorf("kahn: lfp %s longer than probe depth %d", lfp, depth)
	}
	p := solver.NewProblem(IdentityDescription(c, h), map[string][]value.Value{c: alphabet}, depth)
	res := solver.Enumerate(ctx, p)
	if len(res.Solutions) != 1 {
		return fmt.Errorf("kahn: Theorem 4 fails: %d smooth solutions of id ⟵ %s, want exactly 1 (keys %v)",
			len(res.Solutions), h.Name, res.SolutionKeys())
	}
	got := res.Solutions[0].Channel(c)
	if !got.Equal(lfp) {
		return fmt.Errorf("kahn: Theorem 4 fails: smooth solution %s ≠ lfp %s", got, lfp)
	}
	return nil
}

// MultiIdentityDescription builds the trace-level description id ⟵ h
// for a whole equation system: the left side is the tuple of channel
// functions and the right side applies each equation to the environment
// read off the trace.
func MultiIdentityDescription(eq Equations) desc.Description {
	fs := make([]fn.TraceFn, len(eq.Channels))
	gs := make([]fn.TraceFn, len(eq.Channels))
	support := trace.NewChanSet(eq.Channels...)
	for i, c := range eq.Channels {
		fs[i] = fn.ChanFn(c)
		rhs := eq.Rhs[i]
		gs[i] = fn.TraceFn{
			Name:    c + "=" + eq.Name,
			Out:     1,
			Support: support,
			Growth:  fn.OmegaPad - 1, // conservative bound for arbitrary equations
			Apply: func(t trace.Trace) fn.Tuple {
				env := make(Env, len(eq.Channels))
				for _, ch := range eq.Channels {
					env[ch] = t.Channel(ch)
				}
				return fn.Tuple{rhs(env)}
			},
		}
	}
	return desc.Description{
		Name: "id ⟵ " + eq.Name,
		F:    fn.Pair(fs...),
		G:    fn.Pair(gs...),
	}
}

// CheckTheorem4Multi verifies Theorem 4 for a multi-channel system whose
// least fixpoint is finite. Theorem 4's uniqueness is stated in the cpo
// the solution lives in — for a system of equations that is the cpo of
// channel environments, where event interleaving does not exist. In the
// trace cpo the smooth solutions of id ⟵ h are therefore unique only up
// to interleaving: the check requires at least one solution and that
// EVERY solution reads back as exactly the Kleene least-fixpoint
// environment. (For single-channel systems the two statements coincide;
// see CheckTheorem4Trace.)
func CheckTheorem4Multi(ctx context.Context, eq Equations, alphabet map[string][]value.Value, maxSteps, depth int) error {
	fix, err := eq.Solve(maxSteps, 0)
	if err != nil {
		return err
	}
	if !fix.Converged {
		return fmt.Errorf("kahn: %s did not converge in %d steps", eq.Name, maxSteps)
	}
	p := solver.NewProblem(MultiIdentityDescription(eq), alphabet, depth)
	res := solver.Enumerate(ctx, p)
	if len(res.Solutions) == 0 {
		return fmt.Errorf("kahn: Theorem 4 (multi) fails: no smooth solution of id ⟵ %s found", eq.Name)
	}
	for _, sol := range res.Solutions {
		for _, c := range eq.Channels {
			if got := sol.Channel(c); !got.Equal(fix.Env[c]) {
				return fmt.Errorf("kahn: Theorem 4 (multi) fails: solution %s has %s = %s ≠ lfp %s",
					sol, c, got, fix.Env[c])
			}
		}
	}
	return nil
}

// TwoCopyEquations is Figure 1's network: c = b, b = c. Its least
// fixpoint is the pair of empty sequences.
func TwoCopyEquations() Equations {
	return Equations{
		Name:     "fig1",
		Channels: []string{"b", "c"},
		Rhs: []func(Env) seq.Seq{
			func(env Env) seq.Seq { return env["c"] }, // b = c
			func(env Env) seq.Seq { return env["b"] }, // c = b
		},
	}
}

// SeededCopyEquations is Figure 1's variant: c = b, b = 0;c, whose least
// fixpoint is b = c = 0^ω. Solve with a length cap to see the growing
// approximations.
func SeededCopyEquations() Equations {
	prepend0 := fn.PrependFn(value.Int(0))
	return Equations{
		Name:     "fig1-seeded",
		Channels: []string{"b", "c"},
		Rhs: []func(Env) seq.Seq{
			func(env Env) seq.Seq { return prepend0.Apply(env["c"]) }, // b = 0;c
			func(env Env) seq.Seq { return env["b"] },                 // c = b
		},
	}
}

// TraceOfEnv linearises an environment into a trace, channel by channel
// in the given order; useful for feeding Kahn results to trace-level
// checkers where event interleaving is irrelevant (all functions factor
// through per-channel histories).
func TraceOfEnv(env Env, channels []string) trace.Trace {
	t := trace.Empty
	for _, c := range channels {
		for _, v := range env[c] {
			t = t.Append(trace.E(c, v))
		}
	}
	return t
}
