package kahn

import (
	"context"
	"testing"

	"smoothproc/internal/cpo"
	"smoothproc/internal/fn"
	"smoothproc/internal/seq"
	"smoothproc/internal/value"
)

func TestTwoCopyLfpIsEmpty(t *testing.T) {
	res, err := TwoCopyEquations().Solve(10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("expected convergence")
	}
	if !res.Env["b"].IsEmpty() || !res.Env["c"].IsEmpty() {
		t.Errorf("lfp = %v", res.Env)
	}
	if res.Steps != 1 {
		t.Errorf("steps = %d, want 1 (⊥ is already the fixpoint)", res.Steps)
	}
}

func TestSeededCopyGrowsToZeroOmega(t *testing.T) {
	for _, cap := range []int{1, 4, 16} {
		res, err := SeededCopyEquations().Solve(200, cap)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("cap %d: no convergence (length-capped iterations must stabilise)", cap)
		}
		want := seq.Repeat(seq.OfInts(0), cap)
		if !res.Env["b"].Equal(want) || !res.Env["c"].Equal(want) {
			t.Errorf("cap %d: env = %v", cap, res.Env)
		}
	}
	// Uncapped, the iteration must not converge (0^ω is infinite).
	res, err := SeededCopyEquations().Solve(50, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("0^ω iteration converged?!")
	}
}

func TestSolveDetectsNonMonotone(t *testing.T) {
	eq := Equations{
		Name:     "bad",
		Channels: []string{"x"},
		Rhs: []func(Env) seq.Seq{func(env Env) seq.Seq {
			if env["x"].Len() == 1 {
				return seq.OfInts(9) // contradicts the first iterate
			}
			return seq.OfInts(1)
		}},
	}
	if _, err := eq.Solve(10, 0); err == nil {
		t.Error("non-ascending iteration accepted")
	}
}

func TestDomainAndFn(t *testing.T) {
	eq := TwoCopyEquations()
	d := eq.Domain()
	bot := d.Bottom
	if !d.Leq(bot, Env{"b": seq.OfInts(1), "c": seq.Empty}) {
		t.Error("⊥ not least")
	}
	x := Env{"b": seq.OfInts(1), "c": seq.Empty}
	y := Env{"b": seq.OfInts(1, 2), "c": seq.OfInts(3)}
	if !d.Leq(x, y) || d.Leq(y, x) {
		t.Error("componentwise order wrong")
	}
	// The generic Section 6 machinery applies to Env directly.
	fix, err := d.Fix(eq.Fn(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if !fix.Converged {
		t.Error("fig1 Kleene iteration should converge")
	}
}

// theorem4Cases is a battery of continuous sequence functions whose least
// fixpoints are finite, exercising Theorem 4 in the trace cpo.
func theorem4Cases() []struct {
	name     string
	h        fn.SeqFn
	alphabet []value.Value
	depth    int
} {
	grow3 := fn.SeqFn{Name: "grow3", Apply: func(s seq.Seq) seq.Seq {
		return seq.OfInts(5, 6, 7).Take(s.Len() + 1)
	}}
	return []struct {
		name     string
		h        fn.SeqFn
		alphabet []value.Value
		depth    int
	}{
		{"identity", fn.Identity, value.Ints(0, 1), 3},
		{"const", fn.ConstFn(seq.OfInts(4, 2)), value.Ints(0, 2, 4), 4},
		{"grow-to-567", grow3, value.Ints(5, 6, 7, 9), 5},
		{"even-filter", fn.Even, value.Ints(0, 1, 2), 3},
	}
}

func TestTheorem4Battery(t *testing.T) {
	for _, tc := range theorem4Cases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if err := CheckTheorem4Trace(context.Background(), "x", tc.h, tc.alphabet, 20, tc.depth); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestTheorem4GenericOnEnvDomain(t *testing.T) {
	// The Section 6 generic form, on the Env cpo of fig1 equations.
	eq := TwoCopyEquations()
	d := eq.Domain()
	chains := []cpo.CountableChain[Env]{
		{d.Bottom}, // the lfp itself
		{d.Bottom, Env{"b": seq.OfInts(3), "c": seq.OfInts(3)}}, // non-smooth jump
	}
	if err := cpo.CheckTheorem4(d, eq.Fn(), chains, 10); err != nil {
		t.Error(err)
	}
}

func TestIdentityDescriptionShape(t *testing.T) {
	d := IdentityDescription("x", fn.Even)
	if d.F.Out != 1 || d.G.Out != 1 {
		t.Error("widths wrong")
	}
	if !d.F.Support.Has("x") || !d.G.Support.Has("x") {
		t.Error("support wrong")
	}
}

func TestTraceOfEnv(t *testing.T) {
	env := Env{"b": seq.OfInts(1, 2), "c": seq.OfInts(3)}
	tr := TraceOfEnv(env, []string{"b", "c"})
	if tr.Len() != 3 {
		t.Fatalf("trace = %s", tr)
	}
	if !tr.Channel("b").Equal(env["b"]) || !tr.Channel("c").Equal(env["c"]) {
		t.Errorf("projections wrong: %s", tr)
	}
}

func TestTheorem4MultiOnPipeline(t *testing.T) {
	// src = ⟨1 2⟩, dbl = 2×src: a two-channel deterministic system whose
	// lfp is finite. Theorem 4's uniqueness must hold over both channels.
	eq := Equations{
		Name:     "pipeline",
		Channels: []string{"src", "dbl"},
		Rhs: []func(Env) seq.Seq{
			func(env Env) seq.Seq { return seq.OfInts(1, 2) },
			func(env Env) seq.Seq { return fn.Double.Apply(env["src"]) },
		},
	}
	alphabet := map[string][]value.Value{
		"src": value.Ints(1, 2),
		"dbl": value.Ints(2, 4),
	}
	if err := CheckTheorem4Multi(context.Background(), eq, alphabet, 10, 4); err != nil {
		t.Error(err)
	}
}

func TestTheorem4MultiOnFig1(t *testing.T) {
	// Fig 1's copy loop: the lfp is the empty environment, and the only
	// smooth solution is ⊥ even with nonempty alphabets on offer.
	if err := CheckTheorem4Multi(context.Background(), TwoCopyEquations(), map[string][]value.Value{
		"b": value.Ints(0, 3),
		"c": value.Ints(0, 3),
	}, 10, 4); err != nil {
		t.Error(err)
	}
}

func TestTheorem4MultiRejectsDivergent(t *testing.T) {
	if err := CheckTheorem4Multi(context.Background(), SeededCopyEquations(), map[string][]value.Value{
		"b": value.Ints(0), "c": value.Ints(0),
	}, 10, 4); err == nil {
		t.Error("0^ω system accepted by the finite bridge")
	}
}

func TestCheckTheorem4TraceFailsOnDivergent(t *testing.T) {
	// b ⟵ T;b has no finite lfp: the bridge must refuse.
	prep := fn.PrependFn(value.Int(0))
	if err := CheckTheorem4Trace(context.Background(), "x", prep, value.Ints(0), 10, 5); err == nil {
		t.Error("divergent h accepted")
	}
}
