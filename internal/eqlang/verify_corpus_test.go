package eqlang

import (
	"os"
	"path/filepath"
	"testing"

	"smoothproc/internal/descvm"
)

// TestCorpusVerify is the corpus-wide static-verifier sweep: every
// lowerable side of every program the corpus (and every shipped spec)
// compiles — both per-description and through the combined Pair the
// solver actually searches, whose cross-component CSE is the harder
// shape — must pass descvm.Verify. This is the whole-corpus leg of the
// verifier's contract: a rejection here is a compiler bug, not a spec
// property.
func TestCorpusVerify(t *testing.T) {
	sources := Corpus()
	files, err := filepath.Glob(filepath.Join("..", "..", "specs", "*.eq"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no specs found: %v", err)
	}
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		sources = append(sources, string(src))
	}

	compiled, verified := 0, 0
	for _, src := range sources {
		p, err := CompileSource(src)
		if err != nil {
			continue // the corpus includes hostile inputs by design
		}
		compiled++
		for _, d := range p.System.Descs {
			if prog, ok := descvm.Compile(d.F); ok {
				verified++
				if err := descvm.Verify(prog); err != nil {
					t.Errorf("desc %s left side: %v\nspec:\n%s", d.Name, err, src)
				}
			}
			if prog, ok := descvm.Compile(d.G); ok {
				verified++
				if err := descvm.Verify(prog); err != nil {
					t.Errorf("desc %s right side: %v\nspec:\n%s", d.Name, err, src)
				}
			}
		}
		combined := p.System.Combined()
		if prog, ok := descvm.Compile(combined.F); ok {
			verified++
			if err := descvm.Verify(prog); err != nil {
				t.Errorf("combined left side: %v\nspec:\n%s", err, src)
			}
		}
		if prog, ok := descvm.Compile(combined.G); ok {
			verified++
			if err := descvm.Verify(prog); err != nil {
				t.Errorf("combined right side: %v\nspec:\n%s", err, src)
			}
		}
	}
	if compiled == 0 || verified == 0 {
		t.Fatalf("sweep was vacuous: %d compiled, %d programs verified", compiled, verified)
	}
	t.Logf("verified %d programs across %d compiled sources", verified, compiled)
}
