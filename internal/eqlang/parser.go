package eqlang

import (
	"strconv"

	"smoothproc/internal/value"
)

// AST node kinds. The tree is deliberately small: everything the paper's
// examples need and nothing more. Every node carries its 1-based source
// position (Line, Col) for error messages and specvet diagnostics.

// Expr is an expression node.
type Expr interface {
	exprNode()
	// Pos returns the node's source position.
	Pos() (line, col int)
}

// ChanExpr is a channel-history reference.
type ChanExpr struct {
	Name string
	Line int
	Col  int
}

// CallExpr applies a builtin to argument expressions.
type CallExpr struct {
	Fn   string
	Args []Expr
	Line int
	Col  int
}

// ConstExpr is a finite constant sequence literal.
type ConstExpr struct {
	Vals []value.Value
	Line int
	Col  int
}

// RepeatExpr is an ω-constant with the given period.
type RepeatExpr struct {
	Period []value.Value
	Line   int
	Col    int
}

// LinearExpr is a*inner + b applied pointwise.
type LinearExpr struct {
	A, B  int64
	Inner Expr
	Line  int
	Col   int
}

// ConcatExpr is lit ; rest (the paper's prefixing operator).
type ConcatExpr struct {
	Prefix []value.Value
	Rest   Expr
	Line   int
	Col    int
}

func (*ChanExpr) exprNode()   {}
func (*CallExpr) exprNode()   {}
func (*ConstExpr) exprNode()  {}
func (*RepeatExpr) exprNode() {}
func (*LinearExpr) exprNode() {}
func (*ConcatExpr) exprNode() {}

func (e *ChanExpr) Pos() (int, int)   { return e.Line, e.Col }
func (e *CallExpr) Pos() (int, int)   { return e.Line, e.Col }
func (e *ConstExpr) Pos() (int, int)  { return e.Line, e.Col }
func (e *RepeatExpr) Pos() (int, int) { return e.Line, e.Col }
func (e *LinearExpr) Pos() (int, int) { return e.Line, e.Col }
func (e *ConcatExpr) Pos() (int, int) { return e.Line, e.Col }

// DescStmt is one description: LHS <- RHS.
type DescStmt struct {
	Name     string
	Lhs, Rhs Expr
	Line     int
	Col      int
}

// AlphabetStmt declares a channel's candidate alphabet for the solver.
type AlphabetStmt struct {
	Channel string
	Values  []value.Value
	Line    int
	Col     int
}

// ExpectKind discriminates expect statements.
type ExpectKind int

// The expectation forms.
const (
	// ExpectCount: `expect solutions N` — the enumeration finds exactly
	// N smooth solutions within the file's depth.
	ExpectCount ExpectKind = iota + 1
	// ExpectSolution: `expect solution [(c,0)(c,2)]` — the given trace
	// is among the smooth solutions.
	ExpectSolution
	// ExpectNotSolution: `expect nonsolution [(c,0)]` — the given trace
	// is not a smooth solution.
	ExpectNotSolution
)

// ExpectStmt is one self-check attached to a file.
type ExpectStmt struct {
	Kind  ExpectKind
	N     int
	Trace []TraceEvent
	Line  int
	Col   int
}

// TraceEvent is a parsed (channel, message) literal.
type TraceEvent struct {
	Ch  string
	Val value.Value
}

// File is a parsed source file.
type File struct {
	Descs     []DescStmt
	Alphabets []AlphabetStmt
	Expects   []ExpectStmt
	Depth     int // 0 when unset
}

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token         { return p.toks[p.pos] }
func (p *parser) next() token         { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) at(k tokenKind) bool { return p.toks[p.pos].kind == k }

func (p *parser) expect(k tokenKind) (token, error) {
	t := p.next()
	if t.kind != k {
		return t, errt(t, "expected %s, found %s %q", k, t.kind, t.text)
	}
	return t, nil
}

func (p *parser) skipNewlines() {
	for p.at(tokNewline) {
		p.next()
	}
}

// Parse parses a source file.
func Parse(src string) (*File, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	f := &File{}
	descIdx := 0
	for {
		p.skipNewlines()
		if p.at(tokEOF) {
			return f, nil
		}
		kw, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		switch kw.text {
		case "desc":
			stmt, err := p.parseDesc(descIdx, kw)
			if err != nil {
				return nil, err
			}
			descIdx++
			f.Descs = append(f.Descs, stmt)
		case "alphabet":
			stmt, err := p.parseAlphabet()
			if err != nil {
				return nil, err
			}
			f.Alphabets = append(f.Alphabets, stmt)
		case "depth":
			n, err := p.expect(tokInt)
			if err != nil {
				return nil, err
			}
			d, err := strconv.Atoi(n.text)
			if err != nil || d < 0 {
				return nil, errt(n, "bad depth %q", n.text)
			}
			f.Depth = d
		case "expect":
			stmt, err := p.parseExpect(kw)
			if err != nil {
				return nil, err
			}
			f.Expects = append(f.Expects, stmt)
		default:
			return nil, errt(kw, "unknown statement %q (want desc, alphabet, or depth)", kw.text)
		}
		if !p.at(tokEOF) {
			if _, err := p.expect(tokNewline); err != nil {
				return nil, err
			}
		}
	}
}

func (p *parser) parseDesc(idx int, kw token) (DescStmt, error) {
	lhs, err := p.parseExpr()
	if err != nil {
		return DescStmt{}, err
	}
	if _, err := p.expect(tokArrow); err != nil {
		return DescStmt{}, err
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return DescStmt{}, err
	}
	return DescStmt{
		Name: "desc" + strconv.Itoa(idx+1),
		Lhs:  lhs,
		Rhs:  rhs,
		Line: kw.line,
		Col:  kw.col,
	}, nil
}

func (p *parser) parseAlphabet() (AlphabetStmt, error) {
	ch, err := p.expect(tokIdent)
	if err != nil {
		return AlphabetStmt{}, err
	}
	if _, err := p.expect(tokEquals); err != nil {
		return AlphabetStmt{}, err
	}
	stmt := AlphabetStmt{Channel: ch.text, Line: ch.line, Col: ch.col}
	switch {
	case p.at(tokIdent) && p.peek().text == "ints":
		p.next()
		lo, err := p.expect(tokInt)
		if err != nil {
			return stmt, err
		}
		if _, err := p.expect(tokDotDot); err != nil {
			return stmt, err
		}
		hi, err := p.expect(tokInt)
		if err != nil {
			return stmt, err
		}
		loN, _ := strconv.ParseInt(lo.text, 10, 64)
		hiN, _ := strconv.ParseInt(hi.text, 10, 64)
		if hiN < loN {
			return stmt, errt(hi, "empty range %d..%d", loN, hiN)
		}
		stmt.Values = value.IntRange(loN, hiN)
	case p.at(tokLBrace):
		p.next()
		for !p.at(tokRBrace) {
			v, err := p.parseValue()
			if err != nil {
				return stmt, err
			}
			stmt.Values = append(stmt.Values, v)
			if p.at(tokComma) {
				p.next()
			}
		}
		p.next() // consume }
		if len(stmt.Values) == 0 {
			return stmt, errt(ch, "empty alphabet for %s", ch.text)
		}
	default:
		t := p.peek()
		return stmt, errt(t, "expected 'ints lo .. hi' or '{v, ...}', found %s", t.kind)
	}
	return stmt, nil
}

// parseExpect parses the forms documented on ExpectKind.
func (p *parser) parseExpect(expectKw token) (ExpectStmt, error) {
	kw, err := p.expect(tokIdent)
	if err != nil {
		return ExpectStmt{}, err
	}
	switch kw.text {
	case "solutions":
		n, err := p.expect(tokInt)
		if err != nil {
			return ExpectStmt{}, err
		}
		count, err := strconv.Atoi(n.text)
		if err != nil || count < 0 {
			return ExpectStmt{}, errt(n, "bad count %q", n.text)
		}
		return ExpectStmt{Kind: ExpectCount, N: count, Line: expectKw.line, Col: expectKw.col}, nil
	case "solution", "nonsolution":
		events, err := p.parseTraceLiteral()
		if err != nil {
			return ExpectStmt{}, err
		}
		kind := ExpectSolution
		if kw.text == "nonsolution" {
			kind = ExpectNotSolution
		}
		return ExpectStmt{Kind: kind, Trace: events, Line: expectKw.line, Col: expectKw.col}, nil
	default:
		return ExpectStmt{}, errt(kw, "unknown expectation %q (want solutions, solution, or nonsolution)", kw.text)
	}
}

// parseTraceLiteral parses [(c,0)(c,2)...]: a bracketed list of
// (channel, message) pairs.
func (p *parser) parseTraceLiteral() ([]TraceEvent, error) {
	if _, err := p.expect(tokLBrack); err != nil {
		return nil, err
	}
	var events []TraceEvent
	for !p.at(tokRBrack) {
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		ch, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokComma); err != nil {
			return nil, err
		}
		v, err := p.parseValue()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		events = append(events, TraceEvent{Ch: ch.text, Val: v})
	}
	p.next() // consume ]
	return events, nil
}

// parseValue parses a message literal: INT, T, F, a symbol, or a pair
// (v, w).
func (p *parser) parseValue() (value.Value, error) {
	t := p.next()
	switch t.kind {
	case tokInt:
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return value.Value{}, errt(t, "bad integer %q", t.text)
		}
		return value.Int(n), nil
	case tokIdent:
		switch t.text {
		case "T":
			return value.T, nil
		case "F":
			return value.F, nil
		default:
			return value.Sym(t.text), nil
		}
	case tokLParen:
		a, err := p.parseValue()
		if err != nil {
			return value.Value{}, err
		}
		if _, err := p.expect(tokComma); err != nil {
			return value.Value{}, err
		}
		b, err := p.parseValue()
		if err != nil {
			return value.Value{}, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return value.Value{}, err
		}
		return value.Pair(a, b), nil
	default:
		return value.Value{}, errt(t, "expected a value, found %s %q", t.kind, t.text)
	}
}

// parseExpr parses concat level: factor (';' concat)?.
func (p *parser) parseExpr() (Expr, error) {
	left, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	if !p.at(tokSemi) {
		return left, nil
	}
	semi := p.next()
	rest, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	lit, ok := left.(*ConstExpr)
	if !ok {
		return nil, errt(semi, "left operand of ';' must be a constant literal (the paper's prefixing operator)")
	}
	return &ConcatExpr{Prefix: lit.Vals, Rest: rest, Line: semi.line, Col: semi.col}, nil
}

// parseFactor parses [INT '*'] primary ['+' INT | '-' INT].
func (p *parser) parseFactor() (Expr, error) {
	var a int64 = 1
	at := p.peek()
	scaled := false
	if p.at(tokInt) && p.toks[p.pos+1].kind == tokStar {
		t := p.next()
		p.next() // '*'
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, errt(t, "bad integer %q", t.text)
		}
		a = n
		scaled = true
	}
	inner, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	var b int64
	shifted := false
	if p.at(tokPlus) || p.at(tokMinus) {
		op := p.next()
		t, err := p.expect(tokInt)
		if err != nil {
			return nil, err
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, errt(t, "bad integer %q", t.text)
		}
		if op.kind == tokMinus {
			n = -n
		}
		b = n
		shifted = true
	}
	if !scaled && !shifted {
		return inner, nil
	}
	return &LinearExpr{A: a, B: b, Inner: inner, Line: at.line, Col: at.col}, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.next()
	switch t.kind {
	case tokIdent:
		if t.text == "repeat" {
			vals, err := p.parseBracketList()
			if err != nil {
				return nil, err
			}
			if len(vals) == 0 {
				return nil, errt(t, "repeat needs a nonempty period")
			}
			return &RepeatExpr{Period: vals, Line: t.line, Col: t.col}, nil
		}
		if p.at(tokLParen) {
			p.next()
			var args []Expr
			for {
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, arg)
				if p.at(tokComma) {
					p.next()
					continue
				}
				break
			}
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			return &CallExpr{Fn: t.text, Args: args, Line: t.line, Col: t.col}, nil
		}
		return &ChanExpr{Name: t.text, Line: t.line, Col: t.col}, nil
	case tokLBrack:
		p.pos-- // rewind: parseBracketList expects the '['
		vals, err := p.parseBracketList()
		if err != nil {
			return nil, err
		}
		return &ConstExpr{Vals: vals, Line: t.line, Col: t.col}, nil
	case tokLParen:
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, errt(t, "expected an expression, found %s %q", t.kind, t.text)
	}
}

func (p *parser) parseBracketList() ([]value.Value, error) {
	if _, err := p.expect(tokLBrack); err != nil {
		return nil, err
	}
	var vals []value.Value
	for !p.at(tokRBrack) {
		v, err := p.parseValue()
		if err != nil {
			return nil, err
		}
		vals = append(vals, v)
		if p.at(tokComma) {
			p.next()
		}
	}
	p.next() // consume ]
	return vals, nil
}
