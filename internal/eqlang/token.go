// Package eqlang implements a small surface language for writing
// descriptions the way the paper writes them, e.g.
//
//	# Figure 3, equations (1) and (2)
//	alphabet d = ints -2 .. 7
//	depth 6
//	desc even(d) <- [0] ; 2*d
//	desc odd(d)  <- 2*d + 1
//
// A file compiles to a desc.System plus solver branching data, ready for
// smooth-solution enumeration (cmd/smoothsolve drives it).
//
// Expression grammar (each expression denotes a continuous width-1
// function from traces to sequences):
//
//	expr    := concat
//	concat  := factor (';' concat)?          // left side must be a literal
//	factor  := [INT '*'] primary ['+' INT | '-' INT]
//	primary := IDENT                         // channel history
//	         | IDENT '(' expr {',' expr} ')' // builtin application
//	         | '[' value* ']'                // finite constant sequence
//	         | 'repeat' '[' value+ ']'       // ω-constant (finite approx.)
//	         | '(' expr ')'
//
// Builtins: even, odd, true, false, zero, one, untilF, countT, R, tag0,
// tag1, untag (unary); and, nsand, selT, selF (binary).
package eqlang

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind discriminates lexical tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota + 1
	tokNewline
	tokIdent  // identifiers and keywords, incl. channel names and T/F
	tokInt    // integer literal
	tokArrow  // <-
	tokSemi   // ;
	tokStar   // *
	tokPlus   // +
	tokMinus  // -
	tokLParen // (
	tokRParen // )
	tokLBrack // [
	tokRBrack // ]
	tokComma  // ,
	tokEquals // =
	tokDotDot // ..
	tokLBrace // {
	tokRBrace // }
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokNewline:
		return "newline"
	case tokIdent:
		return "identifier"
	case tokInt:
		return "integer"
	case tokArrow:
		return "'<-'"
	case tokSemi:
		return "';'"
	case tokStar:
		return "'*'"
	case tokPlus:
		return "'+'"
	case tokMinus:
		return "'-'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLBrack:
		return "'['"
	case tokRBrack:
		return "']'"
	case tokComma:
		return "','"
	case tokEquals:
		return "'='"
	case tokDotDot:
		return "'..'"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	default:
		return fmt.Sprintf("token(%d)", int(k))
	}
}

// token is one lexical unit with its source position (1-based line and
// column) for error messages and analyzer diagnostics.
type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

// lex splits the source into tokens. Comments run from '#' to end of
// line; newlines are significant (they terminate statements).
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	lineStart := 0 // byte offset of the current line's first character
	i := 0
	emit := func(k tokenKind, text string) {
		toks = append(toks, token{kind: k, text: text, line: line, col: i - lineStart + 1})
	}
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			emit(tokNewline, "\n")
			line++
			i++
			lineStart = i
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '<' && i+1 < len(src) && src[i+1] == '-':
			emit(tokArrow, "<-")
			i += 2
		case c == '.' && i+1 < len(src) && src[i+1] == '.':
			emit(tokDotDot, "..")
			i += 2
		case c == ';':
			emit(tokSemi, ";")
			i++
		case c == '*':
			emit(tokStar, "*")
			i++
		case c == '+':
			emit(tokPlus, "+")
			i++
		case c == '-':
			// A minus immediately followed by a digit lexes as part of
			// the integer literal; otherwise it is the operator.
			if i+1 < len(src) && src[i+1] >= '0' && src[i+1] <= '9' {
				j := i + 1
				for j < len(src) && src[j] >= '0' && src[j] <= '9' {
					j++
				}
				emit(tokInt, src[i:j])
				i = j
			} else {
				emit(tokMinus, "-")
				i++
			}
		case c == '(':
			emit(tokLParen, "(")
			i++
		case c == ')':
			emit(tokRParen, ")")
			i++
		case c == '[':
			emit(tokLBrack, "[")
			i++
		case c == ']':
			emit(tokRBrack, "]")
			i++
		case c == '{':
			emit(tokLBrace, "{")
			i++
		case c == '}':
			emit(tokRBrace, "}")
			i++
		case c == ',':
			emit(tokComma, ",")
			i++
		case c == '=':
			emit(tokEquals, "=")
			i++
		case c >= '0' && c <= '9':
			j := i
			for j < len(src) && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			emit(tokInt, src[i:j])
			i = j
		case isIdentStart(rune(c)):
			j := i
			for j < len(src) && isIdentPart(rune(src[j])) {
				j++
			}
			emit(tokIdent, src[i:j])
			i = j
		default:
			return nil, errfc(line, i-lineStart+1, "unexpected character %q", string(c))
		}
	}
	emit(tokEOF, "")
	return toks, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '\'' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// Error is a source-located compilation error. Line is 1-based; Col is
// the 1-based column of the offending token, or 0 when only the line is
// known (kept for errors synthesized without a token at hand).
type Error struct {
	Line int
	Col  int
	Msg  string
}

// Error implements error. The "line %d" prefix is stable; the column is
// appended when known, e.g. "eqlang: line 3:7: unknown function".
func (e *Error) Error() string {
	if e.Col > 0 {
		return fmt.Sprintf("eqlang: line %d:%d: %s", e.Line, e.Col, e.Msg)
	}
	return fmt.Sprintf("eqlang: line %d: %s", e.Line, e.Msg)
}

// errfc builds a positioned error.
func errfc(line, col int, format string, args ...interface{}) *Error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

// errt is errfc positioned at a token.
func errt(t token, format string, args ...interface{}) *Error {
	return &Error{Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}

// FormatSnippet returns the source line for diagnostics.
func FormatSnippet(src string, line int) string {
	lines := strings.Split(src, "\n")
	if line < 1 || line > len(lines) {
		return ""
	}
	return strings.TrimSpace(lines[line-1])
}
