package eqlang

import (
	"context"
	"reflect"
	"testing"

	"smoothproc/internal/solver"
)

// maxFuzzFanout skips fuzz-generated programs with huge alphabets: the
// differential property is about evaluation semantics, not about how
// long a 10⁶-wide expansion takes.
const maxFuzzFanout = 64

// solveBudgeted runs a short-budget enumeration of prog with or without
// bytecode evaluation. The budget keeps hostile fuzz inputs cheap while
// still exercising every opcode the program lowers to.
func solveBudgeted(prog *Program, compiled bool) solver.Result {
	p := prog.Problem()
	p.MaxDepth = min(p.MaxDepth, 3)
	p.MaxNodes = 200
	p.Compiled = compiled
	return solver.Enumerate(context.Background(), p)
}

// diffFingerprint is the observable a compiled and an interpreted search
// must agree on: every solution, every node, every deterministic
// counter.
func diffFingerprint(res solver.Result) (keys []string, nodes int, stats solver.SearchStats) {
	return res.SolutionKeys(), res.Nodes, res.Stats.Deterministic()
}

// FuzzCompiledVsInterpreted holds descvm bytecode evaluation equal to
// the interpreter over arbitrary eqlang programs: any input that
// compiles is solved twice under a short budget — Compiled off (the
// oracle) and on — and the results must be byte-identical. Run with
// `go test -fuzz=FuzzCompiledVsInterpreted` for continuous fuzzing; the
// shared corpus runs on every plain `go test` and in the CI
// differential job.
func FuzzCompiledVsInterpreted(f *testing.F) {
	for _, s := range Corpus() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := CompileSource(src)
		if err != nil {
			return
		}
		fanout := 0
		for _, vals := range prog.Alphabet {
			fanout += len(vals)
		}
		if fanout > maxFuzzFanout {
			t.Skip("alphabet too wide for the differential budget")
		}
		interp := solveBudgeted(prog, false)
		comp := solveBudgeted(prog, true)
		ik, in, is := diffFingerprint(interp)
		ck, cn, cs := diffFingerprint(comp)
		if !reflect.DeepEqual(ik, ck) {
			t.Errorf("solutions diverged:\ninterp %v\ncompiled %v", ik, ck)
		}
		if in != cn {
			t.Errorf("nodes diverged: interp %d, compiled %d", in, cn)
		}
		if !reflect.DeepEqual(is, cs) {
			t.Errorf("stats diverged:\ninterp %+v\ncompiled %+v", is, cs)
		}
	})
}

// TestCorpusLowerable pins the compiler's coverage claim: every corpus
// program the surface language accepts lowers fully to bytecode — no
// eqlang construct falls back to the interpreter. A regression here
// means a new combinator shipped without descvm support.
func TestCorpusLowerable(t *testing.T) {
	lowered := 0
	for _, src := range Corpus() {
		prog, err := CompileSource(src)
		if err != nil {
			continue
		}
		if _, _, ok := prog.Bytecode(); !ok {
			t.Errorf("corpus program not lowerable:\n%s", src)
		}
		lowered++
	}
	if lowered == 0 {
		t.Fatal("corpus contains no compilable programs")
	}
}
