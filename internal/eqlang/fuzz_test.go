package eqlang

import (
	"testing"
)

// FuzzCompileSource asserts that arbitrary input never panics the
// lexer/parser/compiler pipeline and that accepted programs satisfy the
// compiler's postconditions. Run with `go test -fuzz=FuzzCompileSource`
// for continuous fuzzing; the seed corpus (shared with the service
// tests via Corpus) runs on every plain `go test`.
func FuzzCompileSource(f *testing.F) {
	for _, s := range Corpus() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := CompileSource(src)
		if err != nil {
			return // rejection is always fine; panics are not
		}
		// Accepted programs must be well-formed.
		if len(prog.System.Descs) == 0 {
			t.Error("accepted program has no descriptions")
		}
		if prog.Depth <= 0 {
			t.Errorf("accepted program has depth %d", prog.Depth)
		}
		for _, d := range prog.System.Descs {
			if d.F.Out != d.G.Out {
				t.Errorf("description %s has mismatched widths", d.Name)
			}
			for _, ch := range d.F.Support.Names() {
				if _, ok := prog.Alphabet[ch]; !ok {
					t.Errorf("channel %s lacks an alphabet", ch)
				}
			}
		}
	})
}
