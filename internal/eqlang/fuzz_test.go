package eqlang

import (
	"strings"
	"testing"
)

// FuzzCompileSource asserts that arbitrary input never panics the
// lexer/parser/compiler pipeline and that accepted programs satisfy the
// compiler's postconditions. Run with `go test -fuzz=FuzzCompileSource`
// for continuous fuzzing; the seed corpus below runs on every plain
// `go test`.
func FuzzCompileSource(f *testing.F) {
	seeds := []string{
		"",
		"# just a comment\n",
		"alphabet d = ints -2 .. 7\ndesc even(d) <- [0] ; 2*d\n",
		"alphabet b = {1}\nalphabet c = ints 0 .. 2\ndesc even(c) <- [0, 2]\ndesc odd(c) <- b\ndesc b <- fBA(c)\n",
		"alphabet c = {T, F}\ndesc true(c) <- repeat [T]\n",
		"alphabet b = {(0,1), (1,2)}\ndesc zero(b) <- tag0(b)\n",
		"depth 4\nalphabet d = {0}\ndesc d <- and(d, d)\n",
		"desc even(d <- [0\n",
		"alphabet = {}\n",
		"desc d <- 2*d + 1 ; [0]\n",
		"desc 2*2*2 <- x\n",
		"alphabet d = ints 0 .. 0\ndesc d <- -3*d - 4\n",
		"\x00\xff",
		strings.Repeat("(", 100),
		strings.Repeat("desc d <- d\n", 50),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := CompileSource(src)
		if err != nil {
			return // rejection is always fine; panics are not
		}
		// Accepted programs must be well-formed.
		if len(prog.System.Descs) == 0 {
			t.Error("accepted program has no descriptions")
		}
		if prog.Depth <= 0 {
			t.Errorf("accepted program has depth %d", prog.Depth)
		}
		for _, d := range prog.System.Descs {
			if d.F.Out != d.G.Out {
				t.Errorf("description %s has mismatched widths", d.Name)
			}
			for _, ch := range d.F.Support.Names() {
				if _, ok := prog.Alphabet[ch]; !ok {
					t.Errorf("channel %s lacks an alphabet", ch)
				}
			}
		}
	})
}
