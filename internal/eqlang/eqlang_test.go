package eqlang

import (
	"context"
	"strings"
	"testing"

	"smoothproc/internal/seq"
	"smoothproc/internal/solver"
	"smoothproc/internal/trace"
	"smoothproc/internal/value"
)

const fig3Src = `
# Figure 3, equations (1) and (2)
alphabet d = ints -2 .. 7
depth 6
desc even(d) <- [0] ; 2*d
desc odd(d)  <- 2*d + 1
`

const fig4Src = `
# Brock-Ackermann (Figure 4), full system over channels b and c.
alphabet b = {1}
alphabet c = ints 0 .. 2
depth 4
desc even(c) <- [0, 2]
desc odd(c)  <- b
desc b <- fBA(c)
`

const dfmSrc = `
alphabet b = {0}
alphabet c = {1}
alphabet d = {0, 1}
depth 4
desc even(d) <- b
desc odd(d)  <- c
desc b <- [0]
desc c <- [1]
`

func TestLexBasics(t *testing.T) {
	toks, err := lex("desc even(d) <- [0] ; 2*d + 1 # comment\n")
	if err != nil {
		t.Fatal(err)
	}
	kinds := make([]tokenKind, len(toks))
	for i, tok := range toks {
		kinds[i] = tok.kind
	}
	want := []tokenKind{
		tokIdent, tokIdent, tokLParen, tokIdent, tokRParen, tokArrow,
		tokLBrack, tokInt, tokRBrack, tokSemi, tokInt, tokStar, tokIdent,
		tokPlus, tokInt, tokNewline, tokEOF,
	}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, kinds[i], want[i])
		}
	}
}

func TestLexNegativeIntVsMinus(t *testing.T) {
	toks, err := lex("ints -2 .. 7")
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].kind != tokInt || toks[1].text != "-2" {
		t.Errorf("negative literal lexed as %v %q", toks[1].kind, toks[1].text)
	}
	toks2, err := lex("d - x")
	if err != nil {
		t.Fatal(err)
	}
	if toks2[1].kind != tokMinus {
		t.Errorf("operator minus lexed as %v", toks2[1].kind)
	}
}

func TestLexRejectsGarbage(t *testing.T) {
	if _, err := lex("desc @"); err == nil {
		t.Error("garbage accepted")
	}
}

func TestParseFig3(t *testing.T) {
	f, err := Parse(fig3Src)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Descs) != 2 || len(f.Alphabets) != 1 || f.Depth != 6 {
		t.Fatalf("file = %+v", f)
	}
	if f.Alphabets[0].Channel != "d" || len(f.Alphabets[0].Values) != 10 {
		t.Errorf("alphabet = %+v", f.Alphabets[0])
	}
	// LHS of eq1 is even(d).
	call, ok := f.Descs[0].Lhs.(*CallExpr)
	if !ok || call.Fn != "even" {
		t.Errorf("lhs = %#v", f.Descs[0].Lhs)
	}
	// RHS of eq1 is [0] ; 2*d.
	cat, ok := f.Descs[0].Rhs.(*ConcatExpr)
	if !ok || len(cat.Prefix) != 1 {
		t.Fatalf("rhs = %#v", f.Descs[0].Rhs)
	}
	if _, ok := cat.Rest.(*LinearExpr); !ok {
		t.Errorf("rest = %#v", cat.Rest)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"unknown statement":  "frobnicate x\n",
		"missing arrow":      "desc even(d) [0]\n",
		"bad depth":          "depth x\n",
		"concat non-literal": "alphabet d = {0}\ndesc d <- d ; d\n",
		"empty range":        "alphabet d = ints 5 .. 2\n",
		"empty braces":       "alphabet d = {}\n",
		"bad alphabet":       "alphabet d = 5\n",
		"dangling paren":     "desc (d <- d\n",
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: accepted %q", name, src)
		}
	}
}

func TestParseValueForms(t *testing.T) {
	src := "alphabet b = {1, T, F, tick, (0, 5)}\ndesc b <- [T]\n"
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	vals := f.Alphabets[0].Values
	if len(vals) != 5 {
		t.Fatalf("values = %v", vals)
	}
	if !vals[4].Equal(value.Pair(value.Int(0), value.Int(5))) {
		t.Errorf("pair = %s", vals[4])
	}
}

func TestCompileFig3MatchesHandBuilt(t *testing.T) {
	p, err := CompileSource(fig3Src)
	if err != nil {
		t.Fatal(err)
	}
	d := p.System.Combined()
	// Probe with the Section 2.3 sequences: prefixes of x are smooth
	// tree nodes; z's first element is rejected.
	x := trace.Of(
		trace.E("d", value.Int(0)), trace.E("d", value.Int(0)), trace.E("d", value.Int(1)),
	)
	if !solver.IsTreeNode(d, x) {
		t.Error("x-prefix rejected by compiled description")
	}
	z := trace.Of(trace.E("d", value.Int(-1)))
	if solver.IsTreeNode(d, z) {
		t.Error("z-prefix accepted by compiled description")
	}
}

func TestCompileFig4UniqueSolution(t *testing.T) {
	p, err := CompileSource(fig4Src)
	if err != nil {
		t.Fatal(err)
	}
	res := solver.Enumerate(context.Background(), p.Problem())
	if len(res.Solutions) != 1 {
		t.Fatalf("solutions: %v", res.SolutionKeys())
	}
	if got := res.Solutions[0].Channel("c"); !got.Equal(seq.OfInts(0, 2, 1)) {
		t.Errorf("c = %s, want ⟨0 2 1⟩ (the Brock-Ackermann resolution)", got)
	}
}

func TestCompileDFM(t *testing.T) {
	p, err := CompileSource(dfmSrc)
	if err != nil {
		t.Fatal(err)
	}
	res := solver.Enumerate(context.Background(), p.Problem())
	if len(res.Solutions) == 0 {
		t.Fatal("no dfm solutions")
	}
	for _, s := range res.Solutions {
		if s.Channel("d").Len() != 2 {
			t.Errorf("incomplete merge %s", s)
		}
	}
}

func TestCompileBuiltins(t *testing.T) {
	src := `
alphabet b = {T, F}
alphabet c = {T}
alphabet d = {T, F}
depth 4
desc R(b) <- [T]
desc d <- and(b, c)
`
	p, err := CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	res := solver.Enumerate(context.Background(), p.Problem())
	// With no c input available beyond the alphabet... c is
	// unconstrained by any description here, so solutions include traces
	// supplying c and d. Just verify the Section 4.5 trace appears.
	want := trace.Of(trace.E("b", value.T), trace.E("c", value.T), trace.E("d", value.T))
	if !res.Contains(want) {
		t.Errorf("implication trace missing; got %v", res.SolutionKeys())
	}
}

func TestCompileRepeat(t *testing.T) {
	src := `
alphabet c = {T, F}
depth 4
desc true(c) <- repeat [T]
desc false(c) <- repeat [F]
`
	p, err := CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	res := solver.Enumerate(context.Background(), p.Problem())
	if len(res.Solutions) != 0 {
		t.Errorf("fair-random has finite solutions: %v", res.SolutionKeys())
	}
	if res.Nodes < 31 {
		t.Errorf("tree too small: %d nodes", res.Nodes)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := map[string]string{
		"unknown fn":   "alphabet d = {0}\ndesc bogus(d) <- d\n",
		"arity unary":  "alphabet d = {0}\ndesc even(d, d) <- d\n",
		"arity binary": "alphabet d = {0}\ndesc and(d) <- d\n",
		"no alphabet":  "desc even(d) <- d\n",
		"empty file":   "# nothing\n",
		"dup alphabet": "alphabet d = {0}\nalphabet d = {1}\ndesc d <- d\n",
		"repeat empty": "alphabet d = {0}\ndesc d <- repeat []\n",
	}
	for name, src := range cases {
		if _, err := CompileSource(src); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestErrorType(t *testing.T) {
	_, err := Parse("depth x\n")
	var e *Error
	if !strings.Contains(err.Error(), "line 1") {
		t.Errorf("error lacks line info: %v", err)
	}
	if !asError(err, &e) {
		t.Errorf("error is not *Error: %T", err)
	}
}

func asError(err error, target **Error) bool {
	e, ok := err.(*Error)
	if ok {
		*target = e
	}
	return ok
}

// TestErrorPositions pins the line:col carried by parse and compile
// errors — every diagnostic must locate its offending token.
func TestErrorPositions(t *testing.T) {
	cases := []struct {
		name      string
		src       string
		line, col int
	}{
		{"lex garbage", "desc d <- ?\n", 1, 11},
		{"parse bad token", "alphabet c = ints 0 .. 1\ndesc c <- <-\n", 2, 11},
		{"unknown statement", "alphabet c = ints 0 .. 1\nbogus c\n", 2, 1},
		{"unknown function", "alphabet c = ints 0 .. 1\ndesc c <- mystery(c)\n", 2, 11},
		{"bad arity", "alphabet c = ints 0 .. 1\ndesc c <- even(c, c)\n", 2, 11},
		{"missing alphabet", "alphabet c = ints 0 .. 1\ndesc c <- even(d)\n", 2, 1},
		{"duplicate alphabet", "alphabet c = ints 0 .. 1\nalphabet c = ints 0 .. 1\ndesc c <- c\n", 2, 10},
		{"empty repeat", "alphabet c = ints 0 .. 1\ndesc c <- repeat []\n", 2, 11},
		{"empty range", "alphabet c = ints 5 .. 2\ndesc c <- c\n", 1, 24},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := CompileSource(tc.src)
			if err == nil {
				t.Fatalf("CompileSource(%q) succeeded, want error", tc.src)
			}
			var e *Error
			if !asError(err, &e) {
				t.Fatalf("error is not *Error: %T (%v)", err, err)
			}
			if e.Line != tc.line || e.Col != tc.col {
				t.Errorf("position = %d:%d, want %d:%d (%v)", e.Line, e.Col, tc.line, tc.col, err)
			}
		})
	}
}

func TestFormatSnippet(t *testing.T) {
	src := "line one\nline two\n"
	if got := FormatSnippet(src, 2); got != "line two" {
		t.Errorf("snippet = %q", got)
	}
	if got := FormatSnippet(src, 99); got != "" {
		t.Errorf("out of range snippet = %q", got)
	}
}

func TestExpectStatements(t *testing.T) {
	src := fig4Src + "expect solutions 1\nexpect solution [(c,0)(c,2)(b,1)(c,1)]\nexpect nonsolution [(c,0)(c,1)(c,2)(b,1)]\n"
	p, err := CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Expects) != 3 {
		t.Fatalf("expects = %d", len(p.Expects))
	}
	res := solver.Enumerate(context.Background(), p.Problem())
	if err := p.CheckExpects(res); err != nil {
		t.Errorf("expectations failed: %v", err)
	}
	// A wrong count is reported with its line.
	bad, err := CompileSource(fig4Src + "expect solutions 7\n")
	if err != nil {
		t.Fatal(err)
	}
	if err := bad.CheckExpects(res); err == nil {
		t.Error("wrong count accepted")
	}
	// A wrong solution expectation.
	bad2, err := CompileSource(fig4Src + "expect solution [(c,1)]\n")
	if err != nil {
		t.Fatal(err)
	}
	if err := bad2.CheckExpects(res); err == nil {
		t.Error("missing solution accepted")
	}
	// A wrong nonsolution expectation.
	bad3, err := CompileSource(fig4Src + "expect nonsolution [(c,0)(c,2)(b,1)(c,1)]\n")
	if err != nil {
		t.Fatal(err)
	}
	if err := bad3.CheckExpects(res); err == nil {
		t.Error("present solution accepted as nonsolution")
	}
}

func TestExpectParseErrors(t *testing.T) {
	cases := map[string]string{
		"unknown kind": "alphabet d = {0}\ndesc d <- d\nexpect frobs 3\n",
		"bad count":    "alphabet d = {0}\ndesc d <- d\nexpect solutions x\n",
		"bad trace":    "alphabet d = {0}\ndesc d <- d\nexpect solution [(d 0)]\n",
		"unclosed":     "alphabet d = {0}\ndesc d <- d\nexpect solution [(d,0)\n",
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
