package eqlang

import (
	"fmt"
	"sync"

	"smoothproc/internal/desc"
	"smoothproc/internal/descvm"
	"smoothproc/internal/fn"
	"smoothproc/internal/seq"
	"smoothproc/internal/solver"
	"smoothproc/internal/trace"
	"smoothproc/internal/value"
)

// Program is a compiled eqlang file: the description system and the
// solver branching data.
type Program struct {
	System desc.System
	// Alphabet maps channels to their candidate messages.
	Alphabet map[string][]value.Value
	// Depth is the requested probe depth (default 6).
	Depth int
	// Expects are the file's self-checks, verified by CheckExpects.
	Expects []ExpectStmt

	problemOnce sync.Once
	problem     solver.Problem
}

// DefaultDepth is used when a file has no depth statement.
const DefaultDepth = 6

// unary builtins by surface name.
var unaryBuiltins = map[string]fn.SeqFn{
	"even":   fn.Even,
	"odd":    fn.Odd,
	"true":   fn.TrueBits,
	"false":  fn.FalseBits,
	"zero":   fn.ZeroTag,
	"one":    fn.OneTag,
	"untilF": fn.UntilF,
	"countT": fn.CountTs,
	"fBA":    fn.FBA,
	"R":      fn.RMap,
	"tag0":   fn.Tag0,
	"tag1":   fn.Tag1,
	"untag":  fn.Untag,
}

// binary builtins by surface name.
var binaryBuiltins = map[string]fn.BiSeqFn{
	"and":   fn.And,
	"nsand": fn.NonStrictAnd,
	"selT":  fn.SelectTrue,
	"selF":  fn.SelectFalse,
}

// Compile turns a parsed file into a Program.
func Compile(f *File) (*Program, error) {
	p := &Program{
		System:   desc.System{Name: "eqlang"},
		Alphabet: map[string][]value.Value{},
		Depth:    f.Depth,
		Expects:  append([]ExpectStmt(nil), f.Expects...),
	}
	if p.Depth == 0 {
		p.Depth = DefaultDepth
	}
	for _, a := range f.Alphabets {
		if _, dup := p.Alphabet[a.Channel]; dup {
			return nil, errfc(a.Line, a.Col, "duplicate alphabet for channel %s", a.Channel)
		}
		p.Alphabet[a.Channel] = a.Values
	}
	for _, d := range f.Descs {
		lhs, err := compileExpr(d.Lhs)
		if err != nil {
			return nil, err
		}
		rhs, err := compileExpr(d.Rhs)
		if err != nil {
			return nil, err
		}
		dd, err := desc.New(d.Name, lhs, rhs)
		if err != nil {
			return nil, errfc(d.Line, d.Col, "%v", err)
		}
		p.System.Descs = append(p.System.Descs, dd)
		// Every channel a description reads needs an alphabet before the
		// solver can branch on it; report at the offending desc.
		for _, side := range []fn.TraceFn{dd.F, dd.G} {
			for _, ch := range side.Support.Names() {
				if _, ok := p.Alphabet[ch]; !ok {
					return nil, errfc(d.Line, d.Col, "channel %s used in %s but has no alphabet statement", ch, d.Name)
				}
			}
		}
	}
	if len(p.System.Descs) == 0 {
		return nil, errfc(1, 1, "no descriptions in file")
	}
	return p, nil
}

// CompileSource parses and compiles in one step.
func CompileSource(src string) (*Program, error) {
	f, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Compile(f)
}

// Problem returns the solver problem for the program. The combined
// description is built once and shared by every call: callers receive a
// value copy they may adjust (Workers, Compiled, ...), while the
// function identity of the combined sides stays stable — which is what
// lets descvm cache the compiled bytecode per IR across repeated solves
// of one program (the service's steady state).
func (p *Program) Problem() solver.Problem {
	p.problemOnce.Do(func() {
		p.problem = solver.NewProblem(p.System.Combined(), p.Alphabet, p.Depth)
	})
	return p.problem
}

// Bytecode lowers the program's combined sides to descvm programs and
// returns their disassemblies. ok is false when a side cannot be
// lowered (an opaque combinator with no recorded IR) — the solver then
// interprets that side, so a false here is informative, not an error.
func (p *Program) Bytecode() (f, g string, ok bool) {
	d := p.Problem().D
	pf, okf := descvm.Compile(d.F)
	pg, okg := descvm.Compile(d.G)
	if okf {
		f = pf.Disasm()
	}
	if okg {
		g = pg.Disasm()
	}
	return f, g, okf && okg
}

// CheckExpects verifies the file's expect statements against an
// enumeration result, returning the first violated expectation.
func (p *Program) CheckExpects(res solver.Result) error {
	for _, e := range p.Expects {
		switch e.Kind {
		case ExpectCount:
			if len(res.Solutions) != e.N {
				return fmt.Errorf("eqlang: line %d: expected %d solutions, found %d", e.Line, e.N, len(res.Solutions))
			}
		case ExpectSolution, ExpectNotSolution:
			tr := traceOfLiteral(e.Trace)
			found := res.Contains(tr)
			if e.Kind == ExpectSolution && !found {
				return fmt.Errorf("eqlang: line %d: expected solution %s not found", e.Line, tr)
			}
			if e.Kind == ExpectNotSolution && found {
				return fmt.Errorf("eqlang: line %d: %s should not be a solution", e.Line, tr)
			}
		}
	}
	return nil
}

func traceOfLiteral(events []TraceEvent) trace.Trace {
	tr := trace.Empty
	for _, e := range events {
		tr = tr.Append(trace.E(e.Ch, e.Val))
	}
	return tr
}

func compileExpr(e Expr) (fn.TraceFn, error) {
	switch n := e.(type) {
	case *ChanExpr:
		return fn.ChanFn(n.Name), nil
	case *ConstExpr:
		return fn.ConstTraceFn(seq.Of(n.Vals...)), nil
	case *RepeatExpr:
		return fn.OmegaConstFn(fmt.Sprintf("repeat%s", seq.Of(n.Period...)), seq.Of(n.Period...)), nil
	case *LinearExpr:
		inner, err := compileExpr(n.Inner)
		if err != nil {
			return fn.TraceFn{}, err
		}
		return fn.ApplySeq(fn.MulAdd(n.A, n.B), inner), nil
	case *ConcatExpr:
		rest, err := compileExpr(n.Rest)
		if err != nil {
			return fn.TraceFn{}, err
		}
		return fn.ApplySeq(fn.PrependFn(n.Prefix...), rest), nil
	case *CallExpr:
		if sf, ok := unaryBuiltins[n.Fn]; ok {
			if len(n.Args) != 1 {
				return fn.TraceFn{}, errfc(n.Line, n.Col, "%s takes 1 argument, got %d", n.Fn, len(n.Args))
			}
			arg, err := compileExpr(n.Args[0])
			if err != nil {
				return fn.TraceFn{}, err
			}
			return fn.ApplySeq(sf, arg), nil
		}
		if bf, ok := binaryBuiltins[n.Fn]; ok {
			if len(n.Args) != 2 {
				return fn.TraceFn{}, errfc(n.Line, n.Col, "%s takes 2 arguments, got %d", n.Fn, len(n.Args))
			}
			a, err := compileExpr(n.Args[0])
			if err != nil {
				return fn.TraceFn{}, err
			}
			b, err := compileExpr(n.Args[1])
			if err != nil {
				return fn.TraceFn{}, err
			}
			return fn.ApplyBi(bf, a, b), nil
		}
		return fn.TraceFn{}, errfc(n.Line, n.Col, "unknown function %q", n.Fn)
	default:
		return fn.TraceFn{}, fmt.Errorf("eqlang: unhandled expression %T", e)
	}
}
