package eqlang

import (
	"fmt"
	"strings"
)

// Corpus is the seed corpus for the compiler pipeline: a mix of valid
// programs, near-miss syntax errors, semantic errors and hostile input.
// FuzzCompileSource seeds the fuzzer with it, the service tests replay
// it against POST /v1/specs, and specvet's TestVetCorpus replays it
// through the analyzer — any input here must either compile or produce
// a structured error, never a panic, on all three paths.
func Corpus() []string {
	base := []string{
		"",
		"# just a comment\n",
		"alphabet d = ints -2 .. 7\ndesc even(d) <- [0] ; 2*d\n",
		"alphabet b = {1}\nalphabet c = ints 0 .. 2\ndesc even(c) <- [0, 2]\ndesc odd(c) <- b\ndesc b <- fBA(c)\n",
		"alphabet c = {T, F}\ndesc true(c) <- repeat [T]\n",
		"alphabet b = {(0,1), (1,2)}\ndesc zero(b) <- tag0(b)\n",
		"depth 4\nalphabet d = {0}\ndesc d <- and(d, d)\n",
		"desc even(d <- [0\n",
		"alphabet = {}\n",
		"desc d <- 2*d + 1 ; [0]\n",
		"desc 2*2*2 <- x\n",
		"alphabet d = ints 0 .. 0\ndesc d <- -3*d - 4\n",
		"\x00\xff",
		strings.Repeat("(", 100),
		strings.Repeat("desc d <- d\n", 50),
	}
	base = append(base, generatedCorpus()...)
	return append(base, vetCorpus()...)
}

// generatedCorpus pins representative netgen-emitted shapes (the corpus
// generator in internal/netgen, which cannot be imported here without a
// cycle) so the fuzzer and the service replay tests exercise the exact
// idioms the generator produces: tagged merge nodes over pair alphabets,
// Brock–Ackermann feedback with expect statements, and deep linear
// pipelines. Kept in sync by eye with specs/generated/*.eq — these are
// seeds, not goldens, so drift is harmless.
func generatedCorpus() []string {
	return []string{
		// A netgen merge node: tag0/tag1 into a shared mailbox channel,
		// untag out — pair-valued alphabets plus zero/one filters.
		"alphabet l0 = {4}\nalphabet l1 = {5}\n" +
			"alphabet t0a = {(0,4)}\nalphabet t1a = {(1,5)}\n" +
			"alphabet ma = {(0,4), (1,5)}\nalphabet o = {4, 5}\n" +
			"depth 8\n" +
			"desc l0 <- [4]\ndesc l1 <- [5]\n" +
			"desc t0a <- tag0(l0)\ndesc t1a <- tag1(l1)\n" +
			"desc zero(ma) <- t0a\ndesc one(ma) <- t1a\n" +
			"desc o <- untag(ma)\n" +
			"expect solution [(l1,5)(t1a,(1,5))(ma,(1,5))(l0,4)(t0a,(0,4))(ma,(0,4))(o,5)(o,4)]\n",
		// A netgen anomaly instance: the Brock–Ackermann pair with both a
		// pinned solution and a pinned anomalous nonsolution trace.
		"alphabet c = {4, 12, 5}\nalphabet b = {5}\ndepth 4\n" +
			"desc even(c) <- [4, 12]\ndesc odd(c) <- b\ndesc b <- fBA(c)\n" +
			"expect nonsolution [(c,4)(c,5)(c,12)(b,5)]\n" +
			"expect solution [(c,4)(c,12)(b,5)(c,5)]\n",
		// A netgen pipeline: feeder then chained linear/copy stages.
		"alphabet s0 = {4}\nalphabet s1 = {9}\nalphabet s2 = {18}\nalphabet s3 = {18}\n" +
			"depth 4\n" +
			"desc s0 <- [4]\ndesc s1 <- 2*s0 + 1\ndesc s2 <- 2*s1 + 0\ndesc s3 <- s2\n" +
			"expect solution [(s0,4)(s1,9)(s2,18)(s3,18)]\n",
	}
}

// vetCorpus holds, for each specvet rule, one input that triggers it
// and one hostile variant that stresses the same code path. The rules
// support-mismatch and growth-bound guard the function library's
// declared contracts rather than spec text, so no honest-library source
// can trigger them; their entries stress the probe instead (multi-
// channel alphabets, ω-constants, nested combinators).
func vetCorpus() []string {
	return []string{
		// parse-error
		"desc d <- <-\n",
		"desc " + strings.Repeat("(", 500), // hostile: deep unclosed nesting

		// compile-error
		"alphabet c = ints 0 .. 1\ndesc c <- mystery(c)\n",
		"alphabet d = {0}\ndesc d <- " + strings.Repeat("nosuch(", 80) + "d" + strings.Repeat(")", 80) + "\n",

		// undefined-channel
		"alphabet c = ints 0 .. 1\ndesc c <- even(d)\n",
		strings.Repeat("desc qq <- and(zz, ww)\n", 60), // hostile: every ref undefined, repeated

		// unused-alphabet
		"alphabet c = ints 0 .. 1\nalphabet junk = ints 0 .. 9\ndesc c <- c\n",
		manyUnusedAlphabets(40), // hostile: fan-out warning flood

		// duplicate-desc
		"alphabet c = ints 0 .. 1\ndesc c <- [0]\ndesc c <- [1]\n",
		"alphabet d = {0}\n" + strings.Repeat("desc d <- d\n", 40), // hostile: 39 duplicates

		// divergent-desc
		"alphabet d = ints 0 .. 3\ndesc d <- 2*d + 1\n",
		"alphabet d = ints 0 .. 1\ndesc d <- 999999937*d - 123456789\n", // hostile: huge coefficients

		// thm1-independent
		"alphabet a = ints 0 .. 1\nalphabet e = ints 0 .. 1\ndesc e <- a\n",
		manyIndependentDescs(6), // hostile: many pairwise-disjoint supports

		// eliminable
		"alphabet b = {0}\nalphabet c = {0}\ndesc b <- [0]\ndesc c <- b\n",
		chainDescs(10), // hostile: a 10-deep elimination chain

		// not-eliminable
		"alphabet b = {0}\nalphabet c = {0}\ndesc b <- [0]\ndesc even(b) <- c\n",
		"alphabet d = ints -50 .. 50\nalphabet c = {0}\ndesc d <- and(d, d)\ndesc c <- and(c, c)\n", // hostile: wide alphabet, self-reads

		// support-mismatch / growth-bound probe stress (see doc comment)
		"alphabet b = {1}\nalphabet c = ints 0 .. 2\nalphabet d = ints 0 .. 2\ndesc even(c) <- [0] ; 2*d\ndesc odd(d) <- fBA(c)\ndesc b <- repeat [1]\n",
		"alphabet c = {0, 1}\ndesc true(c) <- repeat [0, 1, 0, 1, 0, 1, 0, 1]\ndesc even(c) <- 3*c - 2 ; [0]\n",
	}
}

// manyUnusedAlphabets builds a spec with n alphabets nothing reads plus
// one used channel, so vetting emits n unused-alphabet warnings.
func manyUnusedAlphabets(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "alphabet u%d = {%d}\n", i, i)
	}
	b.WriteString("alphabet c = {0}\ndesc c <- c\n")
	return b.String()
}

// manyIndependentDescs builds n Kahn-buffer copies e_i <- a_i on
// disjoint channel pairs: every description and the combined system are
// Theorem-1 independent.
func manyIndependentDescs(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "alphabet a%d = {0}\nalphabet e%d = {0}\n", i, i)
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "desc e%d <- a%d\n", i, i)
	}
	return b.String()
}

// chainDescs builds c1 <- c0, c2 <- c1, …: each defining description is
// eliminable in turn (Theorems 5/6).
func chainDescs(n int) string {
	var b strings.Builder
	for i := 0; i <= n; i++ {
		fmt.Fprintf(&b, "alphabet c%d = {0}\n", i)
	}
	b.WriteString("desc c0 <- [0]\n")
	for i := 1; i <= n; i++ {
		fmt.Fprintf(&b, "desc c%d <- c%d\n", i, i-1)
	}
	return b.String()
}
