package eqlang

import "strings"

// Corpus is the seed corpus for the compiler pipeline: a mix of valid
// programs, near-miss syntax errors, semantic errors and hostile input.
// FuzzCompileSource seeds the fuzzer with it, and the service tests
// replay it against POST /v1/specs — any input here must either compile
// or produce a structured error, never a panic, on both paths.
func Corpus() []string {
	return []string{
		"",
		"# just a comment\n",
		"alphabet d = ints -2 .. 7\ndesc even(d) <- [0] ; 2*d\n",
		"alphabet b = {1}\nalphabet c = ints 0 .. 2\ndesc even(c) <- [0, 2]\ndesc odd(c) <- b\ndesc b <- fBA(c)\n",
		"alphabet c = {T, F}\ndesc true(c) <- repeat [T]\n",
		"alphabet b = {(0,1), (1,2)}\ndesc zero(b) <- tag0(b)\n",
		"depth 4\nalphabet d = {0}\ndesc d <- and(d, d)\n",
		"desc even(d <- [0\n",
		"alphabet = {}\n",
		"desc d <- 2*d + 1 ; [0]\n",
		"desc 2*2*2 <- x\n",
		"alphabet d = ints 0 .. 0\ndesc d <- -3*d - 4\n",
		"\x00\xff",
		strings.Repeat("(", 100),
		strings.Repeat("desc d <- d\n", 50),
	}
}
