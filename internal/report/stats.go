package report

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Stats is an ordered, sectioned list of named integer readings — the
// stable rendering surface for the instrumentation in internal/metrics,
// internal/solver and internal/netsim. Order is significant and
// preserved by both renderings, so output is diffable and goldenable.
type Stats struct {
	Sections []Section `json:"sections"`
}

// Section groups related readings under a name.
type Section struct {
	Name  string `json:"name"`
	Items []Item `json:"items"`
}

// Item is one reading. Unit is "" for plain counts, "ns" for wall-clock
// nanoseconds, and "sched" for counters that depend on goroutine
// scheduling (work steals, idle parks, in-flight memo waits); "ns" and
// "sched" items are nondeterministic and Deterministic drops them.
type Item struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
	Unit  string `json:"unit,omitempty"`
}

// Add appends a reading to the section.
func (s *Section) Add(name string, value int64, unit string) {
	s.Items = append(s.Items, Item{Name: name, Value: value, Unit: unit})
}

// AddInt appends a plain count.
func (s *Section) AddInt(name string, value int) { s.Add(name, int64(value), "") }

// Deterministic returns a copy with timing ("ns") and scheduling
// ("sched") items and then-empty sections removed — the view compared
// against committed baselines, where only run-independent counters
// belong.
func (s Stats) Deterministic() Stats {
	var out Stats
	for _, sec := range s.Sections {
		kept := Section{Name: sec.Name}
		for _, it := range sec.Items {
			if it.Unit != "ns" && it.Unit != "sched" {
				kept.Items = append(kept.Items, it)
			}
		}
		if len(kept.Items) > 0 {
			out.Sections = append(out.Sections, kept)
		}
	}
	return out
}

// Get returns the named item's value, searching all sections.
func (s Stats) Get(section, name string) (int64, bool) {
	for _, sec := range s.Sections {
		if sec.Name != section {
			continue
		}
		for _, it := range sec.Items {
			if it.Name == name {
				return it.Value, true
			}
		}
	}
	return 0, false
}

// Text renders the stats as aligned plain text, one section header per
// group, stable across runs for equal inputs.
func (s Stats) Text() string {
	var b strings.Builder
	nameW := 0
	for _, sec := range s.Sections {
		for _, it := range sec.Items {
			if len(it.Name) > nameW {
				nameW = len(it.Name)
			}
		}
	}
	for i, sec := range s.Sections {
		if i > 0 {
			b.WriteString("\n")
		}
		fmt.Fprintf(&b, "[%s]\n", sec.Name)
		for _, it := range sec.Items {
			if it.Unit != "" {
				fmt.Fprintf(&b, "  %-*s  %d %s\n", nameW, it.Name, it.Value, it.Unit)
			} else {
				fmt.Fprintf(&b, "  %-*s  %d\n", nameW, it.Name, it.Value)
			}
		}
	}
	return b.String()
}

// JSON renders the stats as indented JSON with section and item order
// preserved.
func (s Stats) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
