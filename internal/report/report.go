// Package report formats the experiment tables printed by cmd/repro and
// recorded in EXPERIMENTS.md: one row per reproduced figure, worked
// example or theorem instance, pairing the paper's claim with the
// measured outcome.
package report

import (
	"fmt"
	"strings"
)

// Row is one experiment outcome.
type Row struct {
	// ID is the experiment id from DESIGN.md (E1..E21).
	ID string
	// Artefact names the paper artefact (figure / section / theorem).
	Artefact string
	// Claim is the paper's claim being reproduced.
	Claim string
	// Measured is what the reproduction observed.
	Measured string
	// Pass reports whether the observation matches the claim.
	Pass bool
}

// Table accumulates experiment rows.
type Table struct {
	rows []Row
}

// Add appends a row.
func (t *Table) Add(r Row) { t.rows = append(t.rows, r) }

// AddResult appends a row whose Measured text doubles as the pass/fail
// explanation: err == nil passes with okText, otherwise the row fails
// with the error text.
func (t *Table) AddResult(id, artefact, claim, okText string, err error) {
	r := Row{ID: id, Artefact: artefact, Claim: claim, Measured: okText, Pass: err == nil}
	if err != nil {
		r.Measured = err.Error()
	}
	t.Add(r)
}

// Rows returns the accumulated rows.
func (t *Table) Rows() []Row { return append([]Row(nil), t.rows...) }

// Failed returns the failing rows.
func (t *Table) Failed() []Row {
	var out []Row
	for _, r := range t.rows {
		if !r.Pass {
			out = append(out, r)
		}
	}
	return out
}

// Format renders an aligned plain-text table.
func (t *Table) Format() string {
	var b strings.Builder
	idW, artW := len("id"), len("artefact")
	for _, r := range t.rows {
		idW = max(idW, len(r.ID))
		artW = max(artW, len(r.Artefact))
	}
	fmt.Fprintf(&b, "%-*s  %-*s  %-4s  %s\n", idW, "id", artW, "artefact", "ok", "claim → measured")
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", idW+artW+40))
	for _, r := range t.rows {
		status := "PASS"
		if !r.Pass {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "%-*s  %-*s  %-4s  %s\n", idW, r.ID, artW, r.Artefact, status, r.Claim)
		fmt.Fprintf(&b, "%-*s  %-*s        → %s\n", idW, "", artW, "", r.Measured)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavoured markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	b.WriteString("| id | artefact | paper claim | measured | ok |\n")
	b.WriteString("|---|---|---|---|---|\n")
	for _, r := range t.rows {
		status := "✅"
		if !r.Pass {
			status = "❌"
		}
		fmt.Fprintf(&b, "| %s | %s | %s | %s | %s |\n",
			mdEscape(r.ID), mdEscape(r.Artefact), mdEscape(r.Claim), mdEscape(r.Measured), status)
	}
	return b.String()
}

func mdEscape(s string) string {
	return strings.ReplaceAll(strings.ReplaceAll(s, "|", "\\|"), "\n", " ")
}
