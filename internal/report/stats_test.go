package report

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// fixtureStats exercises every rendering feature: multiple sections,
// plain counts, a unit-bearing (timing) item, and names needing
// alignment.
func fixtureStats() Stats {
	search := Section{Name: "search"}
	search.AddInt("nodes visited", 31)
	search.AddInt("smooth solutions", 2)
	pruning := Section{Name: "pruning"}
	pruning.AddInt("edges checked", 120)
	pruning.AddInt("subtrees pruned", 90)
	timing := Section{Name: "timing"}
	timing.Add("search elapsed", 123456, "ns")
	return Stats{Sections: []Section{search, pruning, timing}}
}

// golden compares got against the named testdata file; set
// SMOOTHPROC_UPDATE_GOLDEN=1 to regenerate.
func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if os.Getenv("SMOOTHPROC_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with SMOOTHPROC_UPDATE_GOLDEN=1 to create)", err)
	}
	if string(got) != string(want) {
		t.Errorf("%s drifted:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestStatsTextGolden(t *testing.T) {
	golden(t, "stats.txt.golden", []byte(fixtureStats().Text()))
}

func TestStatsJSONGolden(t *testing.T) {
	js, err := fixtureStats().JSON()
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "stats.json.golden", js)
}

func TestStatsJSONRoundTrips(t *testing.T) {
	js, err := fixtureStats().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Stats
	if err := json.Unmarshal(js, &back); err != nil {
		t.Fatal(err)
	}
	if got, ok := back.Get("pruning", "subtrees pruned"); !ok || got != 90 {
		t.Errorf("round-trip lost data: %d ok=%v", got, ok)
	}
}

func TestDeterministicDropsTiming(t *testing.T) {
	det := fixtureStats().Deterministic()
	if len(det.Sections) != 2 {
		t.Fatalf("sections = %d, want 2 (timing dropped whole)", len(det.Sections))
	}
	if _, ok := det.Get("timing", "search elapsed"); ok {
		t.Error("timing item survived")
	}
	if v, ok := det.Get("search", "nodes visited"); !ok || v != 31 {
		t.Error("deterministic view lost counters")
	}
}

func TestGetMissing(t *testing.T) {
	if _, ok := fixtureStats().Get("search", "no such"); ok {
		t.Error("Get invented an item")
	}
	if _, ok := fixtureStats().Get("no such", "nodes visited"); ok {
		t.Error("Get crossed sections")
	}
}
