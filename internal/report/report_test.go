package report

import (
	"errors"
	"strings"
	"testing"
)

func sampleTable() *Table {
	var t Table
	t.Add(Row{ID: "E1", Artefact: "Fig 1", Claim: "lfp is ε", Measured: "ε", Pass: true})
	t.AddResult("E2", "Fig 2", "dfm conformance", "both directions hold", nil)
	t.AddResult("E3", "Fig 3", "z not smooth", "", errors.New("z accepted"))
	return &t
}

func TestRowsAndFailed(t *testing.T) {
	tab := sampleTable()
	if len(tab.Rows()) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows()))
	}
	failed := tab.Failed()
	if len(failed) != 1 || failed[0].ID != "E3" {
		t.Errorf("failed = %+v", failed)
	}
	// Rows returns a copy.
	tab.Rows()[0].ID = "X"
	if tab.Rows()[0].ID != "E1" {
		t.Error("Rows leaked internal state")
	}
}

func TestAddResultErrorBecomesMeasured(t *testing.T) {
	tab := sampleTable()
	last := tab.Rows()[2]
	if last.Pass || last.Measured != "z accepted" {
		t.Errorf("AddResult error handling: %+v", last)
	}
}

func TestFormat(t *testing.T) {
	out := sampleTable().Format()
	for _, want := range []string{"E1", "PASS", "FAIL", "Fig 3", "→ both directions hold"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q in:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines < 6 {
		t.Errorf("Format too short: %d lines", lines)
	}
}

func TestMarkdown(t *testing.T) {
	out := sampleTable().Markdown()
	for _, want := range []string{"| id |", "| E1 |", "✅", "❌"} {
		if !strings.Contains(out, want) {
			t.Errorf("Markdown missing %q in:\n%s", want, out)
		}
	}
}

func TestMarkdownEscapesPipesAndNewlines(t *testing.T) {
	var tab Table
	tab.Add(Row{ID: "E9", Artefact: "a|b", Claim: "line1\nline2", Measured: "x", Pass: true})
	out := tab.Markdown()
	if strings.Contains(out, "a|b |") && !strings.Contains(out, `a\|b`) {
		t.Errorf("pipe not escaped:\n%s", out)
	}
	if strings.Contains(out, "line1\nline2") {
		t.Errorf("newline not flattened:\n%s", out)
	}
}
