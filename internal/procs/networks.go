package procs

import (
	"smoothproc/internal/desc"
	"smoothproc/internal/fn"
	"smoothproc/internal/netsim"
	"smoothproc/internal/seq"
	"smoothproc/internal/trace"
	"smoothproc/internal/value"
)

// Fig1Network is the two-copy loop of Figure 1 as an operational network.
// Its only quiescent trace is ⊥ — the least fixpoint of c = b, b = c.
func Fig1Network() netsim.Spec {
	return netsim.Spec{Name: "fig1", Procs: []netsim.Proc{
		Copy("copy1", "b", "c").Proc,
		Copy("copy2", "c", "b").Proc,
	}}
}

// Fig1SeededNetwork is Figure 1's variant where the second process first
// sends a 0: its behaviour is the growing approximations of b = c = 0^ω.
func Fig1SeededNetwork() netsim.Spec {
	return netsim.Spec{Name: "fig1-seeded", Procs: []netsim.Proc{
		Copy("copy1", "b", "c").Proc,
		SeededCopy("copy2", "c", "b").Proc,
	}}
}

// Fig3Network is the three-process network of Figure 3: P (b = 0; 2×d),
// Q (c = 2×d+1) and dfm (even(d) = b, odd(d) = c).
func Fig3Network() NetworkEntry {
	p := FigP("P", "d", "b")
	q := FigQ("Q", "d", "c")
	m := DFM("dfm", "b", "c", "d")
	return NetworkEntry{
		Spec: netsim.Spec{Name: "fig3", Procs: []netsim.Proc{p.Proc, q.Proc, m.Proc}},
		Net: desc.Network{
			Name:       "fig3",
			Components: []desc.Component{p.Comp, q.Comp, m.Comp},
		},
	}
}

// Fig3System is the description system of Section 2.3 before variable
// elimination: b ⟵ 0; 2×d, c ⟵ 2×d+1, even(d) ⟵ b, odd(d) ⟵ c.
func Fig3System() desc.System {
	prepend0Double := fn.OnChan(fn.ComposeSeq(fn.PrependFn(value.Int(0)), fn.Double), "d")
	return desc.System{
		Name: "fig3",
		Descs: []desc.Description{
			desc.MustNew("P", fn.ChanFn("b"), prepend0Double),
			desc.MustNew("Q", fn.ChanFn("c"), fn.OnChan(fn.DoublePlus1, "d")),
			desc.MustNew("dfm.even", fn.OnChan(fn.Even, "d"), fn.ChanFn("b")),
			desc.MustNew("dfm.odd", fn.OnChan(fn.Odd, "d"), fn.ChanFn("c")),
		},
	}
}

// Fig3Equations is the eliminated description of Section 2.3, equations
// (1) and (2): even(d) ⟵ 0; 2×d, odd(d) ⟵ 2×d+1.
func Fig3Equations() desc.Description {
	prepend0Double := fn.OnChan(fn.ComposeSeq(fn.PrependFn(value.Int(0)), fn.Double), "d")
	return desc.Combine("fig3-eliminated",
		desc.MustNew("eq1", fn.OnChan(fn.Even, "d"), prepend0Double),
		desc.MustNew("eq2", fn.OnChan(fn.Odd, "d"), fn.OnChan(fn.DoublePlus1, "d")),
	)
}

// Fig3X is the Section 2.3 solution x: the concatenation of the blocks
// B_i = 0, 1, ..., 2^i - 1 on channel d. It is a smooth solution.
func Fig3X() trace.Gen {
	return trace.BlockGen("x", func(i int) trace.Trace {
		return intBlock("d", 0, 1<<uint(i)-1, false)
	})
}

// Fig3Y is the solution y: the concatenation of the reversed blocks
// rev(B_i). Also a smooth solution — a different computation of the
// network.
func Fig3Y() trace.Gen {
	return trace.BlockGen("y", func(i int) trace.Trace {
		return intBlock("d", 0, 1<<uint(i)-1, true)
	})
}

// Fig3Z is the sequence z: the concatenation of the blocks C_i with
// C_0 = ⟨-1⟩, C_1 = ⟨0 -2⟩ and C_{i+1} obtained by replacing each m of
// C_i by 2m, 2m+1. It satisfies the equations but is NOT smooth — the
// network can never output -1 (its first element would have to cause
// itself).
func Fig3Z() trace.Gen {
	memo := [][]int64{{-1}, {0, -2}}
	block := func(i int) []int64 {
		for len(memo) <= i {
			prev := memo[len(memo)-1]
			next := make([]int64, 0, 2*len(prev))
			for _, m := range prev {
				next = append(next, 2*m, 2*m+1)
			}
			memo = append(memo, next)
		}
		return memo[i]
	}
	return trace.BlockGen("z", func(i int) trace.Trace {
		out := trace.Empty
		for _, m := range block(i) {
			out = out.Append(trace.E("d", value.Int(m)))
		}
		return out
	})
}

func intBlock(ch string, lo, hi int64, reversed bool) trace.Trace {
	out := trace.Empty
	if reversed {
		for n := hi; n >= lo; n-- {
			out = out.Append(trace.E(ch, value.Int(n)))
		}
	} else {
		for n := lo; n <= hi; n++ {
			out = out.Append(trace.E(ch, value.Int(n)))
		}
	}
	return out
}

// Fig4Network is the Brock-Ackermann network of Figure 4: process A
// (fair merge with internal 0 2) feeding process B (outputs first+1 after
// two inputs) in a loop.
func Fig4Network() NetworkEntry {
	a := BrockAckermannA("A", "b", "c")
	b := BrockAckermannB("B", "c", "b")
	return NetworkEntry{
		Spec: netsim.Spec{Name: "fig4", Procs: []netsim.Proc{a.Proc, b.Proc}},
		Net: desc.Network{
			Name:       "fig4",
			Components: []desc.Component{a.Comp, b.Comp},
		},
	}
}

// Fig4System is the description system of Section 2.4 before
// elimination: even(c) ⟵ "0 2", odd(c) ⟵ b, b ⟵ f(c).
func Fig4System() desc.System {
	return desc.System{
		Name: "fig4",
		Descs: []desc.Description{
			desc.MustNew("A.even", fn.OnChan(fn.Even, "c"), fn.ConstTraceFn(seq.OfInts(0, 2))),
			desc.MustNew("A.odd", fn.OnChan(fn.Odd, "c"), fn.ChanFn("b")),
			desc.MustNew("B", fn.ChanFn("b"), fn.OnChan(FBA, "c")),
		},
	}
}

// Fig4Equations is the eliminated description of Section 2.4:
// even(c) ⟵ "0 2", odd(c) ⟵ f(c). Its solutions in c are exactly
// 0 1 2 and 0 2 1; only 0 2 1 is smooth.
func Fig4Equations() desc.Description {
	return desc.Combine("fig4-eliminated",
		desc.MustNew("eq1", fn.OnChan(fn.Even, "c"), fn.ConstTraceFn(seq.OfInts(0, 2))),
		desc.MustNew("eq2", fn.OnChan(fn.Odd, "c"), fn.OnChan(FBA, "c")),
	)
}

// Fig7Network is the fair-merge implementation of Figure 7: taggers A
// and B, discriminated merge D and untagger C, merging inputs c and d
// onto e via internal channels c′, d′ and b.
func Fig7Network() NetworkEntry {
	a := Tagger("A", "c", "c'", 0)
	b := Tagger("B", "d", "d'", 1)
	dd := TaggedMergeD("D", "c'", "d'", "b")
	cc := Untagger("C", "b", "e")
	return NetworkEntry{
		Spec: netsim.Spec{Name: "fig7", Procs: []netsim.Proc{a.Proc, b.Proc, dd.Proc, cc.Proc}},
		Net: desc.Network{
			Name:       "fig7",
			Components: []desc.Component{a.Comp, b.Comp, dd.Comp, cc.Comp},
		},
	}
}
