// Package procs is the catalogue of every process appearing in the paper,
// each in two forms: an operational implementation for the netsim runtime
// and a description (pair of continuous functions) for the denotational
// machinery. The conformance harness (package check) verifies the two
// agree — every run trace is smooth, every smooth solution is realisable.
package procs

import (
	"smoothproc/internal/desc"
	"smoothproc/internal/netsim"
	"smoothproc/internal/trace"
)

// Entry bundles the two views of one process.
type Entry struct {
	// Proc is the operational implementation.
	Proc netsim.Proc
	// Comp carries the description and the incident channel set.
	Comp desc.Component
	// Aux lists auxiliary channels (Section 8.2): channels the
	// description mentions but the operational process does not
	// communicate on. Smooth solutions are compared with run traces
	// after projecting the auxiliaries away.
	Aux []string
}

// Visible returns the entry's non-auxiliary incident channels.
func (e Entry) Visible() trace.ChanSet {
	return e.Comp.Incident.Without(e.Aux...)
}

// NetworkEntry bundles the two views of one network: the operational spec
// and the denotational network of components (Theorem 2's input).
type NetworkEntry struct {
	Spec netsim.Spec
	Net  desc.Network
}

// Description composes the network description per Theorem 2.
func (n NetworkEntry) Description() (desc.Description, error) {
	return desc.Compose(n.Net)
}
