package procs_test

import (
	"context"
	"testing"

	"smoothproc/internal/check"
	"smoothproc/internal/desc"
	"smoothproc/internal/fn"
	"smoothproc/internal/netsim"
	"smoothproc/internal/procs"
	"smoothproc/internal/seq"
	"smoothproc/internal/solver"
	"smoothproc/internal/trace"
	"smoothproc/internal/value"
)

// TestMaybeTickConformance pins Section 3.1.1's example 2: the quiescent
// traces are exactly ε and (b,0), matched via the auxiliary-channel
// description of Section 8.2.
func TestMaybeTickConformance(t *testing.T) {
	e := procs.MaybeTick("mt", "b")
	c := check.Conformance{
		Name: "maybetick",
		Spec: netsim.Spec{Name: "mt", Procs: []netsim.Proc{e.Proc}},
		Problem: solver.NewProblem(e.Comp.D, map[string][]value.Value{
			"mt.c": {value.T, value.F},
			"b":    value.Ints(0),
		}, 3),
		Visible:      e.Visible(),
		LenCap:       3,
		MaxDecisions: 6,
	}
	if err := c.CheckQuiescent(context.Background()); err != nil {
		t.Error(err)
	}
	den := c.DenotationalSolutions(context.Background())
	if len(den) != 2 {
		t.Fatalf("projected solutions: %d, want 2 (ε and (b,0))", len(den))
	}
	if _, ok := den[trace.Empty.String()]; !ok {
		t.Error("ε missing")
	}
	if _, ok := den[trace.Of(trace.E("b", value.Int(0))).String()]; !ok {
		t.Error("(b,0) missing")
	}
	if err := check.SolutionsAreRealizable(context.Background(), c); err != nil {
		t.Error(err)
	}
}

// TestMaybeTickNeedsAuxiliary mechanises the Section 8.2 necessity
// argument on a family of candidate aux-free descriptions: for every
// description f ⟵ g over channel b alone (drawn from the repository's
// vocabulary closure), if ε and (b,0) are both smooth solutions then
// (b,0)(b,0) is a tree node — so no member of the family carves out
// exactly the process's histories.
func TestMaybeTickNeedsAuxiliary(t *testing.T) {
	// A broad sample of width-1 trace functions over b.
	fns := []fn.TraceFn{
		fn.ChanFn("b"),
		fn.OnChan(fn.Even, "b"),
		fn.OnChan(fn.Identity, "b"),
		fn.OnChan(fn.PrependFn(value.Int(0)), "b"),
		fn.OnChan(fn.MulAdd(2, 1), "b"),
		fn.OnChan(fn.CountTs, "b"),
		fn.ConstTraceFn(seq.Empty),
		fn.ConstTraceFn(seq.OfInts(0)),
		fn.ConstTraceFn(seq.OfInts(0, 0)),
		fn.OmegaConstFn("zeros", seq.OfInts(0)),
	}
	empty := trace.Empty
	one := trace.Of(trace.E("b", value.Int(0)))
	two := one.Append(trace.E("b", value.Int(0)))
	for i, f := range fns {
		for j, g := range fns {
			d, err := desc.New("cand", f, g)
			if err != nil {
				continue
			}
			if d.IsSmoothFinite(empty) != nil || d.IsSmoothFinite(one) != nil {
				continue // does not admit both required traces
			}
			if !solver.IsTreeNode(d, two) {
				t.Errorf("candidate f=%d g=%d describes {ε,(b,0)} exactly — the §8.2 argument would be refuted", i, j)
			}
		}
	}
}
