package procs

import (
	"smoothproc/internal/desc"
	"smoothproc/internal/fn"
	"smoothproc/internal/netsim"
	"smoothproc/internal/seq"
	"smoothproc/internal/trace"
	"smoothproc/internal/value"
)

// DFM is the discriminated fair merge of Section 2.2 (Figure 2): channel
// b carries even integers, c carries odd integers, and the process merges
// them fairly onto d. Description: even(d) ⟵ b, odd(d) ⟵ c.
//
// Operationally the merge forwards whichever input the scheduler offers;
// fairness is an ω-property that every finite prefix satisfies vacuously,
// and the bounded conformance checks quantify over finite prefixes.
func DFM(name, b, c, d string) Entry {
	return Entry{
		Proc: netsim.Proc{Name: name, Body: func(ctx *netsim.Ctx) {
			for {
				_, v, ok := ctx.RecvAny(b, c)
				if !ok {
					return
				}
				if !ctx.Send(d, v) {
					return
				}
			}
		}},
		Comp: desc.Component{
			Name:     name,
			Incident: trace.NewChanSet(b, c, d),
			D: desc.Combine(name,
				desc.MustNew(name+".even", fn.OnChan(fn.Even, d), fn.ChanFn(b)),
				desc.MustNew(name+".odd", fn.OnChan(fn.Odd, d), fn.ChanFn(c)),
			),
		},
	}
}

// BrockAckermannA is process A of Figure 4: it receives odd numbers on b
// and fair-merges them with the internally stored sequence 0 2, emitting
// on c. Description: even(c) ⟵ "0 2", odd(c) ⟵ b.
//
// The implementation offers its next internal item as a send alternative
// whenever one remains, so it is never quiescent while 0 or 2 is still
// owed — which is exactly why the network can only ever produce 0 2 1 and
// not the anomalous 0 1 2.
func BrockAckermannA(name, b, c string) Entry {
	return BrockAckermannAWith(name, b, c, value.Int(0), value.Int(2))
}

// BrockAckermannAWith is BrockAckermannA with an arbitrary internal
// sequence in place of the paper's "0 2" — the generator of the whole
// anomaly family: any internally stored even sequence fair-merged with
// the odd feedback from B exhibits the same it-can-only-happen-in-order
// behaviour, which is what the generated corpus randomises over.
func BrockAckermannAWith(name, b, c string, internal ...value.Value) Entry {
	return Entry{
		Proc: netsim.Proc{Name: name, Body: func(ctx *netsim.Ctx) {
			pending := append([]value.Value(nil), internal...)
			for {
				var sends []netsim.SendAlt
				if len(pending) > 0 {
					sends = append(sends, netsim.SendAlt{Ch: c, Val: pending[0]})
				}
				alt, ok := ctx.Select(sends, []string{b})
				if !ok {
					return
				}
				if alt.IsSend {
					pending = pending[1:]
					continue
				}
				if !ctx.Send(c, alt.Val) {
					return
				}
			}
		}},
		Comp: desc.Component{
			Name:     name,
			Incident: trace.NewChanSet(b, c),
			D: desc.Combine(name,
				desc.MustNew(name+".even", fn.OnChan(fn.Even, c), fn.ConstTraceFn(seq.Of(internal...))),
				desc.MustNew(name+".odd", fn.OnChan(fn.Odd, c), fn.ChanFn(b)),
			),
		},
	}
}

// FairMerge is the general fair merge of Section 4.10 (Figure 7): inputs
// c and d merged fairly onto e. Its description uses the auxiliary tagged
// channel b of the paper's implementation (after eliminating c' and d'):
//
//	ZERO(b) ⟵ t0(c), ONE(b) ⟵ t1(d), e ⟵ r(b)
func FairMerge(name, c, d, e string) Entry {
	b := name + ".b" // auxiliary, internal to this process (Section 8.2)
	return Entry{
		Proc: netsim.Proc{Name: name, Body: func(ctx *netsim.Ctx) {
			for {
				_, v, ok := ctx.RecvAny(c, d)
				if !ok {
					return
				}
				if !ctx.Send(e, v) {
					return
				}
			}
		}},
		Comp: desc.Component{
			Name:     name,
			Incident: trace.NewChanSet(b, c, d, e),
			D:        FairMergeSystem(name, b, c, d, e).Combined(),
		},
		Aux: []string{b},
	}
}

// FairMergeSystem is the eliminated description system of Section 4.10:
// ZERO(b) ⟵ t0(c), ONE(b) ⟵ t1(d), e ⟵ r(b).
func FairMergeSystem(name, b, c, d, e string) desc.System {
	return desc.System{
		Name: name,
		Descs: []desc.Description{
			desc.MustNew(name+".zero", fn.OnChan(fn.ZeroTag, b), fn.OnChan(fn.Tag0, c)),
			desc.MustNew(name+".one", fn.OnChan(fn.OneTag, b), fn.OnChan(fn.Tag1, d)),
			desc.MustNew(name+".out", fn.ChanFn(e), fn.OnChan(fn.Untag, b)),
		},
	}
}

// FairMergeFullSystem is the pre-elimination system of Section 4.10, with
// the intermediate tagged channels cp (c′) and dp (d′) still present:
//
//	c′ ⟵ t0(c), d′ ⟵ t1(d), ZERO(b) ⟵ c′, ONE(b) ⟵ d′, e ⟵ r(b)
//
// Eliminating cp and dp with desc.Eliminate must yield (the combined
// equivalent of) FairMergeSystem — the worked elimination of Section 4.10,
// validated in the tests.
func FairMergeFullSystem(name, b, c, d, e, cp, dp string) desc.System {
	return desc.System{
		Name: name,
		Descs: []desc.Description{
			desc.MustNew(name+".tag0", fn.ChanFn(cp), fn.OnChan(fn.Tag0, c)),
			desc.MustNew(name+".tag1", fn.ChanFn(dp), fn.OnChan(fn.Tag1, d)),
			desc.MustNew(name+".zero", fn.OnChan(fn.ZeroTag, b), fn.ChanFn(cp)),
			desc.MustNew(name+".one", fn.OnChan(fn.OneTag, b), fn.ChanFn(dp)),
			desc.MustNew(name+".out", fn.ChanFn(e), fn.OnChan(fn.Untag, b)),
		},
	}
}

// TaggedMergeD is process D of Figure 7 in isolation: the discriminated
// merge over tags. Description: ZERO(b) ⟵ c′, ONE(b) ⟵ d′.
func TaggedMergeD(name, cp, dp, b string) Entry {
	return Entry{
		Proc: netsim.Proc{Name: name, Body: func(ctx *netsim.Ctx) {
			for {
				_, v, ok := ctx.RecvAny(cp, dp)
				if !ok {
					return
				}
				if !ctx.Send(b, v) {
					return
				}
			}
		}},
		Comp: desc.Component{
			Name:     name,
			Incident: trace.NewChanSet(cp, dp, b),
			D: desc.Combine(name,
				desc.MustNew(name+".zero", fn.OnChan(fn.ZeroTag, b), fn.ChanFn(cp)),
				desc.MustNew(name+".one", fn.OnChan(fn.OneTag, b), fn.ChanFn(dp)),
			),
		},
	}
}

// Tagger is process A (or B) of Figure 7: it wraps each input in a tagged
// pair. Description: out ⟵ tag_k(in).
func Tagger(name, in, out string, tag int64) Entry {
	tagFn := fn.TagWith(tag)
	return Entry{
		Proc: netsim.Proc{Name: name, Body: func(ctx *netsim.Ctx) {
			for {
				v, ok := ctx.Recv(in)
				if !ok {
					return
				}
				if !ctx.Send(out, value.Pair(value.Int(tag), v)) {
					return
				}
			}
		}},
		Comp: desc.Component{
			Name:     name,
			Incident: trace.NewChanSet(in, out),
			D:        desc.MustNew(name, fn.ChanFn(out), fn.OnChan(tagFn, in)),
		},
	}
}

// Untagger is process C of Figure 7: it strips tags. Description:
// out ⟵ r(in).
func Untagger(name, in, out string) Entry {
	return Entry{
		Proc: netsim.Proc{Name: name, Body: func(ctx *netsim.Ctx) {
			for {
				v, ok := ctx.Recv(in)
				if !ok {
					return
				}
				if !ctx.Send(out, v.Second()) {
					return
				}
			}
		}},
		Comp: desc.Component{
			Name:     name,
			Incident: trace.NewChanSet(in, out),
			D:        desc.MustNew(name, fn.ChanFn(out), fn.OnChan(fn.Untag, in)),
		},
	}
}
