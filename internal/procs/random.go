package procs

import (
	"smoothproc/internal/desc"
	"smoothproc/internal/fn"
	"smoothproc/internal/netsim"
	"smoothproc/internal/seq"
	"smoothproc/internal/trace"
	"smoothproc/internal/value"
)

// Chaos is the process of Section 4.1 (Hoare's CHAOS): it sends any
// sequence of messages from alphabet along b. Every trace over b is a
// quiescent trace. Description: K ⟵ K for any constant K — the paper
// synthesises this from the requirement that all traces be smooth
// solutions; we take K = ε.
func Chaos(name, b string, alphabet []value.Value) Entry {
	alpha := append([]value.Value(nil), alphabet...)
	k := fn.ConstTraceFn(seq.Empty)
	return Entry{
		Proc: netsim.Proc{Name: name, Body: func(c *netsim.Ctx) {
			for {
				i, ok := c.Choose(len(alpha) + 1)
				if !ok || i == len(alpha) {
					return // nondeterministic halt
				}
				if !c.Send(b, alpha[i]) {
					return
				}
			}
		}},
		Comp: desc.Component{
			Name:     name,
			Incident: trace.NewChanSet(b),
			D:        desc.MustNew(name, k, k),
		},
	}
}

// RandomBit is the process of Section 4.3: it outputs a single bit, T or
// F, on b and halts. Description: R(b) ⟵ T̄.
func RandomBit(name, b string) Entry {
	return Entry{
		Proc: netsim.Proc{Name: name, Body: func(c *netsim.Ctx) {
			bit, ok := c.Flip()
			if !ok {
				return
			}
			c.Send(b, value.Bool(bit))
		}},
		Comp: desc.Component{
			Name:     name,
			Incident: trace.NewChanSet(b),
			D:        desc.MustNew(name, fn.OnChan(fn.RMap, b), fn.ConstTraceFn(seq.Of(value.T))),
		},
	}
}

// RandomBitSeq is the process of Section 4.4: for each tick received on
// c it outputs one random bit on b. Description: R(b) ⟵ c.
func RandomBitSeq(name, c, b string) Entry {
	return Entry{
		Proc: netsim.Proc{Name: name, Body: func(ctx *netsim.Ctx) {
			for {
				if _, ok := ctx.Recv(c); !ok {
					return
				}
				bit, ok := ctx.Flip()
				if !ok {
					return
				}
				if !ctx.Send(b, value.Bool(bit)) {
					return
				}
			}
		}},
		Comp: desc.Component{
			Name:     name,
			Incident: trace.NewChanSet(c, b),
			D:        desc.MustNew(name, fn.OnChan(fn.RMap, b), fn.ChanFn(c)),
		},
	}
}

// Implication is the process of Section 4.5 (Figure 5): it receives at
// most one bit on c and outputs one bit on d — F if the input was F,
// arbitrary otherwise. Its four quiescent traces are ⊥, (c,T)(d,T),
// (c,T)(d,F) and (c,F)(d,F) — note ⊥ alone; (c,T) and (c,F) are
// nonquiescent because an output is owed.
//
// The description uses the paper's implementation with the auxiliary
// random-bit channel b: R(b) ⟵ T̄, d ⟵ b AND c.
func Implication(name, c, d string) Entry {
	b := name + ".b" // auxiliary (Section 8.2)
	return Entry{
		Proc: netsim.Proc{Name: name, Body: func(ctx *netsim.Ctx) {
			v, ok := ctx.Recv(c)
			if !ok {
				return
			}
			out := value.F
			if v.IsTrue() {
				bit, ok := ctx.Flip()
				if !ok {
					return
				}
				out = value.Bool(bit)
			}
			ctx.Send(d, out)
		}},
		Comp: desc.Component{
			Name:     name,
			Incident: trace.NewChanSet(b, c, d),
			D:        ImplicationSystem(name, b, c, d).Combined(),
		},
		Aux: []string{b},
	}
}

// ImplicationSystem is the description system of Section 4.5:
// R(b) ⟵ T̄, d ⟵ b AND c.
func ImplicationSystem(name, b, c, d string) desc.System {
	return desc.System{
		Name: name,
		Descs: []desc.Description{
			desc.MustNew(name+".bit", fn.OnChan(fn.RMap, b), fn.ConstTraceFn(seq.Of(value.T))),
			desc.MustNew(name+".and", fn.ChanFn(d), fn.OnTwoChans(fn.And, b, c)),
		},
	}
}

// BadImplicationSystem is the reader exercise of Section 4.5: why is
// d ⟵ c AND d NOT a description of the implication process? The tests
// answer mechanically: its smooth solutions do not match the process's
// traces (e.g. (c,T)(d,T) requires d's own output as evidence for
// itself).
func BadImplicationSystem(name, c, d string) desc.System {
	return desc.System{
		Name: name,
		Descs: []desc.Description{
			desc.MustNew(name+".and", fn.ChanFn(d), fn.OnTwoChans(fn.And, c, d)),
		},
	}
}

// NonStrictImplicationSystem is the second reader exercise: the variant
// of the implication description using the non-strict AND.
func NonStrictImplicationSystem(name, b, c, d string) desc.System {
	return desc.System{
		Name: name,
		Descs: []desc.Description{
			desc.MustNew(name+".bit", fn.OnChan(fn.RMap, b), fn.ConstTraceFn(seq.Of(value.T))),
			desc.MustNew(name+".and", fn.ChanFn(d), fn.OnTwoChans(fn.NonStrictAnd, b, c)),
		},
	}
}

// Fork is the process of Section 4.6 (Figure 6): every item received on
// c is sent along d or e, with no fairness requirement. The description
// uses the auxiliary oracle channel b ("an infinite sequence of random
// bits"): R(b) ⟵ R(c), d ⟵ g(c,b), e ⟵ h(c,b) — one oracle bit per
// input received.
func Fork(name, c, d, e string) Entry {
	b := name + ".b" // auxiliary oracle (Park 1982)
	return Entry{
		// The body buffers routed items per output and offers the heads
		// as send alternatives: outputs on the two branches may cross
		// (item 2 can appear on e before item 1 appears on d), exactly
		// as the description's oracle semantics allows, while the order
		// within each branch is preserved (g and h are subsequences).
		Proc: netsim.Proc{Name: name, Body: func(ctx *netsim.Ctx) {
			var pendD, pendE []value.Value
			for {
				var sends []netsim.SendAlt
				if len(pendD) > 0 {
					sends = append(sends, netsim.SendAlt{Ch: d, Val: pendD[0]})
				}
				if len(pendE) > 0 {
					sends = append(sends, netsim.SendAlt{Ch: e, Val: pendE[0]})
				}
				alt, ok := ctx.Select(sends, []string{c})
				if !ok {
					return
				}
				if alt.IsSend {
					if alt.Ch == d {
						pendD = pendD[1:]
					} else {
						pendE = pendE[1:]
					}
					continue
				}
				bit, ok := ctx.Flip()
				if !ok {
					return
				}
				if bit {
					pendD = append(pendD, alt.Val)
				} else {
					pendE = append(pendE, alt.Val)
				}
			}
		}},
		Comp: desc.Component{
			Name:     name,
			Incident: trace.NewChanSet(b, c, d, e),
			D: desc.Combine(name,
				desc.MustNew(name+".oracle", fn.OnChan(fn.RMap, b), fn.OnChan(fn.RMap, c)),
				desc.MustNew(name+".d", fn.ChanFn(d), fn.OnTwoChans(fn.SelectTrue, c, b)),
				desc.MustNew(name+".e", fn.ChanFn(e), fn.OnTwoChans(fn.SelectFalse, c, b)),
			),
		},
		Aux: []string{b},
	}
}

// FairRandomSeq is the process of Section 4.7: an infinite sequence on c
// with infinitely many T's and infinitely many F's. Description:
// TRUE(c) ⟵ trues, FALSE(c) ⟵ falses (ω-constants). It has no finite
// quiescent trace.
func FairRandomSeq(name, c string) Entry {
	return Entry{
		Proc: netsim.Proc{Name: name, Body: func(ctx *netsim.Ctx) {
			for {
				bit, ok := ctx.Flip()
				if !ok {
					return
				}
				if !ctx.Send(c, value.Bool(bit)) {
					return
				}
			}
		}},
		Comp: desc.Component{
			Name:     name,
			Incident: trace.NewChanSet(c),
			D: desc.Combine(name,
				desc.MustNew(name+".T", fn.OnChan(fn.TrueBits, c), fn.OmegaConstFn("trues", seq.Of(value.T))),
				desc.MustNew(name+".F", fn.OnChan(fn.FalseBits, c), fn.OmegaConstFn("falses", seq.Of(value.F))),
			),
		},
	}
}

// FiniteTicks is the process of Section 4.8: it sends a finite number of
// T's on d and halts — a fairness property, since (d,T)^ω is NOT a trace
// while every (d,T)^i is. Description (via the auxiliary fair-random
// input c): d ⟵ g(c) with g = longest F-free prefix, plus the
// fair-random description of c.
func FiniteTicks(name, d string) Entry {
	c := name + ".c" // auxiliary fair-random source (Section 8.2)
	return Entry{
		Proc: netsim.Proc{Name: name, Body: func(ctx *netsim.Ctx) {
			for {
				bit, ok := ctx.Flip()
				if !ok || !bit {
					return // first F: halt
				}
				if !ctx.Send(d, value.T) {
					return
				}
			}
		}},
		Comp: desc.Component{
			Name:     name,
			Incident: trace.NewChanSet(c, d),
			D: desc.Combine(name,
				desc.MustNew(name+".T", fn.OnChan(fn.TrueBits, c), fn.OmegaConstFn("trues", seq.Of(value.T))),
				desc.MustNew(name+".F", fn.OnChan(fn.FalseBits, c), fn.OmegaConstFn("falses", seq.Of(value.F))),
				desc.MustNew(name+".out", fn.ChanFn(d), fn.OnChan(fn.UntilF, c)),
			),
		},
		Aux: []string{c},
	}
}

// MaybeTick is example 2 of Section 3.1.1: a process that halts or,
// nondeterministically, outputs a single 0 on b and then halts — its two
// quiescent traces are ε and (b,0).
//
// This process is the minimal witness for Section 8.2's claim that
// auxiliary channels are essential. No description over b alone can have
// exactly {ε, (b,0)} as its smooth solutions: if both are solutions then
// monotonicity forces f((b,0)) ⊑ f((b,0)(b,0)) while the smoothness edge
// into (b,0) forces f((b,0)) ⊑ g(ε) = f(ε), so f is constant K on the
// first two levels, g((b,0)) = K by the limit condition, and then the
// edge into (b,0)(b,0) holds as well — the unwanted history is always a
// tree node. The description below therefore uses an auxiliary
// random-bit channel c: R(c) ⟵ T̄, b ⟵ zeroIfT(c).
func MaybeTick(name, b string) Entry {
	c := name + ".c" // auxiliary single random bit (Section 8.2)
	zeroIfT := fn.ComposeSeq(fn.MapFn("→0", func(value.Value) value.Value {
		return value.Int(0)
	}), fn.TrueBits)
	return Entry{
		Proc: netsim.Proc{Name: name, Body: func(ctx *netsim.Ctx) {
			bit, ok := ctx.Flip()
			if !ok || !bit {
				return // chose to halt silently
			}
			ctx.Send(b, value.Int(0))
		}},
		Comp: desc.Component{
			Name:     name,
			Incident: trace.NewChanSet(c, b),
			D: desc.Combine(name,
				desc.MustNew(name+".bit", fn.OnChan(fn.RMap, c), fn.ConstTraceFn(seq.Of(value.T))),
				desc.MustNew(name+".out", fn.ChanFn(b), fn.OnChan(zeroIfT, c)),
			),
		},
		Aux: []string{c},
	}
}

// RandomNumber is the process of Section 4.9: it outputs one arbitrary
// natural number on d and halts. Description (via the auxiliary
// fair-random input c): d ⟵ h(c) with h = count of T's before the first
// F, plus the fair-random description of c.
func RandomNumber(name, d string) Entry {
	c := name + ".c" // auxiliary fair-random source
	return Entry{
		Proc: netsim.Proc{Name: name, Body: func(ctx *netsim.Ctx) {
			var n int64
			for {
				bit, ok := ctx.Flip()
				if !ok {
					return
				}
				if !bit {
					ctx.Send(d, value.Int(n))
					return
				}
				n++
			}
		}},
		Comp: desc.Component{
			Name:     name,
			Incident: trace.NewChanSet(c, d),
			D: desc.Combine(name,
				desc.MustNew(name+".T", fn.OnChan(fn.TrueBits, c), fn.OmegaConstFn("trues", seq.Of(value.T))),
				desc.MustNew(name+".F", fn.OnChan(fn.FalseBits, c), fn.OmegaConstFn("falses", seq.Of(value.F))),
				desc.MustNew(name+".out", fn.ChanFn(d), fn.OnChan(fn.CountTs, c)),
			),
		},
		Aux: []string{c},
	}
}
