package procs_test

import (
	"context"
	"strings"
	"testing"

	"smoothproc/internal/check"
	"smoothproc/internal/desc"
	"smoothproc/internal/kahn"
	"smoothproc/internal/netsim"
	"smoothproc/internal/procs"
	"smoothproc/internal/seq"
	"smoothproc/internal/solver"
	"smoothproc/internal/trace"
	"smoothproc/internal/value"
)

// TestFig1LeastFixpoint reproduces Section 2.1: the two-copy loop's least
// fixpoint is the pair of empty sequences, and the seeded variant's
// behaviour grows toward b = c = 0^ω.
func TestFig1LeastFixpoint(t *testing.T) {
	fix, err := kahn.TwoCopyEquations().Solve(10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !fix.Converged {
		t.Fatal("fig1 iteration did not converge")
	}
	for _, ch := range []string{"b", "c"} {
		if !fix.Env[ch].IsEmpty() {
			t.Errorf("lfp %s = %s, want ε", ch, fix.Env[ch])
		}
	}

	seeded, err := kahn.SeededCopyEquations().Solve(100, 8)
	if err != nil {
		t.Fatal(err)
	}
	want := seq.Repeat(seq.OfInts(0), 8)
	for _, ch := range []string{"b", "c"} {
		if !seeded.Env[ch].Equal(want) {
			t.Errorf("seeded lfp %s = %s, want %s", ch, seeded.Env[ch], want)
		}
	}
}

// TestFig1Operational checks the operational side of Figure 1: the
// unseeded loop quiesces immediately at ⊥; the seeded loop's unique
// behaviour is the growing prefix chain of ((b,0)(c,0))^ω.
func TestFig1Operational(t *testing.T) {
	quiescent := netsim.QuiescentTraces(procs.Fig1Network(), 10, netsim.RealizeOpts{})
	if len(quiescent) != 1 {
		t.Fatalf("fig1 quiescent traces = %d, want 1 (⊥)", len(quiescent))
	}
	if _, ok := quiescent[trace.Empty.String()]; !ok {
		t.Fatal("fig1 quiescent trace is not ⊥")
	}

	run := netsim.Run(procs.Fig1SeededNetwork(), netsim.NewRandomDecider(1), netsim.Limits{MaxEvents: 10})
	if run.Err != nil {
		t.Fatal(run.Err)
	}
	wantGen := trace.CycleGen("0-loop", trace.Of(
		trace.E("b", value.Int(0)), trace.E("c", value.Int(0)),
	))
	if !run.Trace.Equal(wantGen.Prefix(10)) {
		t.Errorf("seeded run trace = %s, want %s", run.Trace, wantGen.Prefix(10))
	}
}

// TestFig1OmegaSolution checks that the 0^ω trace is certified as the ω
// smooth solution of the seeded loop's description b ⟵ 0;c, c ⟵ b.
func TestFig1OmegaSolution(t *testing.T) {
	d := desc.Combine("fig1-seeded",
		procs.SeededCopy("copy2", "c", "b").Comp.D,
		procs.Copy("copy1", "b", "c").Comp.D,
	)
	gen := trace.CycleGen("0-loop", trace.Of(
		trace.E("b", value.Int(0)), trace.E("c", value.Int(0)),
	))
	v := d.CheckOmega(gen, 24)
	if !v.OmegaSolution() {
		t.Errorf("0^ω not certified: %+v", v)
	}
	// The wrong interleaving — outputs on c before b ever carried them —
	// must fail the smoothness condition.
	bad := trace.CycleGen("bad", trace.Of(
		trace.E("c", value.Int(0)), trace.E("b", value.Int(0)),
	))
	if bv := d.CheckOmega(bad, 24); bv.Smooth {
		t.Errorf("reversed interleaving unexpectedly smooth: %+v", bv)
	}
}

// fig2Conformance is the dfm process of Figure 2 fed with evens 0,2 on b
// and odd 1 on c.
func fig2Conformance(t *testing.T) check.Conformance {
	t.Helper()
	net := procs.WithFeeders("fig2", procs.DFM("dfm", "b", "c", "d"),
		procs.ConstFeeder("envB", "b", value.Int(0), value.Int(2)),
		procs.ConstFeeder("envC", "c", value.Int(1)),
	)
	d, err := net.Description()
	if err != nil {
		t.Fatal(err)
	}
	alphabet := map[string][]value.Value{
		"b": value.Ints(0, 2),
		"c": value.Ints(1),
		"d": value.Ints(0, 1, 2),
	}
	return check.Conformance{
		Name:         "fig2",
		Spec:         net.Spec,
		Problem:      solver.NewProblem(d, alphabet, 6),
		LenCap:       6,
		MaxDecisions: 24,
	}
}

// TestFig2DFMConformance reproduces Section 2.2 both ways: the quiescent
// traces of the dfm network are exactly the smooth solutions of
// even(d) ⟵ b, odd(d) ⟵ c composed with the feeder descriptions.
func TestFig2DFMConformance(t *testing.T) {
	c := fig2Conformance(t)
	if err := c.CheckQuiescent(context.Background()); err != nil {
		t.Error(err)
	}
	if err := c.CheckHistories(context.Background()); err != nil {
		t.Error(err)
	}
	if err := check.SolutionsAreRealizable(context.Background(), c); err != nil {
		t.Error(err)
	}
	if err := check.RandomRunsAreSmooth(context.Background(), c, []int64{1, 2, 3, 4, 5, 6, 7, 8}, netsim.Limits{}); err != nil {
		t.Error(err)
	}
}

// TestFig2QuiescentExamples pins the concrete quiescent / nonquiescent
// communication histories listed in Section 3.1.1, example 1, for a dfm
// fed 0 on b and 1, 3 on c.
func TestFig2QuiescentExamples(t *testing.T) {
	net := procs.WithFeeders("fig2ex", procs.DFM("dfm", "b", "c", "d"),
		procs.ConstFeeder("envB", "b", value.Int(0)),
		procs.ConstFeeder("envC", "c", value.Int(1), value.Int(3)),
	)
	d, err := net.Description()
	if err != nil {
		t.Fatal(err)
	}
	mustEvent := func(ch string, n int64) trace.Event { return trace.E(ch, value.Int(n)) }
	quiescent := trace.Of(
		mustEvent("b", 0), mustEvent("c", 1), mustEvent("c", 3),
		mustEvent("d", 1), mustEvent("d", 3), mustEvent("d", 0),
	)
	if err := d.IsSmoothFinite(quiescent); err != nil {
		t.Errorf("paper's quiescent trace rejected: %v", err)
	}
	for _, bad := range []trace.Trace{
		trace.Of(mustEvent("b", 0)),
		trace.Of(mustEvent("b", 0), mustEvent("d", 0), mustEvent("c", 1)),
	} {
		if err := d.IsSmoothFinite(bad); err == nil {
			t.Errorf("nonquiescent history %s accepted as smooth", bad)
		}
		if !solver.IsTreeNode(d, bad) {
			t.Errorf("history %s should still be a tree node", bad)
		}
	}
}

// TestFig3Solutions reproduces Section 2.3: x and y are (ω) smooth
// solutions of equations (1,2); z satisfies the equations but violates
// smoothness at its very first element.
func TestFig3Solutions(t *testing.T) {
	d := procs.Fig3Equations()
	const depth = 30
	for _, gen := range []trace.Gen{procs.Fig3X(), procs.Fig3Y()} {
		if err := trace.CheckGenMonotone(gen, depth); err != nil {
			t.Fatal(err)
		}
		v := d.CheckOmega(gen, depth)
		if !v.OmegaSolution() {
			t.Errorf("%s not certified as ω smooth solution: %+v", gen.Name, v)
		}
	}
	z := procs.Fig3Z()
	v := d.CheckOmega(z, depth)
	if v.LimitRefuted || !v.Converging {
		t.Errorf("z should satisfy the equations in the limit: %+v", v)
	}
	if v.Smooth {
		t.Error("z passed the smoothness condition; the paper shows it must fail")
	}
	if v.SmoothFailAt != 0 {
		t.Errorf("z's violation should be at its first element (odd(-1) ⋢ 2×ε+1), got index %d", v.SmoothFailAt)
	}
}

// TestFig3OperationalSmooth checks that every operational run of the
// Figure 3 network (P, Q, dfm) takes only smooth steps with respect to
// the composed network description.
func TestFig3OperationalSmooth(t *testing.T) {
	net := procs.Fig3Network()
	d, err := net.Description()
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 10; seed++ {
		run := netsim.Run(net.Spec, netsim.NewRandomDecider(seed), netsim.Limits{MaxEvents: 40})
		if run.Err != nil {
			t.Fatal(run.Err)
		}
		if run.Reason == netsim.StopQuiescent {
			t.Fatalf("fig3 network quiesced — it should run forever (trace %s)", run.Trace)
		}
		if !solver.IsTreeNode(d, run.Trace) {
			t.Errorf("seed %d: run trace %s has a non-smooth step", seed, run.Trace)
		}
	}
}

// TestFig3Progress verifies the progress property of Section 2.3 on the
// two exhibited solutions: every natural number n appears in the output.
func TestFig3Progress(t *testing.T) {
	for _, gen := range []trace.Gen{procs.Fig3X(), procs.Fig3Y()} {
		prefix := gen.Prefix(2*16 - 1) // B_0..B_4 fully included
		got := prefix.Channel("d")
		for n := int64(0); n < 8; n++ {
			if !got.Contains(value.Int(n)) {
				t.Errorf("%s: natural %d missing from %s", gen.Name, n, got)
			}
		}
	}
}

// TestFig3Safety discharges the safety property of Section 2.3 — the
// appearance of 2×n (n ≥ 1) is preceded by n — with the smooth-solution
// induction rule of Section 8.4, over the bounded solution tree.
func TestFig3Safety(t *testing.T) {
	phi := func(tr trace.Trace) bool {
		d := tr.Channel("d")
		for i := 0; i < d.Len(); i++ {
			m, ok := d.At(i).AsInt()
			if !ok || m <= 0 || m%2 != 0 {
				continue
			}
			if !d.Take(i).Contains(value.Int(m / 2)) {
				return false
			}
		}
		return true
	}
	p := solver.NewProblem(procs.Fig3Equations(), map[string][]value.Value{
		"d": value.IntRange(-2, 7),
	}, 6)
	if err := solver.CheckInduction(context.Background(), p, phi); err != nil {
		t.Error(err)
	}
}

// TestFig4BrockAckermann reproduces Section 2.4: the equations have
// exactly two solutions in c — 0 1 2 and 0 2 1 — of which only 0 2 1 is
// smooth; and the operational network realises exactly that one.
func TestFig4BrockAckermann(t *testing.T) {
	d := procs.Fig4Equations()
	// Solutions of the equations, smoothness aside, via the unpruned
	// tree: exactly the two the paper names.
	loose := solver.Problem{
		D:        d,
		Channels: []string{"c"},
		Alphabet: map[string][]value.Value{"c": value.Ints(0, 1, 2)},
		MaxDepth: 3,
		Prune:    false,
	}
	nonSmooth, smooth := 0, 0
	var smoothTrace trace.Trace
	for _, cand := range permutations3("c") {
		limitHolds := d.LimitOK(cand)
		if !limitHolds {
			continue
		}
		nonSmooth++
		if d.IsSmoothFinite(cand) == nil {
			smooth++
			smoothTrace = cand
		}
	}
	_ = loose
	if nonSmooth != 2 {
		t.Errorf("equations have %d solutions among permutations, want 2", nonSmooth)
	}
	if smooth != 1 {
		t.Fatalf("%d smooth solutions, want exactly 1", smooth)
	}
	want021 := seq.OfInts(0, 2, 1)
	if !smoothTrace.Channel("c").Equal(want021) {
		t.Errorf("smooth solution is %s, want c = %s", smoothTrace, want021)
	}

	// The full-system view (with channel b) via the pruned tree.
	full := procs.Fig4System().Combined()
	p := solver.NewProblem(full, map[string][]value.Value{
		"b": value.Ints(1),
		"c": value.Ints(0, 1, 2),
	}, 4)
	res := solver.Enumerate(context.Background(), p)
	if len(res.Solutions) != 1 {
		t.Fatalf("full system has %d smooth solutions, want 1: %v", len(res.Solutions), res.SolutionKeys())
	}
	if got := res.Solutions[0].Channel("c"); !got.Equal(want021) {
		t.Errorf("full-system smooth solution has c = %s, want %s", got, want021)
	}

	// Operationally: the unique quiescent trace carries c = 0 2 1.
	net := procs.Fig4Network()
	quiescent := netsim.QuiescentTraces(net.Spec, 30, netsim.RealizeOpts{})
	if len(quiescent) != 1 {
		keys := make([]string, 0, len(quiescent))
		for k := range quiescent {
			keys = append(keys, k)
		}
		t.Fatalf("fig4 has %d quiescent traces, want 1: %s", len(quiescent), strings.Join(keys, " "))
	}
	for _, tr := range quiescent {
		if got := tr.Channel("c"); !got.Equal(want021) {
			t.Errorf("operational c = %s, want %s", got, want021)
		}
		if err := full.IsSmoothFinite(tr); err != nil {
			t.Errorf("operational quiescent trace not smooth: %v", err)
		}
	}
}

// permutations3 returns the six orderings of 0, 1, 2 on the channel.
func permutations3(ch string) []trace.Trace {
	var out []trace.Trace
	nums := []int64{0, 1, 2}
	perms := [][3]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	for _, p := range perms {
		tr := trace.Empty
		for _, i := range p {
			tr = tr.Append(trace.E(ch, value.Int(nums[i])))
		}
		out = append(out, tr)
	}
	return out
}

// TestFig7FairMerge checks the fair-merge network of Figure 7 end to end
// with small inputs: operational quiescent traces projected on {c,d,e}
// agree with the smooth solutions of the composed description.
func TestFig7FairMerge(t *testing.T) {
	net := procs.Fig7Network()
	feederC := procs.ConstFeeder("envC", "c", value.Int(10))
	feederD := procs.ConstFeeder("envD", "d", value.Int(20))
	net.Spec.Procs = append(net.Spec.Procs, feederC.Proc, feederD.Proc)
	net.Net.Components = append(net.Net.Components, feederC.Comp, feederD.Comp)
	d, err := net.Description()
	if err != nil {
		t.Fatal(err)
	}
	p10, p20 := value.Pair(value.Int(0), value.Int(10)), value.Pair(value.Int(1), value.Int(20))
	alphabet := map[string][]value.Value{
		"c":  value.Ints(10),
		"d":  value.Ints(20),
		"c'": {p10},
		"d'": {p20},
		"b":  {p10, p20},
		"e":  value.Ints(10, 20),
	}
	c := check.Conformance{
		Name:         "fig7",
		Spec:         net.Spec,
		Problem:      solver.NewProblem(d, alphabet, 8),
		LenCap:       8,
		MaxDecisions: 40,
	}
	if err := c.CheckQuiescent(context.Background()); err != nil {
		t.Error(err)
	}
	// Both merge orders must appear among the outputs.
	outs := map[string]bool{}
	for _, tr := range c.OperationalQuiescent() {
		outs[tr.Channel("e").String()] = true
	}
	for _, want := range []string{seq.OfInts(10, 20).String(), seq.OfInts(20, 10).String()} {
		if !outs[want] {
			t.Errorf("merge order %s not produced; got %v", want, outs)
		}
	}
}
