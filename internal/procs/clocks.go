package procs

import (
	"smoothproc/internal/desc"
	"smoothproc/internal/fn"
	"smoothproc/internal/netsim"
	"smoothproc/internal/seq"
	"smoothproc/internal/trace"
	"smoothproc/internal/value"
)

// Periodic generalises Ticks (Section 4.2) to an arbitrary period: an
// unending cyclic stream period^ω on b. With period ⟨T⟩ this is exactly
// Ticks; with period ⟨T, F, ..., F⟩ it is a rate-limited clock — the
// discrete approximation of a continuous-time tick source that fires
// once per len(period) slots (Beauxis–Mimram's non-standard Kahn
// semantics, approximated at a fixed sampling rate).
//
// Description: b ⟵ period^ω (the eqlang `repeat [period]` form).
func Periodic(name, b string, period ...value.Value) Entry {
	p := seq.Of(period...)
	return Entry{
		Proc: netsim.Proc{Name: name, Body: func(c *netsim.Ctx) {
			for i := 0; ; i++ {
				if !c.Send(b, p.At(i%p.Len())) {
					return
				}
			}
		}},
		Comp: desc.Component{
			Name:     name,
			Incident: trace.NewChanSet(b),
			D:        desc.MustNew(name, fn.ChanFn(b), fn.OmegaConstFn("repeat"+p.String(), p)),
		},
	}
}

// ZipAnd is the strict AND gate of Section 4.5 as a process: it reads
// one boolean from each input in lockstep and emits their conjunction.
// Description: out ⟵ AND(a, b) (the eqlang `and(a, b)` builtin).
func ZipAnd(name, a, b, out string) Entry {
	return Entry{
		Proc: netsim.Proc{Name: name, Body: func(c *netsim.Ctx) {
			for {
				x, ok := c.Recv(a)
				if !ok {
					return
				}
				y, ok := c.Recv(b)
				if !ok {
					return
				}
				if !c.Send(out, value.Bool(x.IsTrue() && y.IsTrue())) {
					return
				}
			}
		}},
		Comp: desc.Component{
			Name:     name,
			Incident: trace.NewChanSet(a, b, out),
			D:        desc.MustNew(name, fn.ChanFn(out), fn.OnTwoChans(fn.And, a, b)),
		},
	}
}
