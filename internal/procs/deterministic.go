package procs

import (
	"smoothproc/internal/desc"
	"smoothproc/internal/fn"
	"smoothproc/internal/netsim"
	"smoothproc/internal/trace"
	"smoothproc/internal/value"
)

// Copy is the deterministic copy process of Section 2.1: every message
// received on in is forwarded to out. Description: out ⟵ in.
func Copy(name, in, out string) Entry {
	return Entry{
		Proc: netsim.Proc{Name: name, Body: func(c *netsim.Ctx) {
			for {
				v, ok := c.Recv(in)
				if !ok {
					return
				}
				if !c.Send(out, v) {
					return
				}
			}
		}},
		Comp: desc.Component{
			Name:     name,
			Incident: trace.NewChanSet(in, out),
			D:        desc.MustNew(name, fn.ChanFn(out), fn.ChanFn(in)),
		},
	}
}

// SeededCopy is the Section 2.1 variant that "first sends a 0 along b and
// then copies every input to its output". Description: out ⟵ 0; in.
func SeededCopy(name, in, out string) Entry {
	return Entry{
		Proc: netsim.Proc{Name: name, Body: func(c *netsim.Ctx) {
			if !c.Send(out, value.Int(0)) {
				return
			}
			for {
				v, ok := c.Recv(in)
				if !ok {
					return
				}
				if !c.Send(out, v) {
					return
				}
			}
		}},
		Comp: desc.Component{
			Name:     name,
			Incident: trace.NewChanSet(in, out),
			D:        desc.MustNew(name, fn.ChanFn(out), fn.OnChan(fn.PrependFn(value.Int(0)), in)),
		},
	}
}

// FigP is process P of Figure 3: "it outputs a 0, then repeatedly
// receives a number, say n, and outputs 2×n". Description: b ⟵ 0; 2×d.
func FigP(name, d, b string) Entry {
	rhs := fn.OnChan(fn.ComposeSeq(fn.PrependFn(value.Int(0)), fn.Double), d)
	return Entry{
		Proc: netsim.Proc{Name: name, Body: func(c *netsim.Ctx) {
			if !c.Send(b, value.Int(0)) {
				return
			}
			for {
				v, ok := c.Recv(d)
				if !ok {
					return
				}
				if !c.Send(b, value.Int(2*v.MustInt())) {
					return
				}
			}
		}},
		Comp: desc.Component{
			Name:     name,
			Incident: trace.NewChanSet(d, b),
			D:        desc.MustNew(name, fn.ChanFn(b), rhs),
		},
	}
}

// FigQ is process Q of Figure 3: "it repeatedly receives a number, say m,
// and outputs 2×m+1". Description: c ⟵ 2×d+1.
func FigQ(name, d, c string) Entry {
	return Entry{
		Proc: netsim.Proc{Name: name, Body: func(ctx *netsim.Ctx) {
			for {
				v, ok := ctx.Recv(d)
				if !ok {
					return
				}
				if !ctx.Send(c, value.Int(2*v.MustInt()+1)) {
					return
				}
			}
		}},
		Comp: desc.Component{
			Name:     name,
			Incident: trace.NewChanSet(d, c),
			D:        desc.MustNew(name, fn.ChanFn(c), fn.OnChan(fn.DoublePlus1, d)),
		},
	}
}

// Ticks is the process of Section 4.2: an unending stream of T's on b.
// Description: b ⟵ T; b. Its only quiescent trace is (b,T)^ω.
func Ticks(name, b string) Entry {
	return Entry{
		Proc: netsim.Proc{Name: name, Body: func(c *netsim.Ctx) {
			for c.Send(b, value.T) {
			}
		}},
		Comp: desc.Component{
			Name:     name,
			Incident: trace.NewChanSet(b),
			D:        desc.MustNew(name, fn.ChanFn(b), fn.OnChan(fn.PrependFn(value.T), b)),
		},
	}
}

// Naturals outputs all natural numbers consecutively along b — the third
// quiescent-trace example of Section 3.1.1.
func Naturals(name, b string) Entry {
	// Description: b ⟵ 0; b+1 (pointwise successor), whose unique smooth
	// solution is 0 1 2 ... — the deterministic-recursion pattern of
	// Section 2.1 applied to the successor map.
	succ := fn.MapFn("+1", func(v value.Value) value.Value {
		if n, ok := v.AsInt(); ok {
			return value.Int(n + 1)
		}
		return v
	})
	rhs := fn.OnChan(fn.ComposeSeq(fn.PrependFn(value.Int(0)), succ), b)
	return Entry{
		Proc: netsim.Proc{Name: name, Body: func(c *netsim.Ctx) {
			for i := int64(0); c.Send(b, value.Int(i)); i++ {
			}
		}},
		Comp: desc.Component{
			Name:     name,
			Incident: trace.NewChanSet(b),
			D:        desc.MustNew(name, fn.ChanFn(b), rhs),
		},
	}
}

// BrockAckermannB is process B of Figure 4: it outputs n+1 where n is the
// first number received, but only after receiving two inputs, then halts.
// Description: b ⟵ fBA(c) with fBA(ε) = fBA(⟨n⟩) = ε, fBA(n;m;x) = ⟨n+1⟩.
func BrockAckermannB(name, c, b string) Entry {
	return Entry{
		Proc: netsim.Proc{Name: name, Body: func(ctx *netsim.Ctx) {
			n, ok := ctx.Recv(c)
			if !ok {
				return
			}
			if _, ok := ctx.Recv(c); !ok {
				return
			}
			ctx.Send(b, value.Int(n.MustInt()+1))
		}},
		Comp: desc.Component{
			Name:     name,
			Incident: trace.NewChanSet(c, b),
			D:        desc.MustNew(name, fn.ChanFn(b), fn.OnChan(FBA, c)),
		},
	}
}

// FBA is the Brock-Ackermann function f of Section 2.4 (re-exported from
// the fn vocabulary for callers that reach it via the catalogue).
var FBA = fn.FBA
