package procs_test

import (
	"context"
	"testing"

	"smoothproc/internal/check"
	"smoothproc/internal/netsim"
	"smoothproc/internal/procs"
	"smoothproc/internal/solver"
	"smoothproc/internal/trace"
	"smoothproc/internal/value"
)

func bit(b bool) value.Value { return value.Bool(b) }

func TestChaosAcceptsEverything(t *testing.T) {
	e := procs.Chaos("chaos", "b", value.Ints(1, 2))
	c := check.Conformance{
		Name: "chaos",
		Spec: netsim.Spec{Name: "chaos", Procs: []netsim.Proc{e.Proc}},
		Problem: solver.NewProblem(e.Comp.D, map[string][]value.Value{
			"b": value.Ints(1, 2),
		}, 2),
		LenCap:       2,
		MaxDecisions: 5,
	}
	if err := c.CheckQuiescent(context.Background()); err != nil {
		t.Error(err)
	}
	// Every trace over the alphabet is smooth — the Section 4.1 claim.
	res := solver.Enumerate(context.Background(), c.Problem)
	if len(res.Solutions) != 1+2+4 {
		t.Errorf("CHAOS solutions to depth 2: %d, want 7", len(res.Solutions))
	}
	if len(res.DeadLeaves) != 0 {
		t.Errorf("CHAOS has dead leaves: %v", res.DeadLeaves)
	}
}

func TestTicksHistories(t *testing.T) {
	e := procs.Ticks("ticks", "b")
	c := check.Conformance{
		Name: "ticks",
		Spec: netsim.Spec{Name: "ticks", Procs: []netsim.Proc{e.Proc}},
		Problem: solver.NewProblem(e.Comp.D, map[string][]value.Value{
			"b": {value.T, value.F},
		}, 4),
		LenCap:       4,
		MaxDecisions: 4,
		Opts:         netsim.RealizeOpts{Limits: netsim.Limits{MaxEvents: 4}},
	}
	if err := c.CheckHistories(context.Background()); err != nil {
		t.Error(err)
	}
	// No finite quiescent trace on either side.
	if got := c.OperationalQuiescent(); len(got) != 0 {
		t.Errorf("ticks quiesced operationally: %v", got)
	}
	if got := c.DenotationalSolutions(context.Background()); len(got) != 0 {
		t.Errorf("ticks has finite smooth solutions: %v", got)
	}
}

func TestNaturalsUniqueOmegaTrace(t *testing.T) {
	e := procs.Naturals("nats", "b")
	// Section 3.1.1, example 3: the only quiescent trace is the infinite
	// (b,0)(b,1)(b,2)...
	gen := trace.FuncGen("nats", func(i int) trace.Event {
		return trace.E("b", value.Int(int64(i)))
	})
	v := e.Comp.D.CheckOmega(gen, 16)
	if !v.OmegaSolution() {
		t.Errorf("naturals ω-trace not certified: %+v", v)
	}
	// Finite prefixes are not smooth solutions (output always owed).
	for n := 0; n < 4; n++ {
		if err := e.Comp.D.IsSmoothFinite(gen.Prefix(n)); err == nil {
			t.Errorf("finite prefix of length %d accepted", n)
		}
	}
	// A stream skipping 1 fails smoothness immediately after 0.
	bad := trace.FuncGen("skip", func(i int) trace.Event {
		return trace.E("b", value.Int(int64(2*i)))
	})
	if bv := e.Comp.D.CheckOmega(bad, 8); bv.Smooth {
		t.Error("skipping stream passed smoothness")
	}
}

func TestRandomBitConformance(t *testing.T) {
	e := procs.RandomBit("rb", "b")
	c := check.Conformance{
		Name: "rb",
		Spec: netsim.Spec{Name: "rb", Procs: []netsim.Proc{e.Proc}},
		Problem: solver.NewProblem(e.Comp.D, map[string][]value.Value{
			"b": {value.T, value.F},
		}, 3),
		LenCap:       3,
		MaxDecisions: 6,
	}
	if err := c.CheckQuiescent(context.Background()); err != nil {
		t.Error(err)
	}
	den := c.DenotationalSolutions(context.Background())
	if len(den) != 2 {
		t.Errorf("random bit solutions: %d, want 2 (T and F)", len(den))
	}
	if err := check.SolutionsAreRealizable(context.Background(), c); err != nil {
		t.Error(err)
	}
}

func TestRandomBitSeqConformance(t *testing.T) {
	e := procs.RandomBitSeq("rbs", "c", "b")
	net := procs.WithFeeders("rbs", e, procs.ConstFeeder("env", "c", value.T, value.T))
	d, err := net.Description()
	if err != nil {
		t.Fatal(err)
	}
	c := check.Conformance{
		Name: "rbs",
		Spec: net.Spec,
		Problem: solver.NewProblem(d, map[string][]value.Value{
			"c": {value.T},
			"b": {value.T, value.F},
		}, 6),
		LenCap:       6,
		MaxDecisions: 16,
	}
	if err := c.CheckQuiescent(context.Background()); err != nil {
		t.Error(err)
	}
	// Four complete outcomes (two bits), times interleavings; check the
	// projected b-sequences cover all four bit pairs.
	pairs := map[string]bool{}
	for _, tr := range c.OperationalQuiescent() {
		b := tr.Channel("b")
		if b.Len() == 2 {
			pairs[b.String()] = true
		}
	}
	if len(pairs) != 4 {
		t.Errorf("bit pairs produced: %v, want all 4", pairs)
	}
}

func TestImplicationConformance(t *testing.T) {
	for _, input := range []value.Value{value.T, value.F} {
		e := procs.Implication("imp", "c", "d")
		feeder := procs.ConstFeeder("env", "c", input)
		net := procs.WithFeeders("imp", e, feeder)
		d, err := net.Description()
		if err != nil {
			t.Fatal(err)
		}
		c := check.Conformance{
			Name: "imp-" + input.String(),
			Spec: net.Spec,
			Problem: solver.NewProblem(d, map[string][]value.Value{
				"imp.b": {value.T, value.F},
				"c":     {input},
				"d":     {value.T, value.F},
			}, 4),
			Visible:      trace.NewChanSet("c", "d"),
			LenCap:       4,
			MaxDecisions: 12,
		}
		if err := c.CheckQuiescent(context.Background()); err != nil {
			t.Error(err)
		}
		// Paper's trace table (Section 4.5): T input → both outputs
		// possible; F input → only F.
		outs := map[string]bool{}
		for _, tr := range c.OperationalQuiescent() {
			outs[tr.Channel("d").String()] = true
		}
		wantCount := 2
		if input.IsFalse() {
			wantCount = 1
		}
		if len(outs) != wantCount {
			t.Errorf("input %s: outputs %v, want %d distinct", input, outs, wantCount)
		}
	}
}

// TestBadImplicationExercise answers the Section 4.5 reader exercise
// mechanically: d ⟵ c AND d is not a description of the implication
// process because it rejects the legitimate trace (c,T)(d,T) — the d
// output would need itself as evidence.
func TestBadImplicationExercise(t *testing.T) {
	bad := procs.BadImplicationSystem("badimp", "c", "d").Combined()
	legit := trace.Of(trace.E("c", value.T), trace.E("d", value.T))
	if err := bad.IsSmoothFinite(legit); err == nil {
		t.Error("d ⟵ c AND d accepted (c,T)(d,T); the exercise expects rejection")
	}
	// It also wrongly rejects (c,F)(d,F) — F needs both operands under
	// the strict AND, and d's own history is still empty.
	legit2 := trace.Of(trace.E("c", value.F), trace.E("d", value.F))
	if err := bad.IsSmoothFinite(legit2); err == nil {
		t.Error("d ⟵ c AND d accepted (c,F)(d,F)")
	}
	// Whereas the paper's auxiliary-channel description accepts both
	// (after supplying the b event).
	good := procs.ImplicationSystem("imp", "b", "c", "d").Combined()
	withAux := trace.Of(
		trace.E("b", value.T), trace.E("c", value.T), trace.E("d", value.T),
	)
	if err := good.IsSmoothFinite(withAux); err != nil {
		t.Errorf("auxiliary description rejected %s: %v", withAux, err)
	}
}

// TestNonStrictAndExercise answers the second Section 4.5 exercise: with
// the non-strict AND, the description admits (d,F) before c has spoken —
// the process would owe an F output with no input, so it is NOT a valid
// description of implication.
func TestNonStrictAndExercise(t *testing.T) {
	ns := procs.NonStrictImplicationSystem("ns", "b", "c", "d").Combined()
	// b drew F, so nsAND(b, ε) = F already: the description licenses an
	// output with no input — smooth, but not a behaviour of the process.
	early := trace.Of(trace.E("b", value.F), trace.E("d", value.F))
	if err := ns.IsSmoothFinite(early); err != nil {
		t.Fatalf("expected the non-strict description to (wrongly) accept %s: %v", early, err)
	}
	// The strict description refuses the same trace.
	strict := procs.ImplicationSystem("imp", "b", "c", "d").Combined()
	if err := strict.IsSmoothFinite(early); err == nil {
		t.Error("strict description accepted an output with no input")
	}
}

func TestForkConformance(t *testing.T) {
	e := procs.Fork("fork", "c", "d", "e")
	net := procs.WithFeeders("fork", e, procs.ConstFeeder("env", "c", value.Int(5)))
	d, err := net.Description()
	if err != nil {
		t.Fatal(err)
	}
	c := check.Conformance{
		Name: "fork",
		Spec: net.Spec,
		Problem: solver.NewProblem(d, map[string][]value.Value{
			"fork.b": {value.T, value.F},
			"c":      value.Ints(5),
			"d":      value.Ints(5),
			"e":      value.Ints(5),
		}, 4),
		Visible:      trace.NewChanSet("c", "d", "e"),
		LenCap:       4,
		MaxDecisions: 12,
	}
	if err := c.CheckQuiescent(context.Background()); err != nil {
		t.Error(err)
	}
	// The item goes to exactly one of d, e.
	routes := map[string]bool{}
	for _, tr := range c.OperationalQuiescent() {
		dLen, eLen := tr.Channel("d").Len(), tr.Channel("e").Len()
		if dLen+eLen != 1 {
			t.Errorf("item mis-routed in %s", tr)
		}
		if dLen == 1 {
			routes["d"] = true
		} else {
			routes["e"] = true
		}
	}
	if !routes["d"] || !routes["e"] {
		t.Errorf("routes covered: %v, want both", routes)
	}
}

func TestFairRandomSeqOmega(t *testing.T) {
	e := procs.FairRandomSeq("frs", "c")
	// No finite smooth solution.
	p := solver.NewProblem(e.Comp.D, map[string][]value.Value{
		"c": {value.T, value.F},
	}, 4)
	res := solver.Enumerate(context.Background(), p)
	if len(res.Solutions) != 0 {
		t.Errorf("fair random has finite solutions: %v", res.SolutionKeys())
	}
	// Every finite bit string is a tree node (any prefix extends to a
	// fair sequence)...
	if res.Nodes != 1+2+4+8+16 {
		t.Errorf("tree nodes: %d, want the full binary tree 31", res.Nodes)
	}
	// ...and operationally every history is reachable.
	c := check.Conformance{
		Name:         "frs",
		Spec:         netsim.Spec{Name: "frs", Procs: []netsim.Proc{e.Proc}},
		Problem:      p,
		LenCap:       4,
		MaxDecisions: 8,
		Opts:         netsim.RealizeOpts{Limits: netsim.Limits{MaxEvents: 4}},
	}
	if err := c.CheckHistories(context.Background()); err != nil {
		t.Error(err)
	}
	// The alternating sequence is certified fair; the all-T sequence is
	// not (FALSE(c) never grows toward falses).
	alt := trace.CycleGen("alt", trace.Of(trace.E("c", value.T), trace.E("c", value.F)))
	if v := e.Comp.D.CheckOmega(alt, 20); !v.OmegaSolution() {
		t.Errorf("alternating bits not certified: %+v", v)
	}
	allT := trace.CycleGen("allT", trace.Of(trace.E("c", value.T)))
	if v := e.Comp.D.CheckOmega(allT, 20); v.OmegaSolution() {
		t.Error("T^ω certified as fair?!")
	}
}

func TestFiniteTicksFairness(t *testing.T) {
	e := procs.FiniteTicks("ft", "d")
	// Operationally: every (d,T)^i with i small is a quiescent trace.
	seen := map[int]bool{}
	for _, tr := range netsim.QuiescentTraces(netsim.Spec{Name: "ft", Procs: []netsim.Proc{e.Proc}}, 7, netsim.RealizeOpts{}) {
		for _, ev := range tr.Events() {
			if ev.Ch != "d" || !ev.Val.IsTrue() {
				t.Fatalf("unexpected event in %s", tr)
			}
		}
		seen[tr.Len()] = true
	}
	for i := 0; i <= 3; i++ {
		if !seen[i] {
			t.Errorf("(d,T)^%d not produced", i)
		}
	}
	// Denotationally (Section 8.2): (d,T)^i is the projection of an ω
	// smooth solution whose auxiliary c is fair. Witness for i = 2:
	// c = T T F (T F)^ω with d's ticks after their causes.
	witness := trace.BlockGen("ft-witness", func(i int) trace.Trace {
		switch i {
		case 0:
			return trace.Of(
				trace.E("ft.c", value.T), trace.E("d", value.T),
				trace.E("ft.c", value.T), trace.E("d", value.T),
				trace.E("ft.c", value.F),
			)
		default:
			return trace.Of(trace.E("ft.c", value.T), trace.E("ft.c", value.F))
		}
	})
	if v := e.Comp.D.CheckOmega(witness, 40); !v.OmegaSolution() {
		t.Errorf("finite-ticks witness not certified: %+v", v)
	}
	// The fairness claim: (d,T)^ω is NOT a trace — any candidate needs
	// c = T^ω, which fails the fair-random part.
	dTicks := trace.BlockGen("all-ticks", func(int) trace.Trace {
		return trace.Of(trace.E("ft.c", value.T), trace.E("d", value.T))
	})
	if v := e.Comp.D.CheckOmega(dTicks, 40); v.OmegaSolution() {
		t.Error("(d,T)^ω certified — the fairness property is broken")
	}
}

func TestRandomNumberConformance(t *testing.T) {
	e := procs.RandomNumber("rn", "d")
	// Operationally: outputs some single natural number, then halts.
	outs := map[int64]bool{}
	for _, tr := range netsim.QuiescentTraces(netsim.Spec{Name: "rn", Procs: []netsim.Proc{e.Proc}}, 7, netsim.RealizeOpts{}) {
		if tr.Channel("d").Len() != 1 {
			t.Fatalf("random number emitted %s", tr)
		}
		outs[tr.Channel("d").At(0).MustInt()] = true
	}
	for n := int64(0); n <= 2; n++ {
		if !outs[n] {
			t.Errorf("output %d not reachable", n)
		}
	}
	// Denotational witness for output 2: c = T T F (T F)^ω, d = ⟨2⟩.
	witness := trace.BlockGen("rn-witness", func(i int) trace.Trace {
		switch i {
		case 0:
			return trace.Of(
				trace.E("rn.c", value.T), trace.E("rn.c", value.T),
				trace.E("rn.c", value.F), trace.E("d", value.Int(2)),
			)
		default:
			return trace.Of(trace.E("rn.c", value.T), trace.E("rn.c", value.F))
		}
	})
	if v := e.Comp.D.CheckOmega(witness, 40); !v.OmegaSolution() {
		t.Errorf("random-number witness not certified: %+v", v)
	}
}

func TestFairMergeEntryAgainstFigure7(t *testing.T) {
	// The single-process FairMerge entry must behave like the Figure 7
	// network on the visible channels.
	fm := procs.FairMerge("fm", "c", "d", "e")
	spec := netsim.Spec{Name: "fm", Procs: []netsim.Proc{
		fm.Proc,
		netsim.Feeder("fc", "c", value.Int(10)),
		netsim.Feeder("fd", "d", value.Int(20)),
	}}
	single := map[string]bool{}
	for _, tr := range netsim.QuiescentTraces(spec, 24, netsim.RealizeOpts{}) {
		single[tr.Project(trace.NewChanSet("c", "d", "e")).String()] = true
	}

	net := procs.Fig7Network()
	net.Spec.Procs = append(net.Spec.Procs,
		netsim.Feeder("fc", "c", value.Int(10)),
		netsim.Feeder("fd", "d", value.Int(20)),
	)
	netTraces := map[string]bool{}
	for _, tr := range netsim.QuiescentTraces(net.Spec, 40, netsim.RealizeOpts{}) {
		netTraces[tr.Project(trace.NewChanSet("c", "d", "e")).String()] = true
	}
	for k := range single {
		if !netTraces[k] {
			t.Errorf("fair-merge trace %s not produced by the Figure 7 network", k)
		}
	}
	for k := range netTraces {
		if !single[k] {
			t.Errorf("Figure 7 trace %s not produced by the fair-merge process", k)
		}
	}
}

func TestCatalogueComponentsSatisfyDC(t *testing.T) {
	entries := []procs.Entry{
		procs.Copy("copy", "a", "b"),
		procs.SeededCopy("sc", "a", "b"),
		procs.FigP("p", "d", "b"),
		procs.FigQ("q", "d", "c"),
		procs.Ticks("t", "b"),
		procs.Naturals("n", "b"),
		procs.DFM("dfm", "b", "c", "d"),
		procs.BrockAckermannA("ba-a", "b", "c"),
		procs.BrockAckermannB("ba-b", "c", "b"),
		procs.Chaos("ch", "b", value.Ints(1)),
		procs.RandomBit("rb", "b"),
		procs.RandomBitSeq("rbs", "c", "b"),
		procs.Implication("imp", "c", "d"),
		procs.Fork("fork", "c", "d", "e"),
		procs.FairRandomSeq("frs", "c"),
		procs.FiniteTicks("ft", "d"),
		procs.RandomNumber("rn", "d"),
		procs.FairMerge("fm", "c", "d", "e"),
		procs.Tagger("tag", "c", "c'", 0),
		procs.Untagger("untag", "b", "e"),
		procs.TaggedMergeD("tmd", "c'", "d'", "b"),
		procs.ConstFeeder("feed", "c", value.Int(1)),
	}
	for _, e := range entries {
		if err := e.Comp.CheckDC(); err != nil {
			t.Errorf("%s: %v", e.Comp.Name, err)
		}
		for _, aux := range e.Aux {
			if !e.Comp.Incident.Has(aux) {
				t.Errorf("%s: auxiliary %s not in incident set", e.Comp.Name, aux)
			}
			if e.Visible().Has(aux) {
				t.Errorf("%s: auxiliary %s still visible", e.Comp.Name, aux)
			}
		}
	}
}

func TestFlipCoverageViaChoose(t *testing.T) {
	// Exhaustive realization covers oracle outcomes: both random-bit
	// outputs are realizable targets.
	e := procs.RandomBit("rb", "b")
	spec := netsim.Spec{Name: "rb", Procs: []netsim.Proc{e.Proc}}
	for _, want := range []bool{true, false} {
		target := trace.Of(trace.E("b", bit(want)))
		if r := netsim.Realize(spec, target, netsim.RealizeOpts{}); !r.Found {
			t.Errorf("output %v not realizable", want)
		}
	}
}
