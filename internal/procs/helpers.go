package procs

import (
	"smoothproc/internal/desc"
	"smoothproc/internal/fn"
	"smoothproc/internal/netsim"
	"smoothproc/internal/seq"
	"smoothproc/internal/trace"
	"smoothproc/internal/value"
)

// ConstFeeder is the environment of an open network: a process that sends
// the fixed values on ch and halts, described by ch ⟵ ⟨vals⟩. Feeding
// inputs this way keeps input events in the network trace, matching the
// paper's convention that a history records every send, including those
// of the environment.
func ConstFeeder(name, ch string, vals ...value.Value) Entry {
	return Entry{
		Proc: netsim.Feeder(name, ch, vals...),
		Comp: desc.Component{
			Name:     name,
			Incident: trace.NewChanSet(ch),
			D:        desc.MustNew(name, fn.ChanFn(ch), fn.ConstTraceFn(seq.Of(vals...))),
		},
	}
}

// WithFeeders builds a closed network entry from a process entry plus
// constant feeders for its input channels.
func WithFeeders(name string, e Entry, feeders ...Entry) NetworkEntry {
	spec := netsim.Spec{Name: name, Procs: []netsim.Proc{e.Proc}}
	net := desc.Network{Name: name, Components: []desc.Component{e.Comp}}
	for _, f := range feeders {
		spec.Procs = append(spec.Procs, f.Proc)
		net.Components = append(net.Components, f.Comp)
	}
	return NetworkEntry{Spec: spec, Net: net}
}
