package session

import (
	"context"
	"fmt"

	"smoothproc/internal/desc"
	"smoothproc/internal/solver"
	"smoothproc/internal/trace"
	"smoothproc/internal/value"
)

// DeltaCheckReport accounts a delta-solve differential check: how the
// fresh solutions of the eliminated system line up with the projected
// session solutions.
type DeltaCheckReport struct {
	// FreshNodes is the node count of the fresh solve — the work the
	// delta-solve avoided.
	FreshNodes int
	// Matched counts fresh solutions equal to a projected session
	// solution (the Theorem 5 image).
	Matched int
	// BeyondHorizon counts fresh solutions whose Theorem 6 witness is
	// longer than the session's depth bound: real solutions of the
	// eliminated system whose originals lie beyond the session's horizon,
	// the one legitimate way projected ⊊ fresh.
	BeyondHorizon int
}

// DeltaCheck is the differential guard on Delta: it solves the
// eliminated system fresh at the session's depth and verifies that memo
// and result reuse cannot have changed Solutions —
//
//   - Theorem 5 direction: every projected session solution is a fresh
//     solution of the eliminated system;
//   - Theorem 6 direction: every fresh solution not in the projection
//     lifts, by the theorem's explicit chain construction, to a smooth
//     solution of the original system that is longer than the session's
//     depth bound (witnesses within the bound would mean the session
//     missed a solution).
//
// Any violation is returned as an error; a nil error certifies the
// delta-solve's Solutions against the from-scratch answer.
func (s *Session) DeltaCheck(ctx context.Context, d DeltaResult, workers int) (DeltaCheckReport, error) {
	s.mu.Lock()
	if s.cp == nil {
		s.mu.Unlock()
		return DeltaCheckReport{}, fmt.Errorf("session: delta check before the first solve")
	}
	depth := s.cp.MaxDepth()
	base := s.p
	orig := s.sys
	s.mu.Unlock()

	alph := make(map[string][]value.Value, len(base.Alphabet))
	for c, vs := range base.Alphabet {
		if c != d.Channel {
			alph[c] = vs
		}
	}
	fp := solver.NewProblem(d.System.Combined(), alph, depth)
	fp.Compiled = base.Compiled
	fp.CollectVisited = false

	var fresh solver.Result
	if workers == 0 || workers == 1 {
		fresh = solver.Enumerate(ctx, fp)
	} else {
		fresh = solver.EnumerateParallel(ctx, fp, workers)
	}
	if fresh.Truncated {
		return DeltaCheckReport{}, fmt.Errorf("session: fresh solve of %s was truncated; delta check needs a complete reference", d.System.Name)
	}

	freshByKey := bucket(fresh.Solutions)
	projByKey := bucket(d.Solutions)
	rep := DeltaCheckReport{FreshNodes: fresh.Nodes}

	for _, p := range d.Solutions {
		if !member(freshByKey, p) {
			return rep, fmt.Errorf("session: Theorem 5 violation: projected solution %s is not a solution of the eliminated system %s", p, d.System.Name)
		}
	}
	for _, sc := range fresh.Solutions {
		if member(projByKey, sc) {
			rep.Matched++
			continue
		}
		w, err := desc.Theorem6Witness(orig, d.Index, d.Channel, sc)
		if err != nil {
			return rep, fmt.Errorf("session: fresh solution %s of %s does not lift (Theorem 6): %w", sc, d.System.Name, err)
		}
		if w.Len() <= depth {
			return rep, fmt.Errorf("session: fresh solution %s lifts to %s within the session depth %d, yet the session's projection misses it — the delta reuse is unsound", sc, w, depth)
		}
		rep.BeyondHorizon++
	}
	return rep, nil
}

// bucket indexes traces by Key with Equal-confirmed candidate sets.
func bucket(ts []trace.Trace) map[trace.Key][]trace.Trace {
	m := make(map[trace.Key][]trace.Trace, len(ts))
	for _, t := range ts {
		m[t.Key()] = append(m[t.Key()], t)
	}
	return m
}

func member(m map[trace.Key][]trace.Trace, t trace.Trace) bool {
	for _, c := range m[t.Key()] {
		if c.Equal(t) {
			return true
		}
	}
	return false
}
