package session

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"smoothproc/internal/trace"
)

// fetchFrom builds a fetcher over an in-memory ref→blob map — the shape
// the service's content-addressed store provides.
func fetchFrom(blobs map[string][]byte) func(string) ([]byte, error) {
	return func(ref string) ([]byte, error) {
		b, ok := blobs[ref]
		if !ok {
			return nil, fmt.Errorf("no blob %s", ref)
		}
		return b, nil
	}
}

func encodeToMap(t *testing.T, s *Session, blobs map[string][]byte) []byte {
	t.Helper()
	b, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if b.CheckpointRef != "" {
		sum := sha256.Sum256(b.Checkpoint)
		if hex.EncodeToString(sum[:]) != b.CheckpointRef {
			t.Fatalf("checkpoint ref %s does not hash its blob", b.CheckpointRef)
		}
		blobs[b.CheckpointRef] = b.Checkpoint
	}
	return b.Meta
}

// TestSessionCodecRoundTrip: a session survives encode/decode with its
// leg counters, depth, and — the real contract — a deepening solve on
// the decoded session byte-identical to one on the live session.
func TestSessionCodecRoundTrip(t *testing.T) {
	ctx := context.Background()
	live := dfmSession(t)
	if _, _, err := live.Solve(ctx, Options{Depth: 2}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := live.Solve(ctx, Options{Depth: 2}); err != nil { // one replay for the counters
		t.Fatal(err)
	}

	blobs := map[string][]byte{}
	meta := encodeToMap(t, live, blobs)

	dec, err := Decode(meta, coldProblem(t, 2), dfmSession(t).System(), fetchFrom(blobs))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Key() != live.Key() || dec.Depth() != live.Depth() || dec.Nodes() != live.Nodes() {
		t.Fatalf("decoded identity (%s,%d,%d) != live (%s,%d,%d)",
			dec.Key(), dec.Depth(), dec.Nodes(), live.Key(), live.Depth(), live.Nodes())
	}
	ls, lr, lp := live.Counts()
	ds, dr, dp := dec.Counts()
	if ls != ds || lr != dr || lp != dp {
		t.Fatalf("decoded counts (%d,%d,%d) != live (%d,%d,%d)", ds, dr, dp, ls, lr, lp)
	}

	wantRes, wantOut, err := live.Solve(ctx, Options{Depth: 4})
	if err != nil || wantOut != Resumed {
		t.Fatalf("live deepen: %v %v", wantOut, err)
	}
	gotRes, gotOut, err := dec.Solve(ctx, Options{Depth: 4})
	if err != nil || gotOut != Resumed {
		t.Fatalf("decoded deepen: %v %v", gotOut, err)
	}
	if !reflect.DeepEqual(keys(gotRes.Solutions), keys(wantRes.Solutions)) ||
		gotRes.Nodes != wantRes.Nodes {
		t.Fatalf("decoded session deepened to %v (%d nodes), live %v (%d nodes)",
			keys(gotRes.Solutions), gotRes.Nodes, keys(wantRes.Solutions), wantRes.Nodes)
	}
	if g, w := gotRes.Stats.Deterministic(), wantRes.Stats.Deterministic(); !reflect.DeepEqual(g, w) {
		t.Fatalf("deterministic stats diverged:\n got %+v\nwant %+v", g, w)
	}
}

// TestSessionCodecUnsolved: a never-solved session round-trips with no
// checkpoint blob and comes back cold-solvable.
func TestSessionCodecUnsolved(t *testing.T) {
	s := dfmSession(t)
	b, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if b.Checkpoint != nil || b.CheckpointRef != "" {
		t.Fatalf("unsolved session produced a checkpoint blob (%d bytes, ref %q)", len(b.Checkpoint), b.CheckpointRef)
	}
	dec, err := Decode(b.Meta, coldProblem(t, 4), s.System(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := dec.Result(); ok {
		t.Fatal("decoded unsolved session reports a result")
	}
	if _, out, err := dec.Solve(context.Background(), Options{Depth: 2}); err != nil || out != Cold {
		t.Fatalf("decoded unsolved session: outcome %v err %v", out, err)
	}
}

// TestSessionCodecCorrupt: a checkpoint blob that does not hash to its
// reference is rejected before decoding; mangled meta fails closed.
func TestSessionCodecCorrupt(t *testing.T) {
	ctx := context.Background()
	live := dfmSession(t)
	if _, _, err := live.Solve(ctx, Options{Depth: 2}); err != nil {
		t.Fatal(err)
	}
	b, err := live.Encode()
	if err != nil {
		t.Fatal(err)
	}

	// Wrong payload under the right ref.
	bad := bytes.Clone(b.Checkpoint)
	bad[len(bad)/2] ^= 0xff
	_, err = Decode(b.Meta, coldProblem(t, 2), live.System(), fetchFrom(map[string][]byte{b.CheckpointRef: bad}))
	if err == nil {
		t.Fatal("decode accepted a checkpoint that does not hash to its reference")
	}
	if !errors.Is(err, trace.ErrCorrupt) {
		t.Fatalf("hash-mismatch error %v does not wrap trace.ErrCorrupt", err)
	}

	// Meta corruption never panics; every truncation fails closed.
	for n := 0; n < len(b.Meta); n++ {
		if _, err := Decode(b.Meta[:n], coldProblem(t, 2), live.System(), fetchFrom(nil)); err == nil {
			t.Fatalf("decoding %d/%d meta bytes succeeded", n, len(b.Meta))
		}
	}

	// Missing checkpoint blob is a load error, not a zero session.
	if _, err := Decode(b.Meta, coldProblem(t, 2), live.System(), fetchFrom(map[string][]byte{})); err == nil {
		t.Fatal("decode with a missing checkpoint blob succeeded")
	}
}

// TestSessionCodecDeterministic: same session, same blobs — what lets
// the service content-address checkpoints and skip redundant writes.
func TestSessionCodecDeterministic(t *testing.T) {
	ctx := context.Background()
	s := dfmSession(t)
	if _, _, err := s.Solve(ctx, Options{Depth: 3, Workers: 2}); err != nil {
		t.Fatal(err)
	}
	b1, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Meta, b2.Meta) || !bytes.Equal(b1.Checkpoint, b2.Checkpoint) {
		t.Fatal("re-encoding the session changed a blob")
	}
	if k, err := MetaKey(b1.Meta); err != nil || k != "dfm" {
		t.Fatalf("MetaKey = %q, %v", k, err)
	}
	// Delta-solves still work on a decoded session (the System flows
	// through untouched).
	dec, err := Decode(b1.Meta, coldProblem(t, 3), s.System(), fetchFrom(map[string][]byte{b1.CheckpointRef: b1.Checkpoint}))
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.Delta(2, "b")
	if err != nil {
		t.Fatal(err)
	}
	got, err := dec.Delta(2, "b")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(keys(got.Solutions), keys(want.Solutions)) {
		t.Fatalf("decoded delta %v, live %v", keys(got.Solutions), keys(want.Solutions))
	}
}
