package session

import (
	"context"
	"sync"
	"testing"

	"smoothproc/internal/eqlang"
	"smoothproc/internal/trace"
)

// TestRaceConcurrentResumeAndReaders drives one session from many
// goroutines under the race detector: concurrent deepening solves with
// streaming callbacks, replays, stat readers and delta-solves. Solves
// serialize on the session lock; readers interleave freely; the streamed
// callbacks append to goroutine-local buffers handed off via a mutex —
// the shape the service's streaming endpoint uses.
func TestRaceConcurrentResumeAndReaders(t *testing.T) {
	ctx := context.Background()
	s := dfmSession(t)
	if _, _, err := s.Solve(ctx, Options{Depth: 1}); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	streams := make(map[int][]string)

	var wg sync.WaitGroup
	// Deepening writers: each pushes the session at least as deep as its
	// target, streaming the canonical prefix + new solutions.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var got []string
			_, _, err := s.Solve(ctx, Options{
				Depth:   2 + i%3,
				Workers: i % 3,
				OnSolution: func(tr trace.Trace) {
					got = append(got, tr.String())
				},
			})
			if err != nil {
				// A depth-shrink error is a legitimate race outcome: another
				// goroutine deepened the session past this one's target
				// before it ran. Nothing was streamed, so skip the record.
				return
			}
			mu.Lock()
			streams[i] = got
			mu.Unlock()
		}(i)
	}
	// Readers: poll the session's view while solves run.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				_ = s.Depth()
				_ = s.Nodes()
				_ = s.FrontierSize()
				_ = s.MemoEntries()
				if res, ok := s.Result(); ok {
					_ = len(res.Solutions)
				}
				_, _, _ = s.Counts()
			}
		}()
	}
	// Delta readers: projection and differential check against the live
	// session (skipping while the session is still truncated or racing).
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 3; j++ {
				d, err := s.Delta(2, "b")
				if err != nil {
					continue
				}
				if _, err := s.DeltaCheck(ctx, d, 2); err != nil {
					t.Errorf("delta check under concurrency: %v", err)
				}
			}
		}()
	}
	wg.Wait()

	// Every successful stream must be a prefix-consistent canonical
	// sequence: the streamed solutions of a solve at depth d are exactly
	// the solutions of the session's result after that solve, and all
	// streams agree on their common prefix.
	mu.Lock()
	defer mu.Unlock()
	for i, a := range streams {
		for j, b := range streams {
			if j <= i {
				continue
			}
			n := len(a)
			if len(b) < n {
				n = len(b)
			}
			for k := 0; k < n; k++ {
				if a[k] != b[k] {
					t.Fatalf("streams %d and %d disagree at %d: %q vs %q", i, j, k, a[k], b[k])
				}
			}
		}
	}
}

// TestRaceConcurrentEncodeDuringResume hammers the persistence surface
// the durable store added: goroutines Encode the session while others
// deepen it. Every snapshot taken mid-flight must be internally
// consistent — it decodes cleanly against the same problem, and a
// session rebuilt from it deepens to exactly the reference answer. A
// torn snapshot (frontier from one depth, commit pointer from another)
// would either fail Decode or diverge on the deepen.
func TestRaceConcurrentEncodeDuringResume(t *testing.T) {
	ctx := context.Background()
	prog, err := eqlang.CompileSource(dfmSrc)
	if err != nil {
		t.Fatal(err)
	}
	p := prog.Problem()
	p.CollectVisited = false

	s := New("dfm", p, prog.System)
	if _, _, err := s.Solve(ctx, Options{Depth: 1}); err != nil {
		t.Fatal(err)
	}

	// Reference: the depth-4 answer a never-snapshotted session reaches.
	ref := New("dfm-ref", p, prog.System)
	refRes, _, err := ref.Solve(ctx, Options{Depth: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := keys(refRes.Solutions)

	var mu sync.Mutex
	var blobs []Blob

	var wg sync.WaitGroup
	// Writers deepen the session toward depth 4 while encoders snapshot.
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Depth-shrink errors are legitimate when another goroutine
			// already deepened past this target.
			_, _, _ = s.Solve(ctx, Options{Depth: 2 + i})
		}(i)
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				b, err := s.Encode()
				if err != nil {
					t.Errorf("encode under concurrent resume: %v", err)
					return
				}
				mu.Lock()
				blobs = append(blobs, b)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	for i, b := range blobs {
		fetch := func(ref string) ([]byte, error) {
			if ref != b.CheckpointRef {
				t.Fatalf("blob %d: fetch of unknown ref %q (have %q)", i, ref, b.CheckpointRef)
			}
			return b.Checkpoint, nil
		}
		restored, err := Decode(b.Meta, p, prog.System, fetch)
		if err != nil {
			t.Fatalf("blob %d does not decode: %v", i, err)
		}
		if d := restored.Depth(); d < 1 || d > 4 {
			t.Fatalf("blob %d restored at impossible depth %d", i, d)
		}
		res, _, err := restored.Solve(ctx, Options{Depth: 4})
		if err != nil {
			t.Fatalf("blob %d: deepen after restore: %v", i, err)
		}
		if got := keys(res.Solutions); !equalStrings(got, want) {
			t.Fatalf("blob %d: restored session diverged: %v, want %v", i, got, want)
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
