package session

import (
	"context"
	"reflect"
	"testing"

	"smoothproc/internal/eqlang"
	"smoothproc/internal/solver"
	"smoothproc/internal/trace"
)

// dfmSrc is the Figure 2 discriminated fair merge (specs/fig2-dfm.eq):
// channels b and c are eliminable, which the delta tests rely on.
const dfmSrc = `
alphabet b = {0}
alphabet c = {1}
alphabet d = {0, 1}
depth 4
desc even(d) <- b
desc odd(d)  <- c
desc b <- [0]
desc c <- [1]
`

func dfmSession(t *testing.T) *Session {
	t.Helper()
	prog, err := eqlang.CompileSource(dfmSrc)
	if err != nil {
		t.Fatal(err)
	}
	p := prog.Problem()
	p.CollectVisited = false
	return New("dfm", p, prog.System)
}

func keys(ts []trace.Trace) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.String()
	}
	return out
}

func TestSessionLifecycle(t *testing.T) {
	ctx := context.Background()
	s := dfmSession(t)
	if _, ok := s.Result(); ok {
		t.Fatal("fresh session reports a result")
	}

	res2, out, err := s.Solve(ctx, Options{Depth: 2})
	if err != nil || out != Cold {
		t.Fatalf("first solve: outcome %v, err %v", out, err)
	}
	cold2 := solver.Enumerate(ctx, coldProblem(t, 2))
	if !reflect.DeepEqual(keys(res2.Solutions), keys(cold2.Solutions)) {
		t.Fatalf("depth-2 solutions %v, want %v", keys(res2.Solutions), keys(cold2.Solutions))
	}

	res4, out, err := s.Solve(ctx, Options{Depth: 4, Workers: 2})
	if err != nil || out != Resumed {
		t.Fatalf("deepen: outcome %v, err %v", out, err)
	}
	cold4 := solver.Enumerate(ctx, coldProblem(t, 4))
	if !reflect.DeepEqual(keys(res4.Solutions), keys(cold4.Solutions)) {
		t.Fatalf("depth-4 solutions %v, want %v", keys(res4.Solutions), keys(cold4.Solutions))
	}
	if res4.Nodes != cold4.Nodes {
		t.Fatalf("deepened session classified %d nodes, cold %d", res4.Nodes, cold4.Nodes)
	}

	var replayed []string
	resR, out, err := s.Solve(ctx, Options{Depth: 4, OnSolution: func(tr trace.Trace) {
		replayed = append(replayed, tr.String())
	}})
	if err != nil || out != Replayed {
		t.Fatalf("replay: outcome %v, err %v", out, err)
	}
	if !reflect.DeepEqual(keys(resR.Solutions), keys(res4.Solutions)) {
		t.Fatal("replay returned a different result")
	}
	if !reflect.DeepEqual(replayed, keys(res4.Solutions)) {
		t.Fatalf("replay streamed %v, want %v", replayed, keys(res4.Solutions))
	}

	if _, _, err := s.Solve(ctx, Options{Depth: 3}); err == nil {
		t.Fatal("shrinking the depth should fail")
	}
	if solves, resumes, replays := counts(s); solves != 3 || resumes != 1 || replays != 1 {
		t.Fatalf("counts (%d,%d,%d), want (3,1,1)", solves, resumes, replays)
	}
	if s.Depth() != 4 || s.Nodes() != cold4.Nodes || s.MemoEntries() == 0 {
		t.Fatalf("accessors: depth %d nodes %d memo %d", s.Depth(), s.Nodes(), s.MemoEntries())
	}
}

func counts(s *Session) (int, int, int) { return s.Counts() }

func coldProblem(t *testing.T, depth int) solver.Problem {
	t.Helper()
	prog, err := eqlang.CompileSource(dfmSrc)
	if err != nil {
		t.Fatal(err)
	}
	p := prog.Problem()
	p.MaxDepth = depth
	p.CollectVisited = false
	return p
}

// TestSessionStream checks that a cold leg plus a resumed leg stream the
// exact canonical solution order of a full solve.
func TestSessionStream(t *testing.T) {
	ctx := context.Background()
	s := dfmSession(t)
	var stream []string
	emit := func(tr trace.Trace) { stream = append(stream, tr.String()) }

	if _, _, err := s.Solve(ctx, Options{Depth: 2, OnSolution: emit}); err != nil {
		t.Fatal(err)
	}
	coldLen := len(stream)
	res, _, err := s.Solve(ctx, Options{Depth: 4, Workers: 3, OnSolution: emit})
	if err != nil {
		t.Fatal(err)
	}
	// The resumed leg re-emits the stored prefix, then the new solutions.
	want := append(stream[:coldLen:coldLen], keys(res.Solutions)...)
	if !reflect.DeepEqual(stream, want) {
		t.Fatalf("stream %v, want %v", stream, want)
	}
}

// TestSessionBudgetResume truncates the first leg on a node budget and
// finishes with a second, checking the end state matches a cold solve.
func TestSessionBudgetResume(t *testing.T) {
	ctx := context.Background()
	s := dfmSession(t)
	res, out, err := s.Solve(ctx, Options{Depth: 4, MaxNodes: 5})
	if err != nil || out != Cold {
		t.Fatalf("outcome %v, err %v", out, err)
	}
	if !res.Truncated {
		t.Fatal("budget of 5 nodes did not truncate")
	}
	if _, err := s.Delta(2, "b"); err == nil {
		t.Fatal("delta on a truncated session should fail")
	}
	res, out, err = s.Solve(ctx, Options{Depth: 4})
	if err != nil || out != Resumed {
		t.Fatalf("budget resume: outcome %v, err %v", out, err)
	}
	cold := solver.Enumerate(ctx, coldProblem(t, 4))
	if res.Truncated || res.Nodes != cold.Nodes || !reflect.DeepEqual(keys(res.Solutions), keys(cold.Solutions)) {
		t.Fatalf("resumed end state (%v,%d) differs from cold (%d)", res.Truncated, res.Nodes, cold.Nodes)
	}
}

func TestSessionDelta(t *testing.T) {
	ctx := context.Background()
	s := dfmSession(t)
	if _, err := s.Delta(2, "b"); err == nil {
		t.Fatal("delta before the first solve should fail")
	}
	if _, _, err := s.Solve(ctx, Options{Depth: 4}); err != nil {
		t.Fatal(err)
	}

	d, err := s.Delta(2, "b")
	if err != nil {
		t.Fatal(err)
	}
	if d.Channel != "b" || len(d.Solutions) == 0 {
		t.Fatalf("delta: %+v", d)
	}
	for _, tr := range d.Solutions {
		for _, e := range tr.Events() {
			if e.Ch == "b" {
				t.Fatalf("projected solution %s still mentions b", tr)
			}
		}
	}
	// Canonical order: nondecreasing length, lexicographic within.
	for i := 1; i < len(d.Solutions); i++ {
		a, b := d.Solutions[i-1], d.Solutions[i]
		if a.Len() > b.Len() || (a.Len() == b.Len() && a.String() >= b.String()) {
			t.Fatalf("projected solutions out of canonical order at %d: %s, %s", i, a, b)
		}
	}

	rep, err := s.DeltaCheck(ctx, d, 2)
	if err != nil {
		t.Fatalf("delta check: %v (report %+v)", err, rep)
	}
	if rep.Matched != len(d.Solutions) {
		t.Fatalf("delta check matched %d of %d projected solutions", rep.Matched, len(d.Solutions))
	}
	if rep.FreshNodes == 0 {
		t.Fatal("delta check reports an empty fresh solve")
	}

	// A non-defining index must be rejected by the elimination conditions.
	if _, err := s.Delta(0, "d"); err == nil {
		t.Fatal("eliminating via a non-defining description should fail")
	}
}
