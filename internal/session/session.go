// Package session implements resumable solve sessions: a session binds a
// problem identity (the spec hash in the service) to a capture-mode
// solver checkpoint — the classified canonical prefix, the retained
// frontier of depth-bound sons, the commit pointer and the evaluator
// memo handle — so that re-solving the same spec at larger bounds
// deepens the existing search instead of starting cold, and re-solving
// at the same bounds replays the stored result.
//
// On top of the checkpoint the session offers Theorem 5/6 delta-solves:
// when a spec edit is a variable elimination (specvet's eliminable
// verdict), the session's solutions project — per Theorem 5 — onto the
// solutions of the eliminated system, so the edit is answered from
// retained state instead of invalidating it. DeltaCheck is the
// differential guard: it solves the eliminated system fresh and checks
// the projection against it in both directions (Theorem 6 lifting the
// converse), so reuse can never silently change Solutions.
package session

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"smoothproc/internal/desc"
	"smoothproc/internal/solver"
	"smoothproc/internal/trace"
)

// Options bound one Solve call.
type Options struct {
	// Depth is the requested depth bound. It may not shrink below the
	// session's current depth; equal depth replays, larger depth resumes.
	// 0 means the session's current depth.
	Depth int
	// MaxNodes is the total node budget (0 = unbounded). A truncated
	// session resumes when the budget grows.
	MaxNodes int
	// Workers > 1 selects the parallel search (< 0 uses GOMAXPROCS); 0 or
	// 1 solves sequentially. Legs may switch freely.
	Workers int
	// OnSolution, when non-nil, receives the complete solution stream of
	// the search in canonical BFS order: stored prefix solutions are
	// replayed first, then new solutions arrive as the resumed leg
	// classifies them. Must not block (see solver.Problem.OnSolution).
	OnSolution func(trace.Trace)
}

// Outcome says how a Solve call was answered.
type Outcome int

const (
	// Cold: the first solve of the session, run from the root.
	Cold Outcome = iota
	// Replayed: the stored result already covers the requested bounds.
	Replayed
	// Resumed: the search re-entered BFS from the retained frontier (or
	// pending queue) and classified only the new nodes.
	Resumed
)

func (o Outcome) String() string {
	switch o {
	case Cold:
		return "cold"
	case Replayed:
		return "replayed"
	case Resumed:
		return "resumed"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// Session is one resumable solve: a problem, its capture checkpoint and
// the latest result. Safe for concurrent use: Solve calls serialize on
// the session (the checkpoint is single-flight by design) and readers
// see the latest completed leg.
type Session struct {
	mu  sync.Mutex
	key string
	sys desc.System
	p   solver.Problem // bounds track the latest leg

	cp  *solver.Checkpoint
	res solver.Result

	solves  int
	resumes int
	replays int
}

// New builds a session for the given problem. The key identifies the
// problem (the service uses the spec hash); sys is the pre-elimination
// system the problem's description combines, needed for delta-solves
// (pass a zero System if delta-solves are not used).
func New(key string, p solver.Problem, sys desc.System) *Session {
	return &Session{key: key, sys: sys, p: p}
}

// Key returns the session's problem identity.
func (s *Session) Key() string { return s.key }

// Solve answers the requested bounds from the session: cold on first
// use, replayed when the stored result already covers them, resumed from
// the retained frontier otherwise. Resumed legs stay in capture mode, so
// the session remains resumable afterwards; note the capture-mode stats
// caveat in package solver (bound levels are fully expanded, and
// Stats.RetainedSons counts the sons held for the next resume).
func (s *Session) Solve(ctx context.Context, o Options) (solver.Result, Outcome, error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	if s.cp == nil {
		p := s.p
		if o.Depth > 0 {
			p.MaxDepth = o.Depth
		}
		p.MaxNodes = o.MaxNodes
		p.OnSolution = o.OnSolution
		var res solver.Result
		var cp *solver.Checkpoint
		if o.Workers == 0 || o.Workers == 1 {
			res, cp = solver.EnumerateCapture(ctx, p)
		} else {
			res, cp = solver.EnumerateParallelCapture(ctx, p, o.Workers)
		}
		p.OnSolution = nil
		s.p = p
		s.cp = cp
		s.res = res
		s.solves++
		return res, Cold, nil
	}

	depth := o.Depth
	if depth == 0 {
		depth = s.cp.MaxDepth()
	}
	if depth < s.cp.MaxDepth() {
		return solver.Result{}, 0, fmt.Errorf("session %s: requested depth %d below the session depth %d (sessions only deepen; start a new session to shrink)",
			s.key, depth, s.cp.MaxDepth())
	}

	deepen := depth > s.cp.MaxDepth()
	moreBudget := s.res.Truncated && (o.MaxNodes == 0 || o.MaxNodes > s.res.Nodes)
	if !deepen && !moreBudget {
		// The stored result covers the request: replay it, re-emitting the
		// canonical solution stream for streaming clients.
		if o.OnSolution != nil {
			for _, t := range s.res.Solutions {
				o.OnSolution(t)
			}
		}
		s.solves++
		s.replays++
		return s.res, Replayed, nil
	}

	if o.OnSolution != nil {
		// Replay the stored prefix; the resume emits only new solutions,
		// which in canonical BFS order all follow the stored ones.
		for _, t := range s.res.Solutions {
			o.OnSolution(t)
		}
	}
	res, err := s.cp.Resume(ctx, solver.ResumeOpts{
		MaxDepth:   depth,
		MaxNodes:   o.MaxNodes,
		Workers:    o.Workers,
		OnSolution: o.OnSolution,
	})
	if err != nil {
		return solver.Result{}, 0, err
	}
	s.res = res
	s.solves++
	s.resumes++
	return res, Resumed, nil
}

// Result returns the latest leg's result; ok is false before the first
// Solve. The slices must be treated as read-only.
func (s *Session) Result() (res solver.Result, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.res, s.cp != nil
}

// Depth returns the session's current depth bound.
func (s *Session) Depth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cp == nil {
		return s.p.MaxDepth
	}
	return s.cp.MaxDepth()
}

// Nodes returns the commit pointer — nodes classified so far.
func (s *Session) Nodes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cp == nil {
		return 0
	}
	return s.cp.Nodes()
}

// FrontierSize returns the retained frontier's node count.
func (s *Session) FrontierSize() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cp == nil {
		return 0
	}
	return s.cp.FrontierSize()
}

// MemoEntries returns the evaluator memo footprint the session retains.
func (s *Session) MemoEntries() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cp == nil {
		return 0
	}
	return s.cp.MemoEntries()
}

// Counts returns (solves, resumes, replays) so far.
func (s *Session) Counts() (solves, resumes, replays int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.solves, s.resumes, s.replays
}

// System returns the pre-elimination system the session was built with.
func (s *Session) System() desc.System { return s.sys }

// DeltaResult is a delta-solve's answer: the eliminated system and the
// session's solutions projected away from the eliminated channel
// (Theorem 5), deduplicated and in canonical (length, then lexicographic)
// order.
type DeltaResult struct {
	System    desc.System
	Index     int
	Channel   string
	Solutions []trace.Trace
	// Distinct counts the session solutions that survived projection as
	// distinct traces (several originals may project to one).
	Distinct int
	// FromNodes is the session's commit pointer at delta time — the
	// search work the projection reused instead of redoing.
	FromNodes int
}

// Delta answers a Theorem 5/6 variable elimination from retained state:
// the description at idx must define the channel b (desc.Eliminate's
// contract — specvet's eliminable verdict gates this in the service),
// and every session solution projects onto a solution of the eliminated
// system. No search runs; the session's solutions are projected,
// deduplicated and canonically ordered.
//
// The projection is exact only for a complete session (not truncated):
// a truncated session may be missing solutions whose projections the
// eliminated system has. Delta refuses truncated sessions.
func (s *Session) Delta(idx int, b string) (DeltaResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cp == nil {
		return DeltaResult{}, errors.New("session: delta before the first solve")
	}
	if len(s.sys.Descs) == 0 {
		return DeltaResult{}, errors.New("session: delta on a session without a system (built from a bare problem)")
	}
	if s.res.Truncated {
		return DeltaResult{}, fmt.Errorf("session %s: delta on a truncated session would under-report solutions; raise the budget and resume first", s.key)
	}
	elim, err := desc.Eliminate(s.sys, idx, b)
	if err != nil {
		return DeltaResult{}, err
	}
	keep := trace.NewChanSet(s.p.Channels...).Without(b)
	projected := projectDedupe(s.res.Solutions, keep)
	return DeltaResult{
		System:    elim,
		Index:     idx,
		Channel:   b,
		Solutions: projected,
		Distinct:  len(projected),
		FromNodes: s.cp.Nodes(),
	}, nil
}

// projectDedupe projects traces onto keep, deduplicates (several traces
// may share a projection) and sorts canonically: by length, then by the
// rendered trace. Keys are hashes, so buckets are candidate sets
// confirmed with Equal (the repository's hash-key transparency rule).
func projectDedupe(ts []trace.Trace, keep trace.ChanSet) []trace.Trace {
	seen := make(map[trace.Key][]trace.Trace, len(ts))
	out := make([]trace.Trace, 0, len(ts))
	for _, t := range ts {
		p := t.Project(keep)
		k := p.Key()
		dup := false
		for _, c := range seen[k] {
			if c.Equal(p) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		seen[k] = append(seen[k], p)
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Len() != out[j].Len() {
			return out[i].Len() < out[j].Len()
		}
		return out[i].String() < out[j].String()
	})
	return out
}
