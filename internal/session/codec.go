// Session serialization. A session splits into two blobs so the service
// can store them content-addressed: a small meta blob (identity, bounds,
// leg counters) and the checkpoint blob it references by SHA-256 — the
// heavy part, holding the classified prefix, frontier and evaluator memo
// through the solver codec. Decode verifies the fetched checkpoint
// against the reference before trusting a byte of it, so a store that
// hands back the wrong (or bit-rotted) blob fails closed.
//
// Like the checkpoint codec, function values do not serialize: Decode
// takes the Problem and System rebuilt from the stored spec source.
package session

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"smoothproc/internal/desc"
	"smoothproc/internal/solver"
	"smoothproc/internal/trace"
)

// sessionVersion guards the meta layout; bump on any change.
const sessionVersion = 1

// Blob is one encoded session. Checkpoint is nil (and CheckpointRef
// empty) for a session that has not solved yet.
type Blob struct {
	Meta          []byte
	Checkpoint    []byte
	CheckpointRef string
}

// Encode snapshots the session into blobs. It takes the session lock, so
// the snapshot is one consistent leg — never half a resume.
func (s *Session) Encode() (Blob, error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	var b Blob
	if s.cp != nil {
		data, err := s.cp.Encode()
		if err != nil {
			return Blob{}, fmt.Errorf("session %s: %w", s.key, err)
		}
		sum := sha256.Sum256(data)
		b.Checkpoint = data
		b.CheckpointRef = hex.EncodeToString(sum[:])
	}

	e := trace.NewEncoder()
	e.Uvarint(sessionVersion)
	e.String(s.key)
	e.Varint(int64(s.p.MaxDepth))
	e.Varint(int64(s.p.MaxNodes))
	e.Varint(int64(s.solves))
	e.Varint(int64(s.resumes))
	e.Varint(int64(s.replays))
	e.String(b.CheckpointRef)
	b.Meta = e.Bytes()
	return b, nil
}

// Decode rebuilds a session from its meta blob. p and sys must be
// rebuilt from the same spec the session was created with (the solver
// codec verifies the search flags). fetch loads the checkpoint blob by
// its reference; it is only called for sessions that had solved, and its
// payload is verified against the reference before decoding.
func Decode(meta []byte, p solver.Problem, sys desc.System, fetch func(ref string) ([]byte, error)) (*Session, error) {
	d, err := trace.NewDecoder(meta)
	if err != nil {
		return nil, fmt.Errorf("session: decode meta: %w", err)
	}
	v, err := d.Uvarint()
	if err != nil {
		return nil, fmt.Errorf("session: decode meta: %w", err)
	}
	if v != sessionVersion {
		return nil, fmt.Errorf("session: meta version %d, this build reads %d: %w", v, sessionVersion, trace.ErrCorrupt)
	}
	key, err := d.String()
	if err != nil {
		return nil, fmt.Errorf("session: decode meta: %w", err)
	}
	var nums [5]int64
	for i := range nums {
		if nums[i], err = d.Varint(); err != nil {
			return nil, fmt.Errorf("session %s: decode meta: %w", key, err)
		}
	}
	ref, err := d.String()
	if err != nil {
		return nil, fmt.Errorf("session %s: decode meta: %w", key, err)
	}
	if err := d.Done(); err != nil {
		return nil, fmt.Errorf("session %s: decode meta: %w", key, err)
	}

	p.MaxDepth = int(nums[0])
	p.MaxNodes = int(nums[1])
	s := &Session{
		key:     key,
		sys:     sys,
		p:       p,
		solves:  int(nums[2]),
		resumes: int(nums[3]),
		replays: int(nums[4]),
	}
	if ref == "" {
		return s, nil
	}
	if fetch == nil {
		return nil, fmt.Errorf("session %s: meta references checkpoint %s but no fetcher was given", key, ref)
	}
	data, err := fetch(ref)
	if err != nil {
		return nil, fmt.Errorf("session %s: fetch checkpoint %s: %w", key, ref, err)
	}
	sum := sha256.Sum256(data)
	if got := hex.EncodeToString(sum[:]); got != ref {
		return nil, fmt.Errorf("session %s: checkpoint content hash %s does not match reference %s: %w", key, got, ref, trace.ErrCorrupt)
	}
	cp, err := solver.DecodeCheckpoint(data, p)
	if err != nil {
		return nil, fmt.Errorf("session %s: %w", key, err)
	}
	s.cp = cp
	s.res = cp.Result()
	return s, nil
}

// MetaKey reads just the session key out of a meta blob, for listings.
func MetaKey(meta []byte) (string, error) {
	d, err := trace.NewDecoder(meta)
	if err != nil {
		return "", err
	}
	if _, err := d.Uvarint(); err != nil {
		return "", err
	}
	return d.String()
}
