package service

import (
	"container/list"
	"sync"

	"smoothproc/internal/metrics"
)

// LRU is a fixed-capacity least-recently-used cache, safe for concurrent
// use. The service keeps two: compiled specs keyed by content hash (the
// compile-once/run-many split) and solve results keyed by
// (spec-hash, solve-params) so repeat queries skip the tree search
// entirely. Hit and miss counts feed the /metrics endpoint.
type LRU[K comparable, V any] struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front is most recently used
	items map[K]*list.Element

	hits   metrics.Counter
	misses metrics.Counter
}

type lruEntry[K comparable, V any] struct {
	key K
	val V
}

// NewLRU builds a cache holding at most capacity entries; capacity < 1
// is treated as 1.
func NewLRU[K comparable, V any](capacity int) *LRU[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	return &LRU[K, V]{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[K]*list.Element, capacity),
	}
}

// Get returns the cached value and marks it most recently used.
func (c *LRU[K, V]) Get(k K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		c.hits.Inc()
		return el.Value.(*lruEntry[K, V]).val, true
	}
	c.misses.Inc()
	var zero V
	return zero, false
}

// Put inserts or refreshes a value, evicting the least recently used
// entry when the cache is full.
func (c *LRU[K, V]) Put(k K, v V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		el.Value.(*lruEntry[K, V]).val = v
		c.ll.MoveToFront(el)
		return
	}
	c.items[k] = c.ll.PushFront(&lruEntry[K, V]{key: k, val: v})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry[K, V]).key)
	}
}

// Len returns the current number of entries.
func (c *LRU[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Hits returns the number of Get calls served from the cache.
func (c *LRU[K, V]) Hits() int64 { return c.hits.Load() }

// Misses returns the number of Get calls that found nothing.
func (c *LRU[K, V]) Misses() int64 { return c.misses.Load() }
