package service

import (
	"container/list"
	"sync"

	"smoothproc/internal/metrics"
)

// LRU is a fixed-capacity least-recently-used cache, safe for concurrent
// use. The service keeps three, all read-through caches in front of the
// content-addressed store: compiled specs keyed by content hash (the
// compile-once/run-many split), solve results keyed by
// (spec-hash, solve-params) so repeat queries skip the tree search
// entirely, and live solve sessions. Hit and miss counts feed the
// /metrics endpoint.
//
// Entries can be pinned: a pinned entry is in use by a handler (a
// session mid-solve) and is never evicted, even when that means
// temporarily exceeding capacity — evicting live state would fork a
// session into two divergent copies.
type LRU[K comparable, V any] struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front is most recently used
	items map[K]*list.Element
	pins  map[K]int // refcounts; absent means unpinned

	hits   metrics.Counter
	misses metrics.Counter
}

type lruEntry[K comparable, V any] struct {
	key K
	val V
}

// NewLRU builds a cache holding at most capacity entries; capacity < 1
// is treated as 1.
func NewLRU[K comparable, V any](capacity int) *LRU[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	return &LRU[K, V]{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[K]*list.Element, capacity),
		pins:  make(map[K]int),
	}
}

// Get returns the cached value and marks it most recently used.
func (c *LRU[K, V]) Get(k K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		c.hits.Inc()
		return el.Value.(*lruEntry[K, V]).val, true
	}
	c.misses.Inc()
	var zero V
	return zero, false
}

// Put inserts or refreshes a value, evicting the least recently used
// entry when the cache is full.
func (c *LRU[K, V]) Put(k K, v V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		el.Value.(*lruEntry[K, V]).val = v
		c.ll.MoveToFront(el)
		return
	}
	c.items[k] = c.ll.PushFront(&lruEntry[K, V]{key: k, val: v})
	if c.ll.Len() > c.cap {
		c.evictLocked()
	}
}

// evictLocked removes the least recently used unpinned entry. When
// every entry is pinned nothing is evicted — the cache runs over
// capacity until a pin drops, which is strictly safer than discarding
// state a handler holds a reference to.
func (c *LRU[K, V]) evictLocked() {
	for el := c.ll.Back(); el != nil; el = el.Prev() {
		key := el.Value.(*lruEntry[K, V]).key
		if c.pins[key] > 0 {
			continue
		}
		c.ll.Remove(el)
		delete(c.items, key)
		return
	}
}

// Pin returns the cached value like Get and atomically increments its
// pin count, shielding the entry from eviction until the matching
// Unpin. Callers must Unpin exactly once per successful Pin.
func (c *LRU[K, V]) Pin(k K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		c.pins[k]++
		c.hits.Inc()
		return el.Value.(*lruEntry[K, V]).val, true
	}
	c.misses.Inc()
	var zero V
	return zero, false
}

// PutPinned inserts like Put with the new entry already pinned — the
// atomic create-and-pin handlers need when materializing a session.
func (c *LRU[K, V]) PutPinned(k K, v V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		el.Value.(*lruEntry[K, V]).val = v
		c.ll.MoveToFront(el)
		c.pins[k]++
		return
	}
	c.items[k] = c.ll.PushFront(&lruEntry[K, V]{key: k, val: v})
	c.pins[k]++
	if c.ll.Len() > c.cap {
		c.evictLocked()
	}
}

// Unpin drops one pin reference. Once the count reaches zero the entry
// is evictable again (and is evicted immediately if the cache is over
// capacity). Unpinning an absent key is a no-op.
func (c *LRU[K, V]) Unpin(k K) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.pins[k]
	if !ok {
		return
	}
	if n <= 1 {
		delete(c.pins, k)
		if c.ll.Len() > c.cap {
			c.evictLocked()
		}
		return
	}
	c.pins[k] = n - 1
}

// Len returns the current number of entries.
func (c *LRU[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Hits returns the number of Get calls served from the cache.
func (c *LRU[K, V]) Hits() int64 { return c.hits.Load() }

// Misses returns the number of Get calls that found nothing.
func (c *LRU[K, V]) Misses() int64 { return c.misses.Load() }
