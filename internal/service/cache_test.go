package service

import "testing"

func TestLRUBasics(t *testing.T) {
	c := NewLRU[string, int](2)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache returned a hit")
	}
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v", v, ok)
	}
	// "a" is now most recent; inserting "c" must evict "b".
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction; LRU order broken")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a was evicted despite being most recently used")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
}

func TestLRURefreshExistingKey(t *testing.T) {
	c := NewLRU[string, int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("a", 10) // refresh, not insert: must not evict
	if _, ok := c.Get("b"); !ok {
		t.Error("refreshing an existing key evicted another entry")
	}
	if v, _ := c.Get("a"); v != 10 {
		t.Errorf("refreshed value = %d, want 10", v)
	}
}

func TestLRUCounters(t *testing.T) {
	c := NewLRU[string, int](4)
	c.Put("a", 1)
	c.Get("a")
	c.Get("a")
	c.Get("missing")
	if c.Hits() != 2 || c.Misses() != 1 {
		t.Errorf("hits=%d misses=%d, want 2 and 1", c.Hits(), c.Misses())
	}
}

func TestLRUMinimumCapacity(t *testing.T) {
	c := NewLRU[string, int](0)
	c.Put("a", 1)
	c.Put("b", 2)
	if c.Len() != 1 {
		t.Errorf("capacity-clamped cache holds %d entries, want 1", c.Len())
	}
}
