package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"smoothproc/internal/eqlang"
	"smoothproc/internal/specvet"
)

// fig4 is the Brock–Ackermann system of Figure 4 — the service's
// canonical unit of work, with exactly one smooth solution.
const fig4 = `alphabet b = {1}
alphabet c = ints 0 .. 2
depth 4
desc even(c) <- [0, 2]
desc odd(c)  <- b
desc b <- fBA(c)
`

const fig4Solution = "⟨(c,0)(c,2)(b,1)(c,1)⟩"

// wideMerge is an adversarial spec: a fair merge with long feeds whose
// tree grows combinatorially with depth — seconds of search at depth 9,
// far beyond any test deadline at depth 12. Deadline and load-shedding
// tests lean on it.
const wideMerge = `alphabet c = {10}
alphabet d = {20}
alphabet b = {(0,10), (1,20)}
alphabet e = {10, 20}
depth 12
desc zero(b) <- tag0(c)
desc one(b)  <- tag1(d)
desc e       <- untag(b)
desc c       <- [10, 10, 10, 10]
desc d       <- [20, 20, 20, 20]
`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	js, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func decode[T any](t *testing.T, data []byte) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("decode %T from %q: %v", v, data, err)
	}
	return v
}

func TestUploadAndSolve(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	resp, body := postJSON(t, ts.URL+"/v1/specs", SpecRequest{Source: fig4})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload: status %d: %s", resp.StatusCode, body)
	}
	info := decode[SpecInfo](t, body)
	if info.Hash == "" || info.Depth != 4 || len(info.Descriptions) != 3 || info.Cached {
		t.Fatalf("spec info = %+v", info)
	}

	resp, body = postJSON(t, ts.URL+"/v1/solve", SolveRequest{SpecHash: info.Hash, Wait: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: status %d: %s", resp.StatusCode, body)
	}
	job := decode[JobView](t, body)
	if job.State != JobDone || job.Result == nil {
		t.Fatalf("job = %+v", job)
	}
	if len(job.Result.Solutions) != 1 || job.Result.Solutions[0] != fig4Solution {
		t.Fatalf("solutions = %v, want exactly %s", job.Result.Solutions, fig4Solution)
	}
	if job.Result.Nodes == 0 || job.Result.Cached {
		t.Errorf("first solve: nodes=%d cached=%v, want a real search", job.Result.Nodes, job.Result.Cached)
	}
}

func TestSolveInlineSourceCompilesAndCaches(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 2})
	resp, body := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Source: fig4, Wait: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	job := decode[JobView](t, body)
	if job.State != JobDone {
		t.Fatalf("state = %s", job.State)
	}
	// The inline source landed in the spec cache: solving by hash works.
	resp, body = postJSON(t, ts.URL+"/v1/solve", SolveRequest{SpecHash: job.SpecHash, Wait: true, NoCache: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve by hash after inline: status %d: %s", resp.StatusCode, body)
	}
	if got := srv.specs.Len(); got != 1 {
		t.Errorf("spec cache holds %d entries, want 1", got)
	}
}

func TestSpecUploadIdempotent(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, body := postJSON(t, ts.URL+"/v1/specs", SpecRequest{Source: fig4})
	first := decode[SpecInfo](t, body)
	_, body = postJSON(t, ts.URL+"/v1/specs", SpecRequest{Source: fig4})
	second := decode[SpecInfo](t, body)
	if second.Hash != first.Hash || !second.Cached {
		t.Errorf("re-upload: hash %s cached %v, want same hash served from cache", second.Hash, second.Cached)
	}
}

// TestResultCacheSkipsSearch is the caching acceptance check: a repeat
// query must be answered without re-searching, verified through the
// SearchStats node counts — the server-wide nodes_searched_total counter
// must not move, and the cached result reports the original search's
// nodes.
func TestResultCacheSkipsSearch(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 2})
	_, body := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Source: fig4, Wait: true})
	first := decode[JobView](t, body)
	if first.State != JobDone || first.Result == nil || first.Result.Cached {
		t.Fatalf("first solve = %+v", first)
	}
	nodesAfterFirst, ok := srv.Metrics().Get("search", "nodes searched total")
	if !ok || nodesAfterFirst == 0 {
		t.Fatalf("nodes searched total = %d, %v", nodesAfterFirst, ok)
	}

	_, body = postJSON(t, ts.URL+"/v1/solve", SolveRequest{Source: fig4, Wait: true})
	second := decode[JobView](t, body)
	if second.State != JobDone || second.Result == nil || !second.Result.Cached {
		t.Fatalf("repeat solve not served from cache: %+v", second)
	}
	if second.Result.Nodes != first.Result.Nodes {
		t.Errorf("cached nodes %d ≠ original %d", second.Result.Nodes, first.Result.Nodes)
	}
	if got, _ := srv.Metrics().Get("search", "nodes searched total"); got != nodesAfterFirst {
		t.Errorf("repeat query searched %d more nodes; cache failed", got-nodesAfterFirst)
	}
	if second.Result.Solutions[0] != fig4Solution {
		t.Errorf("cached solutions = %v", second.Result.Solutions)
	}
	// Different params miss the cache and search again.
	_, body = postJSON(t, ts.URL+"/v1/solve", SolveRequest{Source: fig4, Depth: 5, Wait: true})
	third := decode[JobView](t, body)
	if third.Result == nil || third.Result.Cached {
		t.Errorf("depth-5 solve should not hit the depth-4 cache entry: %+v", third)
	}
}

func TestMalformedSpecsReturnStructured4xx(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	t.Run("syntax error with line and snippet", func(t *testing.T) {
		resp, body := postJSON(t, ts.URL+"/v1/specs", SpecRequest{Source: "alphabet d = ints 0 .. 1\ndesc even(d <- [0\n"})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400", resp.StatusCode)
		}
		eb := decode[ErrorBody](t, body)
		if eb.Error == "" || eb.Line != 2 || eb.Snippet == "" {
			t.Errorf("error body = %+v, want message, line 2 and snippet", eb)
		}
	})
	t.Run("empty source", func(t *testing.T) {
		resp, _ := postJSON(t, ts.URL+"/v1/specs", SpecRequest{Source: ""})
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status = %d, want 400", resp.StatusCode)
		}
	})
	t.Run("invalid JSON", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/v1/specs", "application/json", strings.NewReader("{not json"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status = %d, want 400", resp.StatusCode)
		}
	})
	t.Run("unknown hash", func(t *testing.T) {
		resp, _ := postJSON(t, ts.URL+"/v1/solve", SolveRequest{SpecHash: "deadbeef", Wait: true})
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("status = %d, want 404", resp.StatusCode)
		}
	})
	t.Run("both source and hash", func(t *testing.T) {
		resp, _ := postJSON(t, ts.URL+"/v1/solve", SolveRequest{SpecHash: "x", Source: fig4})
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status = %d, want 400", resp.StatusCode)
		}
	})
	t.Run("neither source nor hash", func(t *testing.T) {
		resp, _ := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Wait: true})
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status = %d, want 400", resp.StatusCode)
		}
	})
	t.Run("unknown job id", func(t *testing.T) {
		if code := getJSON(t, ts.URL+"/v1/jobs/job-999", nil); code != http.StatusNotFound {
			t.Errorf("status = %d, want 404", code)
		}
	})
}

// TestSpecFindingsReported: uploading a clean spec returns its
// static-analysis findings — theorem classifications and warnings —
// non-fatally, and a cache-hit re-upload serves the same report.
func TestSpecFindingsReported(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/specs", SpecRequest{Source: fig4})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	info := decode[SpecInfo](t, body)
	thm1 := false
	for _, d := range info.Findings {
		if d.Severity == specvet.SevError {
			t.Errorf("accepted spec carries an error finding: %+v", d)
		}
		if d.Rule == "thm1-independent" {
			thm1 = true
		}
	}
	if !thm1 {
		t.Errorf("fig4 findings missing thm1-independent classification: %+v", info.Findings)
	}

	_, body = postJSON(t, ts.URL+"/v1/specs", SpecRequest{Source: fig4})
	again := decode[SpecInfo](t, body)
	if !again.Cached || len(again.Findings) != len(info.Findings) {
		t.Errorf("cached re-upload: cached=%v findings=%d, want same %d findings from cache",
			again.Cached, len(again.Findings), len(info.Findings))
	}
}

// TestSpecVetErrorsReject: a spec with error-severity findings is
// refused with 400 and the full findings list, positioned at the
// offending use.
func TestSpecVetErrorsReject(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	src := "alphabet c = ints 0 .. 1\ndesc c <- even(d)\n" // d has no alphabet
	resp, body := postJSON(t, ts.URL+"/v1/specs", SpecRequest{Source: src})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
	}
	eb := decode[ErrorBody](t, body)
	if eb.Error == "" || eb.Line != 2 || eb.Snippet == "" {
		t.Errorf("error body = %+v, want message, line 2 and snippet", eb)
	}
	found := false
	for _, d := range eb.Findings {
		if d.Rule == "undefined-channel" && d.Severity == specvet.SevError {
			found = true
		}
	}
	if !found {
		t.Errorf("findings missing undefined-channel error: %+v", eb.Findings)
	}

	// The rejected spec must not be solvable either.
	resp, _ = postJSON(t, ts.URL+"/v1/solve", SolveRequest{Source: src, Wait: true})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("solve of vet-rejected spec: status %d, want 400", resp.StatusCode)
	}
}

// TestFuzzCorpusThroughService replays the eqlang fuzz seed corpus
// against POST /v1/specs: every input must produce either a compiled
// spec or a structured 4xx JSON error — never a 5xx, never a panic.
func TestFuzzCorpusThroughService(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for i, src := range eqlang.Corpus() {
		resp, body := postJSON(t, ts.URL+"/v1/specs", SpecRequest{Source: src})
		switch resp.StatusCode {
		case http.StatusOK:
			info := decode[SpecInfo](t, body)
			if info.Hash == "" || info.Depth <= 0 {
				t.Errorf("corpus[%d]: accepted spec has bad info %+v", i, info)
			}
		case http.StatusBadRequest:
			eb := decode[ErrorBody](t, body)
			if eb.Error == "" {
				t.Errorf("corpus[%d]: 400 without a structured error: %s", i, body)
			}
		default:
			t.Errorf("corpus[%d]: status %d (body %s), want 200 or 400", i, resp.StatusCode, body)
		}
	}
}

// TestConcurrentSolves drives ≥ 8 simultaneous solve jobs through the
// pool — the acceptance concurrency bar; `go test -race` makes it a
// race-detector check too.
func TestConcurrentSolves(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 8, QueueDepth: 64})
	const n = 16
	type outcome struct {
		job JobView
		err error
	}
	results := make(chan outcome, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			// Half the requests bypass the result cache and search for
			// real; the other half race genuine cache reads against
			// them — both paths run concurrently under the detector.
			req := SolveRequest{Source: fig4, Wait: true, NoCache: i%2 == 0}
			js, _ := json.Marshal(req)
			resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(js))
			if err != nil {
				results <- outcome{err: err}
				return
			}
			defer resp.Body.Close()
			var job JobView
			if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
				results <- outcome{err: fmt.Errorf("decode: %v", err)}
				return
			}
			if resp.StatusCode != http.StatusOK {
				results <- outcome{err: fmt.Errorf("status %d", resp.StatusCode)}
				return
			}
			results <- outcome{job: job}
		}(i)
	}
	for i := 0; i < n; i++ {
		o := <-results
		if o.err != nil {
			t.Fatal(o.err)
		}
		if o.job.State != JobDone || o.job.Result == nil {
			t.Fatalf("concurrent job = %+v", o.job)
		}
		if len(o.job.Result.Solutions) != 1 || o.job.Result.Solutions[0] != fig4Solution {
			t.Errorf("concurrent solve found %v", o.job.Result.Solutions)
		}
	}
}

// TestDeadlineCancelsSearch gives an adversarial spec a deadline far
// below its search time: the job must come back canceled, quickly, with
// its sound partial result.
func TestDeadlineCancelsSearch(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	start := time.Now()
	resp, body := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Source: wideMerge, TimeoutMs: 50, Wait: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	job := decode[JobView](t, body)
	if job.State != JobCanceled || job.Result == nil || !job.Result.Canceled {
		t.Fatalf("deadline job = %+v, want canceled with partial result", job)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("deadline enforcement took %v", elapsed)
	}
}

// TestAsyncSolveAndPoll exercises the job lifecycle over the wire.
func TestAsyncSolveAndPoll(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	resp, body := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Source: fig4})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async solve: status %d: %s", resp.StatusCode, body)
	}
	job := decode[JobView](t, body)
	if job.ID == "" {
		t.Fatalf("async job has no id: %+v", job)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		var cur JobView
		if code := getJSON(t, ts.URL+"/v1/jobs/"+job.ID, &cur); code != http.StatusOK {
			t.Fatalf("poll: status %d", code)
		}
		if cur.State == JobDone {
			if cur.Result == nil || cur.Result.Solutions[0] != fig4Solution {
				t.Fatalf("polled result = %+v", cur.Result)
			}
			return
		}
		if cur.State == JobFailed || cur.State == JobCanceled {
			t.Fatalf("job ended %s: %s", cur.State, cur.Error)
		}
		if time.Now().After(deadline) {
			t.Fatal("job did not finish in 10s")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestQueueFullShedsLoad saturates a 1-worker, 1-slot server with
// searches too big to finish during the test: later submissions must be
// rejected with 503 rather than buffered without bound.
func TestQueueFullShedsLoad(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	rejected := 0
	for i := 0; i < 6; i++ {
		resp, _ := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Source: wideMerge, NoCache: true})
		switch resp.StatusCode {
		case http.StatusAccepted:
		case http.StatusServiceUnavailable:
			rejected++
		default:
			t.Fatalf("submission %d: status %d", i, resp.StatusCode)
		}
	}
	if rejected < 4 {
		t.Errorf("rejected %d of 6 submissions, want ≥ 4 (1 running + 1 queued)", rejected)
	}
	// Force-drain so cleanup doesn't wait out the giant searches.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	srv.Shutdown(ctx)
}

// TestGracefulShutdownDrains submits real work and shuts down with a
// generous deadline: the in-flight search must complete, not be killed.
func TestGracefulShutdownDrains(t *testing.T) {
	srv, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, body := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Source: fig4, NoCache: true})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	job := decode[JobView](t, body)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain returned %v", err)
	}
	var cur JobView
	if code := getJSON(t, ts.URL+"/v1/jobs/"+job.ID, &cur); code != http.StatusOK {
		t.Fatalf("post-drain poll: status %d", code)
	}
	if cur.State != JobDone {
		t.Errorf("drained job state = %s, want done", cur.State)
	}
	// The result cache still answers repeat queries after shutdown…
	resp, body = postJSON(t, ts.URL+"/v1/solve", SolveRequest{Source: fig4})
	if resp.StatusCode != http.StatusOK {
		t.Errorf("post-shutdown cached solve: status %d, want 200: %s", resp.StatusCode, body)
	}
	// …but fresh work is refused.
	resp, _ = postJSON(t, ts.URL+"/v1/solve", SolveRequest{Source: fig4, NoCache: true})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-shutdown fresh solve: status %d, want 503", resp.StatusCode)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var health map[string]string
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK || health["status"] != "ok" {
		t.Errorf("healthz: code %d body %v", code, health)
	}
	postJSON(t, ts.URL+"/v1/solve", SolveRequest{Source: fig4, Wait: true})
	var stats struct {
		Sections []struct {
			Name  string `json:"name"`
			Items []struct {
				Name  string `json:"name"`
				Value int64  `json:"value"`
			} `json:"items"`
		} `json:"sections"`
	}
	if code := getJSON(t, ts.URL+"/metrics", &stats); code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	want := map[string]bool{"server": false, "cache": false, "jobs": false, "store": false, "tenants": false, "search": false}
	for _, sec := range stats.Sections {
		want[sec.Name] = true
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("metrics missing section %q", name)
		}
	}
}

// TestSolveShippedSpecs runs every committed spec file through the
// service path — the same corpus the solver baseline gates — asserting
// the service imposes no semantic drift.
func TestSolveShippedSpecs(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})
	src, err := os.ReadFile("../../specs/fig4-brock-ackermann.eq")
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Source: string(src), Wait: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	job := decode[JobView](t, body)
	if job.State != JobDone || len(job.Result.Solutions) != 1 || job.Result.Solutions[0] != fig4Solution {
		t.Fatalf("shipped fig4 spec: %+v", job)
	}
}
