package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"time"

	"smoothproc/internal/session"
	"smoothproc/internal/specvet"
)

// sessionEntry pairs a live solve session with the static-analysis
// verdicts that gate its delta-solves, so deltas keep working after the
// spec LRU evicts the compiled spec.
type sessionEntry struct {
	sess  *session.Session
	elims []specvet.ElimVerdict
}

// sessionFor returns the session for a compiled spec, creating it on
// first use. Serialized so concurrent creates converge on one session
// (whose evaluator memo and frontier they then share).
func (s *Server) sessionFor(hash string, spec compiledSpec) *sessionEntry {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	if e, ok := s.sessions.Get(hash); ok {
		return e
	}
	p := spec.prog.Problem()
	// Sessions retain their state between solves, so never pin the
	// visited-node list; the wire result does not carry it anyway.
	p.CollectVisited = false
	p.Compiled = s.cfg.Compiled
	e := &sessionEntry{sess: session.New(hash, p, spec.prog.System), elims: spec.elims}
	s.sessions.Put(hash, e)
	s.sessionCreates.Inc()
	return e
}

// sessionView snapshots a session for the wire.
func sessionView(hash string, e *sessionEntry) SessionView {
	solves, resumes, replays := e.sess.Counts()
	return SessionView{
		SpecHash:    hash,
		Depth:       e.sess.Depth(),
		Nodes:       e.sess.Nodes(),
		Frontier:    e.sess.FrontierSize(),
		MemoEntries: e.sess.MemoEntries(),
		Solves:      solves,
		Resumes:     resumes,
		Replays:     replays,
	}
}

// sessionParams clamps a session request's bounds like a solve's, except
// that Depth 0 is kept (meaning "the session's current depth") instead
// of defaulting to the spec's.
func (s *Server) sessionParams(req SessionRequest) SolveParams {
	p := SolveParams{Depth: req.Depth, MaxNodes: req.MaxNodes, Workers: req.Workers}
	p.Depth = min(p.Depth, s.cfg.MaxDepth)
	if p.MaxNodes <= 0 || p.MaxNodes > s.cfg.MaxNodes {
		p.MaxNodes = s.cfg.MaxNodes
	}
	p.Workers = max(p.Workers, 1)
	p.Workers = min(p.Workers, 4*runtime.GOMAXPROCS(0))
	return p
}

// runSession schedules one session leg on the worker pool, waits for it
// and writes the SessionView response. The solve runs under the job's
// deadline: a timed-out leg returns its sound truncated result and the
// session stays resumable from the retained queue.
func (s *Server) runSession(w http.ResponseWriter, r *http.Request, hash string, e *sessionEntry, req SessionRequest) {
	p := s.sessionParams(req)
	var outcome session.Outcome
	start := time.Now()
	job, err := s.sched.Submit(hash, p, s.timeout(SolveRequest{TimeoutMs: req.TimeoutMs}), func(ctx context.Context) (*SolveResult, error) {
		// The prefix's nodes and solutions were counted by the legs that
		// classified them; feed the counters only the growth.
		prevNodes := e.sess.Nodes()
		prevRes, _ := e.sess.Result()
		res, out, err := e.sess.Solve(ctx, session.Options{
			Depth:    p.Depth,
			MaxNodes: p.MaxNodes,
			Workers:  p.Workers,
		})
		if err != nil {
			return nil, err
		}
		outcome = out
		s.countSearch(res, res.Nodes-prevNodes, len(res.Solutions)-len(prevRes.Solutions))
		return wireResult(res, start), nil
	})
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, ErrShutdown):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
		return
	}

	select {
	case <-job.Done():
	case <-r.Context().Done():
		// The client went away; the leg keeps running and the session
		// absorbs it — the job stays pollable.
		writeJSON(w, http.StatusAccepted, s.sched.View(job))
		return
	}
	view := s.sched.View(job)
	if view.State == JobFailed {
		status := http.StatusConflict // depth shrink, exhausted budget
		writeError(w, status, errors.New(view.Error))
		return
	}
	switch outcome {
	case session.Resumed:
		s.sessionResumes.Inc()
	case session.Replayed:
		s.sessionReplays.Inc()
	}
	sv := sessionView(hash, e)
	sv.Outcome = outcome.String()
	sv.Result = view.Result
	writeJSON(w, http.StatusOK, sv)
}

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	var req SessionRequest
	if !decodeBody(w, r, &req) {
		return
	}
	hash, spec, ok := s.resolveSpec(w, req.Source, req.SpecHash)
	if !ok {
		return
	}
	e := s.sessionFor(hash, spec)
	if req.Depth <= 0 {
		req.Depth = spec.prog.Depth
	}
	s.runSession(w, r, hash, e, req)
}

func (s *Server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	hash := r.PathValue("hash")
	e, ok := s.sessions.Get(hash)
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("service: no session for this spec hash (create one via POST /v1/sessions)"))
		return
	}
	writeJSON(w, http.StatusOK, sessionView(hash, e))
}

func (s *Server) handleSessionResume(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	hash := r.PathValue("hash")
	e, ok := s.sessions.Get(hash)
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("service: no session for this spec hash (create one via POST /v1/sessions)"))
		return
	}
	var req SessionRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Source != "" || req.SpecHash != "" {
		writeError(w, http.StatusBadRequest, errors.New("service: resume addresses the session by the path hash; drop source/spec_hash"))
		return
	}
	s.runSession(w, r, hash, e, req)
}

func (s *Server) handleSessionDelta(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	hash := r.PathValue("hash")
	e, ok := s.sessions.Get(hash)
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("service: no session for this spec hash (create one via POST /v1/sessions)"))
		return
	}
	var req DeltaRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Channel == "" {
		writeError(w, http.StatusBadRequest, errors.New("service: delta needs a channel"))
		return
	}

	// The gate: only spec edits the static analyzer certified as
	// Theorem 5/6 eliminations may reuse session state.
	verdict, ok := eliminableVerdict(e.elims, req.Channel)
	if !ok {
		reason := "no defining description for the channel"
		for _, v := range e.elims {
			if v.Channel == req.Channel {
				reason = v.Reason
			}
		}
		writeError(w, http.StatusUnprocessableEntity,
			fmt.Errorf("service: channel %s is not eliminable (%s); solve the edited spec from scratch", req.Channel, reason))
		return
	}

	d, err := e.sess.Delta(verdict.Index, req.Channel)
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	s.deltaSolves.Inc()
	view := DeltaView{
		SpecHash:  hash,
		Channel:   d.Channel,
		Desc:      verdict.Desc,
		Index:     d.Index,
		FromNodes: d.FromNodes,
	}
	for _, desc := range d.System.Descs {
		view.System = append(view.System, desc.String())
	}
	for _, t := range d.Solutions {
		view.Solutions = append(view.Solutions, t.String())
	}
	if req.Check {
		rep, err := e.sess.DeltaCheck(r.Context(), d, req.Workers)
		if err != nil {
			writeError(w, http.StatusInternalServerError, fmt.Errorf("service: delta differential check failed: %w", err))
			return
		}
		view.Check = &DeltaCheckView{
			FreshNodes:    rep.FreshNodes,
			Matched:       rep.Matched,
			BeyondHorizon: rep.BeyondHorizon,
		}
	}
	writeJSON(w, http.StatusOK, view)
}

func eliminableVerdict(vs []specvet.ElimVerdict, channel string) (specvet.ElimVerdict, bool) {
	for _, v := range vs {
		if v.Channel == channel && v.Eliminable {
			return v, true
		}
	}
	return specvet.ElimVerdict{}, false
}
