package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"time"

	"smoothproc/internal/session"
	"smoothproc/internal/specplan"
	"smoothproc/internal/specvet"
	"smoothproc/internal/store"
)

// sessionEntry pairs a live solve session with the static-analysis
// verdicts that gate its delta-solves (and the plan feeding scheduler
// estimates), so both keep working after the spec LRU evicts the
// compiled spec.
type sessionEntry struct {
	sess  *session.Session
	elims []specvet.ElimVerdict
	plan  *specplan.Plan
}

// sessionFor returns the session for a compiled spec — live from the
// cache, restored from the durable store's checkpoint, or (when create
// is set) fresh. Serialized so concurrent lookups converge on one
// session (whose evaluator memo and frontier they then share). The
// returned entry is pinned against eviction; the caller must
// s.sessions.Unpin(hash) when its leg is done.
func (s *Server) sessionFor(ctx context.Context, hash string, spec compiledSpec, create bool) (*sessionEntry, bool) {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	if e, ok := s.sessions.Pin(hash); ok {
		return e, true
	}
	p := spec.prog.Problem()
	// Sessions retain their state between solves, so never pin the
	// visited-node list; the wire result does not carry it anyway.
	p.CollectVisited = false
	p.Compiled = s.cfg.Compiled
	// A persisted session (same spec, same evaluation mode) resumes
	// exactly where the previous process stopped: the decoder verifies
	// the checkpoint's content address and rebuilds frontier and memo.
	if meta, err := s.store.Get(ctx, store.KindSession, store.Key(hash)); err == nil {
		sess, err := session.Decode(meta, p, spec.prog.System, func(ref string) ([]byte, error) {
			return s.store.Get(ctx, store.KindCheckpoint, store.Key(ref))
		})
		if err == nil {
			e := &sessionEntry{sess: sess, elims: spec.elims, plan: spec.plan}
			s.sessions.PutPinned(hash, e)
			s.sessionRestores.Inc()
			return e, true
		}
		// Corrupt or incompatible persisted state fails closed: count it
		// and fall through to a fresh session rather than serving doubt.
		s.storeErrors.Inc()
	}
	if !create {
		return nil, false
	}
	e := &sessionEntry{sess: session.New(hash, p, spec.prog.System), elims: spec.elims, plan: spec.plan}
	s.sessions.PutPinned(hash, e)
	s.sessionCreates.Inc()
	return e, true
}

// persistSession writes a session's checkpoint and metadata through to
// the store: first the checkpoint blob under its content address, then
// the meta object naming that address — ordered so a crash between the
// two leaves a resolvable (older) state, never a dangling reference.
// Best-effort: a failed write degrades durability, not the response.
func (s *Server) persistSession(hash string, e *sessionEntry) {
	blob, err := e.sess.Encode()
	if err != nil {
		s.storeErrors.Inc()
		return
	}
	if blob.CheckpointRef != "" {
		if err := s.store.Put(persistCtx, store.KindCheckpoint, store.Key(blob.CheckpointRef), blob.Checkpoint); err != nil {
			s.storeErrors.Inc()
			return
		}
	}
	if err := s.store.Put(persistCtx, store.KindSession, store.Key(hash), blob.Meta); err != nil {
		s.storeErrors.Inc()
	}
}

// liveSession resolves the session for hash without creating one,
// pinned; it writes the 404 itself when neither a live nor a persisted
// session exists. Callers must Unpin on success.
func (s *Server) liveSession(w http.ResponseWriter, r *http.Request, hash string) (*sessionEntry, bool) {
	if spec, ok := s.lookupSpec(r.Context(), hash); ok {
		if e, ok := s.sessionFor(r.Context(), hash, spec, false); ok {
			return e, true
		}
	} else if e, ok := s.sessions.Pin(hash); ok {
		// The spec is gone (store unavailable) but the session is live.
		return e, true
	}
	writeError(w, http.StatusNotFound, errors.New("service: no session for this spec hash (create one via POST /v1/sessions)"))
	return nil, false
}

// sessionView snapshots a session for the wire.
func sessionView(hash string, e *sessionEntry) SessionView {
	solves, resumes, replays := e.sess.Counts()
	return SessionView{
		SpecHash:    hash,
		Depth:       e.sess.Depth(),
		Nodes:       e.sess.Nodes(),
		Frontier:    e.sess.FrontierSize(),
		MemoEntries: e.sess.MemoEntries(),
		Solves:      solves,
		Resumes:     resumes,
		Replays:     replays,
	}
}

// sessionParams clamps a session request's bounds like a solve's, except
// that Depth 0 is kept (meaning "the session's current depth") instead
// of defaulting to the spec's.
func (s *Server) sessionParams(req SessionRequest) SolveParams {
	p := SolveParams{Depth: req.Depth, MaxNodes: req.MaxNodes, Workers: req.Workers}
	p.Depth = min(p.Depth, s.cfg.MaxDepth)
	if p.MaxNodes <= 0 || p.MaxNodes > s.cfg.MaxNodes {
		p.MaxNodes = s.cfg.MaxNodes
	}
	p.Workers = max(p.Workers, 1)
	p.Workers = min(p.Workers, 4*runtime.GOMAXPROCS(0))
	return p
}

// runSession schedules one session leg on the worker pool, waits for it
// and writes the SessionView response. The solve runs under the job's
// deadline: a timed-out leg returns its sound truncated result and the
// session stays resumable from the retained queue.
func (s *Server) runSession(w http.ResponseWriter, r *http.Request, hash string, e *sessionEntry, req SessionRequest) {
	p := s.sessionParams(req)
	var outcome session.Outcome
	start := time.Now()
	var estimate uint64
	if e.plan != nil && p.Depth > 0 {
		estimate = e.plan.MinNodes(p.Depth)
	}
	job, err := s.sched.Submit(Submission{
		Tenant:   tenantOf(r),
		SpecHash: hash,
		Params:   p,
		Timeout:  s.timeout(SolveRequest{TimeoutMs: req.TimeoutMs}),
		Estimate: estimate,
		TraceID:  s.traceOf(r),
		AdmitNs:  time.Since(start).Nanoseconds(),
		Run: func(ctx context.Context) (*SolveResult, error) {
			// The prefix's nodes and solutions were counted by the legs that
			// classified them; feed the counters only the growth.
			prevNodes := e.sess.Nodes()
			prevRes, _ := e.sess.Result()
			res, out, err := e.sess.Solve(ctx, session.Options{
				Depth:    p.Depth,
				MaxNodes: p.MaxNodes,
				Workers:  p.Workers,
			})
			if err != nil {
				return nil, err
			}
			outcome = out
			s.countSearch(res, res.Nodes-prevNodes, len(res.Solutions)-len(prevRes.Solutions))
			// Checkpoint the advanced chain element while still on the
			// worker, so legs whose client disconnected persist too.
			s.persistSession(hash, e)
			return wireResult(res, start), nil
		},
	})
	if writeSubmitError(w, err) {
		return
	}
	// The caller's pin drops when the handler returns — which can be at
	// the disconnect 202 below, while the worker still mutates the
	// session. Hold an extra pin for the job's full lifetime (Done is
	// closed on every terminal transition, including forced shutdown).
	if _, ok := s.sessions.Pin(hash); ok {
		go func() { <-job.Done(); s.sessions.Unpin(hash) }()
	}

	select {
	case <-job.Done():
	case <-r.Context().Done():
		// The client went away; the leg keeps running and the session
		// absorbs it — the job stays pollable.
		writeJSON(w, http.StatusAccepted, s.sched.View(job))
		return
	}
	view := s.sched.View(job)
	if view.State == JobFailed {
		status := http.StatusConflict // depth shrink, exhausted budget
		writeError(w, status, errors.New(view.Error))
		return
	}
	switch outcome {
	case session.Resumed:
		s.sessionResumes.Inc()
	case session.Replayed:
		s.sessionReplays.Inc()
	}
	sv := sessionView(hash, e)
	sv.Outcome = outcome.String()
	sv.Result = view.Result
	writeJSON(w, http.StatusOK, sv)
}

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	var req SessionRequest
	if !decodeBody(w, r, &req) {
		return
	}
	hash, spec, ok := s.resolveSpec(w, r, req.Source, req.SpecHash)
	if !ok {
		return
	}
	e, _ := s.sessionFor(r.Context(), hash, spec, true)
	defer s.sessions.Unpin(hash)
	if req.Depth <= 0 {
		req.Depth = spec.prog.Depth
	}
	s.runSession(w, r, hash, e, req)
}

func (s *Server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	hash := r.PathValue("hash")
	e, ok := s.liveSession(w, r, hash)
	if !ok {
		return
	}
	defer s.sessions.Unpin(hash)
	writeJSON(w, http.StatusOK, sessionView(hash, e))
}

func (s *Server) handleSessionResume(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	hash := r.PathValue("hash")
	e, ok := s.liveSession(w, r, hash)
	if !ok {
		return
	}
	defer s.sessions.Unpin(hash)
	var req SessionRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Source != "" || req.SpecHash != "" {
		writeError(w, http.StatusBadRequest, errors.New("service: resume addresses the session by the path hash; drop source/spec_hash"))
		return
	}
	s.runSession(w, r, hash, e, req)
}

func (s *Server) handleSessionDelta(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	hash := r.PathValue("hash")
	e, ok := s.liveSession(w, r, hash)
	if !ok {
		return
	}
	defer s.sessions.Unpin(hash)
	var req DeltaRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Channel == "" {
		writeError(w, http.StatusBadRequest, errors.New("service: delta needs a channel"))
		return
	}

	// The gate: only spec edits the static analyzer certified as
	// Theorem 5/6 eliminations may reuse session state.
	verdict, ok := eliminableVerdict(e.elims, req.Channel)
	if !ok {
		reason := "no defining description for the channel"
		for _, v := range e.elims {
			if v.Channel == req.Channel {
				reason = v.Reason
			}
		}
		writeError(w, http.StatusUnprocessableEntity,
			fmt.Errorf("service: channel %s is not eliminable (%s); solve the edited spec from scratch", req.Channel, reason))
		return
	}

	d, err := e.sess.Delta(verdict.Index, req.Channel)
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	s.deltaSolves.Inc()
	view := DeltaView{
		SpecHash:  hash,
		Channel:   d.Channel,
		Desc:      verdict.Desc,
		Index:     d.Index,
		FromNodes: d.FromNodes,
	}
	for _, desc := range d.System.Descs {
		view.System = append(view.System, desc.String())
	}
	for _, t := range d.Solutions {
		view.Solutions = append(view.Solutions, t.String())
	}
	if req.Check {
		rep, err := e.sess.DeltaCheck(r.Context(), d, req.Workers)
		if err != nil {
			writeError(w, http.StatusInternalServerError, fmt.Errorf("service: delta differential check failed: %w", err))
			return
		}
		view.Check = &DeltaCheckView{
			FreshNodes:    rep.FreshNodes,
			Matched:       rep.Matched,
			BeyondHorizon: rep.BeyondHorizon,
		}
	}
	writeJSON(w, http.StatusOK, view)
}

func eliminableVerdict(vs []specvet.ElimVerdict, channel string) (specvet.ElimVerdict, bool) {
	for _, v := range vs {
		if v.Channel == channel && v.Eliminable {
			return v, true
		}
	}
	return specvet.ElimVerdict{}, false
}
