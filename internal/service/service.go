package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"

	"smoothproc/internal/eqlang"
	"smoothproc/internal/metrics"
	"smoothproc/internal/report"
	"smoothproc/internal/solver"
	"smoothproc/internal/specplan"
	"smoothproc/internal/specvet"
	"smoothproc/internal/store"
)

// Config bounds the server. Every knob has a production-minded default:
// bounded queue, bounded depth, bounded nodes, bounded wall clock — a
// request can ask for less than the caps but never more.
type Config struct {
	// Workers is the solve worker-pool size (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds waiting jobs; beyond it the server sheds load
	// with 503 (default 64).
	QueueDepth int
	// SpecCacheSize and ResultCacheSize bound the two LRUs (defaults 128
	// and 1024).
	SpecCacheSize   int
	ResultCacheSize int
	// SessionCacheSize bounds the live solve sessions (default 64). Each
	// session retains its search frontier and evaluator memo, so this cap
	// is the server's incremental-state memory knob.
	SessionCacheSize int
	// MaxDepth caps the probe depth a request may ask for (default 12).
	MaxDepth int
	// MaxNodes caps (and defaults) the per-search node budget (default
	// 500000).
	MaxNodes int
	// DefaultTimeout and MaxTimeout bound each job's wall clock
	// (defaults 30s and 2m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// NoVisited skips retaining each search's visited-node list. The
	// wire result never includes it, so this only lowers memory.
	NoVisited bool
	// Compiled evaluates descriptions as descvm bytecode in every
	// served search. Results, stats and cache keys are byte-identical
	// to interpreted evaluation (the solver's differential suite holds
	// the two equal), so the switch is safe to flip on a live fleet.
	Compiled bool
	// DataDir roots the durable content-addressed store. When set,
	// uploaded specs, finished solve results and session checkpoints
	// survive restarts: the in-memory LRUs become read-through caches in
	// front of the disk store. Empty means an in-memory store (caching
	// and metrics behave identically; nothing survives the process).
	DataDir string
	// Store overrides the backend directly (tests inject one); it takes
	// precedence over DataDir.
	Store store.Store
	// Per-tenant scheduling quotas (tenant = X-Smoothproc-Tenant header,
	// "default" otherwise). TenantMaxQueued bounds one tenant's waiting
	// jobs (default QueueDepth), TenantMaxRunning its running jobs
	// (default Workers), TenantNodeBudget the summed static node
	// estimates of its in-flight work (default 0 = unlimited). Negative
	// values mean unlimited. A quota rejection is a structured 429,
	// distinct from the server-wide load-shed 503.
	TenantMaxQueued  int
	TenantMaxRunning int
	TenantNodeBudget uint64
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.SpecCacheSize <= 0 {
		c.SpecCacheSize = 128
	}
	if c.ResultCacheSize <= 0 {
		c.ResultCacheSize = 1024
	}
	if c.SessionCacheSize <= 0 {
		c.SessionCacheSize = 64
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 12
	}
	if c.MaxNodes <= 0 {
		c.MaxNodes = 500000
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.TenantMaxQueued == 0 {
		c.TenantMaxQueued = c.QueueDepth
	}
	if c.TenantMaxRunning == 0 {
		c.TenantMaxRunning = c.Workers
	}
	return c
}

// quota converts the config knobs to the scheduler's quota (negative =
// unlimited = zero there).
func (c Config) quota() TenantQuota {
	return TenantQuota{
		MaxQueued:  max(c.TenantMaxQueued, 0),
		MaxRunning: max(c.TenantMaxRunning, 0),
		NodeBudget: c.TenantNodeBudget,
	}
}

// compiledSpec is the spec cache's value: the compiled program together
// with its static-analysis findings, so re-uploads report the same
// classification without re-vetting.
type compiledSpec struct {
	prog     *eqlang.Program
	findings []specvet.Diagnostic
	// elims are the structured Theorems 5/6 verdicts; the delta-solve
	// endpoint is gated on them.
	elims []specvet.ElimVerdict
	// plan is the static search-cost analysis, computed once at upload.
	// Admission control and worker auto-selection read it on every solve.
	plan *specplan.Plan
}

// Server wires the store, the caches, the scheduler and the HTTP
// surface together. The three LRUs are read-through caches over one
// content-addressed store: a miss consults the store before declaring
// the object unknown, and completed work is written through, so a
// restart on the same -data-dir resumes with its specs, results and
// sessions intact.
type Server struct {
	cfg      Config
	sched    *Scheduler
	store    *store.Measured
	backend  string // "disk" or "memory", for /v1/store
	specs    *LRU[string, compiledSpec]
	results  *LRU[resultKey, SolveResult]
	sessions *LRU[string, *sessionEntry]
	sessMu   sync.Mutex // serializes session create-or-get
	mux      *http.ServeMux

	requests      metrics.Counter
	compiles      metrics.Counter
	compileErrors metrics.Counter
	nodesSearched metrics.Counter
	solutions     metrics.Counter
	// Admission control: solves the static plan admitted, solves it
	// rejected as guaranteed over budget, and solves whose worker count
	// the Theorem 1 partition width picked.
	admitted           metrics.Counter
	rejectedOverBudget metrics.Counter
	autoWorkers        metrics.Counter
	// Session and streaming traffic: how often incremental state was
	// created, deepened (resumes), served as-is (replays), answered by a
	// Theorem 5/6 projection (deltas), and how many solutions were pushed
	// over live streams.
	sessionCreates metrics.Counter
	sessionResumes metrics.Counter
	sessionReplays metrics.Counter
	deltaSolves    metrics.Counter
	streamed       metrics.Counter
	// Durable-layer traffic: sessions rebuilt from persisted checkpoints
	// after a restart (or cache eviction), and store operations that
	// failed (persistence is best-effort on the write path: a full disk
	// degrades durability, not availability).
	sessionRestores metrics.Counter
	storeErrors     metrics.Counter
	// Work-stealing residue accumulated across parallel searches: steal
	// events, worker parks, and memo in-flight waits. Scheduling noise by
	// nature (never part of cached results), but the totals show whether
	// the pool is actually sharing work or idling.
	steals        metrics.Counter
	idleWaits     metrics.Counter
	inflightWaits metrics.Counter
	start         time.Time
}

// New builds a server and starts its worker pool. Callers own shutdown:
// see Shutdown. The only construction error is a DataDir that cannot be
// opened.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	backend, name := cfg.Store, "memory"
	if backend == nil {
		if cfg.DataDir != "" {
			disk, err := store.NewDisk(cfg.DataDir)
			if err != nil {
				return nil, err
			}
			backend = disk
		} else {
			backend = store.NewMemory()
		}
	}
	if _, ok := backend.(*store.Disk); ok {
		name = "disk"
	}
	s := &Server{
		cfg:      cfg,
		sched:    NewSchedulerQuota(cfg.Workers, cfg.QueueDepth, cfg.quota()),
		store:    store.NewMeasured(backend),
		backend:  name,
		specs:    NewLRU[string, compiledSpec](cfg.SpecCacheSize),
		results:  NewLRU[resultKey, SolveResult](cfg.ResultCacheSize),
		sessions: NewLRU[string, *sessionEntry](cfg.SessionCacheSize),
		mux:      http.NewServeMux(),
		start:    time.Now(),
	}
	s.mux.HandleFunc("POST /v1/specs", s.handleSpecs)
	s.mux.HandleFunc("POST /v1/solve", s.handleSolve)
	s.mux.HandleFunc("POST /v1/solve/stream", s.handleSolveStream)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("POST /v1/sessions", s.handleSessionCreate)
	s.mux.HandleFunc("GET /v1/sessions/{hash}", s.handleSessionGet)
	s.mux.HandleFunc("POST /v1/sessions/{hash}/resume", s.handleSessionResume)
	s.mux.HandleFunc("POST /v1/sessions/{hash}/delta", s.handleSessionDelta)
	s.mux.HandleFunc("GET /v1/store", s.handleStoreStats)
	s.mux.HandleFunc("GET /v1/store/{kind}", s.handleStoreList)
	s.mux.HandleFunc("POST /v1/store/gc", s.handleStoreGC)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s, nil
}

// Handler returns the HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown drains the scheduler (see Scheduler.Shutdown) and closes the
// store. The HTTP listener is the caller's to stop first.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.sched.Shutdown(ctx)
	if cerr := s.store.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// persistCtx is the context for store writes. Deliberately a root:
// durable writes are server-scoped — a client disconnecting mid-request
// must not abort persisting work the server already did.
var persistCtx = context.Background() //smoothlint:allow ctxflow store persistence is server-scoped, not request-scoped

// maxBodyBytes bounds request bodies; specs are small programs, not
// bulk uploads.
const maxBodyBytes = 1 << 20

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// An encode error here means the connection is gone; there is no one
	// left to tell.
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	body := ErrorBody{Error: err.Error()}
	var eqErr *eqlang.Error
	if errors.As(err, &eqErr) {
		body.Line = eqErr.Line
	}
	writeJSON(w, status, body)
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return false
	}
	return true
}

// compile returns the cached spec for source, vetting, compiling and
// caching on a miss. Compilation runs through the static analyzer: a
// spec with error-severity findings (parse/compile failures, support or
// growth violations, undefined channels) is rejected with a *VetError
// carrying the full findings; warnings and theorem classifications are
// cached alongside the program and reported non-fatally.
func (s *Server) compile(source string) (hash string, spec compiledSpec, cached bool, err error) {
	hash = specHash(source)
	if spec, ok := s.specs.Get(hash); ok {
		return hash, spec, true, nil
	}
	s.compiles.Inc()
	vr := specvet.Vet(source)
	if vr.HasErrors() {
		s.compileErrors.Inc()
		return "", compiledSpec{}, false, &VetError{Findings: vr.Findings}
	}
	spec = compiledSpec{prog: vr.Program, findings: vr.Findings, elims: vr.Eliminations, plan: vr.Plan}
	s.specs.Put(hash, spec)
	// Write the source through to the store: the hash stays resolvable
	// across cache eviction and restarts (specs are tiny; findings and
	// plan are recomputed on the way back in).
	if err := s.store.Put(persistCtx, store.KindSpec, store.Key(hash), []byte(source)); err != nil {
		s.storeErrors.Inc()
	}
	return hash, spec, false, nil
}

// lookupSpec resolves a hash to its compiled spec: LRU first, then the
// durable store (recompiling the persisted source). False means the
// hash is genuinely unknown.
func (s *Server) lookupSpec(ctx context.Context, hash string) (compiledSpec, bool) {
	if spec, ok := s.specs.Get(hash); ok {
		return spec, true
	}
	data, err := s.store.Get(ctx, store.KindSpec, store.Key(hash))
	if err != nil {
		return compiledSpec{}, false
	}
	h, spec, _, err := s.compile(string(data))
	if err != nil || h != hash {
		// A persisted spec that no longer vets (or hashes differently)
		// cannot be served under this name.
		s.storeErrors.Inc()
		return compiledSpec{}, false
	}
	return spec, true
}

// storeResultKey derives the result blob's content address from the
// cache key: the SHA-256 of the canonical (spec, params) rendering.
func storeResultKey(k resultKey) store.Key {
	return store.KeyOf([]byte(fmt.Sprintf("result|%s|d%d|n%d|w%d",
		k.hash, k.params.Depth, k.params.MaxNodes, k.params.Workers)))
}

// cachedResult is the read-through result lookup: LRU, then store.
func (s *Server) cachedResult(ctx context.Context, key resultKey) (*SolveResult, bool) {
	if res, ok := s.results.Get(key); ok {
		return &res, true
	}
	data, err := s.store.Get(ctx, store.KindResult, storeResultKey(key))
	if err != nil {
		return nil, false
	}
	var res SolveResult
	if json.Unmarshal(data, &res) != nil {
		s.storeErrors.Inc()
		return nil, false
	}
	s.results.Put(key, res)
	return &res, true
}

// saveResult writes a finished search through the LRU into the store.
func (s *Server) saveResult(key resultKey, res SolveResult) {
	s.results.Put(key, res)
	data, err := json.Marshal(res)
	if err == nil {
		err = s.store.Put(persistCtx, store.KindResult, storeResultKey(key), data)
	}
	if err != nil {
		s.storeErrors.Inc()
	}
}

func specInfo(hash string, spec compiledSpec, cached bool) SpecInfo {
	p := spec.prog.Problem()
	info := SpecInfo{
		Hash:     hash,
		Channels: p.Channels,
		Depth:    spec.prog.Depth,
		Cached:   cached,
		Findings: spec.findings,
		Plan:     spec.plan,
	}
	for _, d := range spec.prog.System.Descs {
		info.Descriptions = append(info.Descriptions, d.String())
	}
	return info
}

func (s *Server) handleSpecs(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	var req SpecRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Source == "" {
		writeError(w, http.StatusBadRequest, errors.New("service: empty spec source"))
		return
	}
	hash, spec, cached, err := s.compile(req.Source)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, compileErrorBody(err, req.Source))
		return
	}
	writeJSON(w, http.StatusOK, specInfo(hash, spec, cached))
}

// compileErrorBody builds the 400 body for a rejected spec, locating
// the first error in the submitted source. Vet rejections carry the
// full findings list; plain eqlang errors carry line and snippet only.
func compileErrorBody(err error, source string) ErrorBody {
	body := ErrorBody{Error: err.Error()}
	var ve *VetError
	var eqErr *eqlang.Error
	switch {
	case errors.As(err, &ve):
		body.Findings = ve.Findings
		if line := ve.Line(); line > 0 {
			body.Line = line
			body.Snippet = eqlang.FormatSnippet(source, line)
		}
	case errors.As(err, &eqErr):
		body.Line = eqErr.Line
		body.Snippet = eqlang.FormatSnippet(source, eqErr.Line)
	}
	return body
}

// resolveSpec turns a request's source-or-hash pair into a compiled
// spec, writing the error response itself when it cannot (false return).
func (s *Server) resolveSpec(w http.ResponseWriter, r *http.Request, source, specHash string) (hash string, spec compiledSpec, ok bool) {
	switch {
	case source != "" && specHash != "":
		writeError(w, http.StatusBadRequest, errors.New("service: give source or spec_hash, not both"))
		return "", compiledSpec{}, false
	case source != "":
		var err error
		if hash, spec, _, err = s.compile(source); err != nil {
			writeJSON(w, http.StatusBadRequest, compileErrorBody(err, source))
			return "", compiledSpec{}, false
		}
		return hash, spec, true
	case specHash != "":
		spec, found := s.lookupSpec(r.Context(), specHash)
		if !found {
			writeError(w, http.StatusNotFound, errors.New("service: unknown spec hash (upload it via /v1/specs)"))
			return "", compiledSpec{}, false
		}
		return specHash, spec, true
	default:
		writeError(w, http.StatusBadRequest, errors.New("service: need source or spec_hash"))
		return "", compiledSpec{}, false
	}
}

// maxTenantLen bounds the accepted tenant header; longer names are
// truncated rather than rejected (quota identity, not data).
const maxTenantLen = 64

// tenantOf extracts the request's fair-queuing tenant.
func tenantOf(r *http.Request) string {
	t := r.Header.Get("X-Smoothproc-Tenant")
	if t == "" {
		return DefaultTenant
	}
	if len(t) > maxTenantLen {
		t = t[:maxTenantLen]
	}
	return t
}

// traceOf returns the request's trace ID, honoring a client-supplied
// X-Smoothproc-Trace and minting one otherwise, so every job is
// traceable end to end whether or not the caller propagates IDs.
func (s *Server) traceOf(r *http.Request) string {
	if id := r.Header.Get("X-Smoothproc-Trace"); id != "" {
		if len(id) > maxTenantLen {
			id = id[:maxTenantLen]
		}
		return id
	}
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "trace-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// writeSubmitError maps a Scheduler.Submit error to the wire: quota
// rejections are structured 429s (per-tenant back-pressure), queue-full
// and shutdown are 503s (server-wide), anything else a 500. Returns
// false when err was nil.
func writeSubmitError(w http.ResponseWriter, err error) bool {
	var qe *QuotaError
	switch {
	case err == nil:
		return false
	case errors.As(err, &qe):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, ErrorBody{
			Error: qe.Error(),
			Quota: &QuotaBody{Tenant: qe.Tenant, Quota: qe.Quota, Limit: qe.Limit, Current: qe.Current},
		})
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, ErrShutdown):
		writeError(w, http.StatusServiceUnavailable, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
	return true
}

// params normalizes a solve request against the server caps. When the
// client does not choose a worker count, the spec's plan does: the
// Theorem 1 partition width is the number of independent channel groups
// — parallelism beyond it shares no structure to split. Safe to vary
// per request because SolveResult.Stats is the deterministic report
// (worker count never changes the answer, only the wall clock).
func (s *Server) params(req SolveRequest, prog *eqlang.Program, plan *specplan.Plan) SolveParams {
	p := SolveParams{Depth: req.Depth, MaxNodes: req.MaxNodes, Workers: req.Workers}
	if p.Depth <= 0 {
		p.Depth = prog.Depth
	}
	p.Depth = min(p.Depth, s.cfg.MaxDepth)
	if p.MaxNodes <= 0 || p.MaxNodes > s.cfg.MaxNodes {
		p.MaxNodes = s.cfg.MaxNodes
	}
	if p.Workers <= 0 && plan != nil && plan.PartitionWidth > 1 {
		p.Workers = min(plan.PartitionWidth, runtime.GOMAXPROCS(0))
		s.autoWorkers.Inc()
	}
	p.Workers = max(p.Workers, 1)
	p.Workers = min(p.Workers, 4*runtime.GOMAXPROCS(0))
	return p
}

// admit runs static admission control: a request whose *guaranteed*
// search floor (Plan.MinNodes, the Theorem 1 auto-admitted subtree)
// exceeds its node budget cannot finish — it would burn a worker only
// to truncate — so it is rejected up front and never reaches the
// scheduler. The estimate is returned for the 422 body; nil admits.
// The upper bound alone never rejects: a small Nodes bound proves a
// search cheap, but a large one does not prove it expensive.
func (s *Server) admit(p SolveParams, plan *specplan.Plan) *PlanEstimate {
	if plan == nil {
		return nil
	}
	lo := plan.MinNodes(p.Depth)
	if lo <= uint64(p.MaxNodes) {
		s.admitted.Inc()
		return nil
	}
	s.rejectedOverBudget.Inc()
	return &PlanEstimate{
		Depth:             p.Depth,
		PredictedMinNodes: lo,
		NodesBound:        plan.Nodes(p.Depth),
		MaxNodes:          p.MaxNodes,
		PartitionWidth:    plan.PartitionWidth,
	}
}

// rejectOverBudget writes the structured 422 for an inadmissible solve.
func rejectOverBudget(w http.ResponseWriter, est *PlanEstimate) {
	writeJSON(w, http.StatusUnprocessableEntity, ErrorBody{
		Error: fmt.Sprintf("service: solve rejected by admission control: the search visits at least %s nodes at depth %d, over the %d-node budget (lower the depth or raise max_nodes)",
			specplan.FormatBound(est.PredictedMinNodes), est.Depth, est.MaxNodes),
		Plan: est,
	})
}

func (s *Server) timeout(req SolveRequest) time.Duration {
	d := time.Duration(req.TimeoutMs) * time.Millisecond
	if d <= 0 {
		d = s.cfg.DefaultTimeout
	}
	return min(d, s.cfg.MaxTimeout)
}

// solve runs one from-scratch search; solveProblem is shared with the
// streaming endpoint (which adds a solution callback), and wireResult
// with the session endpoints (whose searches run inside a session).
func (s *Server) solve(ctx context.Context, prog *eqlang.Program, p SolveParams) *SolveResult {
	problem := prog.Problem()
	problem.CollectVisited = !s.cfg.NoVisited
	return s.solveProblem(ctx, problem, p)
}

func (s *Server) solveProblem(ctx context.Context, problem solver.Problem, p SolveParams) *SolveResult {
	problem.MaxDepth = p.Depth
	problem.MaxNodes = p.MaxNodes
	problem.Compiled = s.cfg.Compiled
	start := time.Now()
	var res solver.Result
	if p.Workers > 1 {
		res = solver.EnumerateParallel(ctx, problem, p.Workers)
	} else {
		res = solver.Enumerate(ctx, problem)
	}
	s.countSearch(res, res.Nodes, len(res.Solutions))
	return wireResult(res, start)
}

// countSearch feeds the search counters. newNodes and newSolutions are
// what this search actually classified — for a resumed session leg that
// is the growth beyond the retained prefix, so nodes_searched_total
// reflects real work, not re-reported prefixes.
func (s *Server) countSearch(res solver.Result, newNodes, newSolutions int) {
	s.nodesSearched.Add(int64(newNodes))
	s.solutions.Add(int64(newSolutions))
	s.steals.Add(res.Stats.Steals)
	s.idleWaits.Add(res.Stats.IdleWaits)
	s.inflightWaits.Add(res.Stats.Eval.InflightWaits)
}

// wireResult converts a solver result to the wire form.
func wireResult(res solver.Result, start time.Time) *SolveResult {
	return &SolveResult{
		Solutions:  res.SolutionKeys(),
		Frontier:   len(res.Frontier),
		DeadLeaves: len(res.DeadLeaves),
		Nodes:      res.Nodes,
		Truncated:  res.Truncated,
		Canceled:   res.Canceled,
		Stats:      res.Stats.Report().Deterministic(),
		ElapsedMs:  float64(time.Since(start).Microseconds()) / 1000,
	}
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	admitStart := time.Now()
	var req SolveRequest
	if !decodeBody(w, r, &req) {
		return
	}

	hash, spec, ok := s.resolveSpec(w, r, req.Source, req.SpecHash)
	if !ok {
		return
	}
	prog := spec.prog

	p := s.params(req, prog, spec.plan)
	if est := s.admit(p, spec.plan); est != nil {
		rejectOverBudget(w, est)
		return
	}
	key := resultKey{hash: hash, params: p}
	if !req.NoCache {
		if cached, ok := s.cachedResult(r.Context(), key); ok {
			cached.Cached = true
			writeJSON(w, http.StatusOK, JobView{
				State:    JobDone,
				SpecHash: hash,
				Params:   p,
				Result:   cached,
			})
			return
		}
	}

	var estimate uint64
	if spec.plan != nil {
		estimate = spec.plan.MinNodes(p.Depth)
	}
	job, err := s.sched.Submit(Submission{
		Tenant:   tenantOf(r),
		SpecHash: hash,
		Params:   p,
		Timeout:  s.timeout(req),
		Estimate: estimate,
		TraceID:  s.traceOf(r),
		AdmitNs:  time.Since(admitStart).Nanoseconds(),
		Run: func(ctx context.Context) (*SolveResult, error) {
			res := s.solve(ctx, prog, p)
			if !res.Truncated && !res.Canceled {
				s.saveResult(key, *res)
			}
			return res, nil
		},
	})
	if writeSubmitError(w, err) {
		return
	}

	if req.Wait {
		select {
		case <-job.Done():
			writeJSON(w, http.StatusOK, s.sched.View(job))
		case <-r.Context().Done():
			// The client went away; the job keeps running and stays
			// pollable.
			writeJSON(w, http.StatusAccepted, s.sched.View(job))
		}
		return
	}
	writeJSON(w, http.StatusAccepted, s.sched.View(job))
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	job, ok := s.sched.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("service: unknown job id"))
		return
	}
	writeJSON(w, http.StatusOK, s.sched.View(job))
}

// storeView assembles the durable layer's footprint for GET /v1/store
// and the smoothctl store tooling.
func (s *Server) storeView(ctx context.Context) (StoreView, error) {
	v := StoreView{Backend: s.backend}
	if d, ok := s.store.Unwrap().(*store.Disk); ok {
		v.Dir = d.Dir()
	}
	for _, k := range store.Kinds() {
		infos, err := s.store.List(ctx, k)
		if err != nil {
			return StoreView{}, err
		}
		kv := StoreKindView{Kind: string(k), Objects: len(infos), Stats: s.store.KindStats(k)}
		for _, info := range infos {
			kv.Bytes += info.Size
		}
		v.Kinds = append(v.Kinds, kv)
		v.TotalObjects += kv.Objects
		v.TotalBytes += kv.Bytes
	}
	return v, nil
}

func (s *Server) handleStoreStats(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	v, err := s.storeView(r.Context())
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleStoreList(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	kind := store.Kind(r.PathValue("kind"))
	if !store.ValidKind(kind) {
		writeError(w, http.StatusNotFound, fmt.Errorf("service: unknown store kind %q", kind))
		return
	}
	infos, err := s.store.List(r.Context(), kind)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, StoreListView{Kind: string(kind), Objects: infos})
}

func (s *Server) handleStoreGC(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	var req StoreGCRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.MaxBytes < 0 {
		writeError(w, http.StatusBadRequest, errors.New("service: max_bytes must be >= 0"))
		return
	}
	deleted, err := store.GC(r.Context(), s.store, req.MaxBytes)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	v := StoreGCView{Deleted: deleted}
	if v.Deleted == nil {
		v.Deleted = []store.Info{}
	}
	for _, info := range deleted {
		v.DeletedBytes += info.Size
	}
	if sv, err := s.storeView(r.Context()); err == nil {
		v.RemainingBytes = sv.TotalBytes
	}
	writeJSON(w, http.StatusOK, v)
}

// Metrics snapshots the server counters in the repository's stable
// stats format — the same shape the solver and netsim report, so the
// tooling (and goldens) carry over.
func (s *Server) Metrics() report.Stats {
	server := report.Section{Name: "server"}
	server.Add("requests total", s.requests.Load(), "")
	server.Add("specs compiled", s.compiles.Load(), "")
	server.Add("compile errors", s.compileErrors.Load(), "")
	server.Add("uptime", int64(time.Since(s.start)), "ns")

	cache := report.Section{Name: "cache"}
	cache.Add("spec hits", s.specs.Hits(), "")
	cache.Add("spec misses", s.specs.Misses(), "")
	cache.AddInt("spec entries", s.specs.Len())
	cache.Add("result hits", s.results.Hits(), "")
	cache.Add("result misses", s.results.Misses(), "")
	cache.AddInt("result entries", s.results.Len())

	admission := report.Section{Name: "admission"}
	admission.Add("admitted", s.admitted.Load(), "")
	admission.Add("rejected over budget", s.rejectedOverBudget.Load(), "")
	admission.Add("auto workers picked", s.autoWorkers.Load(), "")

	jobs := report.Section{Name: "jobs"}
	submitted, completed, failed, canceled := s.sched.Counts()
	jobs.Add("submitted", submitted, "")
	jobs.Add("completed", completed, "")
	jobs.Add("failed", failed, "")
	jobs.Add("canceled", canceled, "")
	jobs.AddInt("queued", s.sched.QueueDepth())
	queueWait, runTime := s.sched.Durations()
	jobs.Add("queue wait total", queueWait.TotalNanos(), "ns")
	jobs.Add("queue wait count", queueWait.Count(), "")
	jobs.Add("run total", runTime.TotalNanos(), "ns")
	jobs.Add("run count", runTime.Count(), "")

	sessions := report.Section{Name: "sessions"}
	sessions.Add("created", s.sessionCreates.Load(), "")
	sessions.Add("resumed", s.sessionResumes.Load(), "")
	sessions.Add("replayed", s.sessionReplays.Load(), "")
	sessions.Add("delta solves", s.deltaSolves.Load(), "")
	sessions.Add("solutions streamed", s.streamed.Load(), "")
	sessions.Add("restored from store", s.sessionRestores.Load(), "")
	sessions.AddInt("live", s.sessions.Len())

	storeSec := report.Section{Name: "store"}
	for _, k := range store.Kinds() {
		ks := s.store.KindStats(k)
		storeSec.Add(string(k)+" puts", ks.Puts, "")
		storeSec.Add(string(k)+" hits", ks.Hits, "")
		storeSec.Add(string(k)+" misses", ks.Misses, "")
		storeSec.Add(string(k)+" corrupt", ks.Corrupt, "")
		storeSec.Add(string(k)+" bytes in", ks.BytesIn, "B")
		storeSec.Add(string(k)+" bytes out", ks.BytesOut, "B")
	}
	storeSec.Add("errors", s.storeErrors.Load(), "")

	tenants := report.Section{Name: "tenants"}
	for _, ts := range s.sched.TenantStats() {
		tenants.Add(ts.Tenant+" submitted", ts.Submitted, "")
		tenants.Add(ts.Tenant+" completed", ts.Completed, "")
		tenants.Add(ts.Tenant+" failed", ts.Failed, "")
		tenants.Add(ts.Tenant+" canceled", ts.Canceled, "")
		tenants.Add(ts.Tenant+" quota rejected", ts.Rejected, "")
		tenants.AddInt(ts.Tenant+" queued", ts.Queued)
		tenants.AddInt(ts.Tenant+" running", ts.Running)
		tenants.Add(ts.Tenant+" inflight node estimate", int64(ts.Inflight), "")
		tenants.Add(ts.Tenant+" queue wait total", ts.QueueNs, "ns")
		tenants.Add(ts.Tenant+" run total", ts.RunNs, "ns")
	}

	search := report.Section{Name: "search"}
	search.Add("nodes searched total", s.nodesSearched.Load(), "")
	search.Add("solutions found total", s.solutions.Load(), "")
	search.Add("work steals total", s.steals.Load(), "sched")
	search.Add("idle waits total", s.idleWaits.Load(), "sched")
	search.Add("memo inflight waits total", s.inflightWaits.Load(), "sched")

	return report.Stats{Sections: []report.Section{server, cache, admission, jobs, sessions, storeSec, tenants, search}}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
