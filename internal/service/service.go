package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"

	"smoothproc/internal/eqlang"
	"smoothproc/internal/metrics"
	"smoothproc/internal/report"
	"smoothproc/internal/solver"
	"smoothproc/internal/specplan"
	"smoothproc/internal/specvet"
)

// Config bounds the server. Every knob has a production-minded default:
// bounded queue, bounded depth, bounded nodes, bounded wall clock — a
// request can ask for less than the caps but never more.
type Config struct {
	// Workers is the solve worker-pool size (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds waiting jobs; beyond it the server sheds load
	// with 503 (default 64).
	QueueDepth int
	// SpecCacheSize and ResultCacheSize bound the two LRUs (defaults 128
	// and 1024).
	SpecCacheSize   int
	ResultCacheSize int
	// SessionCacheSize bounds the live solve sessions (default 64). Each
	// session retains its search frontier and evaluator memo, so this cap
	// is the server's incremental-state memory knob.
	SessionCacheSize int
	// MaxDepth caps the probe depth a request may ask for (default 12).
	MaxDepth int
	// MaxNodes caps (and defaults) the per-search node budget (default
	// 500000).
	MaxNodes int
	// DefaultTimeout and MaxTimeout bound each job's wall clock
	// (defaults 30s and 2m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// NoVisited skips retaining each search's visited-node list. The
	// wire result never includes it, so this only lowers memory.
	NoVisited bool
	// Compiled evaluates descriptions as descvm bytecode in every
	// served search. Results, stats and cache keys are byte-identical
	// to interpreted evaluation (the solver's differential suite holds
	// the two equal), so the switch is safe to flip on a live fleet.
	Compiled bool
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.SpecCacheSize <= 0 {
		c.SpecCacheSize = 128
	}
	if c.ResultCacheSize <= 0 {
		c.ResultCacheSize = 1024
	}
	if c.SessionCacheSize <= 0 {
		c.SessionCacheSize = 64
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 12
	}
	if c.MaxNodes <= 0 {
		c.MaxNodes = 500000
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	return c
}

// compiledSpec is the spec cache's value: the compiled program together
// with its static-analysis findings, so re-uploads report the same
// classification without re-vetting.
type compiledSpec struct {
	prog     *eqlang.Program
	findings []specvet.Diagnostic
	// elims are the structured Theorems 5/6 verdicts; the delta-solve
	// endpoint is gated on them.
	elims []specvet.ElimVerdict
	// plan is the static search-cost analysis, computed once at upload.
	// Admission control and worker auto-selection read it on every solve.
	plan *specplan.Plan
}

// Server wires the caches, the scheduler and the HTTP surface together.
type Server struct {
	cfg      Config
	sched    *Scheduler
	specs    *LRU[string, compiledSpec]
	results  *LRU[resultKey, SolveResult]
	sessions *LRU[string, *sessionEntry]
	sessMu   sync.Mutex // serializes session create-or-get
	mux      *http.ServeMux

	requests      metrics.Counter
	compiles      metrics.Counter
	compileErrors metrics.Counter
	nodesSearched metrics.Counter
	solutions     metrics.Counter
	// Admission control: solves the static plan admitted, solves it
	// rejected as guaranteed over budget, and solves whose worker count
	// the Theorem 1 partition width picked.
	admitted           metrics.Counter
	rejectedOverBudget metrics.Counter
	autoWorkers        metrics.Counter
	// Session and streaming traffic: how often incremental state was
	// created, deepened (resumes), served as-is (replays), answered by a
	// Theorem 5/6 projection (deltas), and how many solutions were pushed
	// over live streams.
	sessionCreates metrics.Counter
	sessionResumes metrics.Counter
	sessionReplays metrics.Counter
	deltaSolves    metrics.Counter
	streamed       metrics.Counter
	// Work-stealing residue accumulated across parallel searches: steal
	// events, worker parks, and memo in-flight waits. Scheduling noise by
	// nature (never part of cached results), but the totals show whether
	// the pool is actually sharing work or idling.
	steals        metrics.Counter
	idleWaits     metrics.Counter
	inflightWaits metrics.Counter
	start         time.Time
}

// New builds a server and starts its worker pool. Callers own shutdown:
// see Shutdown.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		sched:    NewScheduler(cfg.Workers, cfg.QueueDepth),
		specs:    NewLRU[string, compiledSpec](cfg.SpecCacheSize),
		results:  NewLRU[resultKey, SolveResult](cfg.ResultCacheSize),
		sessions: NewLRU[string, *sessionEntry](cfg.SessionCacheSize),
		mux:      http.NewServeMux(),
		start:    time.Now(),
	}
	s.mux.HandleFunc("POST /v1/specs", s.handleSpecs)
	s.mux.HandleFunc("POST /v1/solve", s.handleSolve)
	s.mux.HandleFunc("POST /v1/solve/stream", s.handleSolveStream)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("POST /v1/sessions", s.handleSessionCreate)
	s.mux.HandleFunc("GET /v1/sessions/{hash}", s.handleSessionGet)
	s.mux.HandleFunc("POST /v1/sessions/{hash}/resume", s.handleSessionResume)
	s.mux.HandleFunc("POST /v1/sessions/{hash}/delta", s.handleSessionDelta)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// Handler returns the HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown drains the scheduler (see Scheduler.Shutdown). The HTTP
// listener is the caller's to stop first.
func (s *Server) Shutdown(ctx context.Context) error { return s.sched.Shutdown(ctx) }

// maxBodyBytes bounds request bodies; specs are small programs, not
// bulk uploads.
const maxBodyBytes = 1 << 20

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// An encode error here means the connection is gone; there is no one
	// left to tell.
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	body := ErrorBody{Error: err.Error()}
	var eqErr *eqlang.Error
	if errors.As(err, &eqErr) {
		body.Line = eqErr.Line
	}
	writeJSON(w, status, body)
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return false
	}
	return true
}

// compile returns the cached spec for source, vetting, compiling and
// caching on a miss. Compilation runs through the static analyzer: a
// spec with error-severity findings (parse/compile failures, support or
// growth violations, undefined channels) is rejected with a *VetError
// carrying the full findings; warnings and theorem classifications are
// cached alongside the program and reported non-fatally.
func (s *Server) compile(source string) (hash string, spec compiledSpec, cached bool, err error) {
	hash = specHash(source)
	if spec, ok := s.specs.Get(hash); ok {
		return hash, spec, true, nil
	}
	s.compiles.Inc()
	vr := specvet.Vet(source)
	if vr.HasErrors() {
		s.compileErrors.Inc()
		return "", compiledSpec{}, false, &VetError{Findings: vr.Findings}
	}
	spec = compiledSpec{prog: vr.Program, findings: vr.Findings, elims: vr.Eliminations, plan: vr.Plan}
	s.specs.Put(hash, spec)
	return hash, spec, false, nil
}

func specInfo(hash string, spec compiledSpec, cached bool) SpecInfo {
	p := spec.prog.Problem()
	info := SpecInfo{
		Hash:     hash,
		Channels: p.Channels,
		Depth:    spec.prog.Depth,
		Cached:   cached,
		Findings: spec.findings,
		Plan:     spec.plan,
	}
	for _, d := range spec.prog.System.Descs {
		info.Descriptions = append(info.Descriptions, d.String())
	}
	return info
}

func (s *Server) handleSpecs(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	var req SpecRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Source == "" {
		writeError(w, http.StatusBadRequest, errors.New("service: empty spec source"))
		return
	}
	hash, spec, cached, err := s.compile(req.Source)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, compileErrorBody(err, req.Source))
		return
	}
	writeJSON(w, http.StatusOK, specInfo(hash, spec, cached))
}

// compileErrorBody builds the 400 body for a rejected spec, locating
// the first error in the submitted source. Vet rejections carry the
// full findings list; plain eqlang errors carry line and snippet only.
func compileErrorBody(err error, source string) ErrorBody {
	body := ErrorBody{Error: err.Error()}
	var ve *VetError
	var eqErr *eqlang.Error
	switch {
	case errors.As(err, &ve):
		body.Findings = ve.Findings
		if line := ve.Line(); line > 0 {
			body.Line = line
			body.Snippet = eqlang.FormatSnippet(source, line)
		}
	case errors.As(err, &eqErr):
		body.Line = eqErr.Line
		body.Snippet = eqlang.FormatSnippet(source, eqErr.Line)
	}
	return body
}

// resolveSpec turns a request's source-or-hash pair into a compiled
// spec, writing the error response itself when it cannot (false return).
func (s *Server) resolveSpec(w http.ResponseWriter, source, specHash string) (hash string, spec compiledSpec, ok bool) {
	switch {
	case source != "" && specHash != "":
		writeError(w, http.StatusBadRequest, errors.New("service: give source or spec_hash, not both"))
		return "", compiledSpec{}, false
	case source != "":
		var err error
		if hash, spec, _, err = s.compile(source); err != nil {
			writeJSON(w, http.StatusBadRequest, compileErrorBody(err, source))
			return "", compiledSpec{}, false
		}
		return hash, spec, true
	case specHash != "":
		spec, found := s.specs.Get(specHash)
		if !found {
			writeError(w, http.StatusNotFound, errors.New("service: unknown spec hash (upload it via /v1/specs)"))
			return "", compiledSpec{}, false
		}
		return specHash, spec, true
	default:
		writeError(w, http.StatusBadRequest, errors.New("service: need source or spec_hash"))
		return "", compiledSpec{}, false
	}
}

// params normalizes a solve request against the server caps. When the
// client does not choose a worker count, the spec's plan does: the
// Theorem 1 partition width is the number of independent channel groups
// — parallelism beyond it shares no structure to split. Safe to vary
// per request because SolveResult.Stats is the deterministic report
// (worker count never changes the answer, only the wall clock).
func (s *Server) params(req SolveRequest, prog *eqlang.Program, plan *specplan.Plan) SolveParams {
	p := SolveParams{Depth: req.Depth, MaxNodes: req.MaxNodes, Workers: req.Workers}
	if p.Depth <= 0 {
		p.Depth = prog.Depth
	}
	p.Depth = min(p.Depth, s.cfg.MaxDepth)
	if p.MaxNodes <= 0 || p.MaxNodes > s.cfg.MaxNodes {
		p.MaxNodes = s.cfg.MaxNodes
	}
	if p.Workers <= 0 && plan != nil && plan.PartitionWidth > 1 {
		p.Workers = min(plan.PartitionWidth, runtime.GOMAXPROCS(0))
		s.autoWorkers.Inc()
	}
	p.Workers = max(p.Workers, 1)
	p.Workers = min(p.Workers, 4*runtime.GOMAXPROCS(0))
	return p
}

// admit runs static admission control: a request whose *guaranteed*
// search floor (Plan.MinNodes, the Theorem 1 auto-admitted subtree)
// exceeds its node budget cannot finish — it would burn a worker only
// to truncate — so it is rejected up front and never reaches the
// scheduler. The estimate is returned for the 422 body; nil admits.
// The upper bound alone never rejects: a small Nodes bound proves a
// search cheap, but a large one does not prove it expensive.
func (s *Server) admit(p SolveParams, plan *specplan.Plan) *PlanEstimate {
	if plan == nil {
		return nil
	}
	lo := plan.MinNodes(p.Depth)
	if lo <= uint64(p.MaxNodes) {
		s.admitted.Inc()
		return nil
	}
	s.rejectedOverBudget.Inc()
	return &PlanEstimate{
		Depth:             p.Depth,
		PredictedMinNodes: lo,
		NodesBound:        plan.Nodes(p.Depth),
		MaxNodes:          p.MaxNodes,
		PartitionWidth:    plan.PartitionWidth,
	}
}

// rejectOverBudget writes the structured 422 for an inadmissible solve.
func rejectOverBudget(w http.ResponseWriter, est *PlanEstimate) {
	writeJSON(w, http.StatusUnprocessableEntity, ErrorBody{
		Error: fmt.Sprintf("service: solve rejected by admission control: the search visits at least %s nodes at depth %d, over the %d-node budget (lower the depth or raise max_nodes)",
			specplan.FormatBound(est.PredictedMinNodes), est.Depth, est.MaxNodes),
		Plan: est,
	})
}

func (s *Server) timeout(req SolveRequest) time.Duration {
	d := time.Duration(req.TimeoutMs) * time.Millisecond
	if d <= 0 {
		d = s.cfg.DefaultTimeout
	}
	return min(d, s.cfg.MaxTimeout)
}

// solve runs one from-scratch search; solveProblem is shared with the
// streaming endpoint (which adds a solution callback), and wireResult
// with the session endpoints (whose searches run inside a session).
func (s *Server) solve(ctx context.Context, prog *eqlang.Program, p SolveParams) *SolveResult {
	problem := prog.Problem()
	problem.CollectVisited = !s.cfg.NoVisited
	return s.solveProblem(ctx, problem, p)
}

func (s *Server) solveProblem(ctx context.Context, problem solver.Problem, p SolveParams) *SolveResult {
	problem.MaxDepth = p.Depth
	problem.MaxNodes = p.MaxNodes
	problem.Compiled = s.cfg.Compiled
	start := time.Now()
	var res solver.Result
	if p.Workers > 1 {
		res = solver.EnumerateParallel(ctx, problem, p.Workers)
	} else {
		res = solver.Enumerate(ctx, problem)
	}
	s.countSearch(res, res.Nodes, len(res.Solutions))
	return wireResult(res, start)
}

// countSearch feeds the search counters. newNodes and newSolutions are
// what this search actually classified — for a resumed session leg that
// is the growth beyond the retained prefix, so nodes_searched_total
// reflects real work, not re-reported prefixes.
func (s *Server) countSearch(res solver.Result, newNodes, newSolutions int) {
	s.nodesSearched.Add(int64(newNodes))
	s.solutions.Add(int64(newSolutions))
	s.steals.Add(res.Stats.Steals)
	s.idleWaits.Add(res.Stats.IdleWaits)
	s.inflightWaits.Add(res.Stats.Eval.InflightWaits)
}

// wireResult converts a solver result to the wire form.
func wireResult(res solver.Result, start time.Time) *SolveResult {
	return &SolveResult{
		Solutions:  res.SolutionKeys(),
		Frontier:   len(res.Frontier),
		DeadLeaves: len(res.DeadLeaves),
		Nodes:      res.Nodes,
		Truncated:  res.Truncated,
		Canceled:   res.Canceled,
		Stats:      res.Stats.Report().Deterministic(),
		ElapsedMs:  float64(time.Since(start).Microseconds()) / 1000,
	}
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	var req SolveRequest
	if !decodeBody(w, r, &req) {
		return
	}

	hash, spec, ok := s.resolveSpec(w, req.Source, req.SpecHash)
	if !ok {
		return
	}
	prog := spec.prog

	p := s.params(req, prog, spec.plan)
	if est := s.admit(p, spec.plan); est != nil {
		rejectOverBudget(w, est)
		return
	}
	key := resultKey{hash: hash, params: p}
	if !req.NoCache {
		if cached, ok := s.results.Get(key); ok {
			cached.Cached = true
			writeJSON(w, http.StatusOK, JobView{
				State:    JobDone,
				SpecHash: hash,
				Params:   p,
				Result:   &cached,
			})
			return
		}
	}

	job, err := s.sched.Submit(hash, p, s.timeout(req), func(ctx context.Context) (*SolveResult, error) {
		res := s.solve(ctx, prog, p)
		if !res.Truncated && !res.Canceled {
			s.results.Put(key, *res)
		}
		return res, nil
	})
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, ErrShutdown):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
		return
	}

	if req.Wait {
		select {
		case <-job.Done():
			writeJSON(w, http.StatusOK, s.sched.View(job))
		case <-r.Context().Done():
			// The client went away; the job keeps running and stays
			// pollable.
			writeJSON(w, http.StatusAccepted, s.sched.View(job))
		}
		return
	}
	writeJSON(w, http.StatusAccepted, s.sched.View(job))
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	job, ok := s.sched.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("service: unknown job id"))
		return
	}
	writeJSON(w, http.StatusOK, s.sched.View(job))
}

// Metrics snapshots the server counters in the repository's stable
// stats format — the same shape the solver and netsim report, so the
// tooling (and goldens) carry over.
func (s *Server) Metrics() report.Stats {
	server := report.Section{Name: "server"}
	server.Add("requests total", s.requests.Load(), "")
	server.Add("specs compiled", s.compiles.Load(), "")
	server.Add("compile errors", s.compileErrors.Load(), "")
	server.Add("uptime", int64(time.Since(s.start)), "ns")

	cache := report.Section{Name: "cache"}
	cache.Add("spec hits", s.specs.Hits(), "")
	cache.Add("spec misses", s.specs.Misses(), "")
	cache.AddInt("spec entries", s.specs.Len())
	cache.Add("result hits", s.results.Hits(), "")
	cache.Add("result misses", s.results.Misses(), "")
	cache.AddInt("result entries", s.results.Len())

	admission := report.Section{Name: "admission"}
	admission.Add("admitted", s.admitted.Load(), "")
	admission.Add("rejected over budget", s.rejectedOverBudget.Load(), "")
	admission.Add("auto workers picked", s.autoWorkers.Load(), "")

	jobs := report.Section{Name: "jobs"}
	submitted, completed, failed, canceled := s.sched.Counts()
	jobs.Add("submitted", submitted, "")
	jobs.Add("completed", completed, "")
	jobs.Add("failed", failed, "")
	jobs.Add("canceled", canceled, "")
	jobs.AddInt("queued", s.sched.QueueDepth())
	queueWait, runTime := s.sched.Durations()
	jobs.Add("queue wait total", queueWait.TotalNanos(), "ns")
	jobs.Add("queue wait count", queueWait.Count(), "")
	jobs.Add("run total", runTime.TotalNanos(), "ns")
	jobs.Add("run count", runTime.Count(), "")

	sessions := report.Section{Name: "sessions"}
	sessions.Add("created", s.sessionCreates.Load(), "")
	sessions.Add("resumed", s.sessionResumes.Load(), "")
	sessions.Add("replayed", s.sessionReplays.Load(), "")
	sessions.Add("delta solves", s.deltaSolves.Load(), "")
	sessions.Add("solutions streamed", s.streamed.Load(), "")
	sessions.AddInt("live", s.sessions.Len())

	search := report.Section{Name: "search"}
	search.Add("nodes searched total", s.nodesSearched.Load(), "")
	search.Add("solutions found total", s.solutions.Load(), "")
	search.Add("work steals total", s.steals.Load(), "sched")
	search.Add("idle waits total", s.idleWaits.Load(), "sched")
	search.Add("memo inflight waits total", s.inflightWaits.Load(), "sched")

	return report.Stats{Sections: []report.Section{server, cache, admission, jobs, sessions, search}}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
