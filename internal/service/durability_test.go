package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"
)

// postJSONTenant is postJSON with an X-Smoothproc-Tenant header.
func postJSONTenant(t *testing.T, url, tenant string, body any) (*http.Response, []byte) {
	t.Helper()
	js, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Smoothproc-Tenant", tenant)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// metricValue reads one named counter from /metrics (0 when absent).
func metricValue(t *testing.T, baseURL, section, item string) int64 {
	t.Helper()
	var stats struct {
		Sections []struct {
			Name  string `json:"name"`
			Items []struct {
				Name  string `json:"name"`
				Value int64  `json:"value"`
			} `json:"items"`
		} `json:"sections"`
	}
	if code := getJSON(t, baseURL+"/metrics", &stats); code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	for _, sec := range stats.Sections {
		if sec.Name != section {
			continue
		}
		for _, it := range sec.Items {
			if it.Name == item {
				return it.Value
			}
		}
	}
	return 0
}

// TestRestartDurability is the durable-layer round trip: upload a spec,
// solve it, run a session leg, tear the whole Service down, rebuild on
// the same data dir — the spec resolves by hash, the solve is a result
// cache hit with zero new search work, and the session resumes from its
// persisted checkpoint with a result byte-identical to a never-restarted
// control session.
func TestRestartDurability(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Workers: 2, DataDir: dir}

	// First life: upload, solve, open a session at depth 2.
	srv1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	resp, body := postJSON(t, ts1.URL+"/v1/specs", SpecRequest{Source: fig4})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload: status %d: %s", resp.StatusCode, body)
	}
	hash := decode[SpecInfo](t, body).Hash

	resp, body = postJSON(t, ts1.URL+"/v1/solve", SolveRequest{SpecHash: hash, Wait: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first solve: status %d: %s", resp.StatusCode, body)
	}
	firstResult := decode[JobView](t, body).Result
	if firstResult == nil || firstResult.Cached {
		t.Fatalf("first solve result = %+v, want fresh", firstResult)
	}

	resp, body = postJSON(t, ts1.URL+"/v1/sessions", SessionRequest{SpecHash: hash, Depth: 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("session create: status %d: %s", resp.StatusCode, body)
	}
	leg1 := decode[SessionView](t, body)
	if leg1.Outcome != "cold" {
		t.Fatalf("first leg outcome = %q, want cold", leg1.Outcome)
	}

	ts1.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// Second life, same data dir.
	srv2, ts2 := newTestServer(t, cfg)

	// The spec resolves by hash without re-upload…
	resp, body = postJSON(t, ts2.URL+"/v1/solve", SolveRequest{SpecHash: hash, Wait: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart solve: status %d: %s", resp.StatusCode, body)
	}
	again := decode[JobView](t, body)
	// …and the answer is a store-backed cache hit: no job ran, no node
	// was searched.
	if again.Result == nil || !again.Result.Cached {
		t.Fatalf("post-restart solve result = %+v, want cached", again.Result)
	}
	if !reflect.DeepEqual(again.Result.Solutions, firstResult.Solutions) {
		t.Errorf("post-restart solutions %v != first life %v", again.Result.Solutions, firstResult.Solutions)
	}
	if n := srv2.nodesSearched.Load(); n != 0 {
		t.Errorf("post-restart cached solve searched %d nodes, want 0", n)
	}

	// The session is rebuilt from its persisted checkpoint…
	var got SessionView
	if code := getJSON(t, ts2.URL+"/v1/sessions/"+hash, &got); code != http.StatusOK {
		t.Fatalf("post-restart session get: status %d", code)
	}
	if got.Nodes != leg1.Nodes || got.Depth != leg1.Depth {
		t.Errorf("restored session nodes=%d depth=%d, want %d/%d", got.Nodes, got.Depth, leg1.Nodes, leg1.Depth)
	}
	if r := metricValue(t, ts2.URL, "sessions", "restored from store"); r < 1 {
		t.Errorf("sessions restored from store = %d, want ≥ 1", r)
	}

	// …and a deepened resume matches a control session that never
	// restarted: same solutions, same node count, same deterministic
	// stats — the restart is invisible to the search.
	resp, body = postJSON(t, ts2.URL+"/v1/sessions/"+hash+"/resume", SessionRequest{Depth: 4})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart resume: status %d: %s", resp.StatusCode, body)
	}
	resumed := decode[SessionView](t, body)
	if resumed.Outcome != "resumed" {
		t.Errorf("post-restart resume outcome = %q, want resumed", resumed.Outcome)
	}

	_, tsCtl := newTestServer(t, Config{Workers: 2})
	resp, body = postJSON(t, tsCtl.URL+"/v1/sessions", SessionRequest{Source: fig4, Depth: 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("control session: status %d: %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, tsCtl.URL+"/v1/sessions/"+hash+"/resume", SessionRequest{Depth: 4})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("control resume: status %d: %s", resp.StatusCode, body)
	}
	control := decode[SessionView](t, body)

	if !reflect.DeepEqual(resumed.Result.Solutions, control.Result.Solutions) {
		t.Errorf("resumed solutions %v != control %v", resumed.Result.Solutions, control.Result.Solutions)
	}
	if resumed.Result.Nodes != control.Result.Nodes || resumed.Nodes != control.Nodes {
		t.Errorf("resumed nodes %d/%d != control %d/%d", resumed.Result.Nodes, resumed.Nodes, control.Result.Nodes, control.Nodes)
	}
	if !reflect.DeepEqual(resumed.Result.Stats, control.Result.Stats) {
		t.Errorf("resumed stats diverge from control:\n%+v\nvs\n%+v", resumed.Result.Stats, control.Result.Stats)
	}
}

// TestTenantQuota429 pins the two rejection shapes apart: a tenant over
// its own queue quota gets a structured 429 naming the quota while the
// server still has room — and other tenants keep being admitted.
func TestTenantQuota429(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 16, TenantMaxQueued: 1})
	var accepted, quotaRejected int
	for i := 0; i < 4; i++ {
		resp, body := postJSONTenant(t, ts.URL+"/v1/solve", "alice", SolveRequest{Source: wideMerge, NoCache: true})
		switch resp.StatusCode {
		case http.StatusAccepted:
			accepted++
		case http.StatusTooManyRequests:
			quotaRejected++
			eb := decode[ErrorBody](t, body)
			if eb.Quota == nil || eb.Quota.Tenant != "alice" || eb.Quota.Quota != "max_queued" {
				t.Fatalf("429 body lacks structured quota: %s", body)
			}
			if resp.Header.Get("Retry-After") == "" {
				t.Error("429 without Retry-After")
			}
		default:
			t.Fatalf("submission %d: status %d: %s", i, resp.StatusCode, body)
		}
	}
	if accepted != 2 || quotaRejected != 2 {
		t.Errorf("accepted=%d quotaRejected=%d, want 2/2 (1 running + 1 queued)", accepted, quotaRejected)
	}
	// The server is not full — a different tenant is admitted.
	resp, body := postJSONTenant(t, ts.URL+"/v1/solve", "bob", SolveRequest{Source: wideMerge, NoCache: true})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("bob alongside alice's quota rejection: status %d: %s", resp.StatusCode, body)
	}
	if v := metricValue(t, ts.URL, "tenants", "alice quota rejected"); v != 2 {
		t.Errorf("alice quota rejected metric = %d, want 2", v)
	}
	// Force-drain so cleanup doesn't wait out the giant searches.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	srv.Shutdown(ctx)
}

// TestTenantFairnessOverHTTP queues two tenants' work on one worker and
// asserts via per-tenant metrics that both make progress to completion —
// the observable form of the scheduler's fair-queuing guarantee.
func TestTenantFairnessOverHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 32})
	const each = 3
	for i := 0; i < each; i++ {
		for _, tenant := range []string{"alice", "bob"} {
			resp, body := postJSONTenant(t, ts.URL+"/v1/solve", tenant,
				SolveRequest{Source: fig4, Depth: 2 + i, NoCache: true})
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("%s solve %d: status %d: %s", tenant, i, resp.StatusCode, body)
			}
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		a := metricValue(t, ts.URL, "tenants", "alice completed")
		b := metricValue(t, ts.URL, "tenants", "bob completed")
		if a == each && b == each {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("tenants did not drain: alice=%d bob=%d, want %d each", a, b, each)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if q := metricValue(t, ts.URL, "jobs", "queued"); q != 0 {
		t.Errorf("queue depth after drain = %d, want 0", q)
	}
}

// TestJobTraceAndSpans: a solve carries its trace ID end to end and the
// job view reports per-stage spans.
func TestJobTraceAndSpans(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	js, _ := json.Marshal(SolveRequest{Source: fig4, Wait: true, NoCache: true})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/solve", bytes.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Smoothproc-Trace", "trace-42")
	req.Header.Set("X-Smoothproc-Tenant", "alice")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, buf.Bytes())
	}
	job := decode[JobView](t, buf.Bytes())
	if job.Tenant != "alice" || job.TraceID != "trace-42" {
		t.Errorf("job tenant=%q trace=%q, want alice/trace-42", job.Tenant, job.TraceID)
	}
	names := make([]string, 0, len(job.Spans))
	for _, sp := range job.Spans {
		names = append(names, sp.Name)
	}
	if len(names) != 3 || names[0] != "admit" || names[1] != "queue" || names[2] != "run" {
		t.Errorf("span names = %v, want [admit queue run]", names)
	}
	// A solve without the header still gets a generated trace ID.
	resp2, body := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Source: fig4, Wait: true, NoCache: true})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp2.StatusCode, body)
	}
	if decode[JobView](t, body).TraceID == "" {
		t.Error("server did not mint a trace ID")
	}
}

// TestStoreEndpoints covers the ops surface: stats, per-kind listing,
// and GC down to zero bytes.
func TestStoreEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if resp, body := postJSON(t, ts.URL+"/v1/specs", SpecRequest{Source: fig4}); resp.StatusCode != http.StatusOK {
		t.Fatalf("upload: status %d: %s", resp.StatusCode, body)
	}
	if resp, body := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Source: fig4, Wait: true}); resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: status %d: %s", resp.StatusCode, body)
	}

	var sv StoreView
	if code := getJSON(t, ts.URL+"/v1/store", &sv); code != http.StatusOK {
		t.Fatalf("store stats: status %d", code)
	}
	if sv.Backend != "memory" {
		t.Errorf("backend = %q, want memory", sv.Backend)
	}
	byKind := map[string]StoreKindView{}
	for _, kv := range sv.Kinds {
		byKind[kv.Kind] = kv
	}
	if byKind["spec"].Objects != 1 || byKind["result"].Objects != 1 {
		t.Errorf("store objects spec=%d result=%d, want 1/1", byKind["spec"].Objects, byKind["result"].Objects)
	}
	if byKind["spec"].Stats.Puts < 1 {
		t.Errorf("spec puts = %d, want ≥ 1", byKind["spec"].Stats.Puts)
	}

	var lv StoreListView
	if code := getJSON(t, ts.URL+"/v1/store/spec", &lv); code != http.StatusOK || len(lv.Objects) != 1 {
		t.Fatalf("store list: code %d objects %d", code, len(lv.Objects))
	}
	if lv.Objects[0].Size != int64(len(fig4)) {
		t.Errorf("spec blob size %d, want %d", lv.Objects[0].Size, len(fig4))
	}
	var bogus StoreListView
	if code := getJSON(t, ts.URL+"/v1/store/bogus", &bogus); code != http.StatusNotFound {
		t.Errorf("unknown kind: status %d, want 404", code)
	}

	resp, body := postJSON(t, ts.URL+"/v1/store/gc", StoreGCRequest{MaxBytes: 0})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gc: status %d: %s", resp.StatusCode, body)
	}
	gc := decode[StoreGCView](t, body)
	if len(gc.Deleted) != sv.TotalObjects || gc.RemainingBytes != 0 {
		t.Errorf("gc deleted %d objects, %d bytes remain; want %d deleted, 0 remaining",
			len(gc.Deleted), gc.RemainingBytes, sv.TotalObjects)
	}
}

// TestSessionSurvivesCacheEviction: with a 1-entry session cache, two
// interleaved sessions evict each other — the store restore path keeps
// both resumable with full fidelity, so eviction degrades memory, not
// correctness.
func TestSessionSurvivesCacheEviction(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, SessionCacheSize: 1})
	dfm := "alphabet b = {0}\nalphabet c = {1}\nalphabet d = {0, 1}\ndepth 4\ndesc even(d) <- b\ndesc odd(d)  <- c\ndesc b <- [0]\ndesc c <- [1]\n"
	specs := []string{fig4, dfm}
	hashes := make([]string, len(specs))
	views := make([]SessionView, len(specs))
	for i, src := range specs {
		resp, body := postJSON(t, ts.URL+"/v1/sessions", SessionRequest{Source: src, Depth: 2})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("session %d: status %d: %s", i, resp.StatusCode, body)
		}
		views[i] = decode[SessionView](t, body)
		hashes[i] = views[i].SpecHash
	}
	// Both sessions deepen correctly even though at most one fit the LRU.
	for i := range specs {
		resp, body := postJSON(t, ts.URL+"/v1/sessions/"+hashes[i]+"/resume", SessionRequest{Depth: 4})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("resume %d: status %d: %s", i, resp.StatusCode, body)
		}
		got := decode[SessionView](t, body)
		if got.Outcome != "resumed" || got.Nodes <= views[i].Nodes {
			t.Errorf("session %d: outcome=%q nodes %d→%d, want resumed and growth", i, got.Outcome, views[i].Nodes, got.Nodes)
		}
		if len(got.Result.Solutions) == 0 {
			t.Errorf("session %d: no solutions after deepen", i)
		}
	}
	if r := metricValue(t, ts.URL, "sessions", "restored from store"); r < 1 {
		t.Errorf("restored from store = %d, want ≥ 1 (cache cap forces eviction)", r)
	}
}
