package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"smoothproc/internal/solver"
	"smoothproc/internal/trace"
)

// streamBuf hands solutions from the search's OnSolution callback (which
// must not block) to the HTTP writer goroutine. Safe for concurrent use:
// push appends under the lock and nudges the 1-buffered notify channel;
// since is a snapshot slice of the suffix the reader has not sent yet.
type streamBuf struct {
	mu     sync.Mutex
	items  []trace.Trace
	notify chan struct{}
}

func newStreamBuf() *streamBuf {
	return &streamBuf{notify: make(chan struct{}, 1)}
}

// push is the solver's OnSolution callback: append and nudge, never
// block (a full notify channel means the reader is already scheduled).
func (b *streamBuf) push(t trace.Trace) {
	b.mu.Lock()
	b.items = append(b.items, t)
	b.mu.Unlock()
	select {
	case b.notify <- struct{}{}:
	default:
	}
}

// since returns the items from index n on; the capped slice never
// aliases growth from concurrent pushes.
func (b *streamBuf) since(n int) []trace.Trace {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.items[n:len(b.items):len(b.items)]
}

// sseEvent writes one server-sent event with a JSON payload.
func sseEvent(w http.ResponseWriter, event string, data any) error {
	js, err := json.Marshal(data)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, js)
	return err
}

// handleSolveStream is POST /v1/solve/stream: the solve endpoint with
// progressive results. The search runs as a normal scheduler job; the
// response is a server-sent event stream that opens with a "job" event
// (the job is pollable in parallel), emits one "solution" event per
// smooth solution in canonical commit order as the search classifies
// them — the first typically arrives while the bulk of the tree is still
// open — and closes with a "done" event carrying the full JobView,
// byte-identical in result content to a plain solve. Streamed solves
// bypass the result cache on the way in (a cache hit has nothing to
// stream) but still warm it for later plain solves.
func (s *Server) handleSolveStream(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	var req SolveRequest
	if !decodeBody(w, r, &req) {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("service: response writer cannot stream"))
		return
	}
	hash, spec, ok := s.resolveSpec(w, r, req.Source, req.SpecHash)
	if !ok {
		return
	}
	prog := spec.prog
	p := s.params(req, prog, spec.plan)
	if est := s.admit(p, spec.plan); est != nil {
		rejectOverBudget(w, est)
		return
	}

	buf := newStreamBuf()
	key := resultKey{hash: hash, params: p}
	start := time.Now()
	var estimate uint64
	if spec.plan != nil {
		estimate = spec.plan.MinNodes(p.Depth)
	}
	job, err := s.sched.Submit(Submission{
		Tenant:   tenantOf(r),
		SpecHash: hash,
		Params:   p,
		Timeout:  s.timeout(req),
		Estimate: estimate,
		TraceID:  s.traceOf(r),
		AdmitNs:  time.Since(start).Nanoseconds(),
		Run: func(ctx context.Context) (*SolveResult, error) {
			problem := prog.Problem()
			problem.CollectVisited = false
			problem.MaxDepth = p.Depth
			problem.MaxNodes = p.MaxNodes
			problem.Compiled = s.cfg.Compiled
			problem.OnSolution = buf.push
			var res solver.Result
			if p.Workers > 1 {
				res = solver.EnumerateParallel(ctx, problem, p.Workers)
			} else {
				res = solver.Enumerate(ctx, problem)
			}
			s.countSearch(res, res.Nodes, len(res.Solutions))
			out := wireResult(res, start)
			if !out.Truncated && !out.Canceled {
				s.saveResult(key, *out)
			}
			return out, nil
		},
	})
	if writeSubmitError(w, err) {
		return
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	if sseEvent(w, "job", StreamJob{ID: job.id, SpecHash: hash, Params: p}) != nil {
		return
	}
	flusher.Flush()

	sent := 0
	emit := func() bool {
		for _, t := range buf.since(sent) {
			if sseEvent(w, "solution", StreamSolution{Index: sent, Trace: t.String()}) != nil {
				return false
			}
			sent++
			s.streamed.Inc()
		}
		flusher.Flush()
		return true
	}
	for {
		select {
		case <-buf.notify:
			if !emit() {
				return
			}
		case <-job.Done():
			// Final drain, then the terminal event with the whole result.
			if !emit() {
				return
			}
			_ = sseEvent(w, "done", s.sched.View(job))
			flusher.Flush()
			return
		case <-r.Context().Done():
			// Client gone; the job keeps running and stays pollable.
			return
		}
	}
}
