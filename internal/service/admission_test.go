package service

import (
	"net/http"
	"runtime"
	"testing"
)

// overBudget is the crafted admission-control victim: a Kahn buffer
// over a 10-symbol alphabet at depth 12. Theorem 1 auto-admits every
// input event, so the search is *guaranteed* to visit Σ 10^i ≈ 1.1e12
// nodes — six orders of magnitude over the default 500k budget. The
// static plan proves that floor without running anything.
const overBudget = `alphabet a = ints 0 .. 9
alphabet e = ints 0 .. 9
depth 12
desc e <- a
`

// TestAdmissionRejectsBeforeScheduler holds the acceptance criterion:
// a predictably over-budget solve gets a structured 422 carrying the
// plan estimate, and never reaches the scheduler — no job is submitted,
// no worker burned.
func TestAdmissionRejectsBeforeScheduler(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1})

	resp, body := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Source: overBudget, Wait: true})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422: %s", resp.StatusCode, body)
	}
	eb := decode[ErrorBody](t, body)
	if eb.Plan == nil {
		t.Fatalf("422 body carries no plan estimate: %s", body)
	}
	if eb.Plan.PredictedMinNodes <= uint64(eb.Plan.MaxNodes) {
		t.Errorf("estimate does not justify the rejection: floor %d vs budget %d",
			eb.Plan.PredictedMinNodes, eb.Plan.MaxNodes)
	}
	if eb.Plan.Depth != 12 {
		t.Errorf("estimate depth = %d, want 12", eb.Plan.Depth)
	}

	// The stream endpoint runs the same gate.
	resp, body = postJSON(t, ts.URL+"/v1/solve/stream", SolveRequest{Source: overBudget})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("stream status %d, want 422: %s", resp.StatusCode, body)
	}

	if submitted, _, _, _ := srv.sched.Counts(); submitted != 0 {
		t.Errorf("scheduler saw %d jobs; admission control must fire before submission", submitted)
	}
	if n, ok := srv.Metrics().Get("admission", "rejected over budget"); !ok || n != 2 {
		t.Errorf("rejected counter = %d (%v), want 2", n, ok)
	}
	if n, _ := srv.Metrics().Get("admission", "admitted"); n != 0 {
		t.Errorf("admitted counter = %d, want 0", n)
	}
}

// TestAdmissionAdmitsWithinBudget: the same spec at its own shallow
// depth sails through, and the admitted counter says the gate ran.
func TestAdmissionAdmitsWithinBudget(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1})

	resp, body := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Source: overBudget, Depth: 2, Wait: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	job := decode[JobView](t, body)
	if job.State != JobDone || job.Result == nil || job.Result.Truncated {
		t.Fatalf("admitted solve did not finish cleanly: %+v", job)
	}
	if n, ok := srv.Metrics().Get("admission", "admitted"); !ok || n != 1 {
		t.Errorf("admitted counter = %d (%v), want 1", n, ok)
	}
	if submitted, _, _, _ := srv.sched.Counts(); submitted != 1 {
		t.Errorf("scheduler saw %d jobs, want 1", submitted)
	}
}

// twoGroups has two independent descriptions on disjoint channels — a
// partition of width 2, which the server should pick as the worker
// count when the client leaves it unset.
const twoGroups = `alphabet a = {0}
alphabet e = {0}
alphabet x = {0}
alphabet y = {0}
depth 4
desc e <- a
desc y <- x
`

func TestAutoWorkersFromPartitionWidth(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	resp, body := postJSON(t, ts.URL+"/v1/specs", SpecRequest{Source: twoGroups})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload: status %d: %s", resp.StatusCode, body)
	}
	info := decode[SpecInfo](t, body)
	if info.Plan == nil {
		t.Fatal("spec upload carries no plan")
	}
	if info.Plan.PartitionWidth != 2 {
		t.Fatalf("partition width = %d, want 2", info.Plan.PartitionWidth)
	}

	resp, body = postJSON(t, ts.URL+"/v1/solve", SolveRequest{SpecHash: info.Hash, Wait: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: status %d: %s", resp.StatusCode, body)
	}
	job := decode[JobView](t, body)
	want := min(2, runtime.GOMAXPROCS(0))
	if job.Params.Workers != want {
		t.Errorf("auto-picked workers = %d, want %d (partition width clamped to cores)", job.Params.Workers, want)
	}

	// An explicit worker count always wins over the plan.
	resp, body = postJSON(t, ts.URL+"/v1/solve", SolveRequest{SpecHash: info.Hash, Workers: 1, Wait: true, NoCache: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explicit-workers solve: status %d: %s", resp.StatusCode, body)
	}
	if job := decode[JobView](t, body); job.Params.Workers != 1 {
		t.Errorf("explicit workers overridden: got %d, want 1", job.Params.Workers)
	}
}
