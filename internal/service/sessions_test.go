package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"testing"
)

// dfm is the discriminated fair merge of Figure 2 — small enough to
// solve instantly, with two eliminable feeder channels (b and c) for the
// delta endpoint.
const dfm = `alphabet b = {0}
alphabet c = {1}
alphabet d = {0, 1}
depth 4
desc even(d) <- b
desc odd(d)  <- c
desc b <- [0]
desc c <- [1]
`

// kahnBuffer is the unbounded buffer at depth 12: a 417k-node search
// whose first solution sits at depth 2, so a stream's first "solution"
// event arrives while almost the whole tree is still open.
const kahnBuffer = `alphabet a = {0, 1}
alphabet e = {0, 1}
depth 12
desc e <- a
`

func TestSessionEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	// Reference answer: a plain solve of the full-depth spec.
	resp, body := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Source: dfm, Wait: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reference solve: status %d: %s", resp.StatusCode, body)
	}
	ref := decode[JobView](t, body)
	if ref.Result == nil || len(ref.Result.Solutions) == 0 {
		t.Fatalf("reference solve: no result: %s", body)
	}

	// Create the session at half depth: a cold capture solve.
	resp, body = postJSON(t, ts.URL+"/v1/sessions", SessionRequest{Source: dfm, Depth: 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("session create: status %d: %s", resp.StatusCode, body)
	}
	sv := decode[SessionView](t, body)
	if sv.Outcome != "cold" || sv.Depth != 2 || sv.Solves != 1 {
		t.Fatalf("session create: want cold solve at depth 2, got %+v", sv)
	}
	if sv.Frontier == 0 {
		t.Fatalf("session create: depth-bound session retained no frontier: %+v", sv)
	}
	if sv.Result == nil {
		t.Fatalf("session create: no result: %s", body)
	}
	hash := sv.SpecHash
	coldNodes := sv.Nodes

	var got SessionView
	if code := getJSON(t, ts.URL+"/v1/sessions/"+hash, &got); code != http.StatusOK {
		t.Fatalf("session get: status %d", code)
	}
	if got.Outcome != "" || got.Solves != 1 || got.Nodes != coldNodes {
		t.Fatalf("session get: %+v", got)
	}

	// Deepen to the spec's full depth: the resumed leg must land on the
	// reference answer while classifying only the new nodes.
	resp, body = postJSON(t, ts.URL+"/v1/sessions/"+hash+"/resume", SessionRequest{Depth: 4})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resume: status %d: %s", resp.StatusCode, body)
	}
	sv = decode[SessionView](t, body)
	if sv.Outcome != "resumed" || sv.Depth != 4 || sv.Resumes != 1 {
		t.Fatalf("resume: want resumed at depth 4, got %+v", sv)
	}
	if sv.Result == nil {
		t.Fatal("resume: no result")
	}
	if want, gotS := fmt.Sprint(ref.Result.Solutions), fmt.Sprint(sv.Result.Solutions); want != gotS {
		t.Fatalf("resumed solutions diverge from cold solve:\n cold    %s\n resumed %s", want, gotS)
	}
	if sv.Result.Nodes != ref.Result.Nodes {
		t.Fatalf("resumed node count %d ≠ cold %d", sv.Result.Nodes, ref.Result.Nodes)
	}
	if sv.Nodes <= coldNodes {
		t.Fatalf("resume did not grow the commit pointer: %d ≤ %d", sv.Nodes, coldNodes)
	}

	// Same bounds again: a replay, no new search.
	resp, body = postJSON(t, ts.URL+"/v1/sessions/"+hash+"/resume", SessionRequest{Depth: 4})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replay: status %d: %s", resp.StatusCode, body)
	}
	sv = decode[SessionView](t, body)
	if sv.Outcome != "replayed" || sv.Replays != 1 {
		t.Fatalf("replay: %+v", sv)
	}

	// A session may not shrink.
	resp, body = postJSON(t, ts.URL+"/v1/sessions/"+hash+"/resume", SessionRequest{Depth: 1})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("depth shrink: want 409, got %d: %s", resp.StatusCode, body)
	}

	// Resume addresses the session by path; a body spec is a mistake.
	resp, _ = postJSON(t, ts.URL+"/v1/sessions/"+hash+"/resume", SessionRequest{Source: dfm})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("resume with source: want 400, got %d", resp.StatusCode)
	}

	if code := getJSON(t, ts.URL+"/v1/sessions/no-such-hash", nil); code != http.StatusNotFound {
		t.Fatalf("unknown session: want 404, got %d", code)
	}
}

func TestSessionDeltaEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	resp, body := postJSON(t, ts.URL+"/v1/sessions", SessionRequest{Source: dfm})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("session create: status %d: %s", resp.StatusCode, body)
	}
	hash := decode[SessionView](t, body).SpecHash

	// b is a feeder channel with a defining description: eliminable.
	resp, body = postJSON(t, ts.URL+"/v1/sessions/"+hash+"/delta", DeltaRequest{Channel: "b", Check: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delta b: status %d: %s", resp.StatusCode, body)
	}
	dv := decode[DeltaView](t, body)
	if dv.Channel != "b" || dv.Desc == "" || dv.FromNodes == 0 {
		t.Fatalf("delta b: %+v", dv)
	}
	if len(dv.Solutions) == 0 {
		t.Fatal("delta b: no projected solutions")
	}
	for _, s := range dv.Solutions {
		if strings.Contains(s, "(b,") {
			t.Fatalf("projected solution still mentions b: %s", s)
		}
	}
	if len(dv.System) == 0 {
		t.Fatalf("delta b: no reduced system: %+v", dv)
	}
	if dv.Check == nil {
		t.Fatal("delta b: differential check missing")
	}
	if dv.Check.FreshNodes == 0 || dv.Check.Matched != len(dv.Solutions) {
		t.Fatalf("delta check: %+v vs %d projected", dv.Check, len(dv.Solutions))
	}

	// d is the merged output channel — not a defining-shaped feeder, so
	// the static gate refuses to reuse state for its elimination.
	resp, body = postJSON(t, ts.URL+"/v1/sessions/"+hash+"/delta", DeltaRequest{Channel: "d"})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("delta d: want 422, got %d: %s", resp.StatusCode, body)
	}

	resp, _ = postJSON(t, ts.URL+"/v1/sessions/"+hash+"/delta", DeltaRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("delta without channel: want 400, got %d", resp.StatusCode)
	}

	resp, _ = postJSON(t, ts.URL+"/v1/sessions/no-such-hash/delta", DeltaRequest{Channel: "b"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("delta on unknown session: want 404, got %d", resp.StatusCode)
	}
}

// sseEvent is one parsed server-sent event.
type sseEvt struct {
	name string
	data []byte
}

// readSSE parses the next event off the stream.
func readSSE(t *testing.T, br *bufio.Reader) sseEvt {
	t.Helper()
	var e sseEvt
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("stream ended mid-event: %v (got %+v)", err, e)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			e.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			e.data = []byte(strings.TrimPrefix(line, "data: "))
		case line == "" && e.name != "":
			return e
		}
	}
}

func TestSolveStreamFirstSolutionBeforeDone(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	js, err := json.Marshal(SolveRequest{Source: kahnBuffer})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/solve/stream", "application/json", bytes.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		t.Fatalf("stream: status %d: %s", resp.StatusCode, buf.String())
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type %q", ct)
	}
	br := bufio.NewReader(resp.Body)

	// The stream opens with the job, pollable while the search runs.
	e := readSSE(t, br)
	if e.name != "job" {
		t.Fatalf("first event %q, want job", e.name)
	}
	job := decode[StreamJob](t, e.data)
	if job.ID == "" || job.SpecHash == "" {
		t.Fatalf("job event: %+v", job)
	}

	// The first solution must land while the search is still open: the
	// kahn-buffer tree at depth 12 has 417k nodes but its first solution
	// at depth 2, so the poll below races a search with >99% of its work
	// left against one local HTTP round trip.
	e = readSSE(t, br)
	if e.name != "solution" {
		t.Fatalf("second event %q, want solution", e.name)
	}
	first := decode[StreamSolution](t, e.data)
	if first.Index != 0 || first.Trace == "" {
		t.Fatalf("first solution event: %+v", first)
	}
	var jv JobView
	if code := getJSON(t, ts.URL+"/v1/jobs/"+job.ID, &jv); code != http.StatusOK {
		t.Fatalf("job poll: status %d", code)
	}
	if jv.State != JobRunning {
		t.Fatalf("job state after first solution: %s, want %s (first solution should beat search completion)", jv.State, JobRunning)
	}

	// Drain: the streamed sequence must be exactly the result's canonical
	// solution order.
	streamed := []string{first.Trace}
	var done JobView
	for {
		e = readSSE(t, br)
		if e.name == "done" {
			done = decode[JobView](t, e.data)
			break
		}
		if e.name != "solution" {
			t.Fatalf("unexpected event %q", e.name)
		}
		sol := decode[StreamSolution](t, e.data)
		if sol.Index != len(streamed) {
			t.Fatalf("solution index %d out of order (want %d)", sol.Index, len(streamed))
		}
		streamed = append(streamed, sol.Trace)
	}
	if done.State != JobDone || done.Result == nil {
		t.Fatalf("done event: %+v", done)
	}
	if done.Result.Truncated || done.Result.Canceled {
		t.Fatalf("stream search did not finish cleanly: %+v", done.Result)
	}
	// The stream emits in canonical commit order; the wire result sorts
	// its keys (SolutionKeys). Same set, different order.
	sorted := append([]string(nil), streamed...)
	sort.Strings(sorted)
	if want, got := fmt.Sprint(done.Result.Solutions), fmt.Sprint(sorted); want != got {
		t.Fatalf("streamed solutions diverge from result:\n result   %.120s…\n streamed %.120s…", want, got)
	}
	if done.Result.Nodes < 10000 {
		t.Fatalf("smoke search too small to prove streaming: %d nodes", done.Result.Nodes)
	}
}
