// Package service is the smoothd subsystem: an HTTP+JSON front end that
// serves the paper's Section 3.3 tree search as a request/response
// workload. A request carries a description system (an eqlang spec); the
// response is its set of smooth solutions within the requested bounds.
//
// The architecture follows the compile-once/run-many split: POST
// /v1/specs compiles a spec into a reusable artifact cached by content
// hash, POST /v1/solve schedules a bounded search over a compiled spec
// on a worker pool with per-job deadlines, GET /v1/jobs/{id} reports
// asynchronous progress, and GET /metrics exposes the server's counters
// in the repository's stats format. See DESIGN.md for how requests,
// jobs and caches map onto the paper's vocabulary.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"smoothproc/internal/report"
	"smoothproc/internal/specvet"
)

// SpecRequest is the body of POST /v1/specs.
type SpecRequest struct {
	// Source is the eqlang program text.
	Source string `json:"source"`
}

// SpecInfo describes one compiled, cached spec.
type SpecInfo struct {
	// Hash is the content hash naming the compiled artifact; solve
	// requests refer to it.
	Hash string `json:"hash"`
	// Channels and Depth are the solver branching data the spec compiled
	// to; Descriptions render each equation.
	Channels     []string `json:"channels"`
	Depth        int      `json:"depth"`
	Descriptions []string `json:"descriptions"`
	// Cached reports that the spec was already compiled (the upload was
	// served from the spec cache).
	Cached bool `json:"cached"`
	// Findings are the static-analysis results for the spec (package
	// specvet): warnings and theorem classifications. Error-severity
	// findings never appear here — those reject the upload with 400 and
	// ride in ErrorBody.Findings instead.
	Findings []specvet.Diagnostic `json:"findings,omitempty"`
}

// VetError is the rejection of a spec that parses or compiles with
// error-severity static-analysis findings (undefined channels, support
// or growth violations, …). The findings travel to the client in
// ErrorBody.Findings.
type VetError struct {
	Findings []specvet.Diagnostic
}

// Error implements error with the first error-severity finding, which
// Vet guarantees exists.
func (e *VetError) Error() string {
	for _, d := range e.Findings {
		if d.Severity == specvet.SevError {
			return fmt.Sprintf("service: spec rejected by static analysis: %s", d.Message)
		}
	}
	return "service: spec rejected by static analysis"
}

// Line returns the first error finding's source line (0 if none).
func (e *VetError) Line() int {
	for _, d := range e.Findings {
		if d.Severity == specvet.SevError {
			return d.Line
		}
	}
	return 0
}

// SolveRequest is the body of POST /v1/solve. Exactly one of SpecHash
// and Source must be set: a hash refers to a previously uploaded spec,
// inline source is compiled (and cached) on the way in.
type SolveRequest struct {
	SpecHash string `json:"spec_hash,omitempty"`
	Source   string `json:"source,omitempty"`

	// Depth overrides the spec's probe depth (0 = use the spec's own),
	// clamped to the server's MaxDepth.
	Depth int `json:"depth,omitempty"`
	// MaxNodes bounds tree nodes explored; 0 or anything above the
	// server's MaxNodes cap is clamped to the cap.
	MaxNodes int `json:"max_nodes,omitempty"`
	// Workers selects the parallel search when > 1.
	Workers int `json:"workers,omitempty"`
	// TimeoutMs bounds the search wall clock; 0 uses the server default.
	TimeoutMs int `json:"timeout_ms,omitempty"`
	// Wait blocks the request until the job finishes instead of
	// returning 202 with a job to poll.
	Wait bool `json:"wait,omitempty"`
	// NoCache skips the result-cache lookup (the result is still
	// stored). Load generators use this to measure real searches.
	NoCache bool `json:"no_cache,omitempty"`
}

// SolveParams are the normalized search knobs — the part of a solve
// request that determines the answer. They form the result-cache key
// together with the spec hash.
type SolveParams struct {
	Depth    int `json:"depth"`
	MaxNodes int `json:"max_nodes"`
	Workers  int `json:"workers"`
}

// resultKey names one (spec, params) search in the result cache — a
// comparable struct, not a rendered string, in the same spirit as the
// solver's hashed trace keys. The timeout is deliberately excluded: a
// completed search's answer does not depend on the deadline it beat,
// and cancelled searches are never cached.
type resultKey struct {
	hash   string
	params SolveParams
}

// SolveResult is the wire form of one completed search.
type SolveResult struct {
	// Solutions are the smooth solutions in the paper's trace notation.
	Solutions []string `json:"solutions"`
	// Frontier and DeadLeaves count the other leaf classes.
	Frontier   int `json:"frontier"`
	DeadLeaves int `json:"dead_leaves"`
	// Nodes is the number of tree nodes this search visited — 0 work is
	// re-done for a cached answer, which tests verify through this field
	// and the server's nodes_searched_total counter.
	Nodes     int  `json:"nodes"`
	Truncated bool `json:"truncated"`
	Canceled  bool `json:"canceled"`
	// Stats is the deterministic part of the search instrumentation
	// (package report's stable format; timing sections are stripped).
	Stats report.Stats `json:"stats"`
	// ElapsedMs is the search wall clock in milliseconds.
	ElapsedMs float64 `json:"elapsed_ms"`
	// Cached reports that this answer came from the result cache.
	Cached bool `json:"cached"`
}

// JobView is the wire form of a job: the response of POST /v1/solve and
// GET /v1/jobs/{id}.
type JobView struct {
	ID       string      `json:"id"`
	State    JobState    `json:"state"`
	SpecHash string      `json:"spec_hash"`
	Params   SolveParams `json:"params"`
	// Error is set for failed jobs; Result for finished ones (a
	// cancelled job keeps its partial result).
	Error  string       `json:"error,omitempty"`
	Result *SolveResult `json:"result,omitempty"`
}

// ErrorBody is the structured JSON shape of every non-2xx response.
type ErrorBody struct {
	Error string `json:"error"`
	// Line and Snippet locate eqlang compile errors in the submitted
	// source.
	Line    int    `json:"line,omitempty"`
	Snippet string `json:"snippet,omitempty"`
	// Findings carries the full static-analysis report when the spec was
	// rejected by specvet (see VetError).
	Findings []specvet.Diagnostic `json:"findings,omitempty"`
}

// specHash names a spec by the SHA-256 of its source text.
func specHash(source string) string {
	sum := sha256.Sum256([]byte(source))
	return hex.EncodeToString(sum[:])
}
