// Package service is the smoothd subsystem: an HTTP+JSON front end that
// serves the paper's Section 3.3 tree search as a request/response
// workload. A request carries a description system (an eqlang spec); the
// response is its set of smooth solutions within the requested bounds.
//
// The architecture follows the compile-once/run-many split: POST
// /v1/specs compiles a spec into a reusable artifact cached by content
// hash, POST /v1/solve schedules a bounded search over a compiled spec
// on a worker pool with per-job deadlines, GET /v1/jobs/{id} reports
// asynchronous progress, and GET /metrics exposes the server's counters
// in the repository's stats format. See DESIGN.md for how requests,
// jobs and caches map onto the paper's vocabulary.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"smoothproc/internal/report"
	"smoothproc/internal/specplan"
	"smoothproc/internal/specvet"
	"smoothproc/internal/store"
)

// SpecRequest is the body of POST /v1/specs.
type SpecRequest struct {
	// Source is the eqlang program text.
	Source string `json:"source"`
}

// SpecInfo describes one compiled, cached spec.
type SpecInfo struct {
	// Hash is the content hash naming the compiled artifact; solve
	// requests refer to it.
	Hash string `json:"hash"`
	// Channels and Depth are the solver branching data the spec compiled
	// to; Descriptions render each equation.
	Channels     []string `json:"channels"`
	Depth        int      `json:"depth"`
	Descriptions []string `json:"descriptions"`
	// Cached reports that the spec was already compiled (the upload was
	// served from the spec cache).
	Cached bool `json:"cached"`
	// Findings are the static-analysis results for the spec (package
	// specvet): warnings and theorem classifications. Error-severity
	// findings never appear here — those reject the upload with 400 and
	// ride in ErrorBody.Findings instead.
	Findings []specvet.Diagnostic `json:"findings,omitempty"`
	// Plan is the static search-cost analysis computed at upload and
	// cached beside the compiled spec: node bounds, the Theorem 1
	// partition, per-channel branching. Admission control runs against it.
	Plan *specplan.Plan `json:"plan,omitempty"`
}

// VetError is the rejection of a spec that parses or compiles with
// error-severity static-analysis findings (undefined channels, support
// or growth violations, …). The findings travel to the client in
// ErrorBody.Findings.
type VetError struct {
	Findings []specvet.Diagnostic
}

// Error implements error with the first error-severity finding, which
// Vet guarantees exists.
func (e *VetError) Error() string {
	for _, d := range e.Findings {
		if d.Severity == specvet.SevError {
			return fmt.Sprintf("service: spec rejected by static analysis: %s", d.Message)
		}
	}
	return "service: spec rejected by static analysis"
}

// Line returns the first error finding's source line (0 if none).
func (e *VetError) Line() int {
	for _, d := range e.Findings {
		if d.Severity == specvet.SevError {
			return d.Line
		}
	}
	return 0
}

// SolveRequest is the body of POST /v1/solve. Exactly one of SpecHash
// and Source must be set: a hash refers to a previously uploaded spec,
// inline source is compiled (and cached) on the way in.
type SolveRequest struct {
	SpecHash string `json:"spec_hash,omitempty"`
	Source   string `json:"source,omitempty"`

	// Depth overrides the spec's probe depth (0 = use the spec's own),
	// clamped to the server's MaxDepth.
	Depth int `json:"depth,omitempty"`
	// MaxNodes bounds tree nodes explored; 0 or anything above the
	// server's MaxNodes cap is clamped to the cap.
	MaxNodes int `json:"max_nodes,omitempty"`
	// Workers selects the parallel search when > 1.
	Workers int `json:"workers,omitempty"`
	// TimeoutMs bounds the search wall clock; 0 uses the server default.
	TimeoutMs int `json:"timeout_ms,omitempty"`
	// Wait blocks the request until the job finishes instead of
	// returning 202 with a job to poll.
	Wait bool `json:"wait,omitempty"`
	// NoCache skips the result-cache lookup (the result is still
	// stored). Load generators use this to measure real searches.
	NoCache bool `json:"no_cache,omitempty"`
}

// SolveParams are the normalized search knobs — the part of a solve
// request that determines the answer. They form the result-cache key
// together with the spec hash.
type SolveParams struct {
	Depth    int `json:"depth"`
	MaxNodes int `json:"max_nodes"`
	Workers  int `json:"workers"`
}

// resultKey names one (spec, params) search in the result cache — a
// comparable struct, not a rendered string, in the same spirit as the
// solver's hashed trace keys. The timeout is deliberately excluded: a
// completed search's answer does not depend on the deadline it beat,
// and cancelled searches are never cached.
type resultKey struct {
	hash   string
	params SolveParams
}

// SolveResult is the wire form of one completed search.
type SolveResult struct {
	// Solutions are the smooth solutions in the paper's trace notation.
	Solutions []string `json:"solutions"`
	// Frontier and DeadLeaves count the other leaf classes.
	Frontier   int `json:"frontier"`
	DeadLeaves int `json:"dead_leaves"`
	// Nodes is the number of tree nodes this search visited — 0 work is
	// re-done for a cached answer, which tests verify through this field
	// and the server's nodes_searched_total counter.
	Nodes     int  `json:"nodes"`
	Truncated bool `json:"truncated"`
	Canceled  bool `json:"canceled"`
	// Stats is the deterministic part of the search instrumentation
	// (package report's stable format; timing sections are stripped).
	Stats report.Stats `json:"stats"`
	// ElapsedMs is the search wall clock in milliseconds.
	ElapsedMs float64 `json:"elapsed_ms"`
	// Cached reports that this answer came from the result cache.
	Cached bool `json:"cached"`
}

// JobView is the wire form of a job: the response of POST /v1/solve and
// GET /v1/jobs/{id}.
type JobView struct {
	ID       string      `json:"id"`
	State    JobState    `json:"state"`
	SpecHash string      `json:"spec_hash"`
	Params   SolveParams `json:"params"`
	// Tenant is the fair-queuing bucket the job was scheduled under
	// (X-Smoothproc-Tenant header, or "default").
	Tenant string `json:"tenant,omitempty"`
	// TraceID is the request-scoped trace identifier (X-Smoothproc-Trace
	// header, or server-generated) threaded handler → queue → worker →
	// search.
	TraceID string `json:"trace_id,omitempty"`
	// QueueMs and RunMs are this job's queue wait and run duration in
	// milliseconds — final for terminal jobs, still growing for live ones
	// (a queued job has no RunMs yet).
	QueueMs float64 `json:"queue_ms"`
	RunMs   float64 `json:"run_ms,omitempty"`
	// Spans are the job's per-stage timings (admit, queue, run) in
	// pipeline order.
	Spans []SpanView `json:"spans,omitempty"`
	// Error is set for failed jobs; Result for finished ones (a
	// cancelled job keeps its partial result).
	Error  string       `json:"error,omitempty"`
	Result *SolveResult `json:"result,omitempty"`
}

// SpanView is one stage of a job's pipeline on the wire.
type SpanView struct {
	Name string  `json:"name"`
	Ms   float64 `json:"ms"`
}

// SessionRequest is the body of POST /v1/sessions (create or first
// solve) and POST /v1/sessions/{hash}/resume (deepen). Creation takes
// source or spec_hash like a solve; resume addresses the session by the
// path hash and only carries new bounds.
type SessionRequest struct {
	SpecHash string `json:"spec_hash,omitempty"`
	Source   string `json:"source,omitempty"`

	// Depth and MaxNodes are the requested bounds, clamped like a solve's.
	// A resume must not shrink Depth; growing it deepens the session from
	// its retained frontier.
	Depth    int `json:"depth,omitempty"`
	MaxNodes int `json:"max_nodes,omitempty"`
	// Workers selects the parallel search when > 1.
	Workers int `json:"workers,omitempty"`
	// TimeoutMs bounds this leg's wall clock; a timed-out leg keeps the
	// session resumable (the unexplored queue is retained).
	TimeoutMs int `json:"timeout_ms,omitempty"`
}

// SessionView is the wire form of a solve session.
type SessionView struct {
	SpecHash string `json:"spec_hash"`
	// Depth is the session's current depth bound; Nodes its commit
	// pointer (nodes classified so far); Frontier the retained
	// depth-bound nodes a resume deepens from; MemoEntries the evaluator
	// memo footprint the session keeps warm.
	Depth       int `json:"depth"`
	Nodes       int `json:"nodes"`
	Frontier    int `json:"frontier"`
	MemoEntries int `json:"memo_entries"`
	// Solves, Resumes and Replays count how the session has answered.
	Solves  int `json:"solves"`
	Resumes int `json:"resumes"`
	Replays int `json:"replays"`
	// Outcome says how the request returning this view was answered:
	// "cold", "resumed" or "replayed". Empty on plain GETs.
	Outcome string `json:"outcome,omitempty"`
	// Result is the latest leg's search result (absent on plain GETs of
	// a session that has not solved yet).
	Result *SolveResult `json:"result,omitempty"`
}

// DeltaRequest is the body of POST /v1/sessions/{hash}/delta: answer a
// Theorem 5/6 channel elimination from the session's retained state.
type DeltaRequest struct {
	// Channel to eliminate. The spec's static analysis must have issued
	// an eliminable verdict for it (see specvet.ElimVerdict); otherwise
	// the delta is rejected with 422.
	Channel string `json:"channel"`
	// Check additionally runs the differential guard: a fresh solve of
	// the eliminated system, verified against the projection in both
	// directions (Theorems 5 and 6). The response carries the account.
	Check bool `json:"check,omitempty"`
	// Workers parallelizes the check's fresh solve.
	Workers int `json:"workers,omitempty"`
}

// DeltaView is the wire form of a delta-solve.
type DeltaView struct {
	SpecHash string `json:"spec_hash"`
	Channel  string `json:"channel"`
	// Desc and Index identify the defining description the elimination
	// went through.
	Desc  string `json:"desc"`
	Index int    `json:"index"`
	// System renders the reduced system's equations.
	System []string `json:"system"`
	// Solutions are the session's solutions projected away from the
	// channel — the reduced system's solutions, by Theorem 5 — in
	// canonical order.
	Solutions []string `json:"solutions"`
	// FromNodes is the session's commit pointer: the search work the
	// projection reused instead of redoing.
	FromNodes int `json:"from_nodes"`
	// Check reports the differential guard when requested.
	Check *DeltaCheckView `json:"check,omitempty"`
}

// DeltaCheckView accounts the delta differential check on the wire.
type DeltaCheckView struct {
	// FreshNodes is the node count of the from-scratch reference solve.
	FreshNodes int `json:"fresh_nodes"`
	// Matched counts fresh solutions equal to a projected one;
	// BeyondHorizon counts fresh solutions whose Theorem 6 lift lies
	// beyond the session's depth bound (the one legitimate mismatch).
	Matched       int `json:"matched"`
	BeyondHorizon int `json:"beyond_horizon"`
}

// StreamSolution is the data payload of a "solution" event on
// /v1/solve/stream: one smooth solution, in canonical commit order,
// emitted while the search is still running.
type StreamSolution struct {
	// Index is the solution's position in the canonical order (0-based).
	Index int `json:"index"`
	// Trace renders the solution in the paper's notation.
	Trace string `json:"trace"`
}

// StreamJob is the data payload of the "job" event opening a stream:
// the scheduler job running the search, pollable via GET /v1/jobs/{id}
// while the stream is live.
type StreamJob struct {
	ID       string      `json:"id"`
	SpecHash string      `json:"spec_hash"`
	Params   SolveParams `json:"params"`
}

// PlanEstimate is the admission-control verdict attached to a 422: the
// static floor on the search the request asked for, against the budget
// it was allowed. PredictedMinNodes is a sound lower bound (the
// Theorem 1 auto-admitted subtree), so a rejected solve was *guaranteed*
// to truncate — the server is not guessing.
type PlanEstimate struct {
	Depth             int    `json:"depth"`
	PredictedMinNodes uint64 `json:"predicted_min_nodes"`
	// NodesBound is the matching upper bound at the same depth, for scale.
	NodesBound     uint64 `json:"nodes_bound"`
	MaxNodes       int    `json:"max_nodes"`
	PartitionWidth int    `json:"partition_width"`
}

// ErrorBody is the structured JSON shape of every non-2xx response.
type ErrorBody struct {
	Error string `json:"error"`
	// Line and Snippet locate eqlang compile errors in the submitted
	// source.
	Line    int    `json:"line,omitempty"`
	Snippet string `json:"snippet,omitempty"`
	// Findings carries the full static-analysis report when the spec was
	// rejected by specvet (see VetError).
	Findings []specvet.Diagnostic `json:"findings,omitempty"`
	// Plan carries the admission-control estimate when a solve was
	// rejected as predictably over budget (422).
	Plan *PlanEstimate `json:"plan,omitempty"`
	// Quota carries the per-tenant quota verdict when a submission was
	// rejected with 429 — structurally distinguishable from the
	// server-wide load-shed 503, which has no Quota.
	Quota *QuotaBody `json:"quota,omitempty"`
}

// QuotaBody details a per-tenant quota rejection (429).
type QuotaBody struct {
	Tenant string `json:"tenant"`
	// Quota names the exceeded limit: "max_queued" or "node_budget".
	Quota   string `json:"quota"`
	Limit   uint64 `json:"limit"`
	Current uint64 `json:"current"`
}

// StoreKindView is one object kind's slice of GET /v1/store.
type StoreKindView struct {
	Kind    string `json:"kind"`
	Objects int    `json:"objects"`
	Bytes   int64  `json:"bytes"`
	// Stats are the per-kind traffic counters (hits, misses, …).
	Stats store.KindStats `json:"stats"`
}

// StoreView is the body of GET /v1/store: the durable layer's footprint
// and traffic.
type StoreView struct {
	// Backend is "disk" (running with -data-dir) or "memory".
	Backend string `json:"backend"`
	// Dir is the disk backend's root ("" for memory).
	Dir          string          `json:"dir,omitempty"`
	Kinds        []StoreKindView `json:"kinds"`
	TotalObjects int             `json:"total_objects"`
	TotalBytes   int64           `json:"total_bytes"`
}

// StoreListView is the body of GET /v1/store/{kind}.
type StoreListView struct {
	Kind    string       `json:"kind"`
	Objects []store.Info `json:"objects"`
}

// StoreGCRequest is the body of POST /v1/store/gc: delete oldest
// objects until at most MaxBytes of payload remain.
type StoreGCRequest struct {
	MaxBytes int64 `json:"max_bytes"`
}

// StoreGCView reports what a GC pass deleted.
type StoreGCView struct {
	Deleted        []store.Info `json:"deleted"`
	DeletedBytes   int64        `json:"deleted_bytes"`
	RemainingBytes int64        `json:"remaining_bytes"`
}

// specHash names a spec by the SHA-256 of its source text.
func specHash(source string) string {
	sum := sha256.Sum256([]byte(source))
	return hex.EncodeToString(sum[:])
}
