package service

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func okResult() *SolveResult { return &SolveResult{Nodes: 1} }

func TestSchedulerRunsJobs(t *testing.T) {
	s := NewScheduler(4, 16)
	defer s.Shutdown(context.Background())
	var ran atomic.Int64
	var jobs []*Job
	for i := 0; i < 8; i++ {
		j, err := s.Submit("h", SolveParams{}, 0, func(context.Context) (*SolveResult, error) {
			ran.Add(1)
			return okResult(), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	for _, j := range jobs {
		<-j.Done()
		if v := s.View(j); v.State != JobDone || v.Result == nil {
			t.Errorf("job %s: state %s result %v", v.ID, v.State, v.Result)
		}
	}
	if ran.Load() != 8 {
		t.Errorf("ran %d jobs, want 8", ran.Load())
	}
	submitted, completed, _, _ := s.Counts()
	if submitted != 8 || completed != 8 {
		t.Errorf("counters submitted=%d completed=%d, want 8/8", submitted, completed)
	}
}

func TestSchedulerQueueFull(t *testing.T) {
	s := NewScheduler(1, 1)
	defer s.Shutdown(context.Background())
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	// Occupy the single worker...
	if _, err := s.Submit("h", SolveParams{}, 0, func(context.Context) (*SolveResult, error) {
		close(started)
		<-release
		return okResult(), nil
	}); err != nil {
		t.Fatal(err)
	}
	<-started
	// ...fill the queue...
	if _, err := s.Submit("h", SolveParams{}, 0, func(context.Context) (*SolveResult, error) {
		return okResult(), nil
	}); err != nil {
		t.Fatal(err)
	}
	// ...and the next submission must shed load.
	if _, err := s.Submit("h", SolveParams{}, 0, func(context.Context) (*SolveResult, error) {
		return okResult(), nil
	}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
}

func TestSchedulerJobFailure(t *testing.T) {
	s := NewScheduler(1, 4)
	defer s.Shutdown(context.Background())
	j, err := s.Submit("h", SolveParams{}, 0, func(context.Context) (*SolveResult, error) {
		return nil, errors.New("boom")
	})
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	if v := s.View(j); v.State != JobFailed || v.Error != "boom" {
		t.Errorf("state=%s error=%q, want failed/boom", v.State, v.Error)
	}
	_, _, failed, _ := s.Counts()
	if failed != 1 {
		t.Errorf("failed counter = %d, want 1", failed)
	}
}

func TestSchedulerJobDeadline(t *testing.T) {
	s := NewScheduler(1, 4)
	defer s.Shutdown(context.Background())
	j, err := s.Submit("h", SolveParams{}, 5*time.Millisecond, func(ctx context.Context) (*SolveResult, error) {
		<-ctx.Done() // a well-behaved search notices the deadline...
		return &SolveResult{Canceled: true}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	if v := s.View(j); v.State != JobCanceled || v.Result == nil {
		t.Errorf("state=%s result=%v, want canceled with partial result", v.State, v.Result)
	}
}

func TestSchedulerShutdownDrains(t *testing.T) {
	s := NewScheduler(1, 4)
	var finished atomic.Bool
	j, err := s.Submit("h", SolveParams{}, 0, func(context.Context) (*SolveResult, error) {
		time.Sleep(30 * time.Millisecond)
		finished.Store(true)
		return okResult(), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("clean drain returned %v", err)
	}
	if !finished.Load() {
		t.Error("shutdown returned before the in-flight job finished")
	}
	if v := s.View(j); v.State != JobDone {
		t.Errorf("drained job state = %s, want done", v.State)
	}
	if _, err := s.Submit("h", SolveParams{}, 0, func(context.Context) (*SolveResult, error) {
		return okResult(), nil
	}); !errors.Is(err, ErrShutdown) {
		t.Errorf("post-shutdown Submit err = %v, want ErrShutdown", err)
	}
}

func TestSchedulerForcedShutdownCancels(t *testing.T) {
	s := NewScheduler(1, 4)
	started := make(chan struct{})
	j, err := s.Submit("h", SolveParams{}, 0, func(ctx context.Context) (*SolveResult, error) {
		close(started)
		<-ctx.Done() // runs until shutdown forces cancellation
		return &SolveResult{Canceled: true}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced drain returned %v, want deadline exceeded", err)
	}
	if v := s.View(j); v.State != JobCanceled {
		t.Errorf("forced job state = %s, want canceled", v.State)
	}
}

// TestSchedulerForcedShutdownCancelsQueued: jobs that never reached a
// worker before a forced shutdown transition queued → canceled — their
// run closures are never invoked, their done channels close exactly
// once, and the /metrics canceled counter sees each of them. (Before
// this path existed, still-queued jobs were run to completion against
// the dead base context, and the worker's cancelled-while-waiting
// branch leaked the done channel.)
func TestSchedulerForcedShutdownCancelsQueued(t *testing.T) {
	s := NewScheduler(1, 8)
	started := make(chan struct{})
	running, err := s.Submit("h", SolveParams{}, 0, func(ctx context.Context) (*SolveResult, error) {
		close(started)
		<-ctx.Done() // occupy the only worker until the forced drain
		return &SolveResult{Canceled: true}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	var ran atomic.Int64
	var queued []*Job
	for i := 0; i < 4; i++ {
		j, err := s.Submit("h", SolveParams{}, 0, func(context.Context) (*SolveResult, error) {
			ran.Add(1)
			return okResult(), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, j)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced drain returned %v, want deadline exceeded", err)
	}
	if v := s.View(running); v.State != JobCanceled {
		t.Errorf("running job state = %s, want canceled", v.State)
	}
	for _, j := range queued {
		select {
		case <-j.Done(): // closed exactly once — a second close would have panicked a worker
		default:
			t.Fatalf("job %s: done channel not closed after drain", s.View(j).ID)
		}
		if v := s.View(j); v.State != JobCanceled || v.Error != ErrShutdown.Error() {
			t.Errorf("queued job %s: state=%s error=%q, want canceled/%q", v.ID, v.State, v.Error, ErrShutdown)
		}
	}
	if ran.Load() != 0 {
		t.Errorf("%d queued jobs ran during forced shutdown, want 0", ran.Load())
	}
	_, _, _, canceled := s.Counts()
	if canceled != 5 { // the running job plus the four queued ones
		t.Errorf("canceled counter = %d, want 5", canceled)
	}
}

func TestSchedulerShutdownIdempotent(t *testing.T) {
	s := NewScheduler(1, 1)
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}
