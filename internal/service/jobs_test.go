package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func okResult() *SolveResult { return &SolveResult{Nodes: 1} }

// submitFn is shorthand for the common single-tenant test submission.
func submitFn(s *Scheduler, timeout time.Duration, fn func(context.Context) (*SolveResult, error)) (*Job, error) {
	return s.Submit(Submission{SpecHash: "h", Timeout: timeout, Run: fn})
}

func TestSchedulerRunsJobs(t *testing.T) {
	s := NewScheduler(4, 16)
	defer s.Shutdown(context.Background())
	var ran atomic.Int64
	var jobs []*Job
	for i := 0; i < 8; i++ {
		j, err := submitFn(s, 0, func(context.Context) (*SolveResult, error) {
			ran.Add(1)
			return okResult(), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	for _, j := range jobs {
		<-j.Done()
		if v := s.View(j); v.State != JobDone || v.Result == nil {
			t.Errorf("job %s: state %s result %v", v.ID, v.State, v.Result)
		}
	}
	if ran.Load() != 8 {
		t.Errorf("ran %d jobs, want 8", ran.Load())
	}
	submitted, completed, _, _ := s.Counts()
	if submitted != 8 || completed != 8 {
		t.Errorf("counters submitted=%d completed=%d, want 8/8", submitted, completed)
	}
}

func TestSchedulerQueueFull(t *testing.T) {
	s := NewScheduler(1, 1)
	defer s.Shutdown(context.Background())
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	// Occupy the single worker...
	if _, err := submitFn(s, 0, func(context.Context) (*SolveResult, error) {
		close(started)
		<-release
		return okResult(), nil
	}); err != nil {
		t.Fatal(err)
	}
	<-started
	// ...fill the queue...
	if _, err := submitFn(s, 0, func(context.Context) (*SolveResult, error) {
		return okResult(), nil
	}); err != nil {
		t.Fatal(err)
	}
	// ...and the next submission must shed load.
	if _, err := submitFn(s, 0, func(context.Context) (*SolveResult, error) {
		return okResult(), nil
	}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
}

func TestSchedulerJobFailure(t *testing.T) {
	s := NewScheduler(1, 4)
	defer s.Shutdown(context.Background())
	j, err := submitFn(s, 0, func(context.Context) (*SolveResult, error) {
		return nil, errors.New("boom")
	})
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	if v := s.View(j); v.State != JobFailed || v.Error != "boom" {
		t.Errorf("state=%s error=%q, want failed/boom", v.State, v.Error)
	}
	_, _, failed, _ := s.Counts()
	if failed != 1 {
		t.Errorf("failed counter = %d, want 1", failed)
	}
}

func TestSchedulerJobDeadline(t *testing.T) {
	s := NewScheduler(1, 4)
	defer s.Shutdown(context.Background())
	j, err := submitFn(s, 5*time.Millisecond, func(ctx context.Context) (*SolveResult, error) {
		<-ctx.Done() // a well-behaved search notices the deadline...
		return &SolveResult{Canceled: true}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	if v := s.View(j); v.State != JobCanceled || v.Result == nil {
		t.Errorf("state=%s result=%v, want canceled with partial result", v.State, v.Result)
	}
}

func TestSchedulerShutdownDrains(t *testing.T) {
	s := NewScheduler(1, 4)
	var finished atomic.Bool
	j, err := submitFn(s, 0, func(context.Context) (*SolveResult, error) {
		time.Sleep(30 * time.Millisecond)
		finished.Store(true)
		return okResult(), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("clean drain returned %v", err)
	}
	if !finished.Load() {
		t.Error("shutdown returned before the in-flight job finished")
	}
	if v := s.View(j); v.State != JobDone {
		t.Errorf("drained job state = %s, want done", v.State)
	}
	if _, err := submitFn(s, 0, func(context.Context) (*SolveResult, error) {
		return okResult(), nil
	}); !errors.Is(err, ErrShutdown) {
		t.Errorf("post-shutdown Submit err = %v, want ErrShutdown", err)
	}
}

func TestSchedulerForcedShutdownCancels(t *testing.T) {
	s := NewScheduler(1, 4)
	started := make(chan struct{})
	j, err := submitFn(s, 0, func(ctx context.Context) (*SolveResult, error) {
		close(started)
		<-ctx.Done() // runs until shutdown forces cancellation
		return &SolveResult{Canceled: true}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced drain returned %v, want deadline exceeded", err)
	}
	if v := s.View(j); v.State != JobCanceled {
		t.Errorf("forced job state = %s, want canceled", v.State)
	}
}

// TestSchedulerForcedShutdownCancelsQueued: jobs that never reached a
// worker before a forced shutdown transition queued → canceled — their
// run closures are never invoked, their done channels close exactly
// once, and the /metrics canceled counter sees each of them. (Before
// this path existed, still-queued jobs were run to completion against
// the dead base context, and the worker's cancelled-while-waiting
// branch leaked the done channel.)
func TestSchedulerForcedShutdownCancelsQueued(t *testing.T) {
	s := NewScheduler(1, 8)
	started := make(chan struct{})
	running, err := submitFn(s, 0, func(ctx context.Context) (*SolveResult, error) {
		close(started)
		<-ctx.Done() // occupy the only worker until the forced drain
		return &SolveResult{Canceled: true}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	var ran atomic.Int64
	var queued []*Job
	for i := 0; i < 4; i++ {
		j, err := submitFn(s, 0, func(context.Context) (*SolveResult, error) {
			ran.Add(1)
			return okResult(), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, j)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced drain returned %v, want deadline exceeded", err)
	}
	if v := s.View(running); v.State != JobCanceled {
		t.Errorf("running job state = %s, want canceled", v.State)
	}
	for _, j := range queued {
		select {
		case <-j.Done(): // closed exactly once — a second close would have panicked a worker
		default:
			t.Fatalf("job %s: done channel not closed after drain", s.View(j).ID)
		}
		if v := s.View(j); v.State != JobCanceled || v.Error != ErrShutdown.Error() {
			t.Errorf("queued job %s: state=%s error=%q, want canceled/%q", v.ID, v.State, v.Error, ErrShutdown)
		}
	}
	if ran.Load() != 0 {
		t.Errorf("%d queued jobs ran during forced shutdown, want 0", ran.Load())
	}
	_, _, _, canceled := s.Counts()
	if canceled != 5 { // the running job plus the four queued ones
		t.Errorf("canceled counter = %d, want 5", canceled)
	}
}

func TestSchedulerShutdownIdempotent(t *testing.T) {
	s := NewScheduler(1, 1)
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestSchedulerTenantFairness: with a single worker and one tenant's
// backlog queued ahead, a second tenant's jobs interleave by deficit
// round-robin instead of waiting behind the whole backlog — the
// fairness property the per-tenant refactor exists for.
func TestSchedulerTenantFairness(t *testing.T) {
	s := NewScheduler(1, 32)
	defer s.Shutdown(context.Background())
	gateStarted := make(chan struct{})
	release := make(chan struct{})
	// Occupy the worker so every subsequent submission queues.
	if _, err := s.Submit(Submission{Tenant: "alice", SpecHash: "h", Run: func(context.Context) (*SolveResult, error) {
		close(gateStarted)
		<-release
		return okResult(), nil
	}}); err != nil {
		t.Fatal(err)
	}
	<-gateStarted

	var mu sync.Mutex
	var order []string
	var jobs []*Job
	enqueue := func(tenant string, n int) {
		for i := 0; i < n; i++ {
			j, err := s.Submit(Submission{Tenant: tenant, SpecHash: "h", Run: func(context.Context) (*SolveResult, error) {
				mu.Lock()
				order = append(order, tenant)
				mu.Unlock()
				return okResult(), nil
			}})
			if err != nil {
				t.Fatal(err)
			}
			jobs = append(jobs, j)
		}
	}
	enqueue("alice", 6) // the flood, queued first
	enqueue("bob", 3)   // the light tenant, queued last

	close(release)
	for _, j := range jobs {
		<-j.Done()
	}

	mu.Lock()
	defer mu.Unlock()
	bobDone := 0
	for i, tenant := range order {
		if tenant == "bob" {
			bobDone++
		}
		// All of bob's jobs must finish within the first six completions:
		// strict FIFO would hold them until positions 7–9.
		if i == 5 && bobDone != 3 {
			t.Fatalf("after 6 completions bob finished %d/3 jobs (order %v); tenant starved", bobDone, order)
		}
	}
}

func TestSchedulerQuotaMaxQueued(t *testing.T) {
	s := NewSchedulerQuota(1, 32, TenantQuota{MaxQueued: 2})
	defer s.Shutdown(context.Background())
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	if _, err := s.Submit(Submission{Tenant: "alice", SpecHash: "h", Run: func(context.Context) (*SolveResult, error) {
		close(started)
		<-release
		return okResult(), nil
	}}); err != nil {
		t.Fatal(err)
	}
	<-started
	for i := 0; i < 2; i++ {
		if _, err := s.Submit(Submission{Tenant: "alice", SpecHash: "h", Run: func(context.Context) (*SolveResult, error) {
			return okResult(), nil
		}}); err != nil {
			t.Fatal(err)
		}
	}
	_, err := s.Submit(Submission{Tenant: "alice", SpecHash: "h", Run: func(context.Context) (*SolveResult, error) {
		return okResult(), nil
	}})
	var qe *QuotaError
	if !errors.As(err, &qe) || qe.Quota != "max_queued" || qe.Tenant != "alice" {
		t.Fatalf("err = %v, want *QuotaError{alice, max_queued}", err)
	}
	if errors.Is(err, ErrQueueFull) {
		t.Fatal("quota rejection must be distinguishable from the global queue-full error")
	}
	// Another tenant is unaffected: the server has room, alice is over
	// *her* share.
	if _, err := s.Submit(Submission{Tenant: "bob", SpecHash: "h", Run: func(context.Context) (*SolveResult, error) {
		return okResult(), nil
	}}); err != nil {
		t.Fatalf("other tenant rejected alongside the over-quota one: %v", err)
	}
}

func TestSchedulerQuotaNodeBudget(t *testing.T) {
	s := NewSchedulerQuota(1, 32, TenantQuota{NodeBudget: 1000})
	defer s.Shutdown(context.Background())
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	if _, err := s.Submit(Submission{Tenant: "alice", SpecHash: "h", Estimate: 600, Run: func(context.Context) (*SolveResult, error) {
		close(started)
		<-release
		return okResult(), nil
	}}); err != nil {
		t.Fatal(err)
	}
	<-started
	_, err := s.Submit(Submission{Tenant: "alice", SpecHash: "h", Estimate: 600, Run: func(context.Context) (*SolveResult, error) {
		return okResult(), nil
	}})
	var qe *QuotaError
	if !errors.As(err, &qe) || qe.Quota != "node_budget" {
		t.Fatalf("err = %v, want *QuotaError{node_budget}", err)
	}
	if qe.Limit != 1000 || qe.Current != 1200 {
		t.Errorf("quota error limit=%d current=%d, want 1000/1200", qe.Limit, qe.Current)
	}
}

// TestSchedulerQuotaMaxRunning: a tenant at its running cap keeps its
// next job queued even with idle workers; the job dispatches once a
// running one finishes.
func TestSchedulerQuotaMaxRunning(t *testing.T) {
	s := NewSchedulerQuota(2, 32, TenantQuota{MaxRunning: 1})
	defer s.Shutdown(context.Background())
	started := make(chan struct{})
	release := make(chan struct{})
	first, err := s.Submit(Submission{Tenant: "alice", SpecHash: "h", Run: func(context.Context) (*SolveResult, error) {
		close(started)
		<-release
		return okResult(), nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	second, err := s.Submit(Submission{Tenant: "alice", SpecHash: "h", Run: func(context.Context) (*SolveResult, error) {
		return okResult(), nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	if v := s.View(second); v.State != JobQueued {
		t.Fatalf("second job state = %s while the first still runs, want queued (MaxRunning=1)", v.State)
	}
	close(release)
	<-first.Done()
	<-second.Done()
	if v := s.View(second); v.State != JobDone {
		t.Errorf("second job state = %s after release, want done", v.State)
	}
}

// TestSchedulerSpans: a finished job reports its admit/queue/run spans
// and carries tenant and trace ID through to the view.
func TestSchedulerSpans(t *testing.T) {
	s := NewScheduler(1, 4)
	defer s.Shutdown(context.Background())
	var got string
	j, err := s.Submit(Submission{Tenant: "alice", SpecHash: "h", TraceID: "t-123", AdmitNs: 42_000, Run: func(ctx context.Context) (*SolveResult, error) {
		got = TraceID(ctx)
		return okResult(), nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	if got != "t-123" {
		t.Errorf("TraceID(ctx) in worker = %q, want t-123", got)
	}
	v := s.View(j)
	if v.Tenant != "alice" || v.TraceID != "t-123" {
		t.Errorf("view tenant=%q trace=%q, want alice/t-123", v.Tenant, v.TraceID)
	}
	names := make([]string, 0, len(v.Spans))
	for _, sp := range v.Spans {
		names = append(names, sp.Name)
	}
	if len(names) != 3 || names[0] != "admit" || names[1] != "queue" || names[2] != "run" {
		t.Errorf("span names = %v, want [admit queue run]", names)
	}
}
