package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"smoothproc/internal/metrics"
)

// JobState is a job's position in its lifecycle.
type JobState string

// Job lifecycle: queued → running → done | failed | canceled. A job
// cancelled while still queued (shutdown) goes straight to canceled.
const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// Submission errors.
var (
	// ErrQueueFull: the bounded queue is at capacity — shed load rather
	// than buffer unboundedly.
	ErrQueueFull = errors.New("service: job queue full")
	// ErrShutdown: the scheduler no longer accepts work.
	ErrShutdown = errors.New("service: scheduler shutting down")
)

// Job is one scheduled search. All mutable fields are guarded by the
// scheduler's mutex; handlers read them through View.
type Job struct {
	id       string
	specHash string
	params   SolveParams
	timeout  time.Duration
	run      func(context.Context) (*SolveResult, error)

	state  JobState
	result *SolveResult
	err    string
	done   chan struct{}

	// Lifecycle timestamps: submittedAt is set by Submit, startedAt when
	// a worker picks the job up, doneAt at the terminal transition. They
	// feed the per-job queue-wait and run durations in JobView and the
	// aggregate timers in /metrics.
	submittedAt time.Time
	startedAt   time.Time
	doneAt      time.Time
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Scheduler runs jobs on a bounded worker pool. Each job gets its own
// context derived from the scheduler's base context plus the job's
// deadline, so one adversarial search can neither outlive its budget nor
// survive shutdown. The queue is bounded: when it is full, Submit sheds
// load with ErrQueueFull instead of buffering without limit.
type Scheduler struct {
	mu      sync.Mutex
	jobs    map[string]*Job
	order   []string // insertion order, for bounded retention
	nextID  int
	queue   chan *Job
	closed  bool
	aborted bool // Shutdown's deadline expired: cancel still-queued jobs instead of running them
	wg      sync.WaitGroup
	baseCtx context.Context
	stop    context.CancelFunc

	// Counters for /metrics.
	submitted metrics.Counter
	completed metrics.Counter
	failed    metrics.Counter
	canceled  metrics.Counter

	// Aggregate per-job durations for /metrics: queueWait covers
	// submission to worker pickup (or cancellation while queued), runTime
	// covers pickup to the terminal transition.
	queueWait metrics.Timer
	runTime   metrics.Timer
}

// maxRetainedJobs bounds the finished-job history kept for GET
// /v1/jobs/{id}; the oldest finished jobs are forgotten first.
const maxRetainedJobs = 4096

// NewScheduler starts workers goroutines draining a queue of at most
// queueDepth waiting jobs.
func NewScheduler(workers, queueDepth int) *Scheduler {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < 1 {
		queueDepth = 1
	}
	// The scheduler's base context is a deliberate root: jobs outlive the
	// requests that submit them (a client may disconnect and poll later),
	// so their lifetime hangs off the scheduler, cancelled by Shutdown.
	ctx, cancel := context.WithCancel(context.Background()) //smoothlint:allow ctxflow job lifetime is scheduler-scoped, not request-scoped
	s := &Scheduler{
		jobs:    make(map[string]*Job),
		queue:   make(chan *Job, queueDepth),
		baseCtx: ctx,
		stop:    cancel,
	}
	s.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go s.worker()
	}
	return s
}

// Submit enqueues a job. The run closure is executed on a worker with a
// context that expires after timeout (if positive) and dies with the
// scheduler.
func (s *Scheduler) Submit(specHash string, params SolveParams, timeout time.Duration, run func(context.Context) (*SolveResult, error)) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrShutdown
	}
	s.nextID++
	j := &Job{
		id:          fmt.Sprintf("job-%d", s.nextID),
		specHash:    specHash,
		params:      params,
		timeout:     timeout,
		run:         run,
		state:       JobQueued,
		done:        make(chan struct{}),
		submittedAt: time.Now(),
	}
	select {
	case s.queue <- j:
	default:
		return nil, ErrQueueFull
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.evictLocked()
	s.submitted.Inc()
	return j, nil
}

// evictLocked forgets the oldest terminal jobs beyond the retention
// bound. Live jobs are never evicted.
func (s *Scheduler) evictLocked() {
	for len(s.order) > maxRetainedJobs {
		id := s.order[0]
		if j := s.jobs[id]; j != nil && (j.state == JobQueued || j.state == JobRunning) {
			return // oldest job still live; try again later
		}
		s.order = s.order[1:]
		delete(s.jobs, id)
	}
}

func (s *Scheduler) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.mu.Lock()
		if s.aborted {
			// Forced shutdown while this job was still waiting: it goes
			// straight queued → canceled without running, its done channel
			// closed here — the only terminal transition it will ever get,
			// so the close cannot double-fire.
			j.state = JobCanceled
			j.err = ErrShutdown.Error()
			j.doneAt = time.Now()
			s.queueWait.Observe(j.doneAt.Sub(j.submittedAt))
			s.canceled.Inc()
			close(j.done)
			s.mu.Unlock()
			continue
		}
		j.state = JobRunning
		j.startedAt = time.Now()
		s.queueWait.Observe(j.startedAt.Sub(j.submittedAt))
		timeout := j.timeout
		s.mu.Unlock()

		ctx := s.baseCtx
		cancel := context.CancelFunc(func() {})
		if timeout > 0 {
			ctx, cancel = context.WithTimeout(ctx, timeout)
		}
		res, err := j.run(ctx)
		cancel()

		s.mu.Lock()
		switch {
		case err != nil:
			j.state = JobFailed
			j.err = err.Error()
			s.failed.Inc()
		case res != nil && res.Canceled:
			// The deadline (or shutdown) stopped the search; keep the
			// sound partial result but say so.
			j.state = JobCanceled
			j.result = res
			s.canceled.Inc()
		default:
			j.state = JobDone
			j.result = res
			s.completed.Inc()
		}
		j.doneAt = time.Now()
		s.runTime.Observe(j.doneAt.Sub(j.startedAt))
		close(j.done)
		s.mu.Unlock()
	}
}

// Get returns the job by ID.
func (s *Scheduler) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// View snapshots a job for the wire, including its queue-wait and run
// durations: final for terminal jobs, live (still growing) for queued
// and running ones.
func (s *Scheduler) View(j *Job) JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := JobView{
		ID:       j.id,
		State:    j.state,
		SpecHash: j.specHash,
		Params:   j.params,
		Error:    j.err,
	}
	now := time.Now()
	switch {
	case j.state == JobQueued:
		v.QueueMs = ms(now.Sub(j.submittedAt))
	case j.startedAt.IsZero(): // canceled while queued
		v.QueueMs = ms(j.doneAt.Sub(j.submittedAt))
	case j.state == JobRunning:
		v.QueueMs = ms(j.startedAt.Sub(j.submittedAt))
		v.RunMs = ms(now.Sub(j.startedAt))
	default:
		v.QueueMs = ms(j.startedAt.Sub(j.submittedAt))
		v.RunMs = ms(j.doneAt.Sub(j.startedAt))
	}
	if j.result != nil {
		r := *j.result
		v.Result = &r
	}
	return v
}

// ms renders a duration in fractional milliseconds for the wire.
func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// Durations returns the aggregate queue-wait and run timers for
// /metrics.
func (s *Scheduler) Durations() (queueWait, runTime *metrics.Timer) {
	return &s.queueWait, &s.runTime
}

// Counts returns the lifecycle counters (submitted, completed, failed,
// canceled) for /metrics.
func (s *Scheduler) Counts() (submitted, completed, failed, canceled int64) {
	return s.submitted.Load(), s.completed.Load(), s.failed.Load(), s.canceled.Load()
}

// QueueDepth returns the number of jobs waiting for a worker.
func (s *Scheduler) QueueDepth() int { return len(s.queue) }

// Shutdown stops intake and drains: queued and running jobs keep
// running until done or until ctx expires, at which point the base
// context is cancelled so in-flight searches stop at their next
// cancellation check (returning their sound partial results) and the
// drain completes. It returns ctx.Err() when the deadline forced the
// drain, nil on a clean one.
func (s *Scheduler) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		// Forced drain: running jobs stop at their next cancellation
		// check and finish as canceled-with-partial-result; jobs still
		// queued are marked canceled by the workers without running.
		s.mu.Lock()
		s.aborted = true
		s.mu.Unlock()
		s.stop() // cancel in-flight searches
		<-drained
		return ctx.Err()
	}
}
