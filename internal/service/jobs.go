package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"smoothproc/internal/metrics"
)

// JobState is a job's position in its lifecycle.
type JobState string

// Job lifecycle: queued → running → done | failed | canceled. A job
// cancelled while still queued (shutdown) goes straight to canceled.
const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// Submission errors.
var (
	// ErrQueueFull: the server-wide bounded queue is at capacity — shed
	// load rather than buffer unboundedly. Mapped to 503: the whole
	// server is saturated, any client should back off.
	ErrQueueFull = errors.New("service: job queue full")
	// ErrShutdown: the scheduler no longer accepts work.
	ErrShutdown = errors.New("service: scheduler shutting down")
)

// DefaultTenant names jobs submitted without an X-Smoothproc-Tenant
// header. Quotas and fair queuing apply to it like any other tenant.
const DefaultTenant = "default"

// TenantQuota bounds one tenant's footprint on the scheduler. Zero
// fields mean unlimited. Unlike ErrQueueFull (the server is full for
// everyone, 503), a quota rejection is per-tenant back-pressure (429):
// this caller is over its share while the server still has room.
type TenantQuota struct {
	// MaxQueued bounds the tenant's waiting jobs.
	MaxQueued int
	// MaxRunning bounds the tenant's simultaneously running jobs.
	MaxRunning int
	// NodeBudget caps the sum of static plan estimates (predicted
	// minimum search nodes) across the tenant's queued and running jobs
	// — an admission-control ceiling on in-flight work, not just job
	// count, fed by the specplan estimates.
	NodeBudget uint64
}

// QuotaError is a per-tenant quota rejection. Handlers map it to a
// structured 429 body, distinguishable from the load-shed 503.
type QuotaError struct {
	Tenant  string
	Quota   string // "max_queued" | "node_budget"
	Limit   uint64
	Current uint64
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("service: tenant %q over %s quota (%d of %d in flight)",
		e.Tenant, e.Quota, e.Current, e.Limit)
}

// Submission describes one job for Submit: who is asking (tenant,
// trace), what to search (spec, params), and its scheduling inputs
// (timeout, static cost estimate).
type Submission struct {
	// Tenant is the fair-queuing bucket ("" means DefaultTenant).
	Tenant string
	// SpecHash and Params identify the search for JobView.
	SpecHash string
	Params   SolveParams
	// Timeout bounds the run's wall clock (0 = none beyond shutdown).
	Timeout time.Duration
	// Estimate is the static plan's predicted minimum node count: the
	// job's cost in the deficit-round-robin dispatch and its charge
	// against the tenant's NodeBudget. 0 means unknown (cost 1).
	Estimate uint64
	// TraceID is the request-scoped trace identifier threaded from the
	// handler through the queue into the worker's context.
	TraceID string
	// AdmitNs is the handler-side admission span (decode, compile,
	// admission control) in nanoseconds, reported in JobView's spans.
	AdmitNs int64
	// Run executes the search. Its context dies with the scheduler and
	// after Timeout, and carries TraceID (see TraceID function).
	Run func(context.Context) (*SolveResult, error)
}

// Job is one scheduled search. All mutable fields are guarded by the
// scheduler's mutex; handlers read them through View.
type Job struct {
	id       string
	tenant   string
	specHash string
	params   SolveParams
	timeout  time.Duration
	estimate uint64
	cost     uint64
	traceID  string
	admitNs  int64
	run      func(context.Context) (*SolveResult, error)

	state  JobState
	result *SolveResult
	err    string
	done   chan struct{}

	// Lifecycle timestamps: submittedAt is set by Submit, startedAt when
	// a worker picks the job up, doneAt at the terminal transition. They
	// feed the per-job spans in JobView and the aggregate timers in
	// /metrics.
	submittedAt time.Time
	startedAt   time.Time
	doneAt      time.Time
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// traceKey carries the request's trace ID through the scheduler into
// the search's context.
type traceKey struct{}

// TraceID returns the trace identifier threaded through ctx ("" when
// the context did not come from a scheduler worker).
func TraceID(ctx context.Context) string {
	id, _ := ctx.Value(traceKey{}).(string)
	return id
}

// DRR dispatch constants: a job's cost is its plan estimate in units of
// jobCostScale nodes, clamped to [1, maxJobCost]; each top-up round
// credits every backlogged tenant drrQuantum. A tenant queueing huge
// searches therefore yields several turns to a tenant queueing small
// ones, instead of monopolizing the pool job-for-job.
const (
	jobCostScale = 1000
	maxJobCost   = 64
	drrQuantum   = 16
)

// jobCost converts a static node estimate into deficit units.
func jobCost(estimate uint64) uint64 {
	c := estimate / jobCostScale
	if c < 1 {
		return 1
	}
	if c > maxJobCost {
		return maxJobCost
	}
	return c
}

// tenantQueue is one tenant's FIFO plus its deficit-round-robin and
// accounting state. Guarded by the scheduler's mutex.
type tenantQueue struct {
	name    string
	queue   []*Job
	deficit uint64
	running int
	// inflight is the sum of estimates across queued + running jobs,
	// checked against TenantQuota.NodeBudget.
	inflight uint64

	submitted metrics.Counter
	completed metrics.Counter
	failed    metrics.Counter
	canceled  metrics.Counter
	rejected  metrics.Counter // quota rejections (429s)
	queueWait metrics.Timer
	runTime   metrics.Timer
}

// TenantStats is one tenant's point-in-time scheduler accounting, for
// /metrics.
type TenantStats struct {
	Tenant    string
	Submitted int64
	Completed int64
	Failed    int64
	Canceled  int64
	Rejected  int64
	Queued    int
	Running   int
	Inflight  uint64
	QueueNs   int64
	RunNs     int64
}

// Scheduler runs jobs on a bounded worker pool with per-tenant weighted
// fair queuing. Each tenant gets its own FIFO; workers dispatch by
// deficit round-robin over the tenant ring, so one tenant flooding the
// queue cannot starve another — a backlogged tenant's jobs interleave
// with everyone else's in proportion to job cost, not arrival order.
// Each job gets its own context derived from the scheduler's base
// context plus the job's deadline, so one adversarial search can
// neither outlive its budget nor survive shutdown. The global queue is
// bounded (ErrQueueFull beyond it); per-tenant quotas reject with
// *QuotaError before the global bound is reached.
type Scheduler struct {
	mu       sync.Mutex
	cond     *sync.Cond
	jobs     map[string]*Job
	order    []string // insertion order, for bounded retention
	nextID   int
	tenants  map[string]*tenantQueue
	ring     []*tenantQueue // tenant arrival order, the DRR scan order
	ringPos  int
	queued   int // jobs waiting across all tenants
	queueCap int
	quota    TenantQuota
	closed   bool
	aborted  bool // Shutdown's deadline expired: cancel still-queued jobs instead of running them
	wg       sync.WaitGroup
	baseCtx  context.Context
	stop     context.CancelFunc

	// Counters for /metrics.
	submitted metrics.Counter
	completed metrics.Counter
	failed    metrics.Counter
	canceled  metrics.Counter

	// Aggregate per-job durations for /metrics: queueWait covers
	// submission to worker pickup (or cancellation while queued), runTime
	// covers pickup to the terminal transition.
	queueWait metrics.Timer
	runTime   metrics.Timer
}

// maxRetainedJobs bounds the finished-job history kept for GET
// /v1/jobs/{id}; the oldest finished jobs are forgotten first.
const maxRetainedJobs = 4096

// NewScheduler starts workers goroutines over a queue of at most
// queueDepth waiting jobs, with no per-tenant quotas.
func NewScheduler(workers, queueDepth int) *Scheduler {
	return NewSchedulerQuota(workers, queueDepth, TenantQuota{})
}

// NewSchedulerQuota starts a scheduler enforcing quota on every tenant.
func NewSchedulerQuota(workers, queueDepth int, quota TenantQuota) *Scheduler {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < 1 {
		queueDepth = 1
	}
	// The scheduler's base context is a deliberate root: jobs outlive the
	// requests that submit them (a client may disconnect and poll later),
	// so their lifetime hangs off the scheduler, cancelled by Shutdown.
	ctx, cancel := context.WithCancel(context.Background()) //smoothlint:allow ctxflow job lifetime is scheduler-scoped, not request-scoped
	s := &Scheduler{
		jobs:     make(map[string]*Job),
		tenants:  make(map[string]*tenantQueue),
		queueCap: queueDepth,
		quota:    quota,
		baseCtx:  ctx,
		stop:     cancel,
	}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go s.worker()
	}
	return s
}

// tenantLocked returns (creating if new) the tenant's queue.
func (s *Scheduler) tenantLocked(name string) *tenantQueue {
	if name == "" {
		name = DefaultTenant
	}
	tq := s.tenants[name]
	if tq == nil {
		tq = &tenantQueue{name: name}
		s.tenants[name] = tq
		s.ring = append(s.ring, tq)
	}
	return tq
}

// Submit enqueues a job on its tenant's queue. The global bound is
// checked first (ErrQueueFull, 503-class), then the tenant's quotas
// (*QuotaError, 429-class), so a saturated server answers "back off,
// everyone" before "back off, you".
func (s *Scheduler) Submit(sub Submission) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrShutdown
	}
	if s.queued >= s.queueCap {
		return nil, ErrQueueFull
	}
	tq := s.tenantLocked(sub.Tenant)
	if s.quota.MaxQueued > 0 && len(tq.queue) >= s.quota.MaxQueued {
		tq.rejected.Inc()
		return nil, &QuotaError{Tenant: tq.name, Quota: "max_queued",
			Limit: uint64(s.quota.MaxQueued), Current: uint64(len(tq.queue))}
	}
	if s.quota.NodeBudget > 0 && tq.inflight+sub.Estimate > s.quota.NodeBudget {
		tq.rejected.Inc()
		return nil, &QuotaError{Tenant: tq.name, Quota: "node_budget",
			Limit: s.quota.NodeBudget, Current: tq.inflight + sub.Estimate}
	}
	s.nextID++
	j := &Job{
		id:          fmt.Sprintf("job-%d", s.nextID),
		tenant:      tq.name,
		specHash:    sub.SpecHash,
		params:      sub.Params,
		timeout:     sub.Timeout,
		estimate:    sub.Estimate,
		cost:        jobCost(sub.Estimate),
		traceID:     sub.TraceID,
		admitNs:     sub.AdmitNs,
		run:         sub.Run,
		state:       JobQueued,
		done:        make(chan struct{}),
		submittedAt: time.Now(),
	}
	tq.queue = append(tq.queue, j)
	tq.inflight += j.estimate
	tq.submitted.Inc()
	s.queued++
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.evictLocked()
	s.submitted.Inc()
	s.cond.Signal()
	return j, nil
}

// evictLocked forgets the oldest terminal jobs beyond the retention
// bound. Live jobs are never evicted.
func (s *Scheduler) evictLocked() {
	for len(s.order) > maxRetainedJobs {
		id := s.order[0]
		if j := s.jobs[id]; j != nil && (j.state == JobQueued || j.state == JobRunning) {
			return // oldest job still live; try again later
		}
		s.order = s.order[1:]
		delete(s.jobs, id)
	}
}

// pickLocked runs one deficit-round-robin dispatch: scan the tenant
// ring from just past the last dispatch; a tenant whose head job fits
// its deficit (and whose running count is under quota) pays the job's
// cost and wins. When no backlogged tenant can afford its head, every
// eligible one is credited a quantum and the scan repeats — bounded,
// because costs are capped at maxJobCost. Returns nil when nothing is
// dispatchable (empty, or all backlogged tenants at MaxRunning).
func (s *Scheduler) pickLocked() (*Job, *tenantQueue) {
	if s.queued == 0 || len(s.ring) == 0 {
		return nil, nil
	}
	for round := 0; round <= maxJobCost/drrQuantum+1; round++ {
		n := len(s.ring)
		for i := 0; i < n; i++ {
			idx := (s.ringPos + i) % n
			tq := s.ring[idx]
			if len(tq.queue) == 0 {
				continue
			}
			if s.quota.MaxRunning > 0 && tq.running >= s.quota.MaxRunning {
				continue
			}
			j := tq.queue[0]
			if tq.deficit < j.cost {
				continue
			}
			tq.deficit -= j.cost
			tq.queue = tq.queue[1:]
			if len(tq.queue) == 0 {
				tq.deficit = 0 // classic DRR: an emptied queue forfeits its credit
			}
			s.queued--
			s.ringPos = (idx + 1) % n
			return j, tq
		}
		credited := false
		for _, tq := range s.ring {
			if len(tq.queue) == 0 {
				continue
			}
			if s.quota.MaxRunning > 0 && tq.running >= s.quota.MaxRunning {
				continue
			}
			tq.deficit += drrQuantum
			credited = true
		}
		if !credited {
			return nil, nil // every backlog is blocked on MaxRunning
		}
	}
	return nil, nil
}

// nextLocked blocks until a job is dispatchable, the scheduler drains
// (graceful close with an empty queue) or aborts. Must hold s.mu.
func (s *Scheduler) nextLocked() (*Job, *tenantQueue) {
	for {
		if s.aborted {
			return nil, nil
		}
		if j, tq := s.pickLocked(); j != nil {
			return j, tq
		}
		if s.closed && s.queued == 0 {
			return nil, nil
		}
		s.cond.Wait()
	}
}

func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		j, tq := s.nextLocked()
		if j == nil {
			s.mu.Unlock()
			return
		}
		j.state = JobRunning
		j.startedAt = time.Now()
		wait := j.startedAt.Sub(j.submittedAt)
		s.queueWait.Observe(wait)
		tq.queueWait.Observe(wait)
		tq.running++
		timeout := j.timeout
		s.mu.Unlock()

		ctx := context.WithValue(s.baseCtx, traceKey{}, j.traceID)
		cancel := context.CancelFunc(func() {})
		if timeout > 0 {
			ctx, cancel = context.WithTimeout(ctx, timeout)
		}
		res, err := j.run(ctx)
		cancel()

		s.mu.Lock()
		switch {
		case err != nil:
			j.state = JobFailed
			j.err = err.Error()
			s.failed.Inc()
			tq.failed.Inc()
		case res != nil && res.Canceled:
			// The deadline (or shutdown) stopped the search; keep the
			// sound partial result but say so.
			j.state = JobCanceled
			j.result = res
			s.canceled.Inc()
			tq.canceled.Inc()
		default:
			j.state = JobDone
			j.result = res
			s.completed.Inc()
			tq.completed.Inc()
		}
		j.doneAt = time.Now()
		run := j.doneAt.Sub(j.startedAt)
		s.runTime.Observe(run)
		tq.runTime.Observe(run)
		tq.running--
		tq.inflight -= j.estimate
		close(j.done)
		// A completion can unblock a MaxRunning-throttled tenant and the
		// shutdown drain, not just one waiter.
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}

// Get returns the job by ID.
func (s *Scheduler) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// View snapshots a job for the wire, including its tenant, trace ID and
// per-stage spans: final for terminal jobs, live (still growing) for
// queued and running ones.
func (s *Scheduler) View(j *Job) JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := JobView{
		ID:       j.id,
		State:    j.state,
		Tenant:   j.tenant,
		TraceID:  j.traceID,
		SpecHash: j.specHash,
		Params:   j.params,
		Error:    j.err,
	}
	now := time.Now()
	switch {
	case j.state == JobQueued:
		v.QueueMs = ms(now.Sub(j.submittedAt))
	case j.startedAt.IsZero(): // canceled while queued
		v.QueueMs = ms(j.doneAt.Sub(j.submittedAt))
	case j.state == JobRunning:
		v.QueueMs = ms(j.startedAt.Sub(j.submittedAt))
		v.RunMs = ms(now.Sub(j.startedAt))
	default:
		v.QueueMs = ms(j.startedAt.Sub(j.submittedAt))
		v.RunMs = ms(j.doneAt.Sub(j.startedAt))
	}
	if j.admitNs > 0 {
		v.Spans = append(v.Spans, SpanView{Name: "admit", Ms: ms(time.Duration(j.admitNs))})
	}
	v.Spans = append(v.Spans, SpanView{Name: "queue", Ms: v.QueueMs})
	if !j.startedAt.IsZero() {
		v.Spans = append(v.Spans, SpanView{Name: "run", Ms: v.RunMs})
	}
	if j.result != nil {
		r := *j.result
		v.Result = &r
	}
	return v
}

// ms renders a duration in fractional milliseconds for the wire.
func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// Durations returns the aggregate queue-wait and run timers for
// /metrics.
func (s *Scheduler) Durations() (queueWait, runTime *metrics.Timer) {
	return &s.queueWait, &s.runTime
}

// Counts returns the lifecycle counters (submitted, completed, failed,
// canceled) for /metrics.
func (s *Scheduler) Counts() (submitted, completed, failed, canceled int64) {
	return s.submitted.Load(), s.completed.Load(), s.failed.Load(), s.canceled.Load()
}

// QueueDepth returns the number of jobs waiting for a worker.
func (s *Scheduler) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued
}

// TenantStats snapshots every tenant's accounting in arrival order.
func (s *Scheduler) TenantStats() []TenantStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TenantStats, 0, len(s.ring))
	for _, tq := range s.ring {
		out = append(out, TenantStats{
			Tenant:    tq.name,
			Submitted: tq.submitted.Load(),
			Completed: tq.completed.Load(),
			Failed:    tq.failed.Load(),
			Canceled:  tq.canceled.Load(),
			Rejected:  tq.rejected.Load(),
			Queued:    len(tq.queue),
			Running:   tq.running,
			Inflight:  tq.inflight,
			QueueNs:   tq.queueWait.TotalNanos(),
			RunNs:     tq.runTime.TotalNanos(),
		})
	}
	return out
}

// Shutdown stops intake and drains: queued and running jobs keep
// running until done or until ctx expires, at which point the base
// context is cancelled so in-flight searches stop at their next
// cancellation check (returning their sound partial results), and jobs
// still queued transition queued → canceled without ever running. It
// returns ctx.Err() when the deadline forced the drain, nil on a clean
// one.
func (s *Scheduler) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		// Forced drain: cancel every still-queued job here — its only
		// terminal transition, so the done close cannot double-fire —
		// then cancel in-flight searches and wait for the workers.
		s.mu.Lock()
		s.aborted = true
		now := time.Now()
		for _, tq := range s.ring {
			for _, j := range tq.queue {
				j.state = JobCanceled
				j.err = ErrShutdown.Error()
				j.doneAt = now
				wait := now.Sub(j.submittedAt)
				s.queueWait.Observe(wait)
				tq.queueWait.Observe(wait)
				s.canceled.Inc()
				tq.canceled.Inc()
				tq.inflight -= j.estimate
				close(j.done)
			}
			tq.queue = nil
			tq.deficit = 0
		}
		s.queued = 0
		s.cond.Broadcast()
		s.mu.Unlock()
		s.stop() // cancel in-flight searches
		<-drained
		return ctx.Err()
	}
}
