package service

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// TestLRUUnderRace backs LRU's safe-for-concurrent-use claim: readers
// and writers hammer one cache across overlapping key ranges, and the
// books stay exact — every Get is either a hit or a miss, and the cache
// never exceeds its capacity. Run with -race in the CI invariants job.
func TestLRUUnderRace(t *testing.T) {
	const goroutines = 8
	const perG = 500
	const capacity = 32
	c := NewLRU[int, int](capacity)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				k := (g*perG + i) % 64 // overlap keys across goroutines
				if v, ok := c.Get(k); ok && v != k {
					t.Errorf("Get(%d) = %d", k, v)
					return
				}
				c.Put(k, k)
			}
		}(g)
	}
	wg.Wait()
	if got, want := c.Hits()+c.Misses(), int64(goroutines*perG); got != want {
		t.Errorf("hits+misses = %d, want %d", got, want)
	}
	if c.Len() > capacity {
		t.Errorf("len %d exceeds capacity %d", c.Len(), capacity)
	}
}

// TestSchedulerUnderRace submits jobs from many goroutines while others
// poll views, then drains cleanly: every accepted job reaches a
// terminal state with its done channel closed, and the lifecycle
// counters account for every submission.
func TestSchedulerUnderRace(t *testing.T) {
	s := NewScheduler(4, 64)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var accepted []*Job
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 16; i++ {
				// Distinct tenants per goroutine exercise the DRR ring and
				// per-tenant accounting under contention.
				j, err := s.Submit(Submission{
					Tenant:   fmt.Sprintf("t%d", g%3),
					SpecHash: fmt.Sprintf("h%d", g),
					Run: func(context.Context) (*SolveResult, error) {
						return okResult(), nil
					},
				})
				if err != nil {
					continue // queue-full shedding is fine under load
				}
				mu.Lock()
				accepted = append(accepted, j)
				mu.Unlock()
				s.View(j)
			}
		}(g)
	}
	wg.Wait()
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, j := range accepted {
		select {
		case <-j.Done():
		default:
			t.Fatalf("job %s not terminal after clean drain", s.View(j).ID)
		}
	}
	submitted, completed, failed, canceled := s.Counts()
	if submitted != int64(len(accepted)) {
		t.Errorf("submitted = %d, accepted %d", submitted, len(accepted))
	}
	if completed+failed+canceled != submitted {
		t.Errorf("terminal states %d+%d+%d ≠ submitted %d", completed, failed, canceled, submitted)
	}
	var perTenant int64
	for _, ts := range s.TenantStats() {
		perTenant += ts.Submitted
		if ts.Queued != 0 || ts.Running != 0 || ts.Inflight != 0 {
			t.Errorf("tenant %s not drained: queued=%d running=%d inflight=%d", ts.Tenant, ts.Queued, ts.Running, ts.Inflight)
		}
	}
	if perTenant != submitted {
		t.Errorf("per-tenant submitted totals %d ≠ global %d", perTenant, submitted)
	}
}

// TestLRUPinUnderRace: concurrent Pin/Unpin and Put churn over a
// deliberately tiny cache. Pinned entries must remain retrievable for
// the whole pin window even while the cache is forced over capacity,
// and once every pin is released the cache settles back within bounds.
func TestLRUPinUnderRace(t *testing.T) {
	const goroutines = 8
	const perG = 300
	c := NewLRU[int, int](2)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				k := (g + i) % 8
				c.Put(k, k)
				if v, ok := c.Pin(k); ok {
					if v != k {
						t.Errorf("Pin(%d) = %d", k, v)
						return
					}
					// Churn other keys while k is pinned: k must survive.
					c.Put(k+100, k)
					c.Put(k+200, k)
					if v, ok := c.Get(k); !ok || v != k {
						t.Errorf("pinned key %d evicted under churn", k)
						return
					}
					c.Unpin(k)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 2 {
		t.Errorf("len %d exceeds capacity 2 after all pins released", c.Len())
	}
}
