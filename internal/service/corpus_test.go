package service

import (
	"net/http"
	"testing"

	"smoothproc/internal/netgen"
)

// TestCorpusSpecSolvesThroughService uploads a generated check-tier
// corpus spec and solves it by hash — the same path `smoothsolve corpus`
// instances take when fed to a live smoothd.
func TestCorpusSpecSolvesThroughService(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	in, err := netgen.GenerateInstance("pipeline", 0)
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, ts.URL+"/v1/specs", SpecRequest{Source: in.Source})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload %s: status %d: %s", in.Name, resp.StatusCode, body)
	}
	info := decode[SpecInfo](t, body)
	if info.Plan == nil {
		t.Fatalf("upload %s carries no plan", in.Name)
	}

	resp, body = postJSON(t, ts.URL+"/v1/solve", SolveRequest{SpecHash: info.Hash, Wait: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve %s: status %d: %s", in.Name, resp.StatusCode, body)
	}
	job := decode[JobView](t, body)
	if job.State != JobDone || job.Result == nil || job.Result.Truncated {
		t.Fatalf("%s did not finish cleanly: %+v", in.Name, job)
	}
	if len(job.Result.Solutions) == 0 {
		t.Errorf("%s (%s): no solutions through the service", in.Name, in.Shape)
	}
}

// TestStressInstanceAdmission drives calibrated stress instances
// through smoothd's admission gate end to end. A ~1e5-node instance has
// a planner floor inside the default 500k budget and must complete; an
// instance calibrated two orders of magnitude past the budget must be
// rejected with a structured 422 carrying the plan estimate — never a
// crash, never a scheduler submission.
func TestStressInstanceAdmission(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 2})

	// Within budget: seed 3 is the twin-buffer instance whose real tree
	// is ~156k nodes with planner floor ~56k, under the 500k cap.
	s, err := netgen.Stress(3, netgen.StressConfig{})
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Source: s.Source, Wait: true, Workers: 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s (%s): status %d: %s", s.Name, s.Shape, resp.StatusCode, body)
	}
	job := decode[JobView](t, body)
	if job.State != JobDone || job.Result == nil || job.Result.Truncated {
		t.Fatalf("%s did not finish cleanly: %+v", s.Name, job)
	}
	if uint64(job.Result.Nodes) < s.PredictedMin {
		t.Errorf("%s: %d nodes below planner floor %d", s.Name, job.Result.Nodes, s.PredictedMin)
	}

	// Over budget: calibrate the same generator to 5e7 nodes; the floor
	// provably exceeds the budget, so admission fires before any search.
	big, err := netgen.Stress(3, netgen.StressConfig{TargetNodes: 50_000_000})
	if err != nil {
		t.Fatal(err)
	}
	resp, body = postJSON(t, ts.URL+"/v1/solve", SolveRequest{Source: big.Source, Wait: true})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("%s (%s): status %d, want 422: %s", big.Name, big.Shape, resp.StatusCode, body)
	}
	eb := decode[ErrorBody](t, body)
	if eb.Plan == nil {
		t.Fatalf("422 body carries no plan estimate: %s", body)
	}
	if eb.Plan.PredictedMinNodes <= uint64(eb.Plan.MaxNodes) {
		t.Errorf("estimate does not justify the rejection: floor %d vs budget %d",
			eb.Plan.PredictedMinNodes, eb.Plan.MaxNodes)
	}
	if submitted, _, _, _ := srv.sched.Counts(); submitted != 1 {
		t.Errorf("scheduler saw %d jobs, want 1 (only the admitted stress solve)", submitted)
	}
}
