package histrel

import (
	"testing"

	"smoothproc/internal/fn"
	"smoothproc/internal/netsim"
	"smoothproc/internal/procs"
	"smoothproc/internal/seq"
	"smoothproc/internal/trace"
)

func TestInterleavings(t *testing.T) {
	got := Interleavings(seq.OfInts(0, 2), seq.OfInts(1))
	want := map[string]bool{
		seq.OfInts(1, 0, 2).String(): true,
		seq.OfInts(0, 1, 2).String(): true,
		seq.OfInts(0, 2, 1).String(): true,
	}
	if len(got) != 3 {
		t.Fatalf("got %d interleavings", len(got))
	}
	for _, s := range got {
		if !want[s.String()] {
			t.Errorf("unexpected interleaving %s", s)
		}
	}
	// Edge cases.
	if got := Interleavings(seq.Empty, seq.OfInts(5)); len(got) != 1 || !got[0].Equal(seq.OfInts(5)) {
		t.Errorf("empty-x case: %v", got)
	}
	if got := Interleavings(seq.OfInts(5), seq.Empty); len(got) != 1 {
		t.Errorf("empty-y case: %v", got)
	}
	// Counting: |shuffles| = C(m+n, m).
	if got := Interleavings(seq.OfInts(0, 2), seq.OfInts(1, 3)); len(got) != 6 {
		t.Errorf("C(4,2) = 6, got %d", len(got))
	}
}

func TestFromFunction(t *testing.T) {
	r := FromFunction(fn.FBA)
	out := r.Out(seq.OfInts(0, 2, 1))
	if len(out) != 1 || !out[0].Equal(seq.OfInts(1)) {
		t.Errorf("fBA relation: %v", out)
	}
}

func TestMergeWith(t *testing.T) {
	r := MergeWith(seq.OfInts(0, 2))
	// With no input, only the internal store (in order).
	out := r.Out(seq.Empty)
	if len(out) != 1 || !out[0].Equal(seq.OfInts(0, 2)) {
		t.Errorf("merge with ε input: %v", out)
	}
	// With input ⟨1⟩: the three shuffles.
	if got := r.Out(seq.OfInts(1)); len(got) != 3 {
		t.Errorf("merge with ⟨1⟩: %d outputs", len(got))
	}
}

// TestAnomalyQuantified is the point of the package: the history-relation
// semantics of the Figure 4 loop admits BOTH c = 0 1 2 and c = 0 2 1,
// while the operational network (and the paper's smooth semantics —
// experiment E5) produce only 0 2 1. The relation semantics is strictly
// too big, by exactly the anomalous behaviour.
func TestAnomalyQuantified(t *testing.T) {
	a := MergeWith(seq.OfInts(0, 2))
	b := FromFunction(fn.FBA)
	// Candidates: all permutations of {0,1,2} plus assorted shorter ones.
	candidates := []seq.Seq{
		seq.OfInts(0, 1, 2), seq.OfInts(0, 2, 1), seq.OfInts(1, 0, 2),
		seq.OfInts(1, 2, 0), seq.OfInts(2, 0, 1), seq.OfInts(2, 1, 0),
		seq.OfInts(0, 2), seq.OfInts(0), seq.Empty,
	}
	got := FeedbackSolutions(a, b, candidates)
	want := map[string]bool{
		seq.OfInts(0, 1, 2).String(): true, // the anomaly
		seq.OfInts(0, 2, 1).String(): true, // the real computation
	}
	if len(got) != 2 {
		t.Fatalf("relation semantics found %d solutions: %v", len(got), got)
	}
	for _, s := range got {
		if !want[s.String()] {
			t.Errorf("unexpected relational solution %s", s)
		}
	}

	// The operational ground truth has exactly one behaviour.
	quiescent := netsim.QuiescentTraces(procs.Fig4Network().Spec, 30, netsim.RealizeOpts{})
	if len(quiescent) != 1 {
		t.Fatalf("operational behaviours: %d", len(quiescent))
	}
	for _, tr := range quiescent {
		if !tr.Channel("c").Equal(seq.OfInts(0, 2, 1)) {
			t.Errorf("operational c = %s", tr.Channel("c"))
		}
	}

	// And the smooth semantics agrees with the machine, not the relation.
	d := procs.Fig4Equations()
	smooth := 0
	for _, c := range candidates {
		tr := tracify(c)
		if d.IsSmoothFinite(tr) == nil {
			smooth++
			if !c.Equal(seq.OfInts(0, 2, 1)) {
				t.Errorf("smooth semantics accepted %s", c)
			}
		}
	}
	if smooth != 1 {
		t.Errorf("smooth solutions among candidates: %d, want 1", smooth)
	}
}

func tracify(c seq.Seq) trace.Trace {
	tr := trace.Empty
	for i := 0; i < c.Len(); i++ {
		tr = tr.Append(trace.E("c", c.At(i)))
	}
	return tr
}
