// Package histrel implements the naive input/output history-relation
// semantics of nondeterministic dataflow — the "history-insensitive"
// semantics in which the Brock-Ackermann anomaly arises (Section 2.4 of
// the paper; Brock & Ackerman 1981; anticipated by Keller 1978).
//
// A process is modelled as a relation between input histories and output
// histories, with all causality information discarded. Composing such
// relations around a feedback loop admits behaviours no machine can
// produce: for the Figure 4 network, the relation semantics accepts
// c = 0 1 2 — process B's output 1 appearing between A's 0 and 2 even
// though B cannot speak before consuming both. The paper's smoothness
// condition is exactly the causality constraint this semantics lacks;
// the package exists so the reproduction can measure the gap (extension
// experiment E22 in EXPERIMENTS.md).
package histrel

import (
	"fmt"

	"smoothproc/internal/fn"
	"smoothproc/internal/seq"
)

// Relation is a process as an input/output history relation: Out yields
// every output history the process may produce after consuming exactly
// the given input history, with no record of relative timing.
type Relation struct {
	Name string
	Out  func(in seq.Seq) []seq.Seq
}

// FromFunction lifts a deterministic history function: one output per
// input — e.g. process B of Figure 4 is FromFunction(fBA).
func FromFunction(f fn.SeqFn) Relation {
	return Relation{
		Name: f.Name,
		Out:  func(in seq.Seq) []seq.Seq { return []seq.Seq{f.Apply(in)} },
	}
}

// MergeWith models a fair merge of the input with a fixed internal
// sequence — process A of Figure 4 is MergeWith(⟨0 2⟩). At the history
// level the possible outputs after consuming input in are ALL
// interleavings of in with the internal store: the relation forgets that
// internal items need no input to be emitted.
func MergeWith(internal seq.Seq) Relation {
	store := internal.Take(internal.Len())
	return Relation{
		Name: "merge" + store.String(),
		Out: func(in seq.Seq) []seq.Seq {
			return Interleavings(store, in)
		},
	}
}

// Interleavings returns every order-preserving shuffle of x and y.
func Interleavings(x, y seq.Seq) []seq.Seq {
	switch {
	case x.IsEmpty():
		return []seq.Seq{y}
	case y.IsEmpty():
		return []seq.Seq{x}
	}
	var out []seq.Seq
	for _, rest := range Interleavings(x.Drop(1), y) {
		out = append(out, seq.Of(x.At(0)).Concat(rest))
	}
	for _, rest := range Interleavings(x, y.Drop(1)) {
		out = append(out, seq.Of(y.At(0)).Concat(rest))
	}
	return out
}

// FeedbackSolutions computes the history-relation semantics of the
// two-process feedback loop of Figure 4: channel c from A, channel b
// from B, with A consuming b and B consuming c. A history pair (b, c) is
// consistent iff c ∈ A(b) and b ∈ B(c); the function returns the
// distinct consistent c's among the candidates.
//
// This is the fixed-point equation of Section 2.4 read relationally —
// solutions of the equations with no smoothness side condition.
func FeedbackSolutions(a, b Relation, candidates []seq.Seq) []seq.Seq {
	var out []seq.Seq
	for _, c := range candidates {
		for _, bHist := range b.Out(c) {
			if containsSeq(a.Out(bHist), c) {
				out = append(out, c)
				break
			}
		}
	}
	return out
}

func containsSeq(set []seq.Seq, want seq.Seq) bool {
	for _, s := range set {
		if s.Equal(want) {
			return true
		}
	}
	return false
}

// String renders a relation sample for diagnostics.
func (r Relation) String() string {
	return fmt.Sprintf("relation %s", r.Name)
}
